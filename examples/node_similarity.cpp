// In-network node similarity (paper §2.2, after Yang et al.): two nodes are
// similar if their neighborhoods support the same pivoted patterns. This
// example scores node pairs by the Jaccard overlap of the pattern sets they
// satisfy — each "does node u satisfy pattern P at the pivot?" check is one
// PSI evaluation, answered for all nodes at once by a single PSI query.

#include <algorithm>
#include <iostream>
#include <vector>

#include "core/smart_psi.h"
#include "graph/datasets.h"
#include "graph/query_extractor.h"

using psi::graph::NodeId;

int main() {
  // Cora-like: only 7 labels, so pivoted patterns have rich answer sets.
  const psi::graph::Graph g =
      psi::graph::MakeDataset(psi::graph::Dataset::kCora, 1.0, 5);
  std::cout << "Network: " << g.num_nodes() << " nodes, " << g.num_edges()
            << " edges\n";

  // A probe set of pivoted patterns (sizes 3-4) drawn from the graph.
  psi::graph::QueryExtractor extractor(g);
  psi::util::Rng rng(7);
  std::vector<psi::graph::QueryGraph> probes;
  for (const size_t size : {3u, 3u, 4u, 4u, 4u}) {
    auto q = extractor.Extract(size, rng);
    if (q.num_nodes() == size) probes.push_back(std::move(q));
  }
  std::cout << "Probe patterns: " << probes.size() << "\n";

  // One PSI query per probe gives the full satisfying-node set; the
  // per-node bitmask of satisfied probes is the similarity fingerprint.
  psi::core::SmartPsiEngine engine(g);
  std::vector<uint32_t> fingerprint(g.num_nodes(), 0);
  for (size_t p = 0; p < probes.size(); ++p) {
    const auto result = engine.Evaluate(probes[p]);
    for (const NodeId u : result.valid_nodes) {
      fingerprint[u] |= 1u << p;
    }
    std::cout << "  probe " << p << ": " << result.valid_nodes.size()
              << " satisfying nodes\n";
  }

  // Jaccard similarity over satisfied-probe sets; report the most similar
  // pairs among nodes satisfying at least two probes.
  struct Pair {
    NodeId a;
    NodeId b;
    double jaccard;
  };
  std::vector<NodeId> interesting;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (__builtin_popcount(fingerprint[u]) >= 2) interesting.push_back(u);
  }
  std::vector<Pair> best;
  for (size_t i = 0; i < interesting.size(); ++i) {
    for (size_t j = i + 1; j < interesting.size() && j < i + 200; ++j) {
      const uint32_t fa = fingerprint[interesting[i]];
      const uint32_t fb = fingerprint[interesting[j]];
      const int inter = __builtin_popcount(fa & fb);
      const int uni = __builtin_popcount(fa | fb);
      if (uni == 0) continue;
      best.push_back({interesting[i], interesting[j],
                      static_cast<double>(inter) / uni});
    }
  }
  std::partial_sort(best.begin(),
                    best.begin() + std::min<size_t>(5, best.size()),
                    best.end(), [](const Pair& x, const Pair& y) {
                      return x.jaccard > y.jaccard;
                    });
  std::cout << "\nMost similar node pairs (by shared pivoted patterns):\n";
  for (size_t i = 0; i < std::min<size_t>(5, best.size()); ++i) {
    std::cout << "  (" << best[i].a << ", " << best[i].b
              << ")  jaccard=" << best[i].jaccard << "\n";
  }
  if (best.empty()) {
    std::cout << "  (no node satisfied two probes; rerun with another "
                 "seed)\n";
  }
  return 0;
}
