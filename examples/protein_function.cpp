// Function prediction in protein-protein-interaction networks (paper §2.2):
// proteins with unknown function are matched against significant pivoted
// patterns mined from the annotated part of the network; each matching
// pattern's pivot label is a predicted function.
//
// This example builds a synthetic PPI-like network (Human stand-in scaled
// down), extracts "significant patterns" around each function label, and
// uses SmartPSI to find which unknown proteins satisfy which patterns.

#include <iostream>
#include <map>
#include <vector>

#include "core/smart_psi.h"
#include "graph/datasets.h"
#include "graph/query_extractor.h"

using psi::graph::NodeId;

int main() {
  // A PPI-like stand-in: node labels play the role of functional
  // annotations.
  const psi::graph::Graph ppi =
      psi::graph::MakeDataset(psi::graph::Dataset::kHuman, 0.25, 7);
  std::cout << "PPI network: " << ppi.num_nodes() << " proteins, "
            << ppi.num_edges() << " interactions, " << ppi.num_labels()
            << " function labels\n";

  // Mine "significant patterns": neighborhood subgraphs around proteins,
  // pivoted at the protein of interest (here: extracted by random walk,
  // standing in for a pattern-mining front end).
  psi::graph::QueryExtractor extractor(ppi);
  psi::util::Rng rng(2024);
  const auto patterns = extractor.ExtractMany(/*size=*/4, /*count=*/6, rng);
  std::cout << "Mined " << patterns.size()
            << " significant pivoted patterns\n\n";

  psi::core::SmartPsiEngine engine(ppi);

  // For each pattern, the pivot's label is the function it predicts; every
  // protein that matches the pattern at the pivot is predicted to carry
  // that function.
  std::map<NodeId, std::vector<psi::graph::Label>> predictions;
  for (size_t i = 0; i < patterns.size(); ++i) {
    const auto& pattern = patterns[i];
    const psi::graph::Label function = pattern.label(pattern.pivot());
    const auto result = engine.Evaluate(pattern);
    std::cout << "Pattern " << i << " (function " << function << "): "
              << result.valid_nodes.size() << " matching proteins, "
              << result.total_seconds * 1e3 << " ms\n";
    for (const NodeId protein : result.valid_nodes) {
      predictions[protein].push_back(function);
    }
  }

  // Report a few predictions.
  std::cout << "\nSample predictions (protein -> supported functions):\n";
  size_t shown = 0;
  for (const auto& [protein, functions] : predictions) {
    if (functions.size() < 2) continue;  // show multi-evidence cases
    std::cout << "  protein " << protein << " <-";
    for (const auto f : functions) std::cout << " fn" << f;
    std::cout << "\n";
    if (++shown == 5) break;
  }
  if (shown == 0) {
    std::cout << "  (no protein matched two patterns; single-evidence "
                 "predictions were made for "
              << predictions.size() << " proteins)\n";
  }
  return 0;
}
