// Discovering pattern queries by sample answers (paper §2.2, after Han et
// al., ICDE'16): given a handful of nodes the user believes answer their
// (unknown) query, generate candidate pivoted queries from the neighborhood
// of one sample and keep only those that match *every* sample node — a
// series of PSI evaluations. Surviving queries are ranked by selectivity
// and recommended.

#include <algorithm>
#include <iostream>
#include <vector>

#include "core/smart_psi.h"
#include "graph/algorithms.h"
#include "graph/datasets.h"
#include "graph/query_extractor.h"

using psi::graph::NodeId;

int main() {
  const psi::graph::Graph kb =
      psi::graph::MakeDataset(psi::graph::Dataset::kCora, 1.0, 3);
  std::cout << "Knowledge base: " << kb.num_nodes() << " entities, "
            << kb.num_edges() << " relations\n";

  psi::core::SmartPsiEngine engine(kb);
  psi::util::Rng rng(99);

  // Simulate the user: they have some query in mind (hidden from the
  // system) and can only point at a few nodes they know answer it.
  psi::graph::QueryExtractor extractor(kb);
  psi::graph::QueryGraph hidden = extractor.Extract(3, rng);
  if (hidden.num_nodes() != 3) {
    std::cout << "Could not extract a hidden query; try another seed.\n";
    return 0;
  }
  const auto hidden_answer = engine.Evaluate(hidden);
  if (hidden_answer.valid_nodes.size() < 3) {
    std::cout << "Hidden query too selective; try another seed.\n";
    return 0;
  }
  std::vector<NodeId> samples(hidden_answer.valid_nodes.begin(),
                              hidden_answer.valid_nodes.begin() + 3);
  std::cout << "Hidden query: " << hidden.ToString() << "\n";
  std::cout << "User's sample answers:";
  for (const NodeId u : samples) std::cout << " " << u;
  std::cout << "\n\n";

  // Candidate queries: pivoted neighborhoods of the first sample, of sizes
  // 2..4 (random walks from that node).
  std::vector<psi::graph::QueryGraph> candidates;
  for (const size_t size : {2u, 3u, 4u}) {
    for (int attempt = 0; attempt < 4; ++attempt) {
      // Walk from the sample node itself so the pivot binds it by design.
      std::vector<NodeId> collected{samples[0]};
      NodeId current = samples[0];
      while (collected.size() < size) {
        const auto nbrs = kb.neighbors(current);
        if (nbrs.empty()) break;
        current = nbrs[rng.NextBounded(nbrs.size())];
        if (std::find(collected.begin(), collected.end(), current) ==
            collected.end()) {
          collected.push_back(current);
        }
      }
      if (collected.size() != size) continue;
      psi::graph::QueryGraph q = psi::graph::InducedSubgraph(kb, collected);
      q.set_pivot(0);  // node 0 of the induced query = the sample node
      candidates.push_back(std::move(q));
    }
  }
  std::cout << "Generated " << candidates.size() << " candidate queries\n";

  // Filter: keep queries whose PSI answer contains every sample node.
  struct Recommended {
    psi::graph::QueryGraph query;
    size_t answer_size;
  };
  std::vector<Recommended> recommended;
  for (auto& q : candidates) {
    const auto result = engine.Evaluate(q);
    const bool covers_all = std::all_of(
        samples.begin(), samples.end(), [&](NodeId u) {
          return std::binary_search(result.valid_nodes.begin(),
                                    result.valid_nodes.end(), u);
        });
    if (covers_all) {
      recommended.push_back({std::move(q), result.valid_nodes.size()});
    }
  }

  // Rank: more selective queries (smaller answer sets) first.
  std::sort(recommended.begin(), recommended.end(),
            [](const Recommended& a, const Recommended& b) {
              return a.answer_size < b.answer_size;
            });
  std::cout << recommended.size()
            << " queries match all sample answers; top recommendations:\n";
  for (size_t i = 0; i < std::min<size_t>(3, recommended.size()); ++i) {
    std::cout << "  #" << i + 1 << " (answer size "
              << recommended[i].answer_size << ") "
              << recommended[i].query.ToString() << "\n";
  }
  return 0;
}
