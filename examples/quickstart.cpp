// Quickstart: build a small labeled graph, pose a pivoted query, and answer
// it three ways — brute-force enumeration, the pure optimist/pessimist, and
// the full SmartPSI engine. Uses the running example of the paper's
// Figure 1 (pivot answer: u1 and u6).

#include <iostream>

#include "core/pure_drivers.h"
#include "core/smart_psi.h"
#include "graph/graph_builder.h"
#include "graph/query_graph.h"
#include "match/engine.h"
#include "signature/builders.h"

using psi::graph::NodeId;

int main() {
  // --- 1. Build the data graph of paper Figure 1(b) -------------------
  // Labels: A=0, B=1, C=2.
  psi::graph::GraphBuilder builder;
  const NodeId u1 = builder.AddNode(0);  // A
  const NodeId u2 = builder.AddNode(1);  // B
  const NodeId u3 = builder.AddNode(2);  // C
  const NodeId u4 = builder.AddNode(2);  // C
  const NodeId u5 = builder.AddNode(1);  // B
  const NodeId u6 = builder.AddNode(0);  // A
  for (const auto& [a, b] :
       {std::pair{u1, u2}, {u1, u3}, {u1, u4}, {u1, u5}, {u2, u3}, {u2, u4},
        {u5, u3}, {u5, u4}, {u6, u3}, {u6, u5}}) {
    builder.AddEdge(a, b);
  }
  const psi::graph::Graph g = std::move(builder).Build();
  std::cout << "Data graph: " << g.num_nodes() << " nodes, " << g.num_edges()
            << " edges\n";

  // --- 2. Build the pivoted query S(v1, v2, v3) -----------------------
  psi::graph::QueryGraph query;
  const NodeId v1 = query.AddNode(0);  // A  <- pivot
  const NodeId v2 = query.AddNode(1);  // B
  const NodeId v3 = query.AddNode(2);  // C
  query.AddEdge(v1, v2);
  query.AddEdge(v2, v3);
  query.AddEdge(v1, v3);
  query.set_pivot(v1);
  std::cout << "Query: " << query.ToString() << "\n\n";

  // --- 3. The expensive way: enumerate every embedding, project -------
  psi::match::BasicEngine enumerator(g);
  const auto projection =
      enumerator.ProjectPivot(query, psi::match::MatchingEngine::Options());
  std::cout << "Enumeration found " << projection.embedding_count
            << " embeddings to produce " << projection.pivot_matches.size()
            << " distinct pivot bindings:";
  for (const NodeId u : projection.pivot_matches) std::cout << " u" << u + 1;
  std::cout << "\n";

  // --- 4. The PSI way: one decision per candidate ---------------------
  const auto graph_sigs = psi::signature::BuildMatrixSignatures(
      g, psi::signature::kDefaultDepth, g.num_labels());
  for (const auto strategy : {psi::core::PureStrategy::kOptimistic,
                              psi::core::PureStrategy::kPessimistic}) {
    psi::core::PureDriverOptions options;
    options.strategy = strategy;
    const auto result = psi::core::EvaluatePure(g, graph_sigs, query, options);
    std::cout << (strategy == psi::core::PureStrategy::kOptimistic
                      ? "Optimist  "
                      : "Pessimist ")
              << "-> " << result.valid_nodes.size() << " valid nodes ("
              << result.stats.recursive_calls << " search calls, "
              << result.stats.pruned_by_signature << " signature-pruned)\n";
  }

  // --- 5. The full SmartPSI engine -------------------------------------
  psi::core::SmartPsiEngine engine(g);
  const auto smart = engine.Evaluate(query);
  std::cout << "SmartPSI  -> valid nodes:";
  for (const NodeId u : smart.valid_nodes) std::cout << " u" << u + 1;
  std::cout << "  (" << smart.num_candidates << " candidates, "
            << smart.total_seconds * 1e3 << " ms)\n";
  return 0;
}
