// Frequent subgraph mining with PSI-based support (paper §2.2 / §5.5):
// mines frequent patterns from a single large graph with MNI support
// computed two ways — ScaleMine-style subgraph-isomorphism enumeration and
// SmartPSI-style pivoted evaluation — and shows they find the same patterns
// with PSI doing far less work.

#include <iostream>

#include "fsm/canonical.h"
#include "fsm/miner.h"
#include "graph/datasets.h"

int main() {
  const psi::graph::Graph g =
      psi::graph::MakeDataset(psi::graph::Dataset::kHuman, 0.5, 11);
  std::cout << "Input graph: " << g.num_nodes() << " nodes, "
            << g.num_edges() << " edges, " << g.num_labels() << " labels\n";

  psi::fsm::FsmConfig config;
  config.min_support = 45;
  config.max_edges = 3;
  config.num_threads = 4;

  config.method = psi::fsm::SupportMethod::kEnumeration;
  const auto by_enum = psi::fsm::FsmMiner(g, config).Mine();
  std::cout << "\nScaleMine-style (subgraph isomorphism): "
            << by_enum.frequent.size() << " frequent patterns in "
            << by_enum.seconds << "s (" << by_enum.candidates_evaluated
            << " candidates evaluated)\n";

  config.method = psi::fsm::SupportMethod::kPsi;
  const auto by_psi = psi::fsm::FsmMiner(g, config).Mine();
  std::cout << "ScaleMine+SmartPSI (PSI support):       "
            << by_psi.frequent.size() << " frequent patterns in "
            << by_psi.seconds << "s (of which signatures "
            << by_psi.signature_seconds << "s)\n";

  const bool same_patterns =
      by_enum.frequent.size() == by_psi.frequent.size();
  std::cout << "\nSame pattern count from both methods: "
            << (same_patterns ? "yes" : "NO (bug!)") << ", speedup "
            << by_enum.seconds / std::max(1e-9, by_psi.seconds) << "x\n";

  std::cout << "\nFirst frequent patterns (support >= " << config.min_support
            << "):\n";
  const size_t shown = std::min<size_t>(15, by_psi.frequent.size());
  for (size_t i = 0; i < shown; ++i) {
    std::cout << "  support>=" << by_psi.frequent[i].support << "  "
              << by_psi.frequent[i].pattern.ToString() << "\n";
  }
  if (shown < by_psi.frequent.size()) {
    std::cout << "  ... and " << by_psi.frequent.size() - shown << " more\n";
  }
  return 0;
}
