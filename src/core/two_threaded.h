#ifndef SMARTPSI_CORE_TWO_THREADED_H_
#define SMARTPSI_CORE_TWO_THREADED_H_

#include <vector>

#include "graph/graph.h"
#include "graph/query_graph.h"
#include "match/restart_policy.h"
#include "match/search_stats.h"
#include "signature/signature_matrix.h"
#include "util/timer.h"

namespace psi::core {

/// The two-threaded baseline of paper §4.1 (Figure 5): for every candidate
/// node, an optimistic thread races a pessimistic thread; the first decisive
/// finisher stops the other and supplies the answer. Each node therefore
/// costs ≈ min(T_opt, T_pess) wall-clock but 2× CPU — the under-utilization
/// and thread-churn overheads that motivate SmartPSI.
class TwoThreadedBaseline {
 public:
  struct Options {
    /// Faithful mode: spawn (and join) two fresh std::threads per node,
    /// reproducing the "initiating and stopping millions of threads"
    /// overhead the paper criticizes. When false, two persistent workers
    /// are reused (a mildly charitable variant; still 2× CPU per node).
    bool spawn_per_node = true;
    size_t super_optimistic_limit = 10;
    util::Deadline deadline;
    /// Luby restarts for the pessimistic racer (the optimist ignores the
    /// field). Sound under the race: the final run is unlimited, so the
    /// pessimist still reaches a definite answer if it wins.
    match::RestartOptions restarts;
  };

  struct Result {
    std::vector<graph::NodeId> valid_nodes;  // sorted
    bool complete = true;
    double seconds = 0.0;
    /// How often each method won the race (decided first).
    size_t optimistic_wins = 0;
    size_t pessimistic_wins = 0;
    match::SearchStats optimistic_stats;
    match::SearchStats pessimistic_stats;
  };

  TwoThreadedBaseline(const graph::Graph& g,
                      const signature::SignatureMatrix& graph_sigs)
      : graph_(g), graph_sigs_(graph_sigs) {}

  Result Evaluate(const graph::QueryGraph& q, const Options& options);

 private:
  const graph::Graph& graph_;
  const signature::SignatureMatrix& graph_sigs_;
};

}  // namespace psi::core

#endif  // SMARTPSI_CORE_TWO_THREADED_H_
