#ifndef SMARTPSI_CORE_PURE_DRIVERS_H_
#define SMARTPSI_CORE_PURE_DRIVERS_H_

#include <vector>

#include "core/query_context.h"
#include "graph/graph.h"
#include "graph/query_graph.h"
#include "match/restart_policy.h"
#include "match/search_scratch.h"
#include "match/search_stats.h"
#include "signature/signature_matrix.h"
#include "signature/sparse_requirement.h"
#include "util/stop_token.h"
#include "util/timer.h"

namespace psi::core {

/// The single-method baselines of Figure 10: apply one PSI method to every
/// candidate node, with the selectivity-heuristic plan.
enum class PureStrategy {
  /// Super-optimistic pass + full optimistic fallback on every node.
  kOptimistic,
  /// Signature-pruned pessimistic search on every node.
  kPessimistic,
};

struct PureDriverResult {
  std::vector<graph::NodeId> valid_nodes;  // sorted
  /// False if the deadline/stop interrupted evaluation (valid_nodes is a
  /// subset of the true answer).
  bool complete = true;
  double seconds = 0.0;
  match::SearchStats stats;
};

struct PureDriverOptions {
  PureStrategy strategy = PureStrategy::kPessimistic;
  size_t super_optimistic_limit = 10;
  util::Deadline deadline;
  util::StopToken stop;
  /// Intra-query parallelism: split the pivot-candidate list across this
  /// many work-stealing workers (1 = sequential). Each worker owns its
  /// evaluator, scratch, stats, and nogood store; a complete parallel run
  /// returns valid_nodes bit-identical to the sequential run.
  size_t search_threads = 1;
  /// Luby restarts + nogood recording on the pessimistic search path.
  match::RestartOptions restarts;
  /// Snapshot-generation salt for the per-query nogood stores, so recorded
  /// prefixes can never be confused across graph versions.
  uint64_t nogood_salt = 0;
  /// Optional shared batch preparation (DESIGN.md §17): when non-null,
  /// PrepareQuery is skipped and the driver evaluates against this
  /// immutable context — equal by construction to what PrepareQuery would
  /// return, so the answer is bit-identical. The driver copies the
  /// candidate list before any in-place filtering; the context is never
  /// written.
  const QueryContext* prepared = nullptr;
  /// Sparse view of the pivot's signature row matching `prepared` (the
  /// level-0 requirement BindQuery would build). Lets the pessimistic
  /// prefilter run the same bulk kernel without constructing a throwaway
  /// evaluator binding. Ignored when `prepared` is null.
  const signature::SparseRequirement* prepared_pivot_requirement = nullptr;
  /// Optional scratch pool: each worker leases its search arena from here
  /// instead of allocating privately, so a batch of queries reuses the
  /// same warmed-up buffers (DESIGN.md §9, §17).
  match::SearchScratchPool* scratch_pool = nullptr;
};

/// Evaluates the full PSI query with one fixed method. `graph_sigs` must
/// cover `g`.
PureDriverResult EvaluatePure(const graph::Graph& g,
                              const signature::SignatureMatrix& graph_sigs,
                              const graph::QueryGraph& q,
                              const PureDriverOptions& options);

}  // namespace psi::core

#endif  // SMARTPSI_CORE_PURE_DRIVERS_H_
