#ifndef SMARTPSI_CORE_SMART_PSI_H_
#define SMARTPSI_CORE_SMART_PSI_H_

#include <memory>
#include <vector>

#include "core/config.h"
#include "core/prediction_cache.h"
#include "core/psi_result.h"
#include "graph/equivalence.h"
#include "graph/graph.h"
#include "graph/query_graph.h"
#include "match/search_scratch.h"
#include "signature/signature_matrix.h"
#include "util/random.h"
#include "util/stop_token.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace psi::core {

/// The Realist (paper §4): SmartPSI's query engine.
///
/// Construction loads the graph signatures (matrix-based by default). Each
/// Evaluate() call then:
///   1. extracts the candidate pivot bindings,
///   2. evaluates a small random sample of them (10%, capped) with the
///      pessimistic method to label training data, timing a pool of
///      execution plans per node under escalating time limits,
///   3. trains Model α (valid/invalid Random Forest) and Model β
///      (best-plan Random Forest) on the neighborhood-signature features,
///   4. evaluates every remaining candidate with the predicted method and
///      plan under the preemptive 3-state detection-and-recovery executor
///      (MaxTime = 2 × AvgT), consulting the signature-keyed prediction
///      cache first,
///   5. returns the exact set of valid nodes with full instrumentation.
///
/// Exactness does not depend on the models: both PSI methods explore the
/// complete search space in the worst case, so a misprediction costs time,
/// never correctness.
///
/// Thread-safe for concurrent Evaluate() calls only if config.num_threads
/// == 1 and enable_cache == false; otherwise evaluate queries one at a time
/// (the engine's internal pool already parallelizes within a query).
class SmartPsiEngine {
 public:
  /// Builds graph signatures eagerly; `g` must outlive the engine.
  explicit SmartPsiEngine(const graph::Graph& g,
                          SmartPsiConfig config = SmartPsiConfig());

  /// Unbound engine: no graph, no signatures. Evaluate() asserts until the
  /// first Rebind(). This is the service-worker form — workers are created
  /// once and rebound to whichever pinned snapshot each request resolved.
  explicit SmartPsiEngine(SmartPsiConfig config);

  /// Adopts precomputed graph signatures (e.g. loaded with
  /// signature::LoadSignatureFile) instead of building them. The config's
  /// signature method/depth/decay are overridden from the matrix metadata;
  /// the matrix must have one row per node of `g` and at least
  /// g.num_labels() columns.
  SmartPsiEngine(const graph::Graph& g, signature::SignatureMatrix graph_sigs,
                 SmartPsiConfig config = SmartPsiConfig());

  /// Shares caller-owned precomputed signatures without copying them — the
  /// constructor a query service uses to fan one matrix out to many
  /// per-worker engines. `shared_sigs` must outlive the engine and satisfy
  /// the same shape requirements as the adopting constructor; the config's
  /// signature method/depth/decay are overridden from the matrix metadata.
  SmartPsiEngine(const graph::Graph& g,
                 const signature::SignatureMatrix* shared_sigs,
                 SmartPsiConfig config = SmartPsiConfig());

  /// Evaluates one pivoted query. `deadline` bounds the whole call; on
  /// expiry the result is marked incomplete. `stop` cancels cooperatively
  /// (service shutdown, caller abandonment) — the result is then also
  /// marked incomplete.
  PsiQueryResult Evaluate(const graph::QueryGraph& q,
                          util::Deadline deadline = util::Deadline(),
                          util::StopToken stop = util::StopToken());

  /// Points the engine at a different (graph, shared signatures) pair — the
  /// per-request snapshot rebind. No-op when already bound to the same
  /// pair (the steady-state fast path: one pointer comparison). Otherwise
  /// drops graph-derived memos (the equivalence partition) and overrides
  /// the config's signature metadata from the matrix, exactly like the
  /// shared-signature constructor. Both `g` and `sigs` must outlive the
  /// binding — the service guarantees this by holding a snapshot pin for
  /// the whole request. Only call between Evaluate() calls.
  void Rebind(const graph::Graph& g, const signature::SignatureMatrix* sigs);

  /// True once the engine has a graph + signatures (construction-time or
  /// via Rebind). Evaluate() asserts this.
  bool bound() const { return graph_ != nullptr; }

  /// Sets the snapshot keying applied to every prediction-cache access:
  /// `salt` is XORed into the key (version-salted keys keep generations
  /// apart) and `epoch` stamps inserts / gates lookups (the belt-and-
  /// braces tripwire behind Counters::epoch_drops). Standalone engines
  /// keep the default (0, 0). Only call between Evaluate() calls.
  void set_cache_keying(uint64_t salt, uint64_t epoch) {
    cache_salt_ = salt;
    cache_epoch_ = epoch;
  }

  const signature::SignatureMatrix& graph_signatures() const {
    return *sigs_view_;
  }
  const SmartPsiConfig& config() const { return config_; }
  const graph::Graph& graph() const { return *graph_; }

  /// Seconds spent building the graph signatures at construction.
  double signature_build_seconds() const { return signature_build_seconds_; }

  /// Routes prediction-cache traffic to a caller-owned cache shared across
  /// engines (the query service's amortizable state) instead of the
  /// engine-private one. Pass nullptr to revert to the private cache. The
  /// shared cache must outlive the engine; set config.query_keyed_cache so
  /// entries from different query shapes do not pollute each other.
  void UseSharedCache(PredictionCache* cache) {
    active_cache_ = cache != nullptr ? cache : &cache_;
  }

  /// Drops all cached predictions (e.g., between unrelated query batches).
  void ClearCache() { active_cache_->Clear(); }

  /// Toggles prediction-cache consultation at runtime — the service's
  /// cache-bypass degradation switch (DESIGN.md §11). Only call while no
  /// Evaluate() is in flight on this engine (the service flips it between
  /// checkout and evaluation, where it holds the engine exclusively).
  void set_cache_enabled(bool enabled) { config_.enable_cache = enabled; }
  bool cache_enabled() const { return config_.enable_cache; }

 private:
  /// Lazily computed equivalence partition (exploit_equivalence only).
  const graph::EquivalenceClasses& EquivalencePartition();

  const signature::SignatureMatrix& sigs() const { return *sigs_view_; }

  /// Null only for an unbound engine (see bound()); never null once a
  /// constructor with a graph or Rebind() has run.
  const graph::Graph* graph_ = nullptr;
  SmartPsiConfig config_;
  std::unique_ptr<util::ThreadPool> pool_;  // null when num_threads <= 1
  signature::SignatureMatrix graph_sigs_;  // empty when signatures are shared
  const signature::SignatureMatrix* sigs_view_ = &graph_sigs_;
  double signature_build_seconds_ = 0.0;
  PredictionCache cache_;
  PredictionCache* active_cache_ = &cache_;
  /// Snapshot keying (set_cache_keying): XOR salt on every cache key plus
  /// the epoch stamped into inserts and expected by lookups.
  uint64_t cache_salt_ = 0;
  uint64_t cache_epoch_ = 0;
  /// Search arenas reused across queries: every evaluator built inside
  /// Evaluate() leases one, so a long-lived engine (e.g. a service
  /// worker's) reaches an allocation-free steady state per candidate.
  match::SearchScratchPool scratch_pool_;
  std::unique_ptr<graph::EquivalenceClasses> equivalence_;
  util::Rng rng_;
};

}  // namespace psi::core

#endif  // SMARTPSI_CORE_SMART_PSI_H_
