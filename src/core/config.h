#ifndef SMARTPSI_CORE_CONFIG_H_
#define SMARTPSI_CORE_CONFIG_H_

#include <cstddef>
#include <cstdint>

#include "core/classifier.h"
#include "match/restart_policy.h"
#include "signature/signature_matrix.h"

namespace psi::core {

/// Tuning knobs for the SmartPSI engine (paper §4.2–4.3). Defaults follow
/// the paper where it states values (10% training sample capped at 1000
/// nodes, super-optimistic candidate cap 10, MaxTime = 2 × AvgT).
struct SmartPsiConfig {
  // --- Signatures -------------------------------------------------------
  /// Builder for graph and query signatures (must match; engine-enforced).
  signature::Method signature_method = signature::Method::kMatrix;
  /// Maximum propagation depth D.
  uint32_t signature_depth = 2;
  /// Per-hop weight decay (paper: 1/2). Any value in (0, 1] keeps pruning
  /// sound; smaller values weight close neighbors more heavily.
  float signature_decay = signature::SignatureMatrix::kDefaultDecay;

  // --- Training (Models α and β) ----------------------------------------
  /// Fraction of candidate nodes evaluated to build training data.
  double train_fraction = 0.1;
  /// Hard cap on training nodes (paper §5.2 uses 1000).
  size_t max_train_nodes = 1000;
  /// Below this many candidates, skip ML entirely and evaluate everything
  /// pessimistically with the heuristic plan (training would dominate).
  size_t min_candidates_for_ml = 24;
  /// Number of plans in Model β's pool (heuristic plan + random plans).
  size_t plan_pool_size = 4;
  /// Initial per-plan time limit during Model β training, and its growth
  /// factor per escalation round (paper §4.2.2: "gradually increased").
  double plan_time_limit_init_seconds = 0.01;
  double plan_time_limit_growth = 4.0;
  size_t plan_escalation_rounds = 3;
  /// Learner backing Models α and β (paper: Random Forest; §5.4 shows it
  /// beats SVM and NN on accuracy and build time).
  ClassifierKind classifier = ClassifierKind::kRandomForest;
  /// Random Forest size for both models (kRandomForest only).
  size_t forest_trees = 20;

  // --- Evaluation --------------------------------------------------------
  /// Candidate cap of the super-optimistic first pass (paper uses 10).
  size_t super_optimistic_limit = 10;
  /// MaxTime(u) = timeout_factor × AvgT(method, plan) (paper §4.3 uses 2).
  double timeout_factor = 2.0;
  /// Floor for MaxTime so microsecond-scale averages cannot cause
  /// pathological preemption thrash.
  double min_preemption_seconds = 1e-3;
  /// Enable Model β (otherwise: heuristic plan for everything).
  bool enable_plan_model = true;
  /// Enable the signature-keyed prediction cache (paper §4.2.3).
  bool enable_cache = true;
  /// Key cache entries by (query fingerprint, node signature) and derive
  /// the plan pool deterministically from the query instead of the engine's
  /// evolving RNG state. Required when a cache is shared across queries of
  /// different shapes (the service layer): a node's confirmed type and best
  /// plan are only meaningful relative to one query, and plan indices only
  /// relative to one plan pool. Off by default — the single-engine batch
  /// behaviour keys by node signature alone.
  bool query_keyed_cache = false;
  /// Enable the 3-state detection-and-recovery executor (paper §4.3);
  /// disabled, mispredictions simply run to completion.
  bool enable_preemption = true;

  /// Luby restarts + nogood recording for the pessimistic search paths
  /// (phase-2 evaluation and the small-candidate fast path; training runs
  /// stay restart-free so per-plan timing labels are comparable). The
  /// final run of every restart sequence is budget-unlimited, so answers
  /// are unchanged — only tail latency is.
  match::RestartOptions restarts;

  /// Evaluate one representative per syntactic-equivalence class of data
  /// nodes and copy its answer to the twins (BoostIso-style, see
  /// graph/equivalence.h). Classes are computed once per engine, lazily.
  bool exploit_equivalence = false;

  // --- Infrastructure ----------------------------------------------------
  /// Worker threads for signature construction and candidate evaluation.
  size_t num_threads = 1;
  /// Seed for all engine-internal randomness (sampling, forests, plans).
  uint64_t seed = 0x5ca1ab1eULL;
};

}  // namespace psi::core

#endif  // SMARTPSI_CORE_CONFIG_H_
