#include "core/two_threaded.h"

#include <atomic>
#include <memory>
#include <thread>

#include "core/query_context.h"
#include "match/plan.h"
#include "match/psi_evaluator.h"
#include "util/stop_token.h"
#include "util/thread_pool.h"

namespace psi::core {

namespace {

/// Outcome slot the two racers publish into; 0 = undecided.
enum RaceState : int {
  kUndecided = 0,
  kDecidedValid = 1,
  kDecidedInvalid = 2,
  kDecidedTimeout = 3,
};

struct Racer {
  match::PsiEvaluator evaluator;
  match::SearchStats stats;

  Racer(const graph::Graph& g, const signature::SignatureMatrix& sigs)
      : evaluator(g, sigs) {}
};

RaceState ToRaceState(match::Outcome outcome) {
  switch (outcome) {
    case match::Outcome::kValid:
      return kDecidedValid;
    case match::Outcome::kInvalid:
      return kDecidedInvalid;
    case match::Outcome::kTimeout:
      return kDecidedTimeout;
    case match::Outcome::kStopped:
      return kUndecided;  // the loser: does not publish
    case match::Outcome::kBudgetExhausted:
      // Internal to the restart loop; a racer never returns it. Treat a
      // hypothetical leak as inconclusive rather than publishing a wrong
      // decision.
      return kUndecided;
  }
  return kUndecided;
}

}  // namespace

TwoThreadedBaseline::Result TwoThreadedBaseline::Evaluate(
    const graph::QueryGraph& q, const Options& options) {
  util::WallTimer timer;
  Result result;

  const QueryContext ctx = PrepareQuery(graph_, graph_sigs_, q);
  if (!ctx.feasible || ctx.candidates.empty()) {
    result.seconds = timer.Seconds();
    return result;
  }

  const match::Plan plan = match::MakeHeuristicPlan(q, graph_, q.pivot());
  Racer optimist(graph_, graph_sigs_);
  Racer pessimist(graph_, graph_sigs_);
  match::NogoodStore pessimist_nogoods;
  optimist.evaluator.BindQuery(q, ctx.query_sigs, plan);
  pessimist.evaluator.BindQuery(q, ctx.query_sigs, plan);

  // Persistent-worker variant shares one pool across nodes.
  std::unique_ptr<util::ThreadPool> pool;
  if (!options.spawn_per_node) pool = std::make_unique<util::ThreadPool>(2);

  for (const graph::NodeId u : ctx.candidates) {
    if (options.deadline.Expired()) {
      result.complete = false;
      break;
    }

    util::StopSource stop_source;
    std::atomic<int> state{kUndecided};

    auto publish = [&](match::Outcome outcome, bool from_optimist) {
      const RaceState decided = ToRaceState(outcome);
      if (decided == kUndecided) return;
      int expected = kUndecided;
      // acq_rel: the winner's release publishes its decision before the
      // loser (or the main thread) can acquire-observe the decided state;
      // only the single CAS winner touches the win counters, and the main
      // thread reads them after joining both racers.
      if (state.compare_exchange_strong(expected, decided,
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
        if (from_optimist) {
          ++result.optimistic_wins;
        } else {
          ++result.pessimistic_wins;
        }
        stop_source.RequestStop();
      }
    };

    auto run_optimist = [&] {
      match::PsiEvaluator::Options opts;
      opts.super_optimistic_limit = options.super_optimistic_limit;
      opts.deadline = options.deadline;
      opts.stop = util::StopToken(&stop_source);
      const match::Outcome outcome =
          optimist.evaluator.EvaluateNodeOptimisticStrategy(
              u, opts, &optimist.stats);
      publish(outcome, /*from_optimist=*/true);
    };
    auto run_pessimist = [&] {
      match::PsiEvaluator::Options opts;
      opts.mode = match::PsiMode::kPessimistic;
      opts.deadline = options.deadline;
      opts.stop = util::StopToken(&stop_source);
      opts.restarts = options.restarts;
      // Races are joined before the next candidate starts, so the store is
      // only ever touched by one pessimist run at a time.
      opts.nogoods = &pessimist_nogoods;
      const match::Outcome outcome =
          pessimist.evaluator.EvaluateNode(u, opts, &pessimist.stats);
      publish(outcome, /*from_optimist=*/false);
    };

    if (options.spawn_per_node) {
      std::thread t1(run_optimist);
      std::thread t2(run_pessimist);
      t1.join();
      t2.join();
    } else {
      pool->Submit(run_optimist);
      pool->Submit(run_pessimist);
      pool->Wait();
    }

    // Relaxed suffices: both racers were joined (or drained via the pool)
    // above, which already orders their writes before this read.
    switch (state.load(std::memory_order_relaxed)) {
      case kDecidedValid:
        result.valid_nodes.push_back(u);
        break;
      case kDecidedInvalid:
        break;
      default:
        // Both racers timed out or were stopped by the global deadline.
        result.complete = false;
        break;
    }
    if (!result.complete) break;
  }

  result.optimistic_stats = optimist.stats;
  result.pessimistic_stats = pessimist.stats;
  result.seconds = timer.Seconds();
  return result;
}

}  // namespace psi::core
