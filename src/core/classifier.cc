#include "core/classifier.h"

namespace psi::core {

const char* ClassifierKindName(ClassifierKind kind) {
  switch (kind) {
    case ClassifierKind::kRandomForest:
      return "random-forest";
    case ClassifierKind::kLinearSvm:
      return "linear-svm";
    case ClassifierKind::kNeuralNet:
      return "neural-net";
  }
  return "unknown";
}

Classifier::Classifier(ClassifierKind kind) : kind_(kind) {
  switch (kind) {
    case ClassifierKind::kRandomForest:
      model_.emplace<ml::RandomForest>();
      break;
    case ClassifierKind::kLinearSvm:
      model_.emplace<ml::LinearSvm>();
      break;
    case ClassifierKind::kNeuralNet:
      model_.emplace<ml::NeuralNet>();
      break;
  }
}

void Classifier::Train(const ml::Dataset& data, size_t num_classes,
                       size_t hint_trees, util::Rng& rng) {
  switch (kind_) {
    case ClassifierKind::kRandomForest: {
      ml::ForestConfig config;
      config.num_trees = hint_trees;
      std::get<ml::RandomForest>(model_).Train(data, num_classes, config,
                                               rng);
      break;
    }
    case ClassifierKind::kLinearSvm:
      std::get<ml::LinearSvm>(model_).Train(data, num_classes,
                                            ml::SvmConfig(), rng);
      break;
    case ClassifierKind::kNeuralNet:
      std::get<ml::NeuralNet>(model_).Train(data, num_classes,
                                            ml::MlpConfig(), rng);
      break;
  }
}

int32_t Classifier::Predict(std::span<const float> features) const {
  return std::visit([&](const auto& model) { return model.Predict(features); },
                    model_);
}

bool Classifier::trained() const {
  return std::visit([](const auto& model) { return model.trained(); },
                    model_);
}

}  // namespace psi::core
