#ifndef SMARTPSI_CORE_PREDICTION_CACHE_H_
#define SMARTPSI_CORE_PREDICTION_CACHE_H_

#include <array>
#include <cstdint>
#include <optional>
#include <unordered_map>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace psi::core {

/// Signature-keyed prediction cache (paper §4.2.3). Nodes with identical
/// neighborhood signatures are structurally indistinguishable to the
/// models, so the confirmed (method, plan) decision of one is reused for
/// the others without consulting the classifiers — and, because entries are
/// written only after an evaluation *confirmed* the node type, cached
/// decisions sidestep model mispredictions too.
///
/// Correctness is unaffected either way: every node is still evaluated;
/// only the choice of method/plan comes from the cache.
///
/// Thread-safe; sharded 16 ways so parallel candidate evaluation does not
/// serialize on one mutex (every candidate performs a lookup + insert).
class PredictionCache {
 public:
  struct Entry {
    /// Confirmed node type: true = valid (optimistic method is right).
    bool valid;
    /// Plan-pool index that completed the evaluation.
    uint32_t plan_index;
    /// Generation stamp of the state the decision was confirmed against —
    /// the service stamps entries with the graph-snapshot version. 0 for
    /// standalone engines with no snapshot. An entry whose epoch differs
    /// from the lookup's expected epoch is treated as a miss and counted
    /// in Counters::epoch_drops (the cross-snapshot tripwire).
    uint64_t epoch = 0;
  };

  /// Monotonic usage counters, aggregated across shards. A consistent
  /// per-shard view is taken under the shard lock; the totals may mix
  /// slightly different instants across shards, which is fine for
  /// monitoring.
  struct Counters {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t inserts = 0;
    /// Lookups that found an entry under the right key but from a
    /// different epoch (dropped, counted as a miss). With the service's
    /// version-salted keys this must stay 0 — asserted by
    /// `psi_loadgen --swap-storm`; a nonzero value means a cache key
    /// collided across snapshot generations.
    uint64_t epoch_drops = 0;

    double HitRate() const {
      const uint64_t lookups = hits + misses;
      return lookups == 0
                 ? 0.0
                 : static_cast<double>(hits) / static_cast<double>(lookups);
    }
  };

  /// Returns the cached decision for a signature hash, if any. An entry
  /// stamped with a different epoch is dropped (nullopt + epoch_drops).
  std::optional<Entry> Lookup(uint64_t signature_hash,
                              uint64_t expected_epoch = 0) const;

  /// Records a confirmed decision (last writer wins).
  void Insert(uint64_t signature_hash, Entry entry);

  size_t size() const;
  void Clear();

  /// Snapshot of hit/miss/insert counters since construction (Clear() does
  /// not reset them; they describe traffic, not contents).
  Counters counters() const;

 private:
  static constexpr size_t kShards = 16;

  /// Everything in a shard — the map and its traffic counters — is guarded
  /// by the shard's own mutex; shards never nest, so no lock order exists.
  struct Shard {
    mutable util::Mutex mutex;
    std::unordered_map<uint64_t, Entry> entries PSI_GUARDED_BY(mutex);
    // Plain integers bumped under the shard lock already held for the map
    // operation itself — no extra synchronization on the fast path.
    mutable uint64_t hits PSI_GUARDED_BY(mutex) = 0;
    mutable uint64_t misses PSI_GUARDED_BY(mutex) = 0;
    mutable uint64_t epoch_drops PSI_GUARDED_BY(mutex) = 0;
    uint64_t inserts PSI_GUARDED_BY(mutex) = 0;
  };

  /// The low bits feed unordered_map's bucketing; shard on high bits so the
  /// two partitions are independent.
  static size_t ShardIndex(uint64_t hash) { return (hash >> 60) % kShards; }

  std::array<Shard, kShards> shards_;
};

}  // namespace psi::core

#endif  // SMARTPSI_CORE_PREDICTION_CACHE_H_
