#ifndef SMARTPSI_CORE_QUERY_CONTEXT_H_
#define SMARTPSI_CORE_QUERY_CONTEXT_H_

#include <vector>

#include "graph/graph.h"
#include "graph/query_graph.h"
#include "signature/builders.h"
#include "signature/signature_matrix.h"

namespace psi::core {

/// Per-query preparation shared by every driver (SmartPSI, the pure
/// optimistic/pessimistic drivers, the two-threaded baseline): query
/// signatures in the data graph's label space plus the candidate pivot
/// bindings.
struct QueryContext {
  signature::SignatureMatrix query_sigs;
  std::vector<graph::NodeId> candidates;
  /// False when some query node's label does not occur in the data graph
  /// at all — no embedding can exist and the query answer is empty.
  bool feasible = true;
};

/// Builds the context. Query signatures are built with the same method,
/// depth and column count as `graph_sigs` so satisfaction tests and
/// satisfiability scores are well-defined.
QueryContext PrepareQuery(const graph::Graph& g,
                          const signature::SignatureMatrix& graph_sigs,
                          const graph::QueryGraph& q);

}  // namespace psi::core

#endif  // SMARTPSI_CORE_QUERY_CONTEXT_H_
