#include "core/prediction_cache.h"

#include "util/fault_injection.h"
#include "util/mutex.h"

namespace psi::core {

std::optional<PredictionCache::Entry> PredictionCache::Lookup(
    uint64_t signature_hash, uint64_t expected_epoch) const {
  // Chaos hooks, evaluated before the shard lock so a firing schedule never
  // extends the critical section. A forced miss models cache eviction /
  // cold restart; poison models a stale or corrupted entry. Both are
  // correctness-safe by design: entries only steer the (method, plan)
  // choice, every node is still evaluated (see class comment).
  const bool forced_miss = PSI_INJECT_FAULT(util::faults::kCacheLookupMiss);
  const bool poison = PSI_INJECT_FAULT(util::faults::kCacheLookupPoison);
  const Shard& shard = shards_[ShardIndex(signature_hash)];
  util::MutexLock lock(shard.mutex);
  const auto it =
      forced_miss ? shard.entries.end() : shard.entries.find(signature_hash);
  if (it == shard.entries.end()) {
    ++shard.misses;
    return std::nullopt;
  }
  if (it->second.epoch != expected_epoch) {
    // Key matched but the entry was confirmed against a different snapshot
    // generation. With version-salted keys this should be unreachable; the
    // counter is the tripwire swap-storm asserts on.
    ++shard.epoch_drops;
    ++shard.misses;
    return std::nullopt;
  }
  ++shard.hits;
  Entry entry = it->second;
  if (poison) {
    entry.valid = !entry.valid;
    ++entry.plan_index;  // consumers clamp out-of-range plan indices
  }
  return entry;
}

void PredictionCache::Insert(uint64_t signature_hash, Entry entry) {
  Shard& shard = shards_[ShardIndex(signature_hash)];
  util::MutexLock lock(shard.mutex);
  shard.entries[signature_hash] = entry;
  ++shard.inserts;
}

size_t PredictionCache::size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    util::MutexLock lock(shard.mutex);
    total += shard.entries.size();
  }
  return total;
}

PredictionCache::Counters PredictionCache::counters() const {
  Counters total;
  for (const Shard& shard : shards_) {
    util::MutexLock lock(shard.mutex);
    total.hits += shard.hits;
    total.misses += shard.misses;
    total.epoch_drops += shard.epoch_drops;
    total.inserts += shard.inserts;
  }
  return total;
}

void PredictionCache::Clear() {
  for (Shard& shard : shards_) {
    util::MutexLock lock(shard.mutex);
    shard.entries.clear();
  }
}

}  // namespace psi::core
