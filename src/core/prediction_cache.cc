#include "core/prediction_cache.h"

#include "util/mutex.h"

namespace psi::core {

std::optional<PredictionCache::Entry> PredictionCache::Lookup(
    uint64_t signature_hash) const {
  const Shard& shard = shards_[ShardIndex(signature_hash)];
  util::MutexLock lock(shard.mutex);
  const auto it = shard.entries.find(signature_hash);
  if (it == shard.entries.end()) {
    ++shard.misses;
    return std::nullopt;
  }
  ++shard.hits;
  return it->second;
}

void PredictionCache::Insert(uint64_t signature_hash, Entry entry) {
  Shard& shard = shards_[ShardIndex(signature_hash)];
  util::MutexLock lock(shard.mutex);
  shard.entries[signature_hash] = entry;
  ++shard.inserts;
}

size_t PredictionCache::size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    util::MutexLock lock(shard.mutex);
    total += shard.entries.size();
  }
  return total;
}

PredictionCache::Counters PredictionCache::counters() const {
  Counters total;
  for (const Shard& shard : shards_) {
    util::MutexLock lock(shard.mutex);
    total.hits += shard.hits;
    total.misses += shard.misses;
    total.inserts += shard.inserts;
  }
  return total;
}

void PredictionCache::Clear() {
  for (Shard& shard : shards_) {
    util::MutexLock lock(shard.mutex);
    shard.entries.clear();
  }
}

}  // namespace psi::core
