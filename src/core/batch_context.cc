#include "core/batch_context.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "match/candidates.h"
#include "signature/builders.h"

namespace psi::core {

namespace {

/// Exact pivot-independent structure key: node labels plus the full edge
/// list with edge labels, in adjacency order. Over-discriminates safely —
/// two equal queries built in different insertion orders merely miss a
/// reuse; they can never falsely share.
std::string StructureKey(const graph::QueryGraph& q) {
  std::string key;
  key.reserve(8 * q.num_nodes());
  key += 'n';
  key += std::to_string(q.num_nodes());
  for (graph::NodeId v = 0; v < q.num_nodes(); ++v) {
    key += ',';
    key += std::to_string(q.label(v));
  }
  for (graph::NodeId v = 0; v < q.num_nodes(); ++v) {
    for (const auto& [nbr, elabel] : q.neighbors(v)) {
      if (v < nbr) {
        key += ';';
        key += std::to_string(v);
        key += '-';
        key += std::to_string(nbr);
        key += ':';
        key += std::to_string(elabel);
      }
    }
  }
  return key;
}

/// Exact pivot requirement class: the only facts ExtractPivotCandidates
/// reads — pivot label, pivot degree, and the sorted multiset of
/// (edge label, neighbor label) pairs on the pivot's query edges.
std::string PivotClassKey(const graph::QueryGraph& q) {
  const graph::NodeId pivot = q.pivot();
  std::vector<std::pair<graph::Label, graph::Label>> pairs;
  pairs.reserve(q.degree(pivot));
  for (const auto& [nbr, elabel] : q.neighbors(pivot)) {
    pairs.emplace_back(elabel, q.label(nbr));
  }
  std::sort(pairs.begin(), pairs.end());
  std::string key;
  key += 'l';
  key += std::to_string(q.label(pivot));
  key += 'd';
  key += std::to_string(q.degree(pivot));
  for (const auto& [elabel, nlabel] : pairs) {
    key += ';';
    key += std::to_string(elabel);
    key += ':';
    key += std::to_string(nlabel);
  }
  return key;
}

}  // namespace

BatchEvalContext::Prepared BatchEvalContext::Prepare(
    const graph::QueryGraph& q) {
  assert(q.has_pivot() && "batch preparation requires a pivoted query");
  ++stats_.queries;

  const std::string structure_key = StructureKey(q);
  std::string query_key = structure_key;
  query_key += "|p";
  query_key += std::to_string(q.pivot());

  if (const auto it = by_query_.find(query_key); it != by_query_.end()) {
    const Entry& entry = it->second;
    if (entry.context.feasible) {
      ++stats_.signature_reuses;
      ++stats_.candidate_reuses;
    }
    return {&entry.context,
            entry.context.feasible ? &entry.pivot_requirement : nullptr,
            /*reused=*/true};
  }

  Entry entry;
  bool reused = false;
  // Same feasibility test as PrepareQuery: a query-node label absent from
  // the data graph means the answer is empty.
  for (graph::NodeId v = 0; v < q.num_nodes(); ++v) {
    const graph::Label label = q.label(v);
    if (label >= graph_.num_labels() || graph_.label_frequency(label) == 0) {
      entry.context.feasible = false;
      break;
    }
  }

  if (entry.context.feasible) {
    auto sit = sigs_by_structure_.find(structure_key);
    if (sit == sigs_by_structure_.end()) {
      ++stats_.signature_builds;
      sit = sigs_by_structure_
                .emplace(structure_key,
                         signature::BuildSignatures(
                             q, graph_sigs_.method(), graph_sigs_.depth(),
                             graph_sigs_.num_labels(), graph_sigs_.decay()))
                .first;
    } else {
      ++stats_.signature_reuses;
      reused = true;
    }
    entry.context.query_sigs = sit->second;

    const std::string class_key = PivotClassKey(q);
    auto cit = candidates_by_class_.find(class_key);
    if (cit == candidates_by_class_.end()) {
      ++stats_.candidate_extractions;
      cit = candidates_by_class_
                .emplace(class_key, match::ExtractPivotCandidates(graph_, q))
                .first;
    } else {
      ++stats_.candidate_reuses;
      reused = true;
    }
    entry.context.candidates = cit->second;

    // Plan order starts at the pivot, so this is exactly the level-0
    // requirement BindQuery would build — the row the pessimistic bulk
    // prefilter sweeps.
    entry.pivot_requirement.Assign(entry.context.query_sigs.row(q.pivot()));
  }

  const auto inserted = by_query_.emplace(query_key, std::move(entry)).first;
  return {&inserted->second.context,
          inserted->second.context.feasible
              ? &inserted->second.pivot_requirement
              : nullptr,
          reused};
}

}  // namespace psi::core
