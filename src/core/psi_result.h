#ifndef SMARTPSI_CORE_PSI_RESULT_H_
#define SMARTPSI_CORE_PSI_RESULT_H_

#include <cstddef>
#include <vector>

#include "graph/types.h"
#include "match/search_stats.h"

namespace psi::core {

/// Result of evaluating one PSI query, with the instrumentation the paper's
/// experiments report (timing breakdown for Table 4, model accuracy for
/// Figure 11, recovery counters for §4.3).
struct PsiQueryResult {
  /// Distinct data nodes that bind to the pivot, sorted ascending.
  std::vector<graph::NodeId> valid_nodes;

  /// False iff the query deadline expired before all candidates were
  /// evaluated; valid_nodes is then a subset of the true answer.
  bool complete = true;

  // --- Workload ----------------------------------------------------------
  size_t num_candidates = 0;
  size_t num_training_nodes = 0;
  size_t cache_hits = 0;
  /// Cache hits whose predicted node type disagreed with the evaluation's
  /// actual outcome. Nonzero means stale or corrupted entries (the entry
  /// only steered the method choice, so the answer is still exact) — the
  /// service's poisoning detector samples this (DESIGN.md §11).
  size_t cache_mismatches = 0;

  // --- Model α quality (measured on non-training candidates whose true
  // --- type the evaluation itself establishes) ---------------------------
  size_t alpha_predictions = 0;
  size_t alpha_correct = 0;
  double AlphaAccuracy() const {
    return alpha_predictions == 0
               ? 0.0
               : static_cast<double>(alpha_correct) /
                     static_cast<double>(alpha_predictions);
  }

  // --- Preemptive recovery (paper §4.3) -----------------------------------
  /// Evaluations that hit the first timeout and switched method (state 2).
  size_t method_recoveries = 0;
  /// Evaluations that hit the second timeout and fell back to the
  /// heuristic plan without limits (state 3).
  size_t plan_fallbacks = 0;

  // --- Timing breakdown (seconds) -----------------------------------------
  double train_seconds = 0.0;    // ground-truth evaluation + model fitting
  double predict_seconds = 0.0;  // model / cache consultation
  double eval_seconds = 0.0;     // candidate evaluation proper
  double total_seconds = 0.0;

  /// Fraction of total time spent on ML (Table 4's metric).
  double MlOverheadFraction() const {
    return total_seconds <= 0.0
               ? 0.0
               : (train_seconds + predict_seconds) / total_seconds;
  }

  /// Aggregated search counters across all candidate evaluations.
  match::SearchStats search;
};

}  // namespace psi::core

#endif  // SMARTPSI_CORE_PSI_RESULT_H_
