#include "core/query_context.h"

#include "match/candidates.h"

namespace psi::core {

QueryContext PrepareQuery(const graph::Graph& g,
                          const signature::SignatureMatrix& graph_sigs,
                          const graph::QueryGraph& q) {
  QueryContext ctx;
  for (graph::NodeId v = 0; v < q.num_nodes(); ++v) {
    const graph::Label label = q.label(v);
    if (label >= g.num_labels() || g.label_frequency(label) == 0) {
      ctx.feasible = false;
      return ctx;
    }
  }
  ctx.query_sigs = signature::BuildSignatures(
      q, graph_sigs.method(), graph_sigs.depth(), graph_sigs.num_labels(),
      graph_sigs.decay());
  ctx.candidates = match::ExtractPivotCandidates(g, q);
  return ctx;
}

}  // namespace psi::core
