#include "core/smart_psi.h"

#include <algorithm>
#include <atomic>
#include <unordered_map>
#include <unordered_set>
#include <cassert>
#include <cmath>

#include "core/query_context.h"
#include "match/nogood_store.h"
#include "match/parallel_search.h"
#include "match/plan.h"
#include "match/psi_evaluator.h"
#include "core/classifier.h"
#include "ml/dataset.h"
#include "signature/builders.h"
#include "util/fault_injection.h"
#include "util/stats.h"

namespace psi::core {

namespace {

using match::Outcome;
using match::PsiEvaluator;
using match::PsiMode;

/// Bundles one node evaluation under a mode: optimistic means the paper's
/// full optimistic strategy (super-optimistic pass + complete fallback).
Outcome RunMethod(PsiEvaluator& evaluator, graph::NodeId node, bool optimistic,
                  size_t super_limit, util::Deadline deadline,
                  util::StopToken stop, match::SearchStats* stats,
                  bool pivot_prefiltered = false,
                  const match::RestartOptions* restarts = nullptr,
                  match::NogoodStore* nogoods = nullptr) {
  PsiEvaluator::Options options;
  options.super_optimistic_limit = super_limit;
  options.deadline = deadline;
  options.stop = stop;
  options.pivot_prefiltered = pivot_prefiltered;
  if (restarts != nullptr) {
    // The evaluator only applies these on pessimistic runs, so passing
    // them unconditionally costs the optimist nothing.
    options.restarts = *restarts;
    options.nogoods = nogoods;
  }
  if (optimistic) {
    return evaluator.EvaluateNodeOptimisticStrategy(node, options, stats);
  }
  options.mode = PsiMode::kPessimistic;
  return evaluator.EvaluateNode(node, options, stats);
}

/// Takes the earlier of two deadlines.
util::Deadline MinDeadline(util::Deadline a, util::Deadline b) {
  return a.RemainingSeconds() <= b.RemainingSeconds() ? a : b;
}

/// Per-worker accumulation merged after the parallel evaluation phase.
struct WorkerState {
  std::vector<graph::NodeId> valid;
  match::SearchStats stats;
  size_t cache_hits = 0;
  size_t cache_mismatches = 0;
  size_t alpha_predictions = 0;
  size_t alpha_correct = 0;
  size_t method_recoveries = 0;
  size_t plan_fallbacks = 0;
  double predict_seconds = 0.0;
  bool incomplete = false;
};

}  // namespace

const graph::EquivalenceClasses& SmartPsiEngine::EquivalencePartition() {
  if (equivalence_ == nullptr) {
    equivalence_ = std::make_unique<graph::EquivalenceClasses>(
        graph::ComputeSyntacticEquivalence(*graph_));
  }
  return *equivalence_;
}

SmartPsiEngine::SmartPsiEngine(const graph::Graph& g, SmartPsiConfig config)
    : graph_(&g), config_(config), rng_(config.seed) {
  if (config_.num_threads > 1) {
    pool_ = std::make_unique<util::ThreadPool>(config_.num_threads);
  }
  util::WallTimer timer;
  graph_sigs_ =
      signature::BuildSignatures(g, config_.signature_method,
                                 config_.signature_depth, g.num_labels(),
                                 pool_.get(), config_.signature_decay);
  signature_build_seconds_ = timer.Seconds();
}

SmartPsiEngine::SmartPsiEngine(SmartPsiConfig config)
    : config_(config), rng_(config.seed) {
  if (config_.num_threads > 1) {
    pool_ = std::make_unique<util::ThreadPool>(config_.num_threads);
  }
}

SmartPsiEngine::SmartPsiEngine(const graph::Graph& g,
                               signature::SignatureMatrix graph_sigs,
                               SmartPsiConfig config)
    : graph_(&g), config_(config), rng_(config.seed) {
  assert(graph_sigs.num_rows() == g.num_nodes());
  assert(graph_sigs.num_labels() >= g.num_labels());
  if (config_.num_threads > 1) {
    pool_ = std::make_unique<util::ThreadPool>(config_.num_threads);
  }
  // Query signatures must be built exactly like the adopted graph ones.
  config_.signature_method = graph_sigs.method();
  config_.signature_depth = graph_sigs.depth();
  config_.signature_decay = graph_sigs.decay();
  graph_sigs_ = std::move(graph_sigs);
}

SmartPsiEngine::SmartPsiEngine(const graph::Graph& g,
                               const signature::SignatureMatrix* shared_sigs,
                               SmartPsiConfig config)
    : graph_(&g), config_(config), sigs_view_(shared_sigs), rng_(config.seed) {
  assert(shared_sigs != nullptr);
  assert(shared_sigs->num_rows() == g.num_nodes());
  assert(shared_sigs->num_labels() >= g.num_labels());
  if (config_.num_threads > 1) {
    pool_ = std::make_unique<util::ThreadPool>(config_.num_threads);
  }
  config_.signature_method = shared_sigs->method();
  config_.signature_depth = shared_sigs->depth();
  config_.signature_decay = shared_sigs->decay();
}

void SmartPsiEngine::Rebind(const graph::Graph& g,
                            const signature::SignatureMatrix* sigs) {
  assert(sigs != nullptr);
  if (graph_ == &g && sigs_view_ == sigs) return;  // steady-state fast path
  assert(sigs->num_rows() == g.num_nodes());
  assert(sigs->num_labels() >= g.num_labels());
  graph_ = &g;
  sigs_view_ = sigs;
  graph_sigs_ = signature::SignatureMatrix();  // drop any adopted matrix
  equivalence_.reset();  // memoized partition belongs to the old graph
  config_.signature_method = sigs->method();
  config_.signature_depth = sigs->depth();
  config_.signature_decay = sigs->decay();
}

PsiQueryResult SmartPsiEngine::Evaluate(const graph::QueryGraph& q,
                                        util::Deadline deadline,
                                        util::StopToken stop) {
  assert(q.has_pivot());
  assert(bound() && "Evaluate() on an unbound engine — call Rebind() first");
  util::WallTimer total_timer;
  PsiQueryResult result;

  const QueryContext ctx = PrepareQuery(*graph_, sigs(), q);
  result.num_candidates = ctx.candidates.size();
  if (!ctx.feasible || ctx.candidates.empty()) {
    result.total_seconds = total_timer.Seconds();
    return result;
  }

  // With a query-keyed cache the plan pool (and training sample) must be a
  // pure function of (engine seed, query): cached plan indices written by
  // one engine are then valid for every engine sharing the cache.
  const uint64_t query_salt =
      config_.query_keyed_cache ? q.Fingerprint() : 0;
  // Snapshot keying composes by XOR on top of the query salt: entries from
  // different snapshot generations land under different keys, and the epoch
  // stamp makes any residual collision observable (epoch_drops).
  const uint64_t cache_key_salt = query_salt ^ cache_salt_;
  util::Rng rng = config_.query_keyed_cache
                      ? util::Rng(config_.seed ^ query_salt)
                      : rng_.Fork();
  const std::vector<match::Plan> plan_pool = match::SamplePlanPool(
      q, *graph_, q.pivot(), std::max<size_t>(1, config_.plan_pool_size), rng);
  const size_t num_plans = plan_pool.size();

  // Optional BoostIso-style dedup: keep one representative per syntactic-
  // equivalence class; twins inherit the representative's answer at the end.
  std::vector<graph::NodeId> candidates = ctx.candidates;
  std::vector<std::pair<uint32_t, graph::NodeId>> dropped_twins;
  if (config_.exploit_equivalence) {
    const graph::EquivalenceClasses& classes = EquivalencePartition();
    std::unordered_map<uint32_t, graph::NodeId> first_in_class;
    std::vector<graph::NodeId> unique;
    unique.reserve(candidates.size());
    for (const graph::NodeId u : candidates) {
      const uint32_t c = classes.class_of[u];
      if (first_in_class.emplace(c, u).second) {
        unique.push_back(u);
      } else {
        dropped_twins.emplace_back(c, u);
      }
    }
    candidates.swap(unique);
  }

  // Expansion of the twins' answers, shared by every return path below.
  auto expand_twins = [&]() {
    if (dropped_twins.empty()) return;
    const graph::EquivalenceClasses& classes = EquivalencePartition();
    std::unordered_set<uint32_t> valid_classes;
    for (const graph::NodeId u : result.valid_nodes) {
      valid_classes.insert(classes.class_of[u]);
    }
    for (const auto& [c, u] : dropped_twins) {
      if (valid_classes.count(c) > 0) result.valid_nodes.push_back(u);
    }
    std::sort(result.valid_nodes.begin(), result.valid_nodes.end());
  };

  // ---------------------------------------------------------------------
  // Tiny candidate sets: ML overhead would dominate (paper Table 4 shows
  // it already hurts on small graphs) — evaluate everything pessimistically
  // with the heuristic plan.
  // ---------------------------------------------------------------------
  if (candidates.size() < config_.min_candidates_for_ml) {
    util::WallTimer eval_timer;
    match::SearchScratchPool::Lease scratch(&scratch_pool_);
    PsiEvaluator evaluator(*graph_, sigs(), scratch.get());
    evaluator.BindQuery(q, ctx.query_sigs, plan_pool[0]);
    // Everything below runs pessimistically, so one bulk kernel sweep
    // replaces the per-candidate pivot signature checks.
    evaluator.FilterPivotCandidates(candidates, &result.search);
    match::NogoodStore nogoods(cache_salt_);
    for (const graph::NodeId u : candidates) {
      // Same rationale as the phase-2 loop below: poll between candidates
      // so small searches cannot slip past an expired deadline.
      if (deadline.Expired() || stop.StopRequested()) {
        result.complete = false;
        break;
      }
      const Outcome outcome =
          RunMethod(evaluator, u, /*optimistic=*/false,
                    config_.super_optimistic_limit, deadline, stop,
                    &result.search, /*pivot_prefiltered=*/true,
                    &config_.restarts, &nogoods);
      if (outcome == Outcome::kValid) {
        result.valid_nodes.push_back(u);
      } else if (outcome != Outcome::kInvalid) {
        result.complete = false;
        break;
      }
    }
    result.eval_seconds = eval_timer.Seconds();
    expand_twins();
    result.total_seconds = total_timer.Seconds();
    return result;
  }

  // ---------------------------------------------------------------------
  // Phase 1 — training sample: ground-truth labels for Model α, best plans
  // and per-plan average times for Model β / MaxTime (paper §4.2).
  // ---------------------------------------------------------------------
  util::WallTimer train_timer;
  const size_t want_train = std::clamp<size_t>(
      static_cast<size_t>(std::ceil(config_.train_fraction *
                                    static_cast<double>(
                                        candidates.size()))),
      1, std::min(config_.max_train_nodes, candidates.size()));
  std::vector<size_t> train_indices =
      util::SampleWithoutReplacement(candidates.size(), want_train, rng);
  std::vector<uint8_t> is_training(candidates.size(), 0);
  for (const size_t i : train_indices) is_training[i] = 1;
  result.num_training_nodes = train_indices.size();

  const size_t num_features = sigs().num_labels();
  ml::Dataset alpha_data(num_features);
  ml::Dataset beta_data(num_features);
  alpha_data.Reserve(train_indices.size());
  beta_data.Reserve(train_indices.size());
  std::vector<util::RunningStats> plan_times(num_plans);
  util::RunningStats all_times;

  match::SearchScratchPool::Lease trainer_scratch(&scratch_pool_);
  PsiEvaluator trainer(*graph_, sigs(), trainer_scratch.get());
  bool training_aborted = false;
  for (const size_t idx : train_indices) {
    const graph::NodeId u = candidates[idx];
    bool decided = false;
    bool node_valid = false;
    int32_t best_plan = 0;
    double best_time = 0.0;

    // Escalating per-plan time limits (paper §4.2.2): try every plan under
    // a small budget; if none finishes, grow the budget and retry.
    double limit = config_.plan_time_limit_init_seconds;
    for (size_t round = 0;
         round < config_.plan_escalation_rounds && !decided; ++round) {
      for (size_t p = 0; p < num_plans; ++p) {
        trainer.BindQuery(q, ctx.query_sigs, plan_pool[p]);
        // Once some plan finished in best_time, a competitor is only
        // interesting if it beats that — cap its budget accordingly.
        const double budget =
            decided ? std::min(limit, best_time) : limit;
        util::WallTimer plan_timer;
        const Outcome outcome = RunMethod(
            trainer, u, /*optimistic=*/false, config_.super_optimistic_limit,
            MinDeadline(util::Deadline::After(budget), deadline), stop,
            &result.search);
        const double seconds = plan_timer.Seconds();
        if (outcome == Outcome::kValid || outcome == Outcome::kInvalid) {
          plan_times[p].Add(seconds);
          all_times.Add(seconds);
          if (!decided || seconds < best_time) {
            best_plan = static_cast<int32_t>(p);
            best_time = seconds;
          }
          node_valid = outcome == Outcome::kValid;
          decided = true;
        }
      }
      limit *= config_.plan_time_limit_growth;
      if (deadline.Expired() || stop.StopRequested()) break;
    }
    if (!decided) {
      // No plan finished under any limit: heuristic plan, no plan budget.
      trainer.BindQuery(q, ctx.query_sigs, plan_pool[0]);
      util::WallTimer plan_timer;
      const Outcome outcome =
          RunMethod(trainer, u, /*optimistic=*/false,
                    config_.super_optimistic_limit, deadline, stop,
                    &result.search);
      if (outcome == Outcome::kValid || outcome == Outcome::kInvalid) {
        plan_times[0].Add(plan_timer.Seconds());
        all_times.Add(plan_timer.Seconds());
        node_valid = outcome == Outcome::kValid;
        best_plan = 0;
        decided = true;
      } else {
        // Query deadline expired mid-training.
        result.complete = false;
        training_aborted = true;
        break;
      }
    }

    const auto row = sigs().row(u);
    alpha_data.AddExample(row, node_valid ? 1 : 0);
    beta_data.AddExample(row, best_plan);
    if (node_valid) result.valid_nodes.push_back(u);
    if (config_.enable_cache) {
      active_cache_->Insert(
          sigs().RowHash(u) ^ cache_key_salt,
          {node_valid, static_cast<uint32_t>(best_plan), cache_epoch_});
    }
  }

  Classifier alpha(config_.classifier);
  Classifier beta(config_.classifier);
  if (!training_aborted) {
    alpha.Train(alpha_data, /*num_classes=*/2, config_.forest_trees, rng);
    if (config_.enable_plan_model && num_plans > 1) {
      beta.Train(beta_data, num_plans, config_.forest_trees, rng);
    }
  }
  result.train_seconds = train_timer.Seconds();
  if (training_aborted) {
    std::sort(result.valid_nodes.begin(), result.valid_nodes.end());
    expand_twins();
    result.total_seconds = total_timer.Seconds();
    return result;
  }

  // Per-plan MaxTime base: mean pessimistic time for that plan during
  // training; fall back to the overall mean when a plan has no samples.
  std::vector<double> plan_mean(num_plans, 0.0);
  for (size_t p = 0; p < num_plans; ++p) {
    plan_mean[p] =
        plan_times[p].count() > 0 ? plan_times[p].mean() : all_times.mean();
    plan_mean[p] = std::max(plan_mean[p], config_.min_preemption_seconds);
  }

  // ---------------------------------------------------------------------
  // Phase 2 — predicted evaluation of the remaining candidates with the
  // preemptive 3-state executor (paper §4.3).
  // ---------------------------------------------------------------------
  util::WallTimer eval_timer;
  std::vector<size_t> remaining;
  remaining.reserve(candidates.size() - train_indices.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (!is_training[i]) remaining.push_back(i);
  }

  // One evaluation stack per work-stealing worker: scratch, evaluator, and
  // a snapshot-salted nogood store each worker consults across its share of
  // the candidates.
  struct EvalWorker {
    WorkerState state;
    std::unique_ptr<match::SearchScratchPool::Lease> scratch;
    std::unique_ptr<PsiEvaluator> evaluator;
    std::unique_ptr<match::NogoodStore> nogoods;
  };

  std::atomic<bool> global_incomplete{false};
  auto evaluate_one = [&](size_t r, EvalWorker& worker) {
    WorkerState& ws = worker.state;
    PsiEvaluator& evaluator = *worker.evaluator;
    {
      if (global_incomplete.load(std::memory_order_relaxed)) return;
      // Check before starting a candidate, not only inside the search (which
      // polls every kCheckInterval steps): small searches finish between
      // polls, so without this an expired deadline could still start every
      // remaining candidate and overrun its budget unboundedly.
      if (deadline.Expired() || stop.StopRequested()) {
        ws.incomplete = true;
        global_incomplete.store(true, std::memory_order_relaxed);
        return;
      }
      const graph::NodeId u = candidates[remaining[r]];
      const auto row = sigs().row(u);

      // --- Prediction (cache, then models) --------------------------
      util::WallTimer predict_timer;
      bool predicted_valid = false;
      uint32_t plan_index = 0;
      bool from_cache = false;
      const uint64_t hash = sigs().RowHash(u) ^ cache_key_salt;
      if (config_.enable_cache) {
        if (const auto entry = active_cache_->Lookup(hash, cache_epoch_)) {
          predicted_valid = entry->valid;
          plan_index = std::min<uint32_t>(entry->plan_index,
                                          static_cast<uint32_t>(num_plans -
                                                                1));
          from_cache = true;
          ++ws.cache_hits;
        }
      }
      if (!from_cache) {
        predicted_valid = alpha.Predict(row) == 1;
        if (config_.enable_plan_model && beta.trained()) {
          plan_index = static_cast<uint32_t>(
              std::clamp<int32_t>(beta.Predict(row), 0,
                                  static_cast<int32_t>(num_plans - 1)));
        }
      }
      // Chaos hooks: simulated Model α / Model β mispredictions. The
      // preemptive executor below is exactly the machinery that must absorb
      // these — a flip costs a state-2/3 recovery, never correctness.
      if (PSI_INJECT_FAULT(util::faults::kSmartPredictFlip)) {
        predicted_valid = !predicted_valid;
      }
      if (num_plans > 1 &&
          PSI_INJECT_FAULT(util::faults::kSmartPlanMispredict)) {
        plan_index = (plan_index + 1) % static_cast<uint32_t>(num_plans);
      }
      ws.predict_seconds += predict_timer.Seconds();

      // --- Preemptive execution (3 states) ---------------------------
      const double max_time = config_.timeout_factor * plan_mean[plan_index];
      Outcome outcome;
      uint32_t completed_plan = plan_index;
      evaluator.BindQuery(q, ctx.query_sigs, plan_pool[plan_index]);
      if (config_.enable_preemption) {
        // State 1: predicted method + predicted plan, limited.
        outcome = RunMethod(evaluator, u, predicted_valid,
                            config_.super_optimistic_limit,
                            MinDeadline(util::Deadline::After(max_time),
                                        deadline),
                            stop, &ws.stats, /*pivot_prefiltered=*/false,
                            &config_.restarts, worker.nogoods.get());
        // Chaos hook: pretend MaxTime expired even though state 1 finished,
        // forcing the recovery ladder. Both PSI methods are exact, so the
        // re-evaluation in state 2/3 reaches the same answer.
        if (outcome != Outcome::kTimeout && !deadline.Expired() &&
            PSI_INJECT_FAULT(util::faults::kSmartPreemptExpire)) {
          outcome = Outcome::kTimeout;
        }
        if (outcome == Outcome::kTimeout && !deadline.Expired()) {
          // State 2: opposite method, restarted, still limited — recovers
          // from Model α mispredictions.
          ++ws.method_recoveries;
          outcome = RunMethod(evaluator, u, !predicted_valid,
                              config_.super_optimistic_limit,
                              MinDeadline(util::Deadline::After(max_time),
                                          deadline),
                              stop, &ws.stats, /*pivot_prefiltered=*/false,
                              &config_.restarts, worker.nogoods.get());
        }
        if (outcome == Outcome::kTimeout && !deadline.Expired()) {
          // State 3: predicted method + heuristic plan, no MaxTime —
          // recovers from Model β mispredictions.
          ++ws.plan_fallbacks;
          completed_plan = 0;
          evaluator.BindQuery(q, ctx.query_sigs, plan_pool[0]);
          outcome = RunMethod(evaluator, u, predicted_valid,
                              config_.super_optimistic_limit, deadline,
                              stop, &ws.stats, /*pivot_prefiltered=*/false,
                              &config_.restarts, worker.nogoods.get());
        }
      } else {
        outcome = RunMethod(evaluator, u, predicted_valid,
                            config_.super_optimistic_limit, deadline,
                            stop, &ws.stats, /*pivot_prefiltered=*/false,
                            &config_.restarts, worker.nogoods.get());
      }

      if (outcome != Outcome::kValid && outcome != Outcome::kInvalid) {
        // Only the query deadline or a cancellation can get us here.
        ws.incomplete = true;
        global_incomplete.store(true, std::memory_order_relaxed);
        return;
      }
      const bool actual_valid = outcome == Outcome::kValid;
      if (actual_valid) ws.valid.push_back(u);
      if (from_cache) {
        // A cached decision that disagrees with the confirmed outcome means
        // the entry was stale or corrupted — the poisoning signal the
        // service's verify-on-sample detector consumes.
        if (predicted_valid != actual_valid) ++ws.cache_mismatches;
      } else {
        ++ws.alpha_predictions;
        if (predicted_valid == actual_valid) ++ws.alpha_correct;
      }
      if (config_.enable_cache) {
        active_cache_->Insert(hash,
                              {actual_valid, completed_plan, cache_epoch_});
      }
    }
  };

  // Work-stealing dispatch (see parallel_search.h): contiguous initial
  // ranges, idle workers steal the back half of the busiest victim's range.
  // This replaces static 4×-oversubscribed chunking — one heavy-tailed
  // refutation no longer strands the candidates queued behind it.
  const size_t num_workers =
      pool_ != nullptr && remaining.size() > 1
          ? std::min(remaining.size(), pool_->num_threads())
          : 1;
  std::vector<EvalWorker> workers(num_workers);
  for (EvalWorker& w : workers) {
    w.scratch =
        std::make_unique<match::SearchScratchPool::Lease>(&scratch_pool_);
    w.evaluator =
        std::make_unique<PsiEvaluator>(*graph_, sigs(), w.scratch->get());
    w.nogoods = std::make_unique<match::NogoodStore>(cache_salt_);
  }
  const uint64_t steals = match::RunWorkStealing(
      remaining.size(), num_workers, pool_.get(),
      [&](size_t item, size_t worker_index) {
        evaluate_one(item, workers[worker_index]);
      });
  result.search.work_steals += steals;

  for (const EvalWorker& worker : workers) {
    const WorkerState& ws = worker.state;
    result.valid_nodes.insert(result.valid_nodes.end(), ws.valid.begin(),
                              ws.valid.end());
    result.search += ws.stats;
    result.cache_hits += ws.cache_hits;
    result.cache_mismatches += ws.cache_mismatches;
    result.alpha_predictions += ws.alpha_predictions;
    result.alpha_correct += ws.alpha_correct;
    result.method_recoveries += ws.method_recoveries;
    result.plan_fallbacks += ws.plan_fallbacks;
    result.predict_seconds += ws.predict_seconds;
    if (ws.incomplete) result.complete = false;
  }
  result.eval_seconds = eval_timer.Seconds() - result.predict_seconds;

  std::sort(result.valid_nodes.begin(), result.valid_nodes.end());
  expand_twins();
  result.total_seconds = total_timer.Seconds();
  return result;
}

}  // namespace psi::core
