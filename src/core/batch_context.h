#ifndef SMARTPSI_CORE_BATCH_CONTEXT_H_
#define SMARTPSI_CORE_BATCH_CONTEXT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/query_context.h"
#include "graph/graph.h"
#include "graph/query_graph.h"
#include "signature/signature_matrix.h"
#include "signature/sparse_requirement.h"

namespace psi::core {

/// Shared preparation for a batch of queries evaluated against one pinned
/// snapshot (DESIGN.md §17). The many-queries-one-graph regime — the FSM
/// miner's per-pivot probes are the canonical case — re-derives the same
/// per-query artifacts over and over: query signatures depend only on the
/// pattern's pivot-independent structure, and the pivot candidate list
/// depends only on the pivot's requirement class (label, degree, and the
/// multiset of (edge label, neighbor label) pairs on its query edges — the
/// exact facts ExtractPivotCandidates reads). BatchEvalContext memoizes
/// both once per distinct key and assembles per-query contexts from the
/// shared pieces, bit-identical to PrepareQuery.
///
/// Keys are exact serialized facts, never hashes: a hash collision would
/// silently share state between different queries and corrupt answers, so
/// the map keys *are* the structural facts themselves.
///
/// Not thread-safe: one context belongs to one batch, and queries are
/// prepared on the batch thread before evaluation fans out. The returned
/// pointers stay valid for the context's lifetime (map nodes are stable).
class BatchEvalContext {
 public:
  BatchEvalContext(const graph::Graph& g,
                   const signature::SignatureMatrix& graph_sigs)
      : graph_(g), graph_sigs_(graph_sigs) {}

  BatchEvalContext(const BatchEvalContext&) = delete;
  BatchEvalContext& operator=(const BatchEvalContext&) = delete;

  struct Prepared {
    /// Equivalent to PrepareQuery(g, graph_sigs, q); owned by the batch
    /// context and immutable — consumers copy `candidates` before any
    /// in-place filtering.
    const QueryContext* context = nullptr;
    /// Sparse view of the pivot's query-signature row (plan level 0) —
    /// the dense requirement row the pessimistic bulk prefilter sweeps.
    /// Null for infeasible queries.
    const signature::SparseRequirement* pivot_requirement = nullptr;
    /// True when any component (signatures or candidates) was served from
    /// the batch memo instead of recomputed — the batch_context_hits
    /// signal.
    bool reused = false;
  };

  /// Prepares `q`, reusing memoized signatures/candidates where the keys
  /// match. Bit-identical to PrepareQuery at every step.
  Prepared Prepare(const graph::QueryGraph& q);

  struct Stats {
    uint64_t queries = 0;
    uint64_t signature_builds = 0;
    uint64_t signature_reuses = 0;
    uint64_t candidate_extractions = 0;
    uint64_t candidate_reuses = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  struct Entry {
    QueryContext context;
    signature::SparseRequirement pivot_requirement;
  };

  const graph::Graph& graph_;
  const signature::SignatureMatrix& graph_sigs_;
  Stats stats_;
  /// Query signatures per pivot-independent structure (labels + edges).
  std::map<std::string, signature::SignatureMatrix> sigs_by_structure_;
  /// Pivot candidate lists per pivot requirement class.
  std::map<std::string, std::vector<graph::NodeId>> candidates_by_class_;
  /// Assembled contexts per exact (structure, pivot) query key.
  std::map<std::string, Entry> by_query_;
};

}  // namespace psi::core

#endif  // SMARTPSI_CORE_BATCH_CONTEXT_H_
