#include "core/pure_drivers.h"

#include "core/query_context.h"
#include "match/plan.h"
#include "match/psi_evaluator.h"

namespace psi::core {

PureDriverResult EvaluatePure(const graph::Graph& g,
                              const signature::SignatureMatrix& graph_sigs,
                              const graph::QueryGraph& q,
                              const PureDriverOptions& options) {
  util::WallTimer timer;
  PureDriverResult result;

  QueryContext ctx = PrepareQuery(g, graph_sigs, q);
  if (!ctx.feasible || ctx.candidates.empty()) {
    result.seconds = timer.Seconds();
    return result;
  }

  const match::Plan plan = match::MakeHeuristicPlan(q, g, q.pivot());
  match::PsiEvaluator evaluator(g, graph_sigs);
  evaluator.BindQuery(q, ctx.query_sigs, plan);

  match::PsiEvaluator::Options eval_options;
  eval_options.super_optimistic_limit = options.super_optimistic_limit;
  eval_options.deadline = options.deadline;
  eval_options.stop = options.stop;

  if (options.strategy == PureStrategy::kPessimistic) {
    // The pessimist checks every pivot candidate's signature anyway (no
    // early exit at the driver level), so run the whole list through the
    // bulk kernel once instead of one scalar check per EvaluateNode call.
    evaluator.FilterPivotCandidates(ctx.candidates, &result.stats);
    eval_options.pivot_prefiltered = true;
  }

  for (const graph::NodeId u : ctx.candidates) {
    // Poll between candidates: the evaluator only checks every
    // kCheckInterval steps, so small searches finish between polls and an
    // expired deadline could otherwise start every remaining candidate.
    if (options.deadline.Expired() || options.stop.StopRequested()) {
      result.complete = false;
      break;
    }
    match::Outcome outcome;
    if (options.strategy == PureStrategy::kOptimistic) {
      outcome = evaluator.EvaluateNodeOptimisticStrategy(u, eval_options,
                                                         &result.stats);
    } else {
      eval_options.mode = match::PsiMode::kPessimistic;
      outcome = evaluator.EvaluateNode(u, eval_options, &result.stats);
    }
    if (outcome == match::Outcome::kValid) {
      result.valid_nodes.push_back(u);
    } else if (outcome == match::Outcome::kTimeout ||
               outcome == match::Outcome::kStopped) {
      result.complete = false;
      break;
    }
  }
  // Candidates are iterated in ascending order, so valid_nodes is sorted.
  result.seconds = timer.Seconds();
  return result;
}

}  // namespace psi::core
