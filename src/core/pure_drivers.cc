#include "core/pure_drivers.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <vector>

#include "core/query_context.h"
#include "match/nogood_store.h"
#include "match/parallel_search.h"
#include "match/plan.h"
#include "match/psi_evaluator.h"
#include "signature/kernels.h"

namespace psi::core {

namespace {

/// Per-candidate evaluation shared by the sequential and parallel loops.
match::Outcome EvaluateOne(match::PsiEvaluator& evaluator, graph::NodeId u,
                           const PureDriverOptions& options,
                           match::PsiEvaluator::Options& eval_options,
                           match::SearchStats* stats) {
  if (options.strategy == PureStrategy::kOptimistic) {
    return evaluator.EvaluateNodeOptimisticStrategy(u, eval_options, stats);
  }
  eval_options.mode = match::PsiMode::kPessimistic;
  return evaluator.EvaluateNode(u, eval_options, stats);
}

}  // namespace

PureDriverResult EvaluatePure(const graph::Graph& g,
                              const signature::SignatureMatrix& graph_sigs,
                              const graph::QueryGraph& q,
                              const PureDriverOptions& options) {
  util::WallTimer timer;
  PureDriverResult result;

  QueryContext local;
  const QueryContext* prepared = options.prepared;
  if (prepared == nullptr) {
    local = PrepareQuery(g, graph_sigs, q);
    prepared = &local;
  }
  if (!prepared->feasible || prepared->candidates.empty()) {
    result.seconds = timer.Seconds();
    return result;
  }
  const signature::SignatureMatrix& query_sigs = prepared->query_sigs;
  // Own the candidate list: a shared batch context is immutable and the
  // pessimistic prefilter edits in place.
  std::vector<graph::NodeId> candidates =
      options.prepared != nullptr ? prepared->candidates
                                  : std::move(local.candidates);

  const match::Plan plan = match::MakeHeuristicPlan(q, g, q.pivot());

  match::PsiEvaluator::Options eval_options;
  eval_options.super_optimistic_limit = options.super_optimistic_limit;
  eval_options.deadline = options.deadline;
  eval_options.stop = options.stop;
  eval_options.restarts = options.restarts;

  if (options.strategy == PureStrategy::kPessimistic) {
    // The pessimist checks every pivot candidate's signature anyway (no
    // early exit at the driver level), so run the whole list through the
    // bulk kernel once instead of one scalar check per EvaluateNode call.
    if (options.prepared != nullptr &&
        options.prepared_pivot_requirement != nullptr) {
      // The batch context pre-built the level-0 requirement row; this is
      // the same kernel call FilterPivotCandidates would make after a
      // throwaway BindQuery, so the kept set is byte-identical.
      result.stats.signature_checks += candidates.size();
      result.stats.pruned_by_signature += signature::FilterCandidates(
          graph_sigs, *options.prepared_pivot_requirement, candidates);
    } else {
      match::PsiEvaluator prefilter(g, graph_sigs);
      prefilter.BindQuery(q, query_sigs, plan);
      prefilter.FilterPivotCandidates(candidates, &result.stats);
    }
    eval_options.pivot_prefiltered = true;
    if (candidates.empty()) {
      result.seconds = timer.Seconds();
      return result;
    }
  }

  const size_t num_workers = std::max<size_t>(
      1, std::min(options.search_threads, candidates.size()));

  if (num_workers == 1) {
    match::SearchScratchPool::Lease lease(options.scratch_pool);
    match::PsiEvaluator evaluator(g, graph_sigs, lease.get());
    evaluator.BindQuery(q, query_sigs, plan);
    match::NogoodStore nogoods(options.nogood_salt);
    if (options.restarts.enabled) eval_options.nogoods = &nogoods;
    for (const graph::NodeId u : candidates) {
      // Poll between candidates: the evaluator only checks every
      // kCheckInterval steps, so small searches finish between polls and
      // an expired deadline could otherwise start every remaining
      // candidate.
      if (options.deadline.Expired() || options.stop.StopRequested()) {
        result.complete = false;
        break;
      }
      const match::Outcome outcome =
          EvaluateOne(evaluator, u, options, eval_options, &result.stats);
      if (outcome == match::Outcome::kValid) {
        result.valid_nodes.push_back(u);
      } else if (outcome == match::Outcome::kTimeout ||
                 outcome == match::Outcome::kStopped) {
        result.complete = false;
        break;
      }
    }
    // Candidates are iterated in ascending order, so valid_nodes is sorted.
    result.seconds = timer.Seconds();
    return result;
  }

  // Work-stealing parallel loop: each worker owns a full evaluation stack
  // (evaluator + scratch + stats + nogood store) and appends to a private
  // valid list; the final sorted merge makes the answer independent of
  // which worker ran which candidate.
  struct Worker {
    std::unique_ptr<match::SearchScratchPool::Lease> lease;
    std::unique_ptr<match::PsiEvaluator> evaluator;
    std::unique_ptr<match::NogoodStore> nogoods;
    match::PsiEvaluator::Options eval_options;
    std::vector<graph::NodeId> valid;
    match::SearchStats stats;
    bool complete = true;
  };
  std::vector<Worker> workers(num_workers);
  for (Worker& w : workers) {
    w.lease = std::make_unique<match::SearchScratchPool::Lease>(
        options.scratch_pool);
    w.evaluator =
        std::make_unique<match::PsiEvaluator>(g, graph_sigs, w.lease->get());
    w.evaluator->BindQuery(q, query_sigs, plan);
    w.nogoods = std::make_unique<match::NogoodStore>(options.nogood_salt);
    w.eval_options = eval_options;
    if (options.restarts.enabled) w.eval_options.nogoods = w.nogoods.get();
  }
  std::atomic<bool> halted{false};

  const uint64_t steals = match::RunWorkStealing(
      candidates.size(), num_workers, nullptr,
      [&](size_t item, size_t worker_index) {
        Worker& w = workers[worker_index];
        if (halted.load(std::memory_order_relaxed)) {
          w.complete = false;
          return;
        }
        if (options.deadline.Expired() || options.stop.StopRequested()) {
          w.complete = false;
          halted.store(true, std::memory_order_relaxed);
          return;
        }
        const graph::NodeId u = candidates[item];
        const match::Outcome outcome =
            EvaluateOne(*w.evaluator, u, options, w.eval_options, &w.stats);
        if (outcome == match::Outcome::kValid) {
          w.valid.push_back(u);
        } else if (outcome == match::Outcome::kTimeout ||
                   outcome == match::Outcome::kStopped) {
          w.complete = false;
          halted.store(true, std::memory_order_relaxed);
        }
      });

  for (Worker& w : workers) {
    result.valid_nodes.insert(result.valid_nodes.end(), w.valid.begin(),
                              w.valid.end());
    result.stats += w.stats;
    result.complete = result.complete && w.complete;
  }
  result.stats.work_steals += steals;
  std::sort(result.valid_nodes.begin(), result.valid_nodes.end());
  result.seconds = timer.Seconds();
  return result;
}

}  // namespace psi::core
