#ifndef SMARTPSI_CORE_CLASSIFIER_H_
#define SMARTPSI_CORE_CLASSIFIER_H_

#include <cstdint>
#include <span>
#include <variant>

#include "ml/dataset.h"
#include "ml/linear_svm.h"
#include "ml/neural_net.h"
#include "ml/random_forest.h"
#include "util/random.h"

namespace psi::core {

/// Which learner backs SmartPSI's Models α and β. The paper uses Random
/// Forest (best accuracy and build time in its §5.4 comparison) and notes
/// that other classifiers are orthogonal — this enum makes that knob real.
enum class ClassifierKind {
  kRandomForest,
  kLinearSvm,
  kNeuralNet,
};

const char* ClassifierKindName(ClassifierKind kind);

/// Classifier-kind-erased wrapper with the minimal Train/Predict surface
/// the engine needs. Exactness never depends on the learner: a worse model
/// costs time (recoveries), not correctness.
class Classifier {
 public:
  explicit Classifier(ClassifierKind kind);

  /// `hint_trees` sizes the Random Forest; ignored by the other kinds.
  void Train(const ml::Dataset& data, size_t num_classes, size_t hint_trees,
             util::Rng& rng);

  int32_t Predict(std::span<const float> features) const;

  bool trained() const;
  ClassifierKind kind() const { return kind_; }

 private:
  ClassifierKind kind_;
  std::variant<ml::RandomForest, ml::LinearSvm, ml::NeuralNet> model_;
};

}  // namespace psi::core

#endif  // SMARTPSI_CORE_CLASSIFIER_H_
