#ifndef SMARTPSI_UTIL_CHECKSUM_H_
#define SMARTPSI_UTIL_CHECKSUM_H_

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace psi::util {

inline constexpr uint64_t kFnv1a64OffsetBasis = 0xcbf29ce484222325ULL;
inline constexpr uint64_t kFnv1a64Prime = 0x100000001b3ULL;

/// FNV-1a over a byte range — the integrity checksum of the binary
/// snapshot format (DESIGN.md §16). Not cryptographic: it detects
/// truncation and corruption, not adversaries. The optional `seed` lets a
/// caller chain ranges (pass the previous range's digest) so a multi-part
/// checksum covers all parts in order.
inline uint64_t Fnv1a64(const void* data, size_t size,
                        uint64_t seed = kFnv1a64OffsetBasis) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < size; ++i) {
    h ^= bytes[i];
    h *= kFnv1a64Prime;
  }
  return h;
}

/// FNV-1a with a 64-bit word as the mixing unit instead of a byte: one
/// xor+multiply per 8 bytes (a trailing partial word is zero-padded), so
/// the serial multiply dependency chain is 8x shorter than Fnv1a64's.
/// This is what the .psnap section checksums use — payloads are megabytes
/// and verified on every load, where byte-serial FNV would dominate the
/// mmap-load path it exists to protect. Words are read in host byte order,
/// like every other scalar in the snapshot format. Seed chaining is only
/// sound when every chained range is a whole multiple of 8 bytes.
inline uint64_t Fnv1a64Words(const void* data, size_t size,
                             uint64_t seed = kFnv1a64OffsetBasis) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  size_t i = 0;
  for (; i + sizeof(uint64_t) <= size; i += sizeof(uint64_t)) {
    uint64_t word;
    std::memcpy(&word, bytes + i, sizeof(word));
    h ^= word;
    h *= kFnv1a64Prime;
  }
  if (i < size) {
    uint64_t word = 0;
    std::memcpy(&word, bytes + i, size - i);
    h ^= word;
    h *= kFnv1a64Prime;
  }
  return h;
}

}  // namespace psi::util

#endif  // SMARTPSI_UTIL_CHECKSUM_H_
