#ifndef SMARTPSI_UTIL_THREAD_POOL_H_
#define SMARTPSI_UTIL_THREAD_POOL_H_

#include <cstddef>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace psi::util {

/// Fixed-size worker pool with a single shared FIFO queue.
///
/// This is the parallel substrate for signature construction, SmartPSI's
/// multi-candidate evaluation, and the FSM miner (where the worker count
/// stands in for the paper's "compute nodes" axis in Figure 12).
///
/// Locking: `mutex_` guards the queue, the in-flight count and the shutdown
/// flag (compiler-checked via the PSI_GUARDED_BY annotations below). Both
/// condition variables pair with `mutex_`.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>= 1 enforced).
  explicit ThreadPool(size_t num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains the queue, then joins all workers.
  ~ThreadPool();

  /// Enqueues a task. Safe to call from worker threads.
  void Submit(std::function<void()> task) PSI_EXCLUDES(mutex_);

  /// Enqueues a task only if fewer than `max_queue_depth` tasks are queued
  /// and not yet started; returns false (task dropped) otherwise. This is
  /// the admission-control primitive for the query service: callers shed
  /// load instead of buffering unboundedly. Executing tasks do not count
  /// against the bound.
  bool TrySubmit(std::function<void()> task, size_t max_queue_depth)
      PSI_EXCLUDES(mutex_);

  /// Tasks queued but not yet picked up by a worker (racy by nature; use
  /// for admission decisions and monitoring, not synchronization).
  size_t queue_depth() const PSI_EXCLUDES(mutex_);

  /// Blocks until every submitted task (including tasks submitted by tasks)
  /// has finished executing.
  void Wait() PSI_EXCLUDES(mutex_);

  size_t num_threads() const { return threads_.size(); }

  /// Splits [0, count) into contiguous chunks and runs
  /// `body(begin, end)` across the pool, blocking until done.
  void ParallelFor(size_t count, const std::function<void(size_t, size_t)>& body);

 private:
  void WorkerLoop() PSI_EXCLUDES(mutex_);

  // psi-check: allow(lock-guard) -- joined threads; filled in the constructor, drained only by the destructor
  std::vector<std::thread> threads_;
  mutable Mutex mutex_;
  std::queue<std::function<void()>> queue_ PSI_GUARDED_BY(mutex_);
  CondVar work_available_;
  CondVar all_done_;
  size_t in_flight_ PSI_GUARDED_BY(mutex_) = 0;  // queued + executing
  bool shutting_down_ PSI_GUARDED_BY(mutex_) = false;
};

}  // namespace psi::util

#endif  // SMARTPSI_UTIL_THREAD_POOL_H_
