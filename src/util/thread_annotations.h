#ifndef SMARTPSI_UTIL_THREAD_ANNOTATIONS_H_
#define SMARTPSI_UTIL_THREAD_ANNOTATIONS_H_

// Clang thread-safety-analysis attributes (-Wthread-safety), compiled away
// on toolchains without the attribute so GCC builds see plain code.
//
// The annotations turn locking conventions into compiler-checked contracts:
//   * a field tagged PSI_GUARDED_BY(mu) may only be touched while `mu` is
//     held — the build breaks otherwise;
//   * a function tagged PSI_REQUIRES(mu) may only be called with `mu` held;
//   * PSI_ACQUIRE/PSI_RELEASE describe lock-managing functions themselves.
//
// Use the annotated psi::util::Mutex / MutexLock / CondVar wrappers
// (util/mutex.h) rather than std::mutex so the analysis can see every
// acquisition. See DESIGN.md §10 for the locking map of the codebase and
// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html for attribute
// semantics.

#if defined(__clang__) && !defined(SWIG)
#define PSI_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define PSI_THREAD_ANNOTATION(x)  // no-op on GCC/MSVC
#endif

// --- Data annotations -----------------------------------------------------

/// Field may only be read or written while the given capability is held.
#define PSI_GUARDED_BY(x) PSI_THREAD_ANNOTATION(guarded_by(x))

/// Pointer field: the *pointee* is protected by the given capability (the
/// pointer itself is not).
#define PSI_PT_GUARDED_BY(x) PSI_THREAD_ANNOTATION(pt_guarded_by(x))

/// Lock-ordering edge: this mutex must be acquired after the named ones.
#define PSI_ACQUIRED_AFTER(...) PSI_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Lock-ordering edge: this mutex must be acquired before the named ones.
#define PSI_ACQUIRED_BEFORE(...) \
  PSI_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))

// --- Function annotations -------------------------------------------------

/// Caller must hold the capability (exclusively) for the duration.
#define PSI_REQUIRES(...) \
  PSI_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Caller must hold the capability at least shared.
#define PSI_REQUIRES_SHARED(...) \
  PSI_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability and returns holding it.
#define PSI_ACQUIRE(...) PSI_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the capability before returning.
#define PSI_RELEASE(...) PSI_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function attempts the acquisition; holds it iff it returned the first
/// argument (the success value). Further arguments name the capabilities;
/// with none given the annotated class itself is the capability. All
/// arguments ride through __VA_ARGS__ so PSI_TRY_ACQUIRE(true) does not
/// leave a dangling comma inside the attribute (a clang parse error).
#define PSI_TRY_ACQUIRE(...) \
  PSI_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Caller must NOT already hold the capability (deadlock guard for
/// self-locking member functions).
#define PSI_EXCLUDES(...) PSI_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function returns a reference to the mutex guarding its result.
#define PSI_RETURN_CAPABILITY(x) PSI_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch for code whose locking the analysis cannot follow (e.g. the
/// CondVar internals that juggle the native handle). Use sparingly and
/// leave a comment saying why.
#define PSI_NO_THREAD_SAFETY_ANALYSIS \
  PSI_THREAD_ANNOTATION(no_thread_safety_analysis)

// --- Type annotations -----------------------------------------------------

/// Marks a class as a lockable capability (e.g. a mutex wrapper).
#define PSI_CAPABILITY(x) PSI_THREAD_ANNOTATION(capability(x))

/// Marks an RAII class whose lifetime equals a critical section.
#define PSI_SCOPED_CAPABILITY PSI_THREAD_ANNOTATION(scoped_lockable)

#endif  // SMARTPSI_UTIL_THREAD_ANNOTATIONS_H_
