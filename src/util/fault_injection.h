#ifndef SMARTPSI_UTIL_FAULT_INJECTION_H_
#define SMARTPSI_UTIL_FAULT_INJECTION_H_

// Deterministic, seed-driven fault injection (DESIGN.md §11).
//
// A fault *site* is a named hook compiled into a production code path:
//
//   if (PSI_INJECT_FAULT(util::faults::kCacheLookupMiss)) {
//     return std::nullopt;  // simulate a cache miss
//   }
//   PSI_FAULT_STALL(util::faults::kServiceWorkerStall);  // maybe sleep
//
// Sites are dormant until a test (or `psi_loadgen --chaos`) arms them with
// a FaultSchedule: fail-the-Nth-hit, fail-every-Kth-hit, or probabilistic
// with a fixed per-site RNG. Every trigger decision is a pure function of
// (schedule, per-site hit count, per-site RNG state), so a chaos run
// replays exactly from its textual spec — no std::random_device anywhere.
//
// Builds configured with -DPSI_ENABLE_FAULT_INJECTION=OFF compile the hook
// macros to constant-false / nothing: production hot paths carry zero
// injection overhead (see bench_micro's BM_PredictionCacheLookup for the
// before/after check). The FaultInjector class itself always compiles so
// tests and tools link in both configurations; with the hooks compiled out
// an armed schedule simply never fires.
//
// Thread-safety: all FaultInjector methods are safe for concurrent use.
// The disarmed fast path is a single relaxed atomic load.

#include <atomic>
#include <cassert>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/fault_sites.h"
#include "util/mutex.h"
#include "util/random.h"
#include "util/status.h"
#include "util/thread_annotations.h"

#ifndef PSI_FAULT_INJECTION_ENABLED
#define PSI_FAULT_INJECTION_ENABLED 0
#endif

namespace psi::util {

// Canonical site names live in util/fault_sites.h (the machine-checked
// registry, re-exported here as util::faults::k*). Keeping them in one
// header (rather than as ad-hoc literals at call sites) gives chaos specs,
// tests, DESIGN.md §11 and tools/psi_check a single vocabulary to agree on.

/// When a site fires. Textual grammar (see FaultInjector::ArmFromSpec):
///
///   spec    := entry (',' entry)*
///   entry   := site '=' trigger ('@' stall_ms)?
///   trigger := 'nth:' N            fire exactly on the N-th hit (1-based)
///            | 'every:' K          fire on hits K, 2K, 3K, ...
///            | 'prob:' P (':' S)?  fire w.p. P, per-site RNG seeded S
///            | 'always'            fire on every hit
///            | 'off'               disarm the site
///
/// `stall_ms` only matters for stall sites (PSI_FAULT_STALL): it is how
/// long a firing stalls, in milliseconds.
struct FaultSchedule {
  enum class Trigger { kNth, kEveryK, kProbability, kAlways };

  Trigger trigger = Trigger::kAlways;
  /// kNth: the 1-based hit index that fires (once). kEveryK: the period.
  uint64_t n = 1;
  /// kProbability: fire chance per hit, in [0, 1].
  double probability = 0.0;
  /// kProbability: per-site RNG seed (fixed default keeps runs replayable).
  uint64_t seed = 0x0facade0facadeULL;
  /// Stall duration for PSI_FAULT_STALL sites; ignored elsewhere.
  double stall_ms = 1.0;

  static FaultSchedule Nth(uint64_t nth) {
    FaultSchedule s;
    s.trigger = Trigger::kNth;
    s.n = nth == 0 ? 1 : nth;
    return s;
  }
  static FaultSchedule EveryK(uint64_t k) {
    FaultSchedule s;
    s.trigger = Trigger::kEveryK;
    s.n = k == 0 ? 1 : k;
    return s;
  }
  static FaultSchedule WithProbability(uint64_t seed, double p) {
    FaultSchedule s;
    s.trigger = Trigger::kProbability;
    s.probability = p;
    s.seed = seed;
    return s;
  }
  static FaultSchedule Always() { return FaultSchedule(); }

  FaultSchedule& StallMs(double ms) {
    stall_ms = ms;
    return *this;
  }
};

/// Process-wide fault-site registry. Hooks consult Global(); tests and
/// tools arm/disarm it. All counters are monotonic since process start
/// (DisarmAll() does not reset them; they describe injected traffic).
class FaultInjector {
 public:
  struct SiteStats {
    uint64_t hits = 0;   // times an armed hook consulted the schedule
    uint64_t fires = 0;  // times it was told to fail
  };

  static FaultInjector& Global();

  /// Arms (or re-arms, resetting hit counts) a site. Thread-safe.
  void Arm(std::string_view site, FaultSchedule schedule);

  /// Disarms one site; hits/fires recorded so far stay in the totals.
  void Disarm(std::string_view site);

  /// Disarms every site (typical test teardown).
  void DisarmAll();

  /// Parses the schedule grammar documented on FaultSchedule and arms each
  /// entry. Returns the first parse error without arming anything.
  Status ArmFromSpec(std::string_view spec);

  /// Hook entry point (via PSI_INJECT_FAULT): true when `site` is armed and
  /// its schedule fires on this hit. Unarmed fast path: one relaxed load.
  bool ShouldFail(std::string_view site) {
    if (armed_sites_.load(std::memory_order_relaxed) == 0) return false;
    return ShouldFailSlow(site);
  }

  /// Hook entry point (via PSI_FAULT_STALL): sleeps the schedule's stall_ms
  /// when `site` is armed and fires. Never sleeps holding the registry lock.
  void MaybeStall(std::string_view site) {
    if (armed_sites_.load(std::memory_order_relaxed) == 0) return;
    MaybeStallSlow(site);
  }

  /// Stats for one armed site (zeros if not currently armed).
  SiteStats Stats(std::string_view site) const;

  /// (site, stats) for every currently armed site, sorted by site name.
  std::vector<std::pair<std::string, SiteStats>> AllStats() const;

  /// Total fires across all sites since process start, monotonic across
  /// Arm/Disarm cycles — the "injected faults" gauge services export.
  uint64_t TotalFires() const {
    return total_fires_.load(std::memory_order_relaxed);
  }

  bool armed() const {
    return armed_sites_.load(std::memory_order_relaxed) > 0;
  }

 private:
  struct Site {
    FaultSchedule schedule;
    uint64_t hits = 0;
    uint64_t fires = 0;
    Rng rng{0};
  };

  struct StringHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  bool ShouldFailSlow(std::string_view site);
  void MaybeStallSlow(std::string_view site);
  /// Evaluates the trigger for one hit, updating site state. Lock held.
  bool Fire(Site& site) PSI_REQUIRES(mutex_);

  mutable Mutex mutex_;
  std::unordered_map<std::string, Site, StringHash, std::equal_to<>> sites_
      PSI_GUARDED_BY(mutex_);
  /// Mirrors sites_.size() so the hot path can skip the lock entirely.
  std::atomic<uint64_t> armed_sites_{0};
  std::atomic<uint64_t> total_fires_{0};
};

/// Arms a spec on the global injector for the enclosing scope and disarms
/// *all* sites on destruction — the standard way tests install a chaos
/// schedule. Asserts the spec parses; use ArmFromSpec directly for
/// user-supplied strings.
class ScopedFaultSpec {
 public:
  explicit ScopedFaultSpec(std::string_view spec) {
    const Status status = FaultInjector::Global().ArmFromSpec(spec);
    (void)status;
    assert(status.ok() && "bad fault spec literal");
  }
  ScopedFaultSpec(const ScopedFaultSpec&) = delete;
  ScopedFaultSpec& operator=(const ScopedFaultSpec&) = delete;
  ~ScopedFaultSpec() { FaultInjector::Global().DisarmAll(); }
};

}  // namespace psi::util

// The hooks. Compiled out entirely when PSI_ENABLE_FAULT_INJECTION=OFF so
// release binaries carry no trace of the injector on their hot paths.
#if PSI_FAULT_INJECTION_ENABLED
#define PSI_INJECT_FAULT(site) \
  (::psi::util::FaultInjector::Global().ShouldFail(site))
#define PSI_FAULT_STALL(site) \
  (::psi::util::FaultInjector::Global().MaybeStall(site))
#else
#define PSI_INJECT_FAULT(site) (false)
#define PSI_FAULT_STALL(site) ((void)0)
#endif

#endif  // SMARTPSI_UTIL_FAULT_INJECTION_H_
