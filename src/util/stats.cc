#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace psi::util {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const size_t total = count_ + other.count_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) /
                         static_cast<double>(total);
  mean_ += delta * static_cast<double>(other.count_) /
           static_cast<double>(total);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ = total;
}

double RunningStats::variance() const {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double Quantile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

std::string FormatDuration(double seconds) {
  char buf[64];
  if (seconds < 0.0) return "NA";
  if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.0f ms", seconds * 1e3);
  } else if (seconds < 120.0) {
    std::snprintf(buf, sizeof(buf), "%.1f sec", seconds);
  } else if (seconds < 7200.0) {
    std::snprintf(buf, sizeof(buf), "%.1f min", seconds / 60.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f hrs", seconds / 3600.0);
  }
  return buf;
}

std::string FormatScientific(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*e", std::max(0, digits - 1), value);
  return buf;
}

}  // namespace psi::util
