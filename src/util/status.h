#ifndef SMARTPSI_UTIL_STATUS_H_
#define SMARTPSI_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace psi::util {

/// Minimal status type for fallible operations (mainly graph I/O and input
/// validation). Follows the Arrow/absl convention: functions that can fail
/// return Status or Result<T>, never throw.
class Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kIoError,
    kFailedPrecondition,
  };

  Status() : code_(Code::kOk) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(Code::kInvalidArgument, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Status(Code::kNotFound, std::move(message));
  }
  static Status IoError(std::string message) {
    return Status(Code::kIoError, std::move(message));
  }
  static Status FailedPrecondition(std::string message) {
    return Status(Code::kFailedPrecondition, std::move(message));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) return "OK";
    return CodeName(code_) + ": " + message_;
  }

 private:
  Status(Code code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static std::string CodeName(Code code) {
    switch (code) {
      case Code::kOk:
        return "OK";
      case Code::kInvalidArgument:
        return "InvalidArgument";
      case Code::kNotFound:
        return "NotFound";
      case Code::kIoError:
        return "IoError";
      case Code::kFailedPrecondition:
        return "FailedPrecondition";
    }
    return "Unknown";
  }

  Code code_;
  std::string message_;
};

/// Either a value or an error status.
template <typename T>
class Result {
 public:
  /* implicit */ Result(T value) : value_(std::move(value)) {}
  /* implicit */ Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "OK status requires a value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace psi::util

#endif  // SMARTPSI_UTIL_STATUS_H_
