#ifndef SMARTPSI_UTIL_STATS_H_
#define SMARTPSI_UTIL_STATS_H_

#include <cstddef>
#include <string>
#include <vector>

namespace psi::util {

/// Streaming accumulator for count / mean / min / max / variance (Welford).
/// Used to track per-(method, plan) average evaluation times for the
/// preemptive executor's MaxTime computation, and for bench reporting.
class RunningStats {
 public:
  void Add(double x);

  /// Merges another accumulator into this one (parallel reduction).
  void Merge(const RunningStats& other);

  size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double variance() const;
  double stddev() const;
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Returns the q-th quantile (0 <= q <= 1) of `values` using linear
/// interpolation. Sorts a copy; fine for bench-sized inputs.
double Quantile(std::vector<double> values, double q);

/// Formats seconds the way the paper prints them: "27 sec", "4.3 min",
/// "2.4 hrs", or "NA" for negative values (used for censored runs).
std::string FormatDuration(double seconds);

/// Formats a double with `digits` significant digits in scientific notation
/// matching the paper's Table 1 style, e.g. "1.3e+07".
std::string FormatScientific(double value, int digits = 2);

}  // namespace psi::util

#endif  // SMARTPSI_UTIL_STATS_H_
