#ifndef SMARTPSI_UTIL_MMAP_FILE_H_
#define SMARTPSI_UTIL_MMAP_FILE_H_

#include <cstddef>
#include <string>
#include <utility>

#include "util/status.h"

namespace psi::util {

/// Read-only memory-mapped file. Move-only RAII: the mapping lives exactly
/// as long as the object, so a snapshot that serves out of a mapping must
/// keep its `MmapFile` alive for the snapshot's whole lifetime (DESIGN.md
/// §16.3 ties this to `SnapshotPin` via the snapshot's backing handle).
///
/// An empty file maps to `data() == nullptr`, `size() == 0` — POSIX mmap
/// rejects zero-length mappings, so that case never calls mmap at all.
class MmapFile {
 public:
  static Result<MmapFile> Open(const std::string& path);

  MmapFile() = default;
  ~MmapFile();

  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;
  MmapFile(MmapFile&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        size_(std::exchange(other.size_, 0)) {}
  MmapFile& operator=(MmapFile&& other) noexcept {
    if (this != &other) {
      Reset();
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
    }
    return *this;
  }

  const void* data() const { return data_; }
  const unsigned char* bytes() const {
    return static_cast<const unsigned char*>(data_);
  }
  size_t size() const { return size_; }

 private:
  void Reset();

  const void* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace psi::util

#endif  // SMARTPSI_UTIL_MMAP_FILE_H_
