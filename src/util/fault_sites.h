#ifndef SMARTPSI_UTIL_FAULT_SITES_H_
#define SMARTPSI_UTIL_FAULT_SITES_H_

// Canonical fault-site registry (DESIGN.md §11.1, §15.4).
//
// Every PSI_INJECT_FAULT / PSI_FAULT_STALL hook in src/ must name its site
// through one of these constants — never a raw string literal — and every
// constant here must appear in the DESIGN.md §11 site table and in at
// least one test. All three edges are machine-checked by the `fault-site`
// rule of tools/psi_check, so chaos coverage cannot rot silently: adding a
// hook without registering it here, or registering a site without a test,
// fails the static-analysis CI job.
//
// The registry is parsed by psi_check as well as compiled, so entries must
// keep the exact shape below:
//
//   inline constexpr char kName[] = "dotted.site.string";

namespace psi::util::faults {

inline constexpr char kServiceAdmissionShed[] = "service.admission.shed";
inline constexpr char kServiceWorkerStall[] = "service.worker.stall";
inline constexpr char kCacheLookupMiss[] = "cache.lookup.miss";
inline constexpr char kCacheLookupPoison[] = "cache.lookup.poison";
inline constexpr char kSmartPredictFlip[] = "smart.predict.flip";
inline constexpr char kSmartPlanMispredict[] = "smart.plan.mispredict";
inline constexpr char kSmartPreemptExpire[] = "smart.preempt.expire";
inline constexpr char kThreadPoolTaskStart[] = "threadpool.task.start";
inline constexpr char kCatalogPublish[] = "catalog.publish";
inline constexpr char kCatalogShardPublish[] = "catalog.shard_publish";
inline constexpr char kGraphIoShortRead[] = "io.graph.short_read";
inline constexpr char kQueryIoShortRead[] = "io.query.short_read";
inline constexpr char kSignatureIoShortRead[] = "io.signature.short_read";
inline constexpr char kWorkloadShortRead[] = "io.workload.short_read";
inline constexpr char kSnapshotLoad[] = "snapshot.load";
inline constexpr char kServiceBatch[] = "service.batch";

}  // namespace psi::util::faults

#endif  // SMARTPSI_UTIL_FAULT_SITES_H_
