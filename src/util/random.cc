#include "util/random.h"

#include <cassert>
#include <cmath>

namespace psi::util {

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm();
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  assert(bound > 0);
  // Lemire's nearly-divisionless unbiased bounded generation.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t low = static_cast<uint64_t>(m);
  if (low < bound) {
    uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  return lo + static_cast<int64_t>(
                  NextBounded(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::NextGaussian() {
  // Box-Muller; guard against log(0).
  double u1 = NextDouble();
  while (u1 <= 1e-300) u1 = NextDouble();
  const double u2 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

Rng Rng::Fork() { return Rng(Next() ^ 0x9e3779b97f4a7c15ULL); }

ZipfSampler::ZipfSampler(size_t n, double exponent) {
  assert(n >= 1);
  cdf_.resize(n);
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), exponent);
    cdf_[i] = total;
  }
  for (auto& value : cdf_) value /= total;
}

size_t ZipfSampler::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  // Binary search for the first CDF entry >= u.
  size_t lo = 0;
  size_t hi = cdf_.size() - 1;
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k, Rng& rng) {
  if (k >= n) {
    std::vector<size_t> all(n);
    for (size_t i = 0; i < n; ++i) all[i] = i;
    return all;
  }
  // Reservoir sampling.
  std::vector<size_t> reservoir(k);
  for (size_t i = 0; i < k; ++i) reservoir[i] = i;
  for (size_t i = k; i < n; ++i) {
    const size_t j = rng.NextBounded(i + 1);
    if (j < k) reservoir[j] = i;
  }
  return reservoir;
}

}  // namespace psi::util
