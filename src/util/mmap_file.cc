#include "util/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace psi::util {

Result<MmapFile> MmapFile::Open(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);  // NOLINT(cppcoreguidelines-pro-type-vararg)
  if (fd < 0) {
    return Status::NotFound("cannot open '" + path +
                            "': " + std::strerror(errno));
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    Status s = Status::IoError("cannot stat '" + path +
                               "': " + std::strerror(errno));
    ::close(fd);
    return s;
  }
  if (st.st_size < 0 || !S_ISREG(st.st_mode)) {
    ::close(fd);
    return Status::InvalidArgument("'" + path + "' is not a regular file");
  }
  MmapFile file;
  const auto size = static_cast<size_t>(st.st_size);
  if (size > 0) {
    void* mapped = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (mapped == MAP_FAILED) {
      Status s = Status::IoError("cannot mmap '" + path +
                                 "': " + std::strerror(errno));
      ::close(fd);
      return s;
    }
    file.data_ = mapped;
    file.size_ = size;
  }
  // The mapping holds its own reference to the file; the descriptor is no
  // longer needed once mmap succeeded (or the file is empty).
  ::close(fd);
  return file;
}

MmapFile::~MmapFile() { Reset(); }

void MmapFile::Reset() {
  if (data_ != nullptr) {
    ::munmap(const_cast<void*>(data_), size_);
    data_ = nullptr;
    size_ = 0;
  }
}

}  // namespace psi::util
