#include "util/thread_pool.h"

#include <algorithm>

#include "util/fault_injection.h"

namespace psi::util {

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t n = std::max<size_t>(1, num_threads);
  threads_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.NotifyAll();
  for (auto& thread : threads_) thread.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(mutex_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  work_available_.NotifyOne();
}

bool ThreadPool::TrySubmit(std::function<void()> task,
                           size_t max_queue_depth) {
  {
    MutexLock lock(mutex_);
    if (queue_.size() >= max_queue_depth) return false;
    queue_.push(std::move(task));
    ++in_flight_;
  }
  work_available_.NotifyOne();
  return true;
}

size_t ThreadPool::queue_depth() const {
  MutexLock lock(mutex_);
  return queue_.size();
}

void ThreadPool::Wait() {
  MutexLock lock(mutex_);
  // The predicate runs inside CondVar::Wait, where the held capability is
  // the `mu` parameter; the analysis cannot equate that with `mutex_`, so
  // the lambda opts out. The enclosing MutexLock guarantees the invariant.
  all_done_.Wait(mutex_, [this]() PSI_NO_THREAD_SAFETY_ANALYSIS {
    return in_flight_ == 0;
  });
}

void ThreadPool::ParallelFor(size_t count,
                             const std::function<void(size_t, size_t)>& body) {
  if (count == 0) return;
  const size_t chunks = std::min(count, threads_.size() * 4);
  const size_t chunk_size = (count + chunks - 1) / chunks;
  for (size_t begin = 0; begin < count; begin += chunk_size) {
    const size_t end = std::min(count, begin + chunk_size);
    Submit([&body, begin, end] { body(begin, end); });
  }
  Wait();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      // Opted out of the analysis for the same reason as in Wait() above.
      work_available_.Wait(mutex_, [this]() PSI_NO_THREAD_SAFETY_ANALYSIS {
        return shutting_down_ || !queue_.empty();
      });
      if (queue_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    // Chaos hook: simulate a scheduler hiccup / descheduled worker before
    // the task runs (io stall, noisy neighbor, cgroup throttling).
    PSI_FAULT_STALL(faults::kThreadPoolTaskStart);
    task();
    {
      MutexLock lock(mutex_);
      if (--in_flight_ == 0) all_done_.NotifyAll();
    }
  }
}

}  // namespace psi::util
