#ifndef SMARTPSI_UTIL_RANDOM_H_
#define SMARTPSI_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace psi::util {

/// SplitMix64 generator. Primarily used to seed Xoshiro256++, but it is a
/// perfectly serviceable (and very fast) generator on its own.
class SplitMix64 {
 public:
  using result_type = uint64_t;

  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  static constexpr uint64_t min() { return 0; }
  static constexpr uint64_t max() {
    return std::numeric_limits<uint64_t>::max();
  }

  uint64_t operator()() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// Xoshiro256++: the project's default deterministic pseudo-random generator.
/// All randomized components (graph generators, query extraction, training
/// sampling, plan sampling, the ML learners) draw from instances of this
/// class so that every experiment is reproducible from a single seed.
class Rng {
 public:
  using result_type = uint64_t;

  /// Seeds the four 64-bit words of state from `seed` via SplitMix64.
  explicit Rng(uint64_t seed = 0x5eed5eed5eedULL);

  static constexpr uint64_t min() { return 0; }
  static constexpr uint64_t max() {
    return std::numeric_limits<uint64_t>::max();
  }

  uint64_t operator()() { return Next(); }

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be > 0. Uses Lemire's
  /// multiply-shift rejection method (unbiased).
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability `p` (clamped to [0, 1]).
  bool NextBool(double p = 0.5);

  /// Standard normal variate (Box-Muller; one value per call, no caching).
  double NextGaussian();

  /// Forks an independent generator; the child stream does not overlap the
  /// parent's for any practical sequence length.
  Rng Fork();

 private:
  uint64_t s_[4];
};

/// Zipf(s, n) sampler over {0, 1, ..., n-1} using the inverse-CDF table.
/// Used to assign skewed node labels in the synthetic dataset stand-ins.
class ZipfSampler {
 public:
  /// `n` must be >= 1; `exponent` >= 0 (0 degenerates to uniform).
  ZipfSampler(size_t n, double exponent);

  /// Draws one value in [0, n).
  size_t Sample(Rng& rng) const;

  size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

/// In-place Fisher-Yates shuffle.
template <typename T>
void Shuffle(std::vector<T>& items, Rng& rng) {
  for (size_t i = items.size(); i > 1; --i) {
    size_t j = rng.NextBounded(i);
    std::swap(items[i - 1], items[j]);
  }
}

/// Reservoir-samples `k` items from [0, n). The result is unsorted.
std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k, Rng& rng);

}  // namespace psi::util

#endif  // SMARTPSI_UTIL_RANDOM_H_
