#ifndef SMARTPSI_UTIL_TABLE_PRINTER_H_
#define SMARTPSI_UTIL_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace psi::util {

/// Renders fixed-width text tables for the bench harnesses, so each bench
/// binary prints rows shaped like the paper's tables and figure series.
///
///   TablePrinter t({"Query size", "TurboIso", "SmartPSI"});
///   t.AddRow({"4", "5.4 hrs", "27 sec"});
///   t.Print(std::cout);
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> cells);

  /// Writes the table (header, separator, rows) to `out`.
  void Print(std::ostream& out) const;

  /// Returns the rendered table as a string.
  std::string ToString() const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace psi::util

#endif  // SMARTPSI_UTIL_TABLE_PRINTER_H_
