#ifndef SMARTPSI_UTIL_STOP_TOKEN_H_
#define SMARTPSI_UTIL_STOP_TOKEN_H_

#include <atomic>

namespace psi::util {

/// Cooperative cancellation flag shared between an initiator and one or more
/// workers. Used by the two-threaded baseline (the winning thread stops the
/// loser) and by deadline enforcement in the preemptive executor.
///
/// The flag is monotonic: once requested, a stop cannot be rescinded except
/// via Reset(), which must only be called when no worker is observing the
/// token.
///
/// Memory-ordering contract
/// ------------------------
/// RequestStop() is a release store and StopRequested() an acquire load, so
/// they form a synchronizes-with pair: every write the initiator made
/// *before* requesting the stop (a published race result, a response
/// status, a shutdown reason) is visible to any worker *after* it observes
/// StopRequested() == true. Workers may therefore read such state without
/// further synchronization once they have seen the stop.
///
/// The reverse direction is deliberately unordered: a worker's writes are
/// NOT published to the initiator by polling the flag — joining the worker
/// (or another release/acquire edge, e.g. a mutex or promise) is still
/// required before inspecting its results.
///
/// Reset() is relaxed because its precondition (quiescence: no concurrent
/// observer) already rules out any race the ordering could fix.
class StopSource {
 public:
  StopSource() : stop_(false) {}

  StopSource(const StopSource&) = delete;
  StopSource& operator=(const StopSource&) = delete;

  void RequestStop() { stop_.store(true, std::memory_order_release); }

  bool StopRequested() const { return stop_.load(std::memory_order_acquire); }

  /// Rearms the source for reuse. Caller must guarantee quiescence.
  void Reset() { stop_.store(false, std::memory_order_relaxed); }

 private:
  std::atomic<bool> stop_;
};

/// Lightweight view over a StopSource (or over nothing, in which case it
/// never reports a stop). Cheap to copy into recursive search frames.
class StopToken {
 public:
  /// A token that never stops.
  StopToken() : source_(nullptr) {}

  explicit StopToken(const StopSource* source) : source_(source) {}

  /// Inherits the acquire semantics of StopSource::StopRequested().
  bool StopRequested() const {
    return source_ != nullptr && source_->StopRequested();
  }

 private:
  const StopSource* source_;
};

}  // namespace psi::util

#endif  // SMARTPSI_UTIL_STOP_TOKEN_H_
