#ifndef SMARTPSI_UTIL_STOP_TOKEN_H_
#define SMARTPSI_UTIL_STOP_TOKEN_H_

#include <atomic>

namespace psi::util {

/// Cooperative cancellation flag shared between an initiator and one or more
/// workers. Used by the two-threaded baseline (the winning thread stops the
/// loser) and by deadline enforcement in the preemptive executor.
///
/// The flag is monotonic: once requested, a stop cannot be rescinded except
/// via Reset(), which must only be called when no worker is observing the
/// token.
class StopSource {
 public:
  StopSource() : stop_(false) {}

  StopSource(const StopSource&) = delete;
  StopSource& operator=(const StopSource&) = delete;

  void RequestStop() { stop_.store(true, std::memory_order_relaxed); }

  bool StopRequested() const { return stop_.load(std::memory_order_relaxed); }

  /// Rearms the source for reuse. Caller must guarantee quiescence.
  void Reset() { stop_.store(false, std::memory_order_relaxed); }

 private:
  std::atomic<bool> stop_;
};

/// Lightweight view over a StopSource (or over nothing, in which case it
/// never reports a stop). Cheap to copy into recursive search frames.
class StopToken {
 public:
  /// A token that never stops.
  StopToken() : source_(nullptr) {}

  explicit StopToken(const StopSource* source) : source_(source) {}

  bool StopRequested() const {
    return source_ != nullptr && source_->StopRequested();
  }

 private:
  const StopSource* source_;
};

}  // namespace psi::util

#endif  // SMARTPSI_UTIL_STOP_TOKEN_H_
