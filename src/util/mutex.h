#ifndef SMARTPSI_UTIL_MUTEX_H_
#define SMARTPSI_UTIL_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace psi::util {

/// std::mutex with Clang thread-safety-analysis attributes. Every mutex in
/// the codebase outside this header is one of these, so `-Wthread-safety`
/// can prove each PSI_GUARDED_BY field is only touched under its lock.
///
/// Prefer the RAII MutexLock; call Lock/Unlock directly only when a scope
/// cannot express the critical section.
class PSI_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() PSI_ACQUIRE() { mu_.lock(); }
  void Unlock() PSI_RELEASE() { mu_.unlock(); }
  bool TryLock() PSI_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII critical section over a Mutex (std::lock_guard with annotations).
class PSI_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) PSI_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() PSI_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable bound to the annotated Mutex. Waits require the mutex
/// held (checked under clang); the wait atomically releases and reacquires
/// it through the native handle, exactly like std::condition_variable with
/// std::unique_lock.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified (spurious wakeups possible; use the predicate
  /// overload unless the caller already loops).
  void Wait(Mutex& mu) PSI_REQUIRES(mu) {
    // Adopt the caller's hold so std::condition_variable can do its atomic
    // unlock-wait-relock dance, then release the unique_lock's ownership
    // claim: the caller still holds `mu` when we return, as the annotation
    // promises.
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  /// Blocks until `pred()` holds.
  template <typename Predicate>
  void Wait(Mutex& mu, Predicate pred) PSI_REQUIRES(mu) {
    while (!pred()) Wait(mu);
  }

  /// Blocks until `pred()` holds or the timeout elapses; returns pred().
  template <typename Rep, typename Period, typename Predicate>
  bool WaitFor(Mutex& mu, std::chrono::duration<Rep, Period> timeout,
               Predicate pred) PSI_REQUIRES(mu) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    while (!pred()) {
      std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
      const std::cv_status status = cv_.wait_until(native, deadline);
      native.release();
      if (status == std::cv_status::timeout) return pred();
    }
    return true;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace psi::util

#endif  // SMARTPSI_UTIL_MUTEX_H_
