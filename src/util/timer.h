#ifndef SMARTPSI_UTIL_TIMER_H_
#define SMARTPSI_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>
#include <limits>

namespace psi::util {

/// Monotonic wall-clock stopwatch. Starts running at construction.
class WallTimer {
 public:
  using Clock = std::chrono::steady_clock;

  WallTimer() : start_(Clock::now()) {}

  /// Restarts the stopwatch from zero.
  void Restart() { start_ = Clock::now(); }

  /// Elapsed time in seconds since construction or the last Restart().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double Millis() const { return Seconds() * 1e3; }
  double Micros() const { return Seconds() * 1e6; }

 private:
  Clock::time_point start_;
};

/// A point in time after which work should stop. A default-constructed
/// Deadline is infinite (never expires). Deadlines compose with StopToken in
/// the search loops: both are polled every few hundred steps.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// Never expires.
  Deadline() : expiry_(Clock::time_point::max()) {}

  /// Expires `seconds` from now. Non-positive values expire immediately.
  static Deadline After(double seconds) {
    Deadline d;
    d.expiry_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                   std::chrono::duration<double>(seconds));
    return d;
  }

  static Deadline Infinite() { return Deadline(); }

  bool Expired() const { return Clock::now() >= expiry_; }

  bool IsInfinite() const { return expiry_ == Clock::time_point::max(); }

  /// Seconds remaining; +inf for an infinite deadline, <= 0 when expired.
  double RemainingSeconds() const {
    if (IsInfinite()) return std::numeric_limits<double>::infinity();
    return std::chrono::duration<double>(expiry_ - Clock::now()).count();
  }

 private:
  Clock::time_point expiry_;
};

}  // namespace psi::util

#endif  // SMARTPSI_UTIL_TIMER_H_
