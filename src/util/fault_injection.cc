#include "util/fault_injection.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <thread>

namespace psi::util {

namespace {

/// Parses a base-10 uint64; empty or trailing garbage fails.
bool ParseU64(std::string_view s, uint64_t* out) {
  if (s.empty()) return false;
  const std::string buf(s);
  char* end = nullptr;
  const unsigned long long v = std::strtoull(buf.c_str(), &end, 10);
  if (end != buf.c_str() + buf.size()) return false;
  *out = v;
  return true;
}

bool ParseDouble(std::string_view s, double* out) {
  if (s.empty()) return false;
  const std::string buf(s);
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) return false;
  *out = v;
  return true;
}

/// Parses one `site=trigger[@ms]` entry. A parsed `off` entry is returned
/// with `*disarm = true` and an unspecified schedule.
Status ParseEntry(std::string_view entry, std::string* site,
                  FaultSchedule* schedule, bool* disarm) {
  *disarm = false;
  const size_t eq = entry.find('=');
  if (eq == std::string_view::npos || eq == 0) {
    return Status::InvalidArgument("fault entry '" + std::string(entry) +
                                   "' is not site=trigger");
  }
  *site = std::string(entry.substr(0, eq));
  std::string_view trigger = entry.substr(eq + 1);

  double stall_ms = -1.0;
  if (const size_t at = trigger.find('@'); at != std::string_view::npos) {
    if (!ParseDouble(trigger.substr(at + 1), &stall_ms) || stall_ms < 0.0) {
      return Status::InvalidArgument("bad stall duration in '" +
                                     std::string(entry) + "'");
    }
    trigger = trigger.substr(0, at);
  }

  if (trigger == "off") {
    *disarm = true;
    return Status::Ok();
  }
  if (trigger == "always") {
    *schedule = FaultSchedule::Always();
  } else if (trigger.rfind("nth:", 0) == 0) {
    uint64_t n = 0;
    if (!ParseU64(trigger.substr(4), &n) || n == 0) {
      return Status::InvalidArgument("bad nth trigger in '" +
                                     std::string(entry) + "'");
    }
    *schedule = FaultSchedule::Nth(n);
  } else if (trigger.rfind("every:", 0) == 0) {
    uint64_t k = 0;
    if (!ParseU64(trigger.substr(6), &k) || k == 0) {
      return Status::InvalidArgument("bad every trigger in '" +
                                     std::string(entry) + "'");
    }
    *schedule = FaultSchedule::EveryK(k);
  } else if (trigger.rfind("prob:", 0) == 0) {
    std::string_view rest = trigger.substr(5);
    uint64_t seed = FaultSchedule().seed;
    if (const size_t colon = rest.find(':');
        colon != std::string_view::npos) {
      if (!ParseU64(rest.substr(colon + 1), &seed)) {
        return Status::InvalidArgument("bad probability seed in '" +
                                       std::string(entry) + "'");
      }
      rest = rest.substr(0, colon);
    }
    double p = 0.0;
    if (!ParseDouble(rest, &p) || p < 0.0 || p > 1.0) {
      return Status::InvalidArgument("bad probability in '" +
                                     std::string(entry) + "'");
    }
    *schedule = FaultSchedule::WithProbability(seed, p);
  } else {
    return Status::InvalidArgument("unknown trigger '" +
                                   std::string(trigger) + "' in '" +
                                   std::string(entry) + "'");
  }
  if (stall_ms >= 0.0) schedule->StallMs(stall_ms);
  return Status::Ok();
}

}  // namespace

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

void FaultInjector::Arm(std::string_view site, FaultSchedule schedule) {
  MutexLock lock(mutex_);
  auto it = sites_.find(site);
  if (it == sites_.end()) {
    it = sites_.emplace(std::string(site), Site{}).first;
  }
  Site& s = it->second;
  s.schedule = schedule;
  s.hits = 0;
  s.fires = 0;
  s.rng = Rng(schedule.seed);
  armed_sites_.store(sites_.size(), std::memory_order_relaxed);
}

void FaultInjector::Disarm(std::string_view site) {
  MutexLock lock(mutex_);
  const auto it = sites_.find(site);
  if (it != sites_.end()) sites_.erase(it);
  armed_sites_.store(sites_.size(), std::memory_order_relaxed);
}

void FaultInjector::DisarmAll() {
  MutexLock lock(mutex_);
  sites_.clear();
  armed_sites_.store(0, std::memory_order_relaxed);
}

Status FaultInjector::ArmFromSpec(std::string_view spec) {
  // Two passes: validate everything, then arm, so a bad tail entry cannot
  // leave a half-armed schedule behind.
  struct Parsed {
    std::string site;
    FaultSchedule schedule;
    bool disarm;
  };
  std::vector<Parsed> entries;
  size_t begin = 0;
  while (begin <= spec.size()) {
    size_t end = spec.find(',', begin);
    if (end == std::string_view::npos) end = spec.size();
    const std::string_view entry = spec.substr(begin, end - begin);
    begin = end + 1;
    if (entry.empty()) continue;
    Parsed parsed;
    const Status status =
        ParseEntry(entry, &parsed.site, &parsed.schedule, &parsed.disarm);
    if (!status.ok()) return status;
    entries.push_back(std::move(parsed));
  }
  for (const Parsed& parsed : entries) {
    if (parsed.disarm) {
      Disarm(parsed.site);
    } else {
      Arm(parsed.site, parsed.schedule);
    }
  }
  return Status::Ok();
}

bool FaultInjector::Fire(Site& site) {
  ++site.hits;
  bool fires = false;
  switch (site.schedule.trigger) {
    case FaultSchedule::Trigger::kNth:
      fires = site.hits == site.schedule.n;
      break;
    case FaultSchedule::Trigger::kEveryK:
      fires = site.hits % site.schedule.n == 0;
      break;
    case FaultSchedule::Trigger::kProbability:
      fires = site.rng.NextBool(site.schedule.probability);
      break;
    case FaultSchedule::Trigger::kAlways:
      fires = true;
      break;
  }
  if (fires) {
    ++site.fires;
    total_fires_.fetch_add(1, std::memory_order_relaxed);
  }
  return fires;
}

bool FaultInjector::ShouldFailSlow(std::string_view site) {
  MutexLock lock(mutex_);
  const auto it = sites_.find(site);
  if (it == sites_.end()) return false;
  return Fire(it->second);
}

void FaultInjector::MaybeStallSlow(std::string_view site) {
  double stall_ms = 0.0;
  {
    MutexLock lock(mutex_);
    const auto it = sites_.find(site);
    if (it == sites_.end() || !Fire(it->second)) return;
    stall_ms = std::max(it->second.schedule.stall_ms, 0.0);
  }
  // Sleep outside the lock so a stalled worker cannot serialize every other
  // armed hook in the process.
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
      stall_ms));
}

FaultInjector::SiteStats FaultInjector::Stats(std::string_view site) const {
  MutexLock lock(mutex_);
  const auto it = sites_.find(site);
  if (it == sites_.end()) return SiteStats{};
  return SiteStats{it->second.hits, it->second.fires};
}

std::vector<std::pair<std::string, FaultInjector::SiteStats>>
FaultInjector::AllStats() const {
  std::vector<std::pair<std::string, SiteStats>> all;
  {
    MutexLock lock(mutex_);
    all.reserve(sites_.size());
    for (const auto& [name, site] : sites_) {
      all.emplace_back(name, SiteStats{site.hits, site.fires});
    }
  }
  std::sort(all.begin(), all.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return all;
}

}  // namespace psi::util
