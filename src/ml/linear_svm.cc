#include "ml/linear_svm.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace psi::ml {

void LinearSvm::Train(const Dataset& data, size_t num_classes,
                      const SvmConfig& config, util::Rng& rng) {
  std::vector<size_t> all(data.size());
  for (size_t i = 0; i < all.size(); ++i) all[i] = i;
  Train(data, all, num_classes, config, rng);
}

void LinearSvm::Train(const Dataset& data, std::span<const size_t> indices,
                      size_t num_classes, const SvmConfig& config,
                      util::Rng& rng) {
  assert(num_classes >= 1);
  num_classes_ = num_classes;
  num_features_ = data.num_features();
  weights_.assign(num_classes, std::vector<double>(num_features_, 0.0));
  biases_.assign(num_classes, 0.0);
  if (indices.empty()) return;

  // One Pegasos run per class (one-vs-rest): minimize
  //   λ/2 ||w||² + (1/n) Σ max(0, 1 - y (w·x + b)).
  std::vector<size_t> order(indices.begin(), indices.end());
  for (size_t c = 0; c < num_classes; ++c) {
    auto& w = weights_[c];
    double& b = biases_[c];
    // Start the step counter one epoch in: Pegasos' 1/(λt) rate is huge for
    // small t and the unregularized bias never recovers from those jumps.
    size_t t = order.size();
    for (size_t epoch = 0; epoch < config.epochs; ++epoch) {
      util::Shuffle(order, rng);
      for (const size_t idx : order) {
        ++t;
        const double eta = 1.0 / (config.lambda * static_cast<double>(t));
        const auto x = data.row(idx);
        const double y = data.label(idx) == static_cast<int32_t>(c) ? 1.0
                                                                    : -1.0;
        double margin = b;
        for (size_t f = 0; f < num_features_; ++f) {
          margin += w[f] * static_cast<double>(x[f]);
        }
        const double scale = 1.0 - eta * config.lambda;
        for (double& wf : w) wf *= scale;
        if (y * margin < 1.0) {
          for (size_t f = 0; f < num_features_; ++f) {
            w[f] += eta * y * static_cast<double>(x[f]);
          }
          b += eta * y;
        }
      }
    }
  }
}

std::vector<double> LinearSvm::DecisionFunction(
    std::span<const float> features) const {
  assert(features.size() == num_features_);
  std::vector<double> margins(num_classes_, 0.0);
  for (size_t c = 0; c < num_classes_; ++c) {
    double m = biases_[c];
    const auto& w = weights_[c];
    for (size_t f = 0; f < num_features_; ++f) {
      m += w[f] * static_cast<double>(features[f]);
    }
    margins[c] = m;
  }
  return margins;
}

int32_t LinearSvm::Predict(std::span<const float> features) const {
  assert(trained());
  const std::vector<double> margins = DecisionFunction(features);
  return static_cast<int32_t>(
      std::max_element(margins.begin(), margins.end()) - margins.begin());
}

}  // namespace psi::ml
