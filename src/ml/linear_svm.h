#ifndef SMARTPSI_ML_LINEAR_SVM_H_
#define SMARTPSI_ML_LINEAR_SVM_H_

#include <cstdint>
#include <span>
#include <vector>

#include "ml/dataset.h"
#include "util/random.h"

namespace psi::ml {

struct SvmConfig {
  /// Regularization strength (Pegasos λ).
  double lambda = 1e-3;
  /// Passes over the training set.
  size_t epochs = 20;
};

/// Linear SVM trained with the Pegasos stochastic sub-gradient solver,
/// extended to multi-class via one-vs-rest. One of the alternative learners
/// the paper compares against Random Forest in §5.4 (SVM ≈ 90% accuracy on
/// Human vs RF ≈ 95%).
class LinearSvm {
 public:
  void Train(const Dataset& data, size_t num_classes, const SvmConfig& config,
             util::Rng& rng);

  void Train(const Dataset& data, std::span<const size_t> indices,
             size_t num_classes, const SvmConfig& config, util::Rng& rng);

  int32_t Predict(std::span<const float> features) const;

  /// Raw one-vs-rest margins (size num_classes).
  std::vector<double> DecisionFunction(std::span<const float> features) const;

  bool trained() const { return !weights_.empty(); }
  size_t num_classes() const { return num_classes_; }

 private:
  size_t num_classes_ = 0;
  size_t num_features_ = 0;
  /// weights_[c] has num_features entries; biases_[c] the intercept.
  std::vector<std::vector<double>> weights_;
  std::vector<double> biases_;
};

}  // namespace psi::ml

#endif  // SMARTPSI_ML_LINEAR_SVM_H_
