#include "ml/metrics.h"

#include <cassert>

namespace psi::ml {

double Accuracy(std::span<const int32_t> predicted,
                std::span<const int32_t> actual) {
  assert(predicted.size() == actual.size());
  if (predicted.empty()) return 0.0;
  size_t correct = 0;
  for (size_t i = 0; i < predicted.size(); ++i) {
    if (predicted[i] == actual[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(predicted.size());
}

std::vector<uint64_t> ConfusionMatrix(std::span<const int32_t> predicted,
                                      std::span<const int32_t> actual,
                                      size_t num_classes) {
  assert(predicted.size() == actual.size());
  std::vector<uint64_t> confusion(num_classes * num_classes, 0);
  for (size_t i = 0; i < predicted.size(); ++i) {
    assert(actual[i] >= 0 && static_cast<size_t>(actual[i]) < num_classes);
    assert(predicted[i] >= 0 &&
           static_cast<size_t>(predicted[i]) < num_classes);
    ++confusion[static_cast<size_t>(actual[i]) * num_classes +
                static_cast<size_t>(predicted[i])];
  }
  return confusion;
}

ClassMetrics ComputeClassMetrics(std::span<const uint64_t> confusion,
                                 size_t num_classes, size_t cls) {
  assert(confusion.size() == num_classes * num_classes);
  assert(cls < num_classes);
  uint64_t tp = confusion[cls * num_classes + cls];
  uint64_t predicted_positive = 0;
  uint64_t actual_positive = 0;
  for (size_t i = 0; i < num_classes; ++i) {
    predicted_positive += confusion[i * num_classes + cls];
    actual_positive += confusion[cls * num_classes + i];
  }
  ClassMetrics m;
  if (predicted_positive > 0) {
    m.precision =
        static_cast<double>(tp) / static_cast<double>(predicted_positive);
  }
  if (actual_positive > 0) {
    m.recall = static_cast<double>(tp) / static_cast<double>(actual_positive);
  }
  if (m.precision + m.recall > 0.0) {
    m.f1 = 2.0 * m.precision * m.recall / (m.precision + m.recall);
  }
  return m;
}

}  // namespace psi::ml
