#ifndef SMARTPSI_ML_NEURAL_NET_H_
#define SMARTPSI_ML_NEURAL_NET_H_

#include <cstdint>
#include <span>
#include <vector>

#include "ml/dataset.h"
#include "util/random.h"

namespace psi::ml {

struct MlpConfig {
  size_t hidden_units = 32;
  size_t epochs = 30;
  double learning_rate = 0.05;
  /// L2 weight decay.
  double weight_decay = 1e-4;
};

/// One-hidden-layer multilayer perceptron (ReLU + softmax, SGD with
/// cross-entropy loss). The "NN" alternative of the paper's §5.4 learner
/// comparison (≈ 92% accuracy on Human vs RF ≈ 95%).
class NeuralNet {
 public:
  void Train(const Dataset& data, size_t num_classes, const MlpConfig& config,
             util::Rng& rng);

  void Train(const Dataset& data, std::span<const size_t> indices,
             size_t num_classes, const MlpConfig& config, util::Rng& rng);

  int32_t Predict(std::span<const float> features) const;

  /// Softmax class probabilities.
  std::vector<double> PredictProba(std::span<const float> features) const;

  bool trained() const { return !w1_.empty(); }
  size_t num_classes() const { return num_classes_; }

 private:
  void Forward(std::span<const float> features, std::vector<double>& hidden,
               std::vector<double>& probs) const;

  size_t num_features_ = 0;
  size_t num_hidden_ = 0;
  size_t num_classes_ = 0;
  /// Row-major [hidden][feature] and [class][hidden] weight matrices.
  std::vector<double> w1_, b1_;
  std::vector<double> w2_, b2_;
};

}  // namespace psi::ml

#endif  // SMARTPSI_ML_NEURAL_NET_H_
