#include "ml/neural_net.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace psi::ml {

void NeuralNet::Train(const Dataset& data, size_t num_classes,
                      const MlpConfig& config, util::Rng& rng) {
  std::vector<size_t> all(data.size());
  for (size_t i = 0; i < all.size(); ++i) all[i] = i;
  Train(data, all, num_classes, config, rng);
}

void NeuralNet::Train(const Dataset& data, std::span<const size_t> indices,
                      size_t num_classes, const MlpConfig& config,
                      util::Rng& rng) {
  assert(num_classes >= 1);
  num_features_ = data.num_features();
  num_hidden_ = std::max<size_t>(1, config.hidden_units);
  num_classes_ = num_classes;

  // He initialization for the ReLU layer, Xavier-ish for the output layer.
  const double scale1 =
      std::sqrt(2.0 / static_cast<double>(std::max<size_t>(1, num_features_)));
  const double scale2 = std::sqrt(1.0 / static_cast<double>(num_hidden_));
  w1_.resize(num_hidden_ * num_features_);
  for (double& w : w1_) w = rng.NextGaussian() * scale1;
  b1_.assign(num_hidden_, 0.0);
  w2_.resize(num_classes_ * num_hidden_);
  for (double& w : w2_) w = rng.NextGaussian() * scale2;
  b2_.assign(num_classes_, 0.0);
  if (indices.empty()) return;

  std::vector<size_t> order(indices.begin(), indices.end());
  std::vector<double> hidden(num_hidden_);
  std::vector<double> probs(num_classes_);
  std::vector<double> hidden_grad(num_hidden_);

  for (size_t epoch = 0; epoch < config.epochs; ++epoch) {
    util::Shuffle(order, rng);
    // 1/sqrt decay keeps early epochs fast and late epochs stable.
    const double lr = config.learning_rate /
                      std::sqrt(1.0 + static_cast<double>(epoch));
    for (const size_t idx : order) {
      const auto x = data.row(idx);
      const int32_t y = data.label(idx);
      Forward(x, hidden, probs);

      // Output layer gradient: dL/dz2 = probs - onehot(y).
      for (size_t c = 0; c < num_classes_; ++c) {
        const double delta =
            probs[c] - (static_cast<int32_t>(c) == y ? 1.0 : 0.0);
        for (size_t h = 0; h < num_hidden_; ++h) {
          const double grad = delta * hidden[h] +
                              config.weight_decay * w2_[c * num_hidden_ + h];
          w2_[c * num_hidden_ + h] -= lr * grad;
        }
        b2_[c] -= lr * delta;
      }
      // Hidden layer gradient (through ReLU). Note: uses the pre-update
      // output weights would be slightly more correct; the post-update
      // approximation is standard for SGD at these sizes.
      for (size_t h = 0; h < num_hidden_; ++h) {
        if (hidden[h] <= 0.0) {
          hidden_grad[h] = 0.0;
          continue;
        }
        double g = 0.0;
        for (size_t c = 0; c < num_classes_; ++c) {
          const double delta =
              probs[c] - (static_cast<int32_t>(c) == y ? 1.0 : 0.0);
          g += delta * w2_[c * num_hidden_ + h];
        }
        hidden_grad[h] = g;
      }
      for (size_t h = 0; h < num_hidden_; ++h) {
        if (hidden_grad[h] == 0.0) continue;
        for (size_t f = 0; f < num_features_; ++f) {
          const double grad =
              hidden_grad[h] * static_cast<double>(x[f]) +
              config.weight_decay * w1_[h * num_features_ + f];
          w1_[h * num_features_ + f] -= lr * grad;
        }
        b1_[h] -= lr * hidden_grad[h];
      }
    }
  }
}

void NeuralNet::Forward(std::span<const float> features,
                        std::vector<double>& hidden,
                        std::vector<double>& probs) const {
  assert(features.size() == num_features_);
  hidden.assign(num_hidden_, 0.0);
  for (size_t h = 0; h < num_hidden_; ++h) {
    double z = b1_[h];
    for (size_t f = 0; f < num_features_; ++f) {
      z += w1_[h * num_features_ + f] * static_cast<double>(features[f]);
    }
    hidden[h] = z > 0.0 ? z : 0.0;  // ReLU
  }
  probs.assign(num_classes_, 0.0);
  double max_logit = -1e300;
  for (size_t c = 0; c < num_classes_; ++c) {
    double z = b2_[c];
    for (size_t h = 0; h < num_hidden_; ++h) {
      z += w2_[c * num_hidden_ + h] * hidden[h];
    }
    probs[c] = z;
    max_logit = std::max(max_logit, z);
  }
  double total = 0.0;
  for (double& p : probs) {
    p = std::exp(p - max_logit);
    total += p;
  }
  for (double& p : probs) p /= total;
}

std::vector<double> NeuralNet::PredictProba(
    std::span<const float> features) const {
  std::vector<double> hidden;
  std::vector<double> probs;
  Forward(features, hidden, probs);
  return probs;
}

int32_t NeuralNet::Predict(std::span<const float> features) const {
  assert(trained());
  const std::vector<double> probs = PredictProba(features);
  return static_cast<int32_t>(
      std::max_element(probs.begin(), probs.end()) - probs.begin());
}

}  // namespace psi::ml
