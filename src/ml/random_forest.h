#ifndef SMARTPSI_ML_RANDOM_FOREST_H_
#define SMARTPSI_ML_RANDOM_FOREST_H_

#include <cstdint>
#include <span>
#include <vector>

#include "ml/dataset.h"
#include "ml/decision_tree.h"
#include "util/random.h"

namespace psi::ml {

struct ForestConfig {
  size_t num_trees = 32;
  /// Bootstrap-sample size as a fraction of the training set.
  double bootstrap_fraction = 1.0;
  TreeConfig tree;
};

/// Random Forest classifier (Breiman 2001) — the learner SmartPSI trains
/// on-the-fly for node-type prediction (Model α, binary) and plan selection
/// (Model β, multi-class). Bagged CART trees with sqrt(F) feature
/// subsampling per split; prediction by soft majority vote.
class RandomForest {
 public:
  /// Trains on the full dataset. `num_classes` must cover all labels.
  void Train(const Dataset& data, size_t num_classes,
             const ForestConfig& config, util::Rng& rng);

  /// Trains on a subset of rows.
  void Train(const Dataset& data, std::span<const size_t> indices,
             size_t num_classes, const ForestConfig& config, util::Rng& rng);

  int32_t Predict(std::span<const float> features) const;

  /// Normalized per-class vote shares (size num_classes).
  std::vector<double> PredictProba(std::span<const float> features) const;

  size_t num_trees() const { return trees_.size(); }
  size_t num_classes() const { return num_classes_; }
  bool trained() const { return !trees_.empty(); }

 private:
  size_t num_classes_ = 0;
  std::vector<DecisionTree> trees_;
};

}  // namespace psi::ml

#endif  // SMARTPSI_ML_RANDOM_FOREST_H_
