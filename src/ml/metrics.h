#ifndef SMARTPSI_ML_METRICS_H_
#define SMARTPSI_ML_METRICS_H_

#include <cstdint>
#include <span>
#include <vector>

namespace psi::ml {

/// Fraction of positions where predicted == actual (0 for empty input).
double Accuracy(std::span<const int32_t> predicted,
                std::span<const int32_t> actual);

/// Row-major confusion matrix: entry [actual * num_classes + predicted].
std::vector<uint64_t> ConfusionMatrix(std::span<const int32_t> predicted,
                                      std::span<const int32_t> actual,
                                      size_t num_classes);

/// Per-class precision / recall / F1 from a confusion matrix.
struct ClassMetrics {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};

ClassMetrics ComputeClassMetrics(std::span<const uint64_t> confusion,
                                 size_t num_classes, size_t cls);

}  // namespace psi::ml

#endif  // SMARTPSI_ML_METRICS_H_
