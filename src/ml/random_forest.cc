#include "ml/random_forest.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace psi::ml {

void RandomForest::Train(const Dataset& data, size_t num_classes,
                         const ForestConfig& config, util::Rng& rng) {
  std::vector<size_t> all(data.size());
  for (size_t i = 0; i < all.size(); ++i) all[i] = i;
  Train(data, all, num_classes, config, rng);
}

void RandomForest::Train(const Dataset& data,
                         std::span<const size_t> indices, size_t num_classes,
                         const ForestConfig& config, util::Rng& rng) {
  assert(num_classes >= 1);
  num_classes_ = num_classes;
  trees_.assign(config.num_trees, DecisionTree());

  TreeConfig tree_config = config.tree;
  if (tree_config.features_per_split == 0) {
    tree_config.features_per_split = std::max<size_t>(
        1, static_cast<size_t>(
               std::lround(std::sqrt(static_cast<double>(
                   data.num_features())))));
  }

  if (indices.empty()) {
    for (auto& tree : trees_) {
      tree.Train(data, {}, num_classes, tree_config, rng);
    }
    return;
  }

  const size_t sample_size = std::max<size_t>(
      1, static_cast<size_t>(static_cast<double>(indices.size()) *
                             config.bootstrap_fraction));
  std::vector<size_t> bootstrap(sample_size);
  for (auto& tree : trees_) {
    for (size_t i = 0; i < sample_size; ++i) {
      bootstrap[i] = indices[rng.NextBounded(indices.size())];
    }
    tree.Train(data, bootstrap, num_classes, tree_config, rng);
  }
}

std::vector<double> RandomForest::PredictProba(
    std::span<const float> features) const {
  std::vector<double> votes(num_classes_, 0.0);
  for (const auto& tree : trees_) tree.AccumulateVotes(features, votes);
  double total = 0.0;
  for (const double v : votes) total += v;
  if (total > 0.0) {
    for (double& v : votes) v /= total;
  }
  return votes;
}

int32_t RandomForest::Predict(std::span<const float> features) const {
  assert(trained());
  // Stack buffer for the common case — Predict is the per-candidate hot
  // path of SmartPSI and must not allocate.
  constexpr size_t kStackClasses = 16;
  double stack_votes[kStackClasses] = {};
  std::vector<double> heap_votes;
  std::span<double> votes;
  if (num_classes_ <= kStackClasses) {
    votes = {stack_votes, num_classes_};
  } else {
    heap_votes.assign(num_classes_, 0.0);
    votes = heap_votes;
  }
  for (const auto& tree : trees_) tree.AccumulateVotes(features, votes);
  return static_cast<int32_t>(
      std::max_element(votes.begin(), votes.end()) - votes.begin());
}

}  // namespace psi::ml
