#include "ml/decision_tree.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace psi::ml {

namespace {

/// Gini impurity of a class-count histogram with `total` samples.
double Gini(std::span<const size_t> counts, size_t total) {
  if (total == 0) return 0.0;
  double sum_sq = 0.0;
  for (const size_t c : counts) {
    const double p = static_cast<double>(c) / static_cast<double>(total);
    sum_sq += p * p;
  }
  return 1.0 - sum_sq;
}

}  // namespace

void DecisionTree::Train(const Dataset& data, std::span<const size_t> indices,
                         size_t num_classes, const TreeConfig& config,
                         util::Rng& rng) {
  assert(num_classes >= 1);
  num_classes_ = num_classes;
  nodes_.clear();
  if (indices.empty()) {
    // Degenerate: a single leaf predicting class 0.
    Node leaf;
    leaf.distribution.assign(num_classes, 0.0f);
    nodes_.push_back(std::move(leaf));
    return;
  }
  std::vector<size_t> work(indices.begin(), indices.end());
  nodes_.reserve(work.size());
  BuildNode(data, work, 0, work.size(), 0, config, rng);
}

int32_t DecisionTree::BuildNode(const Dataset& data,
                                std::vector<size_t>& indices, size_t begin,
                                size_t end, size_t depth,
                                const TreeConfig& config, util::Rng& rng) {
  const int32_t node_index = static_cast<int32_t>(nodes_.size());
  nodes_.emplace_back();

  // Class histogram for this node.
  std::vector<size_t> counts(num_classes_, 0);
  for (size_t i = begin; i < end; ++i) ++counts[data.label(indices[i])];
  const size_t total = end - begin;
  int32_t majority = 0;
  for (size_t c = 1; c < num_classes_; ++c) {
    if (counts[c] > counts[majority]) majority = static_cast<int32_t>(c);
  }
  nodes_[node_index].majority = majority;

  const bool pure =
      counts[majority] == total;  // single class, nothing to split
  if (pure || depth >= config.max_depth || total < config.min_samples_split) {
    auto& leaf = nodes_[node_index];
    leaf.distribution.resize(num_classes_);
    for (size_t c = 0; c < num_classes_; ++c) {
      leaf.distribution[c] =
          static_cast<float>(counts[c]) / static_cast<float>(total);
    }
    return node_index;
  }

  // Candidate features: all, or a random subset (Random Forest mode).
  const size_t num_features = data.num_features();
  std::vector<size_t> feature_order(num_features);
  for (size_t f = 0; f < num_features; ++f) feature_order[f] = f;
  size_t features_to_try = config.features_per_split == 0
                               ? num_features
                               : std::min(config.features_per_split,
                                          num_features);
  if (features_to_try < num_features) util::Shuffle(feature_order, rng);

  const double parent_gini = Gini(counts, total);
  double best_gain = 1e-12;
  int32_t best_feature = -1;
  float best_threshold = 0.0f;

  std::vector<std::pair<float, int32_t>> column(total);
  std::vector<size_t> left_counts(num_classes_);
  for (size_t fi = 0; fi < features_to_try; ++fi) {
    const size_t f = feature_order[fi];
    for (size_t i = 0; i < total; ++i) {
      const size_t idx = indices[begin + i];
      column[i] = {data.row(idx)[f], data.label(idx)};
    }
    std::sort(column.begin(), column.end());
    if (column.front().first == column.back().first) continue;  // constant

    std::fill(left_counts.begin(), left_counts.end(), 0);
    size_t left_total = 0;
    for (size_t i = 0; i + 1 < total; ++i) {
      ++left_counts[column[i].second];
      ++left_total;
      if (column[i].first == column[i + 1].first) continue;
      const size_t right_total = total - left_total;
      if (left_total < config.min_samples_leaf ||
          right_total < config.min_samples_leaf) {
        continue;
      }
      // Weighted child impurity; right counts derived from parent counts.
      double right_sum_sq = 0.0;
      double left_sum_sq = 0.0;
      for (size_t c = 0; c < num_classes_; ++c) {
        const double lc = static_cast<double>(left_counts[c]);
        const double rc = static_cast<double>(counts[c] - left_counts[c]);
        left_sum_sq += lc * lc;
        right_sum_sq += rc * rc;
      }
      const double left_gini =
          1.0 - left_sum_sq / (static_cast<double>(left_total) *
                               static_cast<double>(left_total));
      const double right_gini =
          1.0 - right_sum_sq / (static_cast<double>(right_total) *
                                static_cast<double>(right_total));
      const double weighted =
          (static_cast<double>(left_total) * left_gini +
           static_cast<double>(right_total) * right_gini) /
          static_cast<double>(total);
      const double gain = parent_gini - weighted;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = static_cast<int32_t>(f);
        // Split at the left value itself ("x <= v_i"): unlike a float
        // midpoint, this can never round onto the right value and produce
        // an empty partition.
        best_threshold = column[i].first;
      }
    }
  }

  if (best_feature < 0) {
    auto& leaf = nodes_[node_index];
    leaf.distribution.resize(num_classes_);
    for (size_t c = 0; c < num_classes_; ++c) {
      leaf.distribution[c] =
          static_cast<float>(counts[c]) / static_cast<float>(total);
    }
    return node_index;
  }

  // Partition indices[begin, end) in place: <= threshold left.
  const auto mid_it = std::partition(
      indices.begin() + begin, indices.begin() + end, [&](size_t idx) {
        return data.row(idx)[best_feature] <= best_threshold;
      });
  const size_t mid = static_cast<size_t>(mid_it - indices.begin());
  assert(mid > begin && mid < end && "split must separate samples");

  nodes_[node_index].feature = best_feature;
  nodes_[node_index].threshold = best_threshold;
  const int32_t left =
      BuildNode(data, indices, begin, mid, depth + 1, config, rng);
  const int32_t right =
      BuildNode(data, indices, mid, end, depth + 1, config, rng);
  nodes_[node_index].left = left;
  nodes_[node_index].right = right;
  return node_index;
}

const DecisionTree::Node& DecisionTree::Descend(
    std::span<const float> features) const {
  assert(!nodes_.empty());
  const Node* node = &nodes_[0];
  while (node->feature >= 0) {
    node = features[node->feature] <= node->threshold
               ? &nodes_[node->left]
               : &nodes_[node->right];
  }
  return *node;
}

int32_t DecisionTree::Predict(std::span<const float> features) const {
  return Descend(features).majority;
}

void DecisionTree::AccumulateVotes(std::span<const float> features,
                                   std::span<double> votes) const {
  const Node& leaf = Descend(features);
  assert(votes.size() == num_classes_);
  if (leaf.distribution.empty()) {
    votes[leaf.majority] += 1.0;
    return;
  }
  for (size_t c = 0; c < num_classes_; ++c) {
    votes[c] += leaf.distribution[c];
  }
}

}  // namespace psi::ml
