#ifndef SMARTPSI_ML_DECISION_TREE_H_
#define SMARTPSI_ML_DECISION_TREE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "ml/dataset.h"
#include "util/random.h"

namespace psi::ml {

struct TreeConfig {
  size_t max_depth = 12;
  size_t min_samples_leaf = 1;
  size_t min_samples_split = 2;
  /// Features considered per split; 0 = all (a single CART tree),
  /// sqrt(F) when used inside a Random Forest.
  size_t features_per_split = 0;
};

/// CART classification tree with Gini-impurity splits and axis-aligned
/// thresholds. The building block of RandomForest (the classifier SmartPSI
/// uses for both Model α and Model β).
class DecisionTree {
 public:
  /// Fits the tree on `data` restricted to `indices` (with multiplicity —
  /// bootstrap samples repeat indices). `num_classes` fixes the label
  /// range [0, num_classes).
  void Train(const Dataset& data, std::span<const size_t> indices,
             size_t num_classes, const TreeConfig& config, util::Rng& rng);

  /// Predicted class for a feature vector.
  int32_t Predict(std::span<const float> features) const;

  /// Adds this tree's vote distribution (leaf class frequencies) into
  /// `votes` (size num_classes).
  void AccumulateVotes(std::span<const float> features,
                       std::span<double> votes) const;

  size_t num_nodes() const { return nodes_.size(); }
  bool trained() const { return !nodes_.empty(); }

 private:
  struct Node {
    /// -1 for leaves.
    int32_t feature = -1;
    float threshold = 0.0f;
    /// Children indices (leaves: unused).
    int32_t left = -1;
    int32_t right = -1;
    /// Majority class at this node.
    int32_t majority = 0;
    /// Class distribution at the leaf (normalized), empty for inner nodes.
    std::vector<float> distribution;
  };

  int32_t BuildNode(const Dataset& data, std::vector<size_t>& indices,
                    size_t begin, size_t end, size_t depth,
                    const TreeConfig& config, util::Rng& rng);

  const Node& Descend(std::span<const float> features) const;

  size_t num_classes_ = 0;
  std::vector<Node> nodes_;
};

}  // namespace psi::ml

#endif  // SMARTPSI_ML_DECISION_TREE_H_
