#ifndef SMARTPSI_ML_DATASET_H_
#define SMARTPSI_ML_DATASET_H_

#include <cstdint>
#include <span>
#include <vector>

#include "util/random.h"

namespace psi::ml {

/// Row-major feature matrix with integer class labels. In SmartPSI the rows
/// are neighborhood-signature vectors (§4.2.1: "each label in the
/// neighborhood signature represents a feature").
class Dataset {
 public:
  explicit Dataset(size_t num_features) : num_features_(num_features) {}

  void Reserve(size_t rows) {
    features_.reserve(rows * num_features_);
    labels_.reserve(rows);
  }

  /// Appends one example; `features.size()` must equal num_features().
  void AddExample(std::span<const float> features, int32_t label);

  size_t size() const { return labels_.size(); }
  size_t num_features() const { return num_features_; }

  std::span<const float> row(size_t i) const {
    return {features_.data() + i * num_features_, num_features_};
  }
  int32_t label(size_t i) const { return labels_[i]; }

  /// Number of distinct classes assuming labels are dense 0..k-1
  /// (max label + 1; 0 for an empty dataset).
  size_t NumClasses() const;

 private:
  size_t num_features_;
  std::vector<float> features_;
  std::vector<int32_t> labels_;
};

/// Splits [0, n) into disjoint (train, test) index sets with
/// |train| ≈ train_fraction * n, shuffled by `rng`.
struct TrainTestSplit {
  std::vector<size_t> train;
  std::vector<size_t> test;
};

TrainTestSplit MakeTrainTestSplit(size_t n, double train_fraction,
                                  util::Rng& rng);

}  // namespace psi::ml

#endif  // SMARTPSI_ML_DATASET_H_
