#include "ml/dataset.h"

#include <algorithm>
#include <cassert>

namespace psi::ml {

void Dataset::AddExample(std::span<const float> features, int32_t label) {
  assert(features.size() == num_features_);
  assert(label >= 0);
  features_.insert(features_.end(), features.begin(), features.end());
  labels_.push_back(label);
}

size_t Dataset::NumClasses() const {
  int32_t max_label = -1;
  for (const int32_t l : labels_) max_label = std::max(max_label, l);
  return static_cast<size_t>(max_label + 1);
}

TrainTestSplit MakeTrainTestSplit(size_t n, double train_fraction,
                                  util::Rng& rng) {
  std::vector<size_t> indices(n);
  for (size_t i = 0; i < n; ++i) indices[i] = i;
  util::Shuffle(indices, rng);
  const size_t train_size = static_cast<size_t>(
      static_cast<double>(n) * std::clamp(train_fraction, 0.0, 1.0));
  TrainTestSplit split;
  split.train.assign(indices.begin(), indices.begin() + train_size);
  split.test.assign(indices.begin() + train_size, indices.end());
  return split;
}

}  // namespace psi::ml
