#ifndef SMARTPSI_SERVICE_CATALOG_H_
#define SMARTPSI_SERVICE_CATALOG_H_

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "signature/builders.h"
#include "signature/signature_matrix.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace psi::service {

/// Wall-clock cost of producing a snapshot, reported through stats and the
/// catalog listing so operators can see what a swap will cost before
/// issuing one.
struct SnapshotTimings {
  /// Seconds spent in BuildSignatures.
  double signature_build_seconds = 0.0;
  /// Seconds spent prewarming the memoized row hashes (0 when skipped).
  double prewarm_seconds = 0.0;
  /// Seconds spent quantizing the compact signature matrix (0 when
  /// disabled or loaded pre-quantized from a snapshot file).
  double compact_build_seconds = 0.0;
  /// Seconds spent mapping + validating a .psnap file (0 for in-memory
  /// builds). The contrast with signature_build_seconds is the whole point
  /// of the format: a cold load costs page faults, not a rebuild.
  double load_seconds = 0.0;
};

/// An immutable, versioned (Graph, SignatureMatrix) bundle — the unit the
/// service swaps atomically. Once constructed nothing inside ever mutates
/// (the RowHash memo is internally synchronized), so a snapshot is safe to
/// share across every worker without locks.
///
/// Lifetime is shared_ptr-pinned: the catalog holds one reference while the
/// snapshot is current, and every in-flight request holds its own via
/// SnapshotPin. When a swap retires the snapshot, memory is reclaimed the
/// moment the last pin drops — old requests finish on the graph they
/// started on, new requests resolve the replacement.
class GraphSnapshot {
 public:
  /// `sigs` must have one row per node of `g`. The version is assigned by
  /// the publishing catalog; standalone snapshots (tests, single-graph
  /// tools) may pass any nonzero value. `backing` is an opaque keepalive
  /// for storage `sigs` views into (the mmap of a loaded .psnap file):
  /// the snapshot holds it until destruction, so the SnapshotPin chain
  /// transitively keeps the mapping mapped while any request is in flight.
  GraphSnapshot(std::string name, uint64_t version, graph::Graph g,
                signature::SignatureMatrix sigs, SnapshotTimings timings,
                std::shared_ptr<const void> backing = nullptr);

  GraphSnapshot(const GraphSnapshot&) = delete;
  GraphSnapshot& operator=(const GraphSnapshot&) = delete;

  const graph::Graph& graph() const { return graph_; }
  const signature::SignatureMatrix& signatures() const { return sigs_; }
  const std::string& name() const { return name_; }

  /// Monotonically increasing across every publish of the owning catalog
  /// (never reused, even across names) — the generation stamp responses
  /// report and the prediction cache keys on. 0 is reserved for "no
  /// snapshot" (standalone engines).
  uint64_t version() const { return version_; }

  const SnapshotTimings& timings() const { return timings_; }

  /// Salt XORed into every prediction-cache key derived from this snapshot
  /// (a bit-mixed function of the version), so entries from different
  /// generations occupy disjoint key ranges. The raw version is used as the
  /// cache epoch stamp on top of this — see PredictionCache::Entry::epoch.
  uint64_t cache_salt() const { return cache_salt_; }

  /// In-flight request gauge. Prefer SnapshotPin over calling these
  /// directly; the pair must balance.
  void Pin() const { pins_.fetch_add(1, std::memory_order_relaxed); }
  void Unpin() const { pins_.fetch_sub(1, std::memory_order_release); }
  uint64_t pins() const { return pins_.load(std::memory_order_acquire); }

 private:
  const std::string name_;
  const uint64_t version_;
  const uint64_t cache_salt_;
  const SnapshotTimings timings_;
  /// Declared before graph_/sigs_ so it is destroyed after them: sigs_ may
  /// be a zero-copy view into this storage (see the constructor comment).
  const std::shared_ptr<const void> backing_;
  const graph::Graph graph_;
  const signature::SignatureMatrix sigs_;
  /// Requests currently executing against this snapshot. Monitoring gauge
  /// only — lifetime is carried by the shared_ptr, not this count.
  mutable std::atomic<uint64_t> pins_{0};
};

/// RAII pin: holds a shared_ptr (keeping the snapshot alive) and maintains
/// its pin gauge. Move-only; an empty pin means resolution failed (unknown
/// graph name).
class SnapshotPin {
 public:
  SnapshotPin() = default;
  explicit SnapshotPin(std::shared_ptr<const GraphSnapshot> snapshot)
      : snapshot_(std::move(snapshot)) {
    if (snapshot_ != nullptr) snapshot_->Pin();
  }
  ~SnapshotPin() {
    if (snapshot_ != nullptr) snapshot_->Unpin();
  }

  SnapshotPin(SnapshotPin&& other) noexcept
      : snapshot_(std::move(other.snapshot_)) {
    other.snapshot_.reset();
  }
  SnapshotPin& operator=(SnapshotPin&& other) noexcept {
    if (this != &other) {
      if (snapshot_ != nullptr) snapshot_->Unpin();
      snapshot_ = std::move(other.snapshot_);
      other.snapshot_.reset();
    }
    return *this;
  }
  SnapshotPin(const SnapshotPin&) = delete;
  SnapshotPin& operator=(const SnapshotPin&) = delete;

  explicit operator bool() const { return snapshot_ != nullptr; }
  const GraphSnapshot& operator*() const { return *snapshot_; }
  const GraphSnapshot* operator->() const { return snapshot_.get(); }

 private:
  std::shared_ptr<const GraphSnapshot> snapshot_;
};

/// How GraphCatalog::BuildAndPublish constructs a snapshot's derived state.
/// (A free struct, not nested, so it can serve as a default argument inside
/// GraphCatalog.)
struct SnapshotBuildOptions {
  signature::Method signature_method = signature::Method::kMatrix;
  uint32_t signature_depth = signature::kDefaultDepth;
  float signature_decay = signature::SignatureMatrix::kDefaultDecay;
  /// Memoize every row hash during the build instead of lazily on first
  /// lookup, so a freshly swapped-in snapshot serves its first queries at
  /// steady-state latency.
  bool prewarm_row_hashes = true;
  /// Quantize the signature matrix into its 8-bit compact companion
  /// (compact_signature.h) so the bulk filter kernels prescreen candidates
  /// at a quarter of the memory traffic. Answers are bit-identical either
  /// way (over-admit + exact re-check); the toggle exists for A/B
  /// benchmarking and differential tests, not as a safety valve.
  bool build_compact_signatures = true;
  /// Parallelizes BuildSignatures and the prewarm. Caution: the build
  /// runs pool tasks and Wait()s, and ThreadPool::Wait waits for *all*
  /// tasks — never pass a pool that is concurrently executing queries
  /// (background swaps must build serially or on a dedicated pool).
  util::ThreadPool* pool = nullptr;
};

/// One row of GraphCatalog::List(): a current or still-pinned retired
/// snapshot, described for operators (`psi_serve`'s `!list`).
struct CatalogEntry {
  std::string name;
  uint64_t version = 0;
  /// True when this is the snapshot new requests for `name` resolve to;
  /// false for a retired generation kept alive only by in-flight pins.
  bool current = false;
  uint64_t pins = 0;
  size_t num_nodes = 0;
  size_t num_edges = 0;
  size_t num_labels = 0;
  SnapshotTimings timings;
};

/// Name → current-snapshot map with atomic publish/retire — the ownership
/// root of the serving stack. Publishing a name that already exists is a
/// hot swap: the map entry flips to the new snapshot in one critical
/// section, in-flight requests keep their pins on the old one, and the old
/// snapshot's memory is reclaimed when its last pin drops.
///
/// Locking (DESIGN.md §12): one leaf mutex guards the map, the retired
/// list and the counters. It is held only for pointer swaps and list
/// copies — never across a build, a publish fault hook, or user code — so
/// Resolve() on the hot path costs one uncontended lock + shared_ptr copy.
///
/// Thread-safe: all methods may be called concurrently.
class GraphCatalog {
 public:
  using BuildOptions = SnapshotBuildOptions;

  /// Monotonic publish/retire traffic since construction.
  struct Counters {
    uint64_t published = 0;
    /// Publishes that replaced an existing current snapshot (a hot swap).
    uint64_t swaps = 0;
    uint64_t retired = 0;
    /// Publishes aborted by the `catalog.publish` fault site.
    uint64_t publish_failures = 0;
  };

  GraphCatalog() = default;
  GraphCatalog(const GraphCatalog&) = delete;
  GraphCatalog& operator=(const GraphCatalog&) = delete;

  /// Builds signatures (and optionally the row-hash prewarm) for `g`, then
  /// publishes the bundle under `name` — replacing the current snapshot of
  /// that name, if any. The build runs outside the catalog lock; only the
  /// final pointer swap is a critical section. Fails (without touching the
  /// published state) when the `catalog.publish` fault site fires.
  util::Result<std::shared_ptr<const GraphSnapshot>> BuildAndPublish(
      std::string name, graph::Graph g,
      SnapshotBuildOptions options = SnapshotBuildOptions());

  /// Publishes a caller-built bundle (e.g. signatures loaded from a file).
  /// `sigs` must have one row per node of `g`. Same fault site and swap
  /// semantics as BuildAndPublish.
  util::Result<std::shared_ptr<const GraphSnapshot>> PublishPrebuilt(
      std::string name, graph::Graph g, signature::SignatureMatrix sigs,
      SnapshotTimings timings = SnapshotTimings());

  /// Maps a .psnap snapshot file (service/snapshot_io.h) and publishes it
  /// under `name` — the O(page-fault) alternative to BuildAndPublish's
  /// full signature rebuild. The published snapshot serves its float and
  /// compact signatures zero-copy out of the mapping, which stays mapped
  /// until the snapshot's last pin drops. Same fault site and swap
  /// semantics as BuildAndPublish; validation failures (corruption,
  /// truncation, version skew) leave the published state untouched.
  util::Result<std::shared_ptr<const GraphSnapshot>> PublishFromFile(
      std::string name, const std::string& path);

  /// BuildAndPublish on a detached thread — the background build pipeline
  /// behind `psi_serve`'s non-blocking `!load`. The build always runs
  /// serially (options.pool is ignored): a background build must never
  /// Wait() on a pool that is serving queries.
  std::future<util::Result<std::shared_ptr<const GraphSnapshot>>>
  BuildAndPublishAsync(std::string name, graph::Graph g,
                       SnapshotBuildOptions options = SnapshotBuildOptions());

  /// Current snapshot for `name`, or null when unknown/retired. The
  /// returned shared_ptr alone keeps the snapshot alive but does not count
  /// in the pin gauge; request paths should use Pin().
  std::shared_ptr<const GraphSnapshot> Resolve(std::string_view name) const;

  /// Resolve + pin in one step — what admission calls. An empty pin means
  /// the name is unknown (the request becomes kNotFound).
  SnapshotPin Pin(std::string_view name) const;

  bool Contains(std::string_view name) const;

  /// Removes `name` from the map: new requests stop resolving it, and the
  /// snapshot is destroyed once the last in-flight pin (and any caller
  /// shared_ptrs) drop. Returns false for an unknown name.
  bool Retire(std::string_view name);

  /// Every current snapshot plus retired generations still kept alive by
  /// pins, sorted by name then version. The retired list is pruned of
  /// fully-released generations as a side effect.
  std::vector<CatalogEntry> List() const;

  Counters counters() const;

  /// Number of current (published, un-retired) names.
  size_t size() const;

 private:
  util::Result<std::shared_ptr<const GraphSnapshot>> Publish(
      std::string name, graph::Graph g, signature::SignatureMatrix sigs,
      SnapshotTimings timings,
      std::shared_ptr<const void> backing = nullptr);

  mutable util::Mutex mutex_;
  /// Sorted association list instead of a hash map: catalogs hold a
  /// handful of graphs, and List() wants name order anyway.
  std::vector<std::pair<std::string, std::shared_ptr<const GraphSnapshot>>>
      current_ PSI_GUARDED_BY(mutex_);
  /// Replaced/retired snapshots observed until their pins drain, so List()
  /// can show a swap's old generation winding down. Pruned on List().
  mutable std::vector<std::weak_ptr<const GraphSnapshot>> retired_
      PSI_GUARDED_BY(mutex_);
  Counters counters_ PSI_GUARDED_BY(mutex_);
  /// Next version to assign; versions are catalog-global so a version
  /// number uniquely identifies a publish even across names.
  uint64_t next_version_ PSI_GUARDED_BY(mutex_) = 1;
};

}  // namespace psi::service

#endif  // SMARTPSI_SERVICE_CATALOG_H_
