#ifndef SMARTPSI_SERVICE_SNAPSHOT_IO_H_
#define SMARTPSI_SERVICE_SNAPSHOT_IO_H_

#include <cstdint>
#include <memory>
#include <string>

#include "graph/graph.h"
#include "signature/signature_matrix.h"
#include "util/status.h"

namespace psi::service {

/// Versioned binary snapshot format (".psnap", DESIGN.md §16.2): one file
/// holding everything a served GraphSnapshot needs — the graph CSR, the
/// float signature matrix, the 8-bit compact signature codes, and the
/// memoized row hashes — laid out so a loader can mmap the file and serve
/// straight out of the mapping.
///
/// Layout (all integers little-endian):
///
///   [ 0, 56)  header: magic "PSNP", u32 version, u32 method, u32 depth,
///             f32 decay, u32 flags (bit 0 = compact section present),
///             u64 num_nodes, u64 num_edges, u64 num_labels,
///             u32 num_sections, u32 sig_labels
///   [56, 64)  u64 checksum of header bytes [0, 56) ++ section table
///   [64, ...) section table: num_sections × 32-byte entries
///             { u32 id, u32 reserved(0), u64 offset, u64 size,
///               u64 checksum of the payload }
///
/// Checksums are word-wise FNV-1a64 (util::Fnv1a64Words) — payloads are
/// megabytes and verified on every load, so the checksum runs at the speed
/// of the load path it protects.
///   ...       section payloads, each 64-byte aligned, in id order
///   EOF-64    64 zero tail-pad bytes (guarantees the AVX2 compact
///             prescreen's masked tail-vector over-read — up to
///             CompactSignatureMatrix::kTailPadBytes — stays in the file)
///
/// The loader validates structure before arithmetic, arithmetic before
/// allocation, and checksums before trusting any payload; the graph CSR is
/// additionally re-validated invariant-by-invariant through
/// GraphBuilder::FromCsr (CSR bytes are copied), while the float and
/// compact signature payloads are adopted zero-copy — their consumers
/// treat every value as data, never as an index, so corrupt-but-
/// checksummed bytes cannot cause out-of-bounds access.

inline constexpr uint32_t kPsnapVersion = 1;
inline constexpr size_t kPsnapHeaderBytes = 64;
inline constexpr size_t kPsnapSectionEntryBytes = 32;
inline constexpr size_t kPsnapAlignment = 64;
inline constexpr size_t kPsnapTailPadBytes = 64;

/// Section ids, in file order.
enum class SnapshotSection : uint32_t {
  kCsrOffsets = 1,    // u64[num_nodes + 1]
  kCsrNeighbors = 2,  // u32[2 * num_edges]
  kCsrEdgeLabels = 3, // u32[2 * num_edges]
  kNodeLabels = 4,    // u32[num_nodes]
  kNodesByLabel = 5,  // u32[num_nodes]
  kLabelOffsets = 6,  // u64[num_labels + 1]
  kSigFloat = 7,      // f32[num_nodes * sig_labels]
  kSigCompact = 8,    // u8[num_nodes * sig_labels] (only with flags bit 0)
  kRowHashes = 9,     // u64[num_nodes]
};

/// A snapshot loaded (mapped) from a .psnap file. `sigs` is a zero-copy
/// view into `backing` (and carries the compact codes and row hashes from
/// the file); `graph` owns its arrays. Whoever consumes the bundle must
/// keep `backing` alive as long as `sigs` is used — GraphSnapshot stores
/// it, and SnapshotPin's shared_ptr chain keeps the mapping mapped until
/// the last in-flight request drains (DESIGN.md §16.3).
struct LoadedSnapshot {
  graph::Graph graph;
  signature::SignatureMatrix sigs;
  std::shared_ptr<const void> backing;
};

/// Header summary of a .psnap file (psi_snapshot --inspect).
struct SnapshotFileInfo {
  uint32_t version = 0;
  signature::Method method = signature::Method::kMatrix;
  uint32_t depth = 0;
  float decay = 0.0f;
  bool has_compact = false;
  uint64_t num_nodes = 0;
  uint64_t num_edges = 0;
  uint64_t num_labels = 0;
  uint64_t sig_labels = 0;
  uint32_t num_sections = 0;
  uint64_t file_bytes = 0;
};

/// Writes `g` + `sigs` as a .psnap file. Writes the compact section iff
/// `sigs` carries an attached CompactSignatureMatrix; memoizes (and
/// persists) every row hash as a side effect.
util::Status SaveSnapshotFile(const graph::Graph& g,
                              const signature::SignatureMatrix& sigs,
                              const std::string& path);

/// Maps `path` and validates it end to end (structure, bounds, checksums,
/// CSR invariants). On success the signature payloads are served zero-copy
/// out of the mapping. Clean InvalidArgument/IoError statuses on any
/// corruption, truncation, or version skew — never UB, never a partial
/// result. Chaos hook: the `snapshot.load` fault site fails the load after
/// header validation.
util::Result<LoadedSnapshot> LoadSnapshotFile(const std::string& path);

/// Parses and checksums the header + section table only (no payload work).
util::Result<SnapshotFileInfo> DescribeSnapshotFile(const std::string& path);

}  // namespace psi::service

#endif  // SMARTPSI_SERVICE_SNAPSHOT_IO_H_
