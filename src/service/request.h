#ifndef SMARTPSI_SERVICE_REQUEST_H_
#define SMARTPSI_SERVICE_REQUEST_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "graph/query_graph.h"
#include "graph/types.h"

namespace psi::service {

/// Which evaluation strategy a request runs under. kSmart is the Realist
/// (SmartPSI with models, cache and preemptive executor); the pure methods
/// bypass ML entirely and exist for per-request overrides and A/B traffic.
enum class Method {
  kSmart,
  kOptimistic,
  kPessimistic,
};

const char* MethodName(Method m);

/// One unit of service work: a pivoted query plus per-request policy.
struct QueryRequest {
  /// Caller-chosen correlation id; 0 lets the service assign one.
  uint64_t id = 0;

  graph::QueryGraph query;

  /// Per-request execution budget in seconds measured from admission;
  /// <= 0 falls back to the service default (which may be "none").
  double deadline_seconds = 0.0;

  Method method = Method::kSmart;

  /// Catalog name of the data graph to run against; empty selects the
  /// service's default graph. Resolution happens at admission: the request
  /// pins whatever snapshot is current then and keeps it for its whole
  /// lifetime, even across a concurrent hot swap.
  std::string graph;
};

/// Terminal state of a request.
enum class RequestStatus {
  /// Complete, exact answer.
  kOk,
  /// Deadline expired mid-evaluation; valid_nodes is a subset of the true
  /// answer (PSI degrades gracefully — partial answers are still sound).
  kTimeout,
  /// The service shut down before or during evaluation.
  kCancelled,
  /// Shed at admission because the queue was at its bound; never executed.
  kRejected,
  /// Malformed request (empty query or missing pivot).
  kInvalid,
  /// The requested graph name resolved to no catalog snapshot (unknown or
  /// retired); never evaluated.
  kNotFound,
};

const char* RequestStatusName(RequestStatus s);

struct QueryResponse {
  uint64_t id = 0;
  RequestStatus status = RequestStatus::kOk;

  /// Distinct data nodes binding to the pivot, sorted ascending. Complete
  /// iff status == kOk.
  std::vector<graph::NodeId> valid_nodes;

  size_t num_candidates = 0;
  size_t cache_hits = 0;
  /// Cache hits whose prediction the evaluation then contradicted (stale or
  /// poisoned entries; the answer is unaffected — see PsiQueryResult).
  size_t cache_mismatches = 0;

  /// True when the service's degradation policy served this kSmart request
  /// with pessimist-only evaluation instead (DESIGN.md §11). The answer is
  /// exact either way; only the latency profile differs.
  bool served_degraded = false;

  /// Version of the graph snapshot this request was evaluated against
  /// (GraphSnapshot::version); 0 when the request never resolved a
  /// snapshot (kRejected / kInvalid / kNotFound). A request runs against
  /// exactly one snapshot end to end — swap-storm asserts this.
  uint64_t snapshot_version = 0;

  /// Admission-to-completion latency (queue wait + execution) — the number
  /// a caller experiences and the one the tail-latency metrics track.
  double latency_seconds = 0.0;
  /// Execution time alone.
  double exec_seconds = 0.0;

  // Search-core counters for this request (Luby restarts, nogood store,
  // work-stealing parallel search — DESIGN.md §14). Zero when the worker
  // ran the plain sequential configuration.
  uint64_t search_restarts = 0;
  uint64_t nogoods_recorded = 0;
  uint64_t nogood_hits = 0;
  uint64_t work_steals = 0;

  bool ok() const { return status == RequestStatus::kOk; }
};

/// A group of queries admitted as one unit (DESIGN.md §17). The whole
/// batch pins exactly one snapshot of one graph at admission, so every
/// member query sees the same data even across concurrent hot swaps, and
/// shared preparation (candidate sets, query-signature rows) is sound.
struct BatchRequest {
  /// Caller-chosen correlation id for the batch; 0 lets the service
  /// assign one. Member queries with id 0 get `batch_id * 1000 + index`
  /// so responses correlate back to their slot.
  uint64_t id = 0;

  /// Member queries. Per-query `graph` fields are ignored — the batch
  /// pins one snapshot for all members (see `graph` below). Per-query
  /// deadlines and methods are honored individually.
  std::vector<QueryRequest> queries;

  /// Catalog name of the data graph the whole batch runs against; empty
  /// selects the service default.
  std::string graph;

  /// Batch-wide execution budget in seconds measured from admission,
  /// applied to member queries that carry no deadline of their own;
  /// <= 0 falls back to the service default.
  double deadline_seconds = 0.0;
};

/// Settlement of a batch: one QueryResponse per member query (same order),
/// plus batch-level accounting. Member queries degrade individually — a
/// malformed or timed-out member never poisons its siblings.
struct BatchResponse {
  uint64_t id = 0;
  /// Per-member responses, parallel to BatchRequest::queries.
  std::vector<QueryResponse> responses;
  /// Snapshot version the whole batch ran against (0 if the graph name
  /// resolved to no snapshot).
  uint64_t snapshot_version = 0;
  /// Member queries that reused shared batch-context preparation.
  uint64_t context_hits = 0;
  /// Member queries that abandoned the shared-context fast path (the
  /// service.batch fault site) and were evaluated standalone.
  uint64_t degraded_queries = 0;
  /// Admission-to-settlement latency of the whole batch.
  double latency_seconds = 0.0;

  /// True iff every member completed exactly.
  bool ok() const {
    for (const QueryResponse& r : responses) {
      if (!r.ok()) return false;
    }
    return true;
  }
};

inline const char* MethodName(Method m) {
  switch (m) {
    case Method::kSmart:
      return "smart";
    case Method::kOptimistic:
      return "optimistic";
    case Method::kPessimistic:
      return "pessimistic";
  }
  return "unknown";
}

inline const char* RequestStatusName(RequestStatus s) {
  switch (s) {
    case RequestStatus::kOk:
      return "ok";
    case RequestStatus::kTimeout:
      return "timeout";
    case RequestStatus::kCancelled:
      return "cancelled";
    case RequestStatus::kRejected:
      return "rejected";
    case RequestStatus::kInvalid:
      return "invalid";
    case RequestStatus::kNotFound:
      return "not_found";
  }
  return "unknown";
}

}  // namespace psi::service

#endif  // SMARTPSI_SERVICE_REQUEST_H_
