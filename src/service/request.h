#ifndef SMARTPSI_SERVICE_REQUEST_H_
#define SMARTPSI_SERVICE_REQUEST_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "graph/query_graph.h"
#include "graph/types.h"

namespace psi::service {

/// Which evaluation strategy a request runs under. kSmart is the Realist
/// (SmartPSI with models, cache and preemptive executor); the pure methods
/// bypass ML entirely and exist for per-request overrides and A/B traffic.
enum class Method {
  kSmart,
  kOptimistic,
  kPessimistic,
};

const char* MethodName(Method m);

/// One unit of service work: a pivoted query plus per-request policy.
struct QueryRequest {
  /// Caller-chosen correlation id; 0 lets the service assign one.
  uint64_t id = 0;

  graph::QueryGraph query;

  /// Per-request execution budget in seconds measured from admission;
  /// <= 0 falls back to the service default (which may be "none").
  double deadline_seconds = 0.0;

  Method method = Method::kSmart;

  /// Catalog name of the data graph to run against; empty selects the
  /// service's default graph. Resolution happens at admission: the request
  /// pins whatever snapshot is current then and keeps it for its whole
  /// lifetime, even across a concurrent hot swap.
  std::string graph;
};

/// Terminal state of a request.
enum class RequestStatus {
  /// Complete, exact answer.
  kOk,
  /// Deadline expired mid-evaluation; valid_nodes is a subset of the true
  /// answer (PSI degrades gracefully — partial answers are still sound).
  kTimeout,
  /// The service shut down before or during evaluation.
  kCancelled,
  /// Shed at admission because the queue was at its bound; never executed.
  kRejected,
  /// Malformed request (empty query or missing pivot).
  kInvalid,
  /// The requested graph name resolved to no catalog snapshot (unknown or
  /// retired); never evaluated.
  kNotFound,
};

const char* RequestStatusName(RequestStatus s);

struct QueryResponse {
  uint64_t id = 0;
  RequestStatus status = RequestStatus::kOk;

  /// Distinct data nodes binding to the pivot, sorted ascending. Complete
  /// iff status == kOk.
  std::vector<graph::NodeId> valid_nodes;

  size_t num_candidates = 0;
  size_t cache_hits = 0;
  /// Cache hits whose prediction the evaluation then contradicted (stale or
  /// poisoned entries; the answer is unaffected — see PsiQueryResult).
  size_t cache_mismatches = 0;

  /// True when the service's degradation policy served this kSmart request
  /// with pessimist-only evaluation instead (DESIGN.md §11). The answer is
  /// exact either way; only the latency profile differs.
  bool served_degraded = false;

  /// Version of the graph snapshot this request was evaluated against
  /// (GraphSnapshot::version); 0 when the request never resolved a
  /// snapshot (kRejected / kInvalid / kNotFound). A request runs against
  /// exactly one snapshot end to end — swap-storm asserts this.
  uint64_t snapshot_version = 0;

  /// Admission-to-completion latency (queue wait + execution) — the number
  /// a caller experiences and the one the tail-latency metrics track.
  double latency_seconds = 0.0;
  /// Execution time alone.
  double exec_seconds = 0.0;

  // Search-core counters for this request (Luby restarts, nogood store,
  // work-stealing parallel search — DESIGN.md §14). Zero when the worker
  // ran the plain sequential configuration.
  uint64_t search_restarts = 0;
  uint64_t nogoods_recorded = 0;
  uint64_t nogood_hits = 0;
  uint64_t work_steals = 0;

  bool ok() const { return status == RequestStatus::kOk; }
};

inline const char* MethodName(Method m) {
  switch (m) {
    case Method::kSmart:
      return "smart";
    case Method::kOptimistic:
      return "optimistic";
    case Method::kPessimistic:
      return "pessimistic";
  }
  return "unknown";
}

inline const char* RequestStatusName(RequestStatus s) {
  switch (s) {
    case RequestStatus::kOk:
      return "ok";
    case RequestStatus::kTimeout:
      return "timeout";
    case RequestStatus::kCancelled:
      return "cancelled";
    case RequestStatus::kRejected:
      return "rejected";
    case RequestStatus::kInvalid:
      return "invalid";
    case RequestStatus::kNotFound:
      return "not_found";
  }
  return "unknown";
}

}  // namespace psi::service

#endif  // SMARTPSI_SERVICE_REQUEST_H_
