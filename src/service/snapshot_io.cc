#include "service/snapshot_io.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "graph/graph_builder.h"
#include "signature/compact_signature.h"
#include "util/checksum.h"
#include "util/fault_injection.h"
#include "util/mmap_file.h"

namespace psi::service {

namespace {

constexpr char kMagic[4] = {'P', 'S', 'N', 'P'};

// Field offsets inside the 64-byte header (see snapshot_io.h).
constexpr size_t kOffMagic = 0;
constexpr size_t kOffVersion = 4;
constexpr size_t kOffMethod = 8;
constexpr size_t kOffDepth = 12;
constexpr size_t kOffDecay = 16;
constexpr size_t kOffFlags = 20;
constexpr size_t kOffNumNodes = 24;
constexpr size_t kOffNumEdges = 32;
constexpr size_t kOffNumLabels = 40;
constexpr size_t kOffNumSections = 48;
constexpr size_t kOffSigLabels = 52;
constexpr size_t kOffHeaderChecksum = 56;

constexpr uint32_t kFlagCompact = 1u << 0;
constexpr uint32_t kKnownFlags = kFlagCompact;

// The checksummed header prefix: everything before the checksum field.
constexpr size_t kHeaderChecksumPrefix = kOffHeaderChecksum;

struct SectionEntry {
  uint32_t id = 0;
  uint32_t reserved = 0;
  uint64_t offset = 0;
  uint64_t size = 0;
  uint64_t checksum = 0;
};

template <typename T>
void PutScalar(unsigned char* buf, size_t at, T value) {
  std::memcpy(buf + at, &value, sizeof(T));
}

template <typename T>
T GetScalar(const unsigned char* buf, size_t at) {
  T value;
  std::memcpy(&value, buf + at, sizeof(T));
  return value;
}

bool CheckedMul(uint64_t a, uint64_t b, uint64_t* out) {
  if (a != 0 && b > std::numeric_limits<uint64_t>::max() / a) return false;
  *out = a * b;
  return true;
}

util::Status Invalid(const std::string& what) {
  return util::Status::InvalidArgument(".psnap: " + what);
}

/// Collects one section's payload, then writes it and computes its
/// checksum in a single pass. Buffering keeps the checksum definition a
/// plain Fnv1a64Words over the whole contiguous payload (the loader
/// verifies exactly that), independent of how many Append calls — of
/// arbitrary, non-word-multiple sizes — produced it.
class SectionStream {
 public:
  SectionStream(std::ostream& out, uint64_t start) : out_(&out), pos_(start) {}

  uint64_t pos() const { return pos_; }

  void BeginSection() { buffer_.clear(); }

  void Append(const void* data, size_t size) {
    const char* bytes = static_cast<const char*>(data);
    buffer_.insert(buffer_.end(), bytes, bytes + size);
  }

  /// Flushes the buffered payload; returns its checksum.
  uint64_t EndSection() {
    out_->write(buffer_.data(), static_cast<std::streamsize>(buffer_.size()));
    pos_ += buffer_.size();
    return util::Fnv1a64Words(buffer_.data(), buffer_.size());
  }

  void PadTo(size_t alignment) {
    static constexpr char kZeros[kPsnapAlignment] = {};
    while (pos_ % alignment != 0) {
      const size_t pad =
          std::min<size_t>(alignment - pos_ % alignment, sizeof(kZeros));
      out_->write(kZeros, static_cast<std::streamsize>(pad));
      pos_ += pad;
    }
  }

 private:
  std::ostream* out_;
  uint64_t pos_;
  std::vector<char> buffer_;
};

/// Everything ParseHeader learns: the summary plus the raw section table.
struct ParsedHeader {
  SnapshotFileInfo info;
  uint32_t flags = 0;
  std::vector<SectionEntry> entries;
};

/// Structural validation layer 1: magic, version, field ranges, section
/// count, table bounds, header checksum. Touches no payload bytes.
util::Status ParseHeader(const unsigned char* base, uint64_t file_bytes,
                         ParsedHeader* out) {
  if (file_bytes < kPsnapHeaderBytes) {
    return Invalid("file shorter than the fixed header");
  }
  if (std::memcmp(base + kOffMagic, kMagic, sizeof(kMagic)) != 0) {
    return Invalid("not a PSNP snapshot file");
  }
  const auto version = GetScalar<uint32_t>(base, kOffVersion);
  if (version != kPsnapVersion) {
    return Invalid("unsupported version " + std::to_string(version) +
                   " (this build reads version " +
                   std::to_string(kPsnapVersion) + ")");
  }
  const auto method_raw = GetScalar<uint32_t>(base, kOffMethod);
  if (method_raw > 1) return Invalid("bad method field");
  const auto decay = GetScalar<float>(base, kOffDecay);
  if (!(decay > 0.0f) || decay > 1.0f) return Invalid("decay out of range");
  const auto flags = GetScalar<uint32_t>(base, kOffFlags);
  if ((flags & ~kKnownFlags) != 0) return Invalid("unknown flags set");
  const auto num_sections = GetScalar<uint32_t>(base, kOffNumSections);
  // Version 1 has exactly the fixed section list; an absurd count would
  // also make the table-bounds multiply below meaningless.
  const uint32_t expected_sections = (flags & kFlagCompact) != 0 ? 9 : 8;
  if (num_sections != expected_sections) {
    return Invalid("wrong section count for version 1");
  }
  const uint64_t table_bytes =
      static_cast<uint64_t>(num_sections) * kPsnapSectionEntryBytes;
  if (file_bytes - kPsnapHeaderBytes < table_bytes) {
    return Invalid("section table exceeds file");
  }
  // Both chained ranges are whole multiples of 8 bytes (56-byte prefix,
  // 32-byte table entries), as Fnv1a64Words chaining requires.
  uint64_t computed = util::Fnv1a64Words(base, kHeaderChecksumPrefix);
  computed =
      util::Fnv1a64Words(base + kPsnapHeaderBytes, table_bytes, computed);
  if (computed != GetScalar<uint64_t>(base, kOffHeaderChecksum)) {
    return Invalid("header checksum mismatch");
  }

  out->flags = flags;
  out->info.version = version;
  out->info.method = static_cast<signature::Method>(method_raw);
  out->info.depth = GetScalar<uint32_t>(base, kOffDepth);
  out->info.decay = decay;
  out->info.has_compact = (flags & kFlagCompact) != 0;
  out->info.num_nodes = GetScalar<uint64_t>(base, kOffNumNodes);
  out->info.num_edges = GetScalar<uint64_t>(base, kOffNumEdges);
  out->info.num_labels = GetScalar<uint64_t>(base, kOffNumLabels);
  out->info.sig_labels = GetScalar<uint32_t>(base, kOffSigLabels);
  out->info.num_sections = num_sections;
  out->info.file_bytes = file_bytes;
  out->entries.resize(num_sections);
  for (uint32_t i = 0; i < num_sections; ++i) {
    const unsigned char* e =
        base + kPsnapHeaderBytes + i * kPsnapSectionEntryBytes;
    out->entries[i].id = GetScalar<uint32_t>(e, 0);
    out->entries[i].reserved = GetScalar<uint32_t>(e, 4);
    out->entries[i].offset = GetScalar<uint64_t>(e, 8);
    out->entries[i].size = GetScalar<uint64_t>(e, 16);
    out->entries[i].checksum = GetScalar<uint64_t>(e, 24);
  }
  return util::Status::Ok();
}

/// Structural validation layer 2: every section has the expected id and
/// exact size (all arithmetic overflow-checked BEFORE any use — the PR 4
/// PSIG rule), lies inside the file, and is aligned for its element type.
util::Status ValidateSections(const ParsedHeader& h, uint64_t file_bytes) {
  const uint64_t n = h.info.num_nodes;
  const uint64_t num_labels = h.info.num_labels;
  const uint64_t sig_labels = h.info.sig_labels;

  // Dimension sanity before any size arithmetic: node and label ids must
  // fit their 32-bit on-disk/in-memory types, and every element count must
  // be size_t-addressable (the ILP32 concern the PSIG reader also guards).
  if (n > std::numeric_limits<uint32_t>::max()) {
    return Invalid("num_nodes exceeds the 32-bit node id space");
  }
  if (num_labels > std::numeric_limits<uint32_t>::max()) {
    return Invalid("num_labels exceeds the 32-bit label space");
  }
  uint64_t arc_count = 0;      // 2 * num_edges
  uint64_t sig_count = 0;      // num_nodes * sig_labels
  if (!CheckedMul(h.info.num_edges, 2, &arc_count) ||
      !CheckedMul(n, sig_labels, &sig_count)) {
    return Invalid("dimensions overflow");
  }
  uint64_t worst_bytes = 0;
  if (!CheckedMul(sig_count, sizeof(float), &worst_bytes) ||
      !CheckedMul(arc_count, sizeof(uint32_t), &worst_bytes)) {
    return Invalid("dimensions overflow");
  }
  if (sig_count > std::numeric_limits<size_t>::max() / sizeof(float) ||
      arc_count > std::numeric_limits<size_t>::max() / sizeof(uint32_t)) {
    return Invalid("dimensions exceed addressable memory");
  }

  struct Expected {
    SnapshotSection id;
    uint64_t bytes;
  };
  std::vector<Expected> expected = {
      {SnapshotSection::kCsrOffsets, (n + 1) * sizeof(uint64_t)},
      {SnapshotSection::kCsrNeighbors, arc_count * sizeof(uint32_t)},
      {SnapshotSection::kCsrEdgeLabels, arc_count * sizeof(uint32_t)},
      {SnapshotSection::kNodeLabels, n * sizeof(uint32_t)},
      {SnapshotSection::kNodesByLabel, n * sizeof(uint32_t)},
      {SnapshotSection::kLabelOffsets, (num_labels + 1) * sizeof(uint64_t)},
      {SnapshotSection::kSigFloat, sig_count * sizeof(float)},
  };
  if (h.info.has_compact) {
    expected.push_back({SnapshotSection::kSigCompact, sig_count});
  }
  expected.push_back({SnapshotSection::kRowHashes, n * sizeof(uint64_t)});

  for (size_t i = 0; i < expected.size(); ++i) {
    const SectionEntry& e = h.entries[i];
    if (e.id != static_cast<uint32_t>(expected[i].id)) {
      return Invalid("unexpected section id " + std::to_string(e.id) +
                     " at table index " + std::to_string(i));
    }
    if (e.reserved != 0) return Invalid("nonzero reserved field");
    if (e.size != expected[i].bytes) {
      return Invalid("section " + std::to_string(e.id) +
                     " size does not match the header dimensions");
    }
    // Overflow-safe containment: offset first, then size against what
    // remains — never offset + size, which can wrap.
    if (e.offset > file_bytes || e.size > file_bytes - e.offset) {
      return Invalid("section " + std::to_string(e.id) +
                     " extends past end of file");
    }
    if (e.offset % sizeof(uint64_t) != 0) {
      return Invalid("section " + std::to_string(e.id) + " misaligned");
    }
    if (expected[i].id == SnapshotSection::kSigCompact &&
        file_bytes - e.offset - e.size <
            signature::CompactSignatureMatrix::kTailPadBytes) {
      // The AVX2 prescreen may read (not use) up to kTailPadBytes past
      // the last code; the writer's tail pad guarantees them, a truncated
      // file must not.
      return Invalid("compact section lacks its tail pad");
    }
  }
  return util::Status::Ok();
}

}  // namespace

util::Status SaveSnapshotFile(const graph::Graph& g,
                              const signature::SignatureMatrix& sigs,
                              const std::string& path) {
  if (sigs.num_rows() != g.num_nodes()) {
    return util::Status::InvalidArgument(
        "signature matrix rows do not match graph nodes");
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return util::Status::IoError("cannot open " + path);

  const size_t n = g.num_nodes();
  const size_t num_labels = g.num_labels();
  const signature::CompactSignatureMatrix* compact = sigs.compact();
  const uint32_t num_sections = compact != nullptr ? 9 : 8;
  const size_t table_bytes = num_sections * kPsnapSectionEntryBytes;

  // Reserve the header + table region; both are written last, once the
  // section offsets and checksums are known.
  {
    const std::vector<char> zeros(kPsnapHeaderBytes + table_bytes, 0);
    out.write(zeros.data(), static_cast<std::streamsize>(zeros.size()));
  }

  SectionStream stream(out, kPsnapHeaderBytes + table_bytes);
  std::vector<SectionEntry> entries;
  entries.reserve(num_sections);
  const auto write_section = [&](SnapshotSection id, auto&& emit) {
    stream.PadTo(kPsnapAlignment);
    SectionEntry e;
    e.id = static_cast<uint32_t>(id);
    e.offset = stream.pos();
    stream.BeginSection();
    emit();
    e.checksum = stream.EndSection();
    e.size = stream.pos() - e.offset;
    entries.push_back(e);
  };

  std::vector<uint64_t> offsets(n + 1, 0);
  for (size_t u = 0; u < n; ++u) offsets[u + 1] = offsets[u] + g.degree(u);
  write_section(SnapshotSection::kCsrOffsets, [&] {
    stream.Append(offsets.data(), offsets.size() * sizeof(uint64_t));
  });
  write_section(SnapshotSection::kCsrNeighbors, [&] {
    for (size_t u = 0; u < n; ++u) {
      const auto nb = g.neighbors(static_cast<graph::NodeId>(u));
      stream.Append(nb.data(), nb.size() * sizeof(graph::NodeId));
    }
  });
  write_section(SnapshotSection::kCsrEdgeLabels, [&] {
    for (size_t u = 0; u < n; ++u) {
      const auto el = g.edge_labels(static_cast<graph::NodeId>(u));
      stream.Append(el.data(), el.size() * sizeof(graph::Label));
    }
  });
  write_section(SnapshotSection::kNodeLabels, [&] {
    for (size_t u = 0; u < n; ++u) {
      const graph::Label l = g.label(static_cast<graph::NodeId>(u));
      stream.Append(&l, sizeof(l));
    }
  });
  write_section(SnapshotSection::kNodesByLabel, [&] {
    for (size_t l = 0; l < num_labels; ++l) {
      const auto nodes = g.nodes_with_label(static_cast<graph::Label>(l));
      stream.Append(nodes.data(), nodes.size() * sizeof(graph::NodeId));
    }
  });
  write_section(SnapshotSection::kLabelOffsets, [&] {
    std::vector<uint64_t> label_offsets(num_labels + 1, 0);
    for (size_t l = 0; l < num_labels; ++l) {
      label_offsets[l + 1] =
          label_offsets[l] + g.label_frequency(static_cast<graph::Label>(l));
    }
    stream.Append(label_offsets.data(),
                  label_offsets.size() * sizeof(uint64_t));
  });
  write_section(SnapshotSection::kSigFloat, [&] {
    for (size_t i = 0; i < sigs.num_rows(); ++i) {
      const auto row = sigs.row(i);
      stream.Append(row.data(), row.size() * sizeof(float));
    }
  });
  if (compact != nullptr) {
    write_section(SnapshotSection::kSigCompact, [&] {
      for (size_t i = 0; i < compact->num_rows(); ++i) {
        const auto row = compact->row(i);
        stream.Append(row.data(), row.size());
      }
    });
  }
  write_section(SnapshotSection::kRowHashes, [&] {
    for (size_t i = 0; i < sigs.num_rows(); ++i) {
      const uint64_t h = sigs.RowHash(i);
      stream.Append(&h, sizeof(h));
    }
  });

  // Tail pad: keeps the AVX2 compact prescreen's masked tail-vector
  // over-read (<= CompactSignatureMatrix::kTailPadBytes) inside the
  // mapping even for the file's last section.
  {
    const char zeros[kPsnapTailPadBytes] = {};
    out.write(zeros, sizeof(zeros));
  }

  // Header + section table, checksummed together.
  std::vector<unsigned char> head(kPsnapHeaderBytes + table_bytes, 0);
  std::memcpy(head.data() + kOffMagic, kMagic, sizeof(kMagic));
  PutScalar<uint32_t>(head.data(), kOffVersion, kPsnapVersion);
  PutScalar<uint32_t>(head.data(), kOffMethod,
                      static_cast<uint32_t>(sigs.method()));
  PutScalar<uint32_t>(head.data(), kOffDepth, sigs.depth());
  PutScalar<float>(head.data(), kOffDecay, sigs.decay());
  PutScalar<uint32_t>(head.data(), kOffFlags,
                      compact != nullptr ? kFlagCompact : 0u);
  PutScalar<uint64_t>(head.data(), kOffNumNodes, n);
  PutScalar<uint64_t>(head.data(), kOffNumEdges, g.num_edges());
  PutScalar<uint64_t>(head.data(), kOffNumLabels, num_labels);
  PutScalar<uint32_t>(head.data(), kOffNumSections, num_sections);
  PutScalar<uint32_t>(head.data(), kOffSigLabels,
                      static_cast<uint32_t>(sigs.num_labels()));
  for (size_t i = 0; i < entries.size(); ++i) {
    unsigned char* e = head.data() + kPsnapHeaderBytes +
                       i * kPsnapSectionEntryBytes;
    PutScalar<uint32_t>(e, 0, entries[i].id);
    PutScalar<uint32_t>(e, 4, entries[i].reserved);
    PutScalar<uint64_t>(e, 8, entries[i].offset);
    PutScalar<uint64_t>(e, 16, entries[i].size);
    PutScalar<uint64_t>(e, 24, entries[i].checksum);
  }
  uint64_t header_checksum =
      util::Fnv1a64Words(head.data(), kHeaderChecksumPrefix);
  header_checksum = util::Fnv1a64Words(head.data() + kPsnapHeaderBytes,
                                       table_bytes, header_checksum);
  PutScalar<uint64_t>(head.data(), kOffHeaderChecksum, header_checksum);
  out.seekp(0);
  out.write(reinterpret_cast<const char*>(head.data()),
            static_cast<std::streamsize>(head.size()));
  out.flush();
  return out ? util::Status::Ok()
             : util::Status::IoError("write failed for " + path);
}

util::Result<LoadedSnapshot> LoadSnapshotFile(const std::string& path) {
  auto mapped = util::MmapFile::Open(path);
  if (!mapped.ok()) return mapped.status();
  auto holder =
      std::make_shared<util::MmapFile>(std::move(mapped).value());
  const unsigned char* base = holder->bytes();
  const uint64_t file_bytes = holder->size();

  ParsedHeader h;
  if (util::Status s = ParseHeader(base, file_bytes, &h); !s.ok()) return s;
  if (util::Status s = ValidateSections(h, file_bytes); !s.ok()) return s;

  // Chaos hook: a load that fails after validation — e.g. the mapping
  // disappearing under us or an allocation failure while adopting the CSR.
  if (PSI_INJECT_FAULT(util::faults::kSnapshotLoad)) {
    return util::Status::IoError("injected snapshot load failure for '" +
                                 path + "'");
  }

  for (const SectionEntry& e : h.entries) {
    if (util::Fnv1a64Words(base + e.offset, e.size) != e.checksum) {
      return Invalid("section " + std::to_string(e.id) +
                     " checksum mismatch");
    }
  }

  const auto section = [&](SnapshotSection id) -> const SectionEntry& {
    return h.entries[static_cast<size_t>(
        static_cast<uint32_t>(id) > static_cast<uint32_t>(
                                        SnapshotSection::kSigCompact) &&
                !h.info.has_compact
            ? static_cast<uint32_t>(id) - 2
            : static_cast<uint32_t>(id) - 1)];
  };
  const auto n = static_cast<size_t>(h.info.num_nodes);
  const auto arcs = static_cast<size_t>(2 * h.info.num_edges);
  const auto num_labels = static_cast<size_t>(h.info.num_labels);
  const auto sig_labels = static_cast<size_t>(h.info.sig_labels);

  const auto* offsets = reinterpret_cast<const uint64_t*>(
      base + section(SnapshotSection::kCsrOffsets).offset);
  const auto* neighbors = reinterpret_cast<const graph::NodeId*>(
      base + section(SnapshotSection::kCsrNeighbors).offset);
  const auto* edge_labels = reinterpret_cast<const graph::Label*>(
      base + section(SnapshotSection::kCsrEdgeLabels).offset);
  const auto* node_labels = reinterpret_cast<const graph::Label*>(
      base + section(SnapshotSection::kNodeLabels).offset);
  const auto* nodes_by_label = reinterpret_cast<const graph::NodeId*>(
      base + section(SnapshotSection::kNodesByLabel).offset);
  const auto* label_offsets = reinterpret_cast<const uint64_t*>(
      base + section(SnapshotSection::kLabelOffsets).offset);

  // The CSR is indexed by its own contents, so checksummed-but-wrong bytes
  // could still read out of bounds: re-validate every Build() invariant.
  auto graph_result = graph::GraphBuilder::FromCsr(
      {offsets, n + 1}, {neighbors, arcs}, {edge_labels, arcs},
      {node_labels, n}, {nodes_by_label, n}, {label_offsets, num_labels + 1});
  if (!graph_result.ok()) return graph_result.status();

  // The signature payloads, by contrast, are pure data — every weight is
  // compared, never used as an index — so they are served zero-copy out of
  // the mapping.
  signature::SignatureMatrix sigs = signature::SignatureMatrix::FromExternal(
      reinterpret_cast<const float*>(
          base + section(SnapshotSection::kSigFloat).offset),
      n, sig_labels, h.info.method, h.info.depth, h.info.decay);
  if (h.info.has_compact) {
    sigs.AttachCompact(std::make_unique<signature::CompactSignatureMatrix>(
        signature::CompactSignatureMatrix::View(
            base + section(SnapshotSection::kSigCompact).offset, n,
            sig_labels)));
  }
  sigs.AdoptRowHashes(
      {reinterpret_cast<const uint64_t*>(
           base + section(SnapshotSection::kRowHashes).offset),
       n});

  LoadedSnapshot loaded{std::move(graph_result).value(), std::move(sigs),
                        std::shared_ptr<const void>(holder, holder->data())};
  return loaded;
}

util::Result<SnapshotFileInfo> DescribeSnapshotFile(const std::string& path) {
  auto mapped = util::MmapFile::Open(path);
  if (!mapped.ok()) return mapped.status();
  const util::MmapFile& file = mapped.value();
  ParsedHeader h;
  if (util::Status s = ParseHeader(file.bytes(), file.size(), &h); !s.ok()) {
    return s;
  }
  return h.info;
}

}  // namespace psi::service
