#include "service/workload.h"

#include <algorithm>
#include <cstdlib>
#include <istream>
#include <ostream>
#include <sstream>

#include "graph/query_extractor.h"
#include "graph/types.h"
#include "util/fault_injection.h"

namespace psi::service {

namespace {

using util::Result;
using util::Status;

/// Splits `s` on `sep`, keeping empty pieces (so "0,,1" is caught as
/// malformed instead of silently collapsing).
std::vector<std::string> Split(const std::string& s, char sep) {
  std::vector<std::string> parts;
  std::string current;
  for (const char c : s) {
    if (c == sep) {
      parts.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  parts.push_back(current);
  return parts;
}

bool ParseU64(const std::string& s, uint64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return false;
  *out = v;
  return true;
}

bool ParseDouble(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == nullptr || *end != '\0') return false;
  *out = v;
  return true;
}

}  // namespace

Result<QueryRequest> ParseWorkloadLine(const std::string& line) {
  QueryRequest request;
  std::vector<graph::Label> labels;
  // Edges parse before nodes are known, so buffer them.
  struct PendingEdge {
    uint64_t u, v, label;
  };
  std::vector<PendingEdge> edges;
  bool have_pivot = false;
  uint64_t pivot = 0;

  std::istringstream tokens(line);
  std::string token;
  while (tokens >> token) {
    const size_t eq = token.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("expected key=value token, got '" +
                                     token + "'");
    }
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    if (key == "v") {
      for (const std::string& piece : Split(value, ',')) {
        uint64_t label = 0;
        if (!ParseU64(piece, &label)) {
          return Status::InvalidArgument("bad node label '" + piece + "'");
        }
        labels.push_back(static_cast<graph::Label>(label));
      }
    } else if (key == "e") {
      if (value.empty()) continue;  // edgeless single-node query
      for (const std::string& piece : Split(value, ',')) {
        const std::vector<std::string> ends = Split(piece, '-');
        if (ends.size() != 2 && ends.size() != 3) {
          return Status::InvalidArgument("bad edge '" + piece + "'");
        }
        PendingEdge e{0, 0, graph::kDefaultEdgeLabel};
        if (!ParseU64(ends[0], &e.u) || !ParseU64(ends[1], &e.v) ||
            (ends.size() == 3 && !ParseU64(ends[2], &e.label))) {
          return Status::InvalidArgument("bad edge '" + piece + "'");
        }
        edges.push_back(e);
      }
    } else if (key == "p") {
      if (!ParseU64(value, &pivot)) {
        return Status::InvalidArgument("bad pivot '" + value + "'");
      }
      have_pivot = true;
    } else if (key == "d") {
      double ms = 0.0;
      if (!ParseDouble(value, &ms) || ms < 0.0) {
        return Status::InvalidArgument("bad deadline '" + value + "'");
      }
      request.deadline_seconds = ms / 1e3;
    } else if (key == "m") {
      if (value == "smart") {
        request.method = Method::kSmart;
      } else if (value == "optimistic") {
        request.method = Method::kOptimistic;
      } else if (value == "pessimistic") {
        request.method = Method::kPessimistic;
      } else {
        return Status::InvalidArgument("unknown method '" + value + "'");
      }
    } else if (key == "id") {
      if (!ParseU64(value, &request.id)) {
        return Status::InvalidArgument("bad id '" + value + "'");
      }
    } else if (key == "g") {
      if (value.empty()) {
        return Status::InvalidArgument("empty graph name (g=)");
      }
      request.graph = value;
    } else {
      return Status::InvalidArgument("unknown key '" + key + "'");
    }
  }

  if (labels.empty()) {
    return Status::InvalidArgument("request has no nodes (missing v=)");
  }
  if (labels.size() > graph::QueryGraph::kMaxNodes) {
    return Status::InvalidArgument("query exceeds " +
                                   std::to_string(graph::QueryGraph::kMaxNodes) +
                                   " nodes");
  }
  if (!have_pivot || pivot >= labels.size()) {
    return Status::InvalidArgument("missing or out-of-range pivot");
  }
  for (const graph::Label l : labels) request.query.AddNode(l);
  for (const auto& e : edges) {
    if (e.u >= labels.size() || e.v >= labels.size() || e.u == e.v) {
      return Status::InvalidArgument("edge endpoint out of range");
    }
    request.query.AddEdge(static_cast<graph::NodeId>(e.u),
                          static_cast<graph::NodeId>(e.v),
                          static_cast<graph::Label>(e.label));
  }
  request.query.set_pivot(static_cast<graph::NodeId>(pivot));
  return request;
}

std::string FormatWorkloadLine(const QueryRequest& request) {
  std::ostringstream oss;
  oss << "v=";
  for (size_t v = 0; v < request.query.num_nodes(); ++v) {
    if (v > 0) oss << ",";
    oss << request.query.label(static_cast<graph::NodeId>(v));
  }
  oss << " e=";
  bool first = true;
  for (size_t v = 0; v < request.query.num_nodes(); ++v) {
    for (const auto& [nbr, label] :
         request.query.neighbors(static_cast<graph::NodeId>(v))) {
      if (v >= nbr) continue;
      if (!first) oss << ",";
      first = false;
      oss << v << "-" << nbr;
      if (label != graph::kDefaultEdgeLabel) oss << "-" << label;
    }
  }
  oss << " p=" << request.query.pivot();
  if (request.deadline_seconds > 0.0) {
    oss << " d=" << request.deadline_seconds * 1e3;
  }
  if (request.method != Method::kSmart) {
    oss << " m=" << MethodName(request.method);
  }
  if (request.id != 0) oss << " id=" << request.id;
  if (!request.graph.empty()) oss << " g=" << request.graph;
  return oss.str();
}

Result<std::vector<QueryRequest>> ReadWorkload(std::istream& in) {
  std::vector<QueryRequest> requests;
  std::string line;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    // Chaos hook: simulated short read (see graph_io.cc).
    if (PSI_INJECT_FAULT(util::faults::kWorkloadShortRead)) {
      return Status::IoError("injected short read at line " +
                             std::to_string(line_number));
    }
    const size_t start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos || line[start] == '#') continue;
    Result<QueryRequest> parsed = ParseWorkloadLine(line);
    if (!parsed.ok()) {
      return Status::InvalidArgument("line " + std::to_string(line_number) +
                                     ": " + parsed.status().message());
    }
    requests.push_back(std::move(parsed).value());
  }
  return requests;
}

void WriteWorkload(const std::vector<QueryRequest>& requests,
                   std::ostream& out) {
  for (const QueryRequest& request : requests) {
    out << FormatWorkloadLine(request) << "\n";
  }
}

std::vector<QueryRequest> ExtractWorkload(const graph::Graph& g,
                                          const WorkloadSpec& spec,
                                          util::Rng& rng) {
  const graph::QueryExtractor extractor(g);
  const std::vector<graph::QueryGraph> queries =
      extractor.ExtractMany(spec.query_size, spec.count, rng);
  std::vector<QueryRequest> requests;
  requests.reserve(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    QueryRequest request;
    request.id = i + 1;
    request.query = queries[i];
    request.method = spec.method;
    if (spec.deadline_ms_max > 0.0) {
      const double lo = std::min(spec.deadline_ms_min, spec.deadline_ms_max);
      const double hi = std::max(spec.deadline_ms_min, spec.deadline_ms_max);
      request.deadline_seconds =
          (lo + (hi - lo) * rng.NextDouble()) / 1e3;
    }
    requests.push_back(std::move(request));
  }
  return requests;
}

}  // namespace psi::service
