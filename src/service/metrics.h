#ifndef SMARTPSI_SERVICE_METRICS_H_
#define SMARTPSI_SERVICE_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "service/request.h"

namespace psi::service {

/// Lock-free fixed-capacity sample ring for latency observations. Writers
/// claim a slot with one fetch_add and store with one relaxed atomic write,
/// so the request hot path never takes a lock; once full, the ring keeps a
/// sliding window of the most recent `capacity` samples. Summarize() copies
/// the window and computes order statistics — a read-side cost only.
class LatencyReservoir {
 public:
  explicit LatencyReservoir(size_t capacity = kDefaultCapacity);

  void Record(double seconds);

  struct Summary {
    /// Total observations ever recorded (not capped by capacity).
    uint64_t count = 0;
    // Statistics over the retained window:
    double mean = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    double max = 0.0;
  };

  Summary Summarize() const;

  static constexpr size_t kDefaultCapacity = 8192;

 private:
  std::vector<std::atomic<double>> slots_;
  std::atomic<uint64_t> count_{0};
};

/// Per-shard slice of the request counters (sharded serving, DESIGN.md
/// §13). The shard id is the vector index; admitted/settled count shard
/// subtasks (each sharded request fans out one subtask per shard), and
/// cross_shard_forwards counts partial matches this shard delegated to a
/// boundary vertex's owner.
struct ShardCounterSnapshot {
  uint64_t admitted = 0;
  uint64_t settled = 0;
  uint64_t cross_shard_forwards = 0;
};

/// Point-in-time copy of every service counter, cheap to pass around and
/// print. Counters are monotonic since service construction.
struct MetricsSnapshot {
  // Admission.
  uint64_t admitted = 0;
  uint64_t rejected = 0;  // shed at the queue bound
  /// Requests admitted only after at least one shed-and-retry cycle
  /// (degradation policy, DESIGN.md §11). Counted per request, not per
  /// attempt, so retries <= admitted always holds.
  uint64_t retries = 0;

  // Terminal states of admitted requests.
  uint64_t completed = 0;
  uint64_t timed_out = 0;
  uint64_t cancelled = 0;
  uint64_t invalid = 0;
  /// Admitted, but the requested graph name resolved to no snapshot.
  uint64_t not_found = 0;

  // Engine-side work, aggregated across requests.
  uint64_t cache_hits = 0;
  uint64_t method_recoveries = 0;  // preemptive executor state-2 switches
  uint64_t plan_fallbacks = 0;     // preemptive executor state-3 fallbacks
  uint64_t candidates_evaluated = 0;
  /// Cache hits whose prediction disagreed with the confirmed outcome —
  /// the poisoning signal (answers stay exact; see PsiQueryResult).
  uint64_t cache_mismatches = 0;

  // Search-core activity (Luby restarts, nogood recording, work stealing —
  // DESIGN.md §14), aggregated across requests.
  uint64_t search_restarts = 0;
  uint64_t nogoods_recorded = 0;
  uint64_t nogood_hits = 0;
  uint64_t work_steals = 0;

  // Graceful degradation (DESIGN.md §11).
  uint64_t degraded_entries = 0;  // times pessimist-only mode was entered
  uint64_t degraded_exits = 0;    // times it was left after cooldown
  uint64_t degraded_requests = 0; // smart requests served pessimist-only
  uint64_t cache_bypass_entries = 0;
  uint64_t cache_bypass_exits = 0;

  // Batched execution (DESIGN.md §17). A batch is admitted as one unit;
  // its member queries still settle through the terminal counters above,
  // so Settled() accounting is unchanged by batching.
  uint64_t batch_submitted = 0;  // batches admitted as a unit
  uint64_t batch_rejected = 0;   // whole batches shed at admission
  uint64_t batch_queries = 0;    // member queries settled via a batch
  /// Member queries that reused a shared batch-context entry (pivot
  /// candidates and/or query-signature rows prepared by an earlier query
  /// in the same batch).
  uint64_t batch_context_hits = 0;
  /// Member queries that abandoned the shared-context fast path (the
  /// service.batch fault site fired) and were evaluated standalone.
  /// Answers are unchanged — this is a perf event, not a failure.
  uint64_t batch_degraded = 0;

  // Snapshot catalog traffic. The MetricsRegistry does not own these —
  // PsiService::Stats() folds them in from GraphCatalog::counters() so one
  // snapshot (and one ToString) covers the whole service surface.
  uint64_t snapshot_publishes = 0;
  uint64_t snapshot_swaps = 0;      // publishes that replaced a current name
  uint64_t snapshot_retires = 0;
  uint64_t snapshot_publish_failures = 0;  // catalog.publish fault aborts

  LatencyReservoir::Summary latency;

  /// Per-shard labeled counters, indexed by shard id. Empty unless the
  /// owning registry enabled the shard dimension (unsharded services) —
  /// the flat counters above are always authoritative either way.
  std::vector<ShardCounterSnapshot> shards;

  /// Terminal events recorded so far (== admitted once the queue drains).
  uint64_t Settled() const {
    return completed + timed_out + cancelled + invalid + not_found;
  }

  /// Multi-line human-readable dump for tools.
  std::string ToString() const;
};

/// Thread-safe service instrumentation: atomic counters plus a lock-free
/// latency reservoir. One instance is shared by every worker; all methods
/// are safe for concurrent use.
///
/// Snapshot consistency contract (tested by service_metrics_test and the
/// TSan race harness): in every Snapshot(), regardless of concurrent
/// writers,
///   * latency.count <= Settled()  — every latency sample was preceded by
///     its terminal-status increment, and
///   * Settled() <= admitted       — every terminal status was preceded by
///     its admission (PsiService counts admission before enqueueing).
/// Both hold because settling writes use release ordering, Snapshot() reads
/// in the reverse order (latency first, admissions last) with acquire on
/// the settling counters, and the release sequence on each RMW chain
/// publishes every earlier increment along with the value read.
class MetricsRegistry {
 public:
  void RecordRejected() { rejected_.fetch_add(1, std::memory_order_relaxed); }
  void RecordAdmitted() { admitted_.fetch_add(1, std::memory_order_relaxed); }

  /// Revokes a provisional RecordAdmitted() whose enqueue was subsequently
  /// shed. Counting admission first and revoking on failure (rather than
  /// counting after a successful enqueue) is what keeps Settled() from
  /// overtaking `admitted` when a worker finishes the request before the
  /// submitter's next instruction runs.
  void UndoAdmitted() { admitted_.fetch_sub(1, std::memory_order_relaxed); }

  /// Records that a request was admitted after at least one shed-and-retry
  /// cycle. Call after the successful (re-)admission so retries can never
  /// exceed admitted in any snapshot.
  void RecordRetriedAdmission() {
    retries_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Records a degraded-mode (pessimist-only) entry or exit.
  void RecordDegradedTransition(bool entering) {
    (entering ? degraded_entries_ : degraded_exits_)
        .fetch_add(1, std::memory_order_relaxed);
  }

  /// Records a cache-bypass entry or exit.
  void RecordCacheBypassTransition(bool entering) {
    (entering ? cache_bypass_entries_ : cache_bypass_exits_)
        .fetch_add(1, std::memory_order_relaxed);
  }

  /// Records a batch admitted as a unit.
  void RecordBatchSubmitted() {
    batch_submitted_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Records a whole batch shed at admission.
  void RecordBatchRejected() {
    batch_rejected_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Records a member query settled through the batch path. `context_hit`
  /// marks reuse of a shared batch-context entry; `degraded` marks a
  /// query that abandoned the shared context (service.batch fault).
  void RecordBatchQuery(bool context_hit, bool degraded) {
    batch_queries_.fetch_add(1, std::memory_order_relaxed);
    if (context_hit) {
      batch_context_hits_.fetch_add(1, std::memory_order_relaxed);
    }
    if (degraded) {
      batch_degraded_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  /// Records a terminal response (status bucket + engine counters +
  /// latency). kRejected responses route to RecordRejected's counter and
  /// record no latency — they were never admitted.
  void RecordOutcome(const QueryResponse& response,
                     uint64_t method_recoveries = 0,
                     uint64_t plan_fallbacks = 0);

  MetricsSnapshot Snapshot() const;

  /// Sizes the per-shard counter dimension (sharded services call this once
  /// at construction). Not safe to call concurrently with the shard
  /// recorders below — the slot array is reallocated. The flat counters are
  /// unaffected: unsharded registries never call this and their Snapshot()
  /// keeps returning an empty `shards` vector.
  void EnableShardCounters(size_t num_shards);

  size_t num_shards() const { return num_shard_slots_; }

  void RecordShardAdmitted(size_t shard) {
    shard_slots_[shard].admitted.fetch_add(1, std::memory_order_relaxed);
  }
  /// Release pairing: Snapshot() reads settled with acquire before admitted
  /// so per-shard settled <= admitted holds in every snapshot (the same
  /// contract as the flat counters).
  void RecordShardSettled(size_t shard) {
    shard_slots_[shard].settled.fetch_add(1, std::memory_order_release);
  }
  void RecordShardForwards(size_t shard, uint64_t n) {
    if (n == 0) return;
    shard_slots_[shard].forwards.fetch_add(n, std::memory_order_relaxed);
  }

 private:
  struct ShardSlot {
    std::atomic<uint64_t> admitted{0};
    std::atomic<uint64_t> settled{0};
    std::atomic<uint64_t> forwards{0};
  };

  std::atomic<uint64_t> admitted_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> retries_{0};
  std::atomic<uint64_t> degraded_entries_{0};
  std::atomic<uint64_t> degraded_exits_{0};
  std::atomic<uint64_t> degraded_requests_{0};
  std::atomic<uint64_t> cache_bypass_entries_{0};
  std::atomic<uint64_t> cache_bypass_exits_{0};
  std::atomic<uint64_t> cache_mismatches_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> timed_out_{0};
  std::atomic<uint64_t> cancelled_{0};
  std::atomic<uint64_t> invalid_{0};
  std::atomic<uint64_t> not_found_{0};
  std::atomic<uint64_t> cache_hits_{0};
  std::atomic<uint64_t> method_recoveries_{0};
  std::atomic<uint64_t> plan_fallbacks_{0};
  std::atomic<uint64_t> candidates_evaluated_{0};
  std::atomic<uint64_t> search_restarts_{0};
  std::atomic<uint64_t> nogoods_recorded_{0};
  std::atomic<uint64_t> nogood_hits_{0};
  std::atomic<uint64_t> work_steals_{0};
  std::atomic<uint64_t> batch_submitted_{0};
  std::atomic<uint64_t> batch_rejected_{0};
  std::atomic<uint64_t> batch_queries_{0};
  std::atomic<uint64_t> batch_context_hits_{0};
  std::atomic<uint64_t> batch_degraded_{0};
  LatencyReservoir latencies_;
  /// Shard dimension (EnableShardCounters); null for unsharded registries.
  std::unique_ptr<ShardSlot[]> shard_slots_;
  size_t num_shard_slots_ = 0;
};

}  // namespace psi::service

#endif  // SMARTPSI_SERVICE_METRICS_H_
