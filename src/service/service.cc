#include "service/service.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "core/pure_drivers.h"
#include "signature/builders.h"

namespace psi::service {

PsiService::PsiService(const graph::Graph& g, ServiceOptions options)
    : graph_(g), options_(options) {
  options_.num_workers = std::max<size_t>(1, options_.num_workers);
  pool_ = std::make_unique<util::ThreadPool>(options_.num_workers);
  util::WallTimer timer;
  graph_sigs_ = signature::BuildSignatures(
      g, options_.engine.signature_method, options_.engine.signature_depth,
      g.num_labels(), pool_.get(), options_.engine.signature_decay);
  signature_build_seconds_ = timer.Seconds();
  PrewarmRowHashes();
  StartWorkers();
}

PsiService::PsiService(const graph::Graph& g,
                       signature::SignatureMatrix graph_sigs,
                       ServiceOptions options)
    : graph_(g), options_(options), graph_sigs_(std::move(graph_sigs)) {
  assert(graph_sigs_.num_rows() == g.num_nodes());
  options_.num_workers = std::max<size_t>(1, options_.num_workers);
  pool_ = std::make_unique<util::ThreadPool>(options_.num_workers);
  PrewarmRowHashes();
  StartWorkers();
}

void PsiService::PrewarmRowHashes() {
  if (!options_.prewarm_row_hashes) return;
  const size_t n = graph_sigs_.num_rows();
  if (n == 0) return;
  const size_t chunks = options_.num_workers * 4;
  const size_t chunk_size = (n + chunks - 1) / chunks;
  for (size_t begin = 0; begin < n; begin += chunk_size) {
    const size_t end = std::min(n, begin + chunk_size);
    pool_->Submit([this, begin, end] {
      for (size_t i = begin; i < end; ++i) graph_sigs_.RowHash(i);
    });
  }
  pool_->Wait();
}

void PsiService::StartWorkers() {
  // One engine per worker: engines are not safe for concurrent Evaluate()
  // calls, so the pool's width caps how many are ever checked out at once.
  core::SmartPsiConfig config = options_.engine;
  config.num_threads = 1;
  config.query_keyed_cache = true;
  options_.engine = config;
  engines_.reserve(options_.num_workers);
  // Construction is single-threaded, but the free list is guarded state, so
  // take its (uncontended) lock to keep the annotations honest.
  util::MutexLock lock(engines_mutex_);
  free_engines_.reserve(options_.num_workers);
  for (size_t i = 0; i < options_.num_workers; ++i) {
    // Same seed everywhere: with query_keyed_cache every engine derives an
    // identical plan pool for a given query, so cached plan indices written
    // by one worker mean the same thing to all others.
    engines_.push_back(
        std::make_unique<core::SmartPsiEngine>(graph_, &graph_sigs_, config));
    engines_.back()->UseSharedCache(&shared_cache_);
    free_engines_.push_back(engines_.back().get());
  }
}

PsiService::~PsiService() { Shutdown(); }

void PsiService::Shutdown() {
  accepting_.store(false, std::memory_order_relaxed);
  shutdown_.RequestStop();
  pool_->Wait();
}

core::SmartPsiEngine* PsiService::CheckoutEngine() {
  util::MutexLock lock(engines_mutex_);
  assert(!free_engines_.empty() && "more checkouts than pool workers");
  core::SmartPsiEngine* engine = free_engines_.back();
  free_engines_.pop_back();
  return engine;
}

void PsiService::ReturnEngine(core::SmartPsiEngine* engine) {
  util::MutexLock lock(engines_mutex_);
  free_engines_.push_back(engine);
}

std::optional<std::future<QueryResponse>> PsiService::Submit(
    QueryRequest request) {
  if (!accepting_.load(std::memory_order_relaxed)) {
    metrics_.RecordRejected();
    return std::nullopt;
  }
  if (request.id == 0) {
    request.id = next_auto_id_.fetch_add(1, std::memory_order_relaxed);
  }
  // The admission timer starts now so the recorded latency includes queue
  // wait — the delay a caller actually experiences.
  util::WallTimer admission_timer;
  auto promise = std::make_shared<std::promise<QueryResponse>>();
  std::future<QueryResponse> future = promise->get_future();
  // Count the admission BEFORE the task becomes runnable: once TrySubmit
  // enqueues it, a worker may record the request's outcome immediately, and
  // a concurrent Stats() must never observe Settled() > admitted. A shed
  // submission revokes the provisional count (admitted may transiently read
  // one high, never low).
  metrics_.RecordAdmitted();
  const bool admitted = pool_->TrySubmit(
      [this, request = std::move(request), promise, admission_timer]() mutable {
        promise->set_value(Run(std::move(request), admission_timer));
      },
      options_.max_queue_depth);
  if (!admitted) {
    metrics_.UndoAdmitted();
    metrics_.RecordRejected();
    return std::nullopt;
  }
  return future;
}

QueryResponse PsiService::Execute(QueryRequest request) {
  const uint64_t id = request.id;
  std::optional<std::future<QueryResponse>> future = Submit(std::move(request));
  if (!future.has_value()) {
    QueryResponse response;
    response.id = id;
    response.status = RequestStatus::kRejected;
    return response;
  }
  return future->get();
}

QueryResponse PsiService::Run(QueryRequest request,
                              util::WallTimer admission_timer) {
  QueryResponse response;
  response.id = request.id;
  uint64_t method_recoveries = 0;
  uint64_t plan_fallbacks = 0;
  util::WallTimer exec_timer;

  if (request.query.num_nodes() == 0 || !request.query.has_pivot()) {
    response.status = RequestStatus::kInvalid;
  } else if (shutdown_.StopRequested()) {
    response.status = RequestStatus::kCancelled;
  } else {
    const double limit = request.deadline_seconds > 0.0
                             ? request.deadline_seconds
                             : options_.default_deadline_seconds;
    const util::Deadline deadline =
        limit > 0.0 ? util::Deadline::After(limit) : util::Deadline();
    const util::StopToken stop(&shutdown_);

    bool complete = true;
    if (request.method == Method::kSmart) {
      core::SmartPsiEngine* engine = CheckoutEngine();
      core::PsiQueryResult result =
          engine->Evaluate(request.query, deadline, stop);
      ReturnEngine(engine);
      response.valid_nodes = std::move(result.valid_nodes);
      response.num_candidates = result.num_candidates;
      response.cache_hits = result.cache_hits;
      method_recoveries = result.method_recoveries;
      plan_fallbacks = result.plan_fallbacks;
      complete = result.complete;
    } else {
      core::PureDriverOptions pure;
      pure.strategy = request.method == Method::kOptimistic
                          ? core::PureStrategy::kOptimistic
                          : core::PureStrategy::kPessimistic;
      pure.deadline = deadline;
      pure.stop = stop;
      core::PureDriverResult result =
          core::EvaluatePure(graph_, graph_sigs_, request.query, pure);
      response.valid_nodes = std::move(result.valid_nodes);
      complete = result.complete;
    }
    if (complete) {
      response.status = RequestStatus::kOk;
    } else if (shutdown_.StopRequested()) {
      response.status = RequestStatus::kCancelled;
    } else {
      response.status = RequestStatus::kTimeout;
    }
  }

  response.exec_seconds = exec_timer.Seconds();
  response.latency_seconds = admission_timer.Seconds();
  metrics_.RecordOutcome(response, method_recoveries, plan_fallbacks);
  return response;
}

ServiceStats PsiService::Stats() const {
  ServiceStats stats;
  stats.metrics = metrics_.Snapshot();
  stats.cache = shared_cache_.counters();
  stats.cache_entries = shared_cache_.size();
  stats.queue_depth = pool_->queue_depth();
  stats.num_workers = options_.num_workers;
  stats.signature_build_seconds = signature_build_seconds_;
  stats.uptime_seconds = uptime_.Seconds();
  return stats;
}

}  // namespace psi::service
