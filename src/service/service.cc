#include "service/service.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <thread>
#include <utility>

#include "core/pure_drivers.h"
#include "match/parallel_search.h"
#include "util/fault_injection.h"

namespace psi::service {

PsiService::PsiService(const graph::Graph& g, ServiceOptions options)
    : options_(options) {
  options_.num_workers = std::max<size_t>(1, options_.num_workers);
  pool_ = std::make_unique<util::ThreadPool>(options_.num_workers);
  owned_catalog_ = std::make_unique<GraphCatalog>();
  catalog_ = owned_catalog_.get();
  GraphCatalog::BuildOptions build;
  build.signature_method = options_.engine.signature_method;
  build.signature_depth = options_.engine.signature_depth;
  build.signature_decay = options_.engine.signature_decay;
  build.prewarm_row_hashes = options_.prewarm_row_hashes;
  // The service pool is idle until StartWorkers below, so the startup
  // build may parallelize on it safely (the no-serving-pool rule in
  // BuildOptions only bites once queries are in flight).
  build.pool = pool_.get();
  // If an armed catalog.publish fault fires here the service starts with
  // an empty catalog and every request settles kNotFound — degraded, not
  // broken, matching the chaos layer's graceful-failure contract.
  auto published =
      catalog_->BuildAndPublish(options_.default_graph, g.Clone(), build);
  if (published.ok()) {
    signature_build_seconds_ =
        published.value()->timings().signature_build_seconds;
  }
  StartWorkers();
}

PsiService::PsiService(const graph::Graph& g,
                       signature::SignatureMatrix graph_sigs,
                       ServiceOptions options)
    : options_(options) {
  assert(graph_sigs.num_rows() == g.num_nodes());
  options_.num_workers = std::max<size_t>(1, options_.num_workers);
  pool_ = std::make_unique<util::ThreadPool>(options_.num_workers);
  owned_catalog_ = std::make_unique<GraphCatalog>();
  catalog_ = owned_catalog_.get();
  SnapshotTimings timings;
  if (options_.prewarm_row_hashes && graph_sigs.num_rows() > 0) {
    util::WallTimer prewarm_timer;
    pool_->ParallelFor(graph_sigs.num_rows(),
                       [&graph_sigs](size_t begin, size_t end) {
                         for (size_t i = begin; i < end; ++i) {
                           graph_sigs.RowHash(i);
                         }
                       });
    timings.prewarm_seconds = prewarm_timer.Seconds();
  }
  // Same graceful-failure stance as the building constructor above.
  auto published = catalog_->PublishPrebuilt(
      options_.default_graph, g.Clone(), std::move(graph_sigs), timings);
  (void)published;
  StartWorkers();
}

PsiService::PsiService(GraphCatalog* catalog, ServiceOptions options)
    : options_(options), catalog_(catalog) {
  assert(catalog != nullptr);
  options_.num_workers = std::max<size_t>(1, options_.num_workers);
  pool_ = std::make_unique<util::ThreadPool>(options_.num_workers);
  if (const auto snapshot = catalog_->Resolve(options_.default_graph)) {
    signature_build_seconds_ = snapshot->timings().signature_build_seconds;
  }
  StartWorkers();
}

void PsiService::StartWorkers() {
  // One engine per worker: engines are not safe for concurrent Evaluate()
  // calls, so the pool's width caps how many are ever checked out at once.
  core::SmartPsiConfig config = options_.engine;
  // Cross-query parallelism comes from num_workers; within-query
  // parallelism is the service-level search_threads knob, not whatever the
  // caller left in the engine config.
  config.num_threads = std::max<size_t>(1, options_.search_threads);
  config.restarts.enabled = options_.search_restarts;
  config.query_keyed_cache = true;
  options_.engine = config;
  engines_.reserve(options_.num_workers);
  // Construction is single-threaded, but the free list is guarded state, so
  // take its (uncontended) lock to keep the annotations honest.
  util::MutexLock lock(engines_mutex_);
  free_engines_.reserve(options_.num_workers);
  for (size_t i = 0; i < options_.num_workers; ++i) {
    // Same seed everywhere: with query_keyed_cache every engine derives an
    // identical plan pool for a given query, so cached plan indices written
    // by one worker mean the same thing to all others. Engines start
    // unbound; each request rebinds its checked-out engine to the snapshot
    // it pinned at admission.
    engines_.push_back(std::make_unique<core::SmartPsiEngine>(config));
    engines_.back()->UseSharedCache(&shared_cache_);
    free_engines_.push_back(engines_.back().get());
  }
}

PsiService::~PsiService() { Shutdown(); }

void PsiService::Shutdown() {
  accepting_.store(false, std::memory_order_relaxed);
  shutdown_.RequestStop();
  pool_->Wait();
}

core::SmartPsiEngine* PsiService::CheckoutEngine() {
  util::MutexLock lock(engines_mutex_);
  assert(!free_engines_.empty() && "more checkouts than pool workers");
  core::SmartPsiEngine* engine = free_engines_.back();
  free_engines_.pop_back();
  return engine;
}

void PsiService::ReturnEngine(core::SmartPsiEngine* engine) {
  util::MutexLock lock(engines_mutex_);
  free_engines_.push_back(engine);
}

std::optional<std::future<QueryResponse>> PsiService::Submit(
    QueryRequest request) {
  if (!accepting_.load(std::memory_order_relaxed)) {
    metrics_.RecordRejected();
    return std::nullopt;
  }
  if (request.id == 0) {
    request.id = next_auto_id_.fetch_add(1, std::memory_order_relaxed);
  }
  // The admission timer starts now so the recorded latency includes queue
  // wait — the delay a caller actually experiences.
  util::WallTimer admission_timer;
  // Snapshot resolution happens at admission, not execution: the request
  // pins whatever is current *now* and keeps that snapshot for its whole
  // lifetime, so a swap that lands while it queues cannot change what it
  // runs against. An empty pin (unknown name) is still admitted and
  // settles kNotFound, keeping Settled() == admitted exact.
  auto pin = std::make_shared<SnapshotPin>(catalog_->Pin(
      request.graph.empty() ? options_.default_graph : request.graph));
  auto promise = std::make_shared<std::promise<QueryResponse>>();
  std::future<QueryResponse> future = promise->get_future();
  // The request lives in shared state (not the task closure) so a shed
  // TrySubmit — which destroys the closure it was handed — leaves it
  // intact for the next retry attempt. The pin rides the same way (it is
  // move-only, and std::function closures must be copyable).
  auto shared_request = std::make_shared<QueryRequest>(std::move(request));

  const size_t max_retries =
      options_.degradation.enabled ? options_.degradation.max_shed_retries : 0;
  double backoff_ms = options_.degradation.retry_backoff_ms;
  for (size_t attempt = 0;; ++attempt) {
    // Count the admission BEFORE the task becomes runnable: once TrySubmit
    // enqueues it, a worker may record the request's outcome immediately,
    // and a concurrent Stats() must never observe Settled() > admitted. A
    // shed submission revokes the provisional count (admitted may
    // transiently read one high, never low).
    metrics_.RecordAdmitted();
    // Chaos hook: pretend the queue was at its bound — exercises the shed
    // path (and the retry policy above it) without real overload.
    const bool injected_shed =
        PSI_INJECT_FAULT(util::faults::kServiceAdmissionShed);
    const bool admitted =
        !injected_shed &&
        pool_->TrySubmit(
            [this, shared_request, pin, promise, admission_timer]() mutable {
              // The Run statement is its own full expression, so the pin
              // parameter (and with it the pin gauge) drops before the
              // promise is fulfilled: a caller observing its future never
              // sees its own request still pinned.
              QueryResponse response = Run(std::move(*shared_request),
                                           std::move(*pin), admission_timer);
              promise->set_value(std::move(response));
            },
            options_.max_queue_depth);
    if (admitted) {
      if (attempt > 0) metrics_.RecordRetriedAdmission();
      return future;
    }
    metrics_.UndoAdmitted();
    if (attempt >= max_retries ||
        !accepting_.load(std::memory_order_relaxed)) {
      metrics_.RecordRejected();
      return std::nullopt;
    }
    // Bounded exponential backoff before the next attempt. Blocking the
    // caller is the point: retry-with-backoff converts a shed into
    // backpressure instead of an error, for callers that opted in.
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(backoff_ms));
    backoff_ms *= 2.0;
  }
}

QueryResponse PsiService::Execute(QueryRequest request) {
  const uint64_t id = request.id;
  std::optional<std::future<QueryResponse>> future = Submit(std::move(request));
  if (!future.has_value()) {
    QueryResponse response;
    response.id = id;
    response.status = RequestStatus::kRejected;
    return response;
  }
  return future->get();
}

std::optional<std::future<BatchResponse>> PsiService::SubmitBatch(
    BatchRequest request) {
  const size_t num_queries = request.queries.size();
  if (!accepting_.load(std::memory_order_relaxed)) {
    metrics_.RecordBatchRejected();
    for (size_t i = 0; i < num_queries; ++i) metrics_.RecordRejected();
    return std::nullopt;
  }
  if (request.id == 0) {
    request.id = next_auto_id_.fetch_add(1, std::memory_order_relaxed);
  }
  for (size_t i = 0; i < num_queries; ++i) {
    if (request.queries[i].id == 0) {
      request.queries[i].id = request.id * 1000 + i;
    }
  }
  util::WallTimer admission_timer;
  // One pin for the whole batch, taken at admission: every member query
  // sees the same snapshot even across a concurrent hot swap — the
  // soundness precondition for sharing prepared state between members.
  auto pin = std::make_shared<SnapshotPin>(catalog_->Pin(
      request.graph.empty() ? options_.default_graph : request.graph));
  auto promise = std::make_shared<std::promise<BatchResponse>>();
  std::future<BatchResponse> future = promise->get_future();
  auto shared_request = std::make_shared<BatchRequest>(std::move(request));

  const size_t max_retries =
      options_.degradation.enabled ? options_.degradation.max_shed_retries : 0;
  double backoff_ms = options_.degradation.retry_backoff_ms;
  for (size_t attempt = 0;; ++attempt) {
    // Admission accounting is per member query (each settles through
    // RecordOutcome like a standalone request), counted BEFORE the batch
    // becomes runnable — the same Settled() <= admitted ordering Submit
    // keeps. A shed revokes all provisional counts.
    for (size_t i = 0; i < num_queries; ++i) metrics_.RecordAdmitted();
    const bool injected_shed =
        PSI_INJECT_FAULT(util::faults::kServiceAdmissionShed);
    const bool admitted =
        !injected_shed &&
        pool_->TrySubmit(
            [this, shared_request, pin, promise, admission_timer]() mutable {
              BatchResponse response =
                  RunBatch(std::move(*shared_request), std::move(*pin),
                           admission_timer);
              promise->set_value(std::move(response));
            },
            options_.max_queue_depth);
    if (admitted) {
      metrics_.RecordBatchSubmitted();
      if (attempt > 0) metrics_.RecordRetriedAdmission();
      return future;
    }
    for (size_t i = 0; i < num_queries; ++i) metrics_.UndoAdmitted();
    if (attempt >= max_retries ||
        !accepting_.load(std::memory_order_relaxed)) {
      metrics_.RecordBatchRejected();
      for (size_t i = 0; i < num_queries; ++i) metrics_.RecordRejected();
      return std::nullopt;
    }
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(backoff_ms));
    backoff_ms *= 2.0;
  }
}

BatchResponse PsiService::ExecuteBatch(BatchRequest request) {
  const uint64_t id = request.id;
  std::vector<uint64_t> member_ids;
  member_ids.reserve(request.queries.size());
  for (const QueryRequest& q : request.queries) member_ids.push_back(q.id);
  std::optional<std::future<BatchResponse>> future =
      SubmitBatch(std::move(request));
  if (!future.has_value()) {
    BatchResponse response;
    response.id = id;
    response.responses.resize(member_ids.size());
    for (size_t i = 0; i < member_ids.size(); ++i) {
      response.responses[i].id = member_ids[i];
      response.responses[i].status = RequestStatus::kRejected;
    }
    return response;
  }
  return future->get();
}

BatchResponse PsiService::RunBatch(BatchRequest request, SnapshotPin pin,
                                   util::WallTimer admission_timer) {
  PSI_FAULT_STALL(util::faults::kServiceWorkerStall);

  const size_t num_queries = request.queries.size();
  BatchResponse response;
  response.id = request.id;
  response.snapshot_version = pin ? pin->version() : 0;
  response.responses.resize(num_queries);

  // Shared per-batch state: one evaluation context over the pinned
  // snapshot, one scratch pool every member leases its arenas from.
  std::optional<core::BatchEvalContext> context;
  if (pin) context.emplace(pin->graph(), pin->signatures());
  match::SearchScratchPool scratch;

  // Preparation runs on the batch thread (BatchEvalContext is not
  // thread-safe); evaluation may fan out afterwards. Only pure-method
  // members with a well-formed pivoted query take the shared fast path —
  // kSmart members go through their checked-out engine as usual.
  std::vector<BatchSlot> slots(num_queries);
  std::vector<size_t> pure_members;
  std::vector<size_t> other_members;
  for (size_t i = 0; i < num_queries; ++i) {
    QueryRequest& q = request.queries[i];
    // The batch pinned one snapshot for everyone; per-member graph names
    // are documented as ignored. Member deadlines default to the batch's.
    q.graph.clear();
    if (q.deadline_seconds <= 0.0) q.deadline_seconds = request.deadline_seconds;
    const bool well_formed = q.query.num_nodes() > 0 && q.query.has_pivot();
    if (!pin || !well_formed || q.method == Method::kSmart) {
      other_members.push_back(i);
      continue;
    }
    pure_members.push_back(i);
    slots[i].scratch = &scratch;
    // Chaos hook: this member abandons the shared-context fast path and is
    // evaluated standalone — graceful per-query degradation, identical
    // answer (the differential chaos test pins this).
    if (PSI_INJECT_FAULT(util::faults::kServiceBatch)) {
      slots[i].fault_degraded = true;
      continue;
    }
    const core::BatchEvalContext::Prepared prepared =
        context->Prepare(q.query);
    slots[i].prepared = prepared.context;
    slots[i].pivot_requirement = prepared.pivot_requirement;
    slots[i].context_hit = prepared.reused;
  }

  // Pure members fan out across the batch frontier on the work-stealing
  // executor when the service has intra-query threads to spend; each lane
  // then runs its member sequentially (search_threads_override = 1).
  // Answers are independent of the split — EvaluatePure is bit-identical
  // at every thread count — so this only reshapes latency.
  const size_t lanes = std::max<size_t>(
      1, std::min(options_.search_threads, pure_members.size()));
  if (lanes > 1) {
    for (const size_t i : pure_members) slots[i].search_threads_override = 1;
    match::RunWorkStealing(
        pure_members.size(), lanes, nullptr, [&](size_t item, size_t) {
          const size_t i = pure_members[item];
          response.responses[i] = RunOne(std::move(request.queries[i]), pin,
                                         admission_timer, &slots[i]);
        });
  } else {
    for (const size_t i : pure_members) {
      response.responses[i] =
          RunOne(std::move(request.queries[i]), pin, admission_timer,
                 &slots[i]);
    }
  }
  for (const size_t i : other_members) {
    response.responses[i] = RunOne(std::move(request.queries[i]), pin,
                                   admission_timer, &slots[i]);
  }

  for (size_t i = 0; i < num_queries; ++i) {
    metrics_.RecordBatchQuery(slots[i].context_hit, slots[i].fault_degraded);
    response.context_hits += slots[i].context_hit ? 1 : 0;
    response.degraded_queries += slots[i].fault_degraded ? 1 : 0;
  }
  response.latency_seconds = admission_timer.Seconds();
  return response;
}

QueryResponse PsiService::Run(QueryRequest request, SnapshotPin pin,
                              util::WallTimer admission_timer) {
  // Chaos hook: a worker descheduled between dequeue and execution (the
  // slow-worker scenario — queue wait inflates, deadlines burn down).
  PSI_FAULT_STALL(util::faults::kServiceWorkerStall);
  // `pin` is this function's parameter, so it drops when Run returns —
  // before the caller fulfills the promise (see Submit's closure comment).
  return RunOne(std::move(request), pin, admission_timer, nullptr);
}

QueryResponse PsiService::RunOne(QueryRequest request, const SnapshotPin& pin,
                                 util::WallTimer admission_timer,
                                 const BatchSlot* slot) {
  QueryResponse response;
  response.id = request.id;
  response.snapshot_version = pin ? pin->version() : 0;
  uint64_t method_recoveries = 0;
  uint64_t plan_fallbacks = 0;
  bool smart_evaluated = false;
  util::WallTimer exec_timer;

  if (request.query.num_nodes() == 0 || !request.query.has_pivot()) {
    response.status = RequestStatus::kInvalid;
  } else if (!pin) {
    response.status = RequestStatus::kNotFound;
  } else if (shutdown_.StopRequested()) {
    response.status = RequestStatus::kCancelled;
  } else {
    const double limit = request.deadline_seconds > 0.0
                             ? request.deadline_seconds
                             : options_.default_deadline_seconds;
    const util::Deadline deadline =
        limit > 0.0 ? util::Deadline::After(limit) : util::Deadline();
    const util::StopToken stop(&shutdown_);

    // Degradation policy: under a misprediction-timeout storm, kSmart
    // requests are served by the pure pessimistic driver until cooldown —
    // exact answers, no models to mispredict (DESIGN.md §11).
    Method effective = request.method;
    if (effective == Method::kSmart && DegradedModeActive()) {
      effective = Method::kPessimistic;
      response.served_degraded = true;
    }

    bool complete = true;
    if (effective == Method::kSmart) {
      smart_evaluated = true;
      core::SmartPsiEngine* engine = CheckoutEngine();
      // Bind the checked-out engine to this request's pinned snapshot
      // (pointer-compare no-op when the worker last served the same one)
      // and key its cache traffic by the snapshot generation so entries
      // can never cross a swap.
      engine->Rebind(pin->graph(), &pin->signatures());
      engine->set_cache_keying(pin->cache_salt(), pin->version());
      // Cache-bypass degradation: serve this evaluation model-only. The
      // engine is held exclusively between checkout and return, so the
      // toggle cannot race another Evaluate.
      const bool bypass =
          options_.engine.enable_cache && CacheBypassActive();
      if (bypass) engine->set_cache_enabled(false);
      core::PsiQueryResult result =
          engine->Evaluate(request.query, deadline, stop);
      if (bypass) engine->set_cache_enabled(options_.engine.enable_cache);
      ReturnEngine(engine);
      response.valid_nodes = std::move(result.valid_nodes);
      response.num_candidates = result.num_candidates;
      response.cache_hits = result.cache_hits;
      response.cache_mismatches = result.cache_mismatches;
      response.search_restarts = result.search.restarts;
      response.nogoods_recorded = result.search.nogoods_recorded;
      response.nogood_hits = result.search.nogood_hits;
      response.work_steals = result.search.work_steals;
      method_recoveries = result.method_recoveries;
      plan_fallbacks = result.plan_fallbacks;
      complete = result.complete;
    } else {
      core::PureDriverOptions pure;
      pure.strategy = effective == Method::kOptimistic
                          ? core::PureStrategy::kOptimistic
                          : core::PureStrategy::kPessimistic;
      pure.deadline = deadline;
      pure.stop = stop;
      pure.search_threads = slot != nullptr && slot->search_threads_override > 0
                                ? slot->search_threads_override
                                : options_.search_threads;
      pure.restarts = options_.engine.restarts;
      if (slot != nullptr && !slot->fault_degraded) {
        // Batch fast path: evaluate against the shared prepared context and
        // lease scratch from the batch-wide pool. Bit-identical to the
        // standalone preparation (DESIGN.md §17). A member whose
        // service.batch fault fired skips this and re-derives everything —
        // same answer, standalone cost.
        pure.prepared = slot->prepared;
        pure.prepared_pivot_requirement = slot->pivot_requirement;
        pure.scratch_pool = slot->scratch;
      }
      // Salt the per-request nogood store by the pinned snapshot generation
      // so recorded prefixes can never be confused across graph versions
      // (same invariant the prediction cache keeps via set_cache_keying).
      pure.nogood_salt = pin->cache_salt();
      core::PureDriverResult result = core::EvaluatePure(
          pin->graph(), pin->signatures(), request.query, pure);
      response.valid_nodes = std::move(result.valid_nodes);
      response.search_restarts = result.stats.restarts;
      response.nogoods_recorded = result.stats.nogoods_recorded;
      response.nogood_hits = result.stats.nogood_hits;
      response.work_steals = result.stats.work_steals;
      complete = result.complete;
    }
    if (complete) {
      response.status = RequestStatus::kOk;
    } else if (shutdown_.StopRequested()) {
      response.status = RequestStatus::kCancelled;
    } else {
      response.status = RequestStatus::kTimeout;
    }
    // Only kSmart traffic feeds the state machine: pure-method requests
    // say nothing about model health, and cancelled requests say nothing
    // about anything.
    if (request.method == Method::kSmart &&
        response.status != RequestStatus::kCancelled &&
        (smart_evaluated || response.served_degraded)) {
      UpdateDegradation(response, method_recoveries, plan_fallbacks);
    }
  }

  response.exec_seconds = exec_timer.Seconds();
  response.latency_seconds = admission_timer.Seconds();
  metrics_.RecordOutcome(response, method_recoveries, plan_fallbacks);
  return response;
}

bool PsiService::DegradedModeActive() const {
  if (!options_.degradation.enabled) return false;
  util::MutexLock lock(degrade_mutex_);
  return degrade_.pessimist_only;
}

bool PsiService::CacheBypassActive() const {
  if (!options_.degradation.enabled) return false;
  util::MutexLock lock(degrade_mutex_);
  return degrade_.cache_bypass;
}

void PsiService::UpdateDegradation(const QueryResponse& response,
                                   uint64_t method_recoveries,
                                   uint64_t plan_fallbacks) {
  if (!options_.degradation.enabled) return;
  const DegradationOptions& dg = options_.degradation;
  bool entered_degraded = false;
  bool exited_degraded = false;
  bool entered_bypass = false;
  bool exited_bypass = false;
  {
    util::MutexLock lock(degrade_mutex_);

    // --- Pessimist-only fallback -----------------------------------------
    if (degrade_.pessimist_only) {
      // Every degraded-served request burns cooldown; smart service is
      // retried once it elapses (with fresh windows, so one bad request
      // cannot re-trigger immediately).
      if (response.served_degraded && degrade_.cooldown_remaining > 0 &&
          --degrade_.cooldown_remaining == 0) {
        degrade_.pessimist_only = false;
        degrade_.window_requests = 0;
        degrade_.window_timeouts = 0;
        exited_degraded = true;
      }
    } else {
      ++degrade_.window_requests;
      // A misprediction timeout: the preemptive executor's MaxTime fired
      // (state-2/3 recovery) or the request deadline expired outright.
      if (method_recoveries + plan_fallbacks > 0 ||
          response.status == RequestStatus::kTimeout) {
        ++degrade_.window_timeouts;
      }
      if (degrade_.window_requests >= std::max<size_t>(1, dg.timeout_window)) {
        const double rate = static_cast<double>(degrade_.window_timeouts) /
                            static_cast<double>(degrade_.window_requests);
        if (rate >= dg.timeout_rate_threshold) {
          degrade_.pessimist_only = true;
          degrade_.cooldown_remaining = std::max<size_t>(1,
                                                         dg.degraded_cooldown);
          entered_degraded = true;
        }
        degrade_.window_requests = 0;
        degrade_.window_timeouts = 0;
      }
    }

    // --- Cache bypass on poisoning ---------------------------------------
    if (degrade_.cache_bypass) {
      // Bypassed evaluations produce no cache hits, so the mismatch window
      // cannot refill; cooldown is the only exit.
      if (!response.served_degraded &&
          degrade_.bypass_cooldown_remaining > 0 &&
          --degrade_.bypass_cooldown_remaining == 0) {
        degrade_.cache_bypass = false;
        degrade_.window_cache_hits = 0;
        degrade_.window_cache_mismatches = 0;
        exited_bypass = true;
      }
    } else {
      degrade_.window_cache_hits += response.cache_hits;
      degrade_.window_cache_mismatches += response.cache_mismatches;
      if (degrade_.window_cache_hits >= std::max<size_t>(1,
                                                         dg.poison_window)) {
        const double rate =
            static_cast<double>(degrade_.window_cache_mismatches) /
            static_cast<double>(degrade_.window_cache_hits);
        if (rate >= dg.mismatch_rate_threshold) {
          degrade_.cache_bypass = true;
          degrade_.bypass_cooldown_remaining =
              std::max<size_t>(1, dg.cache_bypass_cooldown);
          entered_bypass = true;
        }
        degrade_.window_cache_hits = 0;
        degrade_.window_cache_mismatches = 0;
      }
    }
  }
  // Side effects outside the leaf lock.
  if (entered_degraded) metrics_.RecordDegradedTransition(true);
  if (exited_degraded) metrics_.RecordDegradedTransition(false);
  if (entered_bypass) {
    // Poisoned entries steer predictions until evicted — drop them all;
    // the cache refills from confirmed outcomes once bypass lifts.
    shared_cache_.Clear();
    metrics_.RecordCacheBypassTransition(true);
  }
  if (exited_bypass) metrics_.RecordCacheBypassTransition(false);
}

ServiceStats PsiService::Stats() const {
  ServiceStats stats;
  stats.metrics = metrics_.Snapshot();
  const GraphCatalog::Counters catalog_counters = catalog_->counters();
  stats.metrics.snapshot_publishes = catalog_counters.published;
  stats.metrics.snapshot_swaps = catalog_counters.swaps;
  stats.metrics.snapshot_retires = catalog_counters.retired;
  stats.metrics.snapshot_publish_failures = catalog_counters.publish_failures;
  stats.snapshots = catalog_->List();
  stats.cache = shared_cache_.counters();
  stats.cache_entries = shared_cache_.size();
  stats.queue_depth = pool_->queue_depth();
  stats.num_workers = options_.num_workers;
  stats.signature_build_seconds = signature_build_seconds_;
  stats.uptime_seconds = uptime_.Seconds();
  stats.degraded_mode = DegradedModeActive();
  stats.cache_bypass = CacheBypassActive();
  stats.faults_injected = util::FaultInjector::Global().TotalFires();
  return stats;
}

}  // namespace psi::service
