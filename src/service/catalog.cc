#include "service/catalog.h"

#include <algorithm>
#include <cassert>

#include "service/snapshot_io.h"
#include "util/fault_injection.h"
#include "util/random.h"
#include "util/timer.h"

namespace psi::service {

namespace {

/// Bit-mixes a version number into a cache salt. SplitMix64's output
/// function: consecutive versions land in uncorrelated key ranges, so the
/// XOR-composed cache keys of two generations never collide structurally.
uint64_t VersionSalt(uint64_t version) {
  return util::SplitMix64(version)();
}

}  // namespace

GraphSnapshot::GraphSnapshot(std::string name, uint64_t version,
                             graph::Graph g, signature::SignatureMatrix sigs,
                             SnapshotTimings timings,
                             std::shared_ptr<const void> backing)
    : name_(std::move(name)),
      version_(version),
      cache_salt_(VersionSalt(version)),
      timings_(timings),
      backing_(std::move(backing)),
      graph_(std::move(g)),
      sigs_(std::move(sigs)) {
  assert(sigs_.num_rows() == graph_.num_nodes());
}

util::Result<std::shared_ptr<const GraphSnapshot>>
GraphCatalog::BuildAndPublish(std::string name, graph::Graph g,
                              SnapshotBuildOptions options) {
  SnapshotTimings timings;
  util::WallTimer build_timer;
  signature::SignatureMatrix sigs = signature::BuildSignatures(
      g, options.signature_method, options.signature_depth, g.num_labels(),
      options.pool, options.signature_decay);
  timings.signature_build_seconds = build_timer.Seconds();
  if (options.prewarm_row_hashes) {
    util::WallTimer prewarm_timer;
    const size_t n = sigs.num_rows();
    if (options.pool != nullptr && n > 0) {
      options.pool->ParallelFor(n, [&sigs](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) sigs.RowHash(i);
      });
    } else {
      for (size_t i = 0; i < n; ++i) sigs.RowHash(i);
    }
    timings.prewarm_seconds = prewarm_timer.Seconds();
  }
  if (options.build_compact_signatures) {
    util::WallTimer compact_timer;
    sigs.BuildCompact();
    timings.compact_build_seconds = compact_timer.Seconds();
  }
  return Publish(std::move(name), std::move(g), std::move(sigs), timings);
}

util::Result<std::shared_ptr<const GraphSnapshot>>
GraphCatalog::PublishPrebuilt(std::string name, graph::Graph g,
                              signature::SignatureMatrix sigs,
                              SnapshotTimings timings) {
  return Publish(std::move(name), std::move(g), std::move(sigs), timings);
}

util::Result<std::shared_ptr<const GraphSnapshot>>
GraphCatalog::PublishFromFile(std::string name, const std::string& path) {
  util::WallTimer load_timer;
  auto loaded = LoadSnapshotFile(path);
  if (!loaded.ok()) return loaded.status();
  SnapshotTimings timings;
  timings.load_seconds = load_timer.Seconds();
  LoadedSnapshot& snapshot = loaded.value();
  return Publish(std::move(name), std::move(snapshot.graph),
                 std::move(snapshot.sigs), timings,
                 std::move(snapshot.backing));
}

std::future<util::Result<std::shared_ptr<const GraphSnapshot>>>
GraphCatalog::BuildAndPublishAsync(std::string name, graph::Graph g,
                                   SnapshotBuildOptions options) {
  // Serial build only: a background thread Wait()ing on a serving pool
  // would block behind (and potentially deadlock with) in-flight queries.
  options.pool = nullptr;
  return std::async(
      std::launch::async,
      [this, name = std::move(name), g = std::move(g), options]() mutable {
        return BuildAndPublish(std::move(name), std::move(g), options);
      });
}

util::Result<std::shared_ptr<const GraphSnapshot>> GraphCatalog::Publish(
    std::string name, graph::Graph g, signature::SignatureMatrix sigs,
    SnapshotTimings timings, std::shared_ptr<const void> backing) {
  if (name.empty()) {
    return util::Status::InvalidArgument("snapshot name must be non-empty");
  }
  if (sigs.num_rows() != g.num_nodes()) {
    return util::Status::InvalidArgument(
        "signature matrix rows do not match graph nodes");
  }
  // Chaos hook: a publish that fails after the (expensive) build — e.g. an
  // allocation failure or validation error at commit time. Counted, and the
  // published state is untouched: the current snapshot keeps serving.
  if (PSI_INJECT_FAULT(util::faults::kCatalogPublish)) {
    util::MutexLock lock(mutex_);
    ++counters_.publish_failures;
    return util::Status::FailedPrecondition(
        "injected catalog.publish failure for '" + name + "'");
  }

  std::shared_ptr<const GraphSnapshot> snapshot;
  {
    util::MutexLock lock(mutex_);
    snapshot = std::make_shared<const GraphSnapshot>(
        name, next_version_++, std::move(g), std::move(sigs), timings,
        std::move(backing));
    const auto it = std::lower_bound(
        current_.begin(), current_.end(), name,
        [](const auto& entry, const std::string& n) { return entry.first < n; });
    if (it != current_.end() && it->first == name) {
      // Hot swap: the old generation lives on via in-flight pins only.
      retired_.push_back(it->second);
      it->second = snapshot;
      ++counters_.swaps;
    } else {
      current_.insert(it, {std::move(name), snapshot});
    }
    ++counters_.published;
  }
  return snapshot;
}

std::shared_ptr<const GraphSnapshot> GraphCatalog::Resolve(
    std::string_view name) const {
  util::MutexLock lock(mutex_);
  const auto it = std::lower_bound(
      current_.begin(), current_.end(), name,
      [](const auto& entry, std::string_view n) { return entry.first < n; });
  if (it == current_.end() || it->first != name) return nullptr;
  return it->second;
}

SnapshotPin GraphCatalog::Pin(std::string_view name) const {
  return SnapshotPin(Resolve(name));
}

bool GraphCatalog::Contains(std::string_view name) const {
  return Resolve(name) != nullptr;
}

bool GraphCatalog::Retire(std::string_view name) {
  util::MutexLock lock(mutex_);
  const auto it = std::lower_bound(
      current_.begin(), current_.end(), name,
      [](const auto& entry, std::string_view n) { return entry.first < n; });
  if (it == current_.end() || it->first != name) return false;
  retired_.push_back(it->second);
  current_.erase(it);
  ++counters_.retired;
  return true;
}

std::vector<CatalogEntry> GraphCatalog::List() const {
  std::vector<CatalogEntry> entries;
  util::MutexLock lock(mutex_);
  entries.reserve(current_.size() + retired_.size());
  auto describe = [](const GraphSnapshot& s, bool current) {
    CatalogEntry e;
    e.name = s.name();
    e.version = s.version();
    e.current = current;
    e.pins = s.pins();
    e.num_nodes = s.graph().num_nodes();
    e.num_edges = s.graph().num_edges();
    e.num_labels = s.graph().num_labels();
    e.timings = s.timings();
    return e;
  };
  for (const auto& [name, snapshot] : current_) {
    entries.push_back(describe(*snapshot, /*current=*/true));
  }
  // Old generations: report the ones still alive, prune the rest.
  auto out = retired_.begin();
  for (auto& weak : retired_) {
    if (const auto snapshot = weak.lock()) {
      entries.push_back(describe(*snapshot, /*current=*/false));
      *out++ = std::move(weak);
    }
  }
  retired_.erase(out, retired_.end());
  std::sort(entries.begin(), entries.end(),
            [](const CatalogEntry& a, const CatalogEntry& b) {
              return a.name != b.name ? a.name < b.name
                                      : a.version < b.version;
            });
  return entries;
}

GraphCatalog::Counters GraphCatalog::counters() const {
  util::MutexLock lock(mutex_);
  return counters_;
}

size_t GraphCatalog::size() const {
  util::MutexLock lock(mutex_);
  return current_.size();
}

}  // namespace psi::service
