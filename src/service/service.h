#ifndef SMARTPSI_SERVICE_SERVICE_H_
#define SMARTPSI_SERVICE_SERVICE_H_

#include <atomic>
#include <future>
#include <memory>
#include <optional>
#include <vector>

#include "core/batch_context.h"
#include "core/config.h"
#include "core/prediction_cache.h"
#include "core/smart_psi.h"
#include "match/search_scratch.h"
#include "graph/graph.h"
#include "service/catalog.h"
#include "service/metrics.h"
#include "service/request.h"
#include "signature/signature_matrix.h"
#include "util/mutex.h"
#include "util/stop_token.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace psi::service {

/// Graceful-degradation policies (DESIGN.md §11). Disabled by default:
/// the service then sheds, times out and caches exactly as in earlier
/// revisions. Every policy trades throughput or freshness for stability —
/// never correctness, which no mode can affect (answers stay exact).
struct DegradationOptions {
  /// Master switch for all three policies below.
  bool enabled = false;

  // --- Bounded retry-with-backoff for shed submissions -------------------
  /// Extra admission attempts after an initial shed; 0 restores
  /// fail-fast shedding even when `enabled`.
  size_t max_shed_retries = 3;
  /// First retry waits this long; each later retry doubles it. Submit()
  /// blocks the caller for at most the sum of these backoffs.
  double retry_backoff_ms = 1.0;

  // --- Pessimist-only fallback on misprediction-timeout storms -----------
  /// Sliding window (in settled kSmart requests) over which the
  /// misprediction-timeout rate is measured.
  size_t timeout_window = 32;
  /// Fraction of windowed requests with a misprediction timeout (a state-2/3
  /// recovery or a deadline expiry) at or above which the service enters
  /// pessimist-only mode: kSmart requests are served by the pure pessimistic
  /// driver (no models, no MaxTime) until the cooldown elapses.
  double timeout_rate_threshold = 0.5;
  /// Requests served degraded before normal (smart) service is retried.
  size_t degraded_cooldown = 64;

  // --- Cache bypass on poisoning ------------------------------------------
  /// Sliding window (in cache hits) for the verify-on-sample detector.
  size_t poison_window = 32;
  /// Mismatch fraction (confirmed-wrong hits / hits) at or above which the
  /// shared cache is cleared and bypassed until the cooldown elapses.
  double mismatch_rate_threshold = 0.25;
  /// Smart evaluations served cache-less before the cache is re-enabled.
  size_t cache_bypass_cooldown = 64;
};

struct ServiceOptions {
  /// Concurrent query executions. Each worker owns one single-threaded
  /// SmartPsiEngine; cross-query parallelism replaces the engine's internal
  /// within-query parallelism.
  size_t num_workers = 4;

  /// Admission bound: requests arriving while this many are already queued
  /// (excluding the ones executing) are shed with kRejected instead of
  /// buffered — bounded memory and bounded queue delay under overload.
  size_t max_queue_depth = 256;

  /// Applied when a request carries no deadline of its own; <= 0 means
  /// unbounded execution.
  double default_deadline_seconds = 0.0;

  /// Compute every data row's memoized signature hash
  /// (SignatureMatrix::RowHash, the prediction-cache key) on the service
  /// pool at startup instead of lazily on first use, trading startup time
  /// for steady first-query latency.
  bool prewarm_row_hashes = false;

  /// Graceful-degradation policies; disabled by default.
  DegradationOptions degradation;

  /// Catalog name requests with an empty `QueryRequest::graph` resolve to.
  /// The graph-reference constructors publish their graph under this name.
  std::string default_graph = "default";

  /// Per-worker engine tuning. num_threads is forced to `search_threads`
  /// and query_keyed_cache to true regardless of what is set here (the
  /// service owns parallelism and shares one cache across query shapes).
  core::SmartPsiConfig engine;

  /// Intra-query search parallelism (DESIGN.md §14): each evaluation
  /// splits its candidate frontier across this many work-stealing workers.
  /// 1 keeps the classic sequential search. Multiplies with num_workers,
  /// so total concurrency is num_workers × search_threads.
  size_t search_threads = 1;

  /// Enables Luby restarts + nogood recording on the pessimistic search
  /// paths (DESIGN.md §14). Answers are unchanged — the final run of every
  /// restart sequence is budget-unlimited — only tail latency differs.
  bool search_restarts = false;
};

/// Point-in-time service health: request metrics plus the shared-state
/// gauges that only the service can see.
struct ServiceStats {
  MetricsSnapshot metrics;
  core::PredictionCache::Counters cache;
  size_t cache_entries = 0;
  size_t queue_depth = 0;
  size_t num_workers = 0;
  double signature_build_seconds = 0.0;
  double uptime_seconds = 0.0;
  /// Per-snapshot gauges: every current catalog snapshot plus retired
  /// generations still pinned by in-flight requests.
  std::vector<CatalogEntry> snapshots;
  /// Degraded-mode gauges: current state, not monotonic counters (those
  /// live in metrics.degraded_entries/exits etc.).
  bool degraded_mode = false;
  bool cache_bypass = false;
  /// Faults fired by the process-wide injector since process start
  /// (0 in PSI_ENABLE_FAULT_INJECTION=OFF builds and un-armed runs).
  uint64_t faults_injected = 0;
};

/// Multi-threaded in-process PSI query service (the serving layer over the
/// paper's single-query pipeline).
///
/// Data-graph ownership flows through a GraphCatalog of versioned,
/// shared_ptr-pinned snapshots (see catalog.h): every request resolves its
/// graph name at admission, pins the current snapshot, and runs against it
/// end to end — a concurrent hot swap never changes what an in-flight
/// request sees, and a replaced snapshot's memory is reclaimed when its
/// last pin drops. The signature-keyed prediction cache (§4.2.3) is shared
/// across requests with version-salted keys, so entries can never cross a
/// swap; per-request state (models, plan pools, search scratch) stays
/// inside per-worker engines, which rebind to the pinned snapshot per
/// request. Requests pass through a bounded admission queue onto a fixed
/// worker pool; a per-request deadline bounds execution and Shutdown()
/// cancels in-flight work through util::StopToken, so one pathological
/// query can delay its own caller but never stall the service.
///
/// Thread-safe: Submit/Execute/Stats may be called concurrently from any
/// number of threads. Results are exact (status kOk) regardless of
/// concurrency — model mispredictions cost time, never correctness — so a
/// response must only be compared against a serial engine's answer, not
/// trusted less.
class PsiService {
 public:
  /// Single-graph convenience: clones `g` into a service-owned catalog
  /// under options.default_graph, building the signature matrix on the
  /// service pool (parallel). The caller's graph is not referenced after
  /// construction returns.
  PsiService(const graph::Graph& g, ServiceOptions options = ServiceOptions());

  /// As above but adopting a precomputed matrix (e.g. loaded from a
  /// signature file) instead of building one.
  PsiService(const graph::Graph& g, signature::SignatureMatrix graph_sigs,
             ServiceOptions options = ServiceOptions());

  /// Serves a caller-owned catalog (which may be shared with an admin
  /// surface doing live load/swap/retire). The catalog must outlive the
  /// service; it need not contain options.default_graph yet — requests
  /// resolve names at admission, so graphs published later just start
  /// serving.
  explicit PsiService(GraphCatalog* catalog,
                      ServiceOptions options = ServiceOptions());

  PsiService(const PsiService&) = delete;
  PsiService& operator=(const PsiService&) = delete;

  /// Cancels in-flight work and drains the queue.
  ~PsiService();

  /// Admits a request, returning a future for its response — or
  /// std::nullopt when the request is shed (queue at bound, or service
  /// shutting down). A request with id 0 gets a service-assigned id; the
  /// assigned id is only visible in the response, so callers that need the
  /// id up front should set their own.
  std::optional<std::future<QueryResponse>> Submit(QueryRequest request);

  /// Synchronous convenience wrapper: admits and blocks for the response.
  /// A shed request returns immediately with status kRejected.
  QueryResponse Execute(QueryRequest request);

  /// Admits a group of queries as one unit (DESIGN.md §17): one admission
  /// decision, one snapshot pinned for the whole batch, one worker slot.
  /// Member queries share prepared candidate sets and query-signature rows
  /// where their structure allows, and settle individually — a malformed
  /// or timed-out member never poisons its siblings. Per-query answers are
  /// bit-identical to submitting the same queries through Submit() one by
  /// one against the same snapshot. Returns std::nullopt when the whole
  /// batch is shed (queue at bound, or service shutting down).
  std::optional<std::future<BatchResponse>> SubmitBatch(BatchRequest request);

  /// Synchronous convenience wrapper for SubmitBatch. A shed batch returns
  /// immediately with every member marked kRejected.
  BatchResponse ExecuteBatch(BatchRequest request);

  ServiceStats Stats() const;

  /// Stops admission, cancels in-flight queries (they return kCancelled or
  /// a partial kTimeout answer), and waits for the queue to drain.
  /// Idempotent; called by the destructor.
  void Shutdown();

  /// The catalog this service resolves graph names against — the admin
  /// surface for live load/swap/retire. Publishing or retiring through it
  /// is safe while the service is serving.
  GraphCatalog& catalog() { return *catalog_; }
  const GraphCatalog& catalog() const { return *catalog_; }

  const ServiceOptions& options() const { return options_; }

 private:
  /// Per-member-query batch state prepared on the batch thread before
  /// evaluation (possibly) fans out. `prepared`/`pivot_requirement` point
  /// into the batch's BatchEvalContext and are null for kSmart members,
  /// malformed members, and members the service.batch fault degraded to
  /// the standalone path.
  struct BatchSlot {
    const core::QueryContext* prepared = nullptr;
    const signature::SparseRequirement* pivot_requirement = nullptr;
    match::SearchScratchPool* scratch = nullptr;
    /// Intra-query search threads for this member; 0 keeps the service
    /// default (set to 1 when the batch fans out across members instead).
    size_t search_threads_override = 0;
    bool context_hit = false;
    /// The service.batch fault fired for this member: it abandons the
    /// shared-context fast path and evaluates standalone (same answer).
    bool fault_degraded = false;
  };

  void StartWorkers();
  QueryResponse Run(QueryRequest request, SnapshotPin pin,
                    util::WallTimer admission_timer);
  /// Shared evaluation core of Run and RunBatch. `slot` is null outside a
  /// batch.
  QueryResponse RunOne(QueryRequest request, const SnapshotPin& pin,
                       util::WallTimer admission_timer,
                       const BatchSlot* slot);
  BatchResponse RunBatch(BatchRequest request, SnapshotPin pin,
                         util::WallTimer admission_timer);

  core::SmartPsiEngine* CheckoutEngine() PSI_EXCLUDES(engines_mutex_);
  void ReturnEngine(core::SmartPsiEngine* engine) PSI_EXCLUDES(engines_mutex_);

  /// Degradation state machine (DESIGN.md §11). Folds one settled kSmart
  /// request into the sliding windows and performs any mode transition.
  void UpdateDegradation(const QueryResponse& response,
                         uint64_t method_recoveries, uint64_t plan_fallbacks)
      PSI_EXCLUDES(degrade_mutex_);
  bool DegradedModeActive() const PSI_EXCLUDES(degrade_mutex_);
  bool CacheBypassActive() const PSI_EXCLUDES(degrade_mutex_);

  // psi-check: allow(lock-guard) -- immutable after construction
  ServiceOptions options_;
  /// Set for the convenience constructors; the catalog-pointer constructor
  /// leaves it null and serves the caller's catalog.
  // psi-check: allow(lock-guard) -- set once in the constructor, never reseated
  std::unique_ptr<GraphCatalog> owned_catalog_;
  // psi-check: allow(lock-guard) -- set once in the constructor; the catalog is internally synchronized
  GraphCatalog* catalog_ = nullptr;  // never null after construction
  // psi-check: allow(lock-guard) -- written once during construction, read-only afterwards
  double signature_build_seconds_ = 0.0;
  // psi-check: allow(lock-guard) -- PredictionCache is internally synchronized (per-shard mutexes)
  core::PredictionCache shared_cache_;
  // psi-check: allow(lock-guard) -- MetricsRegistry is internally synchronized (atomics + lock-free reservoir)
  MetricsRegistry metrics_;
  // psi-check: allow(lock-guard) -- StopSource publishes via its own release/acquire contract (util/stop_token.h)
  util::StopSource shutdown_;
  /// Admission gate flipped by Shutdown(). Relaxed accesses suffice: it is
  /// a monotonic bool carrying no payload, and the authoritative cancel
  /// signal workers act on is `shutdown_` (release/acquire, see
  /// util/stop_token.h).
  std::atomic<bool> accepting_{true};
  std::atomic<uint64_t> next_auto_id_{1};
  // psi-check: allow(lock-guard) -- started at construction, read-only afterwards
  util::WallTimer uptime_;

  /// Sliding windows and mode flags for the degradation policies. Leaf
  /// lock: never held while acquiring engines_mutex_ or sleeping.
  struct DegradeState {
    // Pessimist-only fallback.
    bool pessimist_only = false;
    size_t cooldown_remaining = 0;
    size_t window_requests = 0;
    size_t window_timeouts = 0;
    // Cache bypass.
    bool cache_bypass = false;
    size_t bypass_cooldown_remaining = 0;
    uint64_t window_cache_hits = 0;
    uint64_t window_cache_mismatches = 0;
  };
  mutable util::Mutex degrade_mutex_;
  DegradeState degrade_ PSI_GUARDED_BY(degrade_mutex_);

  // `engines_` itself is written only at construction (StartWorkers) and is
  // immutable afterwards; the checkout free list is the shared mutable part.
  // psi-check: allow(lock-guard) -- vector filled at construction; element engines are leased exclusively via free_engines_
  std::vector<std::unique_ptr<core::SmartPsiEngine>> engines_;
  util::Mutex engines_mutex_;
  std::vector<core::SmartPsiEngine*> free_engines_
      PSI_GUARDED_BY(engines_mutex_);

  // Declared last: destroyed first, so draining workers still see live
  // engines, cache and metrics.
  // psi-check: allow(lock-guard) -- set once in the constructor; ThreadPool is internally synchronized
  std::unique_ptr<util::ThreadPool> pool_;
};

}  // namespace psi::service

#endif  // SMARTPSI_SERVICE_SERVICE_H_
