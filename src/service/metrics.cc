#include "service/metrics.h"

#include <algorithm>
#include <sstream>

#include "util/stats.h"

namespace psi::service {

LatencyReservoir::LatencyReservoir(size_t capacity)
    : slots_(std::max<size_t>(1, capacity)) {
  for (auto& slot : slots_) slot.store(0.0, std::memory_order_relaxed);
}

void LatencyReservoir::Record(double seconds) {
  // Release: a reader that observes this count also observes every write
  // the recording thread made before claiming the slot (in particular the
  // terminal-status increment MetricsRegistry performs first — the
  // latency.count <= Settled() half of the snapshot contract).
  //
  // The slot index is claimed *before* the sample is stored, so a
  // concurrent Summarize may see a count that covers a slot whose store
  // has not landed yet; that slot reads as its previous value (0.0 when
  // fresh, a stale sample once the ring has wrapped). Acceptable for
  // monitoring stats — see the caveat in Summarize.
  const uint64_t i = count_.fetch_add(1, std::memory_order_release);
  slots_[i % slots_.size()].store(seconds, std::memory_order_relaxed);
}

LatencyReservoir::Summary LatencyReservoir::Summarize() const {
  Summary s;
  s.count = count_.load(std::memory_order_acquire);
  const size_t n =
      static_cast<size_t>(std::min<uint64_t>(s.count, slots_.size()));
  if (n == 0) return s;
  // Concurrent writers may overwrite slots while we copy. Each slot read
  // is atomic, so no individual sample is ever torn, but the window is not
  // a consistent cut: a slot claimed in Record whose store has not landed
  // yet reads as its previous value (0.0 when fresh, a stale sample after
  // wrap), which can fold a spurious value into mean/percentiles. Fine for
  // monitoring; do not treat the summary as an exact transcript.
  std::vector<double> window(n);
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    window[i] = slots_[i].load(std::memory_order_relaxed);
    sum += window[i];
    s.max = std::max(s.max, window[i]);
  }
  s.mean = sum / static_cast<double>(n);
  std::sort(window.begin(), window.end());
  auto at = [&](double q) {
    const double pos = q * static_cast<double>(n - 1);
    const size_t lo = static_cast<size_t>(pos);
    const size_t hi = std::min(n - 1, lo + 1);
    const double frac = pos - static_cast<double>(lo);
    return window[lo] * (1.0 - frac) + window[hi] * frac;
  };
  s.p50 = at(0.50);
  s.p95 = at(0.95);
  s.p99 = at(0.99);
  return s;
}

void MetricsRegistry::RecordOutcome(const QueryResponse& response,
                                    uint64_t method_recoveries,
                                    uint64_t plan_fallbacks) {
  // Terminal-status increments use release so a Snapshot() that acquires
  // one of them also sees the admission that preceded it (the
  // Settled() <= admitted half of the snapshot contract); the latency
  // record below then publishes this increment in turn.
  switch (response.status) {
    case RequestStatus::kOk:
      completed_.fetch_add(1, std::memory_order_release);
      break;
    case RequestStatus::kTimeout:
      timed_out_.fetch_add(1, std::memory_order_release);
      break;
    case RequestStatus::kCancelled:
      cancelled_.fetch_add(1, std::memory_order_release);
      break;
    case RequestStatus::kInvalid:
      invalid_.fetch_add(1, std::memory_order_release);
      break;
    case RequestStatus::kNotFound:
      not_found_.fetch_add(1, std::memory_order_release);
      break;
    case RequestStatus::kRejected:
      rejected_.fetch_add(1, std::memory_order_relaxed);
      return;  // never admitted: no latency, no engine work
  }
  cache_hits_.fetch_add(response.cache_hits, std::memory_order_relaxed);
  method_recoveries_.fetch_add(method_recoveries, std::memory_order_relaxed);
  plan_fallbacks_.fetch_add(plan_fallbacks, std::memory_order_relaxed);
  candidates_evaluated_.fetch_add(response.num_candidates,
                                  std::memory_order_relaxed);
  cache_mismatches_.fetch_add(response.cache_mismatches,
                              std::memory_order_relaxed);
  search_restarts_.fetch_add(response.search_restarts,
                             std::memory_order_relaxed);
  nogoods_recorded_.fetch_add(response.nogoods_recorded,
                              std::memory_order_relaxed);
  nogood_hits_.fetch_add(response.nogood_hits, std::memory_order_relaxed);
  work_steals_.fetch_add(response.work_steals, std::memory_order_relaxed);
  if (response.served_degraded) {
    degraded_requests_.fetch_add(1, std::memory_order_relaxed);
  }
  latencies_.Record(response.latency_seconds);
}

void MetricsRegistry::EnableShardCounters(size_t num_shards) {
  shard_slots_ = num_shards == 0
                     ? nullptr
                     : std::make_unique<ShardSlot[]>(num_shards);
  num_shard_slots_ = num_shards;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  // Read order is the reverse of the write order in RecordOutcome so the
  // snapshot invariants hold under concurrent writers: the latency window
  // first (acquire on its count), then the terminal-status counters
  // (acquire), then admissions last. Each acquire pairs with the writers'
  // release increments, so anything a writer did before a value we read is
  // visible to the later loads. See the contract on the class comment.
  MetricsSnapshot s;
  s.latency = latencies_.Summarize();
  s.completed = completed_.load(std::memory_order_acquire);
  s.timed_out = timed_out_.load(std::memory_order_acquire);
  s.cancelled = cancelled_.load(std::memory_order_acquire);
  s.invalid = invalid_.load(std::memory_order_acquire);
  s.not_found = not_found_.load(std::memory_order_acquire);
  s.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  s.method_recoveries = method_recoveries_.load(std::memory_order_relaxed);
  s.plan_fallbacks = plan_fallbacks_.load(std::memory_order_relaxed);
  s.candidates_evaluated =
      candidates_evaluated_.load(std::memory_order_relaxed);
  s.cache_mismatches = cache_mismatches_.load(std::memory_order_relaxed);
  s.search_restarts = search_restarts_.load(std::memory_order_relaxed);
  s.nogoods_recorded = nogoods_recorded_.load(std::memory_order_relaxed);
  s.nogood_hits = nogood_hits_.load(std::memory_order_relaxed);
  s.work_steals = work_steals_.load(std::memory_order_relaxed);
  s.degraded_entries = degraded_entries_.load(std::memory_order_relaxed);
  s.degraded_exits = degraded_exits_.load(std::memory_order_relaxed);
  s.degraded_requests = degraded_requests_.load(std::memory_order_relaxed);
  s.cache_bypass_entries =
      cache_bypass_entries_.load(std::memory_order_relaxed);
  s.cache_bypass_exits = cache_bypass_exits_.load(std::memory_order_relaxed);
  s.retries = retries_.load(std::memory_order_relaxed);
  s.batch_submitted = batch_submitted_.load(std::memory_order_relaxed);
  s.batch_rejected = batch_rejected_.load(std::memory_order_relaxed);
  s.batch_queries = batch_queries_.load(std::memory_order_relaxed);
  s.batch_context_hits = batch_context_hits_.load(std::memory_order_relaxed);
  s.batch_degraded = batch_degraded_.load(std::memory_order_relaxed);
  // Per-shard counters: settled before admitted, mirroring the flat read
  // order, so shard settled <= shard admitted holds in every snapshot.
  s.shards.resize(num_shard_slots_);
  for (size_t k = 0; k < num_shard_slots_; ++k) {
    s.shards[k].cross_shard_forwards =
        shard_slots_[k].forwards.load(std::memory_order_relaxed);
    s.shards[k].settled =
        shard_slots_[k].settled.load(std::memory_order_acquire);
    s.shards[k].admitted =
        shard_slots_[k].admitted.load(std::memory_order_relaxed);
  }
  s.admitted = admitted_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  return s;
}

std::string MetricsSnapshot::ToString() const {
  std::ostringstream oss;
  oss << "requests: admitted=" << admitted << " rejected=" << rejected
      << " retries=" << retries << " completed=" << completed
      << " timed_out=" << timed_out << " cancelled=" << cancelled
      << " invalid=" << invalid << " not_found=" << not_found << "\n"
      << "engine: cache_hits=" << cache_hits
      << " method_recoveries=" << method_recoveries
      << " plan_fallbacks=" << plan_fallbacks
      << " candidates=" << candidates_evaluated
      << " cache_mismatches=" << cache_mismatches << "\n"
      << "search: restarts=" << search_restarts
      << " nogoods_recorded=" << nogoods_recorded
      << " nogood_hits=" << nogood_hits << " work_steals=" << work_steals
      << "\n"
      << "degradation: entries=" << degraded_entries
      << " exits=" << degraded_exits
      << " degraded_requests=" << degraded_requests
      << " cache_bypass_entries=" << cache_bypass_entries
      << " cache_bypass_exits=" << cache_bypass_exits << "\n"
      << "batch: batch_submitted=" << batch_submitted
      << " batch_rejected=" << batch_rejected
      << " batch_queries=" << batch_queries
      << " batch_context_hits=" << batch_context_hits
      << " batch_degraded=" << batch_degraded << "\n"
      << "catalog: publishes=" << snapshot_publishes
      << " swaps=" << snapshot_swaps << " retires=" << snapshot_retires
      << " publish_failures=" << snapshot_publish_failures << "\n"
      << "latency (" << latency.count
      << " samples): mean=" << util::FormatDuration(latency.mean)
      << " p50=" << util::FormatDuration(latency.p50)
      << " p95=" << util::FormatDuration(latency.p95)
      << " p99=" << util::FormatDuration(latency.p99)
      << " max=" << util::FormatDuration(latency.max);
  for (size_t k = 0; k < shards.size(); ++k) {
    oss << "\nshard " << k << ": admitted=" << shards[k].admitted
        << " settled=" << shards[k].settled
        << " cross_shard_forwards=" << shards[k].cross_shard_forwards;
  }
  return oss.str();
}

}  // namespace psi::service
