#ifndef SMARTPSI_SERVICE_WORKLOAD_H_
#define SMARTPSI_SERVICE_WORKLOAD_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "service/request.h"
#include "util/random.h"
#include "util/status.h"

namespace psi::service {

/// Newline-delimited request format, one request per line, so workloads
/// stream through psi_serve's stdin without block framing:
///
///   v=<l0>,<l1>,... e=<u>-<v>[-<label>],... p=<pivot> [d=<ms>] [m=<method>] [id=<n>] [g=<name>]
///
/// `v=` lists node labels in id order (node count is implied), `e=` the
/// undirected edges, `p=` the pivot node. `d=` is the per-request deadline
/// in milliseconds (0/absent = service default), `m=` one of
/// smart|optimistic|pessimistic, `id=` a caller correlation id, `g=` the
/// catalog name of the data graph to run against (absent = the service's
/// default graph). Tokens may appear in any order; `#` starts a comment
/// line.
///
/// Example — the paper's Figure 1 triangle with a 50 ms budget:
///
///   v=0,1,2 e=0-1,1-2,0-2 p=0 d=50 m=smart
util::Result<QueryRequest> ParseWorkloadLine(const std::string& line);

std::string FormatWorkloadLine(const QueryRequest& request);

/// Reads every non-blank, non-comment line; fails on the first malformed
/// line (with its 1-based line number in the message).
util::Result<std::vector<QueryRequest>> ReadWorkload(std::istream& in);

void WriteWorkload(const std::vector<QueryRequest>& requests,
                   std::ostream& out);

/// Recipe for sampling a request stream out of a data graph.
struct WorkloadSpec {
  size_t count = 100;
  /// Nodes per extracted query (random-walk-with-restart induced subgraph,
  /// the paper's §5.1 workload).
  size_t query_size = 5;
  /// Per-request deadline drawn uniformly from [min, max] milliseconds;
  /// both 0 means no per-request deadline.
  double deadline_ms_min = 0.0;
  double deadline_ms_max = 0.0;
  Method method = Method::kSmart;
};

/// Extracts `spec.count` requests from `g` (fewer if extraction fails on
/// some attempts, e.g. all components smaller than query_size). Ids are
/// assigned 1..n.
std::vector<QueryRequest> ExtractWorkload(const graph::Graph& g,
                                          const WorkloadSpec& spec,
                                          util::Rng& rng);

}  // namespace psi::service

#endif  // SMARTPSI_SERVICE_WORKLOAD_H_
