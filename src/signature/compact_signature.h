#ifndef SMARTPSI_SIGNATURE_COMPACT_SIGNATURE_H_
#define SMARTPSI_SIGNATURE_COMPACT_SIGNATURE_H_

#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "signature/signature_matrix.h"

namespace psi::signature {

/// 8-bit log-quantization grid for signature weights (DESIGN.md §16.1).
///
/// The grid divides the IEEE-754 bit patterns of [2^-24, 2^24) into 254
/// equal bit-pattern buckets. Because positive float bit patterns are
/// monotone in the value, bucketing bit patterns is a monotone log-ish
/// quantizer with no float arithmetic at all — two builds of the same
/// matrix quantize identically on every compiler and architecture.
///
/// Code meaning:
///   0            weight <= 0 (signatures are nonnegative, so: exactly 0)
///   1            0 < weight < 2^-24 (denormals and tiny weights)
///   2 .. 254     the 254 grid buckets across [2^-24, 2^24)
///   255          weight >= 2^24 (saturated)
///
/// (Code 1 doubles as the lowest bucket: QuantizeWeight maps the first
/// bucket of [2^-24, ...) to 1 as well; only monotonicity matters.)
inline constexpr uint32_t kQuantLoBits = 0x33800000u;  // bits of 2^-24f
inline constexpr uint32_t kQuantHiBits = 0x4b800000u;  // bits of 2^24f

/// Monotone: w1 <= w2 implies QuantizeWeight(w1) <= QuantizeWeight(w2).
inline uint8_t QuantizeWeight(float w) {
  if (!(w > 0.0f)) return 0;
  const uint32_t bits = std::bit_cast<uint32_t>(w);
  if (bits < kQuantLoBits) return 1;
  if (bits >= kQuantHiBits) return 255;
  constexpr uint64_t kSpan = kQuantHiBits - kQuantLoBits;
  return static_cast<uint8_t>(
      1 + (static_cast<uint64_t>(bits - kQuantLoBits) * 254) / kSpan);
}

/// Conservative quantized threshold for a required weight `r`: the largest
/// code T such that every candidate weight c passing the float test
/// (fl(c + kSatisfactionEpsilon) >= r) is guaranteed QuantizeWeight(c) >= T.
///
/// Construction: y = fl(r - epsilon). Any float-admitted c satisfies
/// c >= y - (a few ulps of rounding slop), so QuantizeWeight(c) can sit at
/// most ONE bucket below QuantizeWeight(y) — a bucket spans ~1.59 million
/// bit-pattern steps, vastly more than the slop — hence T = Q(y) - 1.
/// The over-admit soundness proof sketch is in DESIGN.md §16.1.
inline uint8_t ThresholdCode(float required) {
  const float y = required - kSatisfactionEpsilon;
  if (!(y > 0.0f)) return 0;
  const uint8_t q = QuantizeWeight(y);  // >= 1 since y > 0
  return static_cast<uint8_t>(q - 1);
}

/// Row-major (num_rows × num_labels) matrix of QuantizeWeight codes — the
/// compact companion of a SignatureMatrix (8 bits/entry instead of 32).
/// The bulk filter kernels use it as a conservative prescreen: a row whose
/// codes fall below a requirement's ThresholdCodes cannot satisfy the float
/// test, so the exact float row is only touched for survivors. Decisions
/// stay byte-identical to the float-only path (over-admit + exact recheck).
///
/// The matrix either owns its codes (Build / the sizing constructor) or is
/// a zero-copy view over an external buffer (a mapped .psnap section). A
/// view's buffer must outlive the view and must keep kTailPadBytes extra
/// readable bytes past the last code — the AVX2 prescreen loads the tail
/// of a row as one full 32-byte vector and masks the excess lanes, so it
/// reads (never uses) up to 31 bytes past the final code. Owned buffers
/// over-allocate the pad; the .psnap writer's tail padding provides it
/// for views.
class CompactSignatureMatrix {
 public:
  static constexpr size_t kTailPadBytes = 31;

  CompactSignatureMatrix() = default;

  /// Owned, zero-initialized codes (all-zero rows = empty signatures).
  CompactSignatureMatrix(size_t num_rows, size_t num_labels)
      : num_rows_(num_rows),
        num_labels_(num_labels),
        owned_(num_rows * num_labels + kTailPadBytes, 0) {}

  /// Quantizes every entry of `sigs` into an owned compact matrix.
  static CompactSignatureMatrix Build(const SignatureMatrix& sigs);

  /// Zero-copy view over `codes` (row-major, num_rows × num_labels). See
  /// the class comment for the lifetime and tail-pad requirements.
  static CompactSignatureMatrix View(const uint8_t* codes, size_t num_rows,
                                     size_t num_labels) {
    CompactSignatureMatrix m;
    m.num_rows_ = num_rows;
    m.num_labels_ = num_labels;
    m.view_ = codes;
    return m;
  }

  CompactSignatureMatrix(const CompactSignatureMatrix&) = delete;
  CompactSignatureMatrix& operator=(const CompactSignatureMatrix&) = delete;
  CompactSignatureMatrix(CompactSignatureMatrix&& other) noexcept
      : num_rows_(std::exchange(other.num_rows_, 0)),
        num_labels_(std::exchange(other.num_labels_, 0)),
        owned_(std::move(other.owned_)),
        view_(std::exchange(other.view_, nullptr)) {}
  CompactSignatureMatrix& operator=(CompactSignatureMatrix&& other) noexcept {
    if (this != &other) {
      num_rows_ = std::exchange(other.num_rows_, 0);
      num_labels_ = std::exchange(other.num_labels_, 0);
      owned_ = std::move(other.owned_);
      view_ = std::exchange(other.view_, nullptr);
    }
    return *this;
  }

  size_t num_rows() const { return num_rows_; }
  size_t num_labels() const { return num_labels_; }
  bool is_view() const { return view_ != nullptr; }

  const uint8_t* data() const {
    return view_ != nullptr ? view_ : owned_.data();
  }

  std::span<const uint8_t> row(size_t i) const {
    return {data() + i * num_labels_, num_labels_};
  }

  /// Writable row pointer; only valid on owned matrices (shard slicing
  /// copies global rows through this).
  uint8_t* mutable_row(size_t i) {
    assert(view_ == nullptr);
    return owned_.data() + i * num_labels_;
  }

 private:
  size_t num_rows_ = 0;
  size_t num_labels_ = 0;
  std::vector<uint8_t> owned_;
  const uint8_t* view_ = nullptr;
};

}  // namespace psi::signature

#endif  // SMARTPSI_SIGNATURE_COMPACT_SIGNATURE_H_
