#ifndef SMARTPSI_SIGNATURE_SPARSE_REQUIREMENT_H_
#define SMARTPSI_SIGNATURE_SPARSE_REQUIREMENT_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "signature/compact_signature.h"
#include "signature/signature_matrix.h"

namespace psi::signature {

/// Sparse view of one query-node signature row: the indices and values of
/// the entries with `required[l] > 0`, in ascending label order.
///
/// Query signatures are sparse — a query node only reaches a handful of the
/// data graph's L labels — so precomputing this view once per query node
/// turns every satisfaction test (Proposition 3.2) and satisfiability score
/// (§3.3) from an O(L) sweep into an O(nnz) one. Satisfies() and Score()
/// perform exactly the same float/double operations in the same order as
/// the dense reference functions in signature_matrix.h, so their results
/// are bit-identical (property-tested).
///
/// Assign() reuses the internal buffers, so a SparseRequirement held in
/// search scratch is allocation-free across rebinds after warmup.
class SparseRequirement {
 public:
  SparseRequirement() = default;

  explicit SparseRequirement(std::span<const float> required) {
    Assign(required);
  }

  /// Rebuilds the view from a dense required row, reusing capacity.
  void Assign(std::span<const float> required) {
    dim_ = required.size();
    indices_.clear();
    values_.clear();
    values_d_.clear();
    dense_tcodes_.assign(
        dim_ + CompactSignatureMatrix::kTailPadBytes, 0);
    for (size_t l = 0; l < required.size(); ++l) {
      if (required[l] > 0.0f) {
        indices_.push_back(static_cast<uint32_t>(l));
        values_.push_back(required[l]);
        values_d_.push_back(static_cast<double>(required[l]));
        dense_tcodes_[l] = ThresholdCode(required[l]);
      }
    }
  }

  /// Length of the dense row this view was built from.
  size_t dim() const { return dim_; }

  /// Number of labels with a positive requirement.
  size_t nnz() const { return indices_.size(); }

  /// Ascending label indices of the positive requirements.
  std::span<const uint32_t> indices() const { return indices_; }

  /// Required weights, parallel to indices().
  std::span<const float> values() const { return values_; }

  /// Required weights widened to double (the score kernels divide in
  /// double precision, exactly like the dense reference).
  std::span<const double> values_double() const { return values_d_; }

  /// Conservative quantized thresholds as a *dense* row: entry l is
  /// ThresholdCode(required[l]) for constrained labels and 0 (never
  /// rejects — quantized codes are always >= 0) everywhere else. Dense so
  /// the compact prescreen compares whole rows with contiguous byte loads
  /// instead of index gathers; the backing buffer keeps
  /// CompactSignatureMatrix::kTailPadBytes readable slack past dim() so
  /// the AVX2 kernel may load the tail as one full masked vector.
  std::span<const uint8_t> dense_threshold_codes() const {
    return {dense_tcodes_.data(), dim_};
  }

  /// Bit-identical to Satisfies(candidate, required) for the row this view
  /// was built from. `candidate` must have dim() entries.
  bool Satisfies(std::span<const float> candidate) const {
    assert(candidate.size() == dim_);
    const uint32_t* idx = indices_.data();
    const float* val = values_.data();
    const size_t n = indices_.size();
    for (size_t j = 0; j < n; ++j) {
      if (candidate[idx[j]] + kSatisfactionEpsilon < val[j]) return false;
    }
    return true;
  }

  /// Bit-identical to SatisfiabilityScore(candidate, required): same
  /// divisions, same left-to-right double accumulation.
  double Score(std::span<const float> candidate) const {
    assert(candidate.size() == dim_);
    const uint32_t* idx = indices_.data();
    const double* val = values_d_.data();
    const size_t n = indices_.size();
    if (n == 0) return 0.0;
    double sum = 0.0;
    for (size_t j = 0; j < n; ++j) {
      sum += static_cast<double>(candidate[idx[j]]) / val[j];
    }
    return sum / static_cast<double>(n);
  }

 private:
  size_t dim_ = 0;
  std::vector<uint32_t> indices_;
  std::vector<float> values_;
  std::vector<double> values_d_;
  std::vector<uint8_t> dense_tcodes_;
};

}  // namespace psi::signature

#endif  // SMARTPSI_SIGNATURE_SPARSE_REQUIREMENT_H_
