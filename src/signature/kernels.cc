#include "signature/kernels.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <numeric>

namespace psi::signature {

namespace {

bool UseAvx2() {
#if defined(PSI_HAVE_AVX2_KERNELS)
  static const bool use = __builtin_cpu_supports("avx2");
  return use;
#else
  return false;
#endif
}

}  // namespace

bool KernelsUseAvx2() { return UseAvx2(); }

namespace internal {

bool RowSatisfies(std::span<const float> row, const SparseRequirement& req) {
  assert(row.size() == req.dim());
#if defined(PSI_HAVE_AVX2_KERNELS)
  if (UseAvx2()) {
    return RowSatisfiesAvx2(row.data(), req.indices().data(),
                            req.values().data(), req.nnz());
  }
#endif
  return req.Satisfies(row);
}

double RowScore(std::span<const float> row, const SparseRequirement& req) {
  assert(row.size() == req.dim());
#if defined(PSI_HAVE_AVX2_KERNELS)
  if (UseAvx2()) {
    return RowScoreAvx2(row.data(), req.indices().data(),
                        req.values_double().data(), req.nnz());
  }
#endif
  return req.Score(row);
}

bool CompactRowMaySatisfyScalar(std::span<const uint8_t> row,
                                const SparseRequirement& req) {
  assert(row.size() == req.dim());
  // Dense sweep: unconstrained labels carry threshold code 0, which can
  // never reject (codes are unsigned), so comparing every label is the
  // same decision as comparing only the constrained ones — and it reads
  // both rows as plain contiguous bytes.
  const uint8_t* need = req.dense_threshold_codes().data();
  const size_t dim = req.dim();
  for (size_t l = 0; l < dim; ++l) {
    if (row[l] < need[l]) return false;
  }
  return true;
}

bool CompactRowMaySatisfy(std::span<const uint8_t> row,
                          const SparseRequirement& req) {
  assert(row.size() == req.dim());
#if defined(PSI_HAVE_AVX2_KERNELS)
  if (UseAvx2()) {
    return CompactRowMaySatisfyAvx2(
        row.data(), req.dense_threshold_codes().data(), req.dim());
  }
#endif
  return CompactRowMaySatisfyScalar(row, req);
}

}  // namespace internal

size_t FilterCandidates(const SignatureMatrix& sigs,
                        const SparseRequirement& req,
                        std::vector<graph::NodeId>& candidates) {
  assert(sigs.num_labels() == req.dim());
  // An all-zero requirement constrains nothing; skip the row sweep.
  if (req.nnz() == 0) return 0;
  const CompactSignatureMatrix* compact = sigs.compact();
  size_t kept = 0;
  if (compact != nullptr) {
    // Quantized prescreen first (8-bit row sweep), exact float re-check on
    // survivors only. The prescreen never rejects a float-satisfying row
    // (over-admit contract), so this branch keeps exactly the same
    // candidates in the same order as the float-only branch below.
    for (const graph::NodeId c : candidates) {
      if (internal::CompactRowMaySatisfy(compact->row(c), req) &&
          internal::RowSatisfies(sigs.row(c), req)) {
        candidates[kept++] = c;
      }
    }
  } else {
    for (const graph::NodeId c : candidates) {
      if (internal::RowSatisfies(sigs.row(c), req)) candidates[kept++] = c;
    }
  }
  const size_t pruned = candidates.size() - kept;
  candidates.resize(kept);
  return pruned;
}

void ScoreCandidates(const SignatureMatrix& sigs, const SparseRequirement& req,
                     std::span<const graph::NodeId> candidates,
                     std::span<float> scores) {
  assert(sigs.num_labels() == req.dim());
  assert(candidates.size() == scores.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    scores[i] =
        static_cast<float>(internal::RowScore(sigs.row(candidates[i]), req));
  }
}

namespace {

/// Bounded stable selection of the k best scores: maintains (score,
/// position) sorted by score descending with ties in position order, so the
/// result equals the first k entries of a full stable descending sort.
void SelectTopK(const SignatureMatrix& sigs, const SparseRequirement& req,
                std::vector<graph::NodeId>& candidates, RankScratch& scratch,
                size_t k) {
  auto& best_score = scratch.scores;
  auto& best_pos = scratch.order;
  best_score.clear();
  best_pos.clear();
  const size_t n = candidates.size();
  for (uint32_t i = 0; i < n; ++i) {
    const float s =
        static_cast<float>(internal::RowScore(sigs.row(candidates[i]), req));
    // A later candidate only displaces the current kth score if strictly
    // better — equal scores keep the earlier position (stability).
    if (best_score.size() == k && !(s > best_score.back())) continue;
    size_t pos = best_score.size();
    while (pos > 0 && best_score[pos - 1] < s) --pos;
    if (best_score.size() < k) {
      best_score.insert(best_score.begin() + pos, s);
      best_pos.insert(best_pos.begin() + pos, i);
    } else {
      for (size_t j = best_score.size() - 1; j > pos; --j) {
        best_score[j] = best_score[j - 1];
        best_pos[j] = best_pos[j - 1];
      }
      best_score[pos] = s;
      best_pos[pos] = i;
    }
  }
  scratch.tmp.resize(best_pos.size());
  for (size_t j = 0; j < best_pos.size(); ++j) {
    scratch.tmp[j] = candidates[best_pos[j]];
  }
  candidates.swap(scratch.tmp);
}

/// Maps a score to a 32-bit key whose *ascending* unsigned order equals the
/// score's descending `operator>` order, with +0.0f and -0.0f mapped to the
/// same key (they are `>`-ties, so the index tiebreak must decide them).
/// Scores are satisfiability averages and thus never NaN.
uint32_t DescendingScoreKey(float score) {
  uint32_t bits = std::bit_cast<uint32_t>(score);
  if (bits == 0x80000000u) bits = 0;  // -0.0f == +0.0f under operator>
  // Monotone total-order mapping: flip the sign bit for non-negatives,
  // flip everything for negatives; then invert for descending order.
  const uint32_t monotone =
      (bits & 0x80000000u) ? ~bits : (bits | 0x80000000u);
  return ~monotone;
}

}  // namespace

void ScoreAndRank(const SignatureMatrix& sigs, const SparseRequirement& req,
                  std::vector<graph::NodeId>& candidates, RankScratch& scratch,
                  size_t k, RankMode mode) {
  assert(sigs.num_labels() == req.dim());
  if (mode == RankMode::kCapFirst && k > 0 && candidates.size() > k) {
    candidates.resize(k);
  }
  const size_t n = candidates.size();
  if (n <= 1) return;
  if (mode == RankMode::kTopKByScore && k > 0 && k < n) {
    SelectTopK(sigs, req, candidates, scratch, k);
    return;
  }
  scratch.scores.resize(n);
  ScoreCandidates(sigs, req, candidates, scratch.scores);
  // Pack (descending score key, original index) into one 64-bit integer:
  // an unstable sort of the packed keys is equivalent to a stable
  // descending sort by score — the index in the low bits breaks every tie
  // deterministically — and sorts integers branchlessly instead of chasing
  // float loads through an index indirection.
  scratch.keys.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    scratch.keys[i] =
        (static_cast<uint64_t>(DescendingScoreKey(scratch.scores[i])) << 32) |
        i;
  }
  std::sort(scratch.keys.begin(), scratch.keys.end());
  scratch.tmp.resize(n);
  for (size_t i = 0; i < n; ++i) {
    scratch.tmp[i] = candidates[static_cast<uint32_t>(scratch.keys[i])];
  }
  candidates.swap(scratch.tmp);
}

}  // namespace psi::signature
