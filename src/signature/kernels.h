#ifndef SMARTPSI_SIGNATURE_KERNELS_H_
#define SMARTPSI_SIGNATURE_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/types.h"
#include "signature/compact_signature.h"
#include "signature/signature_matrix.h"
#include "signature/sparse_requirement.h"

namespace psi::signature {

/// Bulk satisfaction/score kernels over whole candidate lists (DESIGN.md
/// §9). Each candidate id is a row of the signature matrix; the kernels
/// sweep those rows in one pass instead of one scalar call per candidate,
/// touching only the O(nnz) labels of the sparse query requirement. The
/// scalar loops are structured for auto-vectorization; when the library is
/// built with the AVX2 toggle (see README) and the CPU supports it, an
/// explicit gather-based AVX2 path is dispatched at runtime. All paths make
/// byte-identical decisions, scores, and orderings (property-tested against
/// the dense scalar reference in signature_matrix.h).

/// True when the explicit AVX2 kernels were compiled in AND the running CPU
/// supports them (runtime dispatch; scalar fallback otherwise).
bool KernelsUseAvx2();

/// Removes the candidates whose signature rows do not satisfy `req`
/// (Proposition 3.2), in place and order-preserving. Returns the number of
/// candidates pruned. Decisions are bit-identical to calling the scalar
/// Satisfies(sigs.row(c), required) per candidate.
///
/// When `sigs` carries an attached CompactSignatureMatrix, each row is
/// prescreened against the requirement's quantized threshold codes — an
/// 8-bit sweep that rejects most non-satisfying rows without touching their
/// floats — and only prescreen survivors run the exact float test. The
/// prescreen can only over-admit (compact_signature.h), so the kept set is
/// still byte-identical to the float-only path.
size_t FilterCandidates(const SignatureMatrix& sigs,
                        const SparseRequirement& req,
                        std::vector<graph::NodeId>& candidates);

/// Fills scores[i] with the satisfiability score of candidates[i], as the
/// float the search actually sorts by: bit-identical to
/// static_cast<float>(SatisfiabilityScore(sigs.row(c), required)).
/// `scores` must have candidates.size() entries.
void ScoreCandidates(const SignatureMatrix& sigs, const SparseRequirement& req,
                     std::span<const graph::NodeId> candidates,
                     std::span<float> scores);

/// How ScoreAndRank treats its `k` argument.
enum class RankMode {
  /// Rank the whole list; `k` is ignored.
  kFull,
  /// Truncate to the *first* k candidates (the super-optimist's cap,
  /// Algorithm 1 line 4 — applied before sorting so sorting work is
  /// bounded too), then rank those.
  kCapFirst,
  /// Keep the k *best-scoring* candidates via a bounded partial-sort
  /// (ties broken by original position). Equivalent to the first k
  /// entries of a kFull ranking, computed in O(n log k).
  kTopKByScore,
};

/// Reusable buffers for ScoreAndRank; hold one per search scratch so
/// repeated rankings allocate nothing after warmup.
struct RankScratch {
  std::vector<float> scores;
  std::vector<uint32_t> order;
  std::vector<uint64_t> keys;
  std::vector<graph::NodeId> tmp;
};

/// Reorders `candidates` by satisfiability score, descending, stable (ties
/// keep their original relative order) — exactly the order the optimist
/// visits. The ranking is bit-identical to scoring every candidate with the
/// scalar reference and stable-sorting by the float score.
void ScoreAndRank(const SignatureMatrix& sigs, const SparseRequirement& req,
                  std::vector<graph::NodeId>& candidates, RankScratch& scratch,
                  size_t k = 0, RankMode mode = RankMode::kFull);

namespace internal {

/// One-row primitives backing the bulk kernels (scalar or AVX2, dispatched
/// once at load). Exposed for tests and benchmarks.
bool RowSatisfies(std::span<const float> row, const SparseRequirement& req);
double RowScore(std::span<const float> row, const SparseRequirement& req);

/// Conservative quantized prescreen of one compact row: false means the
/// exact float test is guaranteed to fail; true means "maybe" and the
/// caller must re-check the float row. Dispatched scalar/AVX2 like
/// RowSatisfies; both paths return identical booleans for every input.
bool CompactRowMaySatisfy(std::span<const uint8_t> row,
                          const SparseRequirement& req);

/// The always-available scalar reference for CompactRowMaySatisfy (the
/// parity anchor of the property tests).
bool CompactRowMaySatisfyScalar(std::span<const uint8_t> row,
                                const SparseRequirement& req);

#if defined(PSI_HAVE_AVX2_KERNELS)
/// Definitions live in kernels_avx2.cc, compiled with -mavx2; only called
/// after a runtime __builtin_cpu_supports("avx2") check.
bool RowSatisfiesAvx2(const float* row, const uint32_t* idx, const float* val,
                      size_t nnz);
double RowScoreAvx2(const float* row, const uint32_t* idx, const double* val,
                    size_t nnz);
/// Dense variant of the compact prescreen: 32 labels per compare with
/// contiguous byte loads (no gathers). The tail is loaded as one full
/// vector and masked, so the kernel may *read* (never use) up to
/// CompactSignatureMatrix::kTailPadBytes bytes past the last code of both
/// `row` and `tcodes`; every compact buffer and every
/// SparseRequirement::dense_threshold_codes() buffer guarantees that pad.
bool CompactRowMaySatisfyAvx2(const uint8_t* row, const uint8_t* tcodes,
                              size_t dim);
#endif

}  // namespace internal

}  // namespace psi::signature

#endif  // SMARTPSI_SIGNATURE_KERNELS_H_
