#include "signature/builders.h"

#include <cassert>
#include <cmath>
#include <vector>

#include "graph/algorithms.h"

namespace psi::signature {

namespace {

/// decay^d weights for d = 0..depth (paper: decay = 1/2, i.e. 2^-d).
std::vector<float> DepthWeights(uint32_t depth, float decay) {
  std::vector<float> weights(depth + 1);
  float w = 1.0f;
  for (uint32_t d = 0; d <= depth; ++d) {
    weights[d] = w;
    w *= decay;
  }
  return weights;
}

}  // namespace

SignatureMatrix BuildExplorationSignatures(const graph::Graph& g,
                                           uint32_t depth, size_t num_labels,
                                           util::ThreadPool* pool,
                                           float decay) {
  assert(num_labels >= g.num_labels());
  SignatureMatrix ns(g.num_nodes(), num_labels, Method::kExploration, depth,
                     decay);
  const std::vector<float> weights = DepthWeights(depth, decay);

  auto build_range = [&](size_t begin, size_t end) {
    graph::BoundedBfs bfs(g.num_nodes());
    for (size_t u = begin; u < end; ++u) {
      auto row = ns.row(u);
      bfs.Run(g, static_cast<graph::NodeId>(u), depth,
              [&](graph::NodeId v, uint32_t d) {
                row[g.label(v)] += weights[d];
              });
    }
  };

  if (pool != nullptr && g.num_nodes() > 1024) {
    pool->ParallelFor(g.num_nodes(), build_range);
  } else {
    build_range(0, g.num_nodes());
  }
  return ns;
}

SignatureMatrix BuildMatrixSignatures(const graph::Graph& g, uint32_t depth,
                                      size_t num_labels,
                                      util::ThreadPool* pool, float decay) {
  assert(num_labels >= g.num_labels());
  SignatureMatrix current(g.num_nodes(), num_labels, Method::kMatrix, depth,
                          decay);
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    current.at(u, g.label(u)) = 1.0f;
  }
  if (depth == 0 || g.num_nodes() == 0) return current;

  SignatureMatrix next(g.num_nodes(), num_labels, Method::kMatrix, depth,
                       decay);
  for (uint32_t iter = 0; iter < depth; ++iter) {
    auto propagate_range = [&](size_t begin, size_t end) {
      for (size_t u = begin; u < end; ++u) {
        const auto current_row = current.row(u);
        auto next_row = next.row(u);
        for (size_t l = 0; l < num_labels; ++l) next_row[l] = current_row[l];
        for (const graph::NodeId v : g.neighbors(
                 static_cast<graph::NodeId>(u))) {
          const auto nbr_row = current.row(v);
          for (size_t l = 0; l < num_labels; ++l) {
            next_row[l] += decay * nbr_row[l];
          }
        }
      }
    };
    if (pool != nullptr && g.num_nodes() > 1024) {
      pool->ParallelFor(g.num_nodes(), propagate_range);
    } else {
      propagate_range(0, g.num_nodes());
    }
    current.SwapData(next);
  }
  return current;
}

SignatureMatrix BuildExplorationSignatures(const graph::QueryGraph& q,
                                           uint32_t depth, size_t num_labels,
                                           float decay) {
  assert(num_labels >= q.max_label_plus_one());
  SignatureMatrix ns(q.num_nodes(), num_labels, Method::kExploration, depth,
                     decay);
  const std::vector<float> weights = DepthWeights(depth, decay);

  // Bitset BFS per node (queries have at most 64 nodes).
  for (size_t start = 0; start < q.num_nodes(); ++start) {
    auto row = ns.row(start);
    uint64_t visited = 1ULL << start;
    uint64_t frontier = 1ULL << start;
    for (uint32_t d = 0; d <= depth && frontier != 0; ++d) {
      uint64_t next_frontier = 0;
      for (size_t v = 0; v < q.num_nodes(); ++v) {
        if ((frontier >> v) & 1ULL) {
          row[q.label(static_cast<graph::NodeId>(v))] += weights[d];
          next_frontier |= q.neighbor_bits(static_cast<graph::NodeId>(v));
        }
      }
      frontier = next_frontier & ~visited;
      visited |= next_frontier;
    }
  }
  return ns;
}

SignatureMatrix BuildMatrixSignatures(const graph::QueryGraph& q,
                                      uint32_t depth, size_t num_labels,
                                      float decay) {
  assert(num_labels >= q.max_label_plus_one());
  SignatureMatrix current(q.num_nodes(), num_labels, Method::kMatrix, depth,
                          decay);
  for (size_t v = 0; v < q.num_nodes(); ++v) {
    current.at(v, q.label(static_cast<graph::NodeId>(v))) = 1.0f;
  }
  SignatureMatrix next(q.num_nodes(), num_labels, Method::kMatrix, depth,
                       decay);
  for (uint32_t iter = 0; iter < depth; ++iter) {
    for (size_t v = 0; v < q.num_nodes(); ++v) {
      const auto current_row = current.row(v);
      auto next_row = next.row(v);
      for (size_t l = 0; l < num_labels; ++l) next_row[l] = current_row[l];
      for (const auto& [nbr, edge_label] :
           q.neighbors(static_cast<graph::NodeId>(v))) {
        (void)edge_label;
        const auto nbr_row = current.row(nbr);
        for (size_t l = 0; l < num_labels; ++l) {
          next_row[l] += decay * nbr_row[l];
        }
      }
    }
    current.SwapData(next);
  }
  return current;
}

SignatureMatrix BuildSignatures(const graph::Graph& g, Method method,
                                uint32_t depth, size_t num_labels,
                                util::ThreadPool* pool, float decay) {
  return method == Method::kExploration
             ? BuildExplorationSignatures(g, depth, num_labels, pool, decay)
             : BuildMatrixSignatures(g, depth, num_labels, pool, decay);
}

SignatureMatrix BuildSignatures(const graph::QueryGraph& q, Method method,
                                uint32_t depth, size_t num_labels,
                                float decay) {
  return method == Method::kExploration
             ? BuildExplorationSignatures(q, depth, num_labels, decay)
             : BuildMatrixSignatures(q, depth, num_labels, decay);
}

}  // namespace psi::signature
