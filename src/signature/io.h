#ifndef SMARTPSI_SIGNATURE_IO_H_
#define SMARTPSI_SIGNATURE_IO_H_

#include <iosfwd>
#include <string>

#include "signature/signature_matrix.h"
#include "util/status.h"

namespace psi::signature {

/// Binary (de)serialization of signature matrices. Signatures are the
/// expensive per-graph precomputation of SmartPSI (paper Figure 8), so a
/// deployment builds them once and reloads them per process.
///
/// Format: magic "PSIG", version u32, method u32, depth u32, decay f32,
/// num_rows u64, num_labels u64, then num_rows*num_labels little-endian
/// f32 values. Host-endian (documented limitation; all supported targets
/// are little-endian).

/// Writes `sigs` to `out`.
void WriteSignatures(const SignatureMatrix& sigs, std::ostream& out);

/// Reads a matrix written by WriteSignatures.
util::Result<SignatureMatrix> ReadSignatures(std::istream& in);

util::Status SaveSignatureFile(const SignatureMatrix& sigs,
                               const std::string& path);

util::Result<SignatureMatrix> LoadSignatureFile(const std::string& path);

}  // namespace psi::signature

#endif  // SMARTPSI_SIGNATURE_IO_H_
