#ifndef SMARTPSI_SIGNATURE_SIGNATURE_MATRIX_H_
#define SMARTPSI_SIGNATURE_SIGNATURE_MATRIX_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

namespace psi::signature {

/// Slack added to the candidate side of every satisfaction comparison so
/// float rounding cannot prune exact-equality matches (a node can always
/// match itself). Shared by the scalar reference tests and the batched
/// kernels so both make byte-identical decisions.
inline constexpr float kSatisfactionEpsilon = 1e-5f;

/// How a signature matrix was produced. Pruning and scoring are only sound
/// when the query-side and data-side signatures come from the same method
/// (enforced by the SmartPSI engine; see DESIGN.md §5).
enum class Method {
  /// Per-node BFS, label weight = sum over reached nodes of 2^-dist using
  /// shortest-path distances (paper §3.1, the "traditional" approach).
  kExploration,
  /// Iterative propagation NS^i = NS^{i-1} + ½·A·NS^{i-1} (paper's
  /// optimized matrix-based approach; weights count walks, not shortest
  /// paths, which the paper notes may differ from exploration weights).
  kMatrix,
};

const char* MethodName(Method method);

uint64_t HashSignature(std::span<const float> row);

/// Dense row-major (num_rows × num_labels) float matrix of neighborhood
/// signatures: row u, column l = weight of label l around node u
/// (Definition 3.1). Rows are the ML feature vectors of SmartPSI.
class SignatureMatrix {
 public:
  /// Per-hop weight decay the paper uses (2^-d distance weighting).
  static constexpr float kDefaultDecay = 0.5f;

  SignatureMatrix() = default;

  SignatureMatrix(size_t num_rows, size_t num_labels, Method method,
                  uint32_t depth, float decay = kDefaultDecay)
      : num_rows_(num_rows),
        num_labels_(num_labels),
        method_(method),
        depth_(depth),
        decay_(decay),
        data_(num_rows * num_labels, 0.0f),
        row_hashes_(MakeHashSlots(num_rows)) {}

  /// Copies drop the memoized row hashes (recomputed lazily on demand).
  SignatureMatrix(const SignatureMatrix& other)
      : num_rows_(other.num_rows_),
        num_labels_(other.num_labels_),
        method_(other.method_),
        depth_(other.depth_),
        decay_(other.decay_),
        data_(other.data_),
        row_hashes_(MakeHashSlots(other.num_rows_)) {}

  SignatureMatrix& operator=(const SignatureMatrix& other) {
    if (this != &other) *this = SignatureMatrix(other);
    return *this;
  }

  SignatureMatrix(SignatureMatrix&&) = default;
  SignatureMatrix& operator=(SignatureMatrix&&) = default;

  size_t num_rows() const { return num_rows_; }
  size_t num_labels() const { return num_labels_; }
  Method method() const { return method_; }
  uint32_t depth() const { return depth_; }

  /// Per-hop decay factor used at construction. Proposition 3.2 pruning is
  /// sound for any decay in (0, 1] as long as query- and data-side
  /// signatures use the same value (the evaluator asserts this).
  float decay() const { return decay_; }

  std::span<float> row(size_t i) {
    return {data_.data() + i * num_labels_, num_labels_};
  }
  std::span<const float> row(size_t i) const {
    return {data_.data() + i * num_labels_, num_labels_};
  }

  float at(size_t i, size_t l) const { return data_[i * num_labels_ + l]; }
  float& at(size_t i, size_t l) { return data_[i * num_labels_ + l]; }

  /// Swaps the backing stores of two equally-shaped matrices (double
  /// buffering inside the matrix builder). Memoized row hashes follow
  /// their data.
  void SwapData(SignatureMatrix& other) {
    data_.swap(other.data_);
    row_hashes_.swap(other.row_hashes_);
  }

  /// Lazily computed, memoized HashSignature(row(i)) — the prediction-cache
  /// key of hot candidates, so repeated lookups stop rehashing the full
  /// row. Thread-safe for concurrent readers (the service shares one
  /// matrix across workers): a duplicated first computation is benign since
  /// every thread derives the same value from the immutable row.
  ///
  /// Only call once the matrix contents are final — mutating a row through
  /// the non-const accessors does not invalidate an already-memoized hash.
  /// In the astronomically unlikely case a row hashes to the reserved
  /// "unset" sentinel 0, a fixed substitute is memoized instead; callers
  /// use the value as an opaque cache key, so this never affects results.
  uint64_t RowHash(size_t i) const {
    std::atomic<uint64_t>& slot = row_hashes_[i];
    uint64_t h = slot.load(std::memory_order_relaxed);
    if (h != 0) return h;
    h = HashSignature(row(i));
    if (h == 0) h = 0x9e3779b97f4a7c15ULL;
    slot.store(h, std::memory_order_relaxed);
    return h;
  }

 private:
  static std::unique_ptr<std::atomic<uint64_t>[]> MakeHashSlots(size_t n) {
    return n == 0 ? nullptr
                  : std::make_unique<std::atomic<uint64_t>[]>(n);
  }

  size_t num_rows_ = 0;
  size_t num_labels_ = 0;
  Method method_ = Method::kExploration;
  uint32_t depth_ = 0;
  float decay_ = kDefaultDecay;
  std::vector<float> data_;
  /// RowHash memoization; slot value 0 = not yet computed.
  mutable std::unique_ptr<std::atomic<uint64_t>[]> row_hashes_;
};

/// Satisfaction test (paper §3.2): `candidate` satisfies `required` iff for
/// every label with required weight > 0 the candidate weight is >= it.
/// A small epsilon keeps float rounding from pruning exact-equality matches
/// (a node can always match itself). Spans must have equal length.
bool Satisfies(std::span<const float> candidate,
               std::span<const float> required);

/// Satisfiability score (paper §3.3):
///   SS(u, v) = avg over labels l with NS_v(l) > 0 of NS_u(l) / NS_v(l).
/// Higher scores mean the candidate's neighborhood over-covers the query
/// node's requirements; the optimist visits high scores first. Returns 0 for
/// an all-zero `required` row.
double SatisfiabilityScore(std::span<const float> candidate,
                           std::span<const float> required);

/// Hash of a signature row after quantization (weights are multiples of
/// 2^-depth for exploration signatures; matrix weights are quantized to
/// 1/1024). Two nodes with equal hashes almost surely have identical
/// neighborhoods at the signature's resolution — the key of SmartPSI's
/// prediction cache (paper §4.2.3). Declared above the SignatureMatrix
/// class; hot callers should prefer the memoized SignatureMatrix::RowHash.

}  // namespace psi::signature

#endif  // SMARTPSI_SIGNATURE_SIGNATURE_MATRIX_H_
