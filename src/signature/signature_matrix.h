#ifndef SMARTPSI_SIGNATURE_SIGNATURE_MATRIX_H_
#define SMARTPSI_SIGNATURE_SIGNATURE_MATRIX_H_

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

namespace psi::signature {

/// Slack added to the candidate side of every satisfaction comparison so
/// float rounding cannot prune exact-equality matches (a node can always
/// match itself). Shared by the scalar reference tests and the batched
/// kernels so both make byte-identical decisions.
inline constexpr float kSatisfactionEpsilon = 1e-5f;

/// How a signature matrix was produced. Pruning and scoring are only sound
/// when the query-side and data-side signatures come from the same method
/// (enforced by the SmartPSI engine; see DESIGN.md §5).
enum class Method {
  /// Per-node BFS, label weight = sum over reached nodes of 2^-dist using
  /// shortest-path distances (paper §3.1, the "traditional" approach).
  kExploration,
  /// Iterative propagation NS^i = NS^{i-1} + ½·A·NS^{i-1} (paper's
  /// optimized matrix-based approach; weights count walks, not shortest
  /// paths, which the paper notes may differ from exploration weights).
  kMatrix,
};

const char* MethodName(Method method);

uint64_t HashSignature(std::span<const float> row);

class CompactSignatureMatrix;

/// Dense row-major (num_rows × num_labels) float matrix of neighborhood
/// signatures: row u, column l = weight of label l around node u
/// (Definition 3.1). Rows are the ML feature vectors of SmartPSI.
///
/// The matrix either owns its floats (the default; every builder produces
/// owned matrices) or is a zero-copy *view* over an external buffer — the
/// SIG_FLOAT section of a mapped .psnap snapshot (DESIGN.md §16). Views are
/// immutable: the mutating accessors assert ownership, and the external
/// buffer must outlive the matrix (the snapshot's backing handle guarantees
/// this; see service/snapshot_io.h). Copying a view materializes it into an
/// owned matrix.
///
/// A matrix may carry an attached CompactSignatureMatrix — the 8-bit
/// quantized companion the bulk filter kernels use as a conservative
/// prescreen (compact_signature.h). The attachment is an acceleration
/// cache, not state: copies drop it, like the memoized row hashes.
class SignatureMatrix {
 public:
  /// Per-hop weight decay the paper uses (2^-d distance weighting).
  static constexpr float kDefaultDecay = 0.5f;

  SignatureMatrix();
  SignatureMatrix(size_t num_rows, size_t num_labels, Method method,
                  uint32_t depth, float decay = kDefaultDecay);
  ~SignatureMatrix();

  /// Copies drop the memoized row hashes and any attached compact matrix
  /// (both recomputed on demand) and materialize views into owned data.
  SignatureMatrix(const SignatureMatrix& other);
  SignatureMatrix& operator=(const SignatureMatrix& other);
  SignatureMatrix(SignatureMatrix&& other) noexcept;
  SignatureMatrix& operator=(SignatureMatrix&& other) noexcept;

  /// Zero-copy view over `data` (row-major, num_rows × num_labels floats).
  /// The buffer must outlive the returned matrix and stay immutable.
  static SignatureMatrix FromExternal(const float* data, size_t num_rows,
                                      size_t num_labels, Method method,
                                      uint32_t depth, float decay);

  size_t num_rows() const { return num_rows_; }
  size_t num_labels() const { return num_labels_; }
  Method method() const { return method_; }
  uint32_t depth() const { return depth_; }

  /// Per-hop decay factor used at construction. Proposition 3.2 pruning is
  /// sound for any decay in (0, 1] as long as query- and data-side
  /// signatures use the same value (the evaluator asserts this).
  float decay() const { return decay_; }

  /// False for a zero-copy view over an external (mapped) buffer.
  bool owns_data() const { return external_ == nullptr; }

  std::span<float> row(size_t i) {
    assert(owns_data());
    return {data_.data() + i * num_labels_, num_labels_};
  }
  std::span<const float> row(size_t i) const {
    return {data_ptr() + i * num_labels_, num_labels_};
  }

  float at(size_t i, size_t l) const { return data_ptr()[i * num_labels_ + l]; }
  float& at(size_t i, size_t l) {
    assert(owns_data());
    return data_[i * num_labels_ + l];
  }

  /// Swaps the backing stores of two equally-shaped matrices (double
  /// buffering inside the matrix builder). Memoized row hashes and any
  /// compact attachment follow their data.
  void SwapData(SignatureMatrix& other);

  /// Lazily computed, memoized HashSignature(row(i)) — the prediction-cache
  /// key of hot candidates, so repeated lookups stop rehashing the full
  /// row. Thread-safe for concurrent readers (the service shares one
  /// matrix across workers): a duplicated first computation is benign since
  /// every thread derives the same value from the immutable row.
  ///
  /// Only call once the matrix contents are final — mutating a row through
  /// the non-const accessors does not invalidate an already-memoized hash.
  /// In the astronomically unlikely case a row hashes to the reserved
  /// "unset" sentinel 0, a fixed substitute is memoized instead; callers
  /// use the value as an opaque cache key, so this never affects results.
  uint64_t RowHash(size_t i) const {
    std::atomic<uint64_t>& slot = row_hashes_[i];
    uint64_t h = slot.load(std::memory_order_relaxed);
    if (h != 0) return h;
    h = HashSignature(row(i));
    if (h == 0) h = 0x9e3779b97f4a7c15ULL;
    slot.store(h, std::memory_order_relaxed);
    return h;
  }

  /// Seeds the RowHash memo from precomputed values (a .psnap ROW_HASHES
  /// section), so a mapped snapshot skips the first-touch rehash of every
  /// row. `hashes` must hold num_rows() values produced by RowHash /
  /// HashSignature over the same rows; a stored 0 is replaced by the same
  /// fixed substitute RowHash would memoize.
  void AdoptRowHashes(std::span<const uint64_t> hashes);

  /// Attaches / replaces the quantized companion matrix consulted by the
  /// bulk filter kernels. Pass nullptr to detach. The attachment must have
  /// been built from (or sliced bit-identically to) this matrix's rows —
  /// the kernels trust its over-admit contract.
  void AttachCompact(std::unique_ptr<CompactSignatureMatrix> compact);

  /// Quantizes this matrix and attaches the result (Build + AttachCompact).
  void BuildCompact();

  /// The attached quantized companion, or nullptr if none.
  const CompactSignatureMatrix* compact() const { return compact_.get(); }

 private:
  static std::unique_ptr<std::atomic<uint64_t>[]> MakeHashSlots(size_t n) {
    return n == 0 ? nullptr
                  : std::make_unique<std::atomic<uint64_t>[]>(n);
  }

  const float* data_ptr() const {
    return external_ != nullptr ? external_ : data_.data();
  }

  size_t num_rows_ = 0;
  size_t num_labels_ = 0;
  Method method_ = Method::kExploration;
  uint32_t depth_ = 0;
  float decay_ = kDefaultDecay;
  std::vector<float> data_;
  /// Non-null = zero-copy view (data_ stays empty); see owns_data().
  const float* external_ = nullptr;
  /// RowHash memoization; slot value 0 = not yet computed.
  mutable std::unique_ptr<std::atomic<uint64_t>[]> row_hashes_;
  /// Optional 8-bit quantized companion (see AttachCompact).
  std::unique_ptr<CompactSignatureMatrix> compact_;
};

/// Satisfaction test (paper §3.2): `candidate` satisfies `required` iff for
/// every label with required weight > 0 the candidate weight is >= it.
/// A small epsilon keeps float rounding from pruning exact-equality matches
/// (a node can always match itself). Spans must have equal length.
bool Satisfies(std::span<const float> candidate,
               std::span<const float> required);

/// Satisfiability score (paper §3.3):
///   SS(u, v) = avg over labels l with NS_v(l) > 0 of NS_u(l) / NS_v(l).
/// Higher scores mean the candidate's neighborhood over-covers the query
/// node's requirements; the optimist visits high scores first. Returns 0 for
/// an all-zero `required` row.
double SatisfiabilityScore(std::span<const float> candidate,
                           std::span<const float> required);

/// Hash of a signature row after quantization (weights are multiples of
/// 2^-depth for exploration signatures; matrix weights are quantized to
/// 1/1024). Two nodes with equal hashes almost surely have identical
/// neighborhoods at the signature's resolution — the key of SmartPSI's
/// prediction cache (paper §4.2.3). Declared above the SignatureMatrix
/// class; hot callers should prefer the memoized SignatureMatrix::RowHash.

}  // namespace psi::signature

#endif  // SMARTPSI_SIGNATURE_SIGNATURE_MATRIX_H_
