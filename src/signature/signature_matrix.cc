#include "signature/signature_matrix.h"

#include <cassert>
#include <cmath>
#include <cstring>
#include <utility>

#include "signature/compact_signature.h"

namespace psi::signature {

// Special members live out of line: compact_ is a unique_ptr to a type the
// header only forward-declares, so destruction/copy must see the complete
// CompactSignatureMatrix definition.

SignatureMatrix::SignatureMatrix() = default;

SignatureMatrix::SignatureMatrix(size_t num_rows, size_t num_labels,
                                 Method method, uint32_t depth, float decay)
    : num_rows_(num_rows),
      num_labels_(num_labels),
      method_(method),
      depth_(depth),
      decay_(decay),
      data_(num_rows * num_labels, 0.0f),
      row_hashes_(MakeHashSlots(num_rows)) {}

SignatureMatrix::~SignatureMatrix() = default;

SignatureMatrix::SignatureMatrix(const SignatureMatrix& other)
    : num_rows_(other.num_rows_),
      num_labels_(other.num_labels_),
      method_(other.method_),
      depth_(other.depth_),
      decay_(other.decay_),
      data_(other.data_ptr(),
            other.data_ptr() + other.num_rows_ * other.num_labels_),
      row_hashes_(MakeHashSlots(other.num_rows_)) {}

SignatureMatrix& SignatureMatrix::operator=(const SignatureMatrix& other) {
  if (this != &other) *this = SignatureMatrix(other);
  return *this;
}

SignatureMatrix::SignatureMatrix(SignatureMatrix&& other) noexcept
    : num_rows_(std::exchange(other.num_rows_, 0)),
      num_labels_(std::exchange(other.num_labels_, 0)),
      method_(other.method_),
      depth_(other.depth_),
      decay_(other.decay_),
      data_(std::move(other.data_)),
      external_(std::exchange(other.external_, nullptr)),
      row_hashes_(std::move(other.row_hashes_)),
      compact_(std::move(other.compact_)) {}

SignatureMatrix& SignatureMatrix::operator=(SignatureMatrix&& other) noexcept {
  if (this != &other) {
    num_rows_ = std::exchange(other.num_rows_, 0);
    num_labels_ = std::exchange(other.num_labels_, 0);
    method_ = other.method_;
    depth_ = other.depth_;
    decay_ = other.decay_;
    data_ = std::move(other.data_);
    external_ = std::exchange(other.external_, nullptr);
    row_hashes_ = std::move(other.row_hashes_);
    compact_ = std::move(other.compact_);
  }
  return *this;
}

SignatureMatrix SignatureMatrix::FromExternal(const float* data,
                                              size_t num_rows,
                                              size_t num_labels, Method method,
                                              uint32_t depth, float decay) {
  SignatureMatrix m;
  m.num_rows_ = num_rows;
  m.num_labels_ = num_labels;
  m.method_ = method;
  m.depth_ = depth;
  m.decay_ = decay;
  m.external_ = data;
  m.row_hashes_ = MakeHashSlots(num_rows);
  return m;
}

void SignatureMatrix::SwapData(SignatureMatrix& other) {
  data_.swap(other.data_);
  std::swap(external_, other.external_);
  row_hashes_.swap(other.row_hashes_);
  compact_.swap(other.compact_);
}

void SignatureMatrix::AdoptRowHashes(std::span<const uint64_t> hashes) {
  assert(hashes.size() == num_rows_);
  for (size_t i = 0; i < hashes.size(); ++i) {
    uint64_t h = hashes[i];
    if (h == 0) h = 0x9e3779b97f4a7c15ULL;
    row_hashes_[i].store(h, std::memory_order_relaxed);
  }
}

void SignatureMatrix::AttachCompact(
    std::unique_ptr<CompactSignatureMatrix> compact) {
  assert(compact == nullptr || (compact->num_rows() == num_rows_ &&
                                compact->num_labels() == num_labels_));
  compact_ = std::move(compact);
}

void SignatureMatrix::BuildCompact() {
  compact_ = std::make_unique<CompactSignatureMatrix>(
      CompactSignatureMatrix::Build(*this));
}

const char* MethodName(Method method) {
  switch (method) {
    case Method::kExploration:
      return "exploration";
    case Method::kMatrix:
      return "matrix";
  }
  return "unknown";
}

bool Satisfies(std::span<const float> candidate,
               std::span<const float> required) {
  assert(candidate.size() == required.size());
  for (size_t l = 0; l < required.size(); ++l) {
    if (required[l] > 0.0f &&
        candidate[l] + kSatisfactionEpsilon < required[l]) {
      return false;
    }
  }
  return true;
}

double SatisfiabilityScore(std::span<const float> candidate,
                           std::span<const float> required) {
  assert(candidate.size() == required.size());
  double sum = 0.0;
  size_t terms = 0;
  for (size_t l = 0; l < required.size(); ++l) {
    if (required[l] > 0.0f) {
      sum += static_cast<double>(candidate[l]) /
             static_cast<double>(required[l]);
      ++terms;
    }
  }
  return terms == 0 ? 0.0 : sum / static_cast<double>(terms);
}

uint64_t HashSignature(std::span<const float> row) {
  // FNV-1a over 1/1024-quantized weights.
  uint64_t h = 0xcbf29ce484222325ULL;
  for (const float w : row) {
    const auto q = static_cast<int64_t>(std::llround(w * 1024.0f));
    uint64_t bits = static_cast<uint64_t>(q);
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (bits >> (byte * 8)) & 0xffULL;
      h *= 0x100000001b3ULL;
    }
  }
  return h;
}

}  // namespace psi::signature
