#include "signature/signature_matrix.h"

#include <cassert>
#include <cmath>

namespace psi::signature {

const char* MethodName(Method method) {
  switch (method) {
    case Method::kExploration:
      return "exploration";
    case Method::kMatrix:
      return "matrix";
  }
  return "unknown";
}

bool Satisfies(std::span<const float> candidate,
               std::span<const float> required) {
  assert(candidate.size() == required.size());
  for (size_t l = 0; l < required.size(); ++l) {
    if (required[l] > 0.0f &&
        candidate[l] + kSatisfactionEpsilon < required[l]) {
      return false;
    }
  }
  return true;
}

double SatisfiabilityScore(std::span<const float> candidate,
                           std::span<const float> required) {
  assert(candidate.size() == required.size());
  double sum = 0.0;
  size_t terms = 0;
  for (size_t l = 0; l < required.size(); ++l) {
    if (required[l] > 0.0f) {
      sum += static_cast<double>(candidate[l]) /
             static_cast<double>(required[l]);
      ++terms;
    }
  }
  return terms == 0 ? 0.0 : sum / static_cast<double>(terms);
}

uint64_t HashSignature(std::span<const float> row) {
  // FNV-1a over 1/1024-quantized weights.
  uint64_t h = 0xcbf29ce484222325ULL;
  for (const float w : row) {
    const auto q = static_cast<int64_t>(std::llround(w * 1024.0f));
    uint64_t bits = static_cast<uint64_t>(q);
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (bits >> (byte * 8)) & 0xffULL;
      h *= 0x100000001b3ULL;
    }
  }
  return h;
}

}  // namespace psi::signature
