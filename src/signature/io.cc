#include "signature/io.h"

#include <cstring>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>

#include "util/fault_injection.h"

namespace psi::signature {

namespace {

constexpr char kMagic[4] = {'P', 'S', 'I', 'G'};
constexpr uint32_t kVersion = 1;

template <typename T>
void WriteScalar(std::ostream& out, T value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadScalar(std::istream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(in);
}

}  // namespace

void WriteSignatures(const SignatureMatrix& sigs, std::ostream& out) {
  out.write(kMagic, sizeof(kMagic));
  WriteScalar<uint32_t>(out, kVersion);
  WriteScalar<uint32_t>(out, static_cast<uint32_t>(sigs.method()));
  WriteScalar<uint32_t>(out, sigs.depth());
  WriteScalar<float>(out, sigs.decay());
  WriteScalar<uint64_t>(out, sigs.num_rows());
  WriteScalar<uint64_t>(out, sigs.num_labels());
  for (size_t r = 0; r < sigs.num_rows(); ++r) {
    const auto row = sigs.row(r);
    out.write(reinterpret_cast<const char*>(row.data()),
              static_cast<std::streamsize>(row.size() * sizeof(float)));
  }
}

util::Result<SignatureMatrix> ReadSignatures(std::istream& in) {
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return util::Status::InvalidArgument("not a PSIG signature file");
  }
  uint32_t version = 0;
  uint32_t method_raw = 0;
  uint32_t depth = 0;
  float decay = 0.0f;
  uint64_t num_rows = 0;
  uint64_t num_labels = 0;
  if (!ReadScalar(in, &version) || version != kVersion) {
    return util::Status::InvalidArgument("unsupported PSIG version");
  }
  if (!ReadScalar(in, &method_raw) || method_raw > 1) {
    return util::Status::InvalidArgument("bad method field");
  }
  if (!ReadScalar(in, &depth) || !ReadScalar(in, &decay) ||
      !ReadScalar(in, &num_rows) || !ReadScalar(in, &num_labels)) {
    return util::Status::InvalidArgument("truncated PSIG header");
  }
  if (decay <= 0.0f || decay > 1.0f) {
    return util::Status::InvalidArgument("decay out of range");
  }

  // A hostile or corrupted header could claim a payload of petabytes and
  // drive the allocation below out of memory before the payload check ever
  // runs. Reject dimensions whose payload cannot possibly fit: first by
  // arithmetic (overflow), then — on seekable streams — against the bytes
  // actually remaining.
  constexpr uint64_t kMaxElems =
      std::numeric_limits<uint64_t>::max() / sizeof(float);
  if (num_labels != 0 && num_rows > kMaxElems / num_labels) {
    return util::Status::InvalidArgument("PSIG dimensions overflow");
  }
  // Distinct from the uint64 overflow above: the matrix is *addressed*
  // through size_t, and on an ILP32 target a payload that fits uint64
  // arithmetic can still wrap the size_t multiply inside the
  // SignatureMatrix constructor. Reject anything size_t cannot address
  // before any allocation happens.
  if (num_rows * num_labels >
      std::numeric_limits<size_t>::max() / sizeof(float)) {
    return util::Status::InvalidArgument(
        "PSIG dimensions exceed addressable memory");
  }
  const uint64_t payload_bytes = num_rows * num_labels * sizeof(float);
  if (const std::streampos here = in.tellg(); here != std::streampos(-1)) {
    in.seekg(0, std::ios::end);
    const std::streampos end = in.tellg();
    in.seekg(here);
    if (end != std::streampos(-1) &&
        static_cast<uint64_t>(end - here) < payload_bytes) {
      return util::Status::InvalidArgument(
          "PSIG header claims more payload than the stream holds");
    }
  }

  SignatureMatrix sigs(num_rows, num_labels,
                       static_cast<Method>(method_raw), depth, decay);
  for (size_t r = 0; r < num_rows; ++r) {
    // Chaos hook: simulated short read mid-payload.
    if (PSI_INJECT_FAULT(util::faults::kSignatureIoShortRead)) {
      return util::Status::IoError("injected short read in PSIG payload");
    }
    auto row = sigs.row(r);
    in.read(reinterpret_cast<char*>(row.data()),
            static_cast<std::streamsize>(row.size() * sizeof(float)));
    if (!in) {
      return util::Status::InvalidArgument("truncated PSIG payload");
    }
  }
  return sigs;
}

util::Status SaveSignatureFile(const SignatureMatrix& sigs,
                               const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return util::Status::IoError("cannot open " + path);
  WriteSignatures(sigs, out);
  return out ? util::Status::Ok()
             : util::Status::IoError("write failed for " + path);
}

util::Result<SignatureMatrix> LoadSignatureFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return util::Status::IoError("cannot open " + path);
  return ReadSignatures(in);
}

}  // namespace psi::signature
