#ifndef SMARTPSI_SIGNATURE_BUILDERS_H_
#define SMARTPSI_SIGNATURE_BUILDERS_H_

#include <cstdint>

#include "graph/graph.h"
#include "graph/query_graph.h"
#include "signature/signature_matrix.h"
#include "util/thread_pool.h"

namespace psi::signature {

/// Default propagation depth D used throughout the paper's examples.
inline constexpr uint32_t kDefaultDepth = 2;

/// Exploration-based construction (paper §3.1 "Signature Computation"):
/// one bounded BFS per node; the weight of label l is
/// Σ_d 2^-d · C_u(l, d) with C_u(l, d) = #nodes labeled l at shortest
/// distance d <= depth. Complexity O(N·L·d^D).
///
/// `num_labels` must be >= the graph's num_labels(); pass a larger value to
/// build signatures in a shared label space (e.g., matching a data graph
/// whose label alphabet is bigger). `pool` parallelizes across nodes.
SignatureMatrix BuildExplorationSignatures(
    const graph::Graph& g, uint32_t depth, size_t num_labels,
    util::ThreadPool* pool = nullptr,
    float decay = SignatureMatrix::kDefaultDecay);

/// Matrix-based construction (the paper's optimization):
///   NS^0(n)  = one-hot(label(n))
///   NS^i(n)  = NS^{i-1}(n) + ½ · Σ_{m ∈ N(n)} NS^{i-1}(m)
/// Complexity O(N·L·d·D). Weights count depth-bounded walks rather than
/// shortest paths, so they dominate the exploration weights; Proposition 3.2
/// pruning remains sound because subgraph embeddings map walks to walks.
SignatureMatrix BuildMatrixSignatures(
    const graph::Graph& g, uint32_t depth, size_t num_labels,
    util::ThreadPool* pool = nullptr,
    float decay = SignatureMatrix::kDefaultDecay);

/// Query-graph versions of the two builders (same math over the small
/// adjacency structure). The query must be built in the same label space as
/// the data graph (`num_labels` columns).
SignatureMatrix BuildExplorationSignatures(
    const graph::QueryGraph& q, uint32_t depth, size_t num_labels,
    float decay = SignatureMatrix::kDefaultDecay);

SignatureMatrix BuildMatrixSignatures(
    const graph::QueryGraph& q, uint32_t depth, size_t num_labels,
    float decay = SignatureMatrix::kDefaultDecay);

/// Dispatches on `method`.
SignatureMatrix BuildSignatures(const graph::Graph& g, Method method,
                                uint32_t depth, size_t num_labels,
                                util::ThreadPool* pool = nullptr,
                                float decay = SignatureMatrix::kDefaultDecay);

SignatureMatrix BuildSignatures(const graph::QueryGraph& q, Method method,
                                uint32_t depth, size_t num_labels,
                                float decay = SignatureMatrix::kDefaultDecay);

}  // namespace psi::signature

#endif  // SMARTPSI_SIGNATURE_BUILDERS_H_
