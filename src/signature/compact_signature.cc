#include "signature/compact_signature.h"

namespace psi::signature {

CompactSignatureMatrix CompactSignatureMatrix::Build(
    const SignatureMatrix& sigs) {
  CompactSignatureMatrix m(sigs.num_rows(), sigs.num_labels());
  for (size_t i = 0; i < sigs.num_rows(); ++i) {
    const std::span<const float> src = sigs.row(i);
    uint8_t* dst = m.mutable_row(i);
    for (size_t l = 0; l < src.size(); ++l) dst[l] = QuantizeWeight(src[l]);
  }
  return m;
}

}  // namespace psi::signature
