// Explicit AVX2 row kernels, compiled with -mavx2 in this translation unit
// only (the rest of the library stays at the base ISA). kernels.cc calls
// these strictly behind a runtime __builtin_cpu_supports("avx2") check.
//
// Bit-identity with the scalar reference is a hard requirement (the search
// must visit candidates in exactly the same order): the satisfaction kernel
// performs the same float add + compare, and the score kernel performs the
// same exactly-rounded double divisions with the same left-to-right
// accumulation order — only the data movement is vectorized.

#include "signature/kernels.h"

#if defined(PSI_HAVE_AVX2_KERNELS)

#include <immintrin.h>

namespace psi::signature::internal {

bool RowSatisfiesAvx2(const float* row, const uint32_t* idx, const float* val,
                      size_t nnz) {
  const __m256 eps = _mm256_set1_ps(kSatisfactionEpsilon);
  size_t j = 0;
  for (; j + 8 <= nnz; j += 8) {
    const __m256i vi =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx + j));
    const __m256 cand = _mm256_i32gather_ps(row, vi, 4);
    const __m256 need = _mm256_loadu_ps(val + j);
    const __m256 fail =
        _mm256_cmp_ps(_mm256_add_ps(cand, eps), need, _CMP_LT_OQ);
    if (_mm256_movemask_ps(fail) != 0) return false;
  }
  for (; j < nnz; ++j) {
    if (row[idx[j]] + kSatisfactionEpsilon < val[j]) return false;
  }
  return true;
}

bool CompactRowMaySatisfyAvx2(const uint8_t* row, const uint8_t* tcodes,
                              size_t dim) {
  // Dense prescreen: both rows are contiguous bytes, so each iteration
  // tests 32 labels with two plain loads and an unsigned byte compare —
  // no gathers. max_epu8(r, t) == r  <=>  r >= t lane-wise.
  size_t l = 0;
  for (; l + 32 <= dim; l += 32) {
    const __m256i r =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row + l));
    const __m256i t =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(tcodes + l));
    const __m256i ge = _mm256_cmpeq_epi8(_mm256_max_epu8(r, t), r);
    if (_mm256_movemask_epi8(ge) != -1) return false;
  }
  if (l < dim) {
    // Tail: one full 32-byte load with the excess lanes masked out of the
    // verdict. Reads up to 31 bytes past each row's last code, which
    // kTailPadBytes guarantees are mapped (never used).
    const __m256i r =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row + l));
    const __m256i t =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(tcodes + l));
    const __m256i ge = _mm256_cmpeq_epi8(_mm256_max_epu8(r, t), r);
    const uint32_t live = (1u << (dim - l)) - 1;  // dim - l is in [1, 31]
    if ((static_cast<uint32_t>(_mm256_movemask_epi8(ge)) & live) != live) {
      return false;
    }
  }
  return true;
}

double RowScoreAvx2(const float* row, const uint32_t* idx, const double* val,
                    size_t nnz) {
  if (nnz == 0) return 0.0;
  alignas(32) double quot[8];
  double sum = 0.0;
  size_t j = 0;
  for (; j + 8 <= nnz; j += 8) {
    const __m256i vi =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx + j));
    const __m256 cand = _mm256_i32gather_ps(row, vi, 4);
    const __m256d lo = _mm256_cvtps_pd(_mm256_castps256_ps128(cand));
    const __m256d hi = _mm256_cvtps_pd(_mm256_extractf128_ps(cand, 1));
    _mm256_store_pd(quot, _mm256_div_pd(lo, _mm256_loadu_pd(val + j)));
    _mm256_store_pd(quot + 4, _mm256_div_pd(hi, _mm256_loadu_pd(val + j + 4)));
    for (int t = 0; t < 8; ++t) sum += quot[t];
  }
  for (; j < nnz; ++j) {
    sum += static_cast<double>(row[idx[j]]) / val[j];
  }
  return sum / static_cast<double>(nnz);
}

}  // namespace psi::signature::internal

#endif  // PSI_HAVE_AVX2_KERNELS
