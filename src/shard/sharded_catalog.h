#ifndef SMARTPSI_SHARD_SHARDED_CATALOG_H_
#define SMARTPSI_SHARD_SHARDED_CATALOG_H_

// Versioned sharded-generation catalog (DESIGN.md §13).
//
// A *generation* is the unit of atomicity: the K per-shard GraphSnapshots
// produced by one partitioning of one graph, published together or not at
// all. Each generation carries one generation id plus K shard snapshot
// versions reserved from the same catalog-global sequence, so every shard
// snapshot keeps the version-derived cache salt the prediction cache
// relies on, while the generation id stamps responses. Requests pin the
// whole generation at admission (ShardedGenerationPin) — a request can
// never observe shard 0 of one generation and shard 1 of another, no
// matter how publishes interleave with it.
//
// The `catalog.shard_publish` fault site fires per shard during the
// materialization loop; an abort anywhere — including after some shards
// were already built — installs nothing: the previous generation keeps
// serving and no torn generation is ever visible to Resolve/Pin.

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "service/catalog.h"
#include "shard/partitioner.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace psi::shard {

/// The partition-level lookup tables of a generation — everything the
/// cross-shard evaluator needs beyond the shard snapshots themselves.
/// Immutable after construction.
struct ShardedMeta {
  ShardAssignment assignment;
  std::vector<ShardLayout> layouts;
  std::vector<graph::NodeId> local_in_owner;
  std::vector<uint64_t> label_counts;
  size_t num_nodes = 0;
  size_t num_edges = 0;
  size_t num_labels = 0;
};

// Declared in cross_shard.h; a generation can hand out a ShardedView
// without forcing every catalog user to include the evaluator.
struct ShardedView;

/// One atomically published K-shard generation: the shard snapshots (each
/// an ordinary GraphSnapshot named "<name>/shard<k>" with its own version
/// and cache salt) plus the shared partition metadata. Immutable and
/// shared_ptr-pinned exactly like GraphSnapshot.
class ShardedGeneration {
 public:
  ShardedGeneration(std::string name, uint64_t generation, ShardedMeta meta,
                    std::vector<std::shared_ptr<const service::GraphSnapshot>>
                        shard_snapshots)
      : name_(std::move(name)),
        generation_(generation),
        meta_(std::move(meta)),
        shards_(std::move(shard_snapshots)) {}

  ShardedGeneration(const ShardedGeneration&) = delete;
  ShardedGeneration& operator=(const ShardedGeneration&) = delete;

  const std::string& name() const { return name_; }

  /// Generation id: reserved from the same sequence as the shard snapshot
  /// versions (generation < every shard version < next publish), so it
  /// identifies one publish uniquely across names — the stamp sharded
  /// responses report.
  uint64_t generation() const { return generation_; }

  size_t num_shards() const { return shards_.size(); }
  const service::GraphSnapshot& shard(size_t k) const { return *shards_[k]; }
  const std::shared_ptr<const service::GraphSnapshot>& shard_ptr(
      size_t k) const {
    return shards_[k];
  }
  const ShardedMeta& meta() const { return meta_; }

  /// Evaluator view over this generation (borrows, does not copy).
  ShardedView View() const;

  /// Pin gauge maintenance: a generation pin counts once on every shard
  /// snapshot, so the per-snapshot gauges in List() reflect sharded
  /// traffic too.
  void Pin() const {
    for (const auto& s : shards_) s->Pin();
  }
  void Unpin() const {
    for (const auto& s : shards_) s->Unpin();
  }
  uint64_t pins() const { return shards_.empty() ? 0 : shards_[0]->pins(); }

 private:
  const std::string name_;
  const uint64_t generation_;
  const ShardedMeta meta_;
  const std::vector<std::shared_ptr<const service::GraphSnapshot>> shards_;
};

/// RAII generation pin — the sharded analogue of SnapshotPin. Holding one
/// keeps every shard snapshot of the generation alive and counted.
class ShardedGenerationPin {
 public:
  ShardedGenerationPin() = default;
  explicit ShardedGenerationPin(
      std::shared_ptr<const ShardedGeneration> generation)
      : generation_(std::move(generation)) {
    if (generation_ != nullptr) generation_->Pin();
  }
  ~ShardedGenerationPin() {
    if (generation_ != nullptr) generation_->Unpin();
  }

  ShardedGenerationPin(ShardedGenerationPin&& other) noexcept
      : generation_(std::move(other.generation_)) {
    other.generation_.reset();
  }
  ShardedGenerationPin& operator=(ShardedGenerationPin&& other) noexcept {
    if (this != &other) {
      if (generation_ != nullptr) generation_->Unpin();
      generation_ = std::move(other.generation_);
      other.generation_.reset();
    }
    return *this;
  }
  ShardedGenerationPin(const ShardedGenerationPin&) = delete;
  ShardedGenerationPin& operator=(const ShardedGenerationPin&) = delete;

  explicit operator bool() const { return generation_ != nullptr; }
  const ShardedGeneration& operator*() const { return *generation_; }
  const ShardedGeneration* operator->() const { return generation_.get(); }

  /// Shares the generation (for handing to fan-out subtasks) without
  /// touching the gauge — the pin itself stays the counted reference.
  std::shared_ptr<const ShardedGeneration> shared() const {
    return generation_;
  }

 private:
  std::shared_ptr<const ShardedGeneration> generation_;
};

/// Name → current-generation map with atomic K-shard publish, built on the
/// same locking discipline as GraphCatalog (one leaf mutex, held only for
/// pointer swaps and list copies — never across a build or fault hook).
/// Thread-safe: all methods may be called concurrently.
class ShardedCatalog {
 public:
  struct BuildOptions {
    service::SnapshotBuildOptions snapshot;
    PartitionOptions partition;
  };

  struct Counters {
    uint64_t published = 0;  // generations installed
    uint64_t swaps = 0;      // generations that replaced a current name
    uint64_t retired = 0;
    /// Publishes aborted by the `catalog.shard_publish` fault site (the
    /// whole generation rolled back, nothing installed).
    uint64_t publish_failures = 0;
  };

  ShardedCatalog() = default;
  ShardedCatalog(const ShardedCatalog&) = delete;
  ShardedCatalog& operator=(const ShardedCatalog&) = delete;

  /// Builds the global signature matrix for `g`, partitions it into
  /// options.partition.num_shards shards (deterministically), materializes
  /// the K shard snapshots, and installs them as one generation under
  /// `name` in a single critical section. Everything before the install
  /// runs outside the lock. When the `catalog.shard_publish` fault site
  /// fires for any shard, the publish fails without touching the published
  /// state — the previous generation (if any) keeps serving.
  ///
  /// Version numbers (generation id + K shard versions) are reserved up
  /// front, so an aborted publish leaves a gap in the sequence; versions
  /// remain unique and monotonic either way.
  util::Result<std::shared_ptr<const ShardedGeneration>> BuildAndPublish(
      std::string name, graph::Graph g, BuildOptions options = BuildOptions());

  /// BuildAndPublish on a detached thread (serial build — never hand a
  /// serving pool to a background build; see GraphCatalog note).
  std::future<util::Result<std::shared_ptr<const ShardedGeneration>>>
  BuildAndPublishAsync(std::string name, graph::Graph g,
                       BuildOptions options = BuildOptions());

  std::shared_ptr<const ShardedGeneration> Resolve(std::string_view name) const;

  /// Resolve + pin the whole generation in one step — what sharded
  /// admission calls. Empty pin = unknown name (kNotFound).
  ShardedGenerationPin Pin(std::string_view name) const;

  bool Contains(std::string_view name) const;

  bool Retire(std::string_view name);

  /// Per-shard-snapshot rows ("<name>/shard<k>"), current generations
  /// first-class and retired generations while pins keep them alive —
  /// the same shape psi_serve's `!list` already prints for flat catalogs.
  std::vector<service::CatalogEntry> List() const;

  Counters counters() const;

  /// Number of current (published, un-retired) names.
  size_t size() const;

 private:
  mutable util::Mutex mutex_;
  std::vector<std::pair<std::string, std::shared_ptr<const ShardedGeneration>>>
      current_ PSI_GUARDED_BY(mutex_);
  mutable std::vector<std::weak_ptr<const ShardedGeneration>> retired_
      PSI_GUARDED_BY(mutex_);
  Counters counters_ PSI_GUARDED_BY(mutex_);
  /// Next version to reserve. One publish consumes 1 (generation id) + K
  /// (shard snapshots) consecutive values.
  uint64_t next_version_ PSI_GUARDED_BY(mutex_) = 1;
};

}  // namespace psi::shard

#endif  // SMARTPSI_SHARD_SHARDED_CATALOG_H_
