#include "shard/partitioner.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <limits>
#include <memory>
#include <numeric>

#include "graph/graph_builder.h"
#include "signature/compact_signature.h"

namespace psi::shard {

double ShardAssignment::BalanceFactor() const {
  if (owner.empty() || num_shards == 0) return 0.0;
  const size_t max_owned =
      *std::max_element(owned_counts.begin(), owned_counts.end());
  const double ideal =
      static_cast<double>(owner.size()) / static_cast<double>(num_shards);
  return static_cast<double>(max_owned) / ideal;
}

GraphPartitioner::GraphPartitioner(PartitionOptions options)
    : options_(options) {
  if (options_.num_shards == 0) options_.num_shards = 1;
  if (options_.balance_factor < 1.0) options_.balance_factor = 1.0;
}

ShardAssignment GraphPartitioner::Partition(const graph::Graph& g) const {
  const size_t n = g.num_nodes();
  const uint32_t k = options_.num_shards;
  ShardAssignment assignment;
  assignment.num_shards = k;
  assignment.owner.assign(n, 0);
  assignment.owned_counts.assign(k, 0);
  if (n == 0 || k == 1) {
    assignment.owned_counts.assign(k, 0);
    if (k == 1) assignment.owned_counts[0] = n;
    return assignment;
  }

  // Hard capacity cap. cap >= ceil(N/K) keeps K*cap >= N (placement can
  // never wedge), and cap <= max(ceil(N/K), floor(1.2*N/K)) bounds the
  // balance factor at 1.2 whenever N/K is large enough that the floor
  // dominates the ceiling (N/K >= 5 at the default factor).
  const double ideal = static_cast<double>(n) / static_cast<double>(k);
  const size_t cap = std::max<size_t>(
      static_cast<size_t>(std::ceil(ideal)),
      static_cast<size_t>(std::floor(options_.balance_factor * ideal)));

  // Placement order: degree descending, id ascending. High-degree hubs are
  // placed while every shard still has headroom, so their neighborhoods
  // can co-locate; the id tie-break makes the order (and hence the whole
  // partition) deterministic.
  std::vector<graph::NodeId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&g](graph::NodeId a, graph::NodeId b) {
              const size_t da = g.degree(a);
              const size_t db = g.degree(b);
              return da != db ? da > db : a < b;
            });

  const size_t num_labels = g.num_labels();
  // label_on_shard[s * num_labels + l] = vertices labeled l owned by s.
  std::vector<uint32_t> label_on_shard(
      static_cast<size_t>(k) * std::max<size_t>(1, num_labels), 0);
  std::vector<bool> placed(n, false);
  std::vector<uint32_t> neighbor_hits(k, 0);

  const double expected_label_per_shard_inv =
      static_cast<double>(k) / std::max<double>(1.0, static_cast<double>(n));

  for (const graph::NodeId v : order) {
    std::fill(neighbor_hits.begin(), neighbor_hits.end(), 0);
    for (const graph::NodeId w : g.neighbors(v)) {
      if (placed[w]) ++neighbor_hits[assignment.owner[w]];
    }
    const graph::Label label = g.label(v);
    uint32_t best = 0;
    double best_score = -std::numeric_limits<double>::infinity();
    for (uint32_t s = 0; s < k; ++s) {
      const size_t owned = assignment.owned_counts[s];
      if (owned >= cap) continue;
      // Edge affinity (cut minimization) discounted by fill, as in LDG;
      // the label term spreads each label class across shards so pivot
      // buckets stay balanced; the size term breaks affinity-free ties
      // toward the emptiest shard.
      const double fill = static_cast<double>(owned) / static_cast<double>(cap);
      double score = static_cast<double>(neighbor_hits[s]) * (1.0 - fill);
      score -= options_.size_balance_weight * fill;
      if (num_labels > 0) {
        const double label_fill =
            static_cast<double>(label_on_shard[static_cast<size_t>(s) *
                                                   num_labels +
                                               label]) *
            expected_label_per_shard_inv;
        score -= options_.label_balance_weight * label_fill;
      }
      if (score > best_score) {
        best_score = score;
        best = s;
      }
    }
    assignment.owner[v] = best;
    ++assignment.owned_counts[best];
    if (num_labels > 0) {
      ++label_on_shard[static_cast<size_t>(best) * num_labels + label];
    }
    placed[v] = true;
  }
  return assignment;
}

PartitionedGraph BuildPartitionedGraph(
    const graph::Graph& g, const signature::SignatureMatrix& global_sigs,
    const ShardAssignment& assignment) {
  assert(global_sigs.num_rows() == g.num_nodes());
  assert(assignment.owner.size() == g.num_nodes());
  const size_t n = g.num_nodes();
  const uint32_t k = std::max<uint32_t>(1, assignment.num_shards);

  PartitionedGraph out;
  out.assignment = assignment;
  out.assignment.num_shards = k;
  out.num_nodes = n;
  out.num_edges = g.num_edges();
  out.num_labels = g.num_labels();
  out.label_counts.assign(out.num_labels, 0);
  for (graph::Label l = 0; l < out.num_labels; ++l) {
    out.label_counts[l] = g.label_frequency(l);
  }
  out.local_in_owner.assign(n, graph::kInvalidNode);
  out.parts.resize(k);

  // Owned vertices per shard, ascending global id (vertex ids are dense,
  // so one linear sweep produces sorted owned lists).
  for (graph::NodeId v = 0; v < n; ++v) {
    ShardPart& part = out.parts[out.assignment.owner[v]];
    const graph::NodeId local =
        static_cast<graph::NodeId>(part.layout.local_to_global.size());
    part.layout.local_to_global.push_back(v);
    part.layout.global_to_local.emplace(v, local);
    out.local_in_owner[v] = local;
  }

  for (uint32_t s = 0; s < k; ++s) {
    ShardPart& part = out.parts[s];
    ShardLayout& layout = part.layout;
    layout.shard = s;
    layout.num_owned = layout.local_to_global.size();

    // Ghosts: remote-owned neighbors of owned vertices, ascending global
    // id. Owned lists are ascending and neighbors(u) is sorted, but the
    // union across owned vertices is not — collect, sort, dedupe.
    std::vector<graph::NodeId> ghosts;
    for (size_t i = 0; i < layout.num_owned; ++i) {
      const graph::NodeId u = layout.local_to_global[i];
      bool boundary = false;
      for (const graph::NodeId w : g.neighbors(u)) {
        if (out.assignment.owner[w] != s) {
          boundary = true;
          ghosts.push_back(w);
        }
      }
      if (boundary) ++layout.num_boundary_owned;
    }
    std::sort(ghosts.begin(), ghosts.end());
    ghosts.erase(std::unique(ghosts.begin(), ghosts.end()), ghosts.end());
    for (const graph::NodeId w : ghosts) {
      const graph::NodeId local =
          static_cast<graph::NodeId>(layout.local_to_global.size());
      layout.local_to_global.push_back(w);
      layout.global_to_local.emplace(w, local);
    }

    // Subgraph CSR: every edge incident to an owned vertex, exactly once.
    // An owned-owned edge is seen from both endpoints (u < w guard); an
    // owned-ghost edge only from the owned side.
    graph::GraphBuilder builder;
    const size_t num_local = layout.local_to_global.size();
    builder.Reserve(num_local, 0);
    for (size_t i = 0; i < num_local; ++i) {
      builder.AddNode(g.label(layout.local_to_global[i]));
    }
    for (size_t i = 0; i < layout.num_owned; ++i) {
      const graph::NodeId u = layout.local_to_global[i];
      const auto nbrs = g.neighbors(u);
      const auto edge_labels = g.edge_labels(u);
      for (size_t e = 0; e < nbrs.size(); ++e) {
        const graph::NodeId w = nbrs[e];
        if (out.assignment.owner[w] == s && w < u) continue;  // added from w
        builder.AddEdge(static_cast<graph::NodeId>(i),
                        layout.global_to_local.at(w), edge_labels[e]);
      }
    }
    part.subgraph = std::move(builder).Build();

    // Signature rows sliced from the global matrix (see the header for why
    // rebuilding from the subgraph would be unsound).
    part.sigs = signature::SignatureMatrix(
        num_local, global_sigs.num_labels(), global_sigs.method(),
        global_sigs.depth(), global_sigs.decay());
    for (size_t i = 0; i < num_local; ++i) {
      const auto src = global_sigs.row(layout.local_to_global[i]);
      std::memcpy(part.sigs.row(i).data(), src.data(),
                  src.size() * sizeof(float));
    }

    // Compact codes follow the same slice-never-rebuild rule. Copying the
    // global rows is bit-identical to re-quantizing the sliced floats
    // (QuantizeWeight is a deterministic per-element map), so per-shard
    // prescreen decisions match the global matrix exactly.
    if (const signature::CompactSignatureMatrix* global_compact =
            global_sigs.compact();
        global_compact != nullptr) {
      auto compact = std::make_unique<signature::CompactSignatureMatrix>(
          num_local, global_sigs.num_labels());
      for (size_t i = 0; i < num_local; ++i) {
        const auto src = global_compact->row(layout.local_to_global[i]);
        std::memcpy(compact->mutable_row(i), src.data(), src.size());
      }
      part.sigs.AttachCompact(std::move(compact));
    }
  }
  return out;
}

}  // namespace psi::shard
