#include "shard/cross_shard.h"

#include <algorithm>
#include <cassert>
#include <climits>

#include "signature/builders.h"

namespace psi::shard {

ShardedView ShardedView::Of(const PartitionedGraph& pg) {
  ShardedView v;
  v.shards.reserve(pg.parts.size());
  for (const ShardPart& part : pg.parts) {
    v.shards.push_back({&part.subgraph, &part.sigs, &part.layout});
  }
  v.owner = &pg.assignment.owner;
  v.local_in_owner = &pg.local_in_owner;
  v.label_counts = &pg.label_counts;
  v.num_labels = pg.num_labels;
  return v;
}

CrossShardEvaluator::CrossShardEvaluator(ShardedView view)
    : view_(std::move(view)) {
  assert(!view_.shards.empty());
}

void CrossShardEvaluator::BindQuery(const graph::QueryGraph& q) {
  if (query_ == &q) return;
  query_ = &q;

  const signature::SignatureMatrix& ref = *view_.shards[0].sigs;
  query_sigs_ = signature::BuildSignatures(q, ref.method(), ref.depth(),
                                           ref.num_labels(), ref.decay());

  // DFS preorder from the pivot, neighbors in insertion order: every
  // non-root level's DFS parent precedes it, so the plan is connected —
  // the same invariant the heuristic plans guarantee. Disconnected queries
  // are out of contract here exactly as they are for the unsharded plans.
  const size_t n = q.num_nodes();
  order_.clear();
  order_.reserve(n);
  std::vector<bool> visited(n, false);
  std::vector<graph::NodeId> stack;
  stack.push_back(q.pivot());
  visited[q.pivot()] = true;
  while (!stack.empty()) {
    const graph::NodeId v = stack.back();
    stack.pop_back();
    order_.push_back(v);
    const auto& nbrs = q.neighbors(v);
    for (auto it = nbrs.rbegin(); it != nbrs.rend(); ++it) {
      if (!visited[it->first]) {
        visited[it->first] = true;
        stack.push_back(it->first);
      }
    }
  }
  assert(order_.size() == n && "queries must be connected");

  plan_position_.resize(n);
  for (size_t i = 0; i < order_.size(); ++i) plan_position_[order_[i]] = i;

  backward_flat_.clear();
  backward_offsets_.resize(order_.size() + 1);
  backward_offsets_[0] = 0;
  for (size_t level = 0; level < order_.size(); ++level) {
    if (level > 0) {
      const graph::NodeId v = order_[level];
      for (const auto& [nbr, edge_label] : q.neighbors(v)) {
        if (plan_position_[nbr] < level) {
          backward_flat_.push_back({nbr, edge_label});
        }
      }
    }
    backward_offsets_[level + 1] = static_cast<uint32_t>(backward_flat_.size());
  }

  mapping_.assign(n, graph::kInvalidNode);
  mapped_stack_.assign(n, graph::kInvalidNode);
  level_candidates_.resize(n);
  gen_shard_.assign(n, 0);
  level_reqs_.resize(n);
  for (size_t level = 0; level < order_.size(); ++level) {
    level_reqs_[level].Assign(query_sigs_.row(order_[level]));
  }
}

void CrossShardEvaluator::ExtractOwnedPivotCandidates(
    uint32_t shard, std::vector<graph::NodeId>& out) const {
  out.clear();
  const graph::QueryGraph& q = *query_;
  const graph::Graph& g = *view_.shards[shard].subgraph;
  const size_t num_owned = view_.shards[shard].layout->num_owned;
  const graph::NodeId pivot = q.pivot();
  const graph::Label label = q.label(pivot);
  // Shard CSRs may compact the label space (a shard can miss the highest
  // global labels entirely); the bounds-guarded accessors make both label
  // checks below read as "absent from this shard".
  if (label >= g.num_labels()) return;
  const size_t min_degree = q.degree(pivot);

  // Same (edge label, neighbor label) multiset pre-check as the unsharded
  // ExtractPivotCandidates. It is sound against the shard CSR because an
  // owned vertex carries its complete adjacency (ghosts included), so a
  // demanded neighbor label with zero shard frequency rules out every
  // *owned* candidate — other shards handle their own.
  struct EdgeRequirement {
    graph::Label edge_label;
    graph::Label node_label;
    uint32_t count;
  };
  std::vector<EdgeRequirement> required;
  required.reserve(q.degree(pivot));
  for (const auto& [nbr, edge_label] : q.neighbors(pivot)) {
    const graph::Label nbr_label = q.label(nbr);
    if (nbr_label >= g.num_labels() || g.label_frequency(nbr_label) == 0) {
      return;
    }
    bool merged = false;
    for (EdgeRequirement& r : required) {
      if (r.edge_label == edge_label && r.node_label == nbr_label) {
        ++r.count;
        merged = true;
        break;
      }
    }
    if (!merged) required.push_back({edge_label, nbr_label, 1});
  }

  // The label bucket is sorted by local id and owned locals precede ghosts,
  // so the owned prefix comes out in ascending global order — which keeps
  // per-shard valid_nodes sorted without a final sort.
  const auto bucket = g.nodes_with_label(label);
  std::vector<uint32_t> remaining(required.size());
  for (const graph::NodeId u : bucket) {
    if (u >= num_owned) break;  // ghosts: another shard owns them
    if (g.degree(u) < min_degree) continue;
    size_t unmet = required.size();
    for (size_t r = 0; r < required.size(); ++r) {
      remaining[r] = required[r].count;
    }
    const auto nbrs = g.neighbors(u);
    const auto edge_labels = g.edge_labels(u);
    for (size_t i = 0; i < nbrs.size() && unmet > 0; ++i) {
      const graph::Label nbr_label = g.label(nbrs[i]);
      for (size_t r = 0; r < required.size(); ++r) {
        if (remaining[r] > 0 && edge_labels[i] == required[r].edge_label &&
            nbr_label == required[r].node_label) {
          if (--remaining[r] == 0) --unmet;
          break;
        }
      }
    }
    if (unmet == 0) out.push_back(u);
  }
}

bool CrossShardEvaluator::IsUsed(graph::NodeId global, size_t level) const {
  for (size_t i = 0; i < level; ++i) {
    if (mapped_stack_[i] == global) return true;
  }
  return false;
}

bool CrossShardEvaluator::ShouldAbort(const Options& options,
                                      Outcome* outcome) {
  if (--steps_until_check_ != 0) return false;
  steps_until_check_ = kCheckInterval;
  if (options.stop.StopRequested()) {
    *outcome = Outcome::kStopped;
    return true;
  }
  if (options.deadline.Expired()) {
    *outcome = Outcome::kTimeout;
    return true;
  }
  return false;
}

bool CrossShardEvaluator::VerifyOnOwner(graph::NodeId candidate, size_t level,
                                        size_t anchor_index) const {
  const uint32_t o = (*view_.owner)[candidate];
  const ShardRef& owner = view_.shards[o];
  const graph::NodeId oc = (*view_.local_in_owner)[candidate];
  if (owner.subgraph->degree(oc) < query_->degree(order_[level])) return false;

  const BackwardNeighbor* anchors =
      backward_flat_.data() + backward_offsets_[level];
  const size_t num_anchors =
      backward_offsets_[level + 1] - backward_offsets_[level];
  for (size_t a = 0; a < num_anchors; ++a) {
    if (a == anchor_index) continue;
    const graph::NodeId w = mapping_[anchors[a].query_node];
    // `candidate` is owned by o, so every edge incident to it is in o's
    // CSR and the far endpoint is replicated there; w absent from o means
    // the edge does not exist.
    const graph::NodeId wl = owner.layout->LocalId(w);
    if (wl == graph::kInvalidNode) return false;
    const auto edge_label = owner.subgraph->EdgeLabelBetween(oc, wl);
    if (!edge_label.has_value() || *edge_label != anchors[a].edge_label) {
      return false;
    }
  }
  return true;
}

CrossShardEvaluator::Outcome CrossShardEvaluator::Search(
    size_t level, uint32_t executing_shard, Mode mode, const Options& options,
    ShardResult* result) {
  Outcome abort_outcome;
  if (ShouldAbort(options, &abort_outcome)) return abort_outcome;
  if (level == order_.size()) return Outcome::kValid;

  const graph::NodeId v = order_[level];
  const BackwardNeighbor* anchors =
      backward_flat_.data() + backward_offsets_[level];
  const size_t num_anchors =
      backward_offsets_[level + 1] - backward_offsets_[level];
  assert(num_anchors > 0 && "plans must be connected");

  // Anchor on the mapped neighbor whose image has the smallest true
  // degree; its owner shard's adjacency is the cheapest complete superset
  // of the candidate set.
  size_t anchor_index = 0;
  size_t anchor_degree = SIZE_MAX;
  for (size_t i = 0; i < num_anchors; ++i) {
    const size_t deg = OwnerDegree(mapping_[anchors[i].query_node]);
    if (deg < anchor_degree) {
      anchor_degree = deg;
      anchor_index = i;
    }
  }
  const BackwardNeighbor anchor = anchors[anchor_index];
  const graph::NodeId anchor_image = mapping_[anchor.query_node];

  // Candidate generation runs on the shard that OWNS the anchor image
  // (only there is its adjacency complete). Landing on a different shard
  // than the one that executed the previous level is a delegated
  // continuation — the in-process analogue of forwarding the partial
  // match to that shard's queue.
  const uint32_t gen = (*view_.owner)[anchor_image];
  if (gen != executing_shard) ++result->forwards;
  const ShardRef& t = view_.shards[gen];
  const graph::NodeId anchor_local = (*view_.local_in_owner)[anchor_image];

  const graph::Label want_label = query_->label(v);

  auto& candidates = level_candidates_[level];
  candidates.clear();
  gen_shard_[level] = gen;

  const auto nbrs = t.subgraph->neighbors(anchor_local);
  const auto edge_labels = t.subgraph->edge_labels(anchor_local);
  for (size_t i = 0; i < nbrs.size(); ++i) {
    const graph::NodeId c = nbrs[i];
    if (edge_labels[i] != anchor.edge_label) continue;
    if (t.subgraph->label(c) != want_label) continue;
    const graph::NodeId c_global = t.layout->local_to_global[c];
    if (IsUsed(c_global, level)) continue;
    // Degree and remaining-backward-edge verification consult the
    // candidate's owner (a ghost's local adjacency is partial). When the
    // owner is a different shard, that consult is a delegated
    // verification hop.
    if ((*view_.owner)[c_global] != gen) ++result->forwards;
    if (!VerifyOnOwner(c_global, level, anchor_index)) continue;
    candidates.push_back(c);
  }

  const signature::SparseRequirement& req = level_reqs_[level];
  if (mode == Mode::kPessimistic) {
    signature::FilterCandidates(*t.sigs, req, candidates);
  } else {
    const bool capped = mode == Mode::kSuperOptimistic;
    const size_t limit = capped ? options.super_optimistic_limit : SIZE_MAX;
    const size_t effective = std::min(candidates.size(), limit);
    if (effective > 1) {
      signature::ScoreAndRank(*t.sigs, req, candidates, rank_,
                              capped ? limit : 0,
                              capped ? signature::RankMode::kCapFirst
                                     : signature::RankMode::kFull);
    } else if (candidates.size() > effective) {
      candidates.resize(effective);
    }
  }

  for (size_t idx = 0; idx < candidates.size(); ++idx) {
    const graph::NodeId c_global = t.layout->local_to_global[candidates[idx]];
    mapping_[v] = c_global;
    mapped_stack_[level] = c_global;
    const Outcome outcome = Search(level + 1, gen, mode, options, result);
    mapping_[v] = graph::kInvalidNode;
    mapped_stack_[level] = graph::kInvalidNode;
    if (outcome != Outcome::kInvalid) return outcome;
  }
  return Outcome::kInvalid;
}

CrossShardEvaluator::Outcome CrossShardEvaluator::EvaluateCandidate(
    uint32_t shard, graph::NodeId local_candidate, Mode mode,
    const Options& options, ShardResult* result) {
  const graph::NodeId global =
      view_.shards[shard].layout->local_to_global[local_candidate];
  const graph::NodeId pivot = query_->pivot();
  mapping_[pivot] = global;
  mapped_stack_[0] = global;
  const Outcome outcome = Search(1, shard, mode, options, result);
  mapping_[pivot] = graph::kInvalidNode;
  mapped_stack_[0] = graph::kInvalidNode;
  return outcome;
}

CrossShardEvaluator::ShardResult CrossShardEvaluator::EvaluateShard(
    uint32_t shard, const graph::QueryGraph& q, const Options& options) {
  ShardResult result;
  assert(shard < view_.shards.size());
  if (q.num_nodes() == 0 || !q.has_pivot()) return result;

  // Feasibility is a GLOBAL question: a label absent from this shard may
  // still occur on another, so only the whole-graph counts may rule a
  // query infeasible (the per-shard answer must stay empty-but-complete
  // either way, matching the unsharded PrepareQuery decision).
  for (graph::NodeId v = 0; v < q.num_nodes(); ++v) {
    const graph::Label label = q.label(v);
    if (label >= view_.num_labels || (*view_.label_counts)[label] == 0) {
      return result;
    }
  }

  BindQuery(q);

  std::vector<graph::NodeId> pivot_locals;
  ExtractOwnedPivotCandidates(shard, pivot_locals);
  result.num_candidates = pivot_locals.size();
  if (pivot_locals.empty()) return result;

  const bool prefilter = options.method == service::Method::kPessimistic ||
                         options.method == service::Method::kSmart;
  if (prefilter) {
    signature::FilterCandidates(*view_.shards[shard].sigs, level_reqs_[0],
                                pivot_locals);
  }

  const ShardLayout& layout = *view_.shards[shard].layout;
  for (const graph::NodeId lc : pivot_locals) {
    if (options.deadline.Expired() || options.stop.StopRequested()) {
      result.complete = false;
      break;
    }
    Outcome outcome;
    if (options.method == service::Method::kPessimistic) {
      outcome =
          EvaluateCandidate(shard, lc, Mode::kPessimistic, options, &result);
    } else {
      // Optimistic strategy (also the smart engine's execution shape once
      // its pessimist prefilter ran): a super-optimistic truncated pass
      // first; kInvalid there is inconclusive, so rerun in full.
      outcome = EvaluateCandidate(shard, lc, Mode::kSuperOptimistic, options,
                                  &result);
      if (outcome == Outcome::kInvalid) {
        outcome =
            EvaluateCandidate(shard, lc, Mode::kOptimistic, options, &result);
      }
    }
    if (outcome == Outcome::kValid) {
      result.valid_nodes.push_back(layout.local_to_global[lc]);
    } else if (outcome == Outcome::kTimeout || outcome == Outcome::kStopped) {
      result.complete = false;
      break;
    }
  }
  return result;
}

CrossShardEvaluator::ShardResult CrossShardEvaluator::Evaluate(
    const graph::QueryGraph& q, const Options& options) {
  ShardResult merged;
  for (uint32_t s = 0; s < view_.shards.size(); ++s) {
    ShardResult r = EvaluateShard(s, q, options);
    merged.valid_nodes.insert(merged.valid_nodes.end(), r.valid_nodes.begin(),
                              r.valid_nodes.end());
    merged.num_candidates += r.num_candidates;
    merged.forwards += r.forwards;
    merged.complete = merged.complete && r.complete;
  }
  std::sort(merged.valid_nodes.begin(), merged.valid_nodes.end());
  return merged;
}

}  // namespace psi::shard
