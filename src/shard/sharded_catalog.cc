#include "shard/sharded_catalog.h"

#include <algorithm>
#include <cassert>

#include "shard/cross_shard.h"
#include "signature/builders.h"
#include "util/fault_injection.h"
#include "util/timer.h"

namespace psi::shard {

ShardedView ShardedGeneration::View() const {
  ShardedView v;
  v.shards.reserve(shards_.size());
  for (size_t k = 0; k < shards_.size(); ++k) {
    v.shards.push_back({&shards_[k]->graph(), &shards_[k]->signatures(),
                        &meta_.layouts[k]});
  }
  v.owner = &meta_.assignment.owner;
  v.local_in_owner = &meta_.local_in_owner;
  v.label_counts = &meta_.label_counts;
  v.num_labels = meta_.num_labels;
  return v;
}

util::Result<std::shared_ptr<const ShardedGeneration>>
ShardedCatalog::BuildAndPublish(std::string name, graph::Graph g,
                                BuildOptions options) {
  if (name.empty()) {
    return util::Status::InvalidArgument("generation name must be non-empty");
  }
  const uint32_t k = std::max<uint32_t>(1, options.partition.num_shards);
  options.partition.num_shards = k;

  // Phase 1 (outside the lock): global signatures, partition, shard
  // materialization. The global matrix is built first because shard rows
  // must be sliced from it — see partitioner.h for the soundness argument.
  service::SnapshotTimings timings;
  util::WallTimer build_timer;
  signature::SignatureMatrix global_sigs = signature::BuildSignatures(
      g, options.snapshot.signature_method, options.snapshot.signature_depth,
      g.num_labels(), options.snapshot.pool, options.snapshot.signature_decay);
  timings.signature_build_seconds = build_timer.Seconds();

  const GraphPartitioner partitioner(options.partition);
  PartitionedGraph partitioned =
      BuildPartitionedGraph(g, global_sigs, partitioner.Partition(g));

  // Phase 2: reserve the version block. The generation id and the K shard
  // versions come from one consecutive reservation so a version number
  // still identifies a unique publish; an abort below leaves a gap in the
  // sequence, never a reuse.
  uint64_t base;
  {
    util::MutexLock lock(mutex_);
    base = next_version_;
    next_version_ += 1 + static_cast<uint64_t>(k);
  }

  // Phase 3: wrap each shard in a GraphSnapshot. The fault site fires per
  // shard, so an injected `nth` failure aborts MID-generation — after some
  // snapshots exist — which is exactly the torn state the atomic install
  // below must make unobservable: on abort nothing is installed and the
  // previous generation keeps serving.
  ShardedMeta meta;
  meta.assignment = std::move(partitioned.assignment);
  meta.local_in_owner = std::move(partitioned.local_in_owner);
  meta.label_counts = std::move(partitioned.label_counts);
  meta.num_nodes = partitioned.num_nodes;
  meta.num_edges = partitioned.num_edges;
  meta.num_labels = partitioned.num_labels;
  meta.layouts.reserve(k);
  std::vector<std::shared_ptr<const service::GraphSnapshot>> snapshots;
  snapshots.reserve(k);
  for (uint32_t s = 0; s < k; ++s) {
    if (PSI_INJECT_FAULT(util::faults::kCatalogShardPublish)) {
      util::MutexLock lock(mutex_);
      ++counters_.publish_failures;
      return util::Status::FailedPrecondition(
          "injected catalog.shard_publish failure for '" + name + "' shard " +
          std::to_string(s));
    }
    ShardPart& part = partitioned.parts[s];
    if (options.snapshot.prewarm_row_hashes) {
      util::WallTimer prewarm_timer;
      for (size_t i = 0; i < part.sigs.num_rows(); ++i) part.sigs.RowHash(i);
      timings.prewarm_seconds += prewarm_timer.Seconds();
    }
    meta.layouts.push_back(std::move(part.layout));
    snapshots.push_back(std::make_shared<const service::GraphSnapshot>(
        name + "/shard" + std::to_string(s), base + 1 + s,
        std::move(part.subgraph), std::move(part.sigs), timings));
  }

  auto generation = std::make_shared<const ShardedGeneration>(
      name, base, std::move(meta), std::move(snapshots));

  // Phase 4: install in one critical section — the only point where the
  // new generation becomes visible, and it becomes visible whole.
  {
    util::MutexLock lock(mutex_);
    const auto it = std::lower_bound(
        current_.begin(), current_.end(), name,
        [](const auto& entry, const std::string& n) { return entry.first < n; });
    if (it != current_.end() && it->first == name) {
      retired_.push_back(it->second);
      it->second = generation;
      ++counters_.swaps;
    } else {
      current_.insert(it, {std::move(name), generation});
    }
    ++counters_.published;
  }
  return generation;
}

std::future<util::Result<std::shared_ptr<const ShardedGeneration>>>
ShardedCatalog::BuildAndPublishAsync(std::string name, graph::Graph g,
                                     BuildOptions options) {
  options.snapshot.pool = nullptr;
  return std::async(
      std::launch::async,
      [this, name = std::move(name), g = std::move(g), options]() mutable {
        return BuildAndPublish(std::move(name), std::move(g), options);
      });
}

std::shared_ptr<const ShardedGeneration> ShardedCatalog::Resolve(
    std::string_view name) const {
  util::MutexLock lock(mutex_);
  const auto it = std::lower_bound(
      current_.begin(), current_.end(), name,
      [](const auto& entry, std::string_view n) { return entry.first < n; });
  if (it == current_.end() || it->first != name) return nullptr;
  return it->second;
}

ShardedGenerationPin ShardedCatalog::Pin(std::string_view name) const {
  return ShardedGenerationPin(Resolve(name));
}

bool ShardedCatalog::Contains(std::string_view name) const {
  return Resolve(name) != nullptr;
}

bool ShardedCatalog::Retire(std::string_view name) {
  util::MutexLock lock(mutex_);
  const auto it = std::lower_bound(
      current_.begin(), current_.end(), name,
      [](const auto& entry, std::string_view n) { return entry.first < n; });
  if (it == current_.end() || it->first != name) return false;
  retired_.push_back(it->second);
  current_.erase(it);
  ++counters_.retired;
  return true;
}

std::vector<service::CatalogEntry> ShardedCatalog::List() const {
  std::vector<service::CatalogEntry> entries;
  util::MutexLock lock(mutex_);
  auto describe = [&entries](const ShardedGeneration& gen, bool current) {
    for (size_t s = 0; s < gen.num_shards(); ++s) {
      const service::GraphSnapshot& snap = gen.shard(s);
      service::CatalogEntry e;
      e.name = snap.name();
      e.version = snap.version();
      e.current = current;
      e.pins = snap.pins();
      e.num_nodes = snap.graph().num_nodes();
      e.num_edges = snap.graph().num_edges();
      e.num_labels = snap.graph().num_labels();
      e.timings = snap.timings();
      entries.push_back(std::move(e));
    }
  };
  for (const auto& [name, generation] : current_) {
    describe(*generation, /*current=*/true);
  }
  auto out = retired_.begin();
  for (auto& weak : retired_) {
    if (const auto generation = weak.lock()) {
      describe(*generation, /*current=*/false);
      *out++ = std::move(weak);
    }
  }
  retired_.erase(out, retired_.end());
  std::sort(entries.begin(), entries.end(),
            [](const service::CatalogEntry& a, const service::CatalogEntry& b) {
              return a.name != b.name ? a.name < b.name
                                      : a.version < b.version;
            });
  return entries;
}

ShardedCatalog::Counters ShardedCatalog::counters() const {
  util::MutexLock lock(mutex_);
  return counters_;
}

size_t ShardedCatalog::size() const {
  util::MutexLock lock(mutex_);
  return current_.size();
}

}  // namespace psi::shard
