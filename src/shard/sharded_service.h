#ifndef SMARTPSI_SHARD_SHARDED_SERVICE_H_
#define SMARTPSI_SHARD_SHARDED_SERVICE_H_

// Sharded PSI query service (DESIGN.md §13): a router over K shard-local
// evaluations sharing one worker pool.
//
// Admission mirrors PsiService exactly — same bounded TrySubmit gate, same
// count-then-revoke metrics discipline, same `service.admission_shed`
// fault site — so every serving invariant the chaos layer checks
// (latency.count <= Settled() <= admitted, pins drain to zero, responses
// never report an unpublished generation) carries over verbatim. One
// admitted request enqueues one ROUTER task; the router fans out one
// SUBTASK per shard onto the same pool and returns without blocking. Each
// subtask evaluates its shard's pivot candidates via CrossShardEvaluator;
// the last one to finish merges the per-shard answers (a union of disjoint
// owned-candidate sets), records the outcome once, drops the generation
// pin, and fulfills the caller's future. No task ever waits on another
// task, so the topology is deadlock-free at any worker count — including
// one worker, where router and subtasks simply serialize.
//
// Generation consistency: the request pins a ShardedGeneration at
// admission; router and every subtask work off that one pin, so a publish
// landing mid-request can never mix shard snapshots of different
// generations into one answer. The pin drops before the future is
// fulfilled — a caller observing its response never sees its own request
// still pinned.

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "graph/graph.h"
#include "service/metrics.h"
#include "service/request.h"
#include "service/service.h"
#include "shard/cross_shard.h"
#include "shard/sharded_catalog.h"
#include "util/stop_token.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace psi::shard {

struct ShardedServiceOptions {
  /// Concurrent tasks (routers + shard subtasks share this pool).
  size_t num_workers = 4;

  /// Admission bound on ROUTER tasks: shard subtasks bypass it by design
  /// (an admitted request must always be able to fan out), so the queue
  /// holds at most max_queue_depth routers plus K subtasks per in-flight
  /// request — still bounded.
  size_t max_queue_depth = 256;

  /// Applied when a request carries no deadline of its own; <= 0 means
  /// unbounded execution.
  double default_deadline_seconds = 0.0;

  /// Catalog name requests with an empty `QueryRequest::graph` resolve to.
  std::string default_graph = "default";

  /// Truncation bound of the super-optimistic first pass (paper line 4).
  size_t super_optimistic_limit = 10;

  /// How the graph-owning constructor builds and partitions its
  /// generation; build.partition.num_shards is K. The catalog-pointer
  /// constructor uses only build.partition.num_shards, to size the
  /// per-shard metrics dimension.
  ShardedCatalog::BuildOptions build;
};

/// The sharded counterpart of PsiService. Thread-safe: Submit/Execute/
/// Stats may be called concurrently. Answers are exact and identical to
/// the unsharded service's for every method (see cross_shard.h); sharding
/// changes where the work runs, never what it computes.
class ShardedPsiService {
 public:
  /// Single-graph convenience: clones `g` into a service-owned sharded
  /// catalog under options.default_graph, partitioned into
  /// options.build.partition.num_shards shards.
  explicit ShardedPsiService(const graph::Graph& g,
                             ShardedServiceOptions options =
                                 ShardedServiceOptions());

  /// Serves a caller-owned catalog (shared with an admin surface doing
  /// live load/swap/retire). The catalog must outlive the service.
  explicit ShardedPsiService(ShardedCatalog* catalog,
                             ShardedServiceOptions options =
                                 ShardedServiceOptions());

  ShardedPsiService(const ShardedPsiService&) = delete;
  ShardedPsiService& operator=(const ShardedPsiService&) = delete;

  ~ShardedPsiService();

  /// Admits a request, returning a future for its response — or
  /// std::nullopt when shed. Same contract as PsiService::Submit.
  std::optional<std::future<service::QueryResponse>> Submit(
      service::QueryRequest request);

  /// Synchronous wrapper; a shed request returns kRejected immediately.
  service::QueryResponse Execute(service::QueryRequest request);

  /// Batched execution is explicitly unsupported on the sharded router
  /// (DESIGN.md §17): a batch's value comes from shared preparation
  /// against ONE pinned snapshot, and a sharded generation is K snapshots
  /// whose candidate frontier is split across owners — there is no single
  /// shared context to lease from. Rather than silently serialize members
  /// through the fan-out path (plausible-looking, none of the batch
  /// guarantees), the router rejects the batch whole: every member comes
  /// back kRejected and the batch_rejected counter increments. Callers
  /// that need batched PSI run an unsharded PsiService over the same
  /// graph.
  std::optional<std::future<service::BatchResponse>> SubmitBatch(
      service::BatchRequest request);

  /// Synchronous wrapper for SubmitBatch: always the explicit-rejection
  /// response described there.
  service::BatchResponse ExecuteBatch(service::BatchRequest request);

  service::ServiceStats Stats() const;

  /// Stops admission, cancels in-flight work, waits for the queue
  /// (routers and subtasks) to drain. Idempotent.
  void Shutdown();

  ShardedCatalog& catalog() { return *catalog_; }
  const ShardedCatalog& catalog() const { return *catalog_; }

  const ShardedServiceOptions& options() const { return options_; }

 private:
  /// Everything one fanned-out request shares. The pin lives here; the
  /// last finisher clears it before fulfilling the promise.
  struct FanoutState {
    service::QueryRequest request;
    ShardedGenerationPin pin;
    std::promise<service::QueryResponse> promise;
    util::WallTimer admission_timer;
    util::WallTimer exec_timer;
    util::Deadline deadline;
    std::vector<CrossShardEvaluator::ShardResult> results;
    std::atomic<size_t> remaining{0};
  };

  void RunRouter(std::shared_ptr<FanoutState> state);
  void RunShardSubtask(std::shared_ptr<FanoutState> state, uint32_t shard);
  void FinishFanout(FanoutState& state);

  /// Settles a request that never fanned out (invalid / not found /
  /// cancelled-before-start).
  void SettleEarly(FanoutState& state, service::RequestStatus status);

  /// Shard counters are sized from options at construction; generations
  /// with more shards than slots record only the labeled prefix (the flat
  /// counters are always complete).
  void RecordShardAdmitted(size_t shard);
  void RecordShardSettled(size_t shard, uint64_t forwards);

  ShardedServiceOptions options_;
  std::unique_ptr<ShardedCatalog> owned_catalog_;
  ShardedCatalog* catalog_ = nullptr;  // never null after construction
  service::MetricsRegistry metrics_;
  util::StopSource shutdown_;
  std::atomic<bool> accepting_{true};
  std::atomic<uint64_t> next_auto_id_{1};
  util::WallTimer uptime_;
  double signature_build_seconds_ = 0.0;

  // Declared last: destroyed first, so draining tasks still see live
  // metrics and catalog.
  std::unique_ptr<util::ThreadPool> pool_;
};

}  // namespace psi::shard

#endif  // SMARTPSI_SHARD_SHARDED_SERVICE_H_
