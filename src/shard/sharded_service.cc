#include "shard/sharded_service.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "util/fault_injection.h"

namespace psi::shard {

using service::BatchRequest;
using service::BatchResponse;
using service::QueryRequest;
using service::QueryResponse;
using service::RequestStatus;

ShardedPsiService::ShardedPsiService(const graph::Graph& g,
                                     ShardedServiceOptions options)
    : options_(options) {
  options_.num_workers = std::max<size_t>(1, options_.num_workers);
  options_.build.partition.num_shards =
      std::max<uint32_t>(1, options_.build.partition.num_shards);
  pool_ = std::make_unique<util::ThreadPool>(options_.num_workers);
  owned_catalog_ = std::make_unique<ShardedCatalog>();
  catalog_ = owned_catalog_.get();
  metrics_.EnableShardCounters(options_.build.partition.num_shards);
  // The pool is idle until the first Submit, so the startup build may
  // parallelize on it. Same graceful-failure stance as PsiService: if an
  // armed fault aborts this publish, the service starts with an empty
  // catalog and every request settles kNotFound.
  ShardedCatalog::BuildOptions build = options_.build;
  build.snapshot.pool = pool_.get();
  auto published =
      catalog_->BuildAndPublish(options_.default_graph, g.Clone(), build);
  if (published.ok()) {
    signature_build_seconds_ =
        published.value()->shard(0).timings().signature_build_seconds;
  }
}

ShardedPsiService::ShardedPsiService(ShardedCatalog* catalog,
                                     ShardedServiceOptions options)
    : options_(options), catalog_(catalog) {
  assert(catalog != nullptr);
  options_.num_workers = std::max<size_t>(1, options_.num_workers);
  options_.build.partition.num_shards =
      std::max<uint32_t>(1, options_.build.partition.num_shards);
  pool_ = std::make_unique<util::ThreadPool>(options_.num_workers);
  metrics_.EnableShardCounters(options_.build.partition.num_shards);
  if (const auto generation = catalog_->Resolve(options_.default_graph)) {
    signature_build_seconds_ =
        generation->shard(0).timings().signature_build_seconds;
  }
}

ShardedPsiService::~ShardedPsiService() { Shutdown(); }

void ShardedPsiService::Shutdown() {
  accepting_.store(false, std::memory_order_relaxed);
  shutdown_.RequestStop();
  pool_->Wait();
}

void ShardedPsiService::RecordShardAdmitted(size_t shard) {
  if (shard < metrics_.num_shards()) metrics_.RecordShardAdmitted(shard);
}

void ShardedPsiService::RecordShardSettled(size_t shard, uint64_t forwards) {
  if (shard < metrics_.num_shards()) {
    metrics_.RecordShardForwards(shard, forwards);
    metrics_.RecordShardSettled(shard);
  }
}

std::optional<std::future<QueryResponse>> ShardedPsiService::Submit(
    QueryRequest request) {
  if (!accepting_.load(std::memory_order_relaxed)) {
    metrics_.RecordRejected();
    return std::nullopt;
  }
  if (request.id == 0) {
    request.id = next_auto_id_.fetch_add(1, std::memory_order_relaxed);
  }
  // The admission timer starts with the state, so recorded latency
  // includes queue wait.
  auto state = std::make_shared<FanoutState>();
  // Generation resolution at admission: the request pins the current
  // K-shard generation as one unit and keeps it for its whole lifetime —
  // the consistency half of the atomic-publish story. An empty pin
  // (unknown name) is admitted and settles kNotFound.
  state->pin = catalog_->Pin(
      request.graph.empty() ? options_.default_graph : request.graph);
  state->request = std::move(request);
  std::future<QueryResponse> future = state->promise.get_future();

  // Count the admission BEFORE the router becomes runnable and revoke on a
  // shed — the same discipline as PsiService::Submit, for the same reason:
  // Stats() must never observe Settled() > admitted.
  metrics_.RecordAdmitted();
  const bool injected_shed =
      PSI_INJECT_FAULT(util::faults::kServiceAdmissionShed);
  const bool admitted =
      !injected_shed &&
      pool_->TrySubmit([this, state]() { RunRouter(state); },
                       options_.max_queue_depth);
  if (!admitted) {
    metrics_.UndoAdmitted();
    metrics_.RecordRejected();
    return std::nullopt;
  }
  return future;
}

QueryResponse ShardedPsiService::Execute(QueryRequest request) {
  const uint64_t id = request.id;
  auto future = Submit(std::move(request));
  if (!future.has_value()) {
    QueryResponse response;
    response.id = id;
    response.status = RequestStatus::kRejected;
    return response;
  }
  return future->get();
}

std::optional<std::future<BatchResponse>> ShardedPsiService::SubmitBatch(
    BatchRequest request) {
  // Explicit rejection (see the header comment): no single snapshot exists
  // to share preparation against, so the router refuses rather than fake
  // the batch contract. Accounting mirrors PsiService's whole-batch shed.
  metrics_.RecordBatchRejected();
  for (size_t i = 0; i < request.queries.size(); ++i) {
    metrics_.RecordRejected();
  }
  return std::nullopt;
}

BatchResponse ShardedPsiService::ExecuteBatch(BatchRequest request) {
  BatchResponse response;
  response.id = request.id;
  response.responses.resize(request.queries.size());
  for (size_t i = 0; i < request.queries.size(); ++i) {
    response.responses[i].id = request.queries[i].id;
    response.responses[i].status = RequestStatus::kRejected;
  }
  (void)SubmitBatch(std::move(request));
  return response;
}

void ShardedPsiService::SettleEarly(FanoutState& state, RequestStatus status) {
  QueryResponse response;
  response.id = state.request.id;
  response.snapshot_version = state.pin ? state.pin->generation() : 0;
  response.status = status;
  response.exec_seconds = state.exec_timer.Seconds();
  response.latency_seconds = state.admission_timer.Seconds();
  metrics_.RecordOutcome(response);
  state.pin = ShardedGenerationPin();  // gauge drops before the future fires
  state.promise.set_value(std::move(response));
}

void ShardedPsiService::RunRouter(std::shared_ptr<FanoutState> state) {
  // Chaos hook: a worker descheduled between dequeue and execution.
  PSI_FAULT_STALL(util::faults::kServiceWorkerStall);
  state->exec_timer = util::WallTimer();

  if (state->request.query.num_nodes() == 0 ||
      !state->request.query.has_pivot()) {
    SettleEarly(*state, RequestStatus::kInvalid);
    return;
  }
  if (!state->pin) {
    SettleEarly(*state, RequestStatus::kNotFound);
    return;
  }
  if (shutdown_.StopRequested()) {
    SettleEarly(*state, RequestStatus::kCancelled);
    return;
  }

  const double limit = state->request.deadline_seconds > 0.0
                           ? state->request.deadline_seconds
                           : options_.default_deadline_seconds;
  state->deadline =
      limit > 0.0 ? util::Deadline::After(limit) : util::Deadline();

  const size_t k = state->pin->num_shards();
  state->results.resize(k);
  // The countdown is the only barrier: subtasks write disjoint results[]
  // slots, and the acq_rel decrement makes every slot visible to the last
  // finisher. Subtasks use unbounded Submit — the admission gate already
  // ran at the router — and nobody blocks, at any pool width.
  state->remaining.store(k, std::memory_order_relaxed);
  for (uint32_t s = 0; s < k; ++s) {
    RecordShardAdmitted(s);
    pool_->Submit([this, state, s]() { RunShardSubtask(state, s); });
  }
}

void ShardedPsiService::RunShardSubtask(std::shared_ptr<FanoutState> state,
                                        uint32_t shard) {
  {
    CrossShardEvaluator::Options eval;
    eval.method = state->request.method;
    eval.super_optimistic_limit = options_.super_optimistic_limit;
    eval.deadline = state->deadline;
    eval.stop = util::StopToken(&shutdown_);
    CrossShardEvaluator evaluator(state->pin->View());
    state->results[shard] =
        evaluator.EvaluateShard(shard, state->request.query, eval);
  }
  RecordShardSettled(shard, state->results[shard].forwards);
  if (state->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    FinishFanout(*state);
  }
}

void ShardedPsiService::FinishFanout(FanoutState& state) {
  QueryResponse response;
  response.id = state.request.id;
  response.snapshot_version = state.pin->generation();

  bool complete = true;
  size_t total_valid = 0;
  for (const auto& r : state.results) total_valid += r.valid_nodes.size();
  response.valid_nodes.reserve(total_valid);
  for (const auto& r : state.results) {
    response.valid_nodes.insert(response.valid_nodes.end(),
                                r.valid_nodes.begin(), r.valid_nodes.end());
    response.num_candidates += r.num_candidates;
    complete = complete && r.complete;
  }
  // Owned-candidate sets are disjoint across shards, so this is a merge of
  // disjoint sorted runs — sort once, no dedup needed.
  std::sort(response.valid_nodes.begin(), response.valid_nodes.end());

  if (complete) {
    response.status = RequestStatus::kOk;
  } else if (shutdown_.StopRequested()) {
    response.status = RequestStatus::kCancelled;
  } else {
    response.status = RequestStatus::kTimeout;
  }
  response.exec_seconds = state.exec_timer.Seconds();
  response.latency_seconds = state.admission_timer.Seconds();
  metrics_.RecordOutcome(response);
  state.pin = ShardedGenerationPin();  // gauge drops before the future fires
  state.promise.set_value(std::move(response));
}

service::ServiceStats ShardedPsiService::Stats() const {
  service::ServiceStats stats;
  stats.metrics = metrics_.Snapshot();
  const ShardedCatalog::Counters c = catalog_->counters();
  stats.metrics.snapshot_publishes = c.published;
  stats.metrics.snapshot_swaps = c.swaps;
  stats.metrics.snapshot_retires = c.retired;
  stats.metrics.snapshot_publish_failures = c.publish_failures;
  stats.snapshots = catalog_->List();
  stats.queue_depth = pool_->queue_depth();
  stats.num_workers = options_.num_workers;
  stats.signature_build_seconds = signature_build_seconds_;
  stats.uptime_seconds = uptime_.Seconds();
  stats.faults_injected = util::FaultInjector::Global().TotalFires();
  return stats;
}

}  // namespace psi::shard
