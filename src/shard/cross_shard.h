#ifndef SMARTPSI_SHARD_CROSS_SHARD_H_
#define SMARTPSI_SHARD_CROSS_SHARD_H_

// Cross-shard PSI resolution (DESIGN.md §13).
//
// Pivot-candidate matching runs shard-locally: each shard evaluates
// exactly the pivot candidates it owns, using its sliced signature rows
// for Proposition-3.2 pruning and satisfiability ranking through the same
// bulk kernels as the unsharded engines. The query is decomposed into a
// DFS tree rooted at the pivot; the search extends one query node per
// level along that tree. When a partial match reaches a boundary vertex —
// a candidate owned by a different shard than the one whose adjacency
// generated it — the continuation is *delegated* to the owning shard:
// degree and backward-edge verification run against the owner's complete
// adjacency (a ghost's local adjacency is partial by design), and the
// search keeps extending from there, Pregel-style but in-process. Every
// such hop is counted as a cross_shard_forward.
//
// Exactness: candidate generation always enumerates the adjacency of an
// already-matched vertex on the shard that *owns* it (complete by
// construction), verification always consults the candidate's owner, and
// signature rows are bit-identical to the global matrix — so the
// per-candidate valid/invalid decision equals the single-engine
// evaluator's, for every method. The differential suite asserts this
// embedding-for-embedding on the shared fixtures.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "graph/query_graph.h"
#include "service/request.h"
#include "shard/partitioner.h"
#include "signature/kernels.h"
#include "signature/signature_matrix.h"
#include "signature/sparse_requirement.h"
#include "util/stop_token.h"
#include "util/timer.h"

namespace psi::shard {

/// Non-owning view of one shard's materialized state.
struct ShardRef {
  const graph::Graph* subgraph = nullptr;
  const signature::SignatureMatrix* sigs = nullptr;
  const ShardLayout* layout = nullptr;
};

/// Non-owning view over a whole partitioned generation — what the
/// evaluator binds to. Everything referenced must outlive the view.
struct ShardedView {
  std::vector<ShardRef> shards;
  const std::vector<uint32_t>* owner = nullptr;
  const std::vector<graph::NodeId>* local_in_owner = nullptr;
  const std::vector<uint64_t>* label_counts = nullptr;
  size_t num_labels = 0;

  static ShardedView Of(const PartitionedGraph& pg);
};

/// Evaluates pivoted queries against a ShardedView. Not thread-safe: the
/// sharded service instantiates one evaluator per shard subtask. The view
/// must outlive the evaluator.
class CrossShardEvaluator {
 public:
  struct Options {
    service::Method method = service::Method::kSmart;
    size_t super_optimistic_limit = 10;
    util::Deadline deadline;
    util::StopToken stop;
  };

  struct ShardResult {
    /// Valid pivot bindings owned by the evaluated shard, global ids,
    /// sorted ascending. Complete iff `complete`.
    std::vector<graph::NodeId> valid_nodes;
    bool complete = true;
    /// Pivot candidates surviving shard-local extraction (pre-prefilter).
    size_t num_candidates = 0;
    /// Partial-match continuations delegated across a shard boundary.
    uint64_t forwards = 0;
  };

  explicit CrossShardEvaluator(ShardedView view);

  /// Evaluates the pivot candidates owned by `shard` — the unit of work
  /// the sharded service fans out (one subtask per shard).
  ShardResult EvaluateShard(uint32_t shard, const graph::QueryGraph& q,
                            const Options& options);

  /// Whole-query convenience: every shard in turn, results merged and
  /// sorted. Equivalent to the unsharded answer (tests use this).
  ShardResult Evaluate(const graph::QueryGraph& q, const Options& options);

 private:
  enum class Mode { kOptimistic, kSuperOptimistic, kPessimistic };
  enum class Outcome { kValid, kInvalid, kTimeout, kStopped };

  /// Builds the DFS-tree order (preorder from the pivot, neighbors in
  /// insertion order) and the per-level backward-edge lists. The query
  /// must be connected (same precondition as the unsharded plans).
  void BindQuery(const graph::QueryGraph& q);

  /// Shard-local pivot-candidate extraction: owned vertices of `shard`
  /// with the pivot's label, degree and (edge label, neighbor label)
  /// multiset requirements. Returns shard-LOCAL ids, ascending (owned
  /// locals are assigned in ascending global order).
  void ExtractOwnedPivotCandidates(uint32_t shard,
                                   std::vector<graph::NodeId>& out) const;

  Outcome EvaluateCandidate(uint32_t shard, graph::NodeId local_candidate,
                            Mode mode, const Options& options,
                            ShardResult* result);

  Outcome Search(size_t level, uint32_t executing_shard, Mode mode,
                 const Options& options, ShardResult* result);

  /// Degree + backward-edge verification of `candidate` (global id) on its
  /// owner shard. `anchor_index` is the backward edge already satisfied by
  /// enumeration.
  bool VerifyOnOwner(graph::NodeId candidate, size_t level,
                     size_t anchor_index) const;

  bool IsUsed(graph::NodeId global, size_t level) const;
  bool ShouldAbort(const Options& options, Outcome* outcome);

  /// True global degree of a vertex: its owner shard's local degree.
  size_t OwnerDegree(graph::NodeId global) const {
    const uint32_t o = (*view_.owner)[global];
    return view_.shards[o].subgraph->degree((*view_.local_in_owner)[global]);
  }

  static constexpr uint32_t kCheckInterval = 256;

  ShardedView view_;

  const graph::QueryGraph* query_ = nullptr;
  signature::SignatureMatrix query_sigs_;
  std::vector<graph::NodeId> order_;
  std::vector<size_t> plan_position_;
  struct BackwardNeighbor {
    graph::NodeId query_node;
    graph::Label edge_label;
  };
  std::vector<BackwardNeighbor> backward_flat_;
  std::vector<uint32_t> backward_offsets_;
  std::vector<signature::SparseRequirement> level_reqs_;

  /// mapping_[query node] = matched global data node (kInvalidNode when
  /// unmapped); mapped_stack_[level] mirrors it in plan order.
  std::vector<graph::NodeId> mapping_;
  std::vector<graph::NodeId> mapped_stack_;
  /// Per-level candidate buffers holding ids LOCAL to gen_shard_[level]
  /// (the shard whose adjacency generated them) so the signature kernels
  /// sweep one matrix per level.
  std::vector<std::vector<graph::NodeId>> level_candidates_;
  std::vector<uint32_t> gen_shard_;
  signature::RankScratch rank_;

  uint32_t steps_until_check_ = kCheckInterval;
};

}  // namespace psi::shard

#endif  // SMARTPSI_SHARD_CROSS_SHARD_H_
