#ifndef SMARTPSI_SHARD_PARTITIONER_H_
#define SMARTPSI_SHARD_PARTITIONER_H_

// Deterministic label-aware edge-cut partitioning (DESIGN.md §13).
//
// A Graph is split into K shard subgraphs. Every vertex has exactly one
// *owner* shard; a shard's subgraph additionally replicates the *ghost*
// vertices (vertices owned elsewhere that are adjacent to an owned vertex)
// so that every owned vertex carries its complete adjacency locally. Edges
// incident to at least one owned vertex are materialized in the shard CSR;
// ghost-ghost edges are not (a ghost's adjacency is partial by design —
// any check that needs a vertex's full neighborhood must run on its owner,
// which is what the cross-shard evaluator does).
//
// Per-shard signature rows are *sliced* from a signature matrix built on
// the whole graph, never rebuilt from the shard subgraph: a boundary
// vertex's shard-local neighborhood under-approximates its true
// neighborhood, and signatures built from it would violate Proposition 3.2
// soundness (valid embeddings could be pruned). Slicing keeps every row
// bit-identical to the unsharded matrix, so shard-local kernel sweeps make
// exactly the decisions the single-engine service makes.

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"
#include "signature/signature_matrix.h"

namespace psi::shard {

struct PartitionOptions {
  uint32_t num_shards = 1;
  /// Hard cap on imbalance: no shard owns more than
  /// max(ceil(N/K), floor(balance_factor * N / K)) vertices.
  double balance_factor = 1.2;
  /// Weight of the label-spread term in the greedy placement score:
  /// penalizes piling one label's vertices onto one shard, so per-shard
  /// pivot-candidate work stays balanced for label-skewed graphs.
  double label_balance_weight = 0.25;
  /// Weight of the size-balance term (soft pressure below the hard cap).
  double size_balance_weight = 1.0;
};

/// Global vertex -> owner shard map plus per-shard owned counts.
struct ShardAssignment {
  uint32_t num_shards = 0;
  /// owner[v] = shard that owns global vertex v.
  std::vector<uint32_t> owner;
  std::vector<size_t> owned_counts;

  /// max owned / (N / K); 0 for an empty graph.
  double BalanceFactor() const;
};

/// Local-id layout of one shard: locals [0, num_owned) are the owned
/// vertices (ascending global id), locals [num_owned, size) are the ghosts
/// (ascending global id) — the shard's boundary replication table.
struct ShardLayout {
  uint32_t shard = 0;
  size_t num_owned = 0;
  /// local id -> global id, owned first then ghosts.
  std::vector<graph::NodeId> local_to_global;
  /// global id -> local id for every vertex present in this shard.
  std::unordered_map<graph::NodeId, graph::NodeId> global_to_local;
  /// Owned vertices with at least one neighbor owned by another shard.
  size_t num_boundary_owned = 0;

  size_t num_ghosts() const { return local_to_global.size() - num_owned; }

  /// Local id of a global vertex, or kInvalidNode when not replicated here.
  graph::NodeId LocalId(graph::NodeId global) const {
    const auto it = global_to_local.find(global);
    return it == global_to_local.end() ? graph::kInvalidNode : it->second;
  }
};

/// Deterministic label-aware greedy edge-cut partitioner (an LDG-style
/// streaming heuristic with a hard capacity cap). No RNG anywhere: the
/// placement order and every tie-break are pure functions of the graph, so
/// two runs over the same graph produce identical assignments — the
/// property the versioned catalog relies on for reproducible generations.
class GraphPartitioner {
 public:
  explicit GraphPartitioner(PartitionOptions options = PartitionOptions());

  ShardAssignment Partition(const graph::Graph& g) const;

  const PartitionOptions& options() const { return options_; }

 private:
  PartitionOptions options_;
};

/// One shard's materialized state: layout, subgraph CSR and the sliced
/// signature rows (row i = global row of local_to_global[i]).
struct ShardPart {
  ShardLayout layout;
  graph::Graph subgraph;
  signature::SignatureMatrix sigs;
};

/// A fully partitioned graph plus the global lookup tables the cross-shard
/// evaluator needs.
struct PartitionedGraph {
  ShardAssignment assignment;
  std::vector<ShardPart> parts;
  /// global id -> local id within its *owner* shard (dense, no hashing on
  /// the delegation hot path).
  std::vector<graph::NodeId> local_in_owner;
  /// Global per-label vertex counts — the feasibility oracle. A query-node
  /// label absent from one shard may still be matched in another, so
  /// feasibility must consult these, never a shard-local frequency.
  std::vector<uint64_t> label_counts;
  size_t num_nodes = 0;
  size_t num_edges = 0;
  size_t num_labels = 0;
};

/// Materializes every shard: subgraph CSRs built from the edges incident
/// to owned vertices, ghost replication tables, and signature rows sliced
/// from `global_sigs` (which must have one row per node of `g`).
PartitionedGraph BuildPartitionedGraph(
    const graph::Graph& g, const signature::SignatureMatrix& global_sigs,
    const ShardAssignment& assignment);

}  // namespace psi::shard

#endif  // SMARTPSI_SHARD_PARTITIONER_H_
