#include "graph/algorithms.h"

#include <algorithm>
#include <cassert>

namespace psi::graph {

std::vector<uint32_t> BfsDistances(const Graph& g, NodeId source,
                                   uint32_t max_depth) {
  std::vector<uint32_t> dist(g.num_nodes(), UINT32_MAX);
  std::vector<NodeId> queue;
  queue.push_back(source);
  dist[source] = 0;
  for (size_t head = 0; head < queue.size(); ++head) {
    const NodeId u = queue[head];
    if (dist[u] == max_depth) continue;
    for (const NodeId v : g.neighbors(u)) {
      if (dist[v] == UINT32_MAX) {
        dist[v] = dist[u] + 1;
        queue.push_back(v);
      }
    }
  }
  return dist;
}

BoundedBfs::BoundedBfs(size_t num_nodes)
    : seen_epoch_(num_nodes, 0), depth_(num_nodes, 0) {}

std::vector<uint32_t> ConnectedComponents(const Graph& g,
                                          size_t* num_components) {
  std::vector<uint32_t> comp(g.num_nodes(), UINT32_MAX);
  std::vector<NodeId> queue;
  uint32_t next_comp = 0;
  for (NodeId start = 0; start < g.num_nodes(); ++start) {
    if (comp[start] != UINT32_MAX) continue;
    comp[start] = next_comp;
    queue.clear();
    queue.push_back(start);
    for (size_t head = 0; head < queue.size(); ++head) {
      for (const NodeId v : g.neighbors(queue[head])) {
        if (comp[v] == UINT32_MAX) {
          comp[v] = next_comp;
          queue.push_back(v);
        }
      }
    }
    ++next_comp;
  }
  if (num_components != nullptr) *num_components = next_comp;
  return comp;
}

DegreeStats ComputeDegreeStats(const Graph& g) {
  DegreeStats stats;
  if (g.num_nodes() == 0) return stats;
  std::vector<size_t> degrees(g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) degrees[u] = g.degree(u);
  std::sort(degrees.begin(), degrees.end());
  stats.min = degrees.front();
  stats.max = degrees.back();
  stats.mean = g.average_degree();
  const size_t mid = degrees.size() / 2;
  stats.median = degrees.size() % 2 == 1
                     ? static_cast<double>(degrees[mid])
                     : (static_cast<double>(degrees[mid - 1]) +
                        static_cast<double>(degrees[mid])) /
                           2.0;
  return stats;
}

QueryGraph InducedSubgraph(const Graph& g, const std::vector<NodeId>& nodes) {
  assert(nodes.size() <= QueryGraph::kMaxNodes);
  QueryGraph q;
  for (const NodeId u : nodes) q.AddNode(g.label(u));
  for (size_t i = 0; i < nodes.size(); ++i) {
    for (size_t j = i + 1; j < nodes.size(); ++j) {
      const auto edge_label = g.EdgeLabelBetween(nodes[i], nodes[j]);
      if (edge_label.has_value()) {
        q.AddEdge(static_cast<NodeId>(i), static_cast<NodeId>(j), *edge_label);
      }
    }
  }
  return q;
}

}  // namespace psi::graph
