#ifndef SMARTPSI_GRAPH_QUERY_GRAPH_H_
#define SMARTPSI_GRAPH_QUERY_GRAPH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/types.h"

namespace psi::graph {

/// Small mutable labeled graph used for queries and FSM patterns.
///
/// Holds at most kMaxNodes nodes so adjacency can be kept as per-node 64-bit
/// bitsets, giving O(1) edge tests inside the matching hot loops. A query
/// additionally carries a pivot node (paper Definition 2.1); patterns in the
/// FSM module reuse the structure with the pivot unset.
class QueryGraph {
 public:
  static constexpr size_t kMaxNodes = 64;

  QueryGraph() = default;

  /// Adds a node; returns its id. Asserts below kMaxNodes.
  NodeId AddNode(Label label);

  /// Adds an undirected edge. Duplicate edges and self-loops are rejected
  /// (returns false).
  bool AddEdge(NodeId u, NodeId v, Label label = kDefaultEdgeLabel);

  size_t num_nodes() const { return labels_.size(); }
  size_t num_edges() const { return num_edges_; }

  Label label(NodeId v) const { return labels_[v]; }
  void set_label(NodeId v, Label label) { labels_[v] = label; }

  size_t degree(NodeId v) const { return adjacency_[v].size(); }

  /// Neighbors of `v` as (neighbor, edge label) pairs, insertion order.
  const std::vector<std::pair<NodeId, Label>>& neighbors(NodeId v) const {
    return adjacency_[v];
  }

  bool HasEdge(NodeId u, NodeId v) const {
    return (adj_bits_[u] >> v) & 1ULL;
  }

  /// Label of edge (u, v); asserts the edge exists.
  Label EdgeLabel(NodeId u, NodeId v) const;

  /// Bitset of neighbors of `v` (bit i set iff edge (v, i) exists).
  uint64_t neighbor_bits(NodeId v) const { return adj_bits_[v]; }

  void set_pivot(NodeId v) { pivot_ = v; }
  NodeId pivot() const { return pivot_; }
  bool has_pivot() const { return pivot_ != kInvalidNode; }

  /// True iff the graph is connected (empty graph counts as connected).
  bool IsConnected() const;

  /// Maximum node label value + 1 (0 for an empty graph).
  size_t max_label_plus_one() const;

  /// Human-readable dump: "Q(pivot=0) 0:A 1:B ; 0-1:x ...".
  std::string ToString() const;

  /// Order-sensitive structural hash over labels, edges (with edge labels)
  /// and the pivot. Two equal queries always hash equally; isomorphic but
  /// differently-numbered queries generally do not (this is a cache key,
  /// not a canonical form). Used to partition the service's shared
  /// prediction cache by query.
  uint64_t Fingerprint() const;

 private:
  size_t num_edges_ = 0;
  std::vector<Label> labels_;
  std::vector<std::vector<std::pair<NodeId, Label>>> adjacency_;
  std::vector<uint64_t> adj_bits_;
  NodeId pivot_ = kInvalidNode;
};

}  // namespace psi::graph

#endif  // SMARTPSI_GRAPH_QUERY_GRAPH_H_
