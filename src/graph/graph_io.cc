#include "graph/graph_io.h"

#include <fstream>
#include <sstream>
#include <string>

#include "graph/graph_builder.h"
#include "util/fault_injection.h"

namespace psi::graph {

util::Result<Graph> ReadLg(std::istream& in) {
  GraphBuilder builder;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // Chaos hook: simulated short read (stream truncated mid-file). Must
    // surface as an error Status like any real truncation would.
    if (PSI_INJECT_FAULT(util::faults::kGraphIoShortRead)) {
      return util::Status::IoError("injected short read at line " +
                                   std::to_string(line_no));
    }
    if (line.empty() || line[0] == '#' || line[0] == 't') continue;
    std::istringstream fields(line);
    char kind = 0;
    fields >> kind;
    if (kind == 'v') {
      uint64_t id = 0;
      uint64_t label = 0;
      if (!(fields >> id >> label)) {
        return util::Status::InvalidArgument(
            "malformed vertex at line " + std::to_string(line_no));
      }
      if (id != builder.num_nodes()) {
        return util::Status::InvalidArgument(
            "non-dense vertex id at line " + std::to_string(line_no));
      }
      builder.AddNode(static_cast<Label>(label));
    } else if (kind == 'e') {
      uint64_t u = 0;
      uint64_t v = 0;
      if (!(fields >> u >> v)) {
        return util::Status::InvalidArgument(
            "malformed edge at line " + std::to_string(line_no));
      }
      uint64_t label = kDefaultEdgeLabel;
      fields >> label;  // optional
      if (u >= builder.num_nodes() || v >= builder.num_nodes()) {
        return util::Status::InvalidArgument(
            "edge endpoint out of range at line " + std::to_string(line_no));
      }
      builder.AddEdge(static_cast<NodeId>(u), static_cast<NodeId>(v),
                      static_cast<Label>(label));
    } else {
      return util::Status::InvalidArgument(
          "unknown record '" + std::string(1, kind) + "' at line " +
          std::to_string(line_no));
    }
  }
  return std::move(builder).Build();
}

util::Result<Graph> LoadLgFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return util::Status::IoError("cannot open " + path);
  return ReadLg(in);
}

void WriteLg(const Graph& g, std::ostream& out) {
  out << "t 1\n";
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    out << "v " << u << " " << g.label(u) << "\n";
  }
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const auto nbrs = g.neighbors(u);
    const auto elabels = g.edge_labels(u);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      if (u < nbrs[i]) {
        out << "e " << u << " " << nbrs[i] << " " << elabels[i] << "\n";
      }
    }
  }
}

util::Status SaveLgFile(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) return util::Status::IoError("cannot open " + path);
  WriteLg(g, out);
  return out ? util::Status::Ok()
             : util::Status::IoError("write failed for " + path);
}

util::Result<std::vector<QueryGraph>> ReadQueries(std::istream& in) {
  std::vector<QueryGraph> queries;
  QueryGraph current;
  bool in_block = false;
  size_t line_no = 0;

  auto finish_block = [&]() -> util::Status {
    if (!in_block) return util::Status::Ok();
    if (!current.has_pivot()) {
      return util::Status::InvalidArgument(
          "query block ending before line " + std::to_string(line_no) +
          " has no pivot ('p') record");
    }
    queries.push_back(std::move(current));
    current = QueryGraph();
    return util::Status::Ok();
  };

  std::string line;
  while (std::getline(in, line)) {
    ++line_no;
    // Chaos hook: see ReadLg.
    if (PSI_INJECT_FAULT(util::faults::kQueryIoShortRead)) {
      return util::Status::IoError("injected short read at line " +
                                   std::to_string(line_no));
    }
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    char kind = 0;
    fields >> kind;
    if (kind == 't') {
      const util::Status status = finish_block();
      if (!status.ok()) return status;
      in_block = true;
    } else if (kind == 'v') {
      uint64_t id = 0;
      uint64_t label = 0;
      if (!in_block || !(fields >> id >> label) ||
          id != current.num_nodes() || id >= QueryGraph::kMaxNodes) {
        return util::Status::InvalidArgument(
            "malformed vertex at line " + std::to_string(line_no));
      }
      current.AddNode(static_cast<Label>(label));
    } else if (kind == 'e') {
      uint64_t u = 0;
      uint64_t v = 0;
      if (!in_block || !(fields >> u >> v) || u >= current.num_nodes() ||
          v >= current.num_nodes()) {
        return util::Status::InvalidArgument(
            "malformed edge at line " + std::to_string(line_no));
      }
      uint64_t label = kDefaultEdgeLabel;
      fields >> label;  // optional
      current.AddEdge(static_cast<NodeId>(u), static_cast<NodeId>(v),
                      static_cast<Label>(label));
    } else if (kind == 'p') {
      uint64_t pivot = 0;
      if (!in_block || !(fields >> pivot) || pivot >= current.num_nodes()) {
        return util::Status::InvalidArgument(
            "malformed pivot at line " + std::to_string(line_no));
      }
      current.set_pivot(static_cast<NodeId>(pivot));
    } else {
      return util::Status::InvalidArgument(
          "unknown record '" + std::string(1, kind) + "' at line " +
          std::to_string(line_no));
    }
  }
  const util::Status status = finish_block();
  if (!status.ok()) return status;
  return queries;
}

util::Result<std::vector<QueryGraph>> LoadQueryFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return util::Status::IoError("cannot open " + path);
  return ReadQueries(in);
}

void WriteQueries(const std::vector<QueryGraph>& queries, std::ostream& out) {
  for (size_t i = 0; i < queries.size(); ++i) {
    const QueryGraph& q = queries[i];
    out << "t " << i + 1 << "\n";
    for (NodeId v = 0; v < q.num_nodes(); ++v) {
      out << "v " << v << " " << q.label(v) << "\n";
    }
    for (NodeId v = 0; v < q.num_nodes(); ++v) {
      for (const auto& [nbr, edge_label] : q.neighbors(v)) {
        if (v < nbr) out << "e " << v << " " << nbr << " " << edge_label
                         << "\n";
      }
    }
    if (q.has_pivot()) out << "p " << q.pivot() << "\n";
  }
}

util::Status SaveQueryFile(const std::vector<QueryGraph>& queries,
                           const std::string& path) {
  std::ofstream out(path);
  if (!out) return util::Status::IoError("cannot open " + path);
  WriteQueries(queries, out);
  return out ? util::Status::Ok()
             : util::Status::IoError("write failed for " + path);
}

}  // namespace psi::graph
