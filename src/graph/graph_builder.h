#ifndef SMARTPSI_GRAPH_GRAPH_BUILDER_H_
#define SMARTPSI_GRAPH_GRAPH_BUILDER_H_

#include <span>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"
#include "util/status.h"

namespace psi::graph {

/// Accumulates nodes and undirected edges, then finalizes a CSR Graph.
///
///   GraphBuilder b;
///   NodeId a = b.AddNode(/*label=*/0);
///   NodeId c = b.AddNode(/*label=*/1);
///   b.AddEdge(a, c);
///   Graph g = std::move(b).Build();
///
/// Self-loops are ignored; duplicate edges are deduplicated (first-added
/// edge label wins). Build() is destructive — the builder is consumed.
class GraphBuilder {
 public:
  GraphBuilder() = default;

  /// Pre-sizes internal arrays (optional).
  void Reserve(size_t nodes, size_t edges);

  /// Adds a node and returns its id (ids are dense, in insertion order).
  NodeId AddNode(Label label);

  /// Adds `count` nodes with label 0; use SetNodeLabel to relabel.
  void AddNodes(size_t count);

  void SetNodeLabel(NodeId u, Label label);

  /// Adds an undirected edge. Out-of-range endpoints are an error (assert);
  /// self-loops are silently dropped. Returns false for dropped self-loops.
  bool AddEdge(NodeId u, NodeId v, Label label = kDefaultEdgeLabel);

  size_t num_nodes() const { return node_labels_.size(); }
  size_t num_edges_added() const { return edges_.size(); }

  /// Finalizes into an immutable Graph (sorting adjacency, deduplicating,
  /// building the label index). Consumes the builder.
  Graph Build() &&;

  /// Adopts already-finalized CSR arrays (a mapped .psnap GRAPH section;
  /// DESIGN.md §16.2) after validating every invariant Build() establishes:
  /// offsets monotone from 0 to neighbors.size(); per-node strictly
  /// ascending neighbor ids in range, no self-loops; adjacency and edge
  /// labels symmetric; node labels inside the label alphabet; label index
  /// buckets ascending, label-consistent, and covering every node exactly
  /// once (trailing empty labels are permitted). The arrays are *copied*
  /// into the Graph — CSR adoption is about trusting no untrusted bytes,
  /// not zero-copy; the float signature payload is where zero-copy pays.
  /// Returns InvalidArgument naming the first violated invariant.
  static util::Result<Graph> FromCsr(std::span<const uint64_t> offsets,
                                     std::span<const NodeId> neighbors,
                                     std::span<const Label> edge_labels,
                                     std::span<const Label> node_labels,
                                     std::span<const NodeId> nodes_by_label,
                                     std::span<const uint64_t> label_offsets);

 private:
  struct Edge {
    NodeId u;
    NodeId v;
    Label label;
  };

  std::vector<Label> node_labels_;
  std::vector<Edge> edges_;
};

}  // namespace psi::graph

#endif  // SMARTPSI_GRAPH_GRAPH_BUILDER_H_
