#ifndef SMARTPSI_GRAPH_GRAPH_BUILDER_H_
#define SMARTPSI_GRAPH_GRAPH_BUILDER_H_

#include <vector>

#include "graph/graph.h"
#include "graph/types.h"

namespace psi::graph {

/// Accumulates nodes and undirected edges, then finalizes a CSR Graph.
///
///   GraphBuilder b;
///   NodeId a = b.AddNode(/*label=*/0);
///   NodeId c = b.AddNode(/*label=*/1);
///   b.AddEdge(a, c);
///   Graph g = std::move(b).Build();
///
/// Self-loops are ignored; duplicate edges are deduplicated (first-added
/// edge label wins). Build() is destructive — the builder is consumed.
class GraphBuilder {
 public:
  GraphBuilder() = default;

  /// Pre-sizes internal arrays (optional).
  void Reserve(size_t nodes, size_t edges);

  /// Adds a node and returns its id (ids are dense, in insertion order).
  NodeId AddNode(Label label);

  /// Adds `count` nodes with label 0; use SetNodeLabel to relabel.
  void AddNodes(size_t count);

  void SetNodeLabel(NodeId u, Label label);

  /// Adds an undirected edge. Out-of-range endpoints are an error (assert);
  /// self-loops are silently dropped. Returns false for dropped self-loops.
  bool AddEdge(NodeId u, NodeId v, Label label = kDefaultEdgeLabel);

  size_t num_nodes() const { return node_labels_.size(); }
  size_t num_edges_added() const { return edges_.size(); }

  /// Finalizes into an immutable Graph (sorting adjacency, deduplicating,
  /// building the label index). Consumes the builder.
  Graph Build() &&;

 private:
  struct Edge {
    NodeId u;
    NodeId v;
    Label label;
  };

  std::vector<Label> node_labels_;
  std::vector<Edge> edges_;
};

}  // namespace psi::graph

#endif  // SMARTPSI_GRAPH_GRAPH_BUILDER_H_
