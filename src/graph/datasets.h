#ifndef SMARTPSI_GRAPH_DATASETS_H_
#define SMARTPSI_GRAPH_DATASETS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace psi::graph {

/// Synthetic stand-ins for the six real datasets of paper Table 3.
///
/// The originals (protein-interaction networks, citation and social graphs)
/// are not available offline, so each stand-in is generated to the published
/// node / edge / label counts with a degree distribution and label skew
/// matching the dataset family:
///   * Yeast / Human — PPI networks: Erdős–Rényi-ish with mild skew
///     (Human is ~7x denser, reproducing its hardness in Table 2 / Fig 7c).
///   * Cora — sparse citation graph, only 7 labels (low label selectivity).
///   * YouTube / Twitter / Weibo — heavy-tailed social graphs (Chung–Lu
///     power law; Weibo keeps its extreme density, avg degree ~446).
///
/// PSI/subgraph-iso difficulty is governed by size, density, degree skew and
/// label selectivity; the stand-ins match all four, so the relative shapes of
/// the paper's experiments are preserved (see DESIGN.md §3).
enum class Dataset {
  kYeast,
  kCora,
  kHuman,
  kYouTube,
  kTwitter,
  kWeibo,
};

/// Published characteristics (Table 3) plus the generator family we use.
struct DatasetSpec {
  std::string name;
  size_t nodes;
  size_t edges;
  size_t labels;
  /// Zipf exponent for node-label skew.
  double label_skew;
  /// Power-law exponent for Chung–Lu datasets; 0 selects Erdős–Rényi.
  double degree_exponent;
};

/// Full-size published spec for `d`.
const DatasetSpec& GetDatasetSpec(Dataset d);

/// All six datasets in paper order.
std::vector<Dataset> AllDatasets();

/// Generates the stand-in for `d`, scaled by `scale` in (0, 1]: node and
/// edge counts are multiplied by `scale` (label count is kept). Pass 1.0 for
/// the published size. Deterministic in `seed`.
Graph MakeDataset(Dataset d, double scale, uint64_t seed);

/// Convenience: full-size stand-in.
inline Graph MakeDataset(Dataset d, uint64_t seed) {
  return MakeDataset(d, 1.0, seed);
}

}  // namespace psi::graph

#endif  // SMARTPSI_GRAPH_DATASETS_H_
