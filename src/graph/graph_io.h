#ifndef SMARTPSI_GRAPH_GRAPH_IO_H_
#define SMARTPSI_GRAPH_GRAPH_IO_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "graph/query_graph.h"
#include "util/status.h"

namespace psi::graph {

/// Text graph format used by the GraMi / ScaleMine / subgraph-isomorphism
/// literature (".lg"):
///
///   # comment
///   t 1                 (optional transaction header, ignored)
///   v <id> <label>
///   e <src> <dst> [<label>]
///
/// Node ids must be dense 0..n-1 and declared before use in edges.

/// Parses a graph from a stream.
util::Result<Graph> ReadLg(std::istream& in);

/// Loads a graph from a file path.
util::Result<Graph> LoadLgFile(const std::string& path);

/// Writes `g` in .lg format.
void WriteLg(const Graph& g, std::ostream& out);

/// Saves `g` to a file path.
util::Status SaveLgFile(const Graph& g, const std::string& path);

/// Pivoted-query file format: a sequence of .lg transaction blocks, each
/// introduced by a `t` line and extended with one `p <node id>` record
/// naming the pivot:
///
///   t 1
///   v 0 3
///   v 1 5
///   e 0 1
///   p 0
///   t 2
///   ...
///
/// Queries without a `p` record are rejected. Node ids are block-local and
/// dense.
util::Result<std::vector<QueryGraph>> ReadQueries(std::istream& in);

util::Result<std::vector<QueryGraph>> LoadQueryFile(const std::string& path);

/// Writes queries in the format above (t records numbered from 1).
void WriteQueries(const std::vector<QueryGraph>& queries, std::ostream& out);

util::Status SaveQueryFile(const std::vector<QueryGraph>& queries,
                           const std::string& path);

}  // namespace psi::graph

#endif  // SMARTPSI_GRAPH_GRAPH_IO_H_
