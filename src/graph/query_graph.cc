#include "graph/query_graph.h"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace psi::graph {

NodeId QueryGraph::AddNode(Label label) {
  assert(labels_.size() < kMaxNodes);
  labels_.push_back(label);
  adjacency_.emplace_back();
  adj_bits_.push_back(0);
  return static_cast<NodeId>(labels_.size() - 1);
}

bool QueryGraph::AddEdge(NodeId u, NodeId v, Label label) {
  assert(u < labels_.size() && v < labels_.size());
  if (u == v || HasEdge(u, v)) return false;
  adjacency_[u].emplace_back(v, label);
  adjacency_[v].emplace_back(u, label);
  adj_bits_[u] |= 1ULL << v;
  adj_bits_[v] |= 1ULL << u;
  ++num_edges_;
  return true;
}

Label QueryGraph::EdgeLabel(NodeId u, NodeId v) const {
  assert(HasEdge(u, v));
  for (const auto& [nbr, label] : adjacency_[u]) {
    if (nbr == v) return label;
  }
  assert(false && "edge missing despite bitset");
  return kDefaultEdgeLabel;
}

bool QueryGraph::IsConnected() const {
  if (labels_.empty()) return true;
  uint64_t visited = 1ULL;  // node 0
  uint64_t frontier = 1ULL;
  while (frontier != 0) {
    uint64_t next = 0;
    for (size_t v = 0; v < labels_.size(); ++v) {
      if ((frontier >> v) & 1ULL) next |= adj_bits_[v];
    }
    frontier = next & ~visited;
    visited |= next;
  }
  const uint64_t all =
      labels_.size() == 64 ? ~0ULL : (1ULL << labels_.size()) - 1;
  return (visited & all) == all;
}

size_t QueryGraph::max_label_plus_one() const {
  size_t result = 0;
  for (const Label l : labels_) {
    result = std::max(result, static_cast<size_t>(l) + 1);
  }
  return result;
}

uint64_t QueryGraph::Fingerprint() const {
  // SplitMix64-style accumulation: absorb one 64-bit word per fact.
  uint64_t h = 0x9e3779b97f4a7c15ULL;
  auto absorb = [&h](uint64_t x) {
    h ^= x + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    h *= 0xbf58476d1ce4e5b9ULL;
    h ^= h >> 27;
  };
  absorb(labels_.size());
  for (const Label l : labels_) absorb(l);
  for (size_t v = 0; v < labels_.size(); ++v) {
    for (const auto& [nbr, label] : adjacency_[v]) {
      if (v < nbr) {
        absorb((static_cast<uint64_t>(v) << 32) | nbr);
        absorb(label);
      }
    }
  }
  absorb(static_cast<uint64_t>(pivot_) + 1);
  return h;
}

std::string QueryGraph::ToString() const {
  std::ostringstream oss;
  oss << "Q(";
  if (has_pivot()) {
    oss << "pivot=" << pivot_;
  } else {
    oss << "no pivot";
  }
  oss << ")";
  for (size_t v = 0; v < labels_.size(); ++v) {
    oss << " " << v << ":" << labels_[v];
  }
  oss << " ;";
  for (size_t v = 0; v < labels_.size(); ++v) {
    for (const auto& [nbr, label] : adjacency_[v]) {
      if (v < nbr) oss << " " << v << "-" << nbr << ":" << label;
    }
  }
  return oss.str();
}

}  // namespace psi::graph
