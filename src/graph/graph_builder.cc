#include "graph/graph_builder.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <string>

namespace psi::graph {

void GraphBuilder::Reserve(size_t nodes, size_t edges) {
  node_labels_.reserve(nodes);
  edges_.reserve(edges);
}

NodeId GraphBuilder::AddNode(Label label) {
  node_labels_.push_back(label);
  return static_cast<NodeId>(node_labels_.size() - 1);
}

void GraphBuilder::AddNodes(size_t count) {
  node_labels_.resize(node_labels_.size() + count, 0);
}

void GraphBuilder::SetNodeLabel(NodeId u, Label label) {
  assert(u < node_labels_.size());
  node_labels_[u] = label;
}

bool GraphBuilder::AddEdge(NodeId u, NodeId v, Label label) {
  assert(u < node_labels_.size() && v < node_labels_.size());
  if (u == v) return false;
  edges_.push_back({u, v, label});
  return true;
}

Graph GraphBuilder::Build() && {
  const size_t n = node_labels_.size();

  // Normalize to (min, max) endpoint order, sort, and deduplicate keeping the
  // first-added label for each undirected edge.
  for (auto& e : edges_) {
    if (e.u > e.v) std::swap(e.u, e.v);
  }
  std::stable_sort(edges_.begin(), edges_.end(),
                   [](const Edge& a, const Edge& b) {
                     return a.u != b.u ? a.u < b.u : a.v < b.v;
                   });
  edges_.erase(std::unique(edges_.begin(), edges_.end(),
                           [](const Edge& a, const Edge& b) {
                             return a.u == b.u && a.v == b.v;
                           }),
               edges_.end());

  Graph g;
  g.node_labels_ = std::move(node_labels_);
  g.offsets_.assign(n + 1, 0);
  for (const auto& e : edges_) {
    ++g.offsets_[e.u + 1];
    ++g.offsets_[e.v + 1];
  }
  std::partial_sum(g.offsets_.begin(), g.offsets_.end(), g.offsets_.begin());

  g.neighbors_.resize(edges_.size() * 2);
  g.edge_labels_.resize(edges_.size() * 2);
  std::vector<uint64_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const auto& e : edges_) {
    g.neighbors_[cursor[e.u]] = e.v;
    g.edge_labels_[cursor[e.u]++] = e.label;
    g.neighbors_[cursor[e.v]] = e.u;
    g.edge_labels_[cursor[e.v]++] = e.label;
  }

  // Sort each adjacency list by neighbor id, keeping edge labels aligned.
  for (NodeId u = 0; u < n; ++u) {
    const size_t begin = g.offsets_[u];
    const size_t end = g.offsets_[u + 1];
    const size_t deg = end - begin;
    if (deg <= 1) continue;
    std::vector<std::pair<NodeId, Label>> adj(deg);
    for (size_t i = 0; i < deg; ++i) {
      adj[i] = {g.neighbors_[begin + i], g.edge_labels_[begin + i]};
    }
    std::sort(adj.begin(), adj.end());
    for (size_t i = 0; i < deg; ++i) {
      g.neighbors_[begin + i] = adj[i].first;
      g.edge_labels_[begin + i] = adj[i].second;
    }
  }

  // Label index.
  Label max_label = 0;
  for (const Label l : g.node_labels_) max_label = std::max(max_label, l);
  const size_t num_labels = n == 0 ? 0 : static_cast<size_t>(max_label) + 1;
  g.label_offsets_.assign(num_labels + 1, 0);
  for (const Label l : g.node_labels_) ++g.label_offsets_[l + 1];
  std::partial_sum(g.label_offsets_.begin(), g.label_offsets_.end(),
                   g.label_offsets_.begin());
  g.nodes_by_label_.resize(n);
  std::vector<uint64_t> lcursor(g.label_offsets_.begin(),
                                g.label_offsets_.end() - 1);
  for (NodeId u = 0; u < n; ++u) {
    g.nodes_by_label_[lcursor[g.node_labels_[u]]++] = u;
  }

  edges_.clear();
  return g;
}

util::Result<Graph> GraphBuilder::FromCsr(
    std::span<const uint64_t> offsets, std::span<const NodeId> neighbors,
    std::span<const Label> edge_labels, std::span<const Label> node_labels,
    std::span<const NodeId> nodes_by_label,
    std::span<const uint64_t> label_offsets) {
  const size_t n = node_labels.size();
  const auto invalid = [](const char* what) {
    return util::Status::InvalidArgument(std::string("CSR adoption: ") + what);
  };

  if (offsets.size() != n + 1) return invalid("offsets size != num_nodes + 1");
  if (offsets[0] != 0) return invalid("offsets[0] != 0");
  for (size_t u = 0; u < n; ++u) {
    if (offsets[u] > offsets[u + 1]) return invalid("offsets not monotone");
  }
  if (offsets[n] != neighbors.size()) {
    return invalid("offsets.back() != neighbors size");
  }
  if (edge_labels.size() != neighbors.size()) {
    return invalid("edge_labels size != neighbors size");
  }

  // Per-node adjacency: strictly ascending, in range, no self-loops.
  for (size_t u = 0; u < n; ++u) {
    for (uint64_t i = offsets[u]; i < offsets[u + 1]; ++i) {
      const NodeId v = neighbors[i];
      if (v >= n) return invalid("neighbor id out of range");
      if (v == u) return invalid("self-loop in adjacency");
      if (i > offsets[u] && neighbors[i - 1] >= v) {
        return invalid("adjacency not strictly ascending");
      }
    }
  }

  // Undirected symmetry: every arc (u, v, l) has a reverse arc (v, u, l).
  // One O(E) pass instead of a per-arc binary search: sweeping arcs with u
  // ascending, the arcs *into* any fixed v arrive with u strictly ascending
  // (each u contributes at most one arc to v), which is exactly the order
  // of v's own already-validated ascending adjacency list. A per-node
  // cursor that must match arc-for-arc therefore pins the arc multiset to
  // its own transpose: every cursor is bounded by degree(v), and the total
  // number of increments equals the total number of arcs, so any unmatched
  // or leftover reverse arc forces a mismatch before the sweep ends.
  std::vector<uint64_t> cursor(n, 0);
  for (size_t u = 0; u < n; ++u) {
    for (uint64_t i = offsets[u]; i < offsets[u + 1]; ++i) {
      const NodeId v = neighbors[i];
      const uint64_t rev = offsets[v] + cursor[v];
      if (rev >= offsets[v + 1] || neighbors[rev] != static_cast<NodeId>(u)) {
        return invalid("adjacency not symmetric");
      }
      if (edge_labels[rev] != edge_labels[i]) {
        return invalid("edge labels not symmetric");
      }
      ++cursor[v];
    }
  }

  // Label alphabet and label index. Trailing empty labels are allowed (an
  // alphabet can be declared wider than the labels in use).
  if (label_offsets.empty()) return invalid("empty label_offsets");
  const size_t num_labels = label_offsets.size() - 1;
  if (label_offsets[0] != 0) return invalid("label_offsets[0] != 0");
  for (size_t l = 0; l < num_labels; ++l) {
    if (label_offsets[l] > label_offsets[l + 1]) {
      return invalid("label_offsets not monotone");
    }
  }
  if (label_offsets[num_labels] != n) {
    return invalid("label_offsets.back() != num_nodes");
  }
  if (nodes_by_label.size() != n) {
    return invalid("nodes_by_label size != num_nodes");
  }
  for (const Label l : node_labels) {
    if (static_cast<size_t>(l) >= num_labels) {
      return invalid("node label outside alphabet");
    }
  }
  // Each bucket: strictly ascending node ids carrying exactly that label.
  // Together with the size checks this pins the index to Build()'s output:
  // n entries, each node only admissible in its own label's bucket, so
  // every node appears exactly once.
  for (size_t l = 0; l < num_labels; ++l) {
    for (uint64_t i = label_offsets[l]; i < label_offsets[l + 1]; ++i) {
      const NodeId u = nodes_by_label[i];
      if (u >= n) return invalid("label index id out of range");
      if (node_labels[u] != l) return invalid("label index bucket mismatch");
      if (i > label_offsets[l] && nodes_by_label[i - 1] >= u) {
        return invalid("label index bucket not ascending");
      }
    }
  }

  Graph g;
  g.offsets_.assign(offsets.begin(), offsets.end());
  g.neighbors_.assign(neighbors.begin(), neighbors.end());
  g.edge_labels_.assign(edge_labels.begin(), edge_labels.end());
  g.node_labels_.assign(node_labels.begin(), node_labels.end());
  g.nodes_by_label_.assign(nodes_by_label.begin(), nodes_by_label.end());
  g.label_offsets_.assign(label_offsets.begin(), label_offsets.end());
  return g;
}

}  // namespace psi::graph
