#include "graph/graph_builder.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace psi::graph {

void GraphBuilder::Reserve(size_t nodes, size_t edges) {
  node_labels_.reserve(nodes);
  edges_.reserve(edges);
}

NodeId GraphBuilder::AddNode(Label label) {
  node_labels_.push_back(label);
  return static_cast<NodeId>(node_labels_.size() - 1);
}

void GraphBuilder::AddNodes(size_t count) {
  node_labels_.resize(node_labels_.size() + count, 0);
}

void GraphBuilder::SetNodeLabel(NodeId u, Label label) {
  assert(u < node_labels_.size());
  node_labels_[u] = label;
}

bool GraphBuilder::AddEdge(NodeId u, NodeId v, Label label) {
  assert(u < node_labels_.size() && v < node_labels_.size());
  if (u == v) return false;
  edges_.push_back({u, v, label});
  return true;
}

Graph GraphBuilder::Build() && {
  const size_t n = node_labels_.size();

  // Normalize to (min, max) endpoint order, sort, and deduplicate keeping the
  // first-added label for each undirected edge.
  for (auto& e : edges_) {
    if (e.u > e.v) std::swap(e.u, e.v);
  }
  std::stable_sort(edges_.begin(), edges_.end(),
                   [](const Edge& a, const Edge& b) {
                     return a.u != b.u ? a.u < b.u : a.v < b.v;
                   });
  edges_.erase(std::unique(edges_.begin(), edges_.end(),
                           [](const Edge& a, const Edge& b) {
                             return a.u == b.u && a.v == b.v;
                           }),
               edges_.end());

  Graph g;
  g.node_labels_ = std::move(node_labels_);
  g.offsets_.assign(n + 1, 0);
  for (const auto& e : edges_) {
    ++g.offsets_[e.u + 1];
    ++g.offsets_[e.v + 1];
  }
  std::partial_sum(g.offsets_.begin(), g.offsets_.end(), g.offsets_.begin());

  g.neighbors_.resize(edges_.size() * 2);
  g.edge_labels_.resize(edges_.size() * 2);
  std::vector<uint64_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const auto& e : edges_) {
    g.neighbors_[cursor[e.u]] = e.v;
    g.edge_labels_[cursor[e.u]++] = e.label;
    g.neighbors_[cursor[e.v]] = e.u;
    g.edge_labels_[cursor[e.v]++] = e.label;
  }

  // Sort each adjacency list by neighbor id, keeping edge labels aligned.
  for (NodeId u = 0; u < n; ++u) {
    const size_t begin = g.offsets_[u];
    const size_t end = g.offsets_[u + 1];
    const size_t deg = end - begin;
    if (deg <= 1) continue;
    std::vector<std::pair<NodeId, Label>> adj(deg);
    for (size_t i = 0; i < deg; ++i) {
      adj[i] = {g.neighbors_[begin + i], g.edge_labels_[begin + i]};
    }
    std::sort(adj.begin(), adj.end());
    for (size_t i = 0; i < deg; ++i) {
      g.neighbors_[begin + i] = adj[i].first;
      g.edge_labels_[begin + i] = adj[i].second;
    }
  }

  // Label index.
  Label max_label = 0;
  for (const Label l : g.node_labels_) max_label = std::max(max_label, l);
  const size_t num_labels = n == 0 ? 0 : static_cast<size_t>(max_label) + 1;
  g.label_offsets_.assign(num_labels + 1, 0);
  for (const Label l : g.node_labels_) ++g.label_offsets_[l + 1];
  std::partial_sum(g.label_offsets_.begin(), g.label_offsets_.end(),
                   g.label_offsets_.begin());
  g.nodes_by_label_.resize(n);
  std::vector<uint64_t> lcursor(g.label_offsets_.begin(),
                                g.label_offsets_.end() - 1);
  for (NodeId u = 0; u < n; ++u) {
    g.nodes_by_label_[lcursor[g.node_labels_[u]]++] = u;
  }

  edges_.clear();
  return g;
}

}  // namespace psi::graph
