#ifndef SMARTPSI_GRAPH_QUERY_EXTRACTOR_H_
#define SMARTPSI_GRAPH_QUERY_EXTRACTOR_H_

#include <cstddef>
#include <vector>

#include "graph/graph.h"
#include "graph/query_graph.h"
#include "util/random.h"

namespace psi::graph {

/// Extracts pivoted query graphs from a data graph the way the paper's
/// workload is built (§5.1): a random walk with restart collects a connected
/// node set of the requested size, the induced subgraph becomes the query,
/// and a random node of it becomes the pivot. Because queries are induced
/// subgraphs of the data graph, every extracted query has at least one match.
class QueryExtractor {
 public:
  struct Options {
    /// Restart (teleport back to the walk's start node) probability.
    double restart_probability = 0.15;
    /// Give up on a walk after this many steps without reaching the target
    /// size (then re-seed from a new start node).
    size_t max_steps_per_walk = 10000;
    /// Total attempts before Extract() fails (returns empty optional-like
    /// query with 0 nodes).
    size_t max_attempts = 64;
  };

  explicit QueryExtractor(const Graph& g) : graph_(g) {}
  QueryExtractor(const Graph& g, Options options)
      : graph_(g), options_(options) {}

  /// Extracts one query with exactly `size` nodes (>=1) and a random pivot.
  /// Returns a query with 0 nodes if the graph cannot yield one (e.g., all
  /// components smaller than `size`).
  QueryGraph Extract(size_t size, util::Rng& rng) const;

  /// Extracts `count` queries of the given size. Queries that cannot be
  /// extracted are skipped, so the result may be shorter than `count`.
  std::vector<QueryGraph> ExtractMany(size_t size, size_t count,
                                      util::Rng& rng) const;

 private:
  const Graph& graph_;
  Options options_;
};

}  // namespace psi::graph

#endif  // SMARTPSI_GRAPH_QUERY_EXTRACTOR_H_
