#ifndef SMARTPSI_GRAPH_TYPES_H_
#define SMARTPSI_GRAPH_TYPES_H_

#include <cstdint>
#include <limits>

namespace psi::graph {

/// Node identifier within one graph. Dense, 0-based.
using NodeId = uint32_t;

/// Node / edge label identifier. Dense, 0-based.
using Label = uint32_t;

/// Sentinel "no node" value (used for unmapped query nodes etc.).
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

/// Default label for unlabeled edges.
inline constexpr Label kDefaultEdgeLabel = 0;

}  // namespace psi::graph

#endif  // SMARTPSI_GRAPH_TYPES_H_
