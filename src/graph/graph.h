#ifndef SMARTPSI_GRAPH_GRAPH_H_
#define SMARTPSI_GRAPH_GRAPH_H_

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "graph/types.h"

namespace psi::graph {

class GraphBuilder;

/// Immutable undirected labeled graph in CSR (compressed sparse row) form.
///
/// This is the data-graph substrate every matching engine runs against:
/// * per-node sorted adjacency (binary-searchable for O(log d) edge checks),
/// * parallel per-edge labels,
/// * a label index grouping node ids by label (candidate extraction),
/// all laid out in contiguous arrays for cache-friendly traversal.
///
/// Construct via GraphBuilder. Instances are immutable after construction
/// and safe to share across threads.
class Graph {
 public:
  Graph() = default;

  Graph(const Graph&) = delete;
  Graph& operator=(const Graph&) = delete;
  Graph(Graph&&) = default;
  Graph& operator=(Graph&&) = default;

  /// Explicit deep copy. The implicit copy operations are deleted so a
  /// multi-GB CSR graph can never be duplicated by accident; the snapshot
  /// catalog uses Clone() to give each published snapshot its own arrays.
  Graph Clone() const;

  size_t num_nodes() const { return node_labels_.size(); }

  /// Number of undirected edges (each stored twice internally).
  size_t num_edges() const { return neighbors_.size() / 2; }

  /// Number of distinct node labels (= max label + 1; 0 for a
  /// default-constructed graph, whose label index is empty — the
  /// unconditional `size() - 1` would wrap to SIZE_MAX).
  size_t num_labels() const {
    return label_offsets_.empty() ? 0 : label_offsets_.size() - 1;
  }

  Label label(NodeId u) const { return node_labels_[u]; }

  size_t degree(NodeId u) const { return offsets_[u + 1] - offsets_[u]; }

  /// Sorted neighbor ids of `u`.
  std::span<const NodeId> neighbors(NodeId u) const {
    return {neighbors_.data() + offsets_[u],
            neighbors_.data() + offsets_[u + 1]};
  }

  /// Edge labels aligned with neighbors(u).
  std::span<const Label> edge_labels(NodeId u) const {
    return {edge_labels_.data() + offsets_[u],
            edge_labels_.data() + offsets_[u + 1]};
  }

  /// O(log degree(u)) adjacency check.
  bool HasEdge(NodeId u, NodeId v) const;

  /// Label of edge (u, v) if present.
  std::optional<Label> EdgeLabelBetween(NodeId u, NodeId v) const;

  /// All node ids carrying label `l`, sorted ascending. Empty span for an
  /// unused label value < num_labels() and for any l >= num_labels() (the
  /// bounds check keeps out-of-alphabet queries — and the empty graph —
  /// from indexing past the label index).
  std::span<const NodeId> nodes_with_label(Label l) const {
    if (static_cast<size_t>(l) + 1 >= label_offsets_.size()) return {};
    return {nodes_by_label_.data() + label_offsets_[l],
            nodes_by_label_.data() + label_offsets_[l + 1]};
  }

  /// Count of nodes carrying label `l`; 0 for l >= num_labels() (same
  /// bounds rule as nodes_with_label).
  size_t label_frequency(Label l) const {
    if (static_cast<size_t>(l) + 1 >= label_offsets_.size()) return 0;
    return label_offsets_[l + 1] - label_offsets_[l];
  }

  double average_degree() const {
    return num_nodes() == 0
               ? 0.0
               : 2.0 * static_cast<double>(num_edges()) /
                     static_cast<double>(num_nodes());
  }

  size_t max_degree() const;

 private:
  friend class GraphBuilder;

  std::vector<uint64_t> offsets_;     // num_nodes + 1
  std::vector<NodeId> neighbors_;     // 2 * num_edges, sorted per node
  std::vector<Label> edge_labels_;    // parallel to neighbors_
  std::vector<Label> node_labels_;    // num_nodes

  // Label index: node ids grouped by label.
  std::vector<NodeId> nodes_by_label_;   // num_nodes
  std::vector<uint64_t> label_offsets_;  // num_labels + 1
};

}  // namespace psi::graph

#endif  // SMARTPSI_GRAPH_GRAPH_H_
