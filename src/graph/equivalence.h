#ifndef SMARTPSI_GRAPH_EQUIVALENCE_H_
#define SMARTPSI_GRAPH_EQUIVALENCE_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"

namespace psi::graph {

/// Syntactic-equivalence partition of a graph's nodes, after BoostIso
/// (Ren & Wang, PVLDB'15): two nodes are *twins* when swapping them is a
/// graph automorphism, so any embedding through one yields an embedding
/// through the other. For PSI this means the whole class shares one
/// validity answer — evaluate a representative, copy the result.
///
/// Detected twin kinds (both require equal node labels):
///  * open twins: identical labeled neighbor lists (u and v not adjacent),
///  * closed twins: u ~ v with identical closed neighborhoods, restricted
///    to nodes whose incident edge labels are all equal (the common
///    unlabeled-edge case) so the label function stays symmetric.
///
/// Power-law graphs are full of twins (degree-1 leaves hanging off hubs),
/// which is exactly where PSI workloads spend candidate evaluations.
struct EquivalenceClasses {
  /// class_of[node] = dense class id.
  std::vector<uint32_t> class_of;
  /// representative[class id] = smallest node id in the class.
  std::vector<NodeId> representative;

  size_t num_classes() const { return representative.size(); }

  /// True iff the two nodes are in the same class.
  bool Equivalent(NodeId u, NodeId v) const {
    return class_of[u] == class_of[v];
  }
};

EquivalenceClasses ComputeSyntacticEquivalence(const Graph& g);

}  // namespace psi::graph

#endif  // SMARTPSI_GRAPH_EQUIVALENCE_H_
