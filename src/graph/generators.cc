#include "graph/generators.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_set>
#include <vector>

#include "graph/graph_builder.h"

namespace psi::graph {

namespace {

/// Packs an undirected edge into one 64-bit key for dedup sets.
uint64_t EdgeKey(NodeId u, NodeId v) {
  if (u > v) std::swap(u, v);
  return (static_cast<uint64_t>(u) << 32) | v;
}

void AssignLabels(GraphBuilder& builder, size_t num_nodes,
                  const LabelConfig& labels, util::Rng& rng) {
  util::ZipfSampler sampler(std::max<size_t>(1, labels.num_labels),
                            labels.zipf_exponent);
  for (NodeId u = 0; u < num_nodes; ++u) {
    builder.SetNodeLabel(u, static_cast<Label>(sampler.Sample(rng)));
  }
}

Label SampleEdgeLabel(const LabelConfig& labels, util::Rng& rng) {
  if (labels.num_edge_labels <= 1) return kDefaultEdgeLabel;
  return static_cast<Label>(rng.NextBounded(labels.num_edge_labels));
}

}  // namespace

Graph ErdosRenyi(size_t num_nodes, size_t num_edges, const LabelConfig& labels,
                 util::Rng& rng) {
  assert(num_nodes >= 2 || num_edges == 0);
  const double max_edges =
      static_cast<double>(num_nodes) * static_cast<double>(num_nodes - 1) / 2;
  assert(static_cast<double>(num_edges) <= max_edges);
  (void)max_edges;

  GraphBuilder builder;
  builder.Reserve(num_nodes, num_edges);
  builder.AddNodes(num_nodes);
  AssignLabels(builder, num_nodes, labels, rng);

  std::unordered_set<uint64_t> seen;
  seen.reserve(num_edges * 2);
  while (seen.size() < num_edges) {
    const NodeId u = static_cast<NodeId>(rng.NextBounded(num_nodes));
    const NodeId v = static_cast<NodeId>(rng.NextBounded(num_nodes));
    if (u == v) continue;
    if (!seen.insert(EdgeKey(u, v)).second) continue;
    builder.AddEdge(u, v, SampleEdgeLabel(labels, rng));
  }
  return std::move(builder).Build();
}

Graph BarabasiAlbert(size_t num_nodes, size_t edges_per_node,
                     const LabelConfig& labels, util::Rng& rng) {
  assert(num_nodes > edges_per_node && edges_per_node >= 1);
  GraphBuilder builder;
  builder.Reserve(num_nodes, num_nodes * edges_per_node);
  builder.AddNodes(num_nodes);
  AssignLabels(builder, num_nodes, labels, rng);

  // `targets` holds one entry per edge endpoint, so uniform sampling from it
  // is degree-proportional sampling.
  std::vector<NodeId> targets;
  targets.reserve(2 * num_nodes * edges_per_node);

  // Seed clique over the first edges_per_node + 1 nodes.
  const size_t seed_size = edges_per_node + 1;
  for (NodeId u = 0; u < seed_size; ++u) {
    for (NodeId v = u + 1; v < seed_size; ++v) {
      builder.AddEdge(u, v, SampleEdgeLabel(labels, rng));
      targets.push_back(u);
      targets.push_back(v);
    }
  }

  std::unordered_set<NodeId> chosen;
  std::vector<NodeId> chosen_sorted;
  for (NodeId u = static_cast<NodeId>(seed_size); u < num_nodes; ++u) {
    chosen.clear();
    while (chosen.size() < edges_per_node) {
      const NodeId v = targets[rng.NextBounded(targets.size())];
      if (v != u) chosen.insert(v);
    }
    // Emit in sorted order: iterating the unordered_set directly would let
    // the stdlib's hash order pick the edge-label RNG draw order and the
    // degree-proportional `targets` layout, making "same seed, same graph"
    // hold only within one standard-library implementation.
    chosen_sorted.assign(chosen.begin(), chosen.end());
    std::sort(chosen_sorted.begin(), chosen_sorted.end());
    for (const NodeId v : chosen_sorted) {
      builder.AddEdge(u, v, SampleEdgeLabel(labels, rng));
      targets.push_back(u);
      targets.push_back(v);
    }
  }
  return std::move(builder).Build();
}

Graph ChungLuPowerLaw(size_t num_nodes, size_t num_edges,
                      double power_exponent, const LabelConfig& labels,
                      util::Rng& rng) {
  assert(power_exponent > 1.0);
  GraphBuilder builder;
  builder.Reserve(num_nodes, num_edges);
  builder.AddNodes(num_nodes);
  AssignLabels(builder, num_nodes, labels, rng);

  // Endpoint sampling by weight w_i ∝ (i+1)^(-1/(β-1)) via a Zipf sampler —
  // the resulting expected degrees follow a power law with exponent β.
  util::ZipfSampler endpoint(num_nodes, 1.0 / (power_exponent - 1.0));

  std::unordered_set<uint64_t> seen;
  seen.reserve(num_edges * 2);
  // Bounded retry budget so dense requests cannot loop forever once the
  // heavy head of the distribution saturates.
  size_t attempts = 0;
  const size_t max_attempts = num_edges * 20 + 1000;
  while (seen.size() < num_edges && attempts < max_attempts) {
    ++attempts;
    const NodeId u = static_cast<NodeId>(endpoint.Sample(rng));
    const NodeId v = static_cast<NodeId>(endpoint.Sample(rng));
    if (u == v) continue;
    if (!seen.insert(EdgeKey(u, v)).second) continue;
    builder.AddEdge(u, v, SampleEdgeLabel(labels, rng));
  }
  return std::move(builder).Build();
}

Graph Rmat(size_t scale, size_t num_edges, double a, double b, double c,
           const LabelConfig& labels, util::Rng& rng) {
  const double d = 1.0 - a - b - c;
  assert(a >= 0 && b >= 0 && c >= 0 && d >= -1e-9);
  (void)d;
  const size_t num_nodes = size_t{1} << scale;

  GraphBuilder builder;
  builder.Reserve(num_nodes, num_edges);
  builder.AddNodes(num_nodes);
  AssignLabels(builder, num_nodes, labels, rng);

  std::unordered_set<uint64_t> seen;
  seen.reserve(num_edges * 2);
  size_t attempts = 0;
  const size_t max_attempts = num_edges * 20 + 1000;
  while (seen.size() < num_edges && attempts < max_attempts) {
    ++attempts;
    NodeId u = 0;
    NodeId v = 0;
    for (size_t bit = 0; bit < scale; ++bit) {
      const double r = rng.NextDouble();
      u <<= 1;
      v <<= 1;
      if (r < a) {
        // top-left quadrant: no bits set
      } else if (r < a + b) {
        v |= 1;
      } else if (r < a + b + c) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
    }
    if (u == v) continue;
    if (!seen.insert(EdgeKey(u, v)).second) continue;
    builder.AddEdge(u, v, SampleEdgeLabel(labels, rng));
  }
  return std::move(builder).Build();
}

Graph RelabelWithHomophily(const Graph& g, double strength, size_t sweeps,
                           util::Rng& rng) {
  std::vector<Label> labels(g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) labels[u] = g.label(u);
  for (size_t sweep = 0; sweep < sweeps; ++sweep) {
    // Asynchronous (in-place) label propagation: each adoption reads the
    // *current* labeling, so an adopting node is guaranteed to match the
    // sampled neighbor afterwards and label regions can cascade within one
    // sweep. Snapshot semantics mix far too slowly on clustering-free
    // random graphs (both endpoints resample simultaneously, so an edge
    // only becomes monochromatic by coincidence).
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      const auto nbrs = g.neighbors(u);
      if (nbrs.empty() || !rng.NextBool(strength)) continue;
      labels[u] = labels[nbrs[rng.NextBounded(nbrs.size())]];
    }
  }

  GraphBuilder builder;
  builder.Reserve(g.num_nodes(), g.num_edges());
  builder.AddNodes(g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    builder.SetNodeLabel(u, labels[u]);
  }
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const auto nbrs = g.neighbors(u);
    const auto edge_labels = g.edge_labels(u);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      if (u < nbrs[i]) builder.AddEdge(u, nbrs[i], edge_labels[i]);
    }
  }
  return std::move(builder).Build();
}

}  // namespace psi::graph
