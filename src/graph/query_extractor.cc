#include "graph/query_extractor.h"

#include <unordered_set>

#include "graph/algorithms.h"

namespace psi::graph {

QueryGraph QueryExtractor::Extract(size_t size, util::Rng& rng) const {
  if (size == 0 || size > QueryGraph::kMaxNodes ||
      graph_.num_nodes() == 0) {
    return QueryGraph();
  }
  for (size_t attempt = 0; attempt < options_.max_attempts; ++attempt) {
    const NodeId start =
        static_cast<NodeId>(rng.NextBounded(graph_.num_nodes()));
    if (graph_.degree(start) == 0 && size > 1) continue;

    std::vector<NodeId> collected{start};
    std::unordered_set<NodeId> in_set{start};
    NodeId current = start;
    size_t steps = 0;
    while (collected.size() < size && steps < options_.max_steps_per_walk) {
      ++steps;
      if (rng.NextBool(options_.restart_probability)) {
        current = start;
        continue;
      }
      const auto nbrs = graph_.neighbors(current);
      if (nbrs.empty()) {
        current = start;
        continue;
      }
      current = nbrs[rng.NextBounded(nbrs.size())];
      if (in_set.insert(current).second) collected.push_back(current);
    }
    if (collected.size() != size) continue;

    QueryGraph q = InducedSubgraph(graph_, collected);
    q.set_pivot(static_cast<NodeId>(rng.NextBounded(q.num_nodes())));
    return q;
  }
  return QueryGraph();
}

std::vector<QueryGraph> QueryExtractor::ExtractMany(size_t size, size_t count,
                                                    util::Rng& rng) const {
  std::vector<QueryGraph> queries;
  queries.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    QueryGraph q = Extract(size, rng);
    if (q.num_nodes() == size) queries.push_back(std::move(q));
  }
  return queries;
}

}  // namespace psi::graph
