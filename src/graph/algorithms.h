#ifndef SMARTPSI_GRAPH_ALGORITHMS_H_
#define SMARTPSI_GRAPH_ALGORITHMS_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "graph/query_graph.h"
#include "graph/types.h"

namespace psi::graph {

/// BFS from `source` up to `max_depth` hops. Returns hop distances
/// (UINT32_MAX for unreached nodes). Allocates O(N); for repeated bounded
/// BFS from many sources prefer BoundedBfs with a reusable scratch buffer.
std::vector<uint32_t> BfsDistances(const Graph& g, NodeId source,
                                   uint32_t max_depth = UINT32_MAX);

/// Reusable scratch state for repeated bounded BFS traversals (used by the
/// exploration-based signature builder, which runs one BFS per node).
class BoundedBfs {
 public:
  explicit BoundedBfs(size_t num_nodes);

  /// Visits every node within `max_depth` hops of `source`, invoking
  /// `visit(node, depth)` exactly once per reached node (including the
  /// source at depth 0). Distances are shortest-path hop counts.
  template <typename Visitor>
  void Run(const Graph& g, NodeId source, uint32_t max_depth, Visitor visit) {
    ++epoch_;
    queue_.clear();
    queue_.push_back(source);
    seen_epoch_[source] = epoch_;
    depth_[source] = 0;
    for (size_t head = 0; head < queue_.size(); ++head) {
      const NodeId u = queue_[head];
      const uint32_t d = depth_[u];
      visit(u, d);
      if (d == max_depth) continue;
      for (const NodeId v : g.neighbors(u)) {
        if (seen_epoch_[v] != epoch_) {
          seen_epoch_[v] = epoch_;
          depth_[v] = d + 1;
          queue_.push_back(v);
        }
      }
    }
  }

 private:
  std::vector<uint64_t> seen_epoch_;
  std::vector<uint32_t> depth_;
  std::vector<NodeId> queue_;
  uint64_t epoch_ = 0;
};

/// Connected components; returns component id per node and sets
/// `*num_components` if non-null.
std::vector<uint32_t> ConnectedComponents(const Graph& g,
                                          size_t* num_components = nullptr);

/// Degree distribution summary.
struct DegreeStats {
  size_t min = 0;
  size_t max = 0;
  double mean = 0.0;
  double median = 0.0;
};

DegreeStats ComputeDegreeStats(const Graph& g);

/// Builds the query graph induced by `nodes` (data-graph node ids; must be
/// distinct, at most QueryGraph::kMaxNodes). Node i of the result
/// corresponds to nodes[i]; labels and mutual edges (with edge labels) are
/// copied from `g`. No pivot is set.
QueryGraph InducedSubgraph(const Graph& g, const std::vector<NodeId>& nodes);

}  // namespace psi::graph

#endif  // SMARTPSI_GRAPH_ALGORITHMS_H_
