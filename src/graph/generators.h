#ifndef SMARTPSI_GRAPH_GENERATORS_H_
#define SMARTPSI_GRAPH_GENERATORS_H_

#include <cstddef>

#include "graph/graph.h"
#include "util/random.h"

namespace psi::graph {

/// Label assignment policy for synthetic graphs.
struct LabelConfig {
  /// Number of distinct node labels.
  size_t num_labels = 1;
  /// Zipf exponent of the label distribution (0 = uniform; real datasets in
  /// the paper have heavily skewed label frequencies, ~0.8-1.2 works well).
  double zipf_exponent = 0.8;
  /// Number of distinct edge labels (1 = effectively unlabeled edges).
  size_t num_edge_labels = 1;
};

/// G(n, m) Erdős–Rényi: exactly `num_edges` distinct undirected edges chosen
/// uniformly (self-loops excluded). Requires num_edges <= n*(n-1)/2.
Graph ErdosRenyi(size_t num_nodes, size_t num_edges, const LabelConfig& labels,
                 util::Rng& rng);

/// Barabási–Albert preferential attachment: each new node attaches to
/// `edges_per_node` existing nodes with probability proportional to degree.
Graph BarabasiAlbert(size_t num_nodes, size_t edges_per_node,
                     const LabelConfig& labels, util::Rng& rng);

/// Chung–Lu style power-law graph: samples `num_edges` edges with endpoint
/// probability proportional to a target power-law weight sequence
/// w_i ∝ (i+1)^(-1/(power_exponent-1)). Duplicates are dropped, so the
/// realized edge count is slightly below `num_edges` for dense requests.
/// Reproduces the heavy-tailed degree distributions of the paper's social
/// graphs (YouTube/Twitter/Weibo stand-ins).
Graph ChungLuPowerLaw(size_t num_nodes, size_t num_edges,
                      double power_exponent, const LabelConfig& labels,
                      util::Rng& rng);

/// R-MAT recursive-matrix generator (Kronecker-like). `scale` gives
/// 2^scale nodes; partition probabilities (a, b, c, d) must sum to 1.
Graph Rmat(size_t scale, size_t num_edges, double a, double b, double c,
           const LabelConfig& labels, util::Rng& rng);

/// Rebuilds `g` with homophilous node labels: starting from the existing
/// labels, runs `sweeps` passes in which each node adopts the label of a
/// uniformly random neighbor with probability `strength` (in [0, 1]).
/// Structure and edge labels are preserved.
///
/// Real labeled graphs (protein functions, citation areas, user locations)
/// are strongly homophilous — adjacent nodes often share labels — which is
/// what makes subgraph-isomorphism enumeration explode on frequent-label
/// queries. Independent label assignment misses that regime entirely, so
/// the dataset stand-ins apply this pass (see datasets.cc).
Graph RelabelWithHomophily(const Graph& g, double strength, size_t sweeps,
                           util::Rng& rng);

}  // namespace psi::graph

#endif  // SMARTPSI_GRAPH_GENERATORS_H_
