#include "graph/graph.h"

#include <algorithm>

namespace psi::graph {

Graph Graph::Clone() const {
  Graph copy;
  copy.offsets_ = offsets_;
  copy.neighbors_ = neighbors_;
  copy.edge_labels_ = edge_labels_;
  copy.node_labels_ = node_labels_;
  copy.nodes_by_label_ = nodes_by_label_;
  copy.label_offsets_ = label_offsets_;
  return copy;
}

bool Graph::HasEdge(NodeId u, NodeId v) const {
  const auto nbrs = neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

std::optional<Label> Graph::EdgeLabelBetween(NodeId u, NodeId v) const {
  const auto nbrs = neighbors(u);
  const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), v);
  if (it == nbrs.end() || *it != v) return std::nullopt;
  return edge_labels_[offsets_[u] + static_cast<size_t>(it - nbrs.begin())];
}

size_t Graph::max_degree() const {
  size_t best = 0;
  for (NodeId u = 0; u < num_nodes(); ++u) best = std::max(best, degree(u));
  return best;
}

}  // namespace psi::graph
