#include "graph/datasets.h"

#include <algorithm>
#include <array>
#include <cassert>

#include "graph/generators.h"
#include "util/random.h"

namespace psi::graph {

namespace {

// Published counts from paper Table 3. Degree exponent 0 = Erdős–Rényi
// (PPI/citation graphs have light-tailed degrees at this scale); otherwise
// Chung–Lu power law with the given exponent (social graphs).
const std::array<DatasetSpec, 6> kSpecs = {{
    {"Yeast", 3112, 12519, 71, 0.9, 0.0},
    {"Cora", 2708, 5429, 7, 0.5, 0.0},
    {"Human", 4674, 86282, 44, 0.9, 0.0},
    {"YouTube", 5101938, 42546295, 25, 1.0, 2.2},
    {"Twitter", 11316811, 85331846, 25, 1.0, 2.1},
    {"Weibo", 1655678, 369438063, 55, 1.0, 2.0},
}};

// Label homophily per dataset family (adopt-a-neighbor's-label probability;
// see RelabelWithHomophily). Citation areas are strongly homophilous,
// protein functions and user locations moderately so; the paper's Twitter
// labels were assigned synthetically and get the weakest correlation.
const std::array<double, 6> kHomophily = {0.5, 0.8, 0.6, 0.5, 0.3, 0.6};

size_t SpecIndex(Dataset d) { return static_cast<size_t>(d); }

}  // namespace

const DatasetSpec& GetDatasetSpec(Dataset d) { return kSpecs[SpecIndex(d)]; }

std::vector<Dataset> AllDatasets() {
  return {Dataset::kYeast,   Dataset::kCora,    Dataset::kHuman,
          Dataset::kYouTube, Dataset::kTwitter, Dataset::kWeibo};
}

Graph MakeDataset(Dataset d, double scale, uint64_t seed) {
  assert(scale > 0.0 && scale <= 1.0);
  const DatasetSpec& spec = GetDatasetSpec(d);

  const size_t nodes = std::max<size_t>(
      16, static_cast<size_t>(static_cast<double>(spec.nodes) * scale));
  size_t edges = std::max<size_t>(
      nodes, static_cast<size_t>(static_cast<double>(spec.edges) * scale));
  // Cap density at half the complete graph so Erdős–Rényi always terminates.
  const double max_edges =
      static_cast<double>(nodes) * static_cast<double>(nodes - 1) / 4.0;
  edges = std::min(edges, static_cast<size_t>(max_edges));

  LabelConfig labels;
  labels.num_labels = spec.labels;
  labels.zipf_exponent = spec.label_skew;

  util::Rng rng(seed ^ (0xD5ULL + SpecIndex(d)));
  Graph structure =
      spec.degree_exponent == 0.0
          ? ErdosRenyi(nodes, edges, labels, rng)
          : ChungLuPowerLaw(nodes, edges, spec.degree_exponent, labels, rng);
  return RelabelWithHomophily(structure, kHomophily[SpecIndex(d)],
                              /*sweeps=*/2, rng);
}

}  // namespace psi::graph
