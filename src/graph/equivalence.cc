#include "graph/equivalence.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>

namespace psi::graph {

namespace {

/// Disjoint-set forest with path halving.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  uint32_t Find(uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void Union(uint32_t a, uint32_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<uint32_t> parent_;
};

/// FNV-1a over a word sequence.
uint64_t HashWords(std::initializer_list<uint64_t> prefix,
                   std::span<const uint64_t> words) {
  uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](uint64_t w) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (w >> (byte * 8)) & 0xffULL;
      h *= 0x100000001b3ULL;
    }
  };
  for (const uint64_t w : prefix) mix(w);
  for (const uint64_t w : words) mix(w);
  return h;
}

}  // namespace

EquivalenceClasses ComputeSyntacticEquivalence(const Graph& g) {
  const size_t n = g.num_nodes();
  UnionFind uf(n);

  // Group by hash first; verify exact key equality against the group's
  // first member to rule out hash collisions (keys can be large, so we
  // avoid storing more than one materialized key per group).
  std::unordered_map<uint64_t, NodeId> open_groups;
  std::unordered_map<uint64_t, NodeId> closed_groups;
  open_groups.reserve(n);
  closed_groups.reserve(n);

  std::vector<uint64_t> key_u;
  std::vector<uint64_t> key_v;

  // Open-twin key: (label, sorted (neighbor, edge label) pairs). Adjacency
  // is already sorted by neighbor id in CSR form.
  auto build_open_key = [&](NodeId u, std::vector<uint64_t>& out) {
    out.clear();
    const auto nbrs = g.neighbors(u);
    const auto elabels = g.edge_labels(u);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      out.push_back((static_cast<uint64_t>(nbrs[i]) << 32) | elabels[i]);
    }
  };

  // Closed-twin key: (label, uniform incident edge label, sorted closed
  // neighborhood N(u) ∪ {u}); empty when incident labels are mixed.
  auto build_closed_key = [&](NodeId u, std::vector<uint64_t>& out) -> bool {
    const auto elabels = g.edge_labels(u);
    if (elabels.empty()) return false;
    for (const Label l : elabels) {
      if (l != elabels[0]) return false;
    }
    out.clear();
    const auto nbrs = g.neighbors(u);
    out.push_back(elabels[0]);
    size_t i = 0;
    bool self_inserted = false;
    for (; i < nbrs.size(); ++i) {
      if (!self_inserted && nbrs[i] > u) {
        out.push_back(u);
        self_inserted = true;
      }
      out.push_back(nbrs[i]);
    }
    if (!self_inserted) out.push_back(u);
    return true;
  };

  auto keys_equal = [&](NodeId a, NodeId b, bool closed) {
    if (g.label(a) != g.label(b)) return false;
    if (closed) {
      if (!build_closed_key(a, key_u) || !build_closed_key(b, key_v)) {
        return false;
      }
    } else {
      build_open_key(a, key_u);
      build_open_key(b, key_v);
    }
    return key_u == key_v;
  };

  for (NodeId u = 0; u < n; ++u) {
    build_open_key(u, key_u);
    const uint64_t open_hash = HashWords({g.label(u), 0}, key_u);
    const auto [open_it, open_new] = open_groups.try_emplace(open_hash, u);
    if (!open_new && keys_equal(open_it->second, u, /*closed=*/false)) {
      uf.Union(open_it->second, u);
    }

    if (build_closed_key(u, key_u)) {
      const uint64_t closed_hash = HashWords({g.label(u), 1}, key_u);
      const auto [closed_it, closed_new] =
          closed_groups.try_emplace(closed_hash, u);
      if (!closed_new && keys_equal(closed_it->second, u, /*closed=*/true)) {
        uf.Union(closed_it->second, u);
      }
    }
  }

  // Densify class ids, smallest member becomes the representative.
  EquivalenceClasses classes;
  classes.class_of.assign(n, UINT32_MAX);
  std::unordered_map<uint32_t, uint32_t> root_to_class;
  root_to_class.reserve(n);
  for (NodeId u = 0; u < n; ++u) {
    const uint32_t root = uf.Find(u);
    const auto [it, inserted] = root_to_class.try_emplace(
        root, static_cast<uint32_t>(classes.representative.size()));
    if (inserted) classes.representative.push_back(u);
    classes.class_of[u] = it->second;
  }
  return classes;
}

}  // namespace psi::graph
