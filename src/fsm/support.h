#ifndef SMARTPSI_FSM_SUPPORT_H_
#define SMARTPSI_FSM_SUPPORT_H_

#include <cstdint>
#include <future>
#include <optional>
#include <string>

#include "graph/graph.h"
#include "graph/query_graph.h"
#include "service/request.h"
#include "service/service.h"
#include "signature/signature_matrix.h"
#include "util/timer.h"

namespace psi::fsm {

/// How a pattern's MNI support is computed.
enum class SupportMethod {
  /// ScaleMine-style baseline: enumerate embeddings with plain subgraph
  /// isomorphism and count distinct images per pattern node.
  kEnumeration,
  /// SmartPSI-style: one PSI evaluation per pattern node (stop at the
  /// first embedding per candidate), with signature pruning.
  kPsi,
};

const char* SupportMethodName(SupportMethod method);

/// Result of one support evaluation, thresholded at `min_support`:
/// MNI (minimum node image) support = min over pattern nodes v of the
/// number of distinct data nodes that bind v in some embedding.
struct SupportResult {
  /// True iff MNI >= min_support.
  bool frequent = false;
  /// A lower bound on the MNI; exact when the evaluation ran to
  /// completion, and >= min_support whenever `frequent`.
  uint64_t support = 0;
  /// False if the deadline interrupted the evaluation (frequent is then
  /// "unknown = treated infrequent").
  bool complete = true;
};

/// Evaluates MNI support of `pattern` (no pivot needed; every node is
/// pivoted in turn) against `g`, stopping early as soon as frequency or
/// infrequency is decided. `graph_sigs` is only used by kPsi (may be null
/// for kEnumeration).
SupportResult EvaluateSupport(const graph::Graph& g,
                              const signature::SignatureMatrix* graph_sigs,
                              const graph::QueryGraph& pattern,
                              uint64_t min_support, SupportMethod method,
                              util::Deadline deadline);

// --- Service-backed support (DESIGN.md §17) -------------------------------
//
// The mining-at-scale path: each candidate pattern's per-pivot PSI probes
// go to a PsiService as ONE batch (SubmitBatch), pinned to one catalog
// snapshot, so support counting inherits hot-swap safety, deadlines,
// admission control, metrics and fault injection from the serving layer.
// Probes are pessimistic pure-method queries; the service answers each
// pivot's full valid-node set exactly, so the reduced support is the exact
// MNI — it can exceed the capped lower bound the in-process kPsi early-stop
// reports, but the frequent/infrequent verdict always agrees (both compare
// the same MNI against min_support).

/// Submits the per-pivot probe batch for `pattern` without blocking: one
/// kPessimistic QueryRequest per pattern node, all against `graph_name`
/// (empty = service default). Returns std::nullopt when the batch was shed
/// or the pattern is empty. `deadline_seconds` <= 0 means the service
/// default.
std::optional<std::future<service::BatchResponse>> SubmitSupportBatch(
    service::PsiService& service, const graph::QueryGraph& pattern,
    double deadline_seconds = 0.0, const std::string& graph_name = "");

/// Folds a settled probe batch into a SupportResult: MNI = min over pivots
/// of that pivot's distinct valid-node count. Any non-kOk member leaves the
/// verdict unknown (complete = false, treated infrequent) — one bad probe
/// degrades this pattern, never its siblings.
SupportResult ReduceServedSupport(const service::BatchResponse& response,
                                  size_t num_pattern_nodes,
                                  uint64_t min_support);

/// Blocking convenience: SubmitSupportBatch + ReduceServedSupport. A shed
/// batch returns incomplete (frequent unknown).
SupportResult EvaluateSupportServed(service::PsiService& service,
                                    const graph::QueryGraph& pattern,
                                    uint64_t min_support,
                                    double deadline_seconds = 0.0,
                                    const std::string& graph_name = "");

}  // namespace psi::fsm

#endif  // SMARTPSI_FSM_SUPPORT_H_
