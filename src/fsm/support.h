#ifndef SMARTPSI_FSM_SUPPORT_H_
#define SMARTPSI_FSM_SUPPORT_H_

#include <cstdint>

#include "graph/graph.h"
#include "graph/query_graph.h"
#include "signature/signature_matrix.h"
#include "util/timer.h"

namespace psi::fsm {

/// How a pattern's MNI support is computed.
enum class SupportMethod {
  /// ScaleMine-style baseline: enumerate embeddings with plain subgraph
  /// isomorphism and count distinct images per pattern node.
  kEnumeration,
  /// SmartPSI-style: one PSI evaluation per pattern node (stop at the
  /// first embedding per candidate), with signature pruning.
  kPsi,
};

const char* SupportMethodName(SupportMethod method);

/// Result of one support evaluation, thresholded at `min_support`:
/// MNI (minimum node image) support = min over pattern nodes v of the
/// number of distinct data nodes that bind v in some embedding.
struct SupportResult {
  /// True iff MNI >= min_support.
  bool frequent = false;
  /// A lower bound on the MNI; exact when the evaluation ran to
  /// completion, and >= min_support whenever `frequent`.
  uint64_t support = 0;
  /// False if the deadline interrupted the evaluation (frequent is then
  /// "unknown = treated infrequent").
  bool complete = true;
};

/// Evaluates MNI support of `pattern` (no pivot needed; every node is
/// pivoted in turn) against `g`, stopping early as soon as frequency or
/// infrequency is decided. `graph_sigs` is only used by kPsi (may be null
/// for kEnumeration).
SupportResult EvaluateSupport(const graph::Graph& g,
                              const signature::SignatureMatrix* graph_sigs,
                              const graph::QueryGraph& pattern,
                              uint64_t min_support, SupportMethod method,
                              util::Deadline deadline);

}  // namespace psi::fsm

#endif  // SMARTPSI_FSM_SUPPORT_H_
