#include "fsm/support.h"

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "match/candidates.h"
#include "match/plan.h"
#include "match/psi_evaluator.h"
#include "match/subgraph_enumerator.h"
#include "signature/builders.h"

namespace psi::fsm {

const char* SupportMethodName(SupportMethod method) {
  switch (method) {
    case SupportMethod::kEnumeration:
      return "enumeration";
    case SupportMethod::kPsi:
      return "psi";
  }
  return "unknown";
}

namespace {

SupportResult EvaluateByEnumeration(const graph::Graph& g,
                                    const graph::QueryGraph& pattern,
                                    uint64_t min_support,
                                    util::Deadline deadline) {
  SupportResult result;
  const size_t n = pattern.num_nodes();

  // Root the plan at the most selective pattern node.
  graph::NodeId root = 0;
  double best = -1.0;
  for (graph::NodeId v = 0; v < n; ++v) {
    const graph::Label label = pattern.label(v);
    const double freq = label < g.num_labels()
                            ? static_cast<double>(g.label_frequency(label))
                            : 0.0;
    const double score = freq / (1.0 + static_cast<double>(pattern.degree(v)));
    if (best < 0.0 || score < best) {
      best = score;
      root = v;
    }
  }
  const match::Plan plan = match::MakeHeuristicPlan(pattern, g, root);

  std::vector<std::unordered_set<graph::NodeId>> images(n);
  match::SubgraphEnumerator enumerator(g);
  match::SubgraphEnumerator::Options options;
  options.deadline = deadline;
  const auto enumeration = enumerator.Enumerate(
      pattern, plan,
      [&](std::span<const graph::NodeId> mapping) {
        bool all_reached = true;
        for (size_t v = 0; v < n; ++v) {
          images[v].insert(mapping[v]);
          if (images[v].size() < min_support) all_reached = false;
        }
        // Once every node has min_support distinct images, MNI >= threshold
        // is certain — stop enumerating.
        return !all_reached;
      },
      options);

  uint64_t mni = UINT64_MAX;
  for (const auto& set : images) {
    mni = std::min<uint64_t>(mni, set.size());
  }
  if (mni == UINT64_MAX) mni = 0;
  result.support = mni;
  result.frequent = mni >= min_support;
  // The enumeration is "incomplete" both when we stopped on success and
  // when the deadline fired; only the latter leaves the answer unknown.
  result.complete = enumeration.complete || result.frequent;
  return result;
}

SupportResult EvaluateByPsi(const graph::Graph& g,
                            const signature::SignatureMatrix& graph_sigs,
                            const graph::QueryGraph& pattern,
                            uint64_t min_support, util::Deadline deadline) {
  SupportResult result;
  graph::QueryGraph pivoted = pattern;  // local copy to move the pivot

  // Pattern signatures do not depend on the pivot: build once.
  for (graph::NodeId v = 0; v < pattern.num_nodes(); ++v) {
    if (pattern.label(v) >= g.num_labels() ||
        g.label_frequency(pattern.label(v)) == 0) {
      result.support = 0;
      result.frequent = min_support == 0;
      return result;
    }
  }
  const signature::SignatureMatrix pattern_sigs = signature::BuildSignatures(
      pivoted, graph_sigs.method(), graph_sigs.depth(),
      graph_sigs.num_labels());

  match::PsiEvaluator evaluator(g, graph_sigs);
  match::PsiEvaluator::Options options;
  options.mode = match::PsiMode::kPessimistic;
  options.deadline = deadline;

  uint64_t mni = UINT64_MAX;
  for (graph::NodeId v = 0; v < pattern.num_nodes(); ++v) {
    pivoted.set_pivot(v);
    const match::Plan plan = match::MakeHeuristicPlan(pivoted, g, v);
    evaluator.BindQuery(pivoted, pattern_sigs, plan);
    const auto candidates = match::ExtractPivotCandidates(g, pivoted);
    uint64_t count = 0;
    for (const graph::NodeId u : candidates) {
      const match::Outcome outcome = evaluator.EvaluateNode(u, options);
      if (outcome == match::Outcome::kValid) {
        ++count;
        // This pattern node reached the threshold; MNI is decided by the
        // weakest node, so move on.
        if (count >= min_support) break;
      } else if (outcome != match::Outcome::kInvalid) {
        result.complete = false;
        result.support = std::min<uint64_t>(mni, count);
        return result;
      }
    }
    mni = std::min<uint64_t>(mni, count);
    if (mni < min_support) break;  // anti-monotone: pattern is infrequent
  }
  if (mni == UINT64_MAX) mni = 0;
  result.support = mni;
  result.frequent = mni >= min_support;
  return result;
}

}  // namespace

SupportResult EvaluateSupport(const graph::Graph& g,
                              const signature::SignatureMatrix* graph_sigs,
                              const graph::QueryGraph& pattern,
                              uint64_t min_support, SupportMethod method,
                              util::Deadline deadline) {
  if (pattern.num_nodes() == 0) return SupportResult{};
  if (method == SupportMethod::kEnumeration) {
    return EvaluateByEnumeration(g, pattern, min_support, deadline);
  }
  return EvaluateByPsi(g, *graph_sigs, pattern, min_support, deadline);
}

std::optional<std::future<service::BatchResponse>> SubmitSupportBatch(
    service::PsiService& service, const graph::QueryGraph& pattern,
    double deadline_seconds, const std::string& graph_name) {
  if (pattern.num_nodes() == 0) return std::nullopt;
  service::BatchRequest batch;
  batch.graph = graph_name;
  batch.deadline_seconds = deadline_seconds;
  batch.queries.reserve(pattern.num_nodes());
  for (graph::NodeId v = 0; v < pattern.num_nodes(); ++v) {
    service::QueryRequest probe;
    probe.query = pattern;
    probe.query.set_pivot(v);
    probe.method = service::Method::kPessimistic;
    batch.queries.push_back(std::move(probe));
  }
  // Per-pivot probes of one pattern share their pivot-independent
  // structure, so the batch context builds the pattern's signature rows
  // once for all of them — the in-process kPsi trick, recovered through
  // the serving layer.
  return service.SubmitBatch(std::move(batch));
}

SupportResult ReduceServedSupport(const service::BatchResponse& response,
                                  size_t num_pattern_nodes,
                                  uint64_t min_support) {
  SupportResult result;
  if (response.responses.size() != num_pattern_nodes) {
    result.complete = false;
    return result;
  }
  uint64_t mni = UINT64_MAX;
  for (const service::QueryResponse& probe : response.responses) {
    if (!probe.ok()) {
      result.complete = false;
      return result;
    }
    mni = std::min<uint64_t>(mni, probe.valid_nodes.size());
  }
  if (mni == UINT64_MAX) mni = 0;
  result.support = mni;
  result.frequent = mni >= min_support;
  return result;
}

SupportResult EvaluateSupportServed(service::PsiService& service,
                                    const graph::QueryGraph& pattern,
                                    uint64_t min_support,
                                    double deadline_seconds,
                                    const std::string& graph_name) {
  if (pattern.num_nodes() == 0) return SupportResult{};
  auto future =
      SubmitSupportBatch(service, pattern, deadline_seconds, graph_name);
  if (!future.has_value()) {
    SupportResult result;
    result.complete = false;
    return result;
  }
  return ReduceServedSupport(future->get(), pattern.num_nodes(), min_support);
}

}  // namespace psi::fsm
