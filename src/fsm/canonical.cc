#include "fsm/canonical.h"

#include <algorithm>
#include <cassert>
#include <vector>

namespace psi::fsm {

namespace {

/// Encodes the pattern under one node ordering into `out`: the label
/// sequence followed by the upper-triangle adjacency (edge label + 1,
/// 0 = no edge). Fixed-width tokens, so lexicographic comparison of the
/// vectors is a total order over encodings. Reuses `out`'s capacity —
/// canonicalization is the candidate-generation hot path of the FSM miner.
void EncodeUnder(const graph::QueryGraph& p,
                 const std::vector<graph::NodeId>& perm,
                 std::vector<uint32_t>& out) {
  out.clear();
  for (const graph::NodeId v : perm) out.push_back(p.label(v));
  for (size_t i = 0; i < perm.size(); ++i) {
    for (size_t j = i + 1; j < perm.size(); ++j) {
      out.push_back(p.HasEdge(perm[i], perm[j])
                        ? p.EdgeLabel(perm[i], perm[j]) + 1
                        : 0);
    }
  }
}

}  // namespace

std::string CanonicalCode(const graph::QueryGraph& pattern) {
  const size_t n = pattern.num_nodes();
  assert(n <= 8 && "canonicalization is factorial; keep patterns small");
  if (n == 0) return "";

  std::vector<graph::NodeId> perm(n);
  for (size_t i = 0; i < n; ++i) perm[i] = static_cast<graph::NodeId>(i);
  // Only permutations with a non-decreasing label sequence can be minimal
  // (labels come first in the encoding), so sort by label once and permute
  // within label groups via std::next_permutation on the full sequence,
  // skipping encodings whose label prefix is already non-minimal.
  std::sort(perm.begin(), perm.end(),
            [&](graph::NodeId a, graph::NodeId b) {
              return pattern.label(a) != pattern.label(b)
                         ? pattern.label(a) < pattern.label(b)
                         : a < b;
            });
  std::vector<graph::Label> minimal_labels(n);
  for (size_t i = 0; i < n; ++i) minimal_labels[i] = pattern.label(perm[i]);

  std::vector<uint32_t> best;
  std::vector<uint32_t> candidate;
  std::vector<graph::NodeId> current = perm;
  std::sort(current.begin(), current.end());
  do {
    bool label_minimal = true;
    for (size_t i = 0; i < n; ++i) {
      if (pattern.label(current[i]) != minimal_labels[i]) {
        label_minimal = false;
        break;
      }
    }
    if (!label_minimal) continue;
    EncodeUnder(pattern, current, candidate);
    if (best.empty() || candidate < best) best.swap(candidate);
  } while (std::next_permutation(current.begin(), current.end()));

  // Pack the fixed-width tokens into the string key byte-for-byte.
  return std::string(reinterpret_cast<const char*>(best.data()),
                     best.size() * sizeof(uint32_t));
}

bool ArePatternsIsomorphic(const graph::QueryGraph& a,
                           const graph::QueryGraph& b) {
  if (a.num_nodes() != b.num_nodes() || a.num_edges() != b.num_edges()) {
    return false;
  }
  return CanonicalCode(a) == CanonicalCode(b);
}

}  // namespace psi::fsm
