#include "fsm/miner.h"

#include <algorithm>
#include <set>
#include <tuple>
#include <unordered_set>

#include "fsm/canonical.h"
#include "util/thread_pool.h"

namespace psi::fsm {

namespace {

/// An undirected frequent edge type: labels (a <= b) joined by edge label e.
struct EdgeType {
  graph::Label a;
  graph::Label e;
  graph::Label b;

  bool operator<(const EdgeType& other) const {
    return std::tie(a, e, b) < std::tie(other.a, other.e, other.b);
  }
};

graph::QueryGraph MakeEdgePattern(const EdgeType& type) {
  graph::QueryGraph p;
  const graph::NodeId u = p.AddNode(type.a);
  const graph::NodeId v = p.AddNode(type.b);
  p.AddEdge(u, v, type.e);
  return p;
}

}  // namespace

FsmResult FsmMiner::Mine(util::Deadline deadline) {
  util::WallTimer total_timer;
  FsmResult result;

  // Signatures are shared by every kPsi support evaluation. The service-
  // backed mode skips the build entirely — the pinned snapshot owns them.
  signature::SignatureMatrix graph_sigs;
  if (config_.service == nullptr && config_.method == SupportMethod::kPsi) {
    util::WallTimer sig_timer;
    util::ThreadPool sig_pool(config_.num_threads);
    graph_sigs = signature::BuildMatrixSignatures(
        graph_, config_.signature_depth, graph_.num_labels(),
        config_.num_threads > 1 ? &sig_pool : nullptr);
    result.signature_seconds = sig_timer.Seconds();
  }
  const signature::SignatureMatrix* sigs =
      config_.method == SupportMethod::kPsi ? &graph_sigs : nullptr;

  // ---- Level 1: distinct edge types present in the graph ---------------
  std::set<EdgeType> edge_types;
  for (graph::NodeId u = 0; u < graph_.num_nodes(); ++u) {
    const auto nbrs = graph_.neighbors(u);
    const auto elabels = graph_.edge_labels(u);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      if (u > nbrs[i]) continue;
      const graph::Label la = graph_.label(u);
      const graph::Label lb = graph_.label(nbrs[i]);
      edge_types.insert({std::min(la, lb), elabels[i], std::max(la, lb)});
    }
  }

  util::ThreadPool pool(config_.num_threads);
  std::unordered_set<std::string> seen_codes;

  /// Evaluates a batch of candidate patterns in parallel; returns the
  /// frequent survivors.
  auto evaluate_batch = [&](std::vector<graph::QueryGraph>& batch)
      -> std::vector<MinedPattern> {
    // Per-pattern evaluations can finish "decided" even past the deadline
    // (early frequent-stop); the mining level itself must not start late.
    if (deadline.Expired()) {
      result.complete = false;
      return {};
    }
    std::vector<SupportResult> supports(batch.size());
    result.candidates_evaluated += batch.size();
    if (config_.service != nullptr) {
      // Service-backed mode: one probe batch per pattern, submitted in
      // windows bounded by the service's admission queue so a large mining
      // level can never shed its own wave. The service's workers provide
      // the parallelism; futures drain in order, so the frequent set is
      // deterministic regardless of worker count.
      const size_t window =
          std::max<size_t>(1, config_.service->options().max_queue_depth);
      for (size_t begin = 0; begin < batch.size(); begin += window) {
        const size_t end = std::min(batch.size(), begin + window);
        std::vector<std::optional<std::future<service::BatchResponse>>>
            futures;
        futures.reserve(end - begin);
        for (size_t i = begin; i < end; ++i) {
          // An already-expired deadline must expire service-side too (0
          // would select the service default, which may be unbounded).
          const double remaining =
              deadline.IsInfinite()
                  ? 0.0
                  : std::max(1e-6, deadline.RemainingSeconds());
          futures.push_back(SubmitSupportBatch(*config_.service, batch[i],
                                               remaining,
                                               config_.service_graph));
        }
        for (size_t i = begin; i < end; ++i) {
          auto& future = futures[i - begin];
          if (future.has_value()) {
            supports[i] = ReduceServedSupport(
                future->get(), batch[i].num_nodes(), config_.min_support);
          } else {
            supports[i].complete = false;  // shed whole: verdict unknown
          }
        }
      }
    } else if (config_.num_threads > 1 && batch.size() > 1) {
      for (size_t i = 0; i < batch.size(); ++i) {
        pool.Submit([&, i] {
          supports[i] = EvaluateSupport(graph_, sigs, batch[i],
                                        config_.min_support, config_.method,
                                        deadline);
        });
      }
      pool.Wait();
    } else {
      for (size_t i = 0; i < batch.size(); ++i) {
        supports[i] = EvaluateSupport(graph_, sigs, batch[i],
                                      config_.min_support, config_.method,
                                      deadline);
      }
    }
    std::vector<MinedPattern> frequent;
    for (size_t i = 0; i < batch.size(); ++i) {
      if (!supports[i].complete) result.complete = false;
      if (supports[i].frequent) {
        frequent.push_back({std::move(batch[i]), supports[i].support});
      }
    }
    return frequent;
  };

  std::vector<graph::QueryGraph> level_candidates;
  for (const EdgeType& type : edge_types) {
    graph::QueryGraph p = MakeEdgePattern(type);
    seen_codes.insert(CanonicalCode(p));
    level_candidates.push_back(std::move(p));
  }
  std::vector<MinedPattern> current = evaluate_batch(level_candidates);
  for (const MinedPattern& m : current) result.frequent.push_back(m);

  // Frequent edge types drive extensions (anti-monotonicity: an edge type
  // that is itself infrequent cannot appear in a frequent pattern).
  std::vector<EdgeType> frequent_edge_types;
  for (const MinedPattern& m : current) {
    const graph::Label la = m.pattern.label(0);
    const graph::Label lb = m.pattern.label(1);
    frequent_edge_types.push_back(
        {std::min(la, lb), m.pattern.EdgeLabel(0, 1), std::max(la, lb)});
  }

  // ---- Grow: one edge per level -----------------------------------------
  for (size_t edges = 2;
       edges <= config_.max_edges && !current.empty() && result.complete;
       ++edges) {
    // Generate all children first (cheap), then canonicalize in parallel
    // (factorial-cost), then deduplicate serially against `seen_codes`.
    std::vector<graph::QueryGraph> children;
    for (const MinedPattern& m : current) {
      const graph::QueryGraph& p = m.pattern;

      // (a) Attach a new node through a frequent edge type.
      if (p.num_nodes() < config_.max_nodes) {
        for (graph::NodeId v = 0; v < p.num_nodes(); ++v) {
          for (const EdgeType& type : frequent_edge_types) {
            for (int flip = 0; flip < 2; ++flip) {
              const graph::Label from = flip == 0 ? type.a : type.b;
              const graph::Label to = flip == 0 ? type.b : type.a;
              if (p.label(v) != from) continue;
              graph::QueryGraph child = p;
              const graph::NodeId w = child.AddNode(to);
              child.AddEdge(v, w, type.e);
              children.push_back(std::move(child));
              if (type.a == type.b) break;  // both flips identical
            }
          }
        }
      }

      // (b) Close an edge between two existing non-adjacent nodes.
      for (graph::NodeId u = 0; u < p.num_nodes(); ++u) {
        for (graph::NodeId v = u + 1; v < p.num_nodes(); ++v) {
          if (p.HasEdge(u, v)) continue;
          const graph::Label la = std::min(p.label(u), p.label(v));
          const graph::Label lb = std::max(p.label(u), p.label(v));
          for (const EdgeType& type : frequent_edge_types) {
            if (type.a != la || type.b != lb) continue;
            graph::QueryGraph child = p;
            child.AddEdge(u, v, type.e);
            children.push_back(std::move(child));
          }
        }
      }
    }

    std::vector<std::string> codes(children.size());
    if (config_.num_threads > 1 && children.size() > 16) {
      pool.ParallelFor(children.size(), [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          codes[i] = CanonicalCode(children[i]);
        }
      });
    } else {
      for (size_t i = 0; i < children.size(); ++i) {
        codes[i] = CanonicalCode(children[i]);
      }
    }
    level_candidates.clear();
    for (size_t i = 0; i < children.size(); ++i) {
      if (seen_codes.insert(std::move(codes[i])).second) {
        level_candidates.push_back(std::move(children[i]));
      }
    }

    current = evaluate_batch(level_candidates);
    for (const MinedPattern& m : current) result.frequent.push_back(m);
  }

  result.seconds = total_timer.Seconds();
  return result;
}

}  // namespace psi::fsm
