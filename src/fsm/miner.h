#ifndef SMARTPSI_FSM_MINER_H_
#define SMARTPSI_FSM_MINER_H_

#include <cstdint>
#include <vector>

#include "fsm/support.h"
#include "graph/graph.h"
#include "graph/query_graph.h"
#include "signature/builders.h"
#include "signature/signature_matrix.h"
#include "util/timer.h"

namespace psi::fsm {

/// Frequent subgraph mining over a single large graph (GraMi / ScaleMine
/// style, paper §5.5): grow patterns edge by edge from frequent single
/// edges, prune by MNI anti-monotonicity, and evaluate candidate support
/// with either plain subgraph-isomorphism enumeration (the ScaleMine
/// baseline) or PSI (ScaleMine+SmartPSI).
struct FsmConfig {
  /// MNI support threshold.
  uint64_t min_support = 100;
  /// Maximum pattern size in edges (paper's Weibo experiment uses 6).
  size_t max_edges = 6;
  /// Maximum pattern size in nodes (canonicalization bound).
  size_t max_nodes = 7;
  /// Worker threads for parallel support evaluation — the stand-in for the
  /// paper's "compute nodes" axis in Figure 12.
  size_t num_threads = 1;
  SupportMethod method = SupportMethod::kEnumeration;
  /// Signature depth for the kPsi method.
  uint32_t signature_depth = 2;
  /// When non-null, support is counted through this service's batched
  /// submission path — one SubmitBatch of per-pivot pessimistic probes per
  /// candidate pattern, pinned to one catalog snapshot (DESIGN.md §17) —
  /// and `method`/`signature_depth` are ignored (the snapshot owns the
  /// signatures). Evaluation parallelism then comes from the service's
  /// workers; `num_threads` still parallelizes canonicalization. The mined
  /// frequent set is identical to the in-process methods'.
  service::PsiService* service = nullptr;
  /// Catalog graph name the probes run against; empty = service default.
  std::string service_graph;
};

struct MinedPattern {
  graph::QueryGraph pattern;
  /// Lower-bound MNI support (>= min_support).
  uint64_t support = 0;
};

struct FsmResult {
  std::vector<MinedPattern> frequent;
  size_t candidates_evaluated = 0;
  double seconds = 0.0;
  /// Seconds spent building graph signatures (kPsi only; included in
  /// `seconds`).
  double signature_seconds = 0.0;
  /// False iff the deadline interrupted mining.
  bool complete = true;
};

class FsmMiner {
 public:
  /// `g` must outlive the miner.
  FsmMiner(const graph::Graph& g, FsmConfig config)
      : graph_(g), config_(config) {}

  /// Runs the full mine. Deterministic (no randomness involved).
  FsmResult Mine(util::Deadline deadline = util::Deadline());

 private:
  const graph::Graph& graph_;
  FsmConfig config_;
};

}  // namespace psi::fsm

#endif  // SMARTPSI_FSM_MINER_H_
