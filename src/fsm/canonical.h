#ifndef SMARTPSI_FSM_CANONICAL_H_
#define SMARTPSI_FSM_CANONICAL_H_

#include <string>

#include "graph/query_graph.h"

namespace psi::fsm {

/// Canonical string code of a small pattern graph: the lexicographically
/// smallest encoding of (node labels, upper-triangle adjacency with edge
/// labels) over all node permutations. Two patterns have equal codes iff
/// they are isomorphic — the dedup key of the FSM candidate generator.
///
/// Brute force over permutations, pruned by label order; fine for FSM-sized
/// patterns (≤ 8 nodes — asserts above that).
std::string CanonicalCode(const graph::QueryGraph& pattern);

/// True iff the two patterns are isomorphic (equal canonical codes).
bool ArePatternsIsomorphic(const graph::QueryGraph& a,
                           const graph::QueryGraph& b);

}  // namespace psi::fsm

#endif  // SMARTPSI_FSM_CANONICAL_H_
