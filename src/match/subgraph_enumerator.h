#ifndef SMARTPSI_MATCH_SUBGRAPH_ENUMERATOR_H_
#define SMARTPSI_MATCH_SUBGRAPH_ENUMERATOR_H_

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "graph/query_graph.h"
#include "match/plan.h"
#include "match/search_stats.h"
#include "util/stop_token.h"
#include "util/timer.h"

namespace psi::match {

/// Generic backtracking subgraph-isomorphism enumeration with label, degree
/// and adjacency filtering — the "plain subgraph isomorphism" that existing
/// applications use for PSI (paper §1): find *all* embeddings, then project
/// the distinct pivot images.
///
/// Also the ground-truth oracle for the test suite and the counter behind
/// the Table 1 reproduction.
class SubgraphEnumerator {
 public:
  struct Options {
    /// Stop after this many embeddings (the visitor stops seeing more).
    uint64_t max_embeddings = UINT64_MAX;
    util::Deadline deadline;
    util::StopToken stop;
  };

  struct EnumerationResult {
    uint64_t embedding_count = 0;
    /// False if the run was cut short (max_embeddings, deadline, or stop);
    /// embedding_count is then a lower bound.
    bool complete = true;
    Outcome outcome = Outcome::kInvalid;  // kValid iff >= 1 embedding found
  };

  /// `visitor(mapping)` receives query-node -> data-node for each embedding;
  /// return false to stop the enumeration early.
  using Visitor =
      std::function<bool(std::span<const graph::NodeId> mapping)>;

  explicit SubgraphEnumerator(const graph::Graph& g) : graph_(g) {}

  /// Enumerates embeddings of `q` following `plan` (a valid plan rooted at
  /// plan.order[0]; any root works). `visitor` may be null.
  EnumerationResult Enumerate(const graph::QueryGraph& q, const Plan& plan,
                              const Visitor& visitor, const Options& options,
                              SearchStats* stats = nullptr);

  /// Convenience: count embeddings (possibly truncated by `options`).
  EnumerationResult CountEmbeddings(const graph::QueryGraph& q,
                                    const Plan& plan, const Options& options,
                                    SearchStats* stats = nullptr);

  /// PSI by projection: enumerates all embeddings and collects the distinct
  /// data nodes bound to the query pivot. Requires q.has_pivot(). The result
  /// is sorted. `complete` is false if truncated, in which case the set is
  /// a subset of the true answer.
  struct ProjectionResult {
    std::vector<graph::NodeId> pivot_matches;
    uint64_t embedding_count = 0;
    bool complete = true;
  };
  ProjectionResult ProjectPivot(const graph::QueryGraph& q, const Plan& plan,
                                const Options& options,
                                SearchStats* stats = nullptr);

 private:
  struct Frame {
    std::vector<graph::NodeId> candidates;
    size_t next_index = 0;
  };

  const graph::Graph& graph_;
};

}  // namespace psi::match

#endif  // SMARTPSI_MATCH_SUBGRAPH_ENUMERATOR_H_
