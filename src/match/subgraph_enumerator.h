#ifndef SMARTPSI_MATCH_SUBGRAPH_ENUMERATOR_H_
#define SMARTPSI_MATCH_SUBGRAPH_ENUMERATOR_H_

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "graph/query_graph.h"
#include "match/plan.h"
#include "match/restart_policy.h"
#include "match/search_stats.h"
#include "util/stop_token.h"
#include "util/timer.h"

namespace psi::util {
class ThreadPool;
}

namespace psi::match {

/// Generic backtracking subgraph-isomorphism enumeration with label, degree
/// and adjacency filtering — the "plain subgraph isomorphism" that existing
/// applications use for PSI (paper §1): find *all* embeddings, then project
/// the distinct pivot images.
///
/// Also the ground-truth oracle for the test suite and the counter behind
/// the Table 1 reproduction.
class SubgraphEnumerator {
 public:
  struct Options {
    /// Stop after this many embeddings (the visitor stops seeing more).
    uint64_t max_embeddings = UINT64_MAX;
    util::Deadline deadline;
    util::StopToken stop;
    /// Hard cap on expanded search-tree nodes; 0 = unlimited. Exceeding it
    /// truncates the run (complete = false) unless restarts are enabled,
    /// which manage budgets themselves and ignore this field.
    uint64_t node_budget = 0;
    /// Luby restarts for the existence phase: while *zero* embeddings have
    /// been reported, a run that exhausts its budget tears down and
    /// restarts with a perturbed candidate order (the visitor never sees a
    /// duplicate, because it has seen nothing). Once an embedding has been
    /// visited — or the budgeted runs are spent — the budget is lifted in
    /// place and the enumeration runs to completion, so results are exact.
    RestartOptions restarts;
  };

  struct EnumerationResult {
    uint64_t embedding_count = 0;
    /// False if the run was cut short (max_embeddings, node_budget,
    /// deadline, or stop); embedding_count is then a lower bound.
    bool complete = true;
    Outcome outcome = Outcome::kInvalid;  // kValid iff >= 1 embedding found
  };

  /// `visitor(mapping)` receives query-node -> data-node for each embedding;
  /// return false to stop the enumeration early.
  using Visitor =
      std::function<bool(std::span<const graph::NodeId> mapping)>;

  explicit SubgraphEnumerator(const graph::Graph& g) : graph_(g) {}

  /// Enumerates embeddings of `q` following `plan` (a valid plan rooted at
  /// plan.order[0]; any root works). `visitor` may be null.
  EnumerationResult Enumerate(const graph::QueryGraph& q, const Plan& plan,
                              const Visitor& visitor, const Options& options,
                              SearchStats* stats = nullptr);

  /// Enumerate restricted to the given root-candidate images for
  /// plan.order[0], taken as-is (the caller has already label/degree
  /// filtered them). This is the splitting primitive for parallel search:
  /// enumerating a partition of the roots in any order visits exactly the
  /// embeddings Enumerate would. Thread-safe: all mutable state is local,
  /// so concurrent calls on one enumerator are fine.
  EnumerationResult EnumerateRoots(const graph::QueryGraph& q,
                                   const Plan& plan,
                                   std::span<const graph::NodeId> roots,
                                   const Visitor& visitor,
                                   const Options& options,
                                   SearchStats* stats = nullptr);

  /// Convenience: count embeddings (possibly truncated by `options`).
  EnumerationResult CountEmbeddings(const graph::QueryGraph& q,
                                    const Plan& plan, const Options& options,
                                    SearchStats* stats = nullptr);

  /// PSI by projection: enumerates all embeddings and collects the distinct
  /// data nodes bound to the query pivot. Requires q.has_pivot(). The result
  /// is sorted. `complete` is false if truncated, in which case the set is
  /// a subset of the true answer.
  struct ProjectionResult {
    std::vector<graph::NodeId> pivot_matches;
    uint64_t embedding_count = 0;
    bool complete = true;
  };
  ProjectionResult ProjectPivot(const graph::QueryGraph& q, const Plan& plan,
                                const Options& options,
                                SearchStats* stats = nullptr);

  /// ProjectPivot with the root-candidate frontier split across
  /// `num_threads` work-stealing workers (see parallel_search.h). Each
  /// worker owns its scratch and stats; per-worker pivot sets are merged
  /// and sorted, so a complete parallel projection is bit-identical to the
  /// sequential one for every thread count. `max_embeddings` is enforced
  /// through a shared counter; which embeddings survive a truncated run is
  /// schedule-dependent (exactly as the sequential subset is
  /// order-dependent). `pool` may be null (transient threads are used).
  ProjectionResult ProjectPivotParallel(const graph::QueryGraph& q,
                                        const Plan& plan,
                                        const Options& options,
                                        size_t num_threads,
                                        util::ThreadPool* pool = nullptr,
                                        SearchStats* stats = nullptr);

 private:
  struct Frame {
    std::vector<graph::NodeId> candidates;
    size_t next_index = 0;
  };

  const graph::Graph& graph_;
};

}  // namespace psi::match

#endif  // SMARTPSI_MATCH_SUBGRAPH_ENUMERATOR_H_
