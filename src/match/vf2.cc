#include "match/vf2.h"

#include <algorithm>
#include <cassert>
#include <vector>

namespace psi::match {

namespace {

/// All VF2 state shared down the recursion.
struct Vf2State {
  const graph::Graph& g;
  const graph::QueryGraph& q;
  const MatchingEngine::Visitor& visitor;
  const MatchingEngine::Options& options;
  SearchStats* stats;

  std::vector<graph::NodeId> core_q;   // query -> data
  std::vector<graph::NodeId> core_d;   // data -> query
  std::vector<uint32_t> t1_depth;      // query frontier entry depth (0=out)
  std::vector<uint32_t> t2_depth;      // data frontier entry depth (0=out)

  uint64_t embeddings = 0;
  bool truncated = false;
  uint32_t steps_until_check = 1024;

  Vf2State(const graph::Graph& graph, const graph::QueryGraph& query,
           const MatchingEngine::Visitor& vis,
           const MatchingEngine::Options& opts, SearchStats* st)
      : g(graph),
        q(query),
        visitor(vis),
        options(opts),
        stats(st),
        core_q(query.num_nodes(), graph::kInvalidNode),
        core_d(graph.num_nodes(), graph::kInvalidNode),
        t1_depth(query.num_nodes(), 0),
        t2_depth(graph.num_nodes(), 0) {}

  bool InCoreQ(graph::NodeId v) const {
    return core_q[v] != graph::kInvalidNode;
  }
  bool InCoreD(graph::NodeId u) const {
    return core_d[u] != graph::kInvalidNode;
  }
};

/// The classic VF2 feasibility rules for the pair (n, m).
bool Feasible(const Vf2State& s, graph::NodeId n, graph::NodeId m) {
  if (s.q.label(n) != s.g.label(m)) return false;
  if (s.g.degree(m) < s.q.degree(n)) return false;

  // Consistency + query-side counts.
  size_t term1 = 0;
  size_t new1 = 0;
  for (const auto& [nbr, edge_label] : s.q.neighbors(n)) {
    if (s.InCoreQ(nbr)) {
      const auto found = s.g.EdgeLabelBetween(s.core_q[nbr], m);
      if (!found.has_value() || *found != edge_label) return false;
    } else if (s.t1_depth[nbr] != 0) {
      ++term1;
    } else {
      ++new1;
    }
  }

  // Data-side counts (1-look-ahead).
  size_t term2 = 0;
  size_t new2 = 0;
  for (const graph::NodeId nb : s.g.neighbors(m)) {
    if (s.InCoreD(nb)) continue;  // consistency already verified above
    if (s.t2_depth[nb] != 0) {
      ++term2;
    } else {
      ++new2;
    }
  }
  if (term1 > term2) return false;
  if (term1 + new1 > term2 + new2) return false;
  return true;
}

/// Adds (n, m) to the state at `depth` (1-based) and updates frontiers.
void Push(Vf2State& s, graph::NodeId n, graph::NodeId m, uint32_t depth) {
  s.core_q[n] = m;
  s.core_d[m] = n;
  if (s.t1_depth[n] == 0) s.t1_depth[n] = depth;
  if (s.t2_depth[m] == 0) s.t2_depth[m] = depth;
  for (const auto& [nbr, edge_label] : s.q.neighbors(n)) {
    (void)edge_label;
    if (s.t1_depth[nbr] == 0) s.t1_depth[nbr] = depth;
  }
  for (const graph::NodeId nb : s.g.neighbors(m)) {
    if (s.t2_depth[nb] == 0) s.t2_depth[nb] = depth;
  }
}

/// Reverts Push(n, m, depth).
void Pop(Vf2State& s, graph::NodeId n, graph::NodeId m, uint32_t depth) {
  for (const auto& [nbr, edge_label] : s.q.neighbors(n)) {
    (void)edge_label;
    if (s.t1_depth[nbr] == depth) s.t1_depth[nbr] = 0;
  }
  for (const graph::NodeId nb : s.g.neighbors(m)) {
    if (s.t2_depth[nb] == depth) s.t2_depth[nb] = 0;
  }
  if (s.t1_depth[n] == depth) s.t1_depth[n] = 0;
  if (s.t2_depth[m] == depth) s.t2_depth[m] = 0;
  s.core_q[n] = graph::kInvalidNode;
  s.core_d[m] = graph::kInvalidNode;
}

/// Returns false to stop the whole enumeration.
bool Match(Vf2State& s, uint32_t depth) {
  if (--s.steps_until_check == 0) {
    s.steps_until_check = 1024;
    if (s.options.stop.StopRequested() || s.options.deadline.Expired()) {
      s.truncated = true;
      return false;
    }
  }
  const size_t qn = s.q.num_nodes();
  if (depth == qn) {
    ++s.embeddings;
    if (s.stats != nullptr) ++s.stats->embeddings_found;
    bool keep_going = true;
    if (s.visitor) keep_going = s.visitor(s.core_q);
    if (!keep_going || s.embeddings >= s.options.max_embeddings) {
      s.truncated = true;
      return false;
    }
    return true;
  }

  // Next query node: the smallest frontier node (or smallest unmapped node
  // when the frontier is empty, i.e., at the root).
  graph::NodeId n = graph::kInvalidNode;
  for (graph::NodeId v = 0; v < qn; ++v) {
    if (!s.InCoreQ(v) && s.t1_depth[v] != 0) {
      n = v;
      break;
    }
  }
  const bool from_frontier = n != graph::kInvalidNode;
  if (!from_frontier) {
    for (graph::NodeId v = 0; v < qn; ++v) {
      if (!s.InCoreQ(v)) {
        n = v;
        break;
      }
    }
  }
  assert(n != graph::kInvalidNode);

  auto try_pair = [&](graph::NodeId m) -> bool {
    if (s.InCoreD(m)) return true;
    if (s.stats != nullptr) ++s.stats->candidates_examined;
    if (!Feasible(s, n, m)) return true;
    if (s.stats != nullptr) ++s.stats->recursive_calls;
    Push(s, n, m, depth + 1);
    const bool keep_going = Match(s, depth + 1);
    Pop(s, n, m, depth + 1);
    return keep_going;
  };

  if (from_frontier) {
    // Candidates: T2 nodes adjacent (with the right edge label) to the
    // image of some mapped query neighbor of n — walk the cheapest image's
    // adjacency.
    graph::NodeId anchor = graph::kInvalidNode;
    graph::Label anchor_edge = graph::kDefaultEdgeLabel;
    size_t anchor_degree = SIZE_MAX;
    for (const auto& [nbr, edge_label] : s.q.neighbors(n)) {
      if (!s.InCoreQ(nbr)) continue;
      const size_t deg = s.g.degree(s.core_q[nbr]);
      if (deg < anchor_degree) {
        anchor_degree = deg;
        anchor = nbr;
        anchor_edge = edge_label;
      }
    }
    assert(anchor != graph::kInvalidNode);
    const graph::NodeId image = s.core_q[anchor];
    const auto nbrs = s.g.neighbors(image);
    const auto edge_labels = s.g.edge_labels(image);
    for (size_t k = 0; k < nbrs.size(); ++k) {
      if (edge_labels[k] != anchor_edge) continue;
      if (!try_pair(nbrs[k])) return false;
    }
  } else {
    const graph::Label label = s.q.label(n);
    if (label >= s.g.num_labels()) return true;
    for (const graph::NodeId m : s.g.nodes_with_label(label)) {
      if (!try_pair(m)) return false;
    }
  }
  return true;
}

}  // namespace

MatchingEngine::Result Vf2Engine::Enumerate(const graph::QueryGraph& q,
                                            const Visitor& visitor,
                                            const Options& options,
                                            SearchStats* stats) {
  Result result;
  if (q.num_nodes() == 0) return result;
  if (!q.IsConnected()) return result;

  Vf2State state(graph_, q, visitor, options, stats);
  Match(state, 0);

  result.embedding_count = state.embeddings;
  result.complete = !state.truncated;
  // Visitor-initiated stops and max_embeddings also set `truncated`; only
  // flag incompleteness for external interruption when nothing was found.
  result.outcome =
      result.embedding_count > 0 ? Outcome::kValid : Outcome::kInvalid;
  if (state.truncated && result.embedding_count == 0) {
    result.outcome = Outcome::kTimeout;
  }
  return result;
}

}  // namespace psi::match
