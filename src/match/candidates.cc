#include "match/candidates.h"

#include <cassert>

namespace psi::match {

namespace {

/// One (edge label, neighbor label) pair class of the pivot's query edges.
/// Queries have at most QueryGraph::kMaxNodes - 1 pivot edges, so linear
/// scans over these stay in cache and beat any hashed lookup.
struct EdgeRequirement {
  graph::Label edge_label;
  graph::Label node_label;
  uint32_t count;
};

}  // namespace

std::vector<graph::NodeId> ExtractPivotCandidates(const graph::Graph& g,
                                                  const graph::QueryGraph& q) {
  assert(q.has_pivot());
  std::vector<graph::NodeId> candidates;
  const graph::NodeId pivot = q.pivot();
  const graph::Label label = q.label(pivot);
  if (label >= g.num_labels()) return candidates;
  const size_t min_degree = q.degree(pivot);

  // Multiset of (edge label, neighbor label) pairs the pivot's edges
  // demand. If some demanded neighbor label cannot occur in the data graph
  // at all, no candidate can qualify.
  std::vector<EdgeRequirement> required;
  required.reserve(q.degree(pivot));
  for (const auto& [nbr, edge_label] : q.neighbors(pivot)) {
    const graph::Label nbr_label = q.label(nbr);
    if (nbr_label >= g.num_labels() || g.label_frequency(nbr_label) == 0) {
      return candidates;
    }
    bool merged = false;
    for (EdgeRequirement& r : required) {
      if (r.edge_label == edge_label && r.node_label == nbr_label) {
        ++r.count;
        merged = true;
        break;
      }
    }
    if (!merged) required.push_back({edge_label, nbr_label, 1});
  }

  const auto bucket = g.nodes_with_label(label);
  candidates.reserve(bucket.size());
  std::vector<uint32_t> remaining(required.size());
  for (const graph::NodeId u : bucket) {
    if (g.degree(u) < min_degree) continue;
    // Pre-check: u must cover every pair class's multiplicity. Early-out
    // as soon as all requirements are met, so for viable candidates this
    // usually stops after the first few neighbors.
    size_t unmet = required.size();
    for (size_t r = 0; r < required.size(); ++r) remaining[r] = required[r].count;
    const auto nbrs = g.neighbors(u);
    const auto edge_labels = g.edge_labels(u);
    for (size_t i = 0; i < nbrs.size() && unmet > 0; ++i) {
      const graph::Label nbr_label = g.label(nbrs[i]);
      for (size_t r = 0; r < required.size(); ++r) {
        if (remaining[r] > 0 && edge_labels[i] == required[r].edge_label &&
            nbr_label == required[r].node_label) {
          if (--remaining[r] == 0) --unmet;
          break;
        }
      }
    }
    if (unmet == 0) candidates.push_back(u);
  }
  return candidates;
}

}  // namespace psi::match
