#include "match/candidates.h"

#include <cassert>

namespace psi::match {

std::vector<graph::NodeId> ExtractPivotCandidates(const graph::Graph& g,
                                                  const graph::QueryGraph& q) {
  assert(q.has_pivot());
  std::vector<graph::NodeId> candidates;
  const graph::NodeId pivot = q.pivot();
  const graph::Label label = q.label(pivot);
  if (label >= g.num_labels()) return candidates;
  const size_t min_degree = q.degree(pivot);
  for (const graph::NodeId u : g.nodes_with_label(label)) {
    if (g.degree(u) >= min_degree) candidates.push_back(u);
  }
  return candidates;
}

}  // namespace psi::match
