#include "match/cfl_match.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace psi::match {

uint64_t TwoCoreMask(const graph::QueryGraph& q) {
  const size_t n = q.num_nodes();
  std::vector<size_t> degree(n);
  for (graph::NodeId v = 0; v < n; ++v) degree[v] = q.degree(v);
  uint64_t removed = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    for (graph::NodeId v = 0; v < n; ++v) {
      if (((removed >> v) & 1ULL) == 0 && degree[v] <= 1) {
        removed |= 1ULL << v;
        changed = true;
        for (const auto& [nbr, edge_label] : q.neighbors(v)) {
          (void)edge_label;
          if (((removed >> nbr) & 1ULL) == 0 && degree[nbr] > 0) {
            --degree[nbr];
          }
        }
      }
    }
  }
  const uint64_t all = n == 64 ? ~0ULL : (1ULL << n) - 1;
  return all & ~removed;
}

MatchingEngine::Result CflMatchEngine::Enumerate(const graph::QueryGraph& q,
                                                 const Visitor& visitor,
                                                 const Options& options,
                                                 SearchStats* stats) {
  Result result;
  const size_t qn = q.num_nodes();
  if (qn == 0) return result;
  if (!q.IsConnected()) return result;

  // ---- Decomposition & root selection ---------------------------------
  uint64_t core = TwoCoreMask(q);
  auto selectivity = [&](graph::NodeId v) {
    const graph::Label label = q.label(v);
    const double freq = label < graph_.num_labels()
                            ? static_cast<double>(graph_.label_frequency(label))
                            : 0.0;
    return freq / (1.0 + static_cast<double>(q.degree(v)));
  };
  graph::NodeId root = graph::kInvalidNode;
  double best = -1.0;
  for (graph::NodeId v = 0; v < qn; ++v) {
    if (core != 0 && ((core >> v) & 1ULL) == 0) continue;
    const double score = selectivity(v);
    if (best < 0.0 || score < best) {
      best = score;
      root = v;
    }
  }
  if (core == 0) core = 1ULL << root;  // tree query: root acts as the core

  // ---- BFS tree from the root ------------------------------------------
  std::vector<graph::NodeId> bfs_order{root};
  std::vector<graph::NodeId> parent(qn, graph::kInvalidNode);
  parent[root] = root;
  std::vector<graph::Label> parent_edge(qn, graph::kDefaultEdgeLabel);
  for (size_t head = 0; head < bfs_order.size(); ++head) {
    const graph::NodeId v = bfs_order[head];
    for (const auto& [nbr, edge_label] : q.neighbors(v)) {
      if (parent[nbr] == graph::kInvalidNode) {
        parent[nbr] = v;
        parent_edge[nbr] = edge_label;
        bfs_order.push_back(nbr);
      }
    }
  }
  std::vector<std::vector<graph::NodeId>> tree_children(qn);
  for (const graph::NodeId v : bfs_order) {
    if (v != root) tree_children[parent[v]].push_back(v);
  }

  // ---- Neighbor-label-frequency (NLF) requirements ---------------------
  // For each query node, the multiset of neighbor labels as sorted
  // (label, count) pairs; a candidate needs at least `count` neighbors of
  // each label.
  std::vector<std::vector<std::pair<graph::Label, uint32_t>>> nlf(qn);
  for (graph::NodeId v = 0; v < qn; ++v) {
    std::vector<graph::Label> labels;
    for (const auto& [nbr, edge_label] : q.neighbors(v)) {
      (void)edge_label;
      labels.push_back(q.label(nbr));
    }
    std::sort(labels.begin(), labels.end());
    for (size_t i = 0; i < labels.size();) {
      size_t j = i;
      while (j < labels.size() && labels[j] == labels[i]) ++j;
      nlf[v].emplace_back(labels[i], static_cast<uint32_t>(j - i));
      i = j;
    }
  }
  std::vector<uint32_t> label_counter(
      std::max<size_t>(graph_.num_labels(), q.max_label_plus_one()), 0);
  auto passes_nlf = [&](graph::NodeId v, graph::NodeId c) {
    const auto nbrs = graph_.neighbors(c);
    for (const graph::NodeId nb : nbrs) ++label_counter[graph_.label(nb)];
    bool ok = true;
    for (const auto& [label, need] : nlf[v]) {
      if (label >= graph_.num_labels() || label_counter[label] < need) {
        ok = false;
        break;
      }
    }
    for (const graph::NodeId nb : nbrs) --label_counter[graph_.label(nb)];
    return ok;
  };

  // ---- CPI-style candidate space ---------------------------------------
  std::vector<std::vector<graph::NodeId>> candidates(qn);
  std::vector<std::vector<uint8_t>> member(
      qn, std::vector<uint8_t>(graph_.num_nodes(), 0));

  // Top-down construction.
  const graph::Label root_label = q.label(root);
  if (root_label >= graph_.num_labels()) return result;
  for (const graph::NodeId u : graph_.nodes_with_label(root_label)) {
    if (stats != nullptr) ++stats->candidates_examined;
    if (graph_.degree(u) < q.degree(root)) continue;
    if (!passes_nlf(root, u)) continue;
    candidates[root].push_back(u);
    member[root][u] = 1;
  }
  for (size_t i = 1; i < bfs_order.size(); ++i) {
    const graph::NodeId v = bfs_order[i];
    const graph::NodeId p = parent[v];
    const graph::Label want_label = q.label(v);
    const graph::Label want_edge = parent_edge[v];
    const size_t want_degree = q.degree(v);
    for (const graph::NodeId pc : candidates[p]) {
      const auto nbrs = graph_.neighbors(pc);
      const auto edge_labels = graph_.edge_labels(pc);
      for (size_t k = 0; k < nbrs.size(); ++k) {
        const graph::NodeId c = nbrs[k];
        if (stats != nullptr) ++stats->candidates_examined;
        if (member[v][c]) continue;
        if (edge_labels[k] != want_edge) continue;
        if (graph_.label(c) != want_label) continue;
        if (graph_.degree(c) < want_degree) continue;
        if (!passes_nlf(v, c)) continue;
        candidates[v].push_back(c);
        member[v][c] = 1;
      }
    }
    if (candidates[v].empty()) return result;  // no embeddings at all
  }

  // Bottom-up refinement: a candidate of v must have, for each tree child
  // w, at least one neighbor in w's candidate set. Iterate to a (cheap)
  // fixpoint: two passes cover most of the benefit.
  for (int pass = 0; pass < 2; ++pass) {
    bool any_change = false;
    for (size_t i = bfs_order.size(); i-- > 0;) {
      const graph::NodeId v = bfs_order[i];
      if (tree_children[v].empty()) continue;
      auto& set = candidates[v];
      const size_t before = set.size();
      set.erase(std::remove_if(
                    set.begin(), set.end(),
                    [&](graph::NodeId c) {
                      for (const graph::NodeId w : tree_children[v]) {
                        bool found = false;
                        for (const graph::NodeId nb : graph_.neighbors(c)) {
                          if (member[w][nb]) {
                            found = true;
                            break;
                          }
                        }
                        if (!found) {
                          member[v][c] = 0;
                          return true;
                        }
                      }
                      return false;
                    }),
                set.end());
      if (set.empty()) return result;
      any_change |= set.size() != before;
    }
    if (!any_change) break;
  }

  // ---- Matching order: core first, ascending candidate-set size --------
  Plan plan;
  plan.order.push_back(root);
  uint64_t placed = 1ULL << root;
  while (plan.order.size() < qn) {
    graph::NodeId pick = graph::kInvalidNode;
    bool pick_in_core = false;
    size_t pick_size = SIZE_MAX;
    for (graph::NodeId v = 0; v < qn; ++v) {
      if ((placed >> v) & 1ULL) continue;
      if ((q.neighbor_bits(v) & placed) == 0) continue;
      const bool in_core = (core >> v) & 1ULL;
      const size_t size = candidates[v].size();
      const bool better = pick == graph::kInvalidNode ||
                          (in_core && !pick_in_core) ||
                          (in_core == pick_in_core && size < pick_size);
      if (better) {
        pick = v;
        pick_in_core = in_core;
        pick_size = size;
      }
    }
    assert(pick != graph::kInvalidNode);
    plan.order.push_back(pick);
    placed |= 1ULL << pick;
  }

  // ---- Enumeration over the candidate space ----------------------------
  std::vector<size_t> position(qn);
  for (size_t i = 0; i < qn; ++i) position[plan.order[i]] = i;
  std::vector<graph::NodeId> mapping(qn, graph::kInvalidNode);
  std::vector<graph::NodeId> mapped_stack(qn, graph::kInvalidNode);
  struct Frame {
    std::vector<graph::NodeId> frame_candidates;
    size_t next = 0;
  };
  std::vector<Frame> frames(qn);

  auto fill = [&](size_t level) {
    const graph::NodeId v = plan.order[level];
    auto& frame = frames[level];
    frame.frame_candidates.clear();
    frame.next = 0;
    // Anchor on the mapped query neighbor with the smallest image degree
    // and intersect its adjacency with v's candidate set.
    graph::NodeId anchor = graph::kInvalidNode;
    graph::Label anchor_edge = graph::kDefaultEdgeLabel;
    size_t anchor_degree = SIZE_MAX;
    for (const auto& [nbr, edge_label] : q.neighbors(v)) {
      if (position[nbr] >= level) continue;
      const size_t deg = graph_.degree(mapping[nbr]);
      if (deg < anchor_degree) {
        anchor_degree = deg;
        anchor = nbr;
        anchor_edge = edge_label;
      }
    }
    assert(anchor != graph::kInvalidNode);
    const auto nbrs = graph_.neighbors(mapping[anchor]);
    const auto edge_labels = graph_.edge_labels(mapping[anchor]);
    for (size_t k = 0; k < nbrs.size(); ++k) {
      const graph::NodeId c = nbrs[k];
      if (edge_labels[k] != anchor_edge) continue;
      if (!member[v][c]) continue;
      bool ok = true;
      for (size_t i = 0; i < level && ok; ++i) {
        if (mapped_stack[i] == c) ok = false;
      }
      if (!ok) continue;
      for (const auto& [nbr, edge_label] : q.neighbors(v)) {
        if (position[nbr] >= level || nbr == anchor) continue;
        const auto found = graph_.EdgeLabelBetween(mapping[nbr], c);
        if (!found.has_value() || *found != edge_label) {
          ok = false;
          break;
        }
      }
      if (ok) frame.frame_candidates.push_back(c);
    }
  };

  frames[0].frame_candidates = candidates[root];
  frames[0].next = 0;
  size_t level = 0;
  bool truncated = false;
  uint32_t steps_until_check = 1024;
  while (true) {
    if (--steps_until_check == 0) {
      steps_until_check = 1024;
      if (options.stop.StopRequested() || options.deadline.Expired()) {
        truncated = true;
        break;
      }
    }
    auto& frame = frames[level];
    if (frame.next >= frame.frame_candidates.size()) {
      if (level == 0) break;
      --level;
      const graph::NodeId v = plan.order[level];
      mapping[v] = graph::kInvalidNode;
      mapped_stack[level] = graph::kInvalidNode;
      ++frames[level].next;
      continue;
    }
    const graph::NodeId c = frame.frame_candidates[frame.next];
    const graph::NodeId v = plan.order[level];
    if (stats != nullptr) ++stats->recursive_calls;
    mapping[v] = c;
    mapped_stack[level] = c;
    if (level + 1 == qn) {
      ++result.embedding_count;
      if (stats != nullptr) ++stats->embeddings_found;
      bool keep_going = true;
      if (visitor) keep_going = visitor(mapping);
      mapping[v] = graph::kInvalidNode;
      mapped_stack[level] = graph::kInvalidNode;
      if (!keep_going || result.embedding_count >= options.max_embeddings) {
        truncated = true;
        break;
      }
      ++frame.next;
      continue;
    }
    ++level;
    fill(level);
  }

  result.complete = !truncated;
  result.outcome =
      result.embedding_count > 0 ? Outcome::kValid : Outcome::kInvalid;
  if (truncated && result.embedding_count == 0) {
    result.outcome = Outcome::kTimeout;
  }
  return result;
}

}  // namespace psi::match
