#ifndef SMARTPSI_MATCH_PLAN_H_
#define SMARTPSI_MATCH_PLAN_H_

#include <cstddef>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "graph/query_graph.h"
#include "util/random.h"

namespace psi::match {

/// A matching order over the query nodes: `order[0]` is matched first,
/// then `order[1]`, etc. For PSI evaluation `order[0]` must be the pivot.
///
/// Every plan in this codebase is *connected*: each node after the first is
/// adjacent (in the query) to at least one earlier node, so candidate
/// generation can always anchor on a mapped neighbor.
struct Plan {
  std::vector<graph::NodeId> order;

  size_t size() const { return order.size(); }
  bool empty() const { return order.empty(); }

  std::string ToString() const;
};

/// True iff `plan` is a permutation of q's nodes, starts at `root`, and is
/// connected in the sense above.
bool IsValidPlan(const graph::QueryGraph& q, const Plan& plan,
                 graph::NodeId root);

/// Selectivity-based heuristic order (the "standard execution plan" used as
/// the recovery fallback, paper §4.3, and by the pure optimistic /
/// pessimistic drivers): starting from `root`, repeatedly append the
/// frontier query node minimizing label_frequency(g) / (1 + degree), i.e.,
/// rare labels and high degrees first — the classic GraphQL/TurboIso-style
/// ranking.
Plan MakeHeuristicPlan(const graph::QueryGraph& q, const graph::Graph& g,
                       graph::NodeId root);

/// Uniformly random connected order starting at `root`.
Plan MakeRandomPlan(const graph::QueryGraph& q, graph::NodeId root,
                    util::Rng& rng);

/// Enumerates connected orders starting at `root`, stopping after
/// `max_count` plans (DFS over frontiers; deterministic order).
std::vector<Plan> EnumerateConnectedPlans(const graph::QueryGraph& q,
                                          graph::NodeId root,
                                          size_t max_count);

/// The plan pool Model β classifies over (paper §4.2.2): the heuristic plan
/// (class 0) plus up to `count - 1` distinct random connected plans.
/// For small queries where fewer distinct plans exist, the pool is shorter.
std::vector<Plan> SamplePlanPool(const graph::QueryGraph& q,
                                 const graph::Graph& g, graph::NodeId root,
                                 size_t count, util::Rng& rng);

}  // namespace psi::match

#endif  // SMARTPSI_MATCH_PLAN_H_
