#ifndef SMARTPSI_MATCH_RESTART_POLICY_H_
#define SMARTPSI_MATCH_RESTART_POLICY_H_

#include <cstddef>
#include <cstdint>

namespace psi::match {

/// The Luby–Sinclair–Zuckerman restart sequence 1 1 2 1 1 2 4 1 1 2 1 1 2
/// 4 8 ... — the universal strategy whose expected run time is within a
/// logarithmic factor of the optimal (unknowable) fixed cutoff for any
/// heavy-tailed run-time distribution. `i` is 1-based.
uint64_t LubyValue(uint64_t i);

/// Restart policy for first-embedding searches — the pessimist refutation
/// path and the enumerator's existence phase — after the Glasgow subgraph
/// solver (McCreesh–Prosser). Run k gets a node budget of
/// LubyValue(k + 1) * unit_nodes search-tree nodes; when the budget is
/// exhausted the search tears down, the value ordering is reseeded, and the
/// search restarts from the root. After `max_restarts` budgeted runs the
/// final run is budget-*unlimited*, so a restarting search always
/// terminates with the exact answer: restarts cost time, never soundness.
struct RestartOptions {
  bool enabled = false;

  /// Node-budget multiplier: run k may expand LubyValue(k + 1) * unit_nodes
  /// search-tree nodes before restarting.
  uint64_t unit_nodes = 4096;

  /// Budgeted runs before the final unlimited run.
  size_t max_restarts = 10;

  /// Base seed for the per-run value-ordering perturbation. Mixed with the
  /// candidate and the run index (see PerturbationSeed), so reruns are
  /// deterministic for a fixed configuration regardless of thread count or
  /// schedule.
  uint64_t seed = 0x9e3779b97f4a7c15ULL;

  /// Node budget for 0-based run `run`; 0 means unlimited (the final run,
  /// or restarts disabled).
  uint64_t BudgetForRun(size_t run) const {
    if (!enabled || run >= max_restarts) return 0;
    return LubyValue(run + 1) * unit_nodes;
  }
};

/// Deterministic per-run perturbation seed: a pure function of
/// (options.seed, candidate, run), so parallel and sequential searches of
/// the same candidate explore identical orders. Run 0 returns 0 — meaning
/// "no perturbation" — so the first budgeted run walks exactly the tree the
/// non-restarting search would, and restarts only ever *add* diversity.
uint64_t PerturbationSeed(const RestartOptions& options, uint64_t candidate,
                          size_t run);

}  // namespace psi::match

#endif  // SMARTPSI_MATCH_RESTART_POLICY_H_
