#include "match/nogood_store.h"

namespace psi::match {

namespace {

inline uint64_t MixStep(uint64_t h, uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  h *= 0xbf58476d1ce4e5b9ULL;
  return h ^ (h >> 31);
}

}  // namespace

void NogoodStore::Reset(uint64_t salt) {
  salt_ = salt;
  binding_tag_ = 0;
  arena_.clear();
  entries_.clear();
  index_.clear();
}

void NogoodStore::EnsureBinding(uint64_t binding_tag) {
  if (binding_tag == binding_tag_) return;
  arena_.clear();
  entries_.clear();
  index_.clear();
  binding_tag_ = binding_tag;
}

uint64_t NogoodStore::Hash(std::span<const graph::NodeId> head,
                           graph::NodeId last) const {
  uint64_t h = salt_ ^ (0xa076'1d64'78bd'642fULL + head.size());
  for (const graph::NodeId c : head) h = MixStep(h, c);
  return MixStep(h, last);
}

bool NogoodStore::Matches(const Entry& entry,
                          std::span<const graph::NodeId> head,
                          graph::NodeId last) const {
  if (entry.length != head.size() + 1) return false;
  const graph::NodeId* stored = arena_.data() + entry.offset;
  for (size_t i = 0; i < head.size(); ++i) {
    if (stored[i] != head[i]) return false;
  }
  return stored[head.size()] == last;
}

bool NogoodStore::Record(std::span<const graph::NodeId> head,
                         graph::NodeId last) {
  const size_t length = head.size() + 1;
  if (length > limits_.max_prefix_length) return false;
  if (entries_.size() >= limits_.max_entries) return false;

  const uint64_t h = Hash(head, last);
  auto& bucket = index_[h];
  for (const uint32_t id : bucket) {
    if (Matches(entries_[id], head, last)) return false;  // duplicate
  }

  Entry entry;
  entry.offset = static_cast<uint32_t>(arena_.size());
  entry.length = static_cast<uint32_t>(length);
  arena_.insert(arena_.end(), head.begin(), head.end());
  arena_.push_back(last);
  bucket.push_back(static_cast<uint32_t>(entries_.size()));
  entries_.push_back(entry);
  return true;
}

bool NogoodStore::Contains(std::span<const graph::NodeId> head,
                           graph::NodeId last) const {
  if (entries_.empty()) return false;
  if (head.size() + 1 > limits_.max_prefix_length) return false;
  const auto it = index_.find(Hash(head, last));
  if (it == index_.end()) return false;
  for (const uint32_t id : it->second) {
    if (Matches(entries_[id], head, last)) return true;
  }
  return false;
}

}  // namespace psi::match
