#ifndef SMARTPSI_MATCH_ENGINE_H_
#define SMARTPSI_MATCH_ENGINE_H_

#include <memory>
#include <string>

#include "match/subgraph_enumerator.h"

namespace psi::match {

/// Common interface over the subgraph-isomorphism competitors evaluated in
/// the paper (§5.2): each engine enumerates all embeddings of a query with
/// its own filtering and ordering strategy. PSI-by-projection (what existing
/// applications do) is provided on top of Enumerate().
class MatchingEngine {
 public:
  using Options = SubgraphEnumerator::Options;
  using Result = SubgraphEnumerator::EnumerationResult;
  using Visitor = SubgraphEnumerator::Visitor;
  using ProjectionResult = SubgraphEnumerator::ProjectionResult;

  virtual ~MatchingEngine() = default;

  virtual std::string name() const = 0;

  /// Enumerates embeddings of `q`; the engine chooses its own matching
  /// order. `visitor` may be null.
  virtual Result Enumerate(const graph::QueryGraph& q, const Visitor& visitor,
                           const Options& options,
                           SearchStats* stats = nullptr) = 0;

  /// PSI by projection: enumerate everything, collect distinct pivot images
  /// (sorted). Requires q.has_pivot().
  ProjectionResult ProjectPivot(const graph::QueryGraph& q,
                                const Options& options,
                                SearchStats* stats = nullptr);
};

/// Plain backtracking with the selectivity-heuristic order — the
/// lowest-common-denominator baseline (wraps SubgraphEnumerator).
class BasicEngine : public MatchingEngine {
 public:
  explicit BasicEngine(const graph::Graph& g) : graph_(g) {}

  std::string name() const override { return "Basic"; }

  Result Enumerate(const graph::QueryGraph& q, const Visitor& visitor,
                   const Options& options,
                   SearchStats* stats = nullptr) override;

 private:
  const graph::Graph& graph_;
};

}  // namespace psi::match

#endif  // SMARTPSI_MATCH_ENGINE_H_
