#ifndef SMARTPSI_MATCH_CANDIDATES_H_
#define SMARTPSI_MATCH_CANDIDATES_H_

#include <vector>

#include "graph/graph.h"
#include "graph/query_graph.h"

namespace psi::match {

/// Candidate pivot bindings for a pivoted query (the candidate extraction
/// step of the SmartPSI architecture, Figure 6): all data nodes that
///   * carry the pivot's label,
///   * have at least the pivot's degree, and
///   * pass a cheap pivot-neighborhood pre-check: for every (edge label,
///     neighbor label) pair class among the pivot's query edges, the node
///     has at least as many matching data edges. A node missing such an
///     edge can never bind the pivot (query neighbors map injectively), so
///     obviously-dead candidates die here, before any signature work.
/// Sorted ascending. The output vector is reserved from the pivot label's
/// bucket size, so extraction never reallocates.
std::vector<graph::NodeId> ExtractPivotCandidates(const graph::Graph& g,
                                                  const graph::QueryGraph& q);

}  // namespace psi::match

#endif  // SMARTPSI_MATCH_CANDIDATES_H_
