#ifndef SMARTPSI_MATCH_CANDIDATES_H_
#define SMARTPSI_MATCH_CANDIDATES_H_

#include <vector>

#include "graph/graph.h"
#include "graph/query_graph.h"

namespace psi::match {

/// Candidate pivot bindings for a pivoted query: all data nodes with the
/// pivot's label and at least its degree (the candidate extraction step of
/// the SmartPSI architecture, Figure 6). Sorted ascending.
std::vector<graph::NodeId> ExtractPivotCandidates(const graph::Graph& g,
                                                  const graph::QueryGraph& q);

}  // namespace psi::match

#endif  // SMARTPSI_MATCH_CANDIDATES_H_
