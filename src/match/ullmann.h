#ifndef SMARTPSI_MATCH_ULLMANN_H_
#define SMARTPSI_MATCH_ULLMANN_H_

#include "match/engine.h"

namespace psi::match {

/// Ullmann's algorithm (JACM 1976) — the first practical subgraph
/// isomorphism procedure and the classic baseline of the field (paper §6.1).
///
/// A candidate bit-matrix M (query node × data node) is initialized with
/// label / degree / neighbor-label-frequency filters and refined to a
/// fixpoint with Ullmann's condition: M[i][u] survives only if every query
/// neighbor j of i has some candidate adjacent to u. Enumeration then
/// backtracks over the refined rows in ascending-candidate-count order.
///
/// Simplification vs. the original: refinement runs at the root only, not
/// at every search node (the usual engineering trade-off; re-refinement
/// costs more than it prunes on labeled graphs).
class UllmannEngine : public MatchingEngine {
 public:
  explicit UllmannEngine(const graph::Graph& g) : graph_(g) {}

  std::string name() const override { return "Ullmann"; }

  Result Enumerate(const graph::QueryGraph& q, const Visitor& visitor,
                   const Options& options,
                   SearchStats* stats = nullptr) override;

 private:
  const graph::Graph& graph_;
};

}  // namespace psi::match

#endif  // SMARTPSI_MATCH_ULLMANN_H_
