#include "match/subgraph_enumerator.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>

namespace psi::match {

namespace {

struct BackwardNeighbor {
  graph::NodeId query_node;
  graph::Label edge_label;
};

/// Precomputes, for each plan level, the query neighbors mapped earlier.
std::vector<std::vector<BackwardNeighbor>> ComputeBackward(
    const graph::QueryGraph& q, const Plan& plan) {
  const size_t n = q.num_nodes();
  std::vector<size_t> position(n, 0);
  for (size_t i = 0; i < n; ++i) position[plan.order[i]] = i;
  std::vector<std::vector<BackwardNeighbor>> backward(n);
  for (size_t level = 1; level < n; ++level) {
    const graph::NodeId v = plan.order[level];
    for (const auto& [nbr, edge_label] : q.neighbors(v)) {
      if (position[nbr] < level) backward[level].push_back({nbr, edge_label});
    }
  }
  return backward;
}

}  // namespace

SubgraphEnumerator::EnumerationResult SubgraphEnumerator::Enumerate(
    const graph::QueryGraph& q, const Plan& plan, const Visitor& visitor,
    const Options& options, SearchStats* stats) {
  EnumerationResult result;
  if (q.num_nodes() == 0) return result;
  assert(plan.order.size() == q.num_nodes());

  const auto backward = ComputeBackward(q, plan);
  std::vector<graph::NodeId> mapping(q.num_nodes(), graph::kInvalidNode);
  std::vector<graph::NodeId> mapped_stack(q.num_nodes(),
                                          graph::kInvalidNode);
  std::vector<Frame> frames(q.num_nodes());

  const graph::NodeId root = plan.order[0];
  const graph::Label root_label = q.label(root);
  auto& root_frame = frames[0];
  root_frame.candidates.clear();
  if (root_label < graph_.num_labels()) {
    for (const graph::NodeId u : graph_.nodes_with_label(root_label)) {
      if (graph_.degree(u) >= q.degree(root)) {
        root_frame.candidates.push_back(u);
      }
    }
  }
  root_frame.next_index = 0;

  auto is_used = [&](graph::NodeId u, size_t level) {
    for (size_t i = 0; i < level; ++i) {
      if (mapped_stack[i] == u) return true;
    }
    return false;
  };

  auto fill_candidates = [&](size_t level) {
    const graph::NodeId v = plan.order[level];
    auto& frame = frames[level];
    frame.candidates.clear();
    frame.next_index = 0;
    const auto& anchors = backward[level];
    assert(!anchors.empty());
    size_t anchor_index = 0;
    size_t anchor_degree = SIZE_MAX;
    for (size_t i = 0; i < anchors.size(); ++i) {
      const size_t deg = graph_.degree(mapping[anchors[i].query_node]);
      if (deg < anchor_degree) {
        anchor_degree = deg;
        anchor_index = i;
      }
    }
    const auto anchor = anchors[anchor_index];
    const graph::NodeId anchor_image = mapping[anchor.query_node];
    const graph::Label want_label = q.label(v);
    const size_t want_degree = q.degree(v);
    const auto nbrs = graph_.neighbors(anchor_image);
    const auto edge_labels = graph_.edge_labels(anchor_image);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      const graph::NodeId c = nbrs[i];
      if (stats != nullptr) ++stats->candidates_examined;
      if (edge_labels[i] != anchor.edge_label) continue;
      if (graph_.label(c) != want_label) continue;
      if (graph_.degree(c) < want_degree) continue;
      if (is_used(c, level)) continue;
      bool consistent = true;
      for (size_t a = 0; a < anchors.size(); ++a) {
        if (a == anchor_index) continue;
        const auto edge_label =
            graph_.EdgeLabelBetween(mapping[anchors[a].query_node], c);
        if (!edge_label.has_value() ||
            *edge_label != anchors[a].edge_label) {
          consistent = false;
          break;
        }
      }
      if (consistent) frame.candidates.push_back(c);
    }
  };

  // Iterative backtracking so deep data graphs cannot overflow the stack
  // and so early-stop bookkeeping stays simple.
  size_t level = 0;
  uint32_t steps_until_check = 1024;
  bool truncated = false;
  while (true) {
    if (--steps_until_check == 0) {
      steps_until_check = 1024;
      if (options.stop.StopRequested() || options.deadline.Expired()) {
        truncated = true;
        break;
      }
    }
    auto& frame = frames[level];
    if (frame.next_index >= frame.candidates.size()) {
      // Exhausted this level; backtrack.
      if (level == 0) break;
      --level;
      const graph::NodeId v = plan.order[level];
      mapping[v] = graph::kInvalidNode;
      mapped_stack[level] = graph::kInvalidNode;
      ++frames[level].next_index;
      continue;
    }
    const graph::NodeId c = frame.candidates[frame.next_index];
    const graph::NodeId v = plan.order[level];
    if (stats != nullptr) ++stats->recursive_calls;
    mapping[v] = c;
    mapped_stack[level] = c;
    if (level + 1 == q.num_nodes()) {
      // Full embedding.
      ++result.embedding_count;
      if (stats != nullptr) ++stats->embeddings_found;
      bool keep_going = true;
      if (visitor) keep_going = visitor(mapping);
      if (!keep_going || result.embedding_count >= options.max_embeddings) {
        truncated = result.embedding_count >= options.max_embeddings ||
                    !keep_going;
        mapping[v] = graph::kInvalidNode;
        mapped_stack[level] = graph::kInvalidNode;
        break;
      }
      mapping[v] = graph::kInvalidNode;
      mapped_stack[level] = graph::kInvalidNode;
      ++frame.next_index;
      continue;
    }
    ++level;
    fill_candidates(level);
  }

  result.complete = !truncated;
  result.outcome =
      result.embedding_count > 0 ? Outcome::kValid : Outcome::kInvalid;
  if (truncated && result.embedding_count == 0) {
    result.outcome = Outcome::kTimeout;
  }
  return result;
}

SubgraphEnumerator::EnumerationResult SubgraphEnumerator::CountEmbeddings(
    const graph::QueryGraph& q, const Plan& plan, const Options& options,
    SearchStats* stats) {
  return Enumerate(q, plan, Visitor(), options, stats);
}

SubgraphEnumerator::ProjectionResult SubgraphEnumerator::ProjectPivot(
    const graph::QueryGraph& q, const Plan& plan, const Options& options,
    SearchStats* stats) {
  assert(q.has_pivot());
  ProjectionResult projection;
  std::unordered_set<graph::NodeId> distinct;
  const graph::NodeId pivot = q.pivot();
  const auto result = Enumerate(
      q, plan,
      [&](std::span<const graph::NodeId> mapping) {
        distinct.insert(mapping[pivot]);
        return true;
      },
      options, stats);
  projection.embedding_count = result.embedding_count;
  projection.complete = result.complete;
  projection.pivot_matches.assign(distinct.begin(), distinct.end());
  std::sort(projection.pivot_matches.begin(), projection.pivot_matches.end());
  return projection;
}

}  // namespace psi::match
