#include "match/subgraph_enumerator.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <unordered_set>

#include "match/parallel_search.h"
#include "util/random.h"

namespace psi::match {

namespace {

struct BackwardNeighbor {
  graph::NodeId query_node;
  graph::Label edge_label;
};

/// Precomputes, for each plan level, the query neighbors mapped earlier.
std::vector<std::vector<BackwardNeighbor>> ComputeBackward(
    const graph::QueryGraph& q, const Plan& plan) {
  const size_t n = q.num_nodes();
  std::vector<size_t> position(n, 0);
  for (size_t i = 0; i < n; ++i) position[plan.order[i]] = i;
  std::vector<std::vector<BackwardNeighbor>> backward(n);
  for (size_t level = 1; level < n; ++level) {
    const graph::NodeId v = plan.order[level];
    for (const auto& [nbr, edge_label] : q.neighbors(v)) {
      if (position[nbr] < level) backward[level].push_back({nbr, edge_label});
    }
  }
  return backward;
}

}  // namespace

SubgraphEnumerator::EnumerationResult SubgraphEnumerator::Enumerate(
    const graph::QueryGraph& q, const Plan& plan, const Visitor& visitor,
    const Options& options, SearchStats* stats) {
  if (q.num_nodes() == 0) return EnumerationResult();
  assert(plan.order.size() == q.num_nodes());

  const graph::NodeId root = plan.order[0];
  const graph::Label root_label = q.label(root);
  std::vector<graph::NodeId> roots;
  if (root_label < graph_.num_labels()) {
    for (const graph::NodeId u : graph_.nodes_with_label(root_label)) {
      if (graph_.degree(u) >= q.degree(root)) roots.push_back(u);
    }
  }
  return EnumerateRoots(q, plan, roots, visitor, options, stats);
}

SubgraphEnumerator::EnumerationResult SubgraphEnumerator::EnumerateRoots(
    const graph::QueryGraph& q, const Plan& plan,
    std::span<const graph::NodeId> roots, const Visitor& visitor,
    const Options& options, SearchStats* stats) {
  EnumerationResult result;
  if (q.num_nodes() == 0) return result;
  assert(plan.order.size() == q.num_nodes());

  const auto backward = ComputeBackward(q, plan);
  std::vector<graph::NodeId> mapping(q.num_nodes(), graph::kInvalidNode);
  std::vector<graph::NodeId> mapped_stack(q.num_nodes(),
                                          graph::kInvalidNode);
  std::vector<Frame> frames(q.num_nodes());

  // Luby restart state. Restarts only tear the search down while zero
  // embeddings have been visited; after the first embedding (or once the
  // budgeted runs are spent) the budget is lifted in place, so a
  // restarting enumeration is always exact on completion.
  size_t run = 0;
  uint64_t budget = options.restarts.enabled
                        ? options.restarts.BudgetForRun(0)
                        : options.node_budget;
  bool budget_limited = budget != 0;
  uint64_t nodes_used = 0;
  uint64_t perturb =
      options.restarts.enabled
          ? PerturbationSeed(options.restarts, roots.size(), 0)
          : 0;

  auto perturb_frame = [&](size_t level) {
    auto& candidates = frames[level].candidates;
    if (perturb != 0 && candidates.size() > 1) {
      util::Rng rng(perturb ^ (0x9e3779b97f4a7c15ULL *
                               (static_cast<uint64_t>(level) + 1)));
      util::Shuffle(candidates, rng);
    }
  };

  auto reset_root = [&] {
    auto& root_frame = frames[0];
    root_frame.candidates.assign(roots.begin(), roots.end());
    root_frame.next_index = 0;
    perturb_frame(0);
  };
  reset_root();

  auto is_used = [&](graph::NodeId u, size_t level) {
    for (size_t i = 0; i < level; ++i) {
      if (mapped_stack[i] == u) return true;
    }
    return false;
  };

  auto fill_candidates = [&](size_t level) {
    const graph::NodeId v = plan.order[level];
    auto& frame = frames[level];
    frame.candidates.clear();
    frame.next_index = 0;
    const auto& anchors = backward[level];
    assert(!anchors.empty());
    size_t anchor_index = 0;
    size_t anchor_degree = SIZE_MAX;
    for (size_t i = 0; i < anchors.size(); ++i) {
      const size_t deg = graph_.degree(mapping[anchors[i].query_node]);
      if (deg < anchor_degree) {
        anchor_degree = deg;
        anchor_index = i;
      }
    }
    const auto anchor = anchors[anchor_index];
    const graph::NodeId anchor_image = mapping[anchor.query_node];
    const graph::Label want_label = q.label(v);
    const size_t want_degree = q.degree(v);
    const auto nbrs = graph_.neighbors(anchor_image);
    const auto edge_labels = graph_.edge_labels(anchor_image);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      const graph::NodeId c = nbrs[i];
      if (stats != nullptr) ++stats->candidates_examined;
      if (edge_labels[i] != anchor.edge_label) continue;
      if (graph_.label(c) != want_label) continue;
      if (graph_.degree(c) < want_degree) continue;
      if (is_used(c, level)) continue;
      bool consistent = true;
      for (size_t a = 0; a < anchors.size(); ++a) {
        if (a == anchor_index) continue;
        const auto edge_label =
            graph_.EdgeLabelBetween(mapping[anchors[a].query_node], c);
        if (!edge_label.has_value() ||
            *edge_label != anchors[a].edge_label) {
          consistent = false;
          break;
        }
      }
      if (consistent) frame.candidates.push_back(c);
    }
    perturb_frame(level);
  };

  // Iterative backtracking so deep data graphs cannot overflow the stack
  // and so early-stop bookkeeping stays simple.
  size_t level = 0;
  uint32_t steps_until_check = 1024;
  bool truncated = false;
  bool budget_truncated = false;
  while (true) {
    if (--steps_until_check == 0) {
      steps_until_check = 1024;
      if (options.stop.StopRequested() || options.deadline.Expired()) {
        truncated = true;
        break;
      }
    }
    auto& frame = frames[level];
    if (frame.next_index >= frame.candidates.size()) {
      // Exhausted this level; backtrack.
      if (level == 0) break;
      --level;
      const graph::NodeId v = plan.order[level];
      mapping[v] = graph::kInvalidNode;
      mapped_stack[level] = graph::kInvalidNode;
      ++frames[level].next_index;
      continue;
    }
    if (budget_limited && nodes_used >= budget) {
      if (options.restarts.enabled && result.embedding_count == 0 &&
          run < options.restarts.max_restarts) {
        // Tear down and restart with the next Luby budget and a fresh
        // value-ordering perturbation.
        ++run;
        if (stats != nullptr) ++stats->restarts;
        budget = options.restarts.BudgetForRun(run);
        budget_limited = budget != 0;
        nodes_used = 0;
        // Budgeted probes get a fresh perturbation; the final unlimited
        // run reverts to the baseline order (see PsiEvaluator — bounded
        // worst case beats diversity once nothing can cut the run short).
        perturb = budget_limited
                      ? PerturbationSeed(options.restarts, roots.size(), run)
                      : 0;
        std::fill(mapping.begin(), mapping.end(), graph::kInvalidNode);
        std::fill(mapped_stack.begin(), mapped_stack.end(),
                  graph::kInvalidNode);
        level = 0;
        reset_root();
        continue;
      }
      if (options.restarts.enabled) {
        // Embeddings were already visited (a restart would replay them) or
        // the budgeted runs are spent: lift the budget in place and finish.
        budget_limited = false;
      } else {
        truncated = true;
        budget_truncated = true;
        break;
      }
    }
    ++nodes_used;
    const graph::NodeId c = frame.candidates[frame.next_index];
    const graph::NodeId v = plan.order[level];
    if (stats != nullptr) ++stats->recursive_calls;
    mapping[v] = c;
    mapped_stack[level] = c;
    if (level + 1 == q.num_nodes()) {
      // Full embedding.
      ++result.embedding_count;
      if (stats != nullptr) ++stats->embeddings_found;
      bool keep_going = true;
      if (visitor) keep_going = visitor(mapping);
      if (!keep_going || result.embedding_count >= options.max_embeddings) {
        truncated = result.embedding_count >= options.max_embeddings ||
                    !keep_going;
        mapping[v] = graph::kInvalidNode;
        mapped_stack[level] = graph::kInvalidNode;
        break;
      }
      mapping[v] = graph::kInvalidNode;
      mapped_stack[level] = graph::kInvalidNode;
      ++frame.next_index;
      continue;
    }
    ++level;
    fill_candidates(level);
  }

  result.complete = !truncated;
  result.outcome =
      result.embedding_count > 0 ? Outcome::kValid : Outcome::kInvalid;
  if (truncated && result.embedding_count == 0) {
    result.outcome =
        budget_truncated ? Outcome::kBudgetExhausted : Outcome::kTimeout;
  }
  return result;
}

SubgraphEnumerator::EnumerationResult SubgraphEnumerator::CountEmbeddings(
    const graph::QueryGraph& q, const Plan& plan, const Options& options,
    SearchStats* stats) {
  return Enumerate(q, plan, Visitor(), options, stats);
}

SubgraphEnumerator::ProjectionResult SubgraphEnumerator::ProjectPivot(
    const graph::QueryGraph& q, const Plan& plan, const Options& options,
    SearchStats* stats) {
  assert(q.has_pivot());
  ProjectionResult projection;
  std::unordered_set<graph::NodeId> distinct;
  const graph::NodeId pivot = q.pivot();
  const auto result = Enumerate(
      q, plan,
      [&](std::span<const graph::NodeId> mapping) {
        distinct.insert(mapping[pivot]);
        return true;
      },
      options, stats);
  projection.embedding_count = result.embedding_count;
  projection.complete = result.complete;
  projection.pivot_matches.assign(distinct.begin(), distinct.end());
  std::sort(projection.pivot_matches.begin(), projection.pivot_matches.end());
  return projection;
}

SubgraphEnumerator::ProjectionResult SubgraphEnumerator::ProjectPivotParallel(
    const graph::QueryGraph& q, const Plan& plan, const Options& options,
    size_t num_threads, util::ThreadPool* pool, SearchStats* stats) {
  assert(q.has_pivot());
  if (num_threads <= 1 || q.num_nodes() == 0) {
    return ProjectPivot(q, plan, options, stats);
  }

  const graph::NodeId root = plan.order[0];
  const graph::Label root_label = q.label(root);
  std::vector<graph::NodeId> roots;
  if (root_label < graph_.num_labels()) {
    for (const graph::NodeId u : graph_.nodes_with_label(root_label)) {
      if (graph_.degree(u) >= q.degree(root)) roots.push_back(u);
    }
  }
  if (roots.size() <= 1) return ProjectPivot(q, plan, options, stats);

  // Each root's subtree is disjoint from every other root's (embeddings
  // are keyed by the root image), so partitioning the root frontier
  // partitions the embedding space: any complete parallel run visits
  // exactly the sequential embedding set, and the sorted union of the
  // per-worker pivot sets is bit-identical to the sequential projection.
  const graph::NodeId pivot = q.pivot();
  struct Worker {
    std::unordered_set<graph::NodeId> pivots;
    SearchStats stats;
    bool complete = true;
  };
  const size_t num_workers = std::min(num_threads, roots.size());
  std::vector<Worker> workers(num_workers);
  std::atomic<uint64_t> total_embeddings{0};
  std::atomic<bool> halted{false};

  auto body = [&](size_t item, size_t w) {
    Worker& worker = workers[w];
    if (halted.load(std::memory_order_relaxed)) {
      worker.complete = false;
      return;
    }
    Options per_root = options;
    per_root.max_embeddings = UINT64_MAX;  // enforced via the shared counter
    const graph::NodeId root_image = roots[item];
    const auto r = EnumerateRoots(
        q, plan, {&root_image, 1},
        [&](std::span<const graph::NodeId> m) {
          if (halted.load(std::memory_order_relaxed)) return false;
          worker.pivots.insert(m[pivot]);
          const uint64_t seen =
              total_embeddings.fetch_add(1, std::memory_order_relaxed) + 1;
          if (seen >= options.max_embeddings) {
            halted.store(true, std::memory_order_relaxed);
            return false;
          }
          return true;
        },
        per_root, &worker.stats);
    if (!r.complete) {
      worker.complete = false;
      halted.store(true, std::memory_order_relaxed);
    }
  };
  const uint64_t steals = RunWorkStealing(roots.size(), num_workers, pool, body);

  ProjectionResult projection;
  std::unordered_set<graph::NodeId> distinct;
  SearchStats aggregate;
  projection.complete = true;
  for (Worker& worker : workers) {
    distinct.insert(worker.pivots.begin(), worker.pivots.end());
    aggregate += worker.stats;
    projection.complete = projection.complete && worker.complete;
  }
  aggregate.work_steals += steals;
  if (stats != nullptr) *stats += aggregate;
  projection.embedding_count = total_embeddings.load(std::memory_order_relaxed);
  projection.pivot_matches.assign(distinct.begin(), distinct.end());
  std::sort(projection.pivot_matches.begin(), projection.pivot_matches.end());
  return projection;
}

}  // namespace psi::match
