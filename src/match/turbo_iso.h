#ifndef SMARTPSI_MATCH_TURBO_ISO_H_
#define SMARTPSI_MATCH_TURBO_ISO_H_

#include <vector>

#include "match/engine.h"

namespace psi::match {

/// Simplified TurboIso (Han et al., SIGMOD'13), the paper's second
/// competitor (§5.2):
///
///  1. pick the start query vertex minimizing freq(label) / degree,
///  2. build the query's BFS tree from it,
///  3. for every start-candidate data vertex, explore a *candidate region*:
///     per query node, the set of data nodes reachable through tree edges
///     from the start candidate (with label / degree / edge-label filters),
///  4. choose a region-local matching order by ascending candidate-set size,
///  5. enumerate inside the region with full adjacency checks (non-tree
///     edges verified during matching).
///
/// Simplifications vs. the original (documented in DESIGN.md §3): no NEC
/// (neighborhood equivalence class) compression and region candidate sets
/// are per query node rather than per (query node, parent candidate) path.
/// Both affect constants, not the enumerate-everything behaviour the paper
/// contrasts against.
class TurboIsoEngine : public MatchingEngine {
 public:
  explicit TurboIsoEngine(const graph::Graph& g) : graph_(g) {}

  std::string name() const override { return "TurboIso"; }

  Result Enumerate(const graph::QueryGraph& q, const Visitor& visitor,
                   const Options& options,
                   SearchStats* stats = nullptr) override;

  /// TurboIso⁺ (paper §1 / §5.2): the PSI-optimized variant. Regions are
  /// rooted at the *pivot* and each region's enumeration stops at the first
  /// embedding, confirming or refuting one pivot candidate at a time.
  struct PsiResult {
    /// Sorted data nodes confirmed as pivot matches.
    std::vector<graph::NodeId> valid_nodes;
    /// False if the deadline/stop cut evaluation short.
    bool complete = true;
  };
  PsiResult EvaluatePsi(const graph::QueryGraph& q, const Options& options,
                        SearchStats* stats = nullptr);

 private:
  /// Shared region machinery; `pivot_mode` stops each region at one
  /// embedding and records the start candidate instead of visiting
  /// embeddings.
  Result RunRegions(const graph::QueryGraph& q, graph::NodeId start,
                    bool pivot_mode, const Visitor& visitor,
                    const Options& options, SearchStats* stats,
                    std::vector<graph::NodeId>* valid_nodes);

  const graph::Graph& graph_;
};

}  // namespace psi::match

#endif  // SMARTPSI_MATCH_TURBO_ISO_H_
