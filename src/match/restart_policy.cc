#include "match/restart_policy.h"

#include <cassert>

#include "util/random.h"

namespace psi::match {

uint64_t LubyValue(uint64_t i) {
  assert(i >= 1);
  // luby(i) = 2^(k-1)            if i == 2^k - 1
  //         = luby(i - 2^(k-1) + 1) for the smallest 2^k - 1 >= i otherwise;
  // iterative form of the standard recurrence.
  while (true) {
    uint64_t p = 1;
    while (p - 1 < i) p <<= 1;  // smallest power of two with p - 1 >= i
    if (p - 1 == i) return p >> 1;
    i -= (p >> 1) - 1;
  }
}

uint64_t PerturbationSeed(const RestartOptions& options, uint64_t candidate,
                          size_t run) {
  if (run == 0) return 0;
  util::SplitMix64 mix(options.seed ^ (candidate * 0x9e3779b97f4a7c15ULL) ^
                       (static_cast<uint64_t>(run) * 0xbf58476d1ce4e5b9ULL));
  const uint64_t z = mix();
  return z != 0 ? z : 1;  // 0 is reserved for "no perturbation"
}

}  // namespace psi::match
