#include "match/ullmann.h"

#include <algorithm>
#include <cassert>
#include <vector>

namespace psi::match {

namespace {

/// Row-major bit matrix: one bitset over data nodes per query node.
class CandidateMatrix {
 public:
  CandidateMatrix(size_t query_nodes, size_t data_nodes)
      : words_per_row_((data_nodes + 63) / 64),
        bits_(query_nodes * words_per_row_, 0) {}

  void Set(size_t q, graph::NodeId u) {
    bits_[q * words_per_row_ + u / 64] |= 1ULL << (u % 64);
  }
  void Clear(size_t q, graph::NodeId u) {
    bits_[q * words_per_row_ + u / 64] &= ~(1ULL << (u % 64));
  }
  bool Test(size_t q, graph::NodeId u) const {
    return (bits_[q * words_per_row_ + u / 64] >> (u % 64)) & 1ULL;
  }
  size_t CountRow(size_t q) const {
    size_t count = 0;
    for (size_t w = 0; w < words_per_row_; ++w) {
      count += static_cast<size_t>(
          __builtin_popcountll(bits_[q * words_per_row_ + w]));
    }
    return count;
  }

 private:
  size_t words_per_row_;
  std::vector<uint64_t> bits_;
};

}  // namespace

MatchingEngine::Result UllmannEngine::Enumerate(const graph::QueryGraph& q,
                                                const Visitor& visitor,
                                                const Options& options,
                                                SearchStats* stats) {
  Result result;
  const size_t qn = q.num_nodes();
  if (qn == 0) return result;
  if (!q.IsConnected()) return result;
  const size_t n = graph_.num_nodes();

  // ---- Initial candidate matrix: label / degree / NLF ------------------
  CandidateMatrix m(qn, n);
  std::vector<std::vector<graph::NodeId>> rows(qn);
  std::vector<uint32_t> label_counter(graph_.num_labels() + 1, 0);
  for (graph::NodeId v = 0; v < qn; ++v) {
    const graph::Label label = q.label(v);
    if (label >= graph_.num_labels()) return result;
    for (const graph::NodeId u : graph_.nodes_with_label(label)) {
      if (stats != nullptr) ++stats->candidates_examined;
      if (graph_.degree(u) < q.degree(v)) continue;
      // Neighbor-label-frequency check.
      for (const graph::NodeId nb : graph_.neighbors(u)) {
        ++label_counter[graph_.label(nb)];
      }
      bool ok = true;
      for (const auto& [nbr, edge_label] : q.neighbors(v)) {
        (void)edge_label;
        const graph::Label nl = q.label(nbr);
        if (nl >= graph_.num_labels() || label_counter[nl] == 0) {
          ok = false;
          break;
        }
        --label_counter[nl];  // consume one unit per required neighbor
      }
      // Restore the counter.
      for (const graph::NodeId nb : graph_.neighbors(u)) {
        label_counter[graph_.label(nb)] = 0;
      }
      if (ok) m.Set(v, u);
    }
  }

  // ---- Ullmann refinement to a fixpoint --------------------------------
  bool changed = true;
  while (changed) {
    changed = false;
    for (graph::NodeId v = 0; v < qn; ++v) {
      const graph::Label want = q.label(v);
      for (const graph::NodeId u : graph_.nodes_with_label(want)) {
        if (!m.Test(v, u)) continue;
        // Every query neighbor of v needs a candidate adjacent to u with
        // the right edge label.
        bool supported = true;
        for (const auto& [nbr, edge_label] : q.neighbors(v)) {
          bool found = false;
          const auto nbrs = graph_.neighbors(u);
          const auto edge_labels = graph_.edge_labels(u);
          for (size_t k = 0; k < nbrs.size(); ++k) {
            if (edge_labels[k] == edge_label && m.Test(nbr, nbrs[k])) {
              found = true;
              break;
            }
          }
          if (!found) {
            supported = false;
            break;
          }
        }
        if (!supported) {
          m.Clear(v, u);
          changed = true;
        }
      }
    }
  }

  // Materialize rows; empty row => no embeddings at all.
  for (graph::NodeId v = 0; v < qn; ++v) {
    for (const graph::NodeId u : graph_.nodes_with_label(q.label(v))) {
      if (m.Test(v, u)) rows[v].push_back(u);
    }
    if (rows[v].empty()) return result;
  }

  // ---- Matching order: connected, ascending candidate count ------------
  Plan plan;
  {
    graph::NodeId root = 0;
    size_t best = SIZE_MAX;
    for (graph::NodeId v = 0; v < qn; ++v) {
      if (rows[v].size() < best) {
        best = rows[v].size();
        root = v;
      }
    }
    plan.order.push_back(root);
    uint64_t placed = 1ULL << root;
    while (plan.order.size() < qn) {
      graph::NodeId pick = graph::kInvalidNode;
      size_t pick_size = SIZE_MAX;
      for (graph::NodeId v = 0; v < qn; ++v) {
        if ((placed >> v) & 1ULL) continue;
        if ((q.neighbor_bits(v) & placed) == 0) continue;
        if (rows[v].size() < pick_size) {
          pick_size = rows[v].size();
          pick = v;
        }
      }
      assert(pick != graph::kInvalidNode);
      plan.order.push_back(pick);
      placed |= 1ULL << pick;
    }
  }
  std::vector<size_t> position(qn);
  for (size_t i = 0; i < qn; ++i) position[plan.order[i]] = i;

  // ---- Backtracking over the refined rows -------------------------------
  std::vector<graph::NodeId> mapping(qn, graph::kInvalidNode);
  std::vector<graph::NodeId> mapped_stack(qn, graph::kInvalidNode);
  struct Frame {
    std::vector<graph::NodeId> candidates;
    size_t next = 0;
  };
  std::vector<Frame> frames(qn);

  auto fill = [&](size_t level) {
    const graph::NodeId v = plan.order[level];
    auto& frame = frames[level];
    frame.candidates.clear();
    frame.next = 0;
    for (const graph::NodeId c : rows[v]) {
      bool ok = true;
      for (size_t i = 0; i < level && ok; ++i) {
        if (mapped_stack[i] == c) ok = false;
      }
      if (!ok) continue;
      for (const auto& [nbr, edge_label] : q.neighbors(v)) {
        if (position[nbr] >= level) continue;
        const auto found = graph_.EdgeLabelBetween(mapping[nbr], c);
        if (!found.has_value() || *found != edge_label) {
          ok = false;
          break;
        }
      }
      if (ok) frame.candidates.push_back(c);
    }
  };

  frames[0].candidates = rows[plan.order[0]];
  size_t level = 0;
  bool truncated = false;
  uint32_t steps_until_check = 1024;
  while (true) {
    if (--steps_until_check == 0) {
      steps_until_check = 1024;
      if (options.stop.StopRequested() || options.deadline.Expired()) {
        truncated = true;
        break;
      }
    }
    auto& frame = frames[level];
    if (frame.next >= frame.candidates.size()) {
      if (level == 0) break;
      --level;
      const graph::NodeId v = plan.order[level];
      mapping[v] = graph::kInvalidNode;
      mapped_stack[level] = graph::kInvalidNode;
      ++frames[level].next;
      continue;
    }
    const graph::NodeId c = frame.candidates[frame.next];
    const graph::NodeId v = plan.order[level];
    if (stats != nullptr) ++stats->recursive_calls;
    mapping[v] = c;
    mapped_stack[level] = c;
    if (level + 1 == qn) {
      ++result.embedding_count;
      if (stats != nullptr) ++stats->embeddings_found;
      bool keep_going = true;
      if (visitor) keep_going = visitor(mapping);
      mapping[v] = graph::kInvalidNode;
      mapped_stack[level] = graph::kInvalidNode;
      if (!keep_going || result.embedding_count >= options.max_embeddings) {
        truncated = true;
        break;
      }
      ++frame.next;
      continue;
    }
    ++level;
    fill(level);
  }

  result.complete = !truncated;
  result.outcome =
      result.embedding_count > 0 ? Outcome::kValid : Outcome::kInvalid;
  if (truncated && result.embedding_count == 0) {
    result.outcome = Outcome::kTimeout;
  }
  return result;
}

}  // namespace psi::match
