#ifndef SMARTPSI_MATCH_PARALLEL_SEARCH_H_
#define SMARTPSI_MATCH_PARALLEL_SEARCH_H_

#include <cstddef>
#include <cstdint>
#include <functional>

#include "util/thread_pool.h"

namespace psi::match {

/// Work-stealing executor for intra-query search: runs `body(item, worker)`
/// exactly once for every item in [0, count), with items initially split
/// into contiguous per-worker ranges. An owner pops items from the *front*
/// of its range; a worker that runs dry steals the *back half* of the range
/// of the victim with the most work left. One mutex per slot — search items
/// (whole per-candidate DFS trees) are orders of magnitude coarser than a
/// lock handoff, so contention is negligible, and since workers only ever
/// move existing items (never create them) and never block on one another,
/// the run always terminates with every item executed exactly once.
///
/// Callers get determinism for free when each item's work is independent
/// and the caller merges per-worker results in a canonical (sorted) order:
/// which worker runs an item never changes what the item computes.
///
/// `body` must not throw. Returns the number of successful steals.
uint64_t RunWorkStealing(size_t count, size_t num_workers,
                         util::ThreadPool* pool,
                         const std::function<void(size_t item, size_t worker)>& body);

}  // namespace psi::match

#endif  // SMARTPSI_MATCH_PARALLEL_SEARCH_H_
