#ifndef SMARTPSI_MATCH_PSI_EVALUATOR_H_
#define SMARTPSI_MATCH_PSI_EVALUATOR_H_

#include <vector>

#include "graph/graph.h"
#include "graph/query_graph.h"
#include "match/nogood_store.h"
#include "match/plan.h"
#include "match/restart_policy.h"
#include "match/search_scratch.h"
#include "match/search_stats.h"
#include "signature/signature_matrix.h"
#include "util/stop_token.h"
#include "util/timer.h"

namespace psi::match {

/// Evaluation method for one candidate node (paper §3.3–3.4, Algorithm 1).
enum class PsiMode {
  /// Greedy guided DFS: candidates sorted by satisfiability score,
  /// descending. Fast to *confirm* valid nodes.
  kOptimistic,
  /// Optimistic plus a hard cap on the per-level candidate list (default
  /// 10), minimizing sorting work. Incomplete on its own — a kInvalid
  /// answer only means "not found in the truncated space"; the full
  /// optimistic strategy (EvaluateNodeOptimisticStrategy) falls back.
  kSuperOptimistic,
  /// Unguided search with aggressive neighborhood-signature pruning
  /// (Proposition 3.2). Fast to *refute* invalid nodes.
  kPessimistic,
};

const char* PsiModeName(PsiMode mode);

/// Evaluates whether single data nodes are valid pivot bindings for a
/// pivoted query — the core of PSI: it stops at the *first* embedding.
///
/// Usage:
///   PsiEvaluator eval(g, graph_sigs);
///   eval.BindQuery(q, query_sigs, plan);       // plan.order[0] == q.pivot()
///   for (NodeId u : candidates)
///     if (eval.EvaluateNode(u, opts, &stats) == Outcome::kValid) ...
///
/// Per-level signature work runs through the batched kernels of
/// src/signature/kernels.h over sparse per-query-node requirement views,
/// so satisfaction filtering and score ranking cost O(nnz) per candidate
/// and sweep whole candidate lists in one pass (DESIGN.md §9).
///
/// All mutable state lives in a SearchScratch arena: pass one in to reuse
/// buffers across evaluator instances (the SmartPSI engine pools them per
/// worker); without one the evaluator owns a private arena. Rebinding the
/// same (query, signatures, plan) is a no-op, and rebinding anything else
/// reuses the arena's capacity — per-candidate rebinds allocate nothing
/// after warmup. The evaluator must not be shared across threads
/// concurrently; query/plan/signature references must outlive the binding.
class PsiEvaluator {
 public:
  struct Options {
    PsiMode mode = PsiMode::kPessimistic;
    /// Candidate cap for kSuperOptimistic (paper uses 10).
    size_t super_optimistic_limit = 10;
    /// Set by drivers that already ran the whole candidate list through
    /// FilterPivotCandidates: EvaluateNode then skips the redundant
    /// per-candidate pivot satisfaction check.
    bool pivot_prefiltered = false;
    util::Deadline deadline;
    util::StopToken stop;
    /// Luby restarts for the pessimistic refutation search (ignored by the
    /// optimist modes, whose score-guided order *is* the heuristic). The
    /// final run is budget-unlimited, so enabling restarts never changes
    /// the answer — only the order the space is explored in.
    RestartOptions restarts;
    /// Optional conflict store consulted and fed by restart runs. Must
    /// belong to this thread; the evaluator calls EnsureBinding() with a
    /// (query, plan) tag on every restarting evaluation, so entries can
    /// never be applied under a binding other than the one that recorded
    /// them.
    NogoodStore* nogoods = nullptr;
  };

  /// `graph_sigs` must have one row per node of `g`. Both must outlive the
  /// evaluator. `scratch`, if given, is borrowed for the evaluator's
  /// lifetime (nullptr = use an internal arena).
  PsiEvaluator(const graph::Graph& g,
               const signature::SignatureMatrix& graph_sigs,
               SearchScratch* scratch = nullptr);

  /// Binds the query to evaluate against. `query_sigs` must have one row
  /// per query node, the same column count as the graph signatures, and be
  /// built with the same Method/depth. `plan` must be valid for `q` rooted
  /// at the pivot; it is copied into the scratch arena, so a temporary is
  /// fine. `q` and `query_sigs` are held by reference and must outlive the
  /// binding.
  void BindQuery(const graph::QueryGraph& q,
                 const signature::SignatureMatrix& query_sigs,
                 const Plan& plan);

  /// Evaluates one candidate with the bound query using `options.mode`.
  Outcome EvaluateNode(graph::NodeId candidate, const Options& options,
                       SearchStats* stats = nullptr);

  /// The paper's full optimistic strategy (§3.3): first a super-optimistic
  /// pass; if it finds a match the node is valid, otherwise rerun with the
  /// complete optimistic search.
  Outcome EvaluateNodeOptimisticStrategy(graph::NodeId candidate,
                                         const Options& options,
                                         SearchStats* stats = nullptr);

  /// Bulk Proposition-3.2 prefilter of pivot candidates: one kernel sweep
  /// over the whole list instead of one check per EvaluateNode call.
  /// Removes (in place, order-preserving) exactly the candidates the
  /// per-candidate pessimistic pivot check would prune; returns how many.
  /// Callers then set Options::pivot_prefiltered on the survivors' runs.
  size_t FilterPivotCandidates(std::vector<graph::NodeId>& candidates,
                               SearchStats* stats = nullptr);

 private:
  Outcome Search(size_t level, const Options& options, SearchStats* stats);

  /// One search run from an already-validated pivot binding (the body the
  /// restart loop reruns).
  Outcome RunFromPivot(graph::NodeId candidate, const Options& options,
                       SearchStats* stats);

  /// Harvests nogood prefixes from the live search stack at the moment a
  /// node budget runs out: for every active level, each already-exhausted
  /// sibling candidate heads a subtree proven empty.
  void RecordNogoods(SearchStats* stats);

  /// Fills the level's candidate buffer with data nodes consistent with
  /// all already-mapped query neighbors of plan node `level`.
  void GenerateCandidates(size_t level, SearchStats* stats);

  bool IsUsed(graph::NodeId data_node, size_t level) const;

  /// Polls deadline/stop every kCheckInterval steps.
  bool ShouldAbort(const Options& options, Outcome* outcome);

  static constexpr uint32_t kCheckInterval = 256;

  const graph::Graph& graph_;
  const signature::SignatureMatrix& graph_sigs_;

  const graph::QueryGraph* query_ = nullptr;
  const signature::SignatureMatrix* query_sigs_ = nullptr;

  /// Owned fallback arena; scratch_ points here unless one was passed in.
  SearchScratch owned_scratch_;
  SearchScratch* scratch_;

  uint32_t steps_until_check_ = kCheckInterval;

  /// Restart-run state, set by EvaluateNode around each RunFromPivot call.
  bool budget_limited_ = false;
  uint64_t budget_remaining_ = 0;
  uint64_t perturb_seed_ = 0;
  NogoodStore* nogoods_ = nullptr;
  /// Identifies the bound (query, plan) for nogood scoping.
  uint64_t binding_tag_ = 0;
};

}  // namespace psi::match

#endif  // SMARTPSI_MATCH_PSI_EVALUATOR_H_
