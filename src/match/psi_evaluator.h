#ifndef SMARTPSI_MATCH_PSI_EVALUATOR_H_
#define SMARTPSI_MATCH_PSI_EVALUATOR_H_

#include <vector>

#include "graph/graph.h"
#include "graph/query_graph.h"
#include "match/plan.h"
#include "match/search_stats.h"
#include "signature/signature_matrix.h"
#include "util/stop_token.h"
#include "util/timer.h"

namespace psi::match {

/// Evaluation method for one candidate node (paper §3.3–3.4, Algorithm 1).
enum class PsiMode {
  /// Greedy guided DFS: candidates sorted by satisfiability score,
  /// descending. Fast to *confirm* valid nodes.
  kOptimistic,
  /// Optimistic plus a hard cap on the per-level candidate list (default
  /// 10), minimizing sorting work. Incomplete on its own — a kInvalid
  /// answer only means "not found in the truncated space"; the full
  /// optimistic strategy (EvaluateNodeOptimisticStrategy) falls back.
  kSuperOptimistic,
  /// Unguided search with aggressive neighborhood-signature pruning
  /// (Proposition 3.2). Fast to *refute* invalid nodes.
  kPessimistic,
};

const char* PsiModeName(PsiMode mode);

/// Evaluates whether single data nodes are valid pivot bindings for a
/// pivoted query — the core of PSI: it stops at the *first* embedding.
///
/// Usage:
///   PsiEvaluator eval(g, graph_sigs);
///   eval.BindQuery(q, query_sigs, plan);       // plan.order[0] == q.pivot()
///   for (NodeId u : candidates)
///     if (eval.EvaluateNode(u, opts, &stats) == Outcome::kValid) ...
///
/// The evaluator owns reusable scratch buffers; it is cheap to rebind and
/// must not be shared across threads concurrently. Query/plan/signature
/// references must outlive the binding.
class PsiEvaluator {
 public:
  struct Options {
    PsiMode mode = PsiMode::kPessimistic;
    /// Candidate cap for kSuperOptimistic (paper uses 10).
    size_t super_optimistic_limit = 10;
    util::Deadline deadline;
    util::StopToken stop;
  };

  /// `graph_sigs` must have one row per node of `g`. Both must outlive the
  /// evaluator.
  PsiEvaluator(const graph::Graph& g,
               const signature::SignatureMatrix& graph_sigs);

  /// Binds the query to evaluate against. `query_sigs` must have one row
  /// per query node, the same column count as the graph signatures, and be
  /// built with the same Method/depth. `plan` must be valid for `q` rooted
  /// at the pivot; it is copied, so a temporary is fine. `q` and
  /// `query_sigs` are held by reference and must outlive the binding.
  void BindQuery(const graph::QueryGraph& q,
                 const signature::SignatureMatrix& query_sigs, Plan plan);

  /// Evaluates one candidate with the bound query using `options.mode`.
  Outcome EvaluateNode(graph::NodeId candidate, const Options& options,
                       SearchStats* stats = nullptr);

  /// The paper's full optimistic strategy (§3.3): first a super-optimistic
  /// pass; if it finds a match the node is valid, otherwise rerun with the
  /// complete optimistic search.
  Outcome EvaluateNodeOptimisticStrategy(graph::NodeId candidate,
                                         const Options& options,
                                         SearchStats* stats = nullptr);

 private:
  struct BackwardNeighbor {
    graph::NodeId query_node;  // earlier-in-plan query neighbor
    graph::Label edge_label;
  };

  Outcome Search(size_t level, const Options& options, SearchStats* stats);

  /// Fills level_candidates_[level] with data nodes consistent with all
  /// already-mapped query neighbors of plan node `level`.
  void GenerateCandidates(size_t level, SearchStats* stats);

  bool IsUsed(graph::NodeId data_node, size_t level) const;

  /// Polls deadline/stop every kCheckInterval steps.
  bool ShouldAbort(const Options& options, Outcome* outcome);

  static constexpr uint32_t kCheckInterval = 256;

  const graph::Graph& graph_;
  const signature::SignatureMatrix& graph_sigs_;

  const graph::QueryGraph* query_ = nullptr;
  const signature::SignatureMatrix* query_sigs_ = nullptr;
  Plan plan_;

  /// backward_[level] = query neighbors of plan.order[level] that appear
  /// earlier in the plan (precomputed at BindQuery).
  std::vector<std::vector<BackwardNeighbor>> backward_;

  /// mapping_[query node] = data node or kInvalidNode.
  std::vector<graph::NodeId> mapping_;

  /// mapped_stack_[i] = data node mapped at plan level i (for used checks).
  std::vector<graph::NodeId> mapped_stack_;

  /// Per-level candidate buffers (reused across calls).
  std::vector<std::vector<graph::NodeId>> level_candidates_;
  std::vector<std::pair<float, graph::NodeId>> score_buffer_;

  uint32_t steps_until_check_ = kCheckInterval;
};

}  // namespace psi::match

#endif  // SMARTPSI_MATCH_PSI_EVALUATOR_H_
