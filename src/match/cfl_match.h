#ifndef SMARTPSI_MATCH_CFL_MATCH_H_
#define SMARTPSI_MATCH_CFL_MATCH_H_

#include "match/engine.h"

namespace psi::match {

/// Simplified CFL-Match (Bi et al., SIGMOD'16), the paper's strongest
/// subgraph-isomorphism competitor (§5.2):
///
///  1. core–forest decomposition: the query's 2-core is matched first, the
///     hanging trees (forest) last — postponing Cartesian products,
///  2. a CPI-style candidate space: per query node candidate sets built
///     top-down along a BFS tree (with label / degree / neighbor-label-
///     frequency filters) and refined bottom-up (a candidate survives only
///     if every tree child has an adjacent candidate),
///  3. enumeration ordered core-first by ascending candidate-set size.
///
/// Simplifications vs. the original (DESIGN.md §3): candidate sets are flat
/// per query node (no per-parent edge lists) and leaf compression is
/// omitted. The filtering strength and the enumerate-everything behaviour —
/// what the paper's Figure 7 exercises — are preserved.
class CflMatchEngine : public MatchingEngine {
 public:
  explicit CflMatchEngine(const graph::Graph& g) : graph_(g) {}

  std::string name() const override { return "CFLMatch"; }

  Result Enumerate(const graph::QueryGraph& q, const Visitor& visitor,
                   const Options& options,
                   SearchStats* stats = nullptr) override;

 private:
  const graph::Graph& graph_;
};

/// Returns the bitmask of query nodes in the 2-core of `q` (iteratively
/// stripping degree<=1 nodes). Exposed for testing.
uint64_t TwoCoreMask(const graph::QueryGraph& q);

}  // namespace psi::match

#endif  // SMARTPSI_MATCH_CFL_MATCH_H_
