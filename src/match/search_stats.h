#ifndef SMARTPSI_MATCH_SEARCH_STATS_H_
#define SMARTPSI_MATCH_SEARCH_STATS_H_

#include <cstdint>

namespace psi::match {

/// Instrumentation counters shared by all search engines. Cheap to update
/// (plain members, no atomics); aggregate per-thread copies when running in
/// parallel.
struct SearchStats {
  /// Recursive search calls (≈ partial mappings attempted).
  uint64_t recursive_calls = 0;
  /// Candidate data nodes examined across all levels.
  uint64_t candidates_examined = 0;
  /// Signature satisfaction tests performed (pessimist).
  uint64_t signature_checks = 0;
  /// Candidates pruned by a failed satisfaction test.
  uint64_t pruned_by_signature = 0;
  /// Candidate-list sorts performed (optimist).
  uint64_t score_sorts = 0;
  /// Full embeddings found (enumeration engines).
  uint64_t embeddings_found = 0;
  /// Luby-budget restarts taken (search torn down and reseeded).
  uint64_t restarts = 0;
  /// Nogood prefixes recorded at restart boundaries.
  uint64_t nogoods_recorded = 0;
  /// Candidate expansions pruned by a recorded nogood.
  uint64_t nogood_hits = 0;
  /// Successful work-steal operations in parallel search.
  uint64_t work_steals = 0;

  SearchStats& operator+=(const SearchStats& other) {
    recursive_calls += other.recursive_calls;
    candidates_examined += other.candidates_examined;
    signature_checks += other.signature_checks;
    pruned_by_signature += other.pruned_by_signature;
    score_sorts += other.score_sorts;
    embeddings_found += other.embeddings_found;
    restarts += other.restarts;
    nogoods_recorded += other.nogoods_recorded;
    nogood_hits += other.nogood_hits;
    work_steals += other.work_steals;
    return *this;
  }
};

/// Terminal state of one node evaluation / enumeration run.
enum class Outcome {
  /// A full embedding mapping the pivot to the candidate exists.
  kValid,
  /// The search space was exhausted with no embedding.
  kInvalid,
  /// The deadline expired before a decision was reached.
  kTimeout,
  /// An external StopToken cancelled the search (two-threaded baseline).
  kStopped,
  /// A restart-policy node budget ran out before a decision. Internal to
  /// the restart loop: the final run is budget-unlimited, so this never
  /// escapes a public evaluation entry point.
  kBudgetExhausted,
};

inline const char* OutcomeName(Outcome o) {
  switch (o) {
    case Outcome::kValid:
      return "valid";
    case Outcome::kInvalid:
      return "invalid";
    case Outcome::kTimeout:
      return "timeout";
    case Outcome::kStopped:
      return "stopped";
    case Outcome::kBudgetExhausted:
      return "budget-exhausted";
  }
  return "unknown";
}

}  // namespace psi::match

#endif  // SMARTPSI_MATCH_SEARCH_STATS_H_
