#ifndef SMARTPSI_MATCH_SEARCH_STATS_H_
#define SMARTPSI_MATCH_SEARCH_STATS_H_

#include <cstdint>

namespace psi::match {

/// Instrumentation counters shared by all search engines. Cheap to update
/// (plain members, no atomics); aggregate per-thread copies when running in
/// parallel.
struct SearchStats {
  /// Recursive search calls (≈ partial mappings attempted).
  uint64_t recursive_calls = 0;
  /// Candidate data nodes examined across all levels.
  uint64_t candidates_examined = 0;
  /// Signature satisfaction tests performed (pessimist).
  uint64_t signature_checks = 0;
  /// Candidates pruned by a failed satisfaction test.
  uint64_t pruned_by_signature = 0;
  /// Candidate-list sorts performed (optimist).
  uint64_t score_sorts = 0;
  /// Full embeddings found (enumeration engines).
  uint64_t embeddings_found = 0;

  SearchStats& operator+=(const SearchStats& other) {
    recursive_calls += other.recursive_calls;
    candidates_examined += other.candidates_examined;
    signature_checks += other.signature_checks;
    pruned_by_signature += other.pruned_by_signature;
    score_sorts += other.score_sorts;
    embeddings_found += other.embeddings_found;
    return *this;
  }
};

/// Terminal state of one node evaluation / enumeration run.
enum class Outcome {
  /// A full embedding mapping the pivot to the candidate exists.
  kValid,
  /// The search space was exhausted with no embedding.
  kInvalid,
  /// The deadline expired before a decision was reached.
  kTimeout,
  /// An external StopToken cancelled the search (two-threaded baseline).
  kStopped,
};

inline const char* OutcomeName(Outcome o) {
  switch (o) {
    case Outcome::kValid:
      return "valid";
    case Outcome::kInvalid:
      return "invalid";
    case Outcome::kTimeout:
      return "timeout";
    case Outcome::kStopped:
      return "stopped";
  }
  return "unknown";
}

}  // namespace psi::match

#endif  // SMARTPSI_MATCH_SEARCH_STATS_H_
