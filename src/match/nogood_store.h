#ifndef SMARTPSI_MATCH_NOGOOD_STORE_H_
#define SMARTPSI_MATCH_NOGOOD_STORE_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "graph/types.h"

namespace psi::match {

/// Records failed partial assignments ("nogoods") discovered at restart
/// boundaries so later runs never re-explore a subtree already proven
/// empty — the conflict-recording half of the Glasgow solver's restart
/// scheme.
///
/// A nogood here is a *plan-order prefix* (c0, ..., ck): the data nodes
/// mapped to plan levels 0..k whose subtree was exhaustively searched and
/// found to contain no embedding. Prefixes are positional, so an entry is
/// only meaningful under the exact (query, plan, snapshot) binding that
/// produced it — EnsureBinding() clears the store whenever that binding
/// tag changes, and the constructor salt keys the hash per snapshot
/// generation so entries can never collide across versions even if a tag
/// were reused.
///
/// Lookups are exact (full prefix compare on hash match), never
/// probabilistic: a false positive would prune a live subtree and break
/// the bit-identical-to-sequential guarantee, so hashes only route to
/// buckets. Not thread-safe; use one store per worker.
class NogoodStore {
 public:
  struct Limits {
    /// Hard cap on stored entries; Record() refuses past this.
    size_t max_entries = 1 << 16;
    /// Longest prefix (in plan levels) worth storing: short prefixes prune
    /// exponentially more than long ones, and bounding the length bounds
    /// both memory and the per-expansion lookup cost.
    size_t max_prefix_length = 6;
  };

  explicit NogoodStore(uint64_t salt = 0) : salt_(salt) {}
  NogoodStore(uint64_t salt, Limits limits) : salt_(salt), limits_(limits) {}

  /// Drops every entry and re-salts the hash (snapshot generation change).
  void Reset(uint64_t salt);

  /// Declares the (query, plan, snapshot) binding the caller is about to
  /// search under. If it differs from the store's current binding, all
  /// entries are dropped: prefixes recorded under one plan order are
  /// meaningless — and unsound to consult — under another.
  void EnsureBinding(uint64_t binding_tag);

  /// Records the nogood (head[0], ..., head[n-1], last). Returns true if a
  /// new entry was stored (false: duplicate, over-long, or store full).
  bool Record(std::span<const graph::NodeId> head, graph::NodeId last);

  /// True if (head[0], ..., head[n-1], last) is a recorded nogood.
  bool Contains(std::span<const graph::NodeId> head,
                graph::NodeId last) const;

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  bool full() const { return entries_.size() >= limits_.max_entries; }
  uint64_t salt() const { return salt_; }
  const Limits& limits() const { return limits_; }

 private:
  struct Entry {
    uint32_t offset;  // into arena_
    uint32_t length;  // head length + 1 (the full prefix)
  };

  uint64_t Hash(std::span<const graph::NodeId> head,
                graph::NodeId last) const;
  bool Matches(const Entry& entry, std::span<const graph::NodeId> head,
               graph::NodeId last) const;

  uint64_t salt_;
  uint64_t binding_tag_ = 0;
  Limits limits_;
  /// All prefixes, concatenated; entries index into this arena.
  std::vector<graph::NodeId> arena_;
  std::vector<Entry> entries_;
  /// hash -> indices into entries_ (collisions resolved by exact compare).
  std::unordered_map<uint64_t, std::vector<uint32_t>> index_;
};

}  // namespace psi::match

#endif  // SMARTPSI_MATCH_NOGOOD_STORE_H_
