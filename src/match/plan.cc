#include "match/plan.h"

#include <algorithm>
#include <cassert>
#include <set>
#include <sstream>

namespace psi::match {

std::string Plan::ToString() const {
  std::ostringstream oss;
  oss << "[";
  for (size_t i = 0; i < order.size(); ++i) {
    if (i > 0) oss << " ";
    oss << order[i];
  }
  oss << "]";
  return oss.str();
}

bool IsValidPlan(const graph::QueryGraph& q, const Plan& plan,
                 graph::NodeId root) {
  if (plan.order.size() != q.num_nodes()) return false;
  if (plan.order.empty() || plan.order[0] != root) return false;
  uint64_t placed = 0;
  for (size_t i = 0; i < plan.order.size(); ++i) {
    const graph::NodeId v = plan.order[i];
    if (v >= q.num_nodes()) return false;
    if ((placed >> v) & 1ULL) return false;  // duplicate
    if (i > 0 && (q.neighbor_bits(v) & placed) == 0) return false;
    placed |= 1ULL << v;
  }
  return true;
}

Plan MakeHeuristicPlan(const graph::QueryGraph& q, const graph::Graph& g,
                       graph::NodeId root) {
  assert(root < q.num_nodes());
  Plan plan;
  plan.order.push_back(root);
  uint64_t placed = 1ULL << root;

  auto selectivity = [&](graph::NodeId v) {
    const graph::Label label = q.label(v);
    const double freq =
        label < g.num_labels()
            ? static_cast<double>(g.label_frequency(label))
            : 0.0;
    return freq / (1.0 + static_cast<double>(q.degree(v)));
  };

  while (plan.order.size() < q.num_nodes()) {
    graph::NodeId best = graph::kInvalidNode;
    double best_score = 0.0;
    for (graph::NodeId v = 0; v < q.num_nodes(); ++v) {
      if ((placed >> v) & 1ULL) continue;
      if ((q.neighbor_bits(v) & placed) == 0) continue;  // not on frontier
      const double score = selectivity(v);
      if (best == graph::kInvalidNode || score < best_score) {
        best = v;
        best_score = score;
      }
    }
    // Disconnected query: fall back to any unplaced node so the plan is
    // still a permutation (the evaluator will find no match, correctly).
    if (best == graph::kInvalidNode) {
      for (graph::NodeId v = 0; v < q.num_nodes(); ++v) {
        if (!((placed >> v) & 1ULL)) {
          best = v;
          break;
        }
      }
    }
    plan.order.push_back(best);
    placed |= 1ULL << best;
  }
  return plan;
}

Plan MakeRandomPlan(const graph::QueryGraph& q, graph::NodeId root,
                    util::Rng& rng) {
  assert(root < q.num_nodes());
  Plan plan;
  plan.order.push_back(root);
  uint64_t placed = 1ULL << root;
  std::vector<graph::NodeId> frontier;
  while (plan.order.size() < q.num_nodes()) {
    frontier.clear();
    for (graph::NodeId v = 0; v < q.num_nodes(); ++v) {
      if (!((placed >> v) & 1ULL) && (q.neighbor_bits(v) & placed) != 0) {
        frontier.push_back(v);
      }
    }
    if (frontier.empty()) {
      for (graph::NodeId v = 0; v < q.num_nodes(); ++v) {
        if (!((placed >> v) & 1ULL)) frontier.push_back(v);
      }
    }
    const graph::NodeId pick = frontier[rng.NextBounded(frontier.size())];
    plan.order.push_back(pick);
    placed |= 1ULL << pick;
  }
  return plan;
}

namespace {

void EnumeratePlansRec(const graph::QueryGraph& q, Plan& current,
                       uint64_t placed, size_t max_count,
                       std::vector<Plan>& out) {
  if (out.size() >= max_count) return;
  if (current.order.size() == q.num_nodes()) {
    out.push_back(current);
    return;
  }
  for (graph::NodeId v = 0; v < q.num_nodes(); ++v) {
    if ((placed >> v) & 1ULL) continue;
    if ((q.neighbor_bits(v) & placed) == 0) continue;
    current.order.push_back(v);
    EnumeratePlansRec(q, current, placed | (1ULL << v), max_count, out);
    current.order.pop_back();
    if (out.size() >= max_count) return;
  }
}

}  // namespace

std::vector<Plan> EnumerateConnectedPlans(const graph::QueryGraph& q,
                                          graph::NodeId root,
                                          size_t max_count) {
  std::vector<Plan> plans;
  if (q.num_nodes() == 0 || max_count == 0) return plans;
  Plan current;
  current.order.push_back(root);
  EnumeratePlansRec(q, current, 1ULL << root, max_count, plans);
  return plans;
}

std::vector<Plan> SamplePlanPool(const graph::QueryGraph& q,
                                 const graph::Graph& g, graph::NodeId root,
                                 size_t count, util::Rng& rng) {
  std::vector<Plan> pool;
  if (count == 0 || q.num_nodes() == 0) return pool;
  pool.push_back(MakeHeuristicPlan(q, g, root));

  std::set<std::vector<graph::NodeId>> seen;
  seen.insert(pool[0].order);
  // Bounded retries: small queries may not have `count` distinct plans.
  size_t attempts = 0;
  const size_t max_attempts = count * 20 + 16;
  while (pool.size() < count && attempts < max_attempts) {
    ++attempts;
    Plan p = MakeRandomPlan(q, root, rng);
    if (seen.insert(p.order).second) pool.push_back(std::move(p));
  }
  return pool;
}

}  // namespace psi::match
