#include "match/turbo_iso.h"

#include <algorithm>
#include <cassert>

namespace psi::match {

namespace {

/// Start vertex rank: rare label and high degree first (TurboIso §4.1).
graph::NodeId ChooseStartVertex(const graph::QueryGraph& q,
                                const graph::Graph& g) {
  graph::NodeId best = 0;
  double best_score = -1.0;
  for (graph::NodeId v = 0; v < q.num_nodes(); ++v) {
    const graph::Label label = q.label(v);
    const double freq = label < g.num_labels()
                            ? static_cast<double>(g.label_frequency(label))
                            : 0.0;
    const double score = freq / (1.0 + static_cast<double>(q.degree(v)));
    if (best_score < 0.0 || score < best_score) {
      best_score = score;
      best = v;
    }
  }
  return best;
}

struct BfsTree {
  std::vector<graph::NodeId> order;    // BFS order, order[0] = root
  std::vector<graph::NodeId> parent;   // per query node; root -> itself
  std::vector<graph::Label> parent_edge_label;
};

BfsTree BuildBfsTree(const graph::QueryGraph& q, graph::NodeId root) {
  BfsTree tree;
  tree.parent.assign(q.num_nodes(), graph::kInvalidNode);
  tree.parent_edge_label.assign(q.num_nodes(), graph::kDefaultEdgeLabel);
  tree.order.push_back(root);
  tree.parent[root] = root;
  for (size_t head = 0; head < tree.order.size(); ++head) {
    const graph::NodeId v = tree.order[head];
    for (const auto& [nbr, edge_label] : q.neighbors(v)) {
      if (tree.parent[nbr] == graph::kInvalidNode) {
        tree.parent[nbr] = v;
        tree.parent_edge_label[nbr] = edge_label;
        tree.order.push_back(nbr);
      }
    }
  }
  return tree;
}

}  // namespace

MatchingEngine::Result TurboIsoEngine::RunRegions(
    const graph::QueryGraph& q, graph::NodeId start, bool pivot_mode,
    const Visitor& visitor, const Options& options, SearchStats* stats,
    std::vector<graph::NodeId>* valid_nodes) {
  Result result;
  if (q.num_nodes() == 0) return result;
  // Disconnected queries have no embeddings in any single region.
  if (!q.IsConnected()) return result;

  const BfsTree tree = BuildBfsTree(q, start);

  // Scratch reused across regions.
  std::vector<std::vector<graph::NodeId>> region(q.num_nodes());
  std::vector<uint64_t> seen_epoch(graph_.num_nodes(), 0);
  uint64_t epoch = 0;

  std::vector<graph::NodeId> mapping(q.num_nodes(), graph::kInvalidNode);
  std::vector<graph::NodeId> mapped_stack(q.num_nodes(),
                                          graph::kInvalidNode);

  const graph::Label start_label = q.label(start);
  if (start_label >= graph_.num_labels()) return result;

  bool truncated = false;
  for (const graph::NodeId v_s : graph_.nodes_with_label(start_label)) {
    if (options.stop.StopRequested() || options.deadline.Expired()) {
      truncated = true;
      break;
    }
    if (graph_.degree(v_s) < q.degree(start)) continue;

    // --- Explore the candidate region rooted at v_s ------------------
    bool region_alive = true;
    region[start].assign(1, v_s);
    for (size_t i = 1; i < tree.order.size() && region_alive; ++i) {
      const graph::NodeId v = tree.order[i];
      const graph::NodeId parent = tree.parent[v];
      const graph::Label tree_edge_label = tree.parent_edge_label[v];
      const graph::Label want_label = q.label(v);
      const size_t want_degree = q.degree(v);
      auto& out = region[v];
      out.clear();
      ++epoch;
      for (const graph::NodeId p : region[parent]) {
        const auto nbrs = graph_.neighbors(p);
        const auto edge_labels = graph_.edge_labels(p);
        for (size_t k = 0; k < nbrs.size(); ++k) {
          const graph::NodeId c = nbrs[k];
          if (stats != nullptr) ++stats->candidates_examined;
          if (edge_labels[k] != tree_edge_label) continue;
          if (graph_.label(c) != want_label) continue;
          if (graph_.degree(c) < want_degree) continue;
          if (seen_epoch[c] == epoch) continue;
          seen_epoch[c] = epoch;
          out.push_back(c);
        }
      }
      if (out.empty()) region_alive = false;
    }
    if (!region_alive) continue;

    // --- Region-local matching order: ascending candidate-set size, ---
    // --- connectivity-preserving, start vertex first.                ---
    Plan plan;
    plan.order.push_back(start);
    uint64_t placed = 1ULL << start;
    while (plan.order.size() < q.num_nodes()) {
      graph::NodeId pick = graph::kInvalidNode;
      size_t pick_size = SIZE_MAX;
      for (graph::NodeId v = 0; v < q.num_nodes(); ++v) {
        if ((placed >> v) & 1ULL) continue;
        if ((q.neighbor_bits(v) & placed) == 0) continue;
        if (region[v].size() < pick_size) {
          pick_size = region[v].size();
          pick = v;
        }
      }
      assert(pick != graph::kInvalidNode);
      plan.order.push_back(pick);
      placed |= 1ULL << pick;
    }

    // --- Enumerate inside the region --------------------------------
    // Candidates per level come from the region sets; all mapped query
    // neighbors (tree and non-tree edges) are verified.
    struct Frame {
      std::vector<graph::NodeId> candidates;
      size_t next = 0;
    };
    std::vector<Frame> frames(q.num_nodes());
    std::vector<size_t> position(q.num_nodes());
    for (size_t i = 0; i < plan.order.size(); ++i) {
      position[plan.order[i]] = i;
    }

    auto fill = [&](size_t level) {
      const graph::NodeId v = plan.order[level];
      auto& frame = frames[level];
      frame.candidates.clear();
      frame.next = 0;
      for (const graph::NodeId c : region[v]) {
        bool ok = true;
        for (size_t i = 0; i < level && ok; ++i) {
          if (mapped_stack[i] == c) ok = false;
        }
        if (!ok) continue;
        for (const auto& [nbr, edge_label] : q.neighbors(v)) {
          if (position[nbr] >= level) continue;  // not mapped yet
          const auto found = graph_.EdgeLabelBetween(mapping[nbr], c);
          if (!found.has_value() || *found != edge_label) {
            ok = false;
            break;
          }
        }
        if (ok) frame.candidates.push_back(c);
      }
    };

    frames[0].candidates.assign(1, v_s);
    frames[0].next = 0;
    size_t level = 0;
    bool region_done = false;
    uint64_t region_embeddings = 0;
    uint32_t steps_until_check = 1024;
    while (!region_done) {
      if (--steps_until_check == 0) {
        steps_until_check = 1024;
        if (options.stop.StopRequested() || options.deadline.Expired()) {
          truncated = true;
          break;
        }
      }
      auto& frame = frames[level];
      if (frame.next >= frame.candidates.size()) {
        if (level == 0) break;
        --level;
        const graph::NodeId v = plan.order[level];
        mapping[v] = graph::kInvalidNode;
        mapped_stack[level] = graph::kInvalidNode;
        ++frames[level].next;
        continue;
      }
      const graph::NodeId c = frame.candidates[frame.next];
      const graph::NodeId v = plan.order[level];
      if (stats != nullptr) ++stats->recursive_calls;
      mapping[v] = c;
      mapped_stack[level] = c;
      if (level + 1 == q.num_nodes()) {
        ++region_embeddings;
        ++result.embedding_count;
        if (stats != nullptr) ++stats->embeddings_found;
        bool keep_going = true;
        if (!pivot_mode && visitor) keep_going = visitor(mapping);
        mapping[v] = graph::kInvalidNode;
        mapped_stack[level] = graph::kInvalidNode;
        if (pivot_mode) {
          region_done = true;  // one embedding per pivot candidate
        } else if (!keep_going ||
                   result.embedding_count >= options.max_embeddings) {
          truncated = true;
          region_done = true;
        } else {
          ++frame.next;
        }
        continue;
      }
      ++level;
      fill(level);
    }
    // Unwind any partial mapping before the next region.
    while (level > 0) {
      --level;
      const graph::NodeId v = plan.order[level];
      mapping[v] = graph::kInvalidNode;
      mapped_stack[level] = graph::kInvalidNode;
    }
    if (pivot_mode && region_embeddings > 0 && valid_nodes != nullptr) {
      valid_nodes->push_back(v_s);
    }
    if (truncated) break;
  }

  result.complete = !truncated;
  result.outcome =
      result.embedding_count > 0 ? Outcome::kValid : Outcome::kInvalid;
  if (truncated && result.embedding_count == 0) {
    result.outcome = Outcome::kTimeout;
  }
  return result;
}

MatchingEngine::Result TurboIsoEngine::Enumerate(const graph::QueryGraph& q,
                                                 const Visitor& visitor,
                                                 const Options& options,
                                                 SearchStats* stats) {
  if (q.num_nodes() == 0) return Result{};
  const graph::NodeId start = ChooseStartVertex(q, graph_);
  return RunRegions(q, start, /*pivot_mode=*/false, visitor, options, stats,
                    nullptr);
}

TurboIsoEngine::PsiResult TurboIsoEngine::EvaluatePsi(
    const graph::QueryGraph& q, const Options& options, SearchStats* stats) {
  assert(q.has_pivot());
  PsiResult psi;
  const Result result = RunRegions(q, q.pivot(), /*pivot_mode=*/true,
                                   Visitor(), options, stats,
                                   &psi.valid_nodes);
  psi.complete = result.complete;
  std::sort(psi.valid_nodes.begin(), psi.valid_nodes.end());
  return psi;
}

}  // namespace psi::match
