#include "match/engine.h"

#include <algorithm>
#include <unordered_set>

namespace psi::match {

MatchingEngine::ProjectionResult MatchingEngine::ProjectPivot(
    const graph::QueryGraph& q, const Options& options, SearchStats* stats) {
  ProjectionResult projection;
  std::unordered_set<graph::NodeId> distinct;
  const graph::NodeId pivot = q.pivot();
  const Result result = Enumerate(
      q,
      [&](std::span<const graph::NodeId> mapping) {
        distinct.insert(mapping[pivot]);
        return true;
      },
      options, stats);
  projection.embedding_count = result.embedding_count;
  projection.complete = result.complete;
  projection.pivot_matches.assign(distinct.begin(), distinct.end());
  std::sort(projection.pivot_matches.begin(), projection.pivot_matches.end());
  return projection;
}

MatchingEngine::Result BasicEngine::Enumerate(const graph::QueryGraph& q,
                                              const Visitor& visitor,
                                              const Options& options,
                                              SearchStats* stats) {
  if (q.num_nodes() == 0) return Result{};
  // Root at the query node with the rarest label (ties: higher degree).
  graph::NodeId root = 0;
  double best = -1.0;
  for (graph::NodeId v = 0; v < q.num_nodes(); ++v) {
    const graph::Label label = q.label(v);
    const double freq = label < graph_.num_labels()
                            ? static_cast<double>(graph_.label_frequency(label))
                            : 0.0;
    const double score = freq / (1.0 + static_cast<double>(q.degree(v)));
    if (best < 0.0 || score < best) {
      best = score;
      root = v;
    }
  }
  const Plan plan = MakeHeuristicPlan(q, graph_, root);
  SubgraphEnumerator enumerator(graph_);
  return enumerator.Enumerate(q, plan, visitor, options, stats);
}

}  // namespace psi::match
