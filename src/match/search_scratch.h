#ifndef SMARTPSI_MATCH_SEARCH_SCRATCH_H_
#define SMARTPSI_MATCH_SEARCH_SCRATCH_H_

#include <memory>
#include <vector>

#include "graph/types.h"
#include "match/plan.h"
#include "signature/kernels.h"
#include "signature/sparse_requirement.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace psi::match {

/// A query neighbor that appears earlier in the matching order (the edge
/// the candidate generator must stay consistent with).
struct BackwardNeighbor {
  graph::NodeId query_node;
  graph::Label edge_label;
};

/// All mutable search state of one PsiEvaluator binding, factored out so it
/// can outlive the evaluator and be pooled (DESIGN.md §9). Every container
/// is rebuilt by BindQuery *in place* — capacity persists across rebinds,
/// candidates, and queries, so the steady state of a long-lived scratch
/// (e.g. one pooled per service worker) allocates nothing.
///
/// Not thread-safe; one scratch belongs to at most one evaluator at a time
/// (SearchScratchPool enforces this for pooled use).
struct SearchScratch {
  /// Copy of the bound plan (assign() into it reuses capacity).
  Plan plan;

  /// plan_position[query node] = its level in the plan (BindQuery temp).
  std::vector<size_t> plan_position;

  /// Backward neighbors of all levels, flattened: level i's anchors are
  /// backward_flat[backward_offsets[i] .. backward_offsets[i + 1]).
  std::vector<BackwardNeighbor> backward_flat;
  std::vector<uint32_t> backward_offsets;

  /// mapping[query node] = data node or kInvalidNode.
  std::vector<graph::NodeId> mapping;

  /// mapped_stack[i] = data node mapped at plan level i (used checks).
  std::vector<graph::NodeId> mapped_stack;

  /// Per-level candidate buffers.
  std::vector<std::vector<graph::NodeId>> level_candidates;

  /// level_index[i] = index into level_candidates[i] of the candidate
  /// currently mapped at level i. Lets the restart machinery read off the
  /// exhausted siblings of every active level (the nogood prefixes) at the
  /// moment a budget runs out, before the stack unwinds.
  std::vector<size_t> level_index;

  /// level_reqs[i] = sparse view of the query signature row of plan node i
  /// (shared by the satisfaction filter and the score ranking).
  std::vector<signature::SparseRequirement> level_reqs;

  /// Buffers for the bulk score-and-rank kernel.
  signature::RankScratch rank;
};

/// Thread-safe free list of SearchScratch arenas. A long-lived owner (the
/// SmartPSI engine, and through its per-worker engines the query service)
/// keeps one pool so evaluators created per query reuse warmed-up scratch
/// instead of reallocating their buffers from scratch each time.
class SearchScratchPool {
 public:
  /// Exclusive use of one scratch for the lease's lifetime. Constructed
  /// from a pool it checks out (allocating only when the pool is empty)
  /// and returns on destruction; constructed from nullptr it owns a
  /// private scratch — the unpooled fallback.
  class Lease {
   public:
    explicit Lease(SearchScratchPool* pool)
        : pool_(pool),
          scratch_(pool != nullptr ? pool->Acquire()
                                   : std::make_unique<SearchScratch>()) {}
    ~Lease() {
      if (pool_ != nullptr) pool_->Release(std::move(scratch_));
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    SearchScratch* get() const { return scratch_.get(); }

   private:
    SearchScratchPool* pool_;
    std::unique_ptr<SearchScratch> scratch_;
  };

  std::unique_ptr<SearchScratch> Acquire() {
    util::MutexLock lock(mutex_);
    if (free_.empty()) return std::make_unique<SearchScratch>();
    auto scratch = std::move(free_.back());
    free_.pop_back();
    return scratch;
  }

  void Release(std::unique_ptr<SearchScratch> scratch) {
    util::MutexLock lock(mutex_);
    free_.push_back(std::move(scratch));
  }

  size_t idle_count() const {
    util::MutexLock lock(mutex_);
    return free_.size();
  }

 private:
  mutable util::Mutex mutex_;
  std::vector<std::unique_ptr<SearchScratch>> free_ PSI_GUARDED_BY(mutex_);
};

}  // namespace psi::match

#endif  // SMARTPSI_MATCH_SEARCH_SCRATCH_H_
