#include "match/parallel_search.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "util/mutex.h"

namespace psi::match {

namespace {

/// One worker's claim on a contiguous range [next, end) of items. Guarded
/// by `mutex` (unannotated: thread-safety analysis cannot track per-element
/// locks in a dynamic array; TSan covers this path in CI instead).
struct Slot {
  util::Mutex mutex;
  // psi-check: allow(lock-guard) -- per-element lock in a dynamic array; clang TSA cannot name it, TSan covers this path in CI
  size_t next = 0;
  // psi-check: allow(lock-guard) -- guarded by `mutex` above; same TSA limitation as `next`
  size_t end = 0;
};

constexpr size_t kNoItem = SIZE_MAX;

}  // namespace

uint64_t RunWorkStealing(
    size_t count, size_t num_workers, util::ThreadPool* pool,
    const std::function<void(size_t item, size_t worker)>& body) {
  if (count == 0) return 0;
  num_workers = std::max<size_t>(1, std::min(num_workers, count));
  if (num_workers == 1) {
    for (size_t i = 0; i < count; ++i) body(i, 0);
    return 0;
  }

  // Contiguous initial partition: worker w owns roughly count/num_workers
  // items, the first `count % num_workers` workers one extra.
  std::vector<std::unique_ptr<Slot>> slots(num_workers);
  const size_t base = count / num_workers;
  const size_t extra = count % num_workers;
  size_t cursor = 0;
  for (size_t w = 0; w < num_workers; ++w) {
    slots[w] = std::make_unique<Slot>();
    slots[w]->next = cursor;
    cursor += base + (w < extra ? 1 : 0);
    slots[w]->end = cursor;
  }

  std::atomic<uint64_t> steals{0};

  auto worker_fn = [&](size_t w) {
    Slot& own = *slots[w];
    while (true) {
      size_t item = kNoItem;
      {
        util::MutexLock lock(own.mutex);
        if (own.next < own.end) item = own.next++;
      }
      if (item != kNoItem) {
        body(item, w);
        continue;
      }
      // Own range dry: pick the victim with the most remaining work.
      size_t victim = kNoItem;
      size_t victim_remaining = 0;
      for (size_t v = 0; v < num_workers; ++v) {
        if (v == w) continue;
        util::MutexLock lock(slots[v]->mutex);
        const size_t remaining = slots[v]->end - slots[v]->next;
        if (remaining > victim_remaining) {
          victim_remaining = remaining;
          victim = v;
        }
      }
      // Everyone is dry (items possibly still *executing* elsewhere, but
      // none waiting): this worker is done. Any item mid-steal belongs to
      // its thief, so nothing is lost by exiting here.
      if (victim == kNoItem) return;
      size_t stolen_begin = 0;
      size_t stolen_end = 0;
      {
        util::MutexLock lock(slots[victim]->mutex);
        const size_t remaining = slots[victim]->end - slots[victim]->next;
        if (remaining == 0) continue;  // lost the race; rescan
        const size_t take = (remaining + 1) / 2;
        stolen_end = slots[victim]->end;
        stolen_begin = stolen_end - take;
        slots[victim]->end = stolen_begin;
      }
      {
        util::MutexLock lock(own.mutex);
        own.next = stolen_begin;
        own.end = stolen_end;
      }
      steals.fetch_add(1, std::memory_order_relaxed);
    }
  };

  if (pool != nullptr) {
    for (size_t w = 0; w < num_workers; ++w) {
      pool->Submit([&worker_fn, w] { worker_fn(w); });
    }
    pool->Wait();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(num_workers - 1);
    for (size_t w = 1; w < num_workers; ++w) {
      threads.emplace_back([&worker_fn, w] { worker_fn(w); });
    }
    worker_fn(0);
    for (std::thread& t : threads) t.join();
  }
  return steals.load(std::memory_order_relaxed);
}

}  // namespace psi::match
