#ifndef SMARTPSI_MATCH_VF2_H_
#define SMARTPSI_MATCH_VF2_H_

#include "match/engine.h"

namespace psi::match {

/// VF2 (Cordella et al., TPAMI 2004) for labeled undirected subgraph
/// isomorphism. State-space search with the classic candidate-pair rule —
/// extend from the frontier (terminal sets) of the partial mapping — plus
/// the 1-look-ahead feasibility cuts:
///   * consistency: every mapped query neighbor of n maps to a data
///     neighbor of m with the same edge label,
///   * terminal count: |T(query) ∩ adj(n)| <= |T(data) ∩ adj(m)|,
///   * remainder count: the same for nodes not yet on either frontier.
class Vf2Engine : public MatchingEngine {
 public:
  explicit Vf2Engine(const graph::Graph& g) : graph_(g) {}

  std::string name() const override { return "VF2"; }

  Result Enumerate(const graph::QueryGraph& q, const Visitor& visitor,
                   const Options& options,
                   SearchStats* stats = nullptr) override;

 private:
  const graph::Graph& graph_;
};

}  // namespace psi::match

#endif  // SMARTPSI_MATCH_VF2_H_
