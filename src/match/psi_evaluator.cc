#include "match/psi_evaluator.h"

#include <algorithm>
#include <cassert>

namespace psi::match {

const char* PsiModeName(PsiMode mode) {
  switch (mode) {
    case PsiMode::kOptimistic:
      return "optimistic";
    case PsiMode::kSuperOptimistic:
      return "super-optimistic";
    case PsiMode::kPessimistic:
      return "pessimistic";
  }
  return "unknown";
}

PsiEvaluator::PsiEvaluator(const graph::Graph& g,
                           const signature::SignatureMatrix& graph_sigs)
    : graph_(g), graph_sigs_(graph_sigs) {
  assert(graph_sigs.num_rows() == g.num_nodes());
}

void PsiEvaluator::BindQuery(const graph::QueryGraph& q,
                             const signature::SignatureMatrix& query_sigs,
                             Plan plan) {
  assert(q.has_pivot());
  assert(query_sigs.num_rows() == q.num_nodes());
  assert(query_sigs.num_labels() == graph_sigs_.num_labels());
  assert(query_sigs.method() == graph_sigs_.method());
  assert(query_sigs.decay() == graph_sigs_.decay());
  assert(IsValidPlan(q, plan, q.pivot()));

  query_ = &q;
  query_sigs_ = &query_sigs;
  plan_ = std::move(plan);

  const size_t n = q.num_nodes();
  backward_.assign(n, {});
  std::vector<size_t> plan_position(n, 0);
  for (size_t i = 0; i < n; ++i) plan_position[plan_.order[i]] = i;
  for (size_t level = 1; level < n; ++level) {
    const graph::NodeId v = plan_.order[level];
    for (const auto& [nbr, edge_label] : q.neighbors(v)) {
      if (plan_position[nbr] < level) {
        backward_[level].push_back({nbr, edge_label});
      }
    }
  }

  mapping_.assign(n, graph::kInvalidNode);
  mapped_stack_.assign(n, graph::kInvalidNode);
  level_candidates_.resize(n);
}

bool PsiEvaluator::IsUsed(graph::NodeId data_node, size_t level) const {
  for (size_t i = 0; i < level; ++i) {
    if (mapped_stack_[i] == data_node) return true;
  }
  return false;
}

bool PsiEvaluator::ShouldAbort(const Options& options, Outcome* outcome) {
  if (--steps_until_check_ != 0) return false;
  steps_until_check_ = kCheckInterval;
  if (options.stop.StopRequested()) {
    *outcome = Outcome::kStopped;
    return true;
  }
  if (options.deadline.Expired()) {
    *outcome = Outcome::kTimeout;
    return true;
  }
  return false;
}

void PsiEvaluator::GenerateCandidates(size_t level, SearchStats* stats) {
  const graph::NodeId v = plan_.order[level];
  auto& out = level_candidates_[level];
  out.clear();

  const auto& anchors = backward_[level];
  assert(!anchors.empty() && "plans must be connected");

  // Anchor on the mapped neighbor whose image has the smallest degree:
  // its adjacency is the cheapest superset of the candidate set.
  size_t anchor_index = 0;
  size_t anchor_degree = SIZE_MAX;
  for (size_t i = 0; i < anchors.size(); ++i) {
    const size_t deg = graph_.degree(mapping_[anchors[i].query_node]);
    if (deg < anchor_degree) {
      anchor_degree = deg;
      anchor_index = i;
    }
  }
  const BackwardNeighbor anchor = anchors[anchor_index];
  const graph::NodeId anchor_image = mapping_[anchor.query_node];

  const graph::Label want_label = query_->label(v);
  const size_t want_degree = query_->degree(v);

  const auto nbrs = graph_.neighbors(anchor_image);
  const auto edge_labels = graph_.edge_labels(anchor_image);
  for (size_t i = 0; i < nbrs.size(); ++i) {
    const graph::NodeId c = nbrs[i];
    if (stats != nullptr) ++stats->candidates_examined;
    if (edge_labels[i] != anchor.edge_label) continue;
    if (graph_.label(c) != want_label) continue;
    if (graph_.degree(c) < want_degree) continue;
    if (IsUsed(c, level)) continue;
    // Verify edges to the remaining mapped query neighbors.
    bool consistent = true;
    for (size_t a = 0; a < anchors.size(); ++a) {
      if (a == anchor_index) continue;
      const auto edge_label =
          graph_.EdgeLabelBetween(mapping_[anchors[a].query_node], c);
      if (!edge_label.has_value() || *edge_label != anchors[a].edge_label) {
        consistent = false;
        break;
      }
    }
    if (consistent) out.push_back(c);
  }
}

Outcome PsiEvaluator::Search(size_t level, const Options& options,
                             SearchStats* stats) {
  if (stats != nullptr) ++stats->recursive_calls;
  Outcome abort_outcome;
  if (ShouldAbort(options, &abort_outcome)) return abort_outcome;

  // Line 1: full mapping -> a first embedding exists; PSI stops here.
  if (level == plan_.size()) return Outcome::kValid;

  const graph::NodeId v = plan_.order[level];
  GenerateCandidates(level, stats);
  auto& candidates = level_candidates_[level];

  // Line 4 (super optimistic): cap the candidate list *before* sorting so
  // the sorting overhead is bounded too.
  if (options.mode == PsiMode::kSuperOptimistic &&
      candidates.size() > options.super_optimistic_limit) {
    candidates.resize(options.super_optimistic_limit);
  }

  // Line 5 (optimist): visit high satisfiability scores first.
  if (options.mode == PsiMode::kOptimistic ||
      options.mode == PsiMode::kSuperOptimistic) {
    if (candidates.size() > 1) {
      score_buffer_.clear();
      const auto required = query_sigs_->row(v);
      for (const graph::NodeId c : candidates) {
        score_buffer_.emplace_back(
            static_cast<float>(
                signature::SatisfiabilityScore(graph_sigs_.row(c), required)),
            c);
      }
      std::stable_sort(score_buffer_.begin(), score_buffer_.end(),
                       [](const auto& a, const auto& b) {
                         return a.first > b.first;
                       });
      for (size_t i = 0; i < candidates.size(); ++i) {
        candidates[i] = score_buffer_[i].second;
      }
      if (stats != nullptr) ++stats->score_sorts;
    }
  }

  for (size_t idx = 0; idx < candidates.size(); ++idx) {
    const graph::NodeId c = candidates[idx];
    // Line 7 (pessimist): prune candidates whose neighborhood signature
    // cannot satisfy the query node's signature (Proposition 3.2).
    if (options.mode == PsiMode::kPessimistic) {
      if (stats != nullptr) ++stats->signature_checks;
      if (!signature::Satisfies(graph_sigs_.row(c), query_sigs_->row(v))) {
        if (stats != nullptr) ++stats->pruned_by_signature;
        continue;
      }
    }
    mapping_[v] = c;
    mapped_stack_[level] = c;
    const Outcome result = Search(level + 1, options, stats);
    mapping_[v] = graph::kInvalidNode;
    mapped_stack_[level] = graph::kInvalidNode;
    if (result != Outcome::kInvalid) return result;
    // Re-fill: deeper levels may have clobbered nothing (each level has its
    // own buffer), but `candidates` is a reference to this level's buffer,
    // which Search(level + 1) never touches — safe to continue iterating.
  }
  return Outcome::kInvalid;
}

Outcome PsiEvaluator::EvaluateNode(graph::NodeId candidate,
                                   const Options& options,
                                   SearchStats* stats) {
  assert(query_ != nullptr && "BindQuery first");
  const graph::NodeId pivot = query_->pivot();
  if (stats != nullptr) ++stats->candidates_examined;
  if (graph_.label(candidate) != query_->label(pivot)) {
    return Outcome::kInvalid;
  }
  if (graph_.degree(candidate) < query_->degree(pivot)) {
    return Outcome::kInvalid;
  }
  if (options.mode == PsiMode::kPessimistic) {
    if (stats != nullptr) ++stats->signature_checks;
    if (!signature::Satisfies(graph_sigs_.row(candidate),
                              query_sigs_->row(pivot))) {
      if (stats != nullptr) ++stats->pruned_by_signature;
      return Outcome::kInvalid;
    }
  }
  mapping_[pivot] = candidate;
  mapped_stack_[0] = candidate;
  const Outcome result = Search(1, options, stats);
  mapping_[pivot] = graph::kInvalidNode;
  mapped_stack_[0] = graph::kInvalidNode;
  return result;
}

Outcome PsiEvaluator::EvaluateNodeOptimisticStrategy(graph::NodeId candidate,
                                                     const Options& options,
                                                     SearchStats* stats) {
  Options super = options;
  super.mode = PsiMode::kSuperOptimistic;
  const Outcome quick = EvaluateNode(candidate, super, stats);
  // kInvalid from the truncated search is inconclusive; everything else
  // (valid / timeout / stopped) is final.
  if (quick != Outcome::kInvalid) return quick;
  Options full = options;
  full.mode = PsiMode::kOptimistic;
  return EvaluateNode(candidate, full, stats);
}

}  // namespace psi::match
