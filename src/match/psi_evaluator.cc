#include "match/psi_evaluator.h"

#include <algorithm>
#include <cassert>
#include <span>

#include "signature/kernels.h"
#include "util/random.h"

namespace psi::match {

const char* PsiModeName(PsiMode mode) {
  switch (mode) {
    case PsiMode::kOptimistic:
      return "optimistic";
    case PsiMode::kSuperOptimistic:
      return "super-optimistic";
    case PsiMode::kPessimistic:
      return "pessimistic";
  }
  return "unknown";
}

PsiEvaluator::PsiEvaluator(const graph::Graph& g,
                           const signature::SignatureMatrix& graph_sigs,
                           SearchScratch* scratch)
    : graph_(g),
      graph_sigs_(graph_sigs),
      scratch_(scratch != nullptr ? scratch : &owned_scratch_) {
  assert(graph_sigs.num_rows() == g.num_nodes());
}

void PsiEvaluator::BindQuery(const graph::QueryGraph& q,
                             const signature::SignatureMatrix& query_sigs,
                             const Plan& plan) {
  assert(q.has_pivot());
  assert(query_sigs.num_rows() == q.num_nodes());
  assert(query_sigs.num_labels() == graph_sigs_.num_labels());
  assert(query_sigs.method() == graph_sigs_.method());
  assert(query_sigs.decay() == graph_sigs_.decay());
  assert(IsValidPlan(q, plan, q.pivot()));

  SearchScratch& s = *scratch_;
  // Rebinding the same query/signatures/plan is a no-op: search always
  // unwinds its mappings, so the arena is already in the bound state. This
  // makes the per-candidate rebinds of the SmartPSI executor free whenever
  // consecutive candidates run the same predicted plan.
  if (query_ == &q && query_sigs_ == &query_sigs &&
      s.plan.order == plan.order) {
    return;
  }

  query_ = &q;
  query_sigs_ = &query_sigs;
  s.plan.order.assign(plan.order.begin(), plan.order.end());

  const size_t n = q.num_nodes();
  s.plan_position.resize(n);
  for (size_t i = 0; i < n; ++i) s.plan_position[s.plan.order[i]] = i;

  s.backward_flat.clear();
  s.backward_offsets.resize(n + 1);
  s.backward_offsets[0] = 0;
  for (size_t level = 0; level < n; ++level) {
    if (level > 0) {
      const graph::NodeId v = s.plan.order[level];
      for (const auto& [nbr, edge_label] : q.neighbors(v)) {
        if (s.plan_position[nbr] < level) {
          s.backward_flat.push_back({nbr, edge_label});
        }
      }
    }
    s.backward_offsets[level + 1] =
        static_cast<uint32_t>(s.backward_flat.size());
  }

  s.mapping.assign(n, graph::kInvalidNode);
  s.mapped_stack.assign(n, graph::kInvalidNode);
  s.level_candidates.resize(n);
  s.level_index.assign(n, 0);
  s.level_reqs.resize(n);
  for (size_t level = 0; level < n; ++level) {
    s.level_reqs[level].Assign(query_sigs.row(s.plan.order[level]));
  }

  // Nogood prefixes are positional in the plan order, so the scoping tag
  // covers both the query's structure and the exact matching order.
  uint64_t tag = q.Fingerprint();
  for (const graph::NodeId v : s.plan.order) {
    tag ^= (tag << 6) + (tag >> 2) + 0x9e3779b97f4a7c15ULL + v;
  }
  binding_tag_ = tag;
}

bool PsiEvaluator::IsUsed(graph::NodeId data_node, size_t level) const {
  const SearchScratch& s = *scratch_;
  for (size_t i = 0; i < level; ++i) {
    if (s.mapped_stack[i] == data_node) return true;
  }
  return false;
}

bool PsiEvaluator::ShouldAbort(const Options& options, Outcome* outcome) {
  if (--steps_until_check_ != 0) return false;
  steps_until_check_ = kCheckInterval;
  if (options.stop.StopRequested()) {
    *outcome = Outcome::kStopped;
    return true;
  }
  if (options.deadline.Expired()) {
    *outcome = Outcome::kTimeout;
    return true;
  }
  return false;
}

void PsiEvaluator::GenerateCandidates(size_t level, SearchStats* stats) {
  SearchScratch& s = *scratch_;
  const graph::NodeId v = s.plan.order[level];
  auto& out = s.level_candidates[level];
  out.clear();

  const BackwardNeighbor* anchors =
      s.backward_flat.data() + s.backward_offsets[level];
  const size_t num_anchors =
      s.backward_offsets[level + 1] - s.backward_offsets[level];
  assert(num_anchors > 0 && "plans must be connected");

  // Anchor on the mapped neighbor whose image has the smallest degree:
  // its adjacency is the cheapest superset of the candidate set.
  size_t anchor_index = 0;
  size_t anchor_degree = SIZE_MAX;
  for (size_t i = 0; i < num_anchors; ++i) {
    const size_t deg = graph_.degree(s.mapping[anchors[i].query_node]);
    if (deg < anchor_degree) {
      anchor_degree = deg;
      anchor_index = i;
    }
  }
  const BackwardNeighbor anchor = anchors[anchor_index];
  const graph::NodeId anchor_image = s.mapping[anchor.query_node];

  const graph::Label want_label = query_->label(v);
  const size_t want_degree = query_->degree(v);

  const auto nbrs = graph_.neighbors(anchor_image);
  const auto edge_labels = graph_.edge_labels(anchor_image);
  for (size_t i = 0; i < nbrs.size(); ++i) {
    const graph::NodeId c = nbrs[i];
    if (stats != nullptr) ++stats->candidates_examined;
    if (edge_labels[i] != anchor.edge_label) continue;
    if (graph_.label(c) != want_label) continue;
    if (graph_.degree(c) < want_degree) continue;
    if (IsUsed(c, level)) continue;
    // Verify edges to the remaining mapped query neighbors.
    bool consistent = true;
    for (size_t a = 0; a < num_anchors; ++a) {
      if (a == anchor_index) continue;
      const auto edge_label =
          graph_.EdgeLabelBetween(s.mapping[anchors[a].query_node], c);
      if (!edge_label.has_value() || *edge_label != anchors[a].edge_label) {
        consistent = false;
        break;
      }
    }
    if (consistent) out.push_back(c);
  }
}

Outcome PsiEvaluator::Search(size_t level, const Options& options,
                             SearchStats* stats) {
  if (stats != nullptr) ++stats->recursive_calls;
  Outcome abort_outcome;
  if (ShouldAbort(options, &abort_outcome)) return abort_outcome;

  SearchScratch& s = *scratch_;
  // Line 1: full mapping -> a first embedding exists; PSI stops here.
  if (level == s.plan.size()) return Outcome::kValid;

  // Luby budget (restart runs only): charge one node per call. Checked
  // after the full-mapping test so a completed embedding always reports
  // kValid even on the run's last node.
  if (budget_limited_) {
    if (budget_remaining_ == 0) return Outcome::kBudgetExhausted;
    if (--budget_remaining_ == 0) {
      RecordNogoods(stats);
      return Outcome::kBudgetExhausted;
    }
  }

  const graph::NodeId v = s.plan.order[level];
  GenerateCandidates(level, stats);
  auto& candidates = s.level_candidates[level];
  const signature::SparseRequirement& req = s.level_reqs[level];

  if (options.mode == PsiMode::kPessimistic) {
    // Line 7 (pessimist): prune candidates whose neighborhood signature
    // cannot satisfy the query node's signature (Proposition 3.2) — one
    // kernel sweep over the whole list instead of a check per candidate.
    if (stats != nullptr) stats->signature_checks += candidates.size();
    const size_t pruned =
        signature::FilterCandidates(graph_sigs_, req, candidates);
    if (stats != nullptr) stats->pruned_by_signature += pruned;
    // Restart runs past the first perturb the value ordering so a rerun
    // explores the heavy-tailed space in a different order (the point of
    // restarting). The pessimist's base order carries no heuristic, so
    // shuffling loses nothing.
    if (perturb_seed_ != 0 && candidates.size() > 1) {
      util::Rng rng(perturb_seed_ ^
                    (0x9e3779b97f4a7c15ULL * (static_cast<uint64_t>(level) + 1)));
      util::Shuffle(candidates, rng);
    }
  } else {
    // Line 4 (super optimistic): cap the candidate list *before* sorting
    // so the sorting overhead is bounded too; line 5 (optimist): visit
    // high satisfiability scores first.
    const bool capped = options.mode == PsiMode::kSuperOptimistic;
    const size_t limit = capped ? options.super_optimistic_limit : SIZE_MAX;
    const size_t effective = std::min(candidates.size(), limit);
    if (effective > 1) {
      signature::ScoreAndRank(graph_sigs_, req, candidates, s.rank,
                              capped ? limit : 0,
                              capped ? signature::RankMode::kCapFirst
                                     : signature::RankMode::kFull);
      if (stats != nullptr) ++stats->score_sorts;
    } else if (candidates.size() > effective) {
      candidates.resize(effective);
    }
  }

  const bool consult_nogoods = nogoods_ != nullptr && !nogoods_->empty() &&
                               level + 1 <= nogoods_->limits().max_prefix_length;
  for (size_t idx = 0; idx < candidates.size(); ++idx) {
    const graph::NodeId c = candidates[idx];
    s.level_index[level] = idx;
    if (consult_nogoods &&
        nogoods_->Contains({s.mapped_stack.data(), level}, c)) {
      // A previous run exhausted this assignment's subtree; skipping it is
      // as sound as having searched it again.
      if (stats != nullptr) ++stats->nogood_hits;
      continue;
    }
    s.mapping[v] = c;
    s.mapped_stack[level] = c;
    const Outcome result = Search(level + 1, options, stats);
    s.mapping[v] = graph::kInvalidNode;
    s.mapped_stack[level] = graph::kInvalidNode;
    if (result != Outcome::kInvalid) return result;
    // `candidates` references this level's buffer, which deeper levels
    // never touch — safe to continue iterating.
  }
  return Outcome::kInvalid;
}

Outcome PsiEvaluator::RunFromPivot(graph::NodeId candidate,
                                   const Options& options,
                                   SearchStats* stats) {
  SearchScratch& s = *scratch_;
  const graph::NodeId pivot = query_->pivot();
  s.mapping[pivot] = candidate;
  s.mapped_stack[0] = candidate;
  const Outcome result = Search(1, options, stats);
  s.mapping[pivot] = graph::kInvalidNode;
  s.mapped_stack[0] = graph::kInvalidNode;
  return result;
}

void PsiEvaluator::RecordNogoods(SearchStats* stats) {
  if (nogoods_ == nullptr) return;
  SearchScratch& s = *scratch_;
  const size_t n = s.plan.size();
  const size_t max_len = nogoods_->limits().max_prefix_length;
  // Walk the live search path. At each active level the candidates before
  // level_index[level] were either exhaustively refuted this run or pruned
  // by an earlier nogood — either way their subtrees are proven empty, so
  // (mapped_stack[0..level-1], sibling) is a sound nogood.
  for (size_t level = 1; level < n; ++level) {
    if (s.mapped_stack[level] == graph::kInvalidNode) break;
    if (level + 1 > max_len) break;  // deeper prefixes only get longer
    const std::span<const graph::NodeId> head(s.mapped_stack.data(), level);
    const auto& candidates = s.level_candidates[level];
    const size_t exhausted = std::min(s.level_index[level], candidates.size());
    for (size_t idx = 0; idx < exhausted; ++idx) {
      if (nogoods_->full()) return;
      if (nogoods_->Record(head, candidates[idx]) && stats != nullptr) {
        ++stats->nogoods_recorded;
      }
    }
  }
}

Outcome PsiEvaluator::EvaluateNode(graph::NodeId candidate,
                                   const Options& options,
                                   SearchStats* stats) {
  assert(query_ != nullptr && "BindQuery first");
  SearchScratch& s = *scratch_;
  const graph::NodeId pivot = query_->pivot();
  if (stats != nullptr) ++stats->candidates_examined;
  if (graph_.label(candidate) != query_->label(pivot)) {
    return Outcome::kInvalid;
  }
  if (graph_.degree(candidate) < query_->degree(pivot)) {
    return Outcome::kInvalid;
  }
  if (options.mode == PsiMode::kPessimistic && !options.pivot_prefiltered) {
    if (stats != nullptr) ++stats->signature_checks;
    if (!signature::internal::RowSatisfies(graph_sigs_.row(candidate),
                                           s.level_reqs[0])) {
      if (stats != nullptr) ++stats->pruned_by_signature;
      return Outcome::kInvalid;
    }
  }

  const bool restarting =
      options.restarts.enabled && options.mode == PsiMode::kPessimistic;
  if (!restarting) {
    budget_limited_ = false;
    perturb_seed_ = 0;
    nogoods_ = nullptr;
    return RunFromPivot(candidate, options, stats);
  }

  if (options.nogoods != nullptr) {
    options.nogoods->EnsureBinding(binding_tag_);
  }
  for (size_t run = 0;; ++run) {
    const uint64_t budget = options.restarts.BudgetForRun(run);
    budget_limited_ = budget != 0;
    budget_remaining_ = budget;
    // Perturbation diversifies *budgeted* probes only. The final unlimited
    // run reverts to the unperturbed baseline order, so its cost is the
    // non-restarting search minus whatever the nogoods prune — restarts
    // can never make the worst case more than the budgeted probes slower.
    perturb_seed_ = budget_limited_
                        ? PerturbationSeed(options.restarts, candidate, run)
                        : 0;
    nogoods_ = options.nogoods;
    const Outcome outcome = RunFromPivot(candidate, options, stats);
    budget_limited_ = false;
    perturb_seed_ = 0;
    nogoods_ = nullptr;
    // BudgetForRun(run >= max_restarts) is 0 = unlimited, so the loop
    // always terminates with a definite (or timeout/stop) outcome —
    // kBudgetExhausted never escapes.
    if (outcome != Outcome::kBudgetExhausted) return outcome;
    if (stats != nullptr) ++stats->restarts;
  }
}

Outcome PsiEvaluator::EvaluateNodeOptimisticStrategy(graph::NodeId candidate,
                                                     const Options& options,
                                                     SearchStats* stats) {
  Options super = options;
  super.mode = PsiMode::kSuperOptimistic;
  const Outcome quick = EvaluateNode(candidate, super, stats);
  // kInvalid from the truncated search is inconclusive; everything else
  // (valid / timeout / stopped) is final.
  if (quick != Outcome::kInvalid) return quick;
  Options full = options;
  full.mode = PsiMode::kOptimistic;
  return EvaluateNode(candidate, full, stats);
}

size_t PsiEvaluator::FilterPivotCandidates(
    std::vector<graph::NodeId>& candidates, SearchStats* stats) {
  assert(query_ != nullptr && "BindQuery first");
  if (stats != nullptr) stats->signature_checks += candidates.size();
  const size_t pruned = signature::FilterCandidates(
      graph_sigs_, scratch_->level_reqs[0], candidates);
  if (stats != nullptr) stats->pruned_by_signature += pruned;
  return pruned;
}

}  // namespace psi::match
