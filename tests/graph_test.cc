#include "graph/graph.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "graph/graph_builder.h"
#include "tests/test_fixtures.h"

namespace psi::graph {
namespace {

TEST(GraphBuilderTest, EmptyGraph) {
  GraphBuilder b;
  const Graph g = std::move(b).Build();
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.num_labels(), 0u);
}

TEST(GraphBuilderTest, NodesAndLabels) {
  GraphBuilder b;
  EXPECT_EQ(b.AddNode(5), 0u);
  EXPECT_EQ(b.AddNode(2), 1u);
  b.AddNodes(3);
  b.SetNodeLabel(4, 7);
  const Graph g = std::move(b).Build();
  EXPECT_EQ(g.num_nodes(), 5u);
  EXPECT_EQ(g.label(0), 5u);
  EXPECT_EQ(g.label(1), 2u);
  EXPECT_EQ(g.label(2), 0u);
  EXPECT_EQ(g.label(4), 7u);
  EXPECT_EQ(g.num_labels(), 8u);  // max label + 1
}

TEST(GraphBuilderTest, SelfLoopsDropped) {
  GraphBuilder b;
  b.AddNodes(2);
  EXPECT_FALSE(b.AddEdge(0, 0));
  EXPECT_TRUE(b.AddEdge(0, 1));
  const Graph g = std::move(b).Build();
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(GraphBuilderTest, DuplicateEdgesDeduplicatedFirstLabelWins) {
  GraphBuilder b;
  b.AddNodes(2);
  b.AddEdge(0, 1, 3);
  b.AddEdge(1, 0, 9);  // same undirected edge, different label
  const Graph g = std::move(b).Build();
  EXPECT_EQ(g.num_edges(), 1u);
  ASSERT_TRUE(g.EdgeLabelBetween(0, 1).has_value());
  EXPECT_EQ(*g.EdgeLabelBetween(0, 1), 3u);
  EXPECT_EQ(*g.EdgeLabelBetween(1, 0), 3u);
}

TEST(GraphTest, AdjacencySortedAndSymmetric) {
  const Graph g = testing::MakeFigure1Graph();
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const auto nbrs = g.neighbors(u);
    EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
    for (const NodeId v : nbrs) {
      EXPECT_TRUE(g.HasEdge(v, u)) << u << "-" << v;
    }
  }
}

TEST(GraphTest, Figure1Shape) {
  const Graph g = testing::MakeFigure1Graph();
  EXPECT_EQ(g.num_nodes(), 6u);
  EXPECT_EQ(g.num_edges(), 10u);
  EXPECT_EQ(g.num_labels(), 3u);
  EXPECT_EQ(g.degree(0), 4u);  // u1
  EXPECT_EQ(g.degree(5), 2u);  // u6
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_FALSE(g.HasEdge(0, 5));  // u1-u6 not adjacent
}

TEST(GraphTest, EdgeLabelBetweenMissingEdge) {
  const Graph g = testing::MakeFigure1Graph();
  EXPECT_FALSE(g.EdgeLabelBetween(0, 5).has_value());
}

TEST(GraphTest, LabelIndex) {
  const Graph g = testing::MakeFigure1Graph();
  const auto as = g.nodes_with_label(testing::kA);
  ASSERT_EQ(as.size(), 2u);
  EXPECT_EQ(as[0], 0u);
  EXPECT_EQ(as[1], 5u);
  EXPECT_EQ(g.label_frequency(testing::kB), 2u);
  EXPECT_EQ(g.label_frequency(testing::kC), 2u);
  EXPECT_TRUE(std::is_sorted(as.begin(), as.end()));
}

TEST(GraphTest, DegreeAggregates) {
  const Graph g = testing::MakeFigure1Graph();
  EXPECT_DOUBLE_EQ(g.average_degree(), 2.0 * 10.0 / 6.0);
  EXPECT_EQ(g.max_degree(), 4u);
}

TEST(GraphTest, EdgeLabelsAlignedWithNeighbors) {
  GraphBuilder b;
  b.AddNodes(4);
  b.AddEdge(0, 3, 7);
  b.AddEdge(0, 1, 5);
  b.AddEdge(0, 2, 6);
  const Graph g = std::move(b).Build();
  const auto nbrs = g.neighbors(0);
  const auto labels = g.edge_labels(0);
  ASSERT_EQ(nbrs.size(), 3u);
  for (size_t i = 0; i < nbrs.size(); ++i) {
    EXPECT_EQ(labels[i], nbrs[i] + 4u);  // label = neighbor + 4 by setup
  }
}

TEST(GraphTest, MoveSemantics) {
  Graph g = testing::MakeFigure1Graph();
  const Graph moved = std::move(g);
  EXPECT_EQ(moved.num_nodes(), 6u);
  EXPECT_EQ(moved.num_edges(), 10u);
}

// Regression: num_labels() on a default-constructed graph used to compute
// label_offsets_.size() - 1 on an empty vector, wrapping to SIZE_MAX —
// which made `label < g.num_labels()` feasibility checks pass for any
// label and index past the empty label index.
TEST(GraphTest, DefaultConstructedGraphHasNoLabels) {
  const Graph g;
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.num_labels(), 0u);
  EXPECT_TRUE(g.nodes_with_label(0).empty());
  EXPECT_EQ(g.label_frequency(0), 0u);
  EXPECT_EQ(g.average_degree(), 0.0);
}

TEST(GraphTest, LabelAccessorsBoundOutOfAlphabetQueries) {
  const Graph g = testing::MakeFigure1Graph();
  ASSERT_EQ(g.num_labels(), 3u);
  EXPECT_TRUE(g.nodes_with_label(3).empty());
  EXPECT_TRUE(g.nodes_with_label(12345).empty());
  EXPECT_EQ(g.label_frequency(3), 0u);
  EXPECT_EQ(g.label_frequency(12345), 0u);
  // In-alphabet queries still index normally.
  EXPECT_EQ(g.label_frequency(testing::kC), 2u);
  EXPECT_EQ(g.nodes_with_label(testing::kA).size(), 2u);
}

TEST(GraphTest, CloneIsDeepAndIndependent) {
  Graph g = testing::MakeFigure1Graph();
  const Graph copy = g.Clone();
  const Graph moved = std::move(g);  // invalidates g, must not touch copy
  EXPECT_EQ(copy.num_nodes(), 6u);
  EXPECT_EQ(copy.num_edges(), 10u);
  EXPECT_EQ(copy.num_labels(), 3u);
  EXPECT_EQ(copy.label_frequency(testing::kB), 2u);
  EXPECT_TRUE(copy.HasEdge(0, 1));
  EXPECT_EQ(copy.neighbors(0).size(), moved.neighbors(0).size());
}

}  // namespace
}  // namespace psi::graph
