#include "fsm/support.h"

#include <gtest/gtest.h>

#include "signature/builders.h"
#include "tests/test_fixtures.h"

namespace psi::fsm {
namespace {

class SupportTest : public ::testing::Test {
 protected:
  SupportTest()
      : g_(psi::testing::MakeFigure1Graph()),
        sigs_(signature::BuildMatrixSignatures(g_, 2, g_.num_labels())) {}

  SupportResult Eval(const graph::QueryGraph& pattern, uint64_t min_support,
                     SupportMethod method) {
    return EvaluateSupport(g_, &sigs_, pattern, min_support, method,
                           util::Deadline());
  }

  graph::Graph g_;
  signature::SignatureMatrix sigs_;
};

graph::QueryGraph EdgePattern(graph::Label a, graph::Label b) {
  graph::QueryGraph p;
  p.AddNode(a);
  p.AddNode(b);
  p.AddEdge(0, 1);
  return p;
}

TEST_F(SupportTest, SingleEdgeAbMni) {
  // A-B edges in Figure 1: u1-u2, u1-u5, u6-u5. Distinct A endpoints
  // {u1, u6}, distinct B endpoints {u2, u5} -> MNI = 2.
  const graph::QueryGraph p = EdgePattern(psi::testing::kA, psi::testing::kB);
  for (const SupportMethod method :
       {SupportMethod::kEnumeration, SupportMethod::kPsi}) {
    const SupportResult r = Eval(p, 2, method);
    EXPECT_TRUE(r.frequent) << SupportMethodName(method);
    EXPECT_GE(r.support, 2u);
    EXPECT_TRUE(r.complete);
  }
}

TEST_F(SupportTest, ThresholdAboveMniIsInfrequent) {
  const graph::QueryGraph p = EdgePattern(psi::testing::kA, psi::testing::kB);
  for (const SupportMethod method :
       {SupportMethod::kEnumeration, SupportMethod::kPsi}) {
    const SupportResult r = Eval(p, 3, method);
    EXPECT_FALSE(r.frequent) << SupportMethodName(method);
    EXPECT_EQ(r.support, 2u);
  }
}

TEST_F(SupportTest, MissingEdgeTypeHasZeroSupport) {
  // No A-A edge exists in Figure 1.
  const graph::QueryGraph p = EdgePattern(psi::testing::kA, psi::testing::kA);
  for (const SupportMethod method :
       {SupportMethod::kEnumeration, SupportMethod::kPsi}) {
    const SupportResult r = Eval(p, 1, method);
    EXPECT_FALSE(r.frequent);
    EXPECT_EQ(r.support, 0u);
  }
}

TEST_F(SupportTest, TrianglePatternSupport) {
  // The Figure 1 A-B-C triangle: A images {u1,u6}, B images {u2,u5},
  // C images {u3,u4} -> MNI = 2.
  const graph::QueryGraph p = psi::testing::MakeFigure1Query();
  for (const SupportMethod method :
       {SupportMethod::kEnumeration, SupportMethod::kPsi}) {
    const SupportResult r = Eval(p, 2, method);
    EXPECT_TRUE(r.frequent) << SupportMethodName(method);
    EXPECT_GE(r.support, 2u);
  }
}

TEST_F(SupportTest, MethodsAgreeOnRandomPatterns) {
  const graph::Graph big = psi::testing::MakeRandomGraph(300, 900, 3, 17);
  const auto sigs =
      signature::BuildMatrixSignatures(big, 2, big.num_labels());
  util::Rng rng(18);
  // Random 2- and 3-node patterns over the label alphabet.
  for (int trial = 0; trial < 20; ++trial) {
    graph::QueryGraph p;
    const size_t n = 2 + rng.NextBounded(2);
    for (size_t i = 0; i < n; ++i) {
      p.AddNode(static_cast<graph::Label>(rng.NextBounded(3)));
    }
    p.AddEdge(0, 1);
    if (n == 3) p.AddEdge(1, 2);
    for (const uint64_t threshold : {1u, 5u, 25u}) {
      const SupportResult enumeration =
          EvaluateSupport(big, &sigs, p, threshold,
                          SupportMethod::kEnumeration, util::Deadline());
      const SupportResult psi = EvaluateSupport(
          big, &sigs, p, threshold, SupportMethod::kPsi, util::Deadline());
      EXPECT_EQ(enumeration.frequent, psi.frequent)
          << p.ToString() << " threshold " << threshold;
    }
  }
}

TEST_F(SupportTest, ZeroThresholdAlwaysFrequent) {
  const graph::QueryGraph p = EdgePattern(psi::testing::kA, psi::testing::kA);
  EXPECT_TRUE(Eval(p, 0, SupportMethod::kEnumeration).frequent);
  EXPECT_TRUE(Eval(p, 0, SupportMethod::kPsi).frequent);
}

}  // namespace
}  // namespace psi::fsm
