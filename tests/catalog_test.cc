// Tests for the versioned graph-snapshot catalog (DESIGN.md §12): publish,
// hot swap, retire, pin-gauge accounting, memory release after the last
// pin drops, the catalog.publish fault site, and snapshot cache salting.

#include "service/catalog.h"

#include <future>
#include <memory>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "signature/builders.h"
#include "tests/test_fixtures.h"
#include "util/fault_injection.h"

namespace psi::service {
namespace {

SnapshotBuildOptions FastBuild() {
  SnapshotBuildOptions options;
  options.signature_depth = 1;
  return options;
}

class GraphCatalogTest : public ::testing::Test {
 protected:
  void SetUp() override { util::FaultInjector::Global().DisarmAll(); }
  void TearDown() override { util::FaultInjector::Global().DisarmAll(); }
};

TEST_F(GraphCatalogTest, PublishThenResolve) {
  GraphCatalog catalog;
  const auto published = catalog.BuildAndPublish(
      "fig1", testing::MakeFigure1Graph(), FastBuild());
  ASSERT_TRUE(published.ok()) << published.status().ToString();
  EXPECT_EQ(published.value()->name(), "fig1");
  EXPECT_EQ(published.value()->version(), 1u);
  EXPECT_EQ(published.value()->graph().num_nodes(), 6u);
  EXPECT_EQ(published.value()->signatures().num_rows(), 6u);
  EXPECT_GE(published.value()->timings().signature_build_seconds, 0.0);

  EXPECT_TRUE(catalog.Contains("fig1"));
  EXPECT_FALSE(catalog.Contains("other"));
  EXPECT_EQ(catalog.Resolve("fig1"), published.value());
  EXPECT_EQ(catalog.Resolve("other"), nullptr);
  EXPECT_EQ(catalog.size(), 1u);
  EXPECT_EQ(catalog.counters().published, 1u);
  EXPECT_EQ(catalog.counters().swaps, 0u);
}

TEST_F(GraphCatalogTest, EmptyNameIsRejected) {
  GraphCatalog catalog;
  const auto published =
      catalog.BuildAndPublish("", testing::MakeFigure1Graph(), FastBuild());
  EXPECT_FALSE(published.ok());
  EXPECT_EQ(catalog.size(), 0u);
}

TEST_F(GraphCatalogTest, PrebuiltSignaturesMustMatchTheGraph) {
  GraphCatalog catalog;
  const graph::Graph g = testing::MakeFigure1Graph();
  signature::SignatureMatrix wrong = signature::BuildSignatures(
      testing::MakeRandomGraph(10, 20, 3, /*seed=*/1),
      signature::Method::kMatrix, 1, 3, nullptr);
  EXPECT_FALSE(
      catalog.PublishPrebuilt("fig1", g.Clone(), std::move(wrong)).ok());
  EXPECT_EQ(catalog.size(), 0u);
}

TEST_F(GraphCatalogTest, VersionsAreCatalogGlobalAndMonotonic) {
  GraphCatalog catalog;
  const auto a = catalog.BuildAndPublish("a", testing::MakeFigure1Graph(),
                                         FastBuild());
  const auto b = catalog.BuildAndPublish("b", testing::MakeFigure1Graph(),
                                         FastBuild());
  const auto a2 = catalog.BuildAndPublish("a", testing::MakeFigure1Graph(),
                                          FastBuild());
  ASSERT_TRUE(a.ok() && b.ok() && a2.ok());
  EXPECT_EQ(a.value()->version(), 1u);
  EXPECT_EQ(b.value()->version(), 2u);
  EXPECT_EQ(a2.value()->version(), 3u);
  // Republish under an existing name is a swap, and the cache salts of the
  // two generations must differ (the cross-snapshot isolation mechanism).
  EXPECT_EQ(catalog.counters().published, 3u);
  EXPECT_EQ(catalog.counters().swaps, 1u);
  EXPECT_NE(a.value()->cache_salt(), a2.value()->cache_salt());
  EXPECT_EQ(catalog.Resolve("a"), a2.value());
}

TEST_F(GraphCatalogTest, SwapKeepsOldGenerationAliveWhilePinned) {
  GraphCatalog catalog;
  ASSERT_TRUE(catalog
                  .BuildAndPublish("g", testing::MakeFigure1Graph(),
                                   FastBuild())
                  .ok());
  std::weak_ptr<const GraphSnapshot> old_generation;
  {
    SnapshotPin pin = catalog.Pin("g");
    ASSERT_TRUE(static_cast<bool>(pin));
    old_generation = catalog.Resolve("g");
    EXPECT_EQ(pin->pins(), 1u);

    // Hot swap while the pin is held: the old generation must survive…
    ASSERT_TRUE(catalog
                    .BuildAndPublish("g", testing::MakeFigure1Graph(),
                                     FastBuild())
                    .ok());
    EXPECT_FALSE(old_generation.expired());
    EXPECT_EQ(pin->version(), 1u);
    // …while new resolutions already see the replacement.
    EXPECT_EQ(catalog.Resolve("g")->version(), 2u);
  }
  // …and be released the moment the last pin drops.
  EXPECT_TRUE(old_generation.expired());
  EXPECT_EQ(catalog.Resolve("g")->pins(), 0u);
}

TEST_F(GraphCatalogTest, RetireReleasesWhenUnpinned) {
  GraphCatalog catalog;
  ASSERT_TRUE(catalog
                  .BuildAndPublish("g", testing::MakeFigure1Graph(),
                                   FastBuild())
                  .ok());
  std::weak_ptr<const GraphSnapshot> snapshot = catalog.Resolve("g");
  EXPECT_TRUE(catalog.Retire("g"));
  EXPECT_FALSE(catalog.Contains("g"));
  EXPECT_FALSE(static_cast<bool>(catalog.Pin("g")));
  EXPECT_TRUE(snapshot.expired());
  EXPECT_EQ(catalog.counters().retired, 1u);
  EXPECT_FALSE(catalog.Retire("g")) << "retire of an unknown name";
}

TEST_F(GraphCatalogTest, MovedPinTransfersTheGaugeExactlyOnce) {
  GraphCatalog catalog;
  ASSERT_TRUE(catalog
                  .BuildAndPublish("g", testing::MakeFigure1Graph(),
                                   FastBuild())
                  .ok());
  const auto snapshot = catalog.Resolve("g");
  {
    SnapshotPin a = catalog.Pin("g");
    EXPECT_EQ(snapshot->pins(), 1u);
    SnapshotPin b = std::move(a);
    EXPECT_EQ(snapshot->pins(), 1u) << "move must not double-count";
    SnapshotPin c;
    c = std::move(b);
    EXPECT_EQ(snapshot->pins(), 1u);
  }
  EXPECT_EQ(snapshot->pins(), 0u);
}

TEST_F(GraphCatalogTest, ListShowsCurrentAndStillPinnedRetired) {
  GraphCatalog catalog;
  ASSERT_TRUE(catalog
                  .BuildAndPublish("a", testing::MakeFigure1Graph(),
                                   FastBuild())
                  .ok());
  auto old_generation = catalog.Resolve("a");  // keeps v1 alive post-swap
  ASSERT_TRUE(catalog
                  .BuildAndPublish("a", testing::MakeFigure1Graph(),
                                   FastBuild())
                  .ok());
  ASSERT_TRUE(catalog
                  .BuildAndPublish("b", testing::MakeFigure1Graph(),
                                   FastBuild())
                  .ok());

  std::vector<CatalogEntry> entries = catalog.List();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].name, "a");
  EXPECT_EQ(entries[0].version, 1u);
  EXPECT_FALSE(entries[0].current);
  EXPECT_EQ(entries[1].name, "a");
  EXPECT_EQ(entries[1].version, 2u);
  EXPECT_TRUE(entries[1].current);
  EXPECT_EQ(entries[2].name, "b");
  EXPECT_TRUE(entries[2].current);
  EXPECT_EQ(entries[0].num_nodes, 6u);

  // Once the last reference to the old generation drops, List prunes it.
  old_generation.reset();
  entries = catalog.List();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_TRUE(entries[0].current && entries[1].current);
}

TEST_F(GraphCatalogTest, AsyncBuildPublishesWithoutBlockingTheCaller) {
  GraphCatalog catalog;
  auto future = catalog.BuildAndPublishAsync(
      "g", testing::MakeRandomGraph(200, 600, 4, /*seed=*/7), FastBuild());
  const auto published = future.get();
  ASSERT_TRUE(published.ok()) << published.status().ToString();
  EXPECT_EQ(catalog.Resolve("g"), published.value());
}

#if PSI_FAULT_INJECTION_ENABLED
TEST_F(GraphCatalogTest, InjectedPublishFailureLeavesOldSnapshotServing) {
  GraphCatalog catalog;
  ASSERT_TRUE(catalog
                  .BuildAndPublish("g", testing::MakeFigure1Graph(),
                                   FastBuild())
                  .ok());
  const auto before = catalog.Resolve("g");
  {
    util::ScopedFaultSpec chaos("catalog.publish=always");
    const auto failed = catalog.BuildAndPublish(
        "g", testing::MakeFigure1Graph(), FastBuild());
    EXPECT_FALSE(failed.ok());
  }
  // The failed publish must not have touched the published state, burned a
  // version, or removed the serving snapshot.
  EXPECT_EQ(catalog.Resolve("g"), before);
  EXPECT_EQ(catalog.counters().publish_failures, 1u);
  EXPECT_EQ(catalog.counters().published, 1u);
  const auto after = catalog.BuildAndPublish(
      "g", testing::MakeFigure1Graph(), FastBuild());
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value()->version(), 2u) << "failed publish burned a version";
}
#endif  // PSI_FAULT_INJECTION_ENABLED

}  // namespace
}  // namespace psi::service
