#include "util/table_printer.h"

#include <sstream>

#include <gtest/gtest.h>

namespace psi::util {
namespace {

TEST(TablePrinterTest, RendersHeaderAndRows) {
  TablePrinter t({"Query size", "SmartPSI"});
  t.AddRow({"4", "27 sec"});
  t.AddRow({"7", "4.3 min"});
  const std::string rendered = t.ToString();
  EXPECT_NE(rendered.find("Query size"), std::string::npos);
  EXPECT_NE(rendered.find("27 sec"), std::string::npos);
  EXPECT_NE(rendered.find("4.3 min"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TablePrinterTest, PadsColumnsToWidestCell) {
  TablePrinter t({"a", "b"});
  t.AddRow({"longvalue", "x"});
  std::ostringstream oss;
  t.Print(oss);
  const std::string rendered = oss.str();
  // All lines have equal length (fixed-width table).
  std::istringstream lines(rendered);
  std::string line;
  size_t width = 0;
  while (std::getline(lines, line)) {
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width);
  }
}

TEST(TablePrinterTest, ShortRowsArePadded) {
  TablePrinter t({"a", "b", "c"});
  t.AddRow({"1"});
  const std::string rendered = t.ToString();
  // 3 columns -> 4 pipes per row, 3 rows (header, separator, one row).
  size_t pipes = 0;
  for (const char c : rendered) pipes += c == '|' ? 1 : 0;
  EXPECT_EQ(pipes, 12u);
}

TEST(TablePrinterTest, EmptyTableRendersHeaderOnly) {
  TablePrinter t({"only"});
  const std::string rendered = t.ToString();
  EXPECT_NE(rendered.find("only"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 0u);
}

}  // namespace
}  // namespace psi::util
