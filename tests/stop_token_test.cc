#include "util/stop_token.h"

#include <cmath>
#include <thread>

#include <gtest/gtest.h>

#include "util/timer.h"

namespace psi::util {
namespace {

TEST(StopTokenTest, DefaultTokenNeverStops) {
  StopToken token;
  EXPECT_FALSE(token.StopRequested());
}

TEST(StopTokenTest, ObservesSource) {
  StopSource source;
  StopToken token(&source);
  EXPECT_FALSE(token.StopRequested());
  source.RequestStop();
  EXPECT_TRUE(token.StopRequested());
}

TEST(StopTokenTest, ResetRearms) {
  StopSource source;
  source.RequestStop();
  EXPECT_TRUE(source.StopRequested());
  source.Reset();
  EXPECT_FALSE(source.StopRequested());
}

TEST(StopTokenTest, VisibleAcrossThreads) {
  StopSource source;
  StopToken token(&source);
  std::thread requester([&source] { source.RequestStop(); });
  requester.join();
  EXPECT_TRUE(token.StopRequested());
}

TEST(DeadlineTest, DefaultIsInfinite) {
  Deadline d;
  EXPECT_TRUE(d.IsInfinite());
  EXPECT_FALSE(d.Expired());
  EXPECT_TRUE(std::isinf(d.RemainingSeconds()));
}

TEST(DeadlineTest, ExpiresAfterDuration) {
  const Deadline d = Deadline::After(0.02);
  EXPECT_FALSE(d.IsInfinite());
  EXPECT_FALSE(d.Expired());
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  EXPECT_TRUE(d.Expired());
  EXPECT_LE(d.RemainingSeconds(), 0.0);
}

// The documented memory-ordering contract (stop_token.h): RequestStop() is
// a release store, StopRequested() an acquire load, so plain data written
// before the request is safely readable after observing the stop. TSan
// verifies the absence of a race when the CI job runs this under
// -fsanitize=thread; the assertion checks the visibility direction.
TEST(StopTokenTest, RequestStopPublishesPriorWrites) {
  for (int round = 0; round < 100; ++round) {
    StopSource source;
    int reason = 0;  // non-atomic on purpose: ordered by the flag alone
    std::thread initiator([&] {
      reason = round + 1;
      source.RequestStop();
    });
    const StopToken token(&source);
    while (!token.StopRequested()) std::this_thread::yield();
    EXPECT_EQ(reason, round + 1);
    initiator.join();
  }
}

TEST(DeadlineTest, NonPositiveExpiresImmediately) {
  EXPECT_TRUE(Deadline::After(0.0).Expired());
  EXPECT_TRUE(Deadline::After(-1.0).Expired());
}

TEST(WallTimerTest, MeasuresElapsed) {
  WallTimer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double s = t.Seconds();
  EXPECT_GE(s, 0.015);
  EXPECT_LT(s, 2.0);
  EXPECT_NEAR(t.Millis(), t.Seconds() * 1e3, 5.0);
}

TEST(WallTimerTest, RestartResets) {
  WallTimer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  t.Restart();
  EXPECT_LT(t.Seconds(), 0.015);
}

}  // namespace
}  // namespace psi::util
