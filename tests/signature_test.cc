#include "signature/builders.h"

#include <gtest/gtest.h>

#include "signature/signature_matrix.h"
#include "tests/test_fixtures.h"

namespace psi::signature {
namespace {

using psi::testing::kA;
using psi::testing::kB;
using psi::testing::kC;
using psi::testing::kD;

// ---------------------------------------------------------------------------
// Paper worked example 1 (§3.1): exploration signature of u1 in Figure 1(b)
// with depth 2 is {(A, 1.25), (B, 1), (C, 1)}.
// ---------------------------------------------------------------------------
TEST(ExplorationSignatureTest, PaperFigure1Example) {
  const graph::Graph g = psi::testing::MakeFigure1Graph();
  const SignatureMatrix ns = BuildExplorationSignatures(g, 2, g.num_labels());
  const auto u1 = ns.row(0);
  EXPECT_FLOAT_EQ(u1[kA], 1.25f);
  EXPECT_FLOAT_EQ(u1[kB], 1.0f);
  EXPECT_FLOAT_EQ(u1[kC], 1.0f);
}

TEST(ExplorationSignatureTest, QueryPivotSignature) {
  // NS_v1 of the Figure 1(a) triangle query = {(A, 1), (B, 0.5), (C, 0.5)}.
  const graph::QueryGraph q = psi::testing::MakeFigure1Query();
  const SignatureMatrix ns = BuildExplorationSignatures(q, 2, 3);
  const auto v1 = ns.row(0);
  EXPECT_FLOAT_EQ(v1[kA], 1.0f);
  EXPECT_FLOAT_EQ(v1[kB], 0.5f);
  EXPECT_FLOAT_EQ(v1[kC], 0.5f);
}

TEST(ExplorationSignatureTest, DepthZeroIsOneHot) {
  const graph::Graph g = psi::testing::MakeFigure1Graph();
  const SignatureMatrix ns = BuildExplorationSignatures(g, 0, g.num_labels());
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    for (size_t l = 0; l < ns.num_labels(); ++l) {
      EXPECT_FLOAT_EQ(ns.at(u, l), l == g.label(u) ? 1.0f : 0.0f);
    }
  }
}

// ---------------------------------------------------------------------------
// Paper worked example 2 (§3.1): matrix signatures NS^1 and NS^2 of the
// Figure 2(a) query. The paper prints both matrices; all rows of NS^1 and
// rows v0, v1, v2, v4 of NS^2 are asserted to the paper's exact rationals.
// (The paper's printed NS^2 row for v3 is inconsistent with its own
// recurrence — recomputing ½·(NS^1(v1)+NS^1(v2)+NS^1(v4)) + NS^1(v3) gives
// (1/4, 5/2, 7/4, 1); we assert the recomputed value.)
// ---------------------------------------------------------------------------
TEST(MatrixSignatureTest, PaperFigure2Ns1) {
  const graph::QueryGraph q = psi::testing::MakeFigure2Query();
  const SignatureMatrix ns1 = BuildMatrixSignatures(q, 1, 4);
  const float expected[5][4] = {
      {1.0f, 0.5f, 0.0f, 0.0f},   // v0
      {0.5f, 1.5f, 0.5f, 0.0f},   // v1
      {0.0f, 1.5f, 0.5f, 0.0f},   // v2
      {0.0f, 1.0f, 1.0f, 0.5f},   // v3
      {0.0f, 0.0f, 0.5f, 1.0f},   // v4
  };
  for (size_t v = 0; v < 5; ++v) {
    for (size_t l = 0; l < 4; ++l) {
      EXPECT_FLOAT_EQ(ns1.at(v, l), expected[v][l]) << "v" << v << " l" << l;
    }
  }
}

TEST(MatrixSignatureTest, PaperFigure2Ns2) {
  const graph::QueryGraph q = psi::testing::MakeFigure2Query();
  const SignatureMatrix ns2 = BuildMatrixSignatures(q, 2, 4);
  const float expected[5][4] = {
      {1.25f, 1.25f, 0.25f, 0.0f},  // v0 (paper: 5/4, 5/4, 1/4, 0)
      {1.0f, 3.0f, 1.25f, 0.25f},   // v1 (paper: 1, 3, 5/4, 1/4)
      {0.25f, 2.75f, 1.25f, 0.25f}, // v2 (paper: 1/4, 11/4, 5/4, 1/4)
      {0.25f, 2.5f, 1.75f, 1.0f},   // v3 (recomputed; see comment above)
      {0.0f, 0.5f, 1.0f, 1.25f},    // v4 (paper: 0, 1/2, 1, 5/4)
  };
  for (size_t v = 0; v < 5; ++v) {
    for (size_t l = 0; l < 4; ++l) {
      EXPECT_FLOAT_EQ(ns2.at(v, l), expected[v][l]) << "v" << v << " l" << l;
    }
  }
}

TEST(MatrixSignatureTest, GraphAndQueryBuildersAgree) {
  // Build the Figure 2 query as a data graph too; both matrix builders must
  // produce identical signatures.
  graph::GraphBuilder b;
  b.AddNode(kA);
  b.AddNode(kB);
  b.AddNode(kB);
  b.AddNode(kC);
  b.AddNode(kD);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(1, 3);
  b.AddEdge(2, 3);
  b.AddEdge(3, 4);
  const graph::Graph g = std::move(b).Build();
  const graph::QueryGraph q = psi::testing::MakeFigure2Query();

  const SignatureMatrix from_graph = BuildMatrixSignatures(g, 2, 4);
  const SignatureMatrix from_query = BuildMatrixSignatures(q, 2, 4);
  for (size_t v = 0; v < 5; ++v) {
    for (size_t l = 0; l < 4; ++l) {
      EXPECT_FLOAT_EQ(from_graph.at(v, l), from_query.at(v, l));
    }
  }
}

TEST(ExplorationSignatureTest, GraphAndQueryBuildersAgree) {
  graph::GraphBuilder b;
  b.AddNode(kA);
  b.AddNode(kB);
  b.AddNode(kB);
  b.AddNode(kC);
  b.AddNode(kD);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(1, 3);
  b.AddEdge(2, 3);
  b.AddEdge(3, 4);
  const graph::Graph g = std::move(b).Build();
  const graph::QueryGraph q = psi::testing::MakeFigure2Query();

  const SignatureMatrix from_graph = BuildExplorationSignatures(g, 2, 4);
  const SignatureMatrix from_query = BuildExplorationSignatures(q, 2, 4);
  for (size_t v = 0; v < 5; ++v) {
    for (size_t l = 0; l < 4; ++l) {
      EXPECT_FLOAT_EQ(from_graph.at(v, l), from_query.at(v, l));
    }
  }
}

// ---------------------------------------------------------------------------
// Satisfaction and satisfiability score (§3.2 / §3.3).
// ---------------------------------------------------------------------------
TEST(SatisfiesTest, PaperU1SatisfiesV1) {
  const graph::Graph g = psi::testing::MakeFigure1Graph();
  const graph::QueryGraph q = psi::testing::MakeFigure1Query();
  const SignatureMatrix gs = BuildExplorationSignatures(g, 2, g.num_labels());
  const SignatureMatrix qs = BuildExplorationSignatures(q, 2, g.num_labels());
  EXPECT_TRUE(Satisfies(gs.row(0), qs.row(0)));  // u1 vs v1
}

TEST(SatisfiesTest, LowerWeightFails) {
  std::vector<float> candidate{1.0f, 0.4f};
  std::vector<float> required{1.0f, 0.5f};
  EXPECT_FALSE(Satisfies(candidate, required));
}

TEST(SatisfiesTest, ZeroRequiredIgnored) {
  std::vector<float> candidate{0.0f, 2.0f};
  std::vector<float> required{0.0f, 1.0f};
  EXPECT_TRUE(Satisfies(candidate, required));
}

TEST(SatisfiesTest, EqualWeightsSatisfyDespiteRounding) {
  // A node must always satisfy its own signature.
  const graph::Graph g = psi::testing::MakeFigure1Graph();
  const SignatureMatrix gs = BuildMatrixSignatures(g, 3, g.num_labels());
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_TRUE(Satisfies(gs.row(u), gs.row(u)));
  }
}

TEST(SatisfiabilityScoreTest, PaperExampleIs175) {
  // SS(u1, v1) = ((1.25/1) + (1/0.5) + (1/0.5)) / 3 = 1.75.
  const graph::Graph g = psi::testing::MakeFigure1Graph();
  const graph::QueryGraph q = psi::testing::MakeFigure1Query();
  const SignatureMatrix gs = BuildExplorationSignatures(g, 2, g.num_labels());
  const SignatureMatrix qs = BuildExplorationSignatures(q, 2, g.num_labels());
  EXPECT_NEAR(SatisfiabilityScore(gs.row(0), qs.row(0)), 1.75, 1e-6);
}

TEST(SatisfiabilityScoreTest, ZeroRequiredRowScoresZero) {
  std::vector<float> candidate{1.0f, 1.0f};
  std::vector<float> required{0.0f, 0.0f};
  EXPECT_EQ(SatisfiabilityScore(candidate, required), 0.0);
}

// ---------------------------------------------------------------------------
// Hashing for the prediction cache.
// ---------------------------------------------------------------------------
TEST(HashSignatureTest, EqualRowsEqualHashes) {
  std::vector<float> a{1.25f, 1.0f, 0.5f};
  std::vector<float> b{1.25f, 1.0f, 0.5f};
  EXPECT_EQ(HashSignature(a), HashSignature(b));
}

TEST(HashSignatureTest, DifferentRowsDiffer) {
  std::vector<float> a{1.25f, 1.0f, 0.5f};
  std::vector<float> b{1.25f, 1.0f, 0.75f};
  EXPECT_NE(HashSignature(a), HashSignature(b));
}

TEST(HashSignatureTest, QuantizationMergesTinyDifferences) {
  std::vector<float> a{1.0f};
  std::vector<float> b{1.0f + 1e-5f};  // below the 1/1024 resolution
  EXPECT_EQ(HashSignature(a), HashSignature(b));
}

TEST(DecayTest, DecayOneCountsReachableNodes) {
  // With decay = 1 the exploration signature degenerates to "number of
  // nodes with each label within D hops (self included)".
  const graph::Graph g = psi::testing::MakeFigure1Graph();
  const SignatureMatrix ns =
      BuildExplorationSignatures(g, 2, g.num_labels(), nullptr, 1.0f);
  // From u1: itself (A), u2/u5 (B), u3/u4 (C), u6 (A) within 2 hops.
  const auto u1 = ns.row(0);
  EXPECT_FLOAT_EQ(u1[psi::testing::kA], 2.0f);
  EXPECT_FLOAT_EQ(u1[psi::testing::kB], 2.0f);
  EXPECT_FLOAT_EQ(u1[psi::testing::kC], 2.0f);
}

TEST(DecayTest, SmallerDecayShrinksDistantContributions) {
  const graph::Graph g = psi::testing::MakeFigure1Graph();
  const SignatureMatrix half =
      BuildExplorationSignatures(g, 2, g.num_labels(), nullptr, 0.5f);
  const SignatureMatrix quarter =
      BuildExplorationSignatures(g, 2, g.num_labels(), nullptr, 0.25f);
  // u6 contributes to u1's A-weight from distance 2: 0.25 vs 0.0625.
  EXPECT_FLOAT_EQ(half.at(0, psi::testing::kA), 1.25f);
  EXPECT_FLOAT_EQ(quarter.at(0, psi::testing::kA), 1.0625f);
}

TEST(MethodNameTest, Names) {
  EXPECT_STREQ(MethodName(Method::kExploration), "exploration");
  EXPECT_STREQ(MethodName(Method::kMatrix), "matrix");
}

TEST(BuildSignaturesTest, DispatchesOnMethod) {
  const graph::Graph g = psi::testing::MakeFigure1Graph();
  EXPECT_EQ(BuildSignatures(g, Method::kExploration, 2, 3).method(),
            Method::kExploration);
  EXPECT_EQ(BuildSignatures(g, Method::kMatrix, 2, 3).method(),
            Method::kMatrix);
}

TEST(BuildSignaturesTest, ParallelMatchesSerial) {
  const graph::Graph g = psi::testing::MakeRandomGraph(3000, 9000, 5, 21);
  util::ThreadPool pool(4);
  for (const Method method : {Method::kExploration, Method::kMatrix}) {
    const SignatureMatrix serial =
        BuildSignatures(g, method, 2, g.num_labels());
    const SignatureMatrix parallel =
        BuildSignatures(g, method, 2, g.num_labels(), &pool);
    for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
      for (size_t l = 0; l < serial.num_labels(); ++l) {
        ASSERT_FLOAT_EQ(serial.at(u, l), parallel.at(u, l))
            << MethodName(method) << " u=" << u << " l=" << l;
      }
    }
  }
}

}  // namespace
}  // namespace psi::signature
