#include "match/subgraph_enumerator.h"

#include <gtest/gtest.h>

#include "tests/test_fixtures.h"

namespace psi::match {
namespace {

TEST(SubgraphEnumeratorTest, Figure1TriangleCount) {
  // The paper lists exactly 5 isomorphic subgraphs for Figure 1.
  const graph::Graph g = psi::testing::MakeFigure1Graph();
  const graph::QueryGraph q = psi::testing::MakeFigure1Query();
  SubgraphEnumerator enumerator(g);
  const Plan plan = MakeHeuristicPlan(q, g, q.pivot());
  const auto result =
      enumerator.CountEmbeddings(q, plan, SubgraphEnumerator::Options());
  EXPECT_EQ(result.embedding_count, 5u);
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.outcome, Outcome::kValid);
}

TEST(SubgraphEnumeratorTest, CountIndependentOfPlan) {
  const graph::Graph g = psi::testing::MakeFigure1Graph();
  const graph::QueryGraph q = psi::testing::MakeFigure1Query();
  SubgraphEnumerator enumerator(g);
  util::Rng rng(3);
  for (int i = 0; i < 10; ++i) {
    const Plan plan = MakeRandomPlan(q, q.pivot(), rng);
    const auto result =
        enumerator.CountEmbeddings(q, plan, SubgraphEnumerator::Options());
    EXPECT_EQ(result.embedding_count, 5u) << plan.ToString();
  }
}

TEST(SubgraphEnumeratorTest, ProjectPivotMatchesPaper) {
  const graph::Graph g = psi::testing::MakeFigure1Graph();
  const graph::QueryGraph q = psi::testing::MakeFigure1Query();
  SubgraphEnumerator enumerator(g);
  const Plan plan = MakeHeuristicPlan(q, g, q.pivot());
  const auto projection =
      enumerator.ProjectPivot(q, plan, SubgraphEnumerator::Options());
  EXPECT_EQ(projection.pivot_matches, (std::vector<graph::NodeId>{0, 5}));
  EXPECT_EQ(projection.embedding_count, 5u);
  EXPECT_TRUE(projection.complete);
}

TEST(SubgraphEnumeratorTest, VisitorSeesInjectiveLabelCorrectMappings) {
  const graph::Graph g = psi::testing::MakeFigure1Graph();
  const graph::QueryGraph q = psi::testing::MakeFigure1Query();
  SubgraphEnumerator enumerator(g);
  const Plan plan = MakeHeuristicPlan(q, g, q.pivot());
  size_t visited = 0;
  enumerator.Enumerate(
      q, plan,
      [&](std::span<const graph::NodeId> mapping) {
        ++visited;
        EXPECT_EQ(mapping.size(), q.num_nodes());
        // Injectivity.
        for (size_t i = 0; i < mapping.size(); ++i) {
          for (size_t j = i + 1; j < mapping.size(); ++j) {
            EXPECT_NE(mapping[i], mapping[j]);
          }
        }
        // Labels and edges preserved.
        for (graph::NodeId v = 0; v < q.num_nodes(); ++v) {
          EXPECT_EQ(g.label(mapping[v]), q.label(v));
          for (const auto& [nbr, elabel] : q.neighbors(v)) {
            EXPECT_TRUE(g.HasEdge(mapping[v], mapping[nbr]));
            EXPECT_EQ(*g.EdgeLabelBetween(mapping[v], mapping[nbr]), elabel);
          }
        }
        return true;
      },
      SubgraphEnumerator::Options());
  EXPECT_EQ(visited, 5u);
}

TEST(SubgraphEnumeratorTest, MaxEmbeddingsTruncates) {
  const graph::Graph g = psi::testing::MakeFigure1Graph();
  const graph::QueryGraph q = psi::testing::MakeFigure1Query();
  SubgraphEnumerator enumerator(g);
  const Plan plan = MakeHeuristicPlan(q, g, q.pivot());
  SubgraphEnumerator::Options options;
  options.max_embeddings = 2;
  const auto result = enumerator.CountEmbeddings(q, plan, options);
  EXPECT_EQ(result.embedding_count, 2u);
  EXPECT_FALSE(result.complete);
}

TEST(SubgraphEnumeratorTest, VisitorCanStopEarly) {
  const graph::Graph g = psi::testing::MakeFigure1Graph();
  const graph::QueryGraph q = psi::testing::MakeFigure1Query();
  SubgraphEnumerator enumerator(g);
  const Plan plan = MakeHeuristicPlan(q, g, q.pivot());
  size_t visited = 0;
  const auto result = enumerator.Enumerate(
      q, plan,
      [&](std::span<const graph::NodeId>) {
        ++visited;
        return visited < 3;
      },
      SubgraphEnumerator::Options());
  EXPECT_EQ(visited, 3u);
  EXPECT_FALSE(result.complete);
}

TEST(SubgraphEnumeratorTest, NoMatchesForImpossibleQuery) {
  const graph::Graph g = psi::testing::MakeFigure1Graph();
  graph::QueryGraph q;
  // A triangle of three A's: Figure 1's graph has no A-A edge at all.
  const graph::NodeId a = q.AddNode(psi::testing::kA);
  const graph::NodeId b = q.AddNode(psi::testing::kA);
  const graph::NodeId c = q.AddNode(psi::testing::kA);
  q.AddEdge(a, b);
  q.AddEdge(b, c);
  q.AddEdge(a, c);
  q.set_pivot(a);
  SubgraphEnumerator enumerator(g);
  const Plan plan = MakeHeuristicPlan(q, g, a);
  const auto result =
      enumerator.CountEmbeddings(q, plan, SubgraphEnumerator::Options());
  EXPECT_EQ(result.embedding_count, 0u);
  EXPECT_EQ(result.outcome, Outcome::kInvalid);
  EXPECT_TRUE(result.complete);
}

TEST(SubgraphEnumeratorTest, SingleNodeQueryCountsLabelFrequency) {
  const graph::Graph g = psi::testing::MakeFigure1Graph();
  graph::QueryGraph q;
  q.AddNode(psi::testing::kC);
  q.set_pivot(0);
  SubgraphEnumerator enumerator(g);
  Plan plan;
  plan.order = {0};
  const auto result =
      enumerator.CountEmbeddings(q, plan, SubgraphEnumerator::Options());
  EXPECT_EQ(result.embedding_count, 2u);  // u3, u4
}

TEST(SubgraphEnumeratorTest, EdgeLabelsRespected) {
  graph::GraphBuilder b;
  b.AddNodes(3);
  b.AddEdge(0, 1, 7);
  b.AddEdge(0, 2, 8);
  const graph::Graph g = std::move(b).Build();
  graph::QueryGraph q;
  q.AddNode(0);
  q.AddNode(0);
  q.AddEdge(0, 1, 7);
  q.set_pivot(0);
  SubgraphEnumerator enumerator(g);
  Plan plan;
  plan.order = {0, 1};
  const auto projection =
      enumerator.ProjectPivot(q, plan, SubgraphEnumerator::Options());
  // Only the label-7 edge matches; both endpoints bind the pivot.
  EXPECT_EQ(projection.embedding_count, 2u);
  EXPECT_EQ(projection.pivot_matches, (std::vector<graph::NodeId>{0, 1}));
}

TEST(SubgraphEnumeratorTest, ExpiredDeadlineIncomplete) {
  const graph::Graph g = psi::testing::MakeRandomGraph(400, 2000, 2, 9);
  graph::QueryGraph q;
  graph::NodeId prev = q.AddNode(0);
  q.set_pivot(prev);
  for (int i = 1; i < 4; ++i) {
    const graph::NodeId next = q.AddNode(0);
    q.AddEdge(prev, next);
    prev = next;
  }
  SubgraphEnumerator enumerator(g);
  const Plan plan = MakeHeuristicPlan(q, g, q.pivot());
  SubgraphEnumerator::Options options;
  options.deadline = util::Deadline::After(-1.0);
  const auto result = enumerator.CountEmbeddings(q, plan, options);
  EXPECT_FALSE(result.complete);
}

}  // namespace
}  // namespace psi::match
