#include "ml/dataset.h"

#include <set>

#include <gtest/gtest.h>

namespace psi::ml {
namespace {

TEST(DatasetTest, AddAndAccess) {
  Dataset data(3);
  data.AddExample(std::vector<float>{1.0f, 2.0f, 3.0f}, 0);
  data.AddExample(std::vector<float>{4.0f, 5.0f, 6.0f}, 1);
  EXPECT_EQ(data.size(), 2u);
  EXPECT_EQ(data.num_features(), 3u);
  EXPECT_FLOAT_EQ(data.row(0)[1], 2.0f);
  EXPECT_FLOAT_EQ(data.row(1)[2], 6.0f);
  EXPECT_EQ(data.label(0), 0);
  EXPECT_EQ(data.label(1), 1);
}

TEST(DatasetTest, NumClasses) {
  Dataset data(1);
  EXPECT_EQ(data.NumClasses(), 0u);
  data.AddExample(std::vector<float>{0.0f}, 0);
  data.AddExample(std::vector<float>{0.0f}, 4);
  EXPECT_EQ(data.NumClasses(), 5u);
}

TEST(TrainTestSplitTest, DisjointAndComplete) {
  util::Rng rng(3);
  const TrainTestSplit split = MakeTrainTestSplit(100, 0.7, rng);
  EXPECT_EQ(split.train.size(), 70u);
  EXPECT_EQ(split.test.size(), 30u);
  std::set<size_t> all(split.train.begin(), split.train.end());
  all.insert(split.test.begin(), split.test.end());
  EXPECT_EQ(all.size(), 100u);
}

TEST(TrainTestSplitTest, ExtremeFractions) {
  util::Rng rng(4);
  EXPECT_EQ(MakeTrainTestSplit(10, 0.0, rng).train.size(), 0u);
  EXPECT_EQ(MakeTrainTestSplit(10, 1.0, rng).train.size(), 10u);
  EXPECT_EQ(MakeTrainTestSplit(10, 2.0, rng).train.size(), 10u);  // clamped
}

TEST(TrainTestSplitTest, Shuffled) {
  util::Rng rng(5);
  const TrainTestSplit split = MakeTrainTestSplit(50, 0.5, rng);
  // The train half should not simply be 0..24.
  bool is_prefix = true;
  for (size_t i = 0; i < split.train.size(); ++i) {
    if (split.train[i] != i) {
      is_prefix = false;
      break;
    }
  }
  EXPECT_FALSE(is_prefix);
}

}  // namespace
}  // namespace psi::ml
