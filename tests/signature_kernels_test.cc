#include "signature/kernels.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <numeric>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "signature/signature_matrix.h"
#include "signature/sparse_requirement.h"
#include "util/random.h"

namespace psi::signature {
namespace {

// Fills a matrix with random signature-like rows: mostly sparse positives,
// occasional exact copies of `required` (exercise the epsilon boundary) and
// near-misses a hair below it.
SignatureMatrix MakeRandomMatrix(size_t rows, size_t labels,
                                 std::span<const float> required,
                                 util::Rng& rng) {
  SignatureMatrix m(rows, labels, Method::kExploration, /*depth=*/2);
  for (size_t i = 0; i < rows; ++i) {
    const double flavor = rng.NextDouble();
    auto row = m.row(i);
    if (flavor < 0.1 && !required.empty()) {
      std::copy(required.begin(), required.end(), row.begin());
    } else if (flavor < 0.2 && !required.empty()) {
      // Epsilon-boundary: each entry required ± about the epsilon, so keep
      // and prune both depend on the exact comparison the reference makes.
      for (size_t l = 0; l < labels; ++l) {
        const float wiggle =
            static_cast<float>((rng.NextDouble() - 0.5) * 4e-5);
        row[l] = std::max(0.0f, required[l] + wiggle);
      }
    } else {
      for (size_t l = 0; l < labels; ++l) {
        row[l] = rng.NextBool(0.4)
                     ? static_cast<float>(rng.NextDouble() * 2.0)
                     : 0.0f;
      }
    }
  }
  return m;
}

std::vector<float> MakeRandomRequired(size_t labels, util::Rng& rng,
                                      double density) {
  std::vector<float> required(labels, 0.0f);
  for (size_t l = 0; l < labels; ++l) {
    if (rng.NextBool(density)) {
      required[l] = static_cast<float>(rng.NextDouble() * 1.5 + 1e-3);
    }
  }
  return required;
}

std::vector<graph::NodeId> AllRows(size_t n) {
  std::vector<graph::NodeId> ids(n);
  std::iota(ids.begin(), ids.end(), 0u);
  return ids;
}

// Reference ranking: score every candidate with the dense scalar oracle,
// then stable-sort descending by the float cast (exactly what the search
// sorts by).
std::vector<graph::NodeId> ReferenceRank(
    const SignatureMatrix& sigs, std::span<const float> required,
    std::vector<graph::NodeId> candidates) {
  std::vector<float> scores(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    scores[i] = static_cast<float>(
        SatisfiabilityScore(sigs.row(candidates[i]), required));
  }
  std::vector<uint32_t> order(candidates.size());
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(),
                   [&](uint32_t a, uint32_t b) { return scores[a] > scores[b]; });
  std::vector<graph::NodeId> ranked(candidates.size());
  for (size_t i = 0; i < order.size(); ++i) ranked[i] = candidates[order[i]];
  return ranked;
}

TEST(SparseRequirementTest, MatchesDenseReferenceBitForBit) {
  util::Rng rng(42);
  for (int trial = 0; trial < 50; ++trial) {
    const size_t labels = 1 + rng.NextBounded(40);
    const auto required = MakeRandomRequired(labels, rng, 0.3);
    const SignatureMatrix m = MakeRandomMatrix(64, labels, required, rng);
    SparseRequirement req(required);
    EXPECT_EQ(req.dim(), labels);
    for (size_t i = 0; i < m.num_rows(); ++i) {
      const auto row = m.row(i);
      EXPECT_EQ(req.Satisfies(row), Satisfies(row, required));
      const double dense = SatisfiabilityScore(row, required);
      const double sparse = req.Score(row);
      // Bit-identical, not approximately equal.
      EXPECT_EQ(std::memcmp(&dense, &sparse, sizeof(double)), 0)
          << "trial " << trial << " row " << i;
    }
  }
}

TEST(SparseRequirementTest, AssignReusesAndHandlesAllZero) {
  SparseRequirement req;
  const std::vector<float> zeros(16, 0.0f);
  req.Assign(zeros);
  EXPECT_EQ(req.nnz(), 0u);
  EXPECT_EQ(req.dim(), 16u);
  const std::vector<float> row(16, 1.0f);
  EXPECT_TRUE(req.Satisfies(row));
  EXPECT_EQ(req.Score(row), 0.0);

  std::vector<float> dense(16, 0.0f);
  dense[3] = 0.5f;
  dense[9] = 1.25f;
  req.Assign(dense);
  EXPECT_EQ(req.nnz(), 2u);
  EXPECT_EQ(req.indices()[0], 3u);
  EXPECT_EQ(req.indices()[1], 9u);
}

TEST(SparseRequirementTest, EmptyDimension) {
  SparseRequirement req(std::span<const float>{});
  EXPECT_EQ(req.dim(), 0u);
  EXPECT_EQ(req.nnz(), 0u);
  EXPECT_TRUE(req.Satisfies({}));
  EXPECT_EQ(req.Score({}), 0.0);
}

TEST(FilterCandidatesTest, KeepPruneIdenticalToScalarReference) {
  util::Rng rng(7);
  for (int trial = 0; trial < 30; ++trial) {
    const size_t labels = 1 + rng.NextBounded(32);
    const size_t rows = 1 + rng.NextBounded(300);
    const auto required = MakeRandomRequired(labels, rng, 0.4);
    const SignatureMatrix m = MakeRandomMatrix(rows, labels, required, rng);
    const SparseRequirement req(required);

    std::vector<graph::NodeId> batched = AllRows(rows);
    const size_t pruned = FilterCandidates(m, req, batched);

    std::vector<graph::NodeId> reference;
    for (graph::NodeId c = 0; c < rows; ++c) {
      if (Satisfies(m.row(c), required)) reference.push_back(c);
    }
    EXPECT_EQ(batched, reference) << "trial " << trial;
    EXPECT_EQ(pruned, rows - reference.size());
  }
}

TEST(FilterCandidatesTest, AllZeroRequirementKeepsEverything) {
  util::Rng rng(11);
  const std::vector<float> required(8, 0.0f);
  const SignatureMatrix m = MakeRandomMatrix(50, 8, required, rng);
  const SparseRequirement req(required);
  std::vector<graph::NodeId> candidates = AllRows(50);
  EXPECT_EQ(FilterCandidates(m, req, candidates), 0u);
  EXPECT_EQ(candidates, AllRows(50));
}

TEST(ScoreCandidatesTest, BitIdenticalToScalarReference) {
  util::Rng rng(13);
  for (int trial = 0; trial < 30; ++trial) {
    const size_t labels = 1 + rng.NextBounded(48);
    const size_t rows = 1 + rng.NextBounded(200);
    const auto required = MakeRandomRequired(labels, rng, 0.35);
    const SignatureMatrix m = MakeRandomMatrix(rows, labels, required, rng);
    const SparseRequirement req(required);
    const auto candidates = AllRows(rows);

    std::vector<float> scores(rows);
    ScoreCandidates(m, req, candidates, scores);
    for (size_t i = 0; i < rows; ++i) {
      const float reference =
          static_cast<float>(SatisfiabilityScore(m.row(i), required));
      EXPECT_EQ(std::memcmp(&scores[i], &reference, sizeof(float)), 0)
          << "trial " << trial << " row " << i;
    }
  }
}

TEST(ScoreAndRankTest, FullRankMatchesStableSortReference) {
  util::Rng rng(17);
  for (int trial = 0; trial < 30; ++trial) {
    const size_t labels = 1 + rng.NextBounded(24);
    const size_t rows = 1 + rng.NextBounded(250);
    const auto required = MakeRandomRequired(labels, rng, 0.4);
    const SignatureMatrix m = MakeRandomMatrix(rows, labels, required, rng);
    const SparseRequirement req(required);

    std::vector<graph::NodeId> batched = AllRows(rows);
    RankScratch scratch;
    ScoreAndRank(m, req, batched, scratch);
    EXPECT_EQ(batched, ReferenceRank(m, required, AllRows(rows)))
        << "trial " << trial;
  }
}

TEST(ScoreAndRankTest, StableOnTies) {
  // Duplicate rows score identically; stable ranking must preserve their
  // original relative order.
  SignatureMatrix m(6, 4, Method::kExploration, 1);
  for (size_t i = 0; i < 6; ++i) {
    auto row = m.row(i);
    row[0] = (i < 3) ? 2.0f : 1.0f;  // two score classes, three ties each
    row[1] = 1.0f;
  }
  std::vector<float> required = {1.0f, 1.0f, 0.0f, 0.0f};
  const SparseRequirement req(required);
  std::vector<graph::NodeId> candidates = {5, 1, 4, 0, 3, 2};
  RankScratch scratch;
  ScoreAndRank(m, req, candidates, scratch);
  // High scorers (rows 0..2) first in original order 1,0,2; then 5,4,3.
  EXPECT_EQ(candidates, (std::vector<graph::NodeId>{1, 0, 2, 5, 4, 3}));
}

TEST(ScoreAndRankTest, CapFirstTruncatesThenRanks) {
  util::Rng rng(19);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t labels = 1 + rng.NextBounded(16);
    const size_t rows = 2 + rng.NextBounded(120);
    const size_t k = 1 + rng.NextBounded(rows + 5);  // sometimes k > rows
    const auto required = MakeRandomRequired(labels, rng, 0.5);
    const SignatureMatrix m = MakeRandomMatrix(rows, labels, required, rng);
    const SparseRequirement req(required);

    std::vector<graph::NodeId> batched = AllRows(rows);
    RankScratch scratch;
    ScoreAndRank(m, req, batched, scratch, k, RankMode::kCapFirst);

    std::vector<graph::NodeId> reference = AllRows(rows);
    if (reference.size() > k) reference.resize(k);
    reference = ReferenceRank(m, required, std::move(reference));
    EXPECT_EQ(batched, reference) << "trial " << trial << " k=" << k;
  }
}

TEST(ScoreAndRankTest, TopKEqualsPrefixOfFullRank) {
  util::Rng rng(23);
  for (int trial = 0; trial < 30; ++trial) {
    const size_t labels = 1 + rng.NextBounded(16);
    const size_t rows = 2 + rng.NextBounded(200);
    const size_t k = 1 + rng.NextBounded(rows + 5);
    const auto required = MakeRandomRequired(labels, rng, 0.5);
    const SignatureMatrix m = MakeRandomMatrix(rows, labels, required, rng);
    const SparseRequirement req(required);

    std::vector<graph::NodeId> batched = AllRows(rows);
    RankScratch scratch;
    ScoreAndRank(m, req, batched, scratch, k, RankMode::kTopKByScore);

    std::vector<graph::NodeId> reference =
        ReferenceRank(m, required, AllRows(rows));
    if (reference.size() > k) reference.resize(k);
    EXPECT_EQ(batched, reference) << "trial " << trial << " k=" << k;
  }
}

TEST(ScoreAndRankTest, ZeroLabelMatrix) {
  SignatureMatrix m(4, 0, Method::kExploration, 1);
  const SparseRequirement req(std::span<const float>{});
  std::vector<graph::NodeId> candidates = {3, 1, 0, 2};
  RankScratch scratch;
  ScoreAndRank(m, req, candidates, scratch);
  // nnz == 0: every score is 0.0, stable sort keeps the original order.
  EXPECT_EQ(candidates, (std::vector<graph::NodeId>{3, 1, 0, 2}));

  std::vector<graph::NodeId> filtered = {3, 1, 0, 2};
  EXPECT_EQ(FilterCandidates(m, req, filtered), 0u);
  EXPECT_EQ(filtered.size(), 4u);
}

TEST(RowKernelsTest, DispatchMatchesScalarOnEveryWidth) {
  // Exercise nnz values around the 8-wide AVX2 boundary (tails of every
  // length) regardless of which path is dispatched.
  util::Rng rng(29);
  for (size_t nnz = 0; nnz <= 19; ++nnz) {
    const size_t labels = nnz + 1 + rng.NextBounded(10);
    std::vector<float> required(labels, 0.0f);
    std::vector<size_t> positions(labels);
    std::iota(positions.begin(), positions.end(), 0u);
    util::Shuffle(positions, rng);
    for (size_t j = 0; j < nnz; ++j) {
      required[positions[j]] = static_cast<float>(rng.NextDouble() + 1e-3);
    }
    const SignatureMatrix m = MakeRandomMatrix(40, labels, required, rng);
    const SparseRequirement req(required);
    ASSERT_EQ(req.nnz(), nnz);
    for (size_t i = 0; i < m.num_rows(); ++i) {
      const auto row = m.row(i);
      EXPECT_EQ(internal::RowSatisfies(row, req), Satisfies(row, required));
      const double kernel = internal::RowScore(row, req);
      const double reference = SatisfiabilityScore(row, required);
      EXPECT_EQ(std::memcmp(&kernel, &reference, sizeof(double)), 0)
          << "nnz=" << nnz << " row " << i
          << " avx2=" << KernelsUseAvx2();
    }
  }
}

TEST(RowHashTest, MatchesHashSignatureAndMemoizes) {
  util::Rng rng(31);
  const auto required = MakeRandomRequired(12, rng, 0.5);
  const SignatureMatrix m = MakeRandomMatrix(30, 12, required, rng);
  for (size_t i = 0; i < m.num_rows(); ++i) {
    const uint64_t h = m.RowHash(i);
    const uint64_t direct = HashSignature(m.row(i));
    // Identical unless the row hit the reserved sentinel 0 (then RowHash
    // substitutes a fixed value).
    EXPECT_EQ(h, direct == 0 ? 0x9e3779b97f4a7c15ULL : direct);
    EXPECT_EQ(m.RowHash(i), h);  // memoized value is stable
  }
}

TEST(RowHashTest, CopyDropsMemoizedHashes) {
  SignatureMatrix m(2, 3, Method::kMatrix, 1);
  m.at(0, 1) = 1.0f;
  const uint64_t before = m.RowHash(0);
  SignatureMatrix copy = m;
  // Mutating the copy then hashing must reflect the new contents — the
  // copy must not have inherited the original's memoized value.
  copy.at(0, 1) = 2.0f;
  EXPECT_NE(copy.RowHash(0), before);
  EXPECT_EQ(m.RowHash(0), before);
}

TEST(RowHashTest, ConcurrentReadersAgree) {
  util::Rng rng(37);
  const auto required = MakeRandomRequired(16, rng, 0.5);
  const SignatureMatrix m = MakeRandomMatrix(256, 16, required, rng);
  std::vector<std::vector<uint64_t>> per_thread(4);
  std::vector<std::thread> threads;
  for (auto& out : per_thread) {
    threads.emplace_back([&m, &out] {
      out.resize(m.num_rows());
      for (size_t i = 0; i < m.num_rows(); ++i) out[i] = m.RowHash(i);
    });
  }
  for (auto& t : threads) t.join();
  for (size_t t = 1; t < per_thread.size(); ++t) {
    EXPECT_EQ(per_thread[t], per_thread[0]);
  }
}

}  // namespace
}  // namespace psi::signature
