#include "util/status.h"

#include <string>

#include <gtest/gtest.h>

namespace psi::util {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllErrorFactories) {
  EXPECT_EQ(Status::NotFound("x").code(), Status::Code::kNotFound);
  EXPECT_EQ(Status::IoError("x").code(), Status::Code::kIoError);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            Status::Code::kFailedPrecondition);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  ASSERT_TRUE(r.ok());
  const std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "hello");
}

}  // namespace
}  // namespace psi::util
