// ShardedPsiService tests (DESIGN.md §13): the router answers exactly
// what the unsharded service answers, early settlement paths work, the
// per-shard counter dimension stays consistent with the flat contract,
// and shutdown semantics mirror PsiService.

#include <future>
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "service/service.h"
#include "shard/sharded_service.h"
#include "tests/test_fixtures.h"
#include "util/fault_injection.h"

namespace psi::shard {
namespace {

ShardedServiceOptions Sharded(uint32_t shards, size_t workers = 4) {
  ShardedServiceOptions options;
  options.num_workers = workers;
  options.build.partition.num_shards = shards;
  options.build.snapshot.signature_depth = 2;
  return options;
}

class ShardedPsiServiceTest : public ::testing::Test {
 protected:
  void SetUp() override { util::FaultInjector::Global().DisarmAll(); }
  void TearDown() override { util::FaultInjector::Global().DisarmAll(); }
};

TEST_F(ShardedPsiServiceTest, Figure1AnswerAtEveryShardCount) {
  const graph::Graph g = psi::testing::MakeFigure1Graph();
  for (const uint32_t k : {1u, 2u, 3u}) {
    SCOPED_TRACE(::testing::Message() << "k=" << k);
    ShardedPsiService psi_service(g, Sharded(k));
    service::QueryRequest request;
    request.query = psi::testing::MakeFigure1Query();
    const service::QueryResponse response = psi_service.Execute(request);
    EXPECT_EQ(response.status, service::RequestStatus::kOk);
    EXPECT_EQ(response.valid_nodes, (std::vector<graph::NodeId>{0, 5}));
    EXPECT_GT(response.snapshot_version, 0u);
  }
}

TEST_F(ShardedPsiServiceTest, MatchesUnshardedServiceOnRandomWorkload) {
  const uint64_t seed = psi::testing::TestSeed(71);
  PSI_LOG_TEST_SEED(seed);
  const graph::Graph g = psi::testing::MakeRandomGraph(200, 650, 4, seed);

  service::ServiceOptions flat_options;
  flat_options.num_workers = 2;
  service::PsiService flat(g, flat_options);
  ShardedPsiService sharded(g, Sharded(3));

  for (size_t i = 0; i < 8; ++i) {
    const graph::QueryGraph q =
        psi::testing::ExtractQuery(g, 4, seed * 31 + i);
    if (q.num_nodes() != 4) continue;
    for (const service::Method method :
         {service::Method::kSmart, service::Method::kOptimistic,
          service::Method::kPessimistic}) {
      service::QueryRequest request;
      request.query = q;
      request.method = method;
      const service::QueryResponse expected = flat.Execute(request);
      const service::QueryResponse actual = sharded.Execute(request);
      ASSERT_EQ(expected.status, service::RequestStatus::kOk);
      ASSERT_EQ(actual.status, service::RequestStatus::kOk);
      EXPECT_EQ(actual.valid_nodes, expected.valid_nodes)
          << "query " << i << " method " << static_cast<int>(method);
    }
  }
}

TEST_F(ShardedPsiServiceTest, EarlySettlementStatuses) {
  ShardedPsiService psi_service(psi::testing::MakeFigure1Graph(), Sharded(2));

  service::QueryRequest empty;
  EXPECT_EQ(psi_service.Execute(empty).status,
            service::RequestStatus::kInvalid);

  service::QueryRequest unknown;
  unknown.query = psi::testing::MakeFigure1Query();
  unknown.graph = "nope";
  EXPECT_EQ(psi_service.Execute(unknown).status,
            service::RequestStatus::kNotFound);
}

TEST_F(ShardedPsiServiceTest, PerShardCountersStayConsistent) {
  const graph::Graph g = psi::testing::MakeFigure1Graph();
  ShardedPsiService psi_service(g, Sharded(3));
  constexpr int kRequests = 12;
  for (int i = 0; i < kRequests; ++i) {
    service::QueryRequest request;
    request.query = psi::testing::MakeFigure1Query();
    ASSERT_EQ(psi_service.Execute(request).status,
              service::RequestStatus::kOk);
  }
  // One early-settled request on top: fans out to no shard.
  service::QueryRequest invalid;
  ASSERT_EQ(psi_service.Execute(invalid).status,
            service::RequestStatus::kInvalid);

  const service::ServiceStats stats = psi_service.Stats();
  const auto& m = stats.metrics;
  EXPECT_EQ(m.admitted, static_cast<uint64_t>(kRequests) + 1);
  EXPECT_EQ(m.Settled(), m.admitted);
  ASSERT_EQ(m.shards.size(), 3u);
  for (const service::ShardCounterSnapshot& shard : m.shards) {
    EXPECT_EQ(shard.admitted, static_cast<uint64_t>(kRequests));
    EXPECT_EQ(shard.settled, static_cast<uint64_t>(kRequests));
  }
  EXPECT_EQ(stats.metrics.snapshot_publishes, 1u);
  EXPECT_EQ(stats.snapshots.size(), 3u) << "one catalog row per shard";
  for (const auto& entry : stats.snapshots) {
    EXPECT_EQ(entry.pins, 0u) << "pins drained after settlement";
  }
}

TEST_F(ShardedPsiServiceTest, CrossShardForwardsObservedOnPartitionedGraph) {
  const uint64_t seed = psi::testing::TestSeed(83);
  PSI_LOG_TEST_SEED(seed);
  // Dense-ish connected graph: any 4-shard cut has boundary edges, so
  // multi-level queries must delegate at least once.
  const graph::Graph g = psi::testing::MakeRandomGraph(150, 900, 3, seed);
  ShardedPsiService psi_service(g, Sharded(4));
  uint64_t ok = 0;
  for (size_t i = 0; i < 6; ++i) {
    const graph::QueryGraph q =
        psi::testing::ExtractQuery(g, 4, seed * 17 + i);
    if (q.num_nodes() != 4) continue;
    service::QueryRequest request;
    request.query = q;
    if (psi_service.Execute(request).status == service::RequestStatus::kOk) {
      ++ok;
    }
  }
  if (ok == 0) GTEST_SKIP() << "no query extracted";
  uint64_t forwards = 0;
  for (const auto& shard : psi_service.Stats().metrics.shards) {
    forwards += shard.cross_shard_forwards;
  }
  EXPECT_GT(forwards, 0u) << "partitioned evaluation never crossed a "
                             "boundary on a dense graph";
}

TEST_F(ShardedPsiServiceTest, ShutdownStopsAdmissionAndDrains) {
  ShardedPsiService psi_service(psi::testing::MakeFigure1Graph(), Sharded(2));
  psi_service.Shutdown();
  service::QueryRequest request;
  request.query = psi::testing::MakeFigure1Query();
  const auto future = psi_service.Submit(request);
  EXPECT_FALSE(future.has_value());
  const service::ServiceStats stats = psi_service.Stats();
  EXPECT_EQ(stats.metrics.rejected, 1u);
  EXPECT_EQ(stats.metrics.admitted, 0u);
}

TEST_F(ShardedPsiServiceTest, HotSwapUnderRequestsStaysConsistent) {
  const graph::Graph g = psi::testing::MakeFigure1Graph();
  ShardedCatalog catalog;
  ShardedCatalog::BuildOptions build;
  build.partition.num_shards = 2;
  build.snapshot.signature_depth = 2;
  ASSERT_TRUE(catalog.BuildAndPublish("default", g.Clone(), build).ok());
  ShardedPsiService psi_service(&catalog, Sharded(2));
  for (int round = 0; round < 4; ++round) {
    service::QueryRequest request;
    request.query = psi::testing::MakeFigure1Query();
    const service::QueryResponse response = psi_service.Execute(request);
    EXPECT_EQ(response.status, service::RequestStatus::kOk);
    EXPECT_EQ(response.valid_nodes, (std::vector<graph::NodeId>{0, 5}));
    ASSERT_TRUE(catalog.BuildAndPublish("default", g.Clone(), build).ok());
  }
  EXPECT_EQ(psi_service.Stats().metrics.snapshot_swaps, 4u);
}

}  // namespace
}  // namespace psi::shard
