#include "core/smart_psi.h"

#include <tuple>

#include <gtest/gtest.h>

#include "graph/query_extractor.h"
#include "match/engine.h"
#include "signature/builders.h"
#include "tests/test_fixtures.h"

namespace psi::core {
namespace {

TEST(SmartPsiTest, Figure1Answer) {
  const graph::Graph g = psi::testing::MakeFigure1Graph();
  SmartPsiEngine engine(g);
  const PsiQueryResult result =
      engine.Evaluate(psi::testing::MakeFigure1Query());
  EXPECT_EQ(result.valid_nodes, (std::vector<graph::NodeId>{0, 5}));
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.num_candidates, 2u);
  EXPECT_GT(result.total_seconds, 0.0);
}

TEST(SmartPsiTest, InfeasibleQueryEmpty) {
  const graph::Graph g = psi::testing::MakeFigure1Graph();
  SmartPsiEngine engine(g);
  graph::QueryGraph q;
  q.AddNode(12345);
  q.set_pivot(0);
  const PsiQueryResult result = engine.Evaluate(q);
  EXPECT_TRUE(result.valid_nodes.empty());
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.num_candidates, 0u);
}

// The feasibility check must track the *bound* graph: after Rebind moves
// an unbound engine onto a graph, a label outside that graph's alphabet
// short-circuits to empty while a real query still answers correctly.
TEST(SmartPsiTest, RebindTracksFeasibilityOfTheBoundGraph) {
  const graph::Graph g = psi::testing::MakeFigure1Graph();
  SmartPsiConfig config;
  config.signature_depth = 1;
  const auto sigs = signature::BuildSignatures(
      g, config.signature_method, config.signature_depth, g.num_labels());

  SmartPsiEngine engine(config);  // unbound
  EXPECT_FALSE(engine.bound());
  engine.Rebind(g, &sigs);
  ASSERT_TRUE(engine.bound());

  graph::QueryGraph infeasible;
  infeasible.AddNode(12345);
  infeasible.set_pivot(0);
  const PsiQueryResult empty = engine.Evaluate(infeasible);
  EXPECT_TRUE(empty.valid_nodes.empty());
  EXPECT_TRUE(empty.complete);

  const PsiQueryResult answer =
      engine.Evaluate(psi::testing::MakeFigure1Query());
  EXPECT_EQ(answer.valid_nodes, (std::vector<graph::NodeId>{0, 5}));
}

TEST(SmartPsiTest, SignaturesBuiltAtConstruction) {
  const graph::Graph g = psi::testing::MakeFigure1Graph();
  SmartPsiConfig config;
  config.signature_method = signature::Method::kExploration;
  config.signature_depth = 3;
  SmartPsiEngine engine(g, config);
  EXPECT_EQ(engine.graph_signatures().num_rows(), g.num_nodes());
  EXPECT_EQ(engine.graph_signatures().method(),
            signature::Method::kExploration);
  EXPECT_EQ(engine.graph_signatures().depth(), 3u);
  EXPECT_GE(engine.signature_build_seconds(), 0.0);
}

// ---------------------------------------------------------------------------
// Exactness across the whole configuration space: every feature combination
// must return the enumeration ground truth (the paper's exactness claim
// holds regardless of predictions, caching, preemption, or parallelism).
// ---------------------------------------------------------------------------
struct ConfigCase {
  bool cache;
  bool preemption;
  bool plan_model;
  size_t threads;
  signature::Method method;
};

class SmartPsiExactnessTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, ConfigCase>> {};

TEST_P(SmartPsiExactnessTest, MatchesGroundTruth) {
  const auto [seed, config_case] = GetParam();
  const graph::Graph g = psi::testing::MakeRandomGraph(400, 1300, 4, seed);
  graph::QueryExtractor extractor(g);
  util::Rng rng(seed * 13 + 1);

  SmartPsiConfig config;
  config.enable_cache = config_case.cache;
  config.enable_preemption = config_case.preemption;
  config.enable_plan_model = config_case.plan_model;
  config.num_threads = config_case.threads;
  config.signature_method = config_case.method;
  config.min_candidates_for_ml = 8;  // force the ML path on small graphs
  config.max_train_nodes = 30;
  config.seed = seed;
  SmartPsiEngine engine(g, config);

  match::BasicEngine basic(g);
  for (const size_t size : {3u, 5u}) {
    const graph::QueryGraph q = extractor.Extract(size, rng);
    if (q.num_nodes() != size) continue;
    const auto truth =
        basic.ProjectPivot(q, match::MatchingEngine::Options());
    ASSERT_TRUE(truth.complete);
    const PsiQueryResult result = engine.Evaluate(q);
    EXPECT_TRUE(result.complete);
    EXPECT_EQ(result.valid_nodes, truth.pivot_matches)
        << "size=" << size << " " << q.ToString();
    EXPECT_EQ(result.num_candidates >= result.num_training_nodes, true);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, SmartPsiExactnessTest,
    ::testing::Combine(
        ::testing::Values(100, 200, 300),
        ::testing::Values(
            ConfigCase{true, true, true, 1, signature::Method::kMatrix},
            ConfigCase{false, true, true, 1, signature::Method::kMatrix},
            ConfigCase{true, false, true, 1, signature::Method::kMatrix},
            ConfigCase{true, true, false, 1, signature::Method::kMatrix},
            ConfigCase{true, true, true, 4, signature::Method::kMatrix},
            ConfigCase{true, true, true, 1,
                       signature::Method::kExploration},
            ConfigCase{false, false, false, 4,
                       signature::Method::kExploration})));

class SmartPsiClassifierTest
    : public ::testing::TestWithParam<core::ClassifierKind> {};

// The paper notes other classifiers are orthogonal: exactness must hold
// with any learner behind Models α and β — a worse model costs recoveries,
// never answers.
TEST_P(SmartPsiClassifierTest, ExactWithAnyClassifier) {
  const graph::Graph g = psi::testing::MakeRandomGraph(400, 1300, 3, 81);
  graph::QueryExtractor extractor(g);
  util::Rng rng(82);
  const graph::QueryGraph q = extractor.Extract(4, rng);
  ASSERT_EQ(q.num_nodes(), 4u);

  match::BasicEngine basic(g);
  const auto truth = basic.ProjectPivot(q, match::MatchingEngine::Options());
  ASSERT_TRUE(truth.complete);

  core::SmartPsiConfig config;
  config.classifier = GetParam();
  config.min_candidates_for_ml = 8;
  config.max_train_nodes = 40;
  core::SmartPsiEngine engine(g, config);
  const PsiQueryResult result = engine.Evaluate(q);
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.valid_nodes, truth.pivot_matches)
      << core::ClassifierKindName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(Kinds, SmartPsiClassifierTest,
                         ::testing::Values(core::ClassifierKind::kRandomForest,
                                           core::ClassifierKind::kLinearSvm,
                                           core::ClassifierKind::kNeuralNet));

TEST(ClassifierTest, KindNames) {
  EXPECT_STREQ(
      core::ClassifierKindName(core::ClassifierKind::kRandomForest),
      "random-forest");
  EXPECT_STREQ(core::ClassifierKindName(core::ClassifierKind::kLinearSvm),
               "linear-svm");
  EXPECT_STREQ(core::ClassifierKindName(core::ClassifierKind::kNeuralNet),
               "neural-net");
}

TEST(ClassifierTest, AllKindsTrainAndPredict) {
  ml::Dataset data(2);
  util::Rng data_rng(83);
  for (int i = 0; i < 200; ++i) {
    const bool positive = data_rng.NextBool(0.5);
    data.AddExample(
        std::vector<float>{
            static_cast<float>(data_rng.NextGaussian() +
                               (positive ? 2.0 : -2.0)),
            static_cast<float>(data_rng.NextGaussian())},
        positive ? 1 : 0);
  }
  for (const auto kind :
       {core::ClassifierKind::kRandomForest, core::ClassifierKind::kLinearSvm,
        core::ClassifierKind::kNeuralNet}) {
    core::Classifier model(kind);
    EXPECT_FALSE(model.trained());
    util::Rng rng(84);
    model.Train(data, 2, 16, rng);
    EXPECT_TRUE(model.trained());
    size_t correct = 0;
    for (size_t i = 0; i < data.size(); ++i) {
      if (model.Predict(data.row(i)) == data.label(i)) ++correct;
    }
    EXPECT_GT(static_cast<double>(correct) / data.size(), 0.9)
        << core::ClassifierKindName(kind);
  }
}

TEST(SmartPsiTest, TinyCandidateSetSkipsMl) {
  const graph::Graph g = psi::testing::MakeFigure1Graph();
  SmartPsiConfig config;
  config.min_candidates_for_ml = 24;  // Figure 1 has only 2 candidates
  SmartPsiEngine engine(g, config);
  const PsiQueryResult result =
      engine.Evaluate(psi::testing::MakeFigure1Query());
  EXPECT_EQ(result.num_training_nodes, 0u);
  EXPECT_EQ(result.train_seconds, 0.0);
  EXPECT_EQ(result.valid_nodes, (std::vector<graph::NodeId>{0, 5}));
}

TEST(SmartPsiTest, MlPathReportsAccuracyAndTiming) {
  const graph::Graph g = psi::testing::MakeRandomGraph(600, 2000, 3, 71);
  SmartPsiConfig config;
  config.min_candidates_for_ml = 8;
  config.max_train_nodes = 40;
  SmartPsiEngine engine(g, config);
  graph::QueryExtractor extractor(g);
  util::Rng rng(72);
  const graph::QueryGraph q = extractor.Extract(4, rng);
  ASSERT_EQ(q.num_nodes(), 4u);
  const PsiQueryResult result = engine.Evaluate(q);
  EXPECT_TRUE(result.complete);
  EXPECT_GT(result.num_training_nodes, 0u);
  EXPECT_GT(result.alpha_predictions, 0u);
  EXPECT_LE(result.alpha_correct, result.alpha_predictions);
  EXPECT_GT(result.train_seconds, 0.0);
  EXPECT_GE(result.MlOverheadFraction(), 0.0);
  EXPECT_LE(result.MlOverheadFraction(), 1.0);
}

TEST(SmartPsiTest, CacheHitsAccumulateAcrossQueries) {
  const graph::Graph g = psi::testing::MakeRandomGraph(600, 2000, 2, 73);
  SmartPsiConfig config;
  config.min_candidates_for_ml = 8;
  config.max_train_nodes = 30;
  SmartPsiEngine engine(g, config);
  graph::QueryExtractor extractor(g);
  util::Rng rng(74);
  const graph::QueryGraph q = extractor.Extract(3, rng);
  ASSERT_EQ(q.num_nodes(), 3u);
  const PsiQueryResult first = engine.Evaluate(q);
  const PsiQueryResult second = engine.Evaluate(q);
  EXPECT_EQ(first.valid_nodes, second.valid_nodes);
  // After the first run every remaining candidate's signature is cached.
  EXPECT_GT(second.cache_hits, 0u);
}

TEST(SmartPsiTest, ExpiredDeadlineIncomplete) {
  const graph::Graph g = psi::testing::MakeRandomGraph(400, 1300, 2, 75);
  SmartPsiEngine engine(g);
  graph::QueryExtractor extractor(g);
  util::Rng rng(76);
  const graph::QueryGraph q = extractor.Extract(4, rng);
  ASSERT_EQ(q.num_nodes(), 4u);
  const PsiQueryResult result =
      engine.Evaluate(q, util::Deadline::After(-1.0));
  EXPECT_FALSE(result.complete);
}

TEST(SmartPsiTest, PreemptionRecoversAndStaysExact) {
  // Force the preemptive executor through its recovery states by making
  // MaxTime absurdly tight: state 1 times out constantly, states 2/3 must
  // still produce the exact answer.
  const graph::Graph g = psi::testing::MakeRandomGraph(500, 1800, 3, 91);
  graph::QueryExtractor extractor(g);
  util::Rng rng(92);
  const graph::QueryGraph q = extractor.Extract(5, rng);
  ASSERT_EQ(q.num_nodes(), 5u);

  match::BasicEngine basic(g);
  const auto truth = basic.ProjectPivot(q, match::MatchingEngine::Options());
  ASSERT_TRUE(truth.complete);

  core::SmartPsiConfig config;
  config.min_candidates_for_ml = 8;
  config.min_preemption_seconds = 1e-9;  // MaxTime ≈ 2x a few nanoseconds
  config.timeout_factor = 1e-3;
  core::SmartPsiEngine engine(g, config);
  const PsiQueryResult result = engine.Evaluate(q);
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.valid_nodes, truth.pivot_matches);
  // With such budgets some nodes must have gone through recovery.
  EXPECT_GT(result.method_recoveries + result.plan_fallbacks, 0u);
}

TEST(SmartPsiTest, DeterministicAcrossRunsWithSameSeed) {
  const graph::Graph g = psi::testing::MakeRandomGraph(500, 1600, 3, 77);
  graph::QueryExtractor extractor(g);
  util::Rng rng(78);
  const graph::QueryGraph q = extractor.Extract(4, rng);
  ASSERT_EQ(q.num_nodes(), 4u);
  SmartPsiConfig config;
  config.min_candidates_for_ml = 8;
  SmartPsiEngine engine1(g, config);
  SmartPsiEngine engine2(g, config);
  EXPECT_EQ(engine1.Evaluate(q).valid_nodes, engine2.Evaluate(q).valid_nodes);
}

}  // namespace
}  // namespace psi::core
