#include "util/thread_pool.h"

#include <atomic>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace psi::util {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, AtLeastOneThread) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<bool> ran{false};
  pool.Submit([&ran] { ran = true; });
  pool.Wait();
  EXPECT_TRUE(ran);
}

TEST(ThreadPoolTest, WaitWithNoTasksReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, TasksCanSubmitTasks) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  pool.Submit([&] {
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    counter.fetch_add(1);
  });
  pool.Wait();
  EXPECT_EQ(counter.load(), 11);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> touched(1000);
  pool.ParallelFor(1000, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) touched[i].fetch_add(1);
  });
  for (const auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(ThreadPoolTest, ParallelForZeroCount) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(0, [&](size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, ParallelForSmallCount) {
  ThreadPool pool(8);
  std::atomic<int> sum{0};
  pool.ParallelFor(3, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      sum.fetch_add(static_cast<int>(i));
    }
  });
  EXPECT_EQ(sum.load(), 3);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    // No Wait(): destructor must still run all queued work.
  }
  EXPECT_EQ(counter.load(), 50);
}

}  // namespace
}  // namespace psi::util
