#include "util/thread_pool.h"

#include "util/mutex.h"

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace psi::util {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, AtLeastOneThread) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<bool> ran{false};
  pool.Submit([&ran] { ran = true; });
  pool.Wait();
  EXPECT_TRUE(ran);
}

TEST(ThreadPoolTest, WaitWithNoTasksReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, TasksCanSubmitTasks) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  pool.Submit([&] {
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    counter.fetch_add(1);
  });
  pool.Wait();
  EXPECT_EQ(counter.load(), 11);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> touched(1000);
  pool.ParallelFor(1000, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) touched[i].fetch_add(1);
  });
  for (const auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(ThreadPoolTest, ParallelForZeroCount) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(0, [&](size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, ParallelForSmallCount) {
  ThreadPool pool(8);
  std::atomic<int> sum{0};
  pool.ParallelFor(3, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      sum.fetch_add(static_cast<int>(i));
    }
  });
  EXPECT_EQ(sum.load(), 3);
}

TEST(ThreadPoolTest, TrySubmitRejectsWhenQueueFull) {
  ThreadPool pool(1);
  Mutex gate;
  gate.Lock();  // hold the single worker hostage
  pool.Submit([&gate] { MutexLock hold(gate); });
  // Give the worker a moment to pick up the blocking task so it no longer
  // counts against the queue bound (executing tasks are not "queued").
  while (pool.queue_depth() > 0) std::this_thread::yield();

  std::atomic<int> ran{0};
  EXPECT_TRUE(pool.TrySubmit([&ran] { ran.fetch_add(1); }, 2));
  EXPECT_TRUE(pool.TrySubmit([&ran] { ran.fetch_add(1); }, 2));
  // Queue now holds 2 tasks: at the bound, so the next offer is shed.
  EXPECT_FALSE(pool.TrySubmit([&ran] { ran.fetch_add(1); }, 2));
  EXPECT_EQ(pool.queue_depth(), 2u);

  gate.Unlock();
  pool.Wait();
  EXPECT_EQ(ran.load(), 2);  // the shed task never ran
  EXPECT_EQ(pool.queue_depth(), 0u);
}

TEST(ThreadPoolTest, TrySubmitZeroBoundAlwaysRejects) {
  ThreadPool pool(2);
  EXPECT_FALSE(pool.TrySubmit([] {}, 0));
  pool.Wait();
}

TEST(ThreadPoolTest, QueueDepthStartsAtZero) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.queue_depth(), 0u);
}

TEST(ThreadPoolTest, TrySubmitTasksRunLikeSubmittedOnes) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  int accepted = 0;
  for (int i = 0; i < 100; ++i) {
    if (pool.TrySubmit([&counter] { counter.fetch_add(1); }, 1000)) {
      ++accepted;
    }
  }
  pool.Wait();
  EXPECT_EQ(accepted, 100);
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    // No Wait(): destructor must still run all queued work.
  }
  EXPECT_EQ(counter.load(), 50);
}

}  // namespace
}  // namespace psi::util
