#include "core/two_threaded.h"

#include <gtest/gtest.h>

#include "graph/query_extractor.h"
#include "match/engine.h"
#include "signature/builders.h"
#include "tests/test_fixtures.h"

namespace psi::core {
namespace {

TEST(TwoThreadedTest, Figure1Answer) {
  const graph::Graph g = psi::testing::MakeFigure1Graph();
  const auto gs = signature::BuildSignatures(
      g, signature::Method::kMatrix, 2, g.num_labels());
  TwoThreadedBaseline baseline(g, gs);
  const auto result = baseline.Evaluate(psi::testing::MakeFigure1Query(),
                                        TwoThreadedBaseline::Options());
  EXPECT_EQ(result.valid_nodes, (std::vector<graph::NodeId>{0, 5}));
  EXPECT_TRUE(result.complete);
  // Every candidate produced exactly one decisive winner.
  EXPECT_EQ(result.optimistic_wins + result.pessimistic_wins, 2u);
}

class TwoThreadedAgreementTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, bool>> {};

TEST_P(TwoThreadedAgreementTest, MatchesGroundTruth) {
  const auto [seed, spawn_per_node] = GetParam();
  const graph::Graph g = psi::testing::MakeRandomGraph(200, 600, 3, seed);
  const auto gs = signature::BuildSignatures(
      g, signature::Method::kMatrix, 2, g.num_labels());
  graph::QueryExtractor extractor(g);
  util::Rng rng(seed + 5);
  const graph::QueryGraph q = extractor.Extract(4, rng);
  if (q.num_nodes() != 4) GTEST_SKIP();

  match::BasicEngine basic(g);
  const auto truth =
      basic.ProjectPivot(q, match::MatchingEngine::Options());
  ASSERT_TRUE(truth.complete);

  TwoThreadedBaseline baseline(g, gs);
  TwoThreadedBaseline::Options options;
  options.spawn_per_node = spawn_per_node;
  const auto result = baseline.Evaluate(q, options);
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.valid_nodes, truth.pivot_matches) << q.ToString();
}

INSTANTIATE_TEST_SUITE_P(
    Cases, TwoThreadedAgreementTest,
    ::testing::Combine(::testing::Values(11, 22, 33, 44),
                       ::testing::Values(true, false)));

TEST(TwoThreadedTest, ExpiredDeadlineIncomplete) {
  const graph::Graph g = psi::testing::MakeRandomGraph(100, 300, 2, 7);
  const auto gs = signature::BuildSignatures(
      g, signature::Method::kMatrix, 2, g.num_labels());
  graph::QueryGraph q;
  const graph::NodeId a = q.AddNode(0);
  const graph::NodeId b = q.AddNode(1);
  q.AddEdge(a, b);
  q.set_pivot(a);
  TwoThreadedBaseline baseline(g, gs);
  TwoThreadedBaseline::Options options;
  options.deadline = util::Deadline::After(-1.0);
  const auto result = baseline.Evaluate(q, options);
  EXPECT_FALSE(result.complete);
  EXPECT_TRUE(result.valid_nodes.empty());
}

TEST(TwoThreadedTest, InfeasibleQueryFastPath) {
  const graph::Graph g = psi::testing::MakeFigure1Graph();
  const auto gs = signature::BuildSignatures(
      g, signature::Method::kMatrix, 2, g.num_labels());
  graph::QueryGraph q;
  q.AddNode(40);
  q.set_pivot(0);
  TwoThreadedBaseline baseline(g, gs);
  const auto result = baseline.Evaluate(q, TwoThreadedBaseline::Options());
  EXPECT_TRUE(result.complete);
  EXPECT_TRUE(result.valid_nodes.empty());
  EXPECT_EQ(result.optimistic_wins + result.pessimistic_wins, 0u);
}

}  // namespace
}  // namespace psi::core
