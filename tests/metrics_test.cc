#include "ml/metrics.h"

#include <vector>

#include <gtest/gtest.h>

namespace psi::ml {
namespace {

TEST(AccuracyTest, Basic) {
  const std::vector<int32_t> predicted{0, 1, 1, 0};
  const std::vector<int32_t> actual{0, 1, 0, 0};
  EXPECT_DOUBLE_EQ(Accuracy(predicted, actual), 0.75);
}

TEST(AccuracyTest, EmptyIsZero) {
  EXPECT_EQ(Accuracy({}, {}), 0.0);
}

TEST(ConfusionMatrixTest, Entries) {
  const std::vector<int32_t> predicted{0, 1, 1, 0, 1};
  const std::vector<int32_t> actual{0, 1, 0, 1, 1};
  const auto confusion = ConfusionMatrix(predicted, actual, 2);
  // Rows = actual, columns = predicted.
  EXPECT_EQ(confusion[0 * 2 + 0], 1u);  // actual 0 predicted 0
  EXPECT_EQ(confusion[0 * 2 + 1], 1u);  // actual 0 predicted 1
  EXPECT_EQ(confusion[1 * 2 + 0], 1u);  // actual 1 predicted 0
  EXPECT_EQ(confusion[1 * 2 + 1], 2u);  // actual 1 predicted 1
}

TEST(ClassMetricsTest, PrecisionRecallF1) {
  const std::vector<int32_t> predicted{1, 1, 1, 0, 0, 1};
  const std::vector<int32_t> actual{1, 1, 0, 1, 0, 1};
  const auto confusion = ConfusionMatrix(predicted, actual, 2);
  const ClassMetrics m = ComputeClassMetrics(confusion, 2, 1);
  EXPECT_DOUBLE_EQ(m.precision, 3.0 / 4.0);
  EXPECT_DOUBLE_EQ(m.recall, 3.0 / 4.0);
  EXPECT_DOUBLE_EQ(m.f1, 0.75);
}

TEST(ClassMetricsTest, AbsentClassIsZero) {
  const std::vector<int32_t> predicted{0, 0};
  const std::vector<int32_t> actual{0, 0};
  const auto confusion = ConfusionMatrix(predicted, actual, 2);
  const ClassMetrics m = ComputeClassMetrics(confusion, 2, 1);
  EXPECT_EQ(m.precision, 0.0);
  EXPECT_EQ(m.recall, 0.0);
  EXPECT_EQ(m.f1, 0.0);
}

}  // namespace
}  // namespace psi::ml
