#include "core/prediction_cache.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace psi::core {
namespace {

TEST(PredictionCacheTest, MissThenHit) {
  PredictionCache cache;
  EXPECT_FALSE(cache.Lookup(42).has_value());
  cache.Insert(42, {true, 3});
  const auto entry = cache.Lookup(42);
  ASSERT_TRUE(entry.has_value());
  EXPECT_TRUE(entry->valid);
  EXPECT_EQ(entry->plan_index, 3u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(PredictionCacheTest, LastWriterWins) {
  PredictionCache cache;
  cache.Insert(7, {true, 0});
  cache.Insert(7, {false, 2});
  const auto entry = cache.Lookup(7);
  ASSERT_TRUE(entry.has_value());
  EXPECT_FALSE(entry->valid);
  EXPECT_EQ(entry->plan_index, 2u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(PredictionCacheTest, Clear) {
  PredictionCache cache;
  cache.Insert(1, {true, 0});
  cache.Insert(2, {false, 1});
  EXPECT_EQ(cache.size(), 2u);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Lookup(1).has_value());
}

TEST(PredictionCacheTest, ConcurrentInsertLookup) {
  PredictionCache cache;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&cache, t] {
      for (uint64_t i = 0; i < 500; ++i) {
        cache.Insert(t * 1000 + i, {i % 2 == 0, static_cast<uint32_t>(i % 4)});
        cache.Lookup(i);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(cache.size(), 2000u);
}

TEST(PredictionCacheTest, CountersTrackHitsMissesInserts) {
  PredictionCache cache;
  cache.Lookup(1);               // miss
  cache.Insert(1, {true, 0});    // insert
  cache.Lookup(1);               // hit
  cache.Lookup(2);               // miss
  const auto counters = cache.counters();
  EXPECT_EQ(counters.hits, 1u);
  EXPECT_EQ(counters.misses, 2u);
  EXPECT_EQ(counters.inserts, 1u);
  EXPECT_NEAR(counters.HitRate(), 1.0 / 3.0, 1e-12);
}

TEST(PredictionCacheTest, HitRateOfIdleCacheIsZero) {
  PredictionCache cache;
  EXPECT_EQ(cache.counters().HitRate(), 0.0);
}

TEST(PredictionCacheTest, CountersSurviveClear) {
  PredictionCache cache;
  cache.Insert(1, {true, 0});
  cache.Lookup(1);
  cache.Clear();
  // Clear drops entries but keeps lifetime counters (monotonic telemetry).
  const auto counters = cache.counters();
  EXPECT_EQ(counters.hits, 1u);
  EXPECT_EQ(counters.inserts, 1u);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(PredictionCacheTest, CountersConsistentUnderConcurrency) {
  PredictionCache cache;
  constexpr int kThreads = 4;
  constexpr uint64_t kOps = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      for (uint64_t i = 0; i < kOps; ++i) {
        const uint64_t key = t * 10000 + i;
        cache.Lookup(key);            // always a miss (distinct keys)
        cache.Insert(key, {true, 0});
        cache.Lookup(key);            // always a hit
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const auto counters = cache.counters();
  EXPECT_EQ(counters.hits, kThreads * kOps);
  EXPECT_EQ(counters.misses, kThreads * kOps);
  EXPECT_EQ(counters.inserts, kThreads * kOps);
}

}  // namespace
}  // namespace psi::core
