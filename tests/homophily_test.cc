#include <gtest/gtest.h>

#include "graph/datasets.h"
#include "graph/generators.h"
#include "tests/test_fixtures.h"

namespace psi::graph {
namespace {

/// Fraction of edges whose endpoints share a label.
double SameLabelEdgeFraction(const Graph& g) {
  size_t same = 0;
  size_t total = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (const NodeId v : g.neighbors(u)) {
      if (u < v) {
        ++total;
        same += g.label(u) == g.label(v) ? 1 : 0;
      }
    }
  }
  return total == 0 ? 0.0 : static_cast<double>(same) / total;
}

TEST(HomophilyTest, PreservesStructure) {
  const Graph original = psi::testing::MakeRandomGraph(300, 900, 5, 17);
  util::Rng rng(18);
  const Graph relabeled = RelabelWithHomophily(original, 0.7, 2, rng);
  ASSERT_EQ(relabeled.num_nodes(), original.num_nodes());
  ASSERT_EQ(relabeled.num_edges(), original.num_edges());
  for (NodeId u = 0; u < original.num_nodes(); ++u) {
    const auto a = original.neighbors(u);
    const auto b = relabeled.neighbors(u);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], b[i]);
  }
}

TEST(HomophilyTest, PreservesEdgeLabels) {
  util::Rng gen_rng(19);
  LabelConfig labels;
  labels.num_labels = 3;
  labels.num_edge_labels = 4;
  const Graph original = ErdosRenyi(100, 300, labels, gen_rng);
  util::Rng rng(20);
  const Graph relabeled = RelabelWithHomophily(original, 0.9, 3, rng);
  for (NodeId u = 0; u < original.num_nodes(); ++u) {
    const auto a = original.edge_labels(u);
    const auto b = relabeled.edge_labels(u);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], b[i]);
  }
}

TEST(HomophilyTest, RaisesSameLabelEdgeFraction) {
  const Graph original = psi::testing::MakeRandomGraph(1000, 4000, 6, 21);
  util::Rng rng(22);
  const Graph relabeled = RelabelWithHomophily(original, 0.8, 2, rng);
  EXPECT_GT(SameLabelEdgeFraction(relabeled),
            SameLabelEdgeFraction(original) * 1.5);
}

TEST(HomophilyTest, ZeroStrengthIsIdentityOnLabels) {
  const Graph original = psi::testing::MakeRandomGraph(200, 600, 4, 23);
  util::Rng rng(24);
  const Graph relabeled = RelabelWithHomophily(original, 0.0, 3, rng);
  for (NodeId u = 0; u < original.num_nodes(); ++u) {
    EXPECT_EQ(relabeled.label(u), original.label(u));
  }
}

TEST(HomophilyTest, DeterministicInSeed) {
  const Graph original = psi::testing::MakeRandomGraph(200, 600, 4, 25);
  util::Rng rng1(26);
  util::Rng rng2(26);
  const Graph a = RelabelWithHomophily(original, 0.6, 2, rng1);
  const Graph b = RelabelWithHomophily(original, 0.6, 2, rng2);
  for (NodeId u = 0; u < original.num_nodes(); ++u) {
    EXPECT_EQ(a.label(u), b.label(u));
  }
}

TEST(HomophilyTest, DatasetStandInsAreHomophilous) {
  // The stand-ins apply homophily so enumeration shows the paper's blow-up
  // (DESIGN.md §3); verify the label correlation is materially above the
  // independent-assignment baseline 1/num_labels-ish level.
  const Graph cora = MakeDataset(Dataset::kCora, 1.0, 42);
  EXPECT_GT(SameLabelEdgeFraction(cora), 0.3);  // 7 labels, 0.8 homophily
}

}  // namespace
}  // namespace psi::graph
