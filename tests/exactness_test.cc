// The paper's central exactness claim (§1): every PSI evaluation path —
// optimistic, super-optimistic + fallback, pessimistic — returns exactly the
// set of pivot bindings that enumerate-and-project produces, for both
// signature methods. This suite is the library's strongest safety net.

#include <tuple>

#include <gtest/gtest.h>

#include "graph/query_extractor.h"
#include "match/candidates.h"
#include "match/engine.h"
#include "match/plan.h"
#include "match/psi_evaluator.h"
#include "match/cfl_match.h"
#include "match/turbo_iso.h"
#include "match/ullmann.h"
#include "match/vf2.h"
#include "signature/builders.h"
#include "tests/test_fixtures.h"

namespace psi::match {
namespace {

using ExactnessParam =
    std::tuple<uint64_t /*seed*/, size_t /*query size*/, signature::Method>;

class ExactnessTest : public ::testing::TestWithParam<ExactnessParam> {};

std::vector<graph::NodeId> EvaluateAll(PsiEvaluator& evaluator,
                                       const std::vector<graph::NodeId>& cands,
                                       PsiMode mode) {
  std::vector<graph::NodeId> valid;
  PsiEvaluator::Options options;
  options.mode = mode;
  for (const graph::NodeId u : cands) {
    if (evaluator.EvaluateNode(u, options) == Outcome::kValid) {
      valid.push_back(u);
    }
  }
  return valid;
}

TEST_P(ExactnessTest, AllPsiModesMatchEnumerationGroundTruth) {
  const auto [seed, query_size, method] = GetParam();
  const graph::Graph g = psi::testing::MakeRandomGraph(300, 1000, 4, seed);
  graph::QueryExtractor extractor(g);
  util::Rng rng(seed * 7919 + 3);
  const graph::QueryGraph q = extractor.Extract(query_size, rng);
  if (q.num_nodes() != query_size) GTEST_SKIP() << "extraction failed";

  // Ground truth by full enumeration + projection.
  BasicEngine basic(g);
  const auto truth = basic.ProjectPivot(q, MatchingEngine::Options());
  ASSERT_TRUE(truth.complete);

  const auto gs = signature::BuildSignatures(g, method, 2, g.num_labels());
  const auto qs = signature::BuildSignatures(q, method, 2, g.num_labels());
  const auto candidates = ExtractPivotCandidates(g, q);

  PsiEvaluator evaluator(g, gs);
  const Plan plan = MakeHeuristicPlan(q, g, q.pivot());
  evaluator.BindQuery(q, qs, plan);

  EXPECT_EQ(EvaluateAll(evaluator, candidates, PsiMode::kOptimistic),
            truth.pivot_matches)
      << "optimistic " << q.ToString();
  EXPECT_EQ(EvaluateAll(evaluator, candidates, PsiMode::kPessimistic),
            truth.pivot_matches)
      << "pessimistic " << q.ToString();

  // Full optimistic strategy (super-optimistic + fallback).
  std::vector<graph::NodeId> strategy_valid;
  PsiEvaluator::Options options;
  for (const graph::NodeId u : candidates) {
    if (evaluator.EvaluateNodeOptimisticStrategy(u, options) ==
        Outcome::kValid) {
      strategy_valid.push_back(u);
    }
  }
  EXPECT_EQ(strategy_valid, truth.pivot_matches)
      << "strategy " << q.ToString();
}

TEST_P(ExactnessTest, ResultIndependentOfPlan) {
  const auto [seed, query_size, method] = GetParam();
  const graph::Graph g = psi::testing::MakeRandomGraph(200, 650, 3, seed);
  graph::QueryExtractor extractor(g);
  util::Rng rng(seed * 104729 + 11);
  const graph::QueryGraph q = extractor.Extract(query_size, rng);
  if (q.num_nodes() != query_size) GTEST_SKIP() << "extraction failed";

  const auto gs = signature::BuildSignatures(g, method, 2, g.num_labels());
  const auto qs = signature::BuildSignatures(q, method, 2, g.num_labels());
  const auto candidates = ExtractPivotCandidates(g, q);
  PsiEvaluator evaluator(g, gs);

  std::vector<graph::NodeId> reference;
  for (int trial = 0; trial < 4; ++trial) {
    const Plan plan = trial == 0 ? MakeHeuristicPlan(q, g, q.pivot())
                                 : MakeRandomPlan(q, q.pivot(), rng);
    evaluator.BindQuery(q, qs, plan);
    const auto valid =
        EvaluateAll(evaluator, candidates, PsiMode::kPessimistic);
    if (trial == 0) {
      reference = valid;
    } else {
      EXPECT_EQ(valid, reference) << plan.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomGraphs, ExactnessTest,
    ::testing::Combine(::testing::Values(10, 20, 30, 40, 50, 60, 70),
                       ::testing::Values(3, 4, 5, 6),
                       ::testing::Values(signature::Method::kExploration,
                                         signature::Method::kMatrix)));

class EdgeLabelExactnessTest : public ::testing::TestWithParam<uint64_t> {};

// Edge labels participate in every matching step (candidate anchoring,
// consistency checks, the enumeration engines). All PSI paths and all
// enumeration engines must agree on edge-labeled graphs too.
TEST_P(EdgeLabelExactnessTest, AllPathsAgreeWithEdgeLabels) {
  util::Rng gen_rng(GetParam());
  graph::LabelConfig labels;
  labels.num_labels = 3;
  labels.zipf_exponent = 0.4;
  labels.num_edge_labels = 3;
  const graph::Graph g = graph::ErdosRenyi(250, 900, labels, gen_rng);

  graph::QueryExtractor extractor(g);
  util::Rng rng(GetParam() * 31337 + 5);
  const graph::QueryGraph q = extractor.Extract(4, rng);
  if (q.num_nodes() != 4) GTEST_SKIP() << "extraction failed";

  BasicEngine basic(g);
  const auto truth = basic.ProjectPivot(q, MatchingEngine::Options());
  ASSERT_TRUE(truth.complete);
  ASSERT_FALSE(truth.pivot_matches.empty());

  const auto gs = signature::BuildSignatures(g, signature::Method::kMatrix,
                                             2, g.num_labels());
  const auto qs = signature::BuildSignatures(q, signature::Method::kMatrix,
                                             2, g.num_labels());
  const auto candidates = ExtractPivotCandidates(g, q);
  PsiEvaluator evaluator(g, gs);
  evaluator.BindQuery(q, qs, MakeHeuristicPlan(q, g, q.pivot()));
  EXPECT_EQ(EvaluateAll(evaluator, candidates, PsiMode::kOptimistic),
            truth.pivot_matches);
  EXPECT_EQ(EvaluateAll(evaluator, candidates, PsiMode::kPessimistic),
            truth.pivot_matches);

  TurboIsoEngine turbo(g);
  const auto turbo_psi = turbo.EvaluatePsi(q, MatchingEngine::Options());
  EXPECT_EQ(turbo_psi.valid_nodes, truth.pivot_matches);

  CflMatchEngine cfl(g);
  UllmannEngine ullmann(g);
  Vf2Engine vf2(g);
  EXPECT_EQ(cfl.ProjectPivot(q, MatchingEngine::Options()).pivot_matches,
            truth.pivot_matches);
  EXPECT_EQ(ullmann.ProjectPivot(q, MatchingEngine::Options()).pivot_matches,
            truth.pivot_matches);
  EXPECT_EQ(vf2.ProjectPivot(q, MatchingEngine::Options()).pivot_matches,
            truth.pivot_matches);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EdgeLabelExactnessTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

}  // namespace
}  // namespace psi::match
