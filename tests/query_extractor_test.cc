#include "graph/query_extractor.h"

#include <gtest/gtest.h>

#include "graph/graph_builder.h"
#include "match/plan.h"
#include "match/subgraph_enumerator.h"
#include "tests/test_fixtures.h"

namespace psi::graph {
namespace {

TEST(QueryExtractorTest, ExtractsRequestedSize) {
  const Graph g = testing::MakeRandomGraph(500, 1500, 4, 11);
  QueryExtractor extractor(g);
  util::Rng rng(1);
  for (const size_t size : {2u, 4u, 6u, 8u}) {
    const QueryGraph q = extractor.Extract(size, rng);
    EXPECT_EQ(q.num_nodes(), size);
  }
}

TEST(QueryExtractorTest, QueriesAreConnectedWithPivot) {
  const Graph g = testing::MakeRandomGraph(500, 1500, 4, 12);
  QueryExtractor extractor(g);
  util::Rng rng(2);
  for (int i = 0; i < 20; ++i) {
    const QueryGraph q = extractor.Extract(5, rng);
    ASSERT_EQ(q.num_nodes(), 5u);
    EXPECT_TRUE(q.IsConnected());
    EXPECT_TRUE(q.has_pivot());
    EXPECT_LT(q.pivot(), q.num_nodes());
  }
}

TEST(QueryExtractorTest, ExtractedQueryAlwaysHasAMatch) {
  // Induced subgraphs of the data graph must embed at least once.
  const Graph g = testing::MakeRandomGraph(200, 600, 3, 13);
  QueryExtractor extractor(g);
  util::Rng rng(3);
  match::SubgraphEnumerator enumerator(g);
  for (int i = 0; i < 10; ++i) {
    const QueryGraph q = extractor.Extract(4, rng);
    ASSERT_EQ(q.num_nodes(), 4u);
    const match::Plan plan = match::MakeHeuristicPlan(q, g, q.pivot());
    match::SubgraphEnumerator::Options options;
    options.max_embeddings = 1;
    const auto result = enumerator.Enumerate(q, plan, nullptr, options);
    EXPECT_GE(result.embedding_count, 1u) << q.ToString();
  }
}

TEST(QueryExtractorTest, SizeOneQuery) {
  const Graph g = testing::MakeFigure1Graph();
  QueryExtractor extractor(g);
  util::Rng rng(4);
  const QueryGraph q = extractor.Extract(1, rng);
  EXPECT_EQ(q.num_nodes(), 1u);
  EXPECT_TRUE(q.has_pivot());
}

TEST(QueryExtractorTest, ImpossibleSizeReturnsEmpty) {
  GraphBuilder b;
  b.AddNodes(3);  // no edges at all
  const Graph g = std::move(b).Build();
  QueryExtractor extractor(g);
  util::Rng rng(5);
  const QueryGraph q = extractor.Extract(2, rng);
  EXPECT_EQ(q.num_nodes(), 0u);
}

TEST(QueryExtractorTest, OversizedRequestReturnsEmpty) {
  const Graph g = testing::MakeFigure1Graph();
  QueryExtractor extractor(g);
  util::Rng rng(6);
  EXPECT_EQ(extractor.Extract(QueryGraph::kMaxNodes + 1, rng).num_nodes(),
            0u);
  EXPECT_EQ(extractor.Extract(0, rng).num_nodes(), 0u);
}

TEST(QueryExtractorTest, ExtractManyCount) {
  const Graph g = testing::MakeRandomGraph(300, 900, 3, 14);
  QueryExtractor extractor(g);
  util::Rng rng(7);
  const auto queries = extractor.ExtractMany(5, 25, rng);
  EXPECT_EQ(queries.size(), 25u);
  for (const auto& q : queries) EXPECT_EQ(q.num_nodes(), 5u);
}

TEST(QueryExtractorTest, DeterministicInSeed) {
  const Graph g = testing::MakeRandomGraph(300, 900, 3, 15);
  QueryExtractor extractor(g);
  util::Rng rng1(8);
  util::Rng rng2(8);
  const QueryGraph a = extractor.Extract(5, rng1);
  const QueryGraph b = extractor.Extract(5, rng2);
  EXPECT_EQ(a.ToString(), b.ToString());
}

}  // namespace
}  // namespace psi::graph
