// ShardedCatalog tests (DESIGN.md §13): K-shard generations publish
// atomically under one generation id, pins hold all K shard snapshots as a
// unit, and an injected catalog.shard_publish fault — which aborts a build
// MID-generation, after some shard snapshots already exist — rolls back
// completely: the old generation keeps serving and nothing torn is ever
// observable.

#include <memory>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "shard/sharded_catalog.h"
#include "tests/test_fixtures.h"
#include "util/fault_injection.h"

namespace psi::shard {
namespace {

ShardedCatalog::BuildOptions FastBuild(uint32_t shards) {
  ShardedCatalog::BuildOptions build;
  build.snapshot.signature_depth = 1;
  build.partition.num_shards = shards;
  return build;
}

class ShardedCatalogTest : public ::testing::Test {
 protected:
  void SetUp() override { util::FaultInjector::Global().DisarmAll(); }
  void TearDown() override { util::FaultInjector::Global().DisarmAll(); }
};

TEST_F(ShardedCatalogTest, PublishesOneGenerationWithKShards) {
  ShardedCatalog catalog;
  const auto published = catalog.BuildAndPublish(
      "g", psi::testing::MakeFigure1Graph(), FastBuild(3));
  ASSERT_TRUE(published.ok()) << published.status().ToString();
  const auto& generation = *published.value();
  EXPECT_EQ(generation.num_shards(), 3u);
  EXPECT_EQ(catalog.Resolve("g"), published.value());
  EXPECT_EQ(catalog.size(), 1u);
  EXPECT_EQ(catalog.counters().published, 1u);

  // Shard snapshots carry derived names and consecutive versions above the
  // generation id.
  std::set<uint64_t> versions;
  size_t total_owned = 0;
  for (size_t s = 0; s < generation.num_shards(); ++s) {
    EXPECT_EQ(generation.shard(s).name(),
              "g/shard" + std::to_string(s));
    EXPECT_EQ(generation.shard(s).version(), generation.generation() + 1 + s);
    versions.insert(generation.shard(s).version());
    total_owned += generation.meta().layouts[s].num_owned;
  }
  EXPECT_EQ(versions.size(), generation.num_shards());
  EXPECT_EQ(total_owned, generation.meta().num_nodes);
}

TEST_F(ShardedCatalogTest, ListDescribesPerShardRows) {
  ShardedCatalog catalog;
  ASSERT_TRUE(catalog
                  .BuildAndPublish("g", psi::testing::MakeFigure1Graph(),
                                   FastBuild(2))
                  .ok());
  const auto entries = catalog.List();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].name, "g/shard0");
  EXPECT_EQ(entries[1].name, "g/shard1");
  EXPECT_TRUE(entries[0].current);
  EXPECT_EQ(entries[0].pins, 0u);
}

TEST_F(ShardedCatalogTest, PinHoldsWholeGenerationAndDrains) {
  ShardedCatalog catalog;
  ASSERT_TRUE(catalog
                  .BuildAndPublish("g", psi::testing::MakeFigure1Graph(),
                                   FastBuild(2))
                  .ok());
  {
    const ShardedGenerationPin pin = catalog.Pin("g");
    ASSERT_TRUE(pin);
    EXPECT_EQ(pin->num_shards(), 2u);
    for (const auto& entry : catalog.List()) {
      EXPECT_EQ(entry.pins, 1u) << "a generation pin pins every shard";
    }
  }
  for (const auto& entry : catalog.List()) {
    EXPECT_EQ(entry.pins, 0u);
  }
  EXPECT_FALSE(catalog.Pin("missing"));
}

TEST_F(ShardedCatalogTest, SwapRetiresAndReleasesOldGeneration) {
  ShardedCatalog catalog;
  std::weak_ptr<const ShardedGeneration> old;
  {
    const auto first = catalog.BuildAndPublish(
        "g", psi::testing::MakeFigure1Graph(), FastBuild(2));
    ASSERT_TRUE(first.ok());
    old = first.value();
    const auto second = catalog.BuildAndPublish(
        "g", psi::testing::MakeFigure1Graph(), FastBuild(2));
    ASSERT_TRUE(second.ok());
    EXPECT_GT(second.value()->generation(), first.value()->generation());
    EXPECT_EQ(catalog.Resolve("g"), second.value());
    EXPECT_EQ(catalog.counters().swaps, 1u);
  }
  // The catalog holds the retired generation only weakly: with the local
  // strong refs gone, the whole K-shard generation is released.
  EXPECT_TRUE(old.expired());

  EXPECT_TRUE(catalog.Retire("g"));
  EXPECT_EQ(catalog.Resolve("g"), nullptr);
  EXPECT_FALSE(catalog.Retire("g"));
}

TEST_F(ShardedCatalogTest, AsyncPublishResolves) {
  ShardedCatalog catalog;
  auto future = catalog.BuildAndPublishAsync(
      "g", psi::testing::MakeRandomGraph(120, 360, 4, /*seed=*/5),
      FastBuild(4));
  const auto published = future.get();
  ASSERT_TRUE(published.ok()) << published.status().ToString();
  EXPECT_EQ(catalog.Resolve("g"), published.value());
}

#if PSI_FAULT_INJECTION_ENABLED
// The tentpole rollback proof: `nth:3` aborts the SECOND generation build
// while placing its third shard snapshot — two shard snapshots of the new
// generation already exist at that point. Atomicity means none of that is
// observable: the first generation keeps serving, pins taken across the
// failure stay valid, no counter drifts, and the name is never torn into
// a mix of generations.
TEST_F(ShardedCatalogTest, MidGenerationPublishFailureRollsBackAtomically) {
  ShardedCatalog catalog;
  const auto before = catalog.BuildAndPublish(
      "g", psi::testing::MakeFigure1Graph(), FastBuild(4));
  ASSERT_TRUE(before.ok()) << before.status().ToString();
  const ShardedGenerationPin pinned_across = catalog.Pin("g");

  {
    // First publish consumed no hits (armed after it); the replacement
    // build hits the site once per shard and dies on shard index 2.
    util::ScopedFaultSpec chaos("catalog.shard_publish=nth:3");
    const auto failed = catalog.BuildAndPublish(
        "g", psi::testing::MakeFigure1Graph(), FastBuild(4));
    ASSERT_FALSE(failed.ok());
    EXPECT_NE(failed.status().ToString().find("shard 2"), std::string::npos)
        << "abort happened mid-generation: " << failed.status().ToString();
  }

  // Nothing about the serving state moved.
  EXPECT_EQ(catalog.Resolve("g"), before.value());
  EXPECT_EQ(catalog.size(), 1u);
  EXPECT_EQ(catalog.counters().published, 1u);
  EXPECT_EQ(catalog.counters().swaps, 0u);
  EXPECT_EQ(catalog.counters().publish_failures, 1u);
  ASSERT_TRUE(pinned_across);
  EXPECT_EQ(pinned_across->generation(), before.value()->generation());
  const auto entries = catalog.List();
  ASSERT_EQ(entries.size(), 4u) << "no torn shard snapshots leaked into List";
  for (const auto& entry : entries) {
    EXPECT_TRUE(entry.current);
    EXPECT_LE(entry.version,
              before.value()->generation() + 4);
  }

  // The catalog still publishes cleanly afterwards; the aborted
  // reservation left a version gap, never a reuse.
  const auto after = catalog.BuildAndPublish(
      "g", psi::testing::MakeFigure1Graph(), FastBuild(4));
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_GT(after.value()->generation(), before.value()->generation());
  EXPECT_EQ(catalog.Resolve("g"), after.value());
  EXPECT_EQ(catalog.counters().swaps, 1u);
}
#endif  // PSI_FAULT_INJECTION_ENABLED

}  // namespace
}  // namespace psi::shard
