#include "core/query_context.h"

#include <gtest/gtest.h>

#include "tests/test_fixtures.h"

namespace psi::core {
namespace {

TEST(QueryContextTest, FeasibleQuery) {
  const graph::Graph g = psi::testing::MakeFigure1Graph();
  const auto gs = signature::BuildSignatures(
      g, signature::Method::kMatrix, 2, g.num_labels());
  const graph::QueryGraph q = psi::testing::MakeFigure1Query();
  const QueryContext ctx = PrepareQuery(g, gs, q);
  EXPECT_TRUE(ctx.feasible);
  EXPECT_EQ(ctx.candidates, (std::vector<graph::NodeId>{0, 5}));
  EXPECT_EQ(ctx.query_sigs.num_rows(), q.num_nodes());
  EXPECT_EQ(ctx.query_sigs.num_labels(), gs.num_labels());
  EXPECT_EQ(ctx.query_sigs.method(), gs.method());
}

TEST(QueryContextTest, UnknownLabelInfeasible) {
  const graph::Graph g = psi::testing::MakeFigure1Graph();
  const auto gs = signature::BuildSignatures(
      g, signature::Method::kExploration, 2, g.num_labels());
  graph::QueryGraph q;
  const graph::NodeId a = q.AddNode(psi::testing::kA);
  const graph::NodeId x = q.AddNode(77);  // label absent from g
  q.AddEdge(a, x);
  q.set_pivot(a);
  const QueryContext ctx = PrepareQuery(g, gs, q);
  EXPECT_FALSE(ctx.feasible);
  EXPECT_TRUE(ctx.candidates.empty());
}

TEST(QueryContextTest, SignatureMethodFollowsGraphSignatures) {
  const graph::Graph g = psi::testing::MakeFigure1Graph();
  const graph::QueryGraph q = psi::testing::MakeFigure1Query();
  for (const auto method :
       {signature::Method::kExploration, signature::Method::kMatrix}) {
    const auto gs = signature::BuildSignatures(g, method, 2, g.num_labels());
    const QueryContext ctx = PrepareQuery(g, gs, q);
    EXPECT_EQ(ctx.query_sigs.method(), method);
    EXPECT_EQ(ctx.query_sigs.depth(), 2u);
  }
}

}  // namespace
}  // namespace psi::core
