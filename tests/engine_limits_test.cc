// Deadline / stop-token / truncation behaviour across all enumeration
// engines, plus SearchStats aggregation semantics.

#include <gtest/gtest.h>

#include "graph/query_extractor.h"
#include "match/cfl_match.h"
#include "match/engine.h"
#include "match/psi_evaluator.h"
#include "match/subgraph_enumerator.h"
#include "match/turbo_iso.h"
#include "match/ullmann.h"
#include "match/vf2.h"
#include "tests/test_fixtures.h"

namespace psi::match {
namespace {

/// A query whose enumeration is large enough that every engine must hit
/// its periodic deadline poll.
graph::QueryGraph HeavyQuery() {
  graph::QueryGraph q;
  graph::NodeId prev = q.AddNode(0);
  q.set_pivot(prev);
  for (int i = 1; i < 5; ++i) {
    const graph::NodeId next = q.AddNode(0);
    q.AddEdge(prev, next);
    prev = next;
  }
  return q;
}

class EngineLimitsTest : public ::testing::Test {
 protected:
  EngineLimitsTest()
      : g_(psi::testing::MakeRandomGraph(500, 3500, 2, 71)),
        q_(HeavyQuery()) {}

  graph::Graph g_;
  graph::QueryGraph q_;
};

template <typename Engine>
void ExpectDeadlineCensors(const graph::Graph& g,
                           const graph::QueryGraph& q) {
  Engine engine(g);
  MatchingEngine::Options options;
  options.deadline = util::Deadline::After(-1.0);
  const auto result = engine.Enumerate(q, nullptr, options);
  EXPECT_FALSE(result.complete);
}

TEST_F(EngineLimitsTest, BasicDeadline) {
  ExpectDeadlineCensors<BasicEngine>(g_, q_);
}
TEST_F(EngineLimitsTest, TurboIsoDeadline) {
  ExpectDeadlineCensors<TurboIsoEngine>(g_, q_);
}
TEST_F(EngineLimitsTest, CflMatchDeadline) {
  ExpectDeadlineCensors<CflMatchEngine>(g_, q_);
}
TEST_F(EngineLimitsTest, UllmannDeadline) {
  ExpectDeadlineCensors<UllmannEngine>(g_, q_);
}
TEST_F(EngineLimitsTest, Vf2Deadline) {
  ExpectDeadlineCensors<Vf2Engine>(g_, q_);
}

TEST_F(EngineLimitsTest, TurboIsoPlusDeadline) {
  TurboIsoEngine engine(g_);
  MatchingEngine::Options options;
  options.deadline = util::Deadline::After(-1.0);
  const auto psi = engine.EvaluatePsi(q_, options);
  EXPECT_FALSE(psi.complete);
}

template <typename Engine>
void ExpectMaxEmbeddingsTruncates(const graph::Graph& g,
                                  const graph::QueryGraph& q) {
  Engine engine(g);
  MatchingEngine::Options options;
  options.max_embeddings = 5;
  const auto result = engine.Enumerate(q, nullptr, options);
  EXPECT_EQ(result.embedding_count, 5u);
  EXPECT_FALSE(result.complete);
}

TEST_F(EngineLimitsTest, MaxEmbeddingsAcrossEngines) {
  ExpectMaxEmbeddingsTruncates<BasicEngine>(g_, q_);
  ExpectMaxEmbeddingsTruncates<TurboIsoEngine>(g_, q_);
  ExpectMaxEmbeddingsTruncates<CflMatchEngine>(g_, q_);
  ExpectMaxEmbeddingsTruncates<UllmannEngine>(g_, q_);
  ExpectMaxEmbeddingsTruncates<Vf2Engine>(g_, q_);
}

// Restart budgets interact with deadlines but never with truthfulness
// (DESIGN.md §14): without a deadline the final unbudgeted run completes
// the enumeration exactly; with an expired deadline the run is censored
// as a timeout, and the restart loop must not re-launch past it.
TEST_F(EngineLimitsTest, RestartBudgetsKeepCompleteFlagTruthful) {
  SubgraphEnumerator enumerator(g_);
  const Plan plan = MakeHeuristicPlan(q_, g_, q_.pivot());

  SubgraphEnumerator::Options plain;
  const auto expected = enumerator.ProjectPivot(q_, plan, plain);
  ASSERT_TRUE(expected.complete);

  SubgraphEnumerator::Options restarting;
  restarting.restarts.enabled = true;
  restarting.restarts.unit_nodes = 1;  // every budgeted run exhausts
  restarting.restarts.max_restarts = 3;
  SearchStats stats;
  const auto exact = enumerator.ProjectPivot(q_, plan, restarting, &stats);
  EXPECT_TRUE(exact.complete);
  EXPECT_EQ(exact.pivot_matches, expected.pivot_matches);
  EXPECT_EQ(stats.restarts, restarting.restarts.max_restarts);

  SubgraphEnumerator::Options doomed = restarting;
  doomed.deadline = util::Deadline::After(-1.0);
  const auto censored = enumerator.ProjectPivot(q_, plan, doomed);
  EXPECT_FALSE(censored.complete);
}

TEST_F(EngineLimitsTest, StopTokenCancelsEnumeration) {
  util::StopSource source;
  source.RequestStop();
  BasicEngine engine(g_);
  MatchingEngine::Options options;
  options.stop = util::StopToken(&source);
  const auto result = engine.Enumerate(q_, nullptr, options);
  EXPECT_FALSE(result.complete);
}

TEST(SearchStatsTest, AggregationSumsAllCounters) {
  SearchStats a;
  a.recursive_calls = 1;
  a.candidates_examined = 2;
  a.signature_checks = 3;
  a.pruned_by_signature = 4;
  a.score_sorts = 5;
  a.embeddings_found = 6;
  a.restarts = 7;
  a.nogoods_recorded = 8;
  a.nogood_hits = 9;
  a.work_steals = 10;
  SearchStats b = a;
  b += a;
  EXPECT_EQ(b.recursive_calls, 2u);
  EXPECT_EQ(b.candidates_examined, 4u);
  EXPECT_EQ(b.signature_checks, 6u);
  EXPECT_EQ(b.pruned_by_signature, 8u);
  EXPECT_EQ(b.score_sorts, 10u);
  EXPECT_EQ(b.embeddings_found, 12u);
  EXPECT_EQ(b.restarts, 14u);
  EXPECT_EQ(b.nogoods_recorded, 16u);
  EXPECT_EQ(b.nogood_hits, 18u);
  EXPECT_EQ(b.work_steals, 20u);
}

TEST(OutcomeTest, Names) {
  EXPECT_STREQ(OutcomeName(Outcome::kValid), "valid");
  EXPECT_STREQ(OutcomeName(Outcome::kInvalid), "invalid");
  EXPECT_STREQ(OutcomeName(Outcome::kTimeout), "timeout");
  EXPECT_STREQ(OutcomeName(Outcome::kStopped), "stopped");
  EXPECT_STREQ(OutcomeName(Outcome::kBudgetExhausted), "budget-exhausted");
  EXPECT_STREQ(PsiModeName(PsiMode::kOptimistic), "optimistic");
  EXPECT_STREQ(PsiModeName(PsiMode::kSuperOptimistic), "super-optimistic");
  EXPECT_STREQ(PsiModeName(PsiMode::kPessimistic), "pessimistic");
}

}  // namespace
}  // namespace psi::match
