#include <memory>
#include <tuple>

#include <gtest/gtest.h>

#include "match/cfl_match.h"
#include "match/engine.h"
#include "match/turbo_iso.h"
#include "match/ullmann.h"
#include "match/vf2.h"
#include "graph/query_extractor.h"
#include "tests/test_fixtures.h"

namespace psi::match {
namespace {

TEST(TurboIsoTest, Figure1TriangleCount) {
  const graph::Graph g = psi::testing::MakeFigure1Graph();
  const graph::QueryGraph q = psi::testing::MakeFigure1Query();
  TurboIsoEngine engine(g);
  const auto result =
      engine.Enumerate(q, nullptr, MatchingEngine::Options());
  EXPECT_EQ(result.embedding_count, 5u);
  EXPECT_TRUE(result.complete);
}

TEST(TurboIsoTest, ProjectPivotMatchesPaper) {
  const graph::Graph g = psi::testing::MakeFigure1Graph();
  const graph::QueryGraph q = psi::testing::MakeFigure1Query();
  TurboIsoEngine engine(g);
  const auto projection = engine.ProjectPivot(q, MatchingEngine::Options());
  EXPECT_EQ(projection.pivot_matches, (std::vector<graph::NodeId>{0, 5}));
}

TEST(TurboIsoPlusTest, EvaluatePsiMatchesPaperWithoutFullEnumeration) {
  const graph::Graph g = psi::testing::MakeFigure1Graph();
  const graph::QueryGraph q = psi::testing::MakeFigure1Query();
  TurboIsoEngine engine(g);
  SearchStats stats;
  const auto psi =
      engine.EvaluatePsi(q, MatchingEngine::Options(), &stats);
  EXPECT_EQ(psi.valid_nodes, (std::vector<graph::NodeId>{0, 5}));
  EXPECT_TRUE(psi.complete);
  // TurboIso+ stops at the first embedding per candidate: it must find at
  // most one embedding per valid node.
  EXPECT_LE(stats.embeddings_found, 2u);
}

TEST(CflMatchTest, Figure1TriangleCount) {
  const graph::Graph g = psi::testing::MakeFigure1Graph();
  const graph::QueryGraph q = psi::testing::MakeFigure1Query();
  CflMatchEngine engine(g);
  const auto result =
      engine.Enumerate(q, nullptr, MatchingEngine::Options());
  EXPECT_EQ(result.embedding_count, 5u);
}

TEST(CflMatchTest, TwoCoreOfTriangleWithTail) {
  // Triangle 0-1-2 with tail 2-3: core = {0,1,2}.
  graph::QueryGraph q;
  for (int i = 0; i < 4; ++i) q.AddNode(0);
  q.AddEdge(0, 1);
  q.AddEdge(1, 2);
  q.AddEdge(0, 2);
  q.AddEdge(2, 3);
  EXPECT_EQ(TwoCoreMask(q), 0b0111ULL);
}

TEST(CflMatchTest, TwoCoreOfTreeIsEmpty) {
  graph::QueryGraph q;
  for (int i = 0; i < 4; ++i) q.AddNode(0);
  q.AddEdge(0, 1);
  q.AddEdge(1, 2);
  q.AddEdge(1, 3);
  EXPECT_EQ(TwoCoreMask(q), 0ULL);
}

TEST(UllmannTest, Figure1TriangleCount) {
  const graph::Graph g = psi::testing::MakeFigure1Graph();
  const graph::QueryGraph q = psi::testing::MakeFigure1Query();
  UllmannEngine engine(g);
  const auto result =
      engine.Enumerate(q, nullptr, MatchingEngine::Options());
  EXPECT_EQ(result.embedding_count, 5u);
  EXPECT_TRUE(result.complete);
}

TEST(UllmannTest, ProjectPivotMatchesPaper) {
  const graph::Graph g = psi::testing::MakeFigure1Graph();
  const graph::QueryGraph q = psi::testing::MakeFigure1Query();
  UllmannEngine engine(g);
  const auto projection = engine.ProjectPivot(q, MatchingEngine::Options());
  EXPECT_EQ(projection.pivot_matches, (std::vector<graph::NodeId>{0, 5}));
}

TEST(Vf2Test, Figure1TriangleCount) {
  const graph::Graph g = psi::testing::MakeFigure1Graph();
  const graph::QueryGraph q = psi::testing::MakeFigure1Query();
  Vf2Engine engine(g);
  const auto result =
      engine.Enumerate(q, nullptr, MatchingEngine::Options());
  EXPECT_EQ(result.embedding_count, 5u);
  EXPECT_TRUE(result.complete);
}

TEST(Vf2Test, MaxEmbeddingsTruncates) {
  const graph::Graph g = psi::testing::MakeFigure1Graph();
  const graph::QueryGraph q = psi::testing::MakeFigure1Query();
  Vf2Engine engine(g);
  MatchingEngine::Options options;
  options.max_embeddings = 2;
  const auto result = engine.Enumerate(q, nullptr, options);
  EXPECT_EQ(result.embedding_count, 2u);
  EXPECT_FALSE(result.complete);
}

TEST(Vf2Test, SingleNodeQuery) {
  const graph::Graph g = psi::testing::MakeFigure1Graph();
  graph::QueryGraph q;
  q.AddNode(psi::testing::kB);
  q.set_pivot(0);
  Vf2Engine engine(g);
  const auto result =
      engine.Enumerate(q, nullptr, MatchingEngine::Options());
  EXPECT_EQ(result.embedding_count, 2u);  // u2, u5
}

TEST(BasicEngineTest, Figure1TriangleCount) {
  const graph::Graph g = psi::testing::MakeFigure1Graph();
  const graph::QueryGraph q = psi::testing::MakeFigure1Query();
  BasicEngine engine(g);
  const auto result =
      engine.Enumerate(q, nullptr, MatchingEngine::Options());
  EXPECT_EQ(result.embedding_count, 5u);
}

TEST(EnginesTest, DisconnectedQueryHasNoEmbeddings) {
  const graph::Graph g = psi::testing::MakeFigure1Graph();
  graph::QueryGraph q;
  q.AddNode(psi::testing::kA);
  q.AddNode(psi::testing::kB);  // no edge
  q.set_pivot(0);
  TurboIsoEngine turbo(g);
  CflMatchEngine cfl(g);
  EXPECT_EQ(turbo.Enumerate(q, nullptr, MatchingEngine::Options())
                .embedding_count,
            0u);
  EXPECT_EQ(
      cfl.Enumerate(q, nullptr, MatchingEngine::Options()).embedding_count,
      0u);
}

// ---------------------------------------------------------------------------
// Cross-engine property: all engines count the same number of embeddings on
// random graphs and random queries.
// ---------------------------------------------------------------------------
class EngineAgreementTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, size_t>> {};

TEST_P(EngineAgreementTest, AllEnginesCountTheSameEmbeddings) {
  const auto [seed, query_size] = GetParam();
  const graph::Graph g = psi::testing::MakeRandomGraph(250, 700, 4, seed);
  graph::QueryExtractor extractor(g);
  util::Rng rng(seed * 1000 + 17);
  const graph::QueryGraph q = extractor.Extract(query_size, rng);
  if (q.num_nodes() != query_size) GTEST_SKIP() << "extraction failed";

  BasicEngine basic(g);
  TurboIsoEngine turbo(g);
  CflMatchEngine cfl(g);
  UllmannEngine ullmann(g);
  Vf2Engine vf2(g);
  MatchingEngine::Options options;
  options.max_embeddings = 2'000'000;

  const auto basic_count =
      basic.Enumerate(q, nullptr, options).embedding_count;
  const auto turbo_count =
      turbo.Enumerate(q, nullptr, options).embedding_count;
  const auto cfl_count = cfl.Enumerate(q, nullptr, options).embedding_count;
  const auto ullmann_count =
      ullmann.Enumerate(q, nullptr, options).embedding_count;
  const auto vf2_count = vf2.Enumerate(q, nullptr, options).embedding_count;
  EXPECT_EQ(basic_count, turbo_count) << q.ToString();
  EXPECT_EQ(basic_count, cfl_count) << q.ToString();
  EXPECT_EQ(basic_count, ullmann_count) << q.ToString();
  EXPECT_EQ(basic_count, vf2_count) << q.ToString();
  EXPECT_GE(basic_count, 1u);  // induced query always embeds
}

TEST_P(EngineAgreementTest, TurboIsoPlusMatchesProjection) {
  const auto [seed, query_size] = GetParam();
  const graph::Graph g = psi::testing::MakeRandomGraph(250, 700, 4, seed);
  graph::QueryExtractor extractor(g);
  util::Rng rng(seed * 2000 + 29);
  const graph::QueryGraph q = extractor.Extract(query_size, rng);
  if (q.num_nodes() != query_size) GTEST_SKIP() << "extraction failed";

  BasicEngine basic(g);
  TurboIsoEngine turbo(g);
  const auto projection = basic.ProjectPivot(q, MatchingEngine::Options());
  const auto psi = turbo.EvaluatePsi(q, MatchingEngine::Options());
  ASSERT_TRUE(projection.complete);
  ASSERT_TRUE(psi.complete);
  EXPECT_EQ(psi.valid_nodes, projection.pivot_matches) << q.ToString();
}

INSTANTIATE_TEST_SUITE_P(
    RandomGraphs, EngineAgreementTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 6),
                       ::testing::Values(3, 4, 5)));

}  // namespace
}  // namespace psi::match
