// Differential correctness harness (DESIGN.md §11): every evaluation path
// in the repository — the Realist (SmartPSI), both pure single-method
// drivers, and all four enumeration engines — must produce the exact pivot
// set that brute-force enumerate-and-project produces, on the same inputs.
// Each comparison then runs again under the standard chaos schedule: an
// injected fault may change counters and latency, never the answer. In
// injection-OFF builds the chaos pass degenerates to a repeat run, which
// keeps the suite meaningful in both configurations.

#include <cstddef>
#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "core/pure_drivers.h"
#include "core/smart_psi.h"
#include "match/cfl_match.h"
#include "match/engine.h"
#include "match/turbo_iso.h"
#include "match/ullmann.h"
#include "match/vf2.h"
#include "signature/builders.h"
#include "tests/test_fixtures.h"
#include "util/fault_injection.h"

namespace psi {
namespace {

using DifferentialParam = std::tuple<uint64_t /*seed*/, size_t /*query size*/>;

class DifferentialTest : public ::testing::TestWithParam<DifferentialParam> {
 protected:
  void SetUp() override { util::FaultInjector::Global().DisarmAll(); }
  void TearDown() override { util::FaultInjector::Global().DisarmAll(); }
};

/// One full sweep: evaluates `q` on `g` through every path and checks each
/// against the brute-force oracle. `context` labels the pass (bare/chaos).
void ExpectAllPathsMatchOracle(const graph::Graph& g,
                               const graph::QueryGraph& q,
                               uint64_t seed, const std::string& context) {
  SCOPED_TRACE(context);

  match::BasicEngine basic(g);
  const auto truth = basic.ProjectPivot(q, match::MatchingEngine::Options());
  ASSERT_TRUE(truth.complete);
  const std::vector<graph::NodeId>& oracle = truth.pivot_matches;

  // The Realist, with the ML pipeline forced on so the models, the plan
  // pool, the preemptive executor and the prediction cache all execute.
  core::SmartPsiConfig config;
  config.min_candidates_for_ml = 4;
  config.seed = seed;
  core::SmartPsiEngine smart(g, config);
  const core::PsiQueryResult smart_result = smart.Evaluate(q);
  ASSERT_TRUE(smart_result.complete);
  EXPECT_EQ(smart_result.valid_nodes, oracle) << "smart";

  // The Realist again with Luby restarts on the pessimistic search paths
  // (DESIGN.md §14): the final unbudgeted run makes answers exact, so the
  // pivot set must not move.
  core::SmartPsiConfig restart_config = config;
  restart_config.restarts.enabled = true;
  restart_config.restarts.unit_nodes = 8;  // tiny: force restart boundaries
  restart_config.restarts.max_restarts = 4;
  core::SmartPsiEngine smart_restarting(g, restart_config);
  const core::PsiQueryResult smart_restart_result =
      smart_restarting.Evaluate(q);
  ASSERT_TRUE(smart_restart_result.complete);
  EXPECT_EQ(smart_restart_result.valid_nodes, oracle) << "smart-restarts";

  // Both pure single-method drivers.
  const auto gs = signature::BuildSignatures(
      g, signature::Method::kMatrix, 2, g.num_labels());
  for (const core::PureStrategy strategy :
       {core::PureStrategy::kOptimistic, core::PureStrategy::kPessimistic}) {
    core::PureDriverOptions pure;
    pure.strategy = strategy;
    const core::PureDriverResult result = core::EvaluatePure(g, gs, q, pure);
    ASSERT_TRUE(result.complete);
    EXPECT_EQ(result.valid_nodes, oracle)
        << (strategy == core::PureStrategy::kOptimistic ? "optimistic"
                                                        : "pessimistic");
  }

  // The pessimistic driver through the search-core upgrades: restarts,
  // work-stealing parallel search, and both at once. Complete runs are
  // bit-identical to the oracle regardless of thread count or schedule.
  struct SearchCoreConfig {
    const char* name;
    size_t threads;
    bool restarts;
  };
  for (const SearchCoreConfig& variant :
       {SearchCoreConfig{"pessimistic-restarts", 1, true},
        SearchCoreConfig{"pessimistic-parallel2", 2, false},
        SearchCoreConfig{"pessimistic-parallel4", 4, false},
        SearchCoreConfig{"pessimistic-parallel-restarts", 3, true}}) {
    core::PureDriverOptions pure;
    pure.strategy = core::PureStrategy::kPessimistic;
    pure.search_threads = variant.threads;
    pure.restarts.enabled = variant.restarts;
    pure.restarts.unit_nodes = 8;
    pure.restarts.max_restarts = 4;
    pure.nogood_salt = seed;
    const core::PureDriverResult result = core::EvaluatePure(g, gs, q, pure);
    ASSERT_TRUE(result.complete) << variant.name;
    EXPECT_EQ(result.valid_nodes, oracle) << variant.name;
  }

  // Every enumeration engine, via pivot projection.
  match::TurboIsoEngine turbo(g);
  EXPECT_EQ(
      turbo.ProjectPivot(q, match::MatchingEngine::Options()).pivot_matches,
      oracle)
      << "turboiso";
  EXPECT_EQ(turbo.EvaluatePsi(q, match::MatchingEngine::Options()).valid_nodes,
            oracle)
      << "turboiso-psi";
  match::CflMatchEngine cfl(g);
  EXPECT_EQ(cfl.ProjectPivot(q, match::MatchingEngine::Options()).pivot_matches,
            oracle)
      << "cfl";
  match::UllmannEngine ullmann(g);
  EXPECT_EQ(
      ullmann.ProjectPivot(q, match::MatchingEngine::Options()).pivot_matches,
      oracle)
      << "ullmann";
  match::Vf2Engine vf2(g);
  EXPECT_EQ(vf2.ProjectPivot(q, match::MatchingEngine::Options()).pivot_matches,
            oracle)
      << "vf2";
}

TEST_P(DifferentialTest, EveryPathMatchesBruteForceWithAndWithoutFaults) {
  const auto [base_seed, query_size] = GetParam();
  const uint64_t seed = psi::testing::TestSeed(base_seed, query_size);
  PSI_LOG_TEST_SEED(seed);

  const graph::Graph g = psi::testing::MakeRandomGraph(220, 700, 3, seed);
  const graph::QueryGraph q =
      psi::testing::ExtractQuery(g, query_size, seed * 7919 + 3);
  if (q.num_nodes() != query_size) GTEST_SKIP() << "extraction failed";

  ExpectAllPathsMatchOracle(g, q, seed, "bare");
  {
    util::ScopedFaultSpec chaos(psi::testing::MakeChaosSchedule());
    ExpectAllPathsMatchOracle(g, q, seed, "chaos");
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomGraphs, DifferentialTest,
    ::testing::Combine(::testing::Values(11, 23, 37, 41, 53),
                       ::testing::Values(3, 4, 5)));

// Determinism of the parallel search (DESIGN.md §14): the work-stealing
// schedule varies run to run, but per-candidate work is schedule-independent
// and the merge is canonical, so every thread count must return the exact
// byte sequence the sequential driver returns — including with restarts
// layered on top.
TEST_P(DifferentialTest, ParallelSearchIsBitIdenticalToSequential) {
  const auto [base_seed, query_size] = GetParam();
  const uint64_t seed = psi::testing::TestSeed(base_seed, query_size);
  PSI_LOG_TEST_SEED(seed);

  const graph::Graph g = psi::testing::MakeRandomGraph(220, 700, 3, seed);
  const graph::QueryGraph q =
      psi::testing::ExtractQuery(g, query_size, seed * 7919 + 3);
  if (q.num_nodes() != query_size) GTEST_SKIP() << "extraction failed";
  const auto gs = signature::BuildSignatures(
      g, signature::Method::kMatrix, 2, g.num_labels());

  for (const bool restarts : {false, true}) {
    core::PureDriverOptions sequential;
    sequential.strategy = core::PureStrategy::kPessimistic;
    sequential.restarts.enabled = restarts;
    sequential.restarts.unit_nodes = 8;
    sequential.nogood_salt = seed;
    const auto reference = core::EvaluatePure(g, gs, q, sequential);
    ASSERT_TRUE(reference.complete);

    for (const size_t threads : {2u, 3u, 4u, 8u}) {
      core::PureDriverOptions parallel = sequential;
      parallel.search_threads = threads;
      // Two runs per config: schedule jitter across repeats must not show.
      for (int repeat = 0; repeat < 2; ++repeat) {
        const auto result = core::EvaluatePure(g, gs, q, parallel);
        ASSERT_TRUE(result.complete);
        EXPECT_EQ(result.valid_nodes, reference.valid_nodes)
            << "threads=" << threads << " restarts=" << restarts
            << " repeat=" << repeat;
      }
    }
  }
}

// Compact quantized signatures (DESIGN.md §16.1) are an acceleration
// cache, never a semantics change: the pure drivers with a compact
// companion attached must return byte-identical pivot sets to the same
// drivers on the float-only matrix, bare and under the chaos schedule.
TEST_P(DifferentialTest, CompactPrescreenLeavesPureDriverAnswersUnchanged) {
  const auto [base_seed, query_size] = GetParam();
  const uint64_t seed = psi::testing::TestSeed(base_seed, query_size * 977);
  PSI_LOG_TEST_SEED(seed);

  const graph::Graph g = psi::testing::MakeRandomGraph(220, 700, 3, seed);
  const graph::QueryGraph q =
      psi::testing::ExtractQuery(g, query_size, seed * 7919 + 3);
  if (q.num_nodes() != query_size) GTEST_SKIP() << "extraction failed";

  for (const auto method :
       {signature::Method::kExploration, signature::Method::kMatrix}) {
    signature::SignatureMatrix with_compact =
        signature::BuildSignatures(g, method, 2, g.num_labels());
    const signature::SignatureMatrix float_only = with_compact;
    with_compact.BuildCompact();
    ASSERT_NE(with_compact.compact(), nullptr);

    const auto sweep = [&](const std::string& context) {
      SCOPED_TRACE(context);
      for (const core::PureStrategy strategy :
           {core::PureStrategy::kOptimistic,
            core::PureStrategy::kPessimistic}) {
        core::PureDriverOptions pure;
        pure.strategy = strategy;
        const auto expected = core::EvaluatePure(g, float_only, q, pure);
        const auto actual = core::EvaluatePure(g, with_compact, q, pure);
        ASSERT_TRUE(expected.complete);
        ASSERT_TRUE(actual.complete);
        EXPECT_EQ(actual.valid_nodes, expected.valid_nodes)
            << "method " << static_cast<int>(method) << " strategy "
            << static_cast<int>(strategy);
      }
    };
    sweep("bare");
    {
      util::ScopedFaultSpec chaos(psi::testing::MakeChaosSchedule());
      sweep("chaos");
    }
  }
}

// The paper's running example, pinned: no skip path, every engine, chaos on
// top. If the randomized sweep ever regresses silently (extraction skips),
// this one still bites.
TEST_F(DifferentialTest, Figure1AgreesEverywhereUnderChaos) {
  const graph::Graph g = psi::testing::MakeFigure1Graph();
  const graph::QueryGraph q = psi::testing::MakeFigure1Query();
  ExpectAllPathsMatchOracle(g, q, /*seed=*/1, "bare");
  util::ScopedFaultSpec chaos(psi::testing::MakeChaosSchedule());
  ExpectAllPathsMatchOracle(g, q, /*seed=*/1, "chaos");

  match::BasicEngine basic(g);
  EXPECT_EQ(basic.ProjectPivot(q, match::MatchingEngine::Options())
                .pivot_matches,
            (std::vector<graph::NodeId>{0, 5}));
}

}  // namespace
}  // namespace psi
