#include "match/psi_evaluator.h"

#include <gtest/gtest.h>

#include "match/candidates.h"
#include "signature/builders.h"
#include "tests/test_fixtures.h"

namespace psi::match {
namespace {

class PsiEvaluatorFigure1Test
    : public ::testing::TestWithParam<signature::Method> {
 protected:
  PsiEvaluatorFigure1Test()
      : g_(psi::testing::MakeFigure1Graph()),
        q_(psi::testing::MakeFigure1Query()),
        gs_(signature::BuildSignatures(g_, GetParam(), 2, g_.num_labels())),
        qs_(signature::BuildSignatures(q_, GetParam(), 2, g_.num_labels())),
        plan_(MakeHeuristicPlan(q_, g_, q_.pivot())) {}

  graph::Graph g_;
  graph::QueryGraph q_;
  signature::SignatureMatrix gs_;
  signature::SignatureMatrix qs_;
  Plan plan_;
};

TEST_P(PsiEvaluatorFigure1Test, AllModesAgreeOnPaperAnswer) {
  // The paper's Figure 1: valid pivot bindings are u1 (=0) and u6 (=5).
  PsiEvaluator evaluator(g_, gs_);
  evaluator.BindQuery(q_, qs_, plan_);
  for (const PsiMode mode :
       {PsiMode::kOptimistic, PsiMode::kPessimistic}) {
    PsiEvaluator::Options options;
    options.mode = mode;
    for (graph::NodeId u = 0; u < g_.num_nodes(); ++u) {
      const Outcome outcome = evaluator.EvaluateNode(u, options);
      const bool expected_valid = u == 0 || u == 5;
      EXPECT_EQ(outcome == Outcome::kValid, expected_valid)
          << PsiModeName(mode) << " node " << u;
    }
  }
}

TEST_P(PsiEvaluatorFigure1Test, OptimisticStrategyAgrees) {
  PsiEvaluator evaluator(g_, gs_);
  evaluator.BindQuery(q_, qs_, plan_);
  PsiEvaluator::Options options;
  for (graph::NodeId u = 0; u < g_.num_nodes(); ++u) {
    const Outcome outcome =
        evaluator.EvaluateNodeOptimisticStrategy(u, options);
    EXPECT_EQ(outcome == Outcome::kValid, u == 0 || u == 5) << u;
  }
}

TEST_P(PsiEvaluatorFigure1Test, WrongLabelRejectedImmediately) {
  PsiEvaluator evaluator(g_, gs_);
  evaluator.BindQuery(q_, qs_, plan_);
  PsiEvaluator::Options options;
  SearchStats stats;
  // u2 (=1) has label B, pivot wants A: no recursion should happen.
  EXPECT_EQ(evaluator.EvaluateNode(1, options, &stats), Outcome::kInvalid);
  EXPECT_EQ(stats.recursive_calls, 0u);
}

TEST_P(PsiEvaluatorFigure1Test, PessimistCountsSignatureChecks) {
  PsiEvaluator evaluator(g_, gs_);
  evaluator.BindQuery(q_, qs_, plan_);
  PsiEvaluator::Options options;
  options.mode = PsiMode::kPessimistic;
  SearchStats stats;
  evaluator.EvaluateNode(0, options, &stats);
  EXPECT_GT(stats.signature_checks, 0u);
}

TEST_P(PsiEvaluatorFigure1Test, OptimistCountsSorts) {
  PsiEvaluator evaluator(g_, gs_);
  evaluator.BindQuery(q_, qs_, plan_);
  PsiEvaluator::Options options;
  options.mode = PsiMode::kOptimistic;
  SearchStats stats;
  evaluator.EvaluateNode(0, options, &stats);
  EXPECT_GT(stats.score_sorts, 0u);
}

INSTANTIATE_TEST_SUITE_P(Methods, PsiEvaluatorFigure1Test,
                         ::testing::Values(signature::Method::kExploration,
                                           signature::Method::kMatrix));

TEST(PsiEvaluatorTest, SuperOptimisticLimitIsApplied) {
  // A star graph where the pivot's neighbor has many candidates; the
  // super-optimistic search must examine at most `limit` children per
  // level. We verify it returns kInvalid (truncated, inconclusive) when
  // the only completing candidate is outside the cap, while the full
  // optimistic search finds it.
  graph::GraphBuilder b;
  const graph::NodeId center = b.AddNode(0);  // pivot candidate, label 0
  // 30 label-1 neighbors, each padded to degree 2 with a label-3 dummy so
  // the degree filter keeps all of them; only the last one also has a
  // label-2 neighbor.
  std::vector<graph::NodeId> mids;
  for (int i = 0; i < 30; ++i) mids.push_back(b.AddNode(1));
  for (const graph::NodeId m : mids) {
    b.AddEdge(center, m);
    b.AddEdge(m, b.AddNode(3));
  }
  const graph::NodeId leaf = b.AddNode(2);
  b.AddEdge(mids.back(), leaf);
  const graph::Graph g = std::move(b).Build();

  graph::QueryGraph q;
  const graph::NodeId p = q.AddNode(0);
  const graph::NodeId m = q.AddNode(1);
  const graph::NodeId l = q.AddNode(2);
  q.AddEdge(p, m);
  q.AddEdge(m, l);
  q.set_pivot(p);

  // Depth-0 signatures: all mid nodes have identical signatures, so score
  // sorting cannot rescue the truncated search.
  const auto gs =
      signature::BuildSignatures(g, signature::Method::kMatrix, 0, 4);
  const auto qs =
      signature::BuildSignatures(q, signature::Method::kMatrix, 0, 4);
  const Plan plan = MakeHeuristicPlan(q, g, p);

  PsiEvaluator evaluator(g, gs);
  evaluator.BindQuery(q, qs, plan);

  PsiEvaluator::Options super;
  super.mode = PsiMode::kSuperOptimistic;
  super.super_optimistic_limit = 5;
  EXPECT_EQ(evaluator.EvaluateNode(center, super), Outcome::kInvalid);

  PsiEvaluator::Options full;
  full.mode = PsiMode::kOptimistic;
  EXPECT_EQ(evaluator.EvaluateNode(center, full), Outcome::kValid);

  // The combined strategy must still be exact.
  PsiEvaluator::Options strategy;
  strategy.super_optimistic_limit = 5;
  EXPECT_EQ(evaluator.EvaluateNodeOptimisticStrategy(center, strategy),
            Outcome::kValid);
}

TEST(PsiEvaluatorTest, ExpiredDeadlineReportsTimeout) {
  const graph::Graph g = psi::testing::MakeRandomGraph(200, 800, 2, 5);
  graph::QueryGraph q;
  const graph::NodeId a = q.AddNode(0);
  const graph::NodeId c = q.AddNode(1);
  const graph::NodeId d = q.AddNode(0);
  q.AddEdge(a, c);
  q.AddEdge(c, d);
  q.set_pivot(a);

  const auto gs = signature::BuildSignatures(
      g, signature::Method::kMatrix, 2, g.num_labels());
  const auto qs = signature::BuildSignatures(
      q, signature::Method::kMatrix, 2, g.num_labels());
  PsiEvaluator evaluator(g, gs);
  evaluator.BindQuery(q, qs, MakeHeuristicPlan(q, g, a));

  PsiEvaluator::Options options;
  options.mode = PsiMode::kPessimistic;
  options.deadline = util::Deadline::After(-1.0);  // already expired
  const auto candidates = ExtractPivotCandidates(g, q);
  ASSERT_FALSE(candidates.empty());
  // With an expired deadline, no decisive answer may be fabricated unless
  // it was decided before the first poll (label/degree rejection).
  const Outcome outcome = evaluator.EvaluateNode(candidates[0], options);
  EXPECT_TRUE(outcome == Outcome::kTimeout || outcome == Outcome::kInvalid ||
              outcome == Outcome::kValid);
}

TEST(PsiEvaluatorTest, StopTokenCancels) {
  const graph::Graph g = psi::testing::MakeRandomGraph(500, 3000, 2, 6);
  graph::QueryGraph q;
  graph::NodeId prev = q.AddNode(0);
  q.set_pivot(prev);
  for (int i = 0; i < 4; ++i) {
    const graph::NodeId next = q.AddNode(i % 2);
    q.AddEdge(prev, next);
    prev = next;
  }
  const auto gs = signature::BuildSignatures(
      g, signature::Method::kMatrix, 2, g.num_labels());
  const auto qs = signature::BuildSignatures(
      q, signature::Method::kMatrix, 2, g.num_labels());
  PsiEvaluator evaluator(g, gs);
  evaluator.BindQuery(q, qs, MakeHeuristicPlan(q, g, q.pivot()));

  util::StopSource source;
  source.RequestStop();
  PsiEvaluator::Options options;
  options.mode = PsiMode::kPessimistic;
  options.stop = util::StopToken(&source);
  const auto candidates = ExtractPivotCandidates(g, q);
  ASSERT_FALSE(candidates.empty());
  size_t stopped = 0;
  for (const graph::NodeId u : candidates) {
    if (evaluator.EvaluateNode(u, options) == Outcome::kStopped) ++stopped;
  }
  // At least some searches must have hit the poll and reported kStopped.
  EXPECT_GT(stopped, 0u);
}

TEST(PsiEvaluatorTest, BindQueryAcceptsTemporaryPlan) {
  // Regression: BindQuery used to keep a pointer into the passed plan, so a
  // temporary argument dangled. It now copies.
  const graph::Graph g = psi::testing::MakeFigure1Graph();
  const graph::QueryGraph q = psi::testing::MakeFigure1Query();
  const auto gs = signature::BuildSignatures(
      g, signature::Method::kMatrix, 2, g.num_labels());
  const auto qs = signature::BuildSignatures(
      q, signature::Method::kMatrix, 2, g.num_labels());
  PsiEvaluator evaluator(g, gs);
  evaluator.BindQuery(q, qs, MakeHeuristicPlan(q, g, q.pivot()));  // temp
  PsiEvaluator::Options options;
  EXPECT_EQ(evaluator.EvaluateNode(0, options), Outcome::kValid);
  EXPECT_EQ(evaluator.EvaluateNode(5, options), Outcome::kValid);
  EXPECT_EQ(evaluator.EvaluateNode(1, options), Outcome::kInvalid);
}

TEST(PsiEvaluatorTest, SingleNodeQuery) {
  const graph::Graph g = psi::testing::MakeFigure1Graph();
  graph::QueryGraph q;
  q.AddNode(psi::testing::kB);
  q.set_pivot(0);
  const auto gs = signature::BuildSignatures(
      g, signature::Method::kMatrix, 2, g.num_labels());
  const auto qs = signature::BuildSignatures(
      q, signature::Method::kMatrix, 2, g.num_labels());
  PsiEvaluator evaluator(g, gs);
  Plan plan;
  plan.order = {0};
  evaluator.BindQuery(q, qs, plan);
  PsiEvaluator::Options options;
  // Every B node matches a single-node B query.
  EXPECT_EQ(evaluator.EvaluateNode(1, options), Outcome::kValid);
  EXPECT_EQ(evaluator.EvaluateNode(4, options), Outcome::kValid);
  EXPECT_EQ(evaluator.EvaluateNode(0, options), Outcome::kInvalid);
}

}  // namespace
}  // namespace psi::match
