// Regression tests for the strict tool argument parser. The bug this
// locks out: the tools' historical parsers treated ANY "--x" as a
// value-taking option, so an unknown flag (e.g. --shards before sharding
// existed, or a typo like --sharsd) silently swallowed the next argv and
// the run proceeded with default settings instead of failing.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "tools/tool_args.h"

namespace psi::tools {
namespace {

ParsedArgs Parse(std::vector<const char*> argv, const ArgSpec& spec) {
  argv.insert(argv.begin(), "tool");
  return ParseArgs(static_cast<int>(argv.size()), argv.data(), spec);
}

ArgSpec LoadgenLikeSpec() {
  ArgSpec spec;
  spec.switches = {"--baseline", "--swap-storm"};
  spec.options = {"--requests", "--shards", "--faults"};
  spec.max_positional = 1;
  return spec;
}

TEST(ToolArgsTest, ParsesSwitchesOptionsAndPositional) {
  const ParsedArgs args =
      Parse({"graph.lg", "--requests", "200", "--baseline", "--shards", "4"},
            LoadgenLikeSpec());
  ASSERT_TRUE(args.ok()) << args.error;
  ASSERT_EQ(args.positional.size(), 1u);
  EXPECT_EQ(args.positional[0], "graph.lg");
  EXPECT_TRUE(args.Has("--baseline"));
  EXPECT_FALSE(args.Has("--swap-storm"));
  EXPECT_EQ(args.Get("--requests", "0"), "200");
  EXPECT_EQ(args.Get("--shards", "0"), "4");
  EXPECT_EQ(args.Get("--faults", "fallback"), "fallback");
}

TEST(ToolArgsTest, UnknownFlagIsAnErrorNotASilentSink) {
  // The regression: "--sharsd 4" must fail loudly, never consume "4" and
  // continue with defaults.
  const ParsedArgs args =
      Parse({"graph.lg", "--sharsd", "4"}, LoadgenLikeSpec());
  ASSERT_FALSE(args.ok());
  EXPECT_NE(args.error.find("unknown flag --sharsd"), std::string::npos);
}

TEST(ToolArgsTest, UnknownFlagBeforeFeatureExistedFails) {
  ArgSpec without_shards;
  without_shards.switches = {"--baseline"};
  without_shards.options = {"--requests"};
  const ParsedArgs args =
      Parse({"graph.lg", "--shards", "4"}, without_shards);
  ASSERT_FALSE(args.ok());
  EXPECT_NE(args.error.find("unknown flag --shards"), std::string::npos);
}

TEST(ToolArgsTest, MissingValueIsAnError) {
  const ParsedArgs args = Parse({"graph.lg", "--requests"}, LoadgenLikeSpec());
  ASSERT_FALSE(args.ok());
  EXPECT_NE(args.error.find("missing value for --requests"),
            std::string::npos);
}

TEST(ToolArgsTest, ExcessPositionalIsAnError) {
  const ParsedArgs args = Parse({"a.lg", "b.lg"}, LoadgenLikeSpec());
  ASSERT_FALSE(args.ok());
  EXPECT_NE(args.error.find("unexpected argument 'b.lg'"), std::string::npos);
}

TEST(ToolArgsTest, SwitchNeverConsumesAValue) {
  const ParsedArgs args =
      Parse({"--baseline", "graph.lg"}, LoadgenLikeSpec());
  ASSERT_TRUE(args.ok()) << args.error;
  EXPECT_TRUE(args.Has("--baseline"));
  ASSERT_EQ(args.positional.size(), 1u);
  EXPECT_EQ(args.positional[0], "graph.lg");
}

TEST(ToolArgsTest, OptionValueMayStartWithDashes) {
  // A declared option takes the NEXT argv verbatim, even if it looks like
  // a flag (fault specs and negative numbers stay expressible).
  const ParsedArgs args =
      Parse({"--faults", "--weird=spec", "g.lg"}, LoadgenLikeSpec());
  ASSERT_TRUE(args.ok()) << args.error;
  EXPECT_EQ(args.Get("--faults", ""), "--weird=spec");
}

TEST(ToolArgsTest, RepeatedOptionLastOneWins) {
  const ParsedArgs args =
      Parse({"--requests", "5", "--requests", "9"}, LoadgenLikeSpec());
  ASSERT_TRUE(args.ok()) << args.error;
  EXPECT_EQ(args.Get("--requests", ""), "9");
}

TEST(ToolArgsTest, EmptyCommandLineIsOk) {
  const ParsedArgs args = Parse({}, LoadgenLikeSpec());
  ASSERT_TRUE(args.ok());
  EXPECT_TRUE(args.positional.empty());
  EXPECT_TRUE(args.values.empty());
}

// --- Per-tool spec shapes (every tool now parses strictly) ----------------

TEST(ToolArgsTest, MineLikeSpecParsesServeModeFlags) {
  ArgSpec spec;
  spec.switches = {"--serve"};
  spec.options = {"--support", "--max-edges", "--method", "--threads",
                  "--timeout", "--print", "--depth", "--workers", "--queue"};
  spec.max_positional = 1;
  const ParsedArgs args =
      Parse({"graph.lg", "--support", "100", "--serve", "--workers", "8"},
            spec);
  ASSERT_TRUE(args.ok()) << args.error;
  ASSERT_EQ(args.positional.size(), 1u);
  EXPECT_EQ(args.positional[0], "graph.lg");
  EXPECT_TRUE(args.Has("--serve"));
  EXPECT_EQ(args.Get("--support", "0"), "100");
  EXPECT_EQ(args.Get("--workers", "4"), "8");
  // The legacy psi_mine parser consumed "--sypport 100" silently; strict
  // parsing makes the typo fatal.
  const ParsedArgs typo = Parse({"graph.lg", "--sypport", "100"}, spec);
  ASSERT_FALSE(typo.ok());
  EXPECT_NE(typo.error.find("unknown flag --sypport"), std::string::npos);
}

TEST(ToolArgsTest, QueryLikeSpecKeepsVerboseASwitch) {
  ArgSpec spec;
  spec.switches = {"--verbose"};
  spec.options = {"--queries", "--extract", "--count", "--engine",
                  "--threads", "--depth", "--timeout", "--seed"};
  spec.max_positional = 1;
  const ParsedArgs args =
      Parse({"graph.lg", "--verbose", "--extract", "6"}, spec);
  ASSERT_TRUE(args.ok()) << args.error;
  EXPECT_TRUE(args.Has("--verbose"));
  EXPECT_EQ(args.Get("--extract", "5"), "6");
  // --verbose must never swallow the following argument.
  ASSERT_EQ(args.positional.size(), 1u);
  const ParsedArgs trailing = Parse({"--verbose", "graph.lg"}, spec);
  ASSERT_TRUE(trailing.ok()) << trailing.error;
  ASSERT_EQ(trailing.positional.size(), 1u);
  EXPECT_EQ(trailing.positional[0], "graph.lg");
}

TEST(ToolArgsTest, GenerateLikeSpecRejectsAnyPositional) {
  ArgSpec spec;
  spec.options = {"--out", "--dataset", "--generator", "--nodes", "--seed"};
  spec.max_positional = 0;
  const ParsedArgs args =
      Parse({"--out", "g.lg", "--dataset", "cora"}, spec);
  ASSERT_TRUE(args.ok()) << args.error;
  EXPECT_EQ(args.Get("--out", ""), "g.lg");
  // The legacy psi_generate parser skipped argv two-by-two, so a stray
  // positional desynced every following flag; now it fails loudly.
  const ParsedArgs stray = Parse({"g.lg", "--dataset", "cora"}, spec);
  ASSERT_FALSE(stray.ok());
  EXPECT_NE(stray.error.find("unexpected argument 'g.lg'"),
            std::string::npos);
}

TEST(ToolArgsTest, BatchOptionParsesLikeLoadgen) {
  ArgSpec spec = LoadgenLikeSpec();
  spec.options.push_back("--batch");
  const ParsedArgs args =
      Parse({"graph.lg", "--batch", "16", "--requests", "64"}, spec);
  ASSERT_TRUE(args.ok()) << args.error;
  EXPECT_EQ(args.Get("--batch", "0"), "16");
  const ParsedArgs missing = Parse({"graph.lg", "--batch"}, spec);
  ASSERT_FALSE(missing.ok());
  EXPECT_NE(missing.error.find("missing value for --batch"),
            std::string::npos);
}

}  // namespace
}  // namespace psi::tools
