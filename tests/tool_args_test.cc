// Regression tests for the strict tool argument parser. The bug this
// locks out: the tools' historical parsers treated ANY "--x" as a
// value-taking option, so an unknown flag (e.g. --shards before sharding
// existed, or a typo like --sharsd) silently swallowed the next argv and
// the run proceeded with default settings instead of failing.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "tools/tool_args.h"

namespace psi::tools {
namespace {

ParsedArgs Parse(std::vector<const char*> argv, const ArgSpec& spec) {
  argv.insert(argv.begin(), "tool");
  return ParseArgs(static_cast<int>(argv.size()), argv.data(), spec);
}

ArgSpec LoadgenLikeSpec() {
  ArgSpec spec;
  spec.switches = {"--baseline", "--swap-storm"};
  spec.options = {"--requests", "--shards", "--faults"};
  spec.max_positional = 1;
  return spec;
}

TEST(ToolArgsTest, ParsesSwitchesOptionsAndPositional) {
  const ParsedArgs args =
      Parse({"graph.lg", "--requests", "200", "--baseline", "--shards", "4"},
            LoadgenLikeSpec());
  ASSERT_TRUE(args.ok()) << args.error;
  ASSERT_EQ(args.positional.size(), 1u);
  EXPECT_EQ(args.positional[0], "graph.lg");
  EXPECT_TRUE(args.Has("--baseline"));
  EXPECT_FALSE(args.Has("--swap-storm"));
  EXPECT_EQ(args.Get("--requests", "0"), "200");
  EXPECT_EQ(args.Get("--shards", "0"), "4");
  EXPECT_EQ(args.Get("--faults", "fallback"), "fallback");
}

TEST(ToolArgsTest, UnknownFlagIsAnErrorNotASilentSink) {
  // The regression: "--sharsd 4" must fail loudly, never consume "4" and
  // continue with defaults.
  const ParsedArgs args =
      Parse({"graph.lg", "--sharsd", "4"}, LoadgenLikeSpec());
  ASSERT_FALSE(args.ok());
  EXPECT_NE(args.error.find("unknown flag --sharsd"), std::string::npos);
}

TEST(ToolArgsTest, UnknownFlagBeforeFeatureExistedFails) {
  ArgSpec without_shards;
  without_shards.switches = {"--baseline"};
  without_shards.options = {"--requests"};
  const ParsedArgs args =
      Parse({"graph.lg", "--shards", "4"}, without_shards);
  ASSERT_FALSE(args.ok());
  EXPECT_NE(args.error.find("unknown flag --shards"), std::string::npos);
}

TEST(ToolArgsTest, MissingValueIsAnError) {
  const ParsedArgs args = Parse({"graph.lg", "--requests"}, LoadgenLikeSpec());
  ASSERT_FALSE(args.ok());
  EXPECT_NE(args.error.find("missing value for --requests"),
            std::string::npos);
}

TEST(ToolArgsTest, ExcessPositionalIsAnError) {
  const ParsedArgs args = Parse({"a.lg", "b.lg"}, LoadgenLikeSpec());
  ASSERT_FALSE(args.ok());
  EXPECT_NE(args.error.find("unexpected argument 'b.lg'"), std::string::npos);
}

TEST(ToolArgsTest, SwitchNeverConsumesAValue) {
  const ParsedArgs args =
      Parse({"--baseline", "graph.lg"}, LoadgenLikeSpec());
  ASSERT_TRUE(args.ok()) << args.error;
  EXPECT_TRUE(args.Has("--baseline"));
  ASSERT_EQ(args.positional.size(), 1u);
  EXPECT_EQ(args.positional[0], "graph.lg");
}

TEST(ToolArgsTest, OptionValueMayStartWithDashes) {
  // A declared option takes the NEXT argv verbatim, even if it looks like
  // a flag (fault specs and negative numbers stay expressible).
  const ParsedArgs args =
      Parse({"--faults", "--weird=spec", "g.lg"}, LoadgenLikeSpec());
  ASSERT_TRUE(args.ok()) << args.error;
  EXPECT_EQ(args.Get("--faults", ""), "--weird=spec");
}

TEST(ToolArgsTest, RepeatedOptionLastOneWins) {
  const ParsedArgs args =
      Parse({"--requests", "5", "--requests", "9"}, LoadgenLikeSpec());
  ASSERT_TRUE(args.ok()) << args.error;
  EXPECT_EQ(args.Get("--requests", ""), "9");
}

TEST(ToolArgsTest, EmptyCommandLineIsOk) {
  const ParsedArgs args = Parse({}, LoadgenLikeSpec());
  ASSERT_TRUE(args.ok());
  EXPECT_TRUE(args.positional.empty());
  EXPECT_TRUE(args.values.empty());
}

}  // namespace
}  // namespace psi::tools
