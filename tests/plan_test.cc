#include "match/plan.h"

#include <set>

#include <gtest/gtest.h>

#include "tests/test_fixtures.h"

namespace psi::match {
namespace {

TEST(PlanValidityTest, AcceptsConnectedPermutation) {
  const graph::QueryGraph q = psi::testing::MakeFigure2Query();
  Plan plan;
  plan.order = {1, 0, 2, 3, 4};
  EXPECT_TRUE(IsValidPlan(q, plan, 1));
}

TEST(PlanValidityTest, RejectsWrongRoot) {
  const graph::QueryGraph q = psi::testing::MakeFigure2Query();
  Plan plan;
  plan.order = {1, 0, 2, 3, 4};
  EXPECT_FALSE(IsValidPlan(q, plan, 0));
}

TEST(PlanValidityTest, RejectsDisconnectedPrefix) {
  const graph::QueryGraph q = psi::testing::MakeFigure2Query();
  Plan plan;
  plan.order = {0, 4, 3, 1, 2};  // v4 is not adjacent to v0
  EXPECT_FALSE(IsValidPlan(q, plan, 0));
}

TEST(PlanValidityTest, RejectsDuplicatesAndWrongSize) {
  const graph::QueryGraph q = psi::testing::MakeFigure2Query();
  Plan dup;
  dup.order = {1, 0, 0, 2, 3};
  EXPECT_FALSE(IsValidPlan(q, dup, 1));
  Plan short_plan;
  short_plan.order = {1, 0};
  EXPECT_FALSE(IsValidPlan(q, short_plan, 1));
}

TEST(HeuristicPlanTest, ValidForAnyRoot) {
  const graph::Graph g = psi::testing::MakeFigure1Graph();
  const graph::QueryGraph q = psi::testing::MakeFigure2Query();
  for (graph::NodeId root = 0; root < q.num_nodes(); ++root) {
    const Plan plan = MakeHeuristicPlan(q, g, root);
    EXPECT_TRUE(IsValidPlan(q, plan, root)) << plan.ToString();
  }
}

TEST(HeuristicPlanTest, SingleNodeQuery) {
  graph::QueryGraph q;
  q.AddNode(0);
  const graph::Graph g = psi::testing::MakeFigure1Graph();
  const Plan plan = MakeHeuristicPlan(q, g, 0);
  EXPECT_EQ(plan.order.size(), 1u);
  EXPECT_EQ(plan.order[0], 0u);
}

TEST(RandomPlanTest, AlwaysValid) {
  const graph::QueryGraph q = psi::testing::MakeFigure2Query();
  util::Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    const Plan plan = MakeRandomPlan(q, 2, rng);
    EXPECT_TRUE(IsValidPlan(q, plan, 2)) << plan.ToString();
  }
}

TEST(RandomPlanTest, ProducesVariety) {
  const graph::QueryGraph q = psi::testing::MakeFigure2Query();
  util::Rng rng(6);
  std::set<std::vector<graph::NodeId>> distinct;
  for (int i = 0; i < 60; ++i) {
    distinct.insert(MakeRandomPlan(q, 1, rng).order);
  }
  EXPECT_GT(distinct.size(), 3u);
}

TEST(EnumerateConnectedPlansTest, CountsForPath) {
  // Path a-b-c rooted at an end: exactly one connected order (a, b, c).
  graph::QueryGraph path;
  path.AddNode(0);
  path.AddNode(0);
  path.AddNode(0);
  path.AddEdge(0, 1);
  path.AddEdge(1, 2);
  const auto plans = EnumerateConnectedPlans(path, 0, 100);
  ASSERT_EQ(plans.size(), 1u);
  EXPECT_EQ(plans[0].order, (std::vector<graph::NodeId>{0, 1, 2}));
  // Rooted at the middle: two orders.
  EXPECT_EQ(EnumerateConnectedPlans(path, 1, 100).size(), 2u);
}

TEST(EnumerateConnectedPlansTest, RespectsMaxCount) {
  const graph::QueryGraph q = psi::testing::MakeFigure2Query();
  const auto plans = EnumerateConnectedPlans(q, 1, 3);
  EXPECT_EQ(plans.size(), 3u);
  for (const Plan& p : plans) EXPECT_TRUE(IsValidPlan(q, p, 1));
}

TEST(EnumerateConnectedPlansTest, AllPlansDistinctAndValid) {
  const graph::QueryGraph q = psi::testing::MakeFigure2Query();
  const auto plans = EnumerateConnectedPlans(q, 1, 10000);
  std::set<std::vector<graph::NodeId>> distinct;
  for (const Plan& p : plans) {
    EXPECT_TRUE(IsValidPlan(q, p, 1));
    distinct.insert(p.order);
  }
  EXPECT_EQ(distinct.size(), plans.size());
}

TEST(SamplePlanPoolTest, HeuristicFirstAllValidDistinct) {
  const graph::Graph g = psi::testing::MakeFigure1Graph();
  const graph::QueryGraph q = psi::testing::MakeFigure2Query();
  util::Rng rng(7);
  const auto pool = SamplePlanPool(q, g, 1, 4, rng);
  ASSERT_GE(pool.size(), 2u);
  ASSERT_LE(pool.size(), 4u);
  EXPECT_EQ(pool[0].order, MakeHeuristicPlan(q, g, 1).order);
  std::set<std::vector<graph::NodeId>> distinct;
  for (const Plan& p : pool) {
    EXPECT_TRUE(IsValidPlan(q, p, 1));
    distinct.insert(p.order);
  }
  EXPECT_EQ(distinct.size(), pool.size());
}

TEST(SamplePlanPoolTest, SmallQueryPoolShrinks) {
  // A 2-node query has exactly one connected order from each root.
  graph::QueryGraph q;
  q.AddNode(0);
  q.AddNode(1);
  q.AddEdge(0, 1);
  const graph::Graph g = psi::testing::MakeFigure1Graph();
  util::Rng rng(8);
  const auto pool = SamplePlanPool(q, g, 0, 4, rng);
  EXPECT_EQ(pool.size(), 1u);
}

}  // namespace
}  // namespace psi::match
