#include "ml/neural_net.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace psi::ml {
namespace {

TEST(NeuralNetTest, FitsXor) {
  // XOR is the classic non-linearly-separable sanity check for an MLP.
  Dataset data(2);
  util::Rng noise(1);
  for (int i = 0; i < 400; ++i) {
    const int a = static_cast<int>(noise.NextBounded(2));
    const int b = static_cast<int>(noise.NextBounded(2));
    const float jitter_a = static_cast<float>(noise.NextGaussian() * 0.05);
    const float jitter_b = static_cast<float>(noise.NextGaussian() * 0.05);
    data.AddExample(
        std::vector<float>{static_cast<float>(a) + jitter_a,
                           static_cast<float>(b) + jitter_b},
        a ^ b);
  }
  NeuralNet net;
  MlpConfig config;
  config.hidden_units = 16;
  config.epochs = 60;
  config.learning_rate = 0.1;
  util::Rng rng(2);
  net.Train(data, 2, config, rng);
  ASSERT_TRUE(net.trained());
  size_t correct = 0;
  for (size_t i = 0; i < data.size(); ++i) {
    if (net.Predict(data.row(i)) == data.label(i)) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / data.size(), 0.9);
}

TEST(NeuralNetTest, ProbabilitiesAreSoftmax) {
  Dataset data(1);
  util::Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    data.AddExample(std::vector<float>{static_cast<float>(i % 2)}, i % 2);
  }
  NeuralNet net;
  net.Train(data, 2, MlpConfig(), rng);
  const auto probs = net.PredictProba(std::vector<float>{1.0f});
  ASSERT_EQ(probs.size(), 2u);
  EXPECT_NEAR(probs[0] + probs[1], 1.0, 1e-9);
  EXPECT_GT(probs[1], probs[0]);
}

TEST(NeuralNetTest, MultiClass) {
  Dataset data(2);
  util::Rng rng(4);
  const float centers[3][2] = {{0.0f, 2.0f}, {2.0f, -2.0f}, {-2.0f, -2.0f}};
  for (int i = 0; i < 600; ++i) {
    const int cls = i % 3;
    data.AddExample(
        std::vector<float>{
            centers[cls][0] + static_cast<float>(rng.NextGaussian() * 0.3),
            centers[cls][1] + static_cast<float>(rng.NextGaussian() * 0.3)},
        cls);
  }
  NeuralNet net;
  MlpConfig config;
  config.epochs = 40;
  net.Train(data, 3, config, rng);
  size_t correct = 0;
  for (size_t i = 0; i < data.size(); ++i) {
    if (net.Predict(data.row(i)) == data.label(i)) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / data.size(), 0.9);
}

TEST(NeuralNetTest, EmptyTrainingStillPredicts) {
  Dataset data(2);
  NeuralNet net;
  util::Rng rng(5);
  net.Train(data, 2, MlpConfig(), rng);
  const int32_t p = net.Predict(std::vector<float>{0.5f, 0.5f});
  EXPECT_GE(p, 0);
  EXPECT_LT(p, 2);
}

TEST(NeuralNetTest, DeterministicGivenSeed) {
  Dataset data(1);
  util::Rng data_rng(6);
  for (int i = 0; i < 100; ++i) {
    data.AddExample(
        std::vector<float>{static_cast<float>(data_rng.NextGaussian())},
        i % 2);
  }
  NeuralNet a;
  NeuralNet b;
  util::Rng rng_a(7);
  util::Rng rng_b(7);
  a.Train(data, 2, MlpConfig(), rng_a);
  b.Train(data, 2, MlpConfig(), rng_b);
  for (size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(a.Predict(data.row(i)), b.Predict(data.row(i)));
  }
}

}  // namespace
}  // namespace psi::ml
