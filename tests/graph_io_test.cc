#include "graph/graph_io.h"

#include <sstream>

#include <gtest/gtest.h>

#include "tests/test_fixtures.h"

namespace psi::graph {
namespace {

TEST(GraphIoTest, ParseSimpleLg) {
  std::istringstream in(
      "# comment\n"
      "t 1\n"
      "v 0 2\n"
      "v 1 3\n"
      "e 0 1 5\n");
  const auto result = ReadLg(in);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const Graph& g = result.value();
  EXPECT_EQ(g.num_nodes(), 2u);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.label(0), 2u);
  EXPECT_EQ(g.label(1), 3u);
  EXPECT_EQ(*g.EdgeLabelBetween(0, 1), 5u);
}

TEST(GraphIoTest, EdgeLabelOptional) {
  std::istringstream in("v 0 0\nv 1 0\ne 0 1\n");
  const auto result = ReadLg(in);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result.value().EdgeLabelBetween(0, 1), kDefaultEdgeLabel);
}

TEST(GraphIoTest, RejectsNonDenseVertexIds) {
  std::istringstream in("v 1 0\n");
  const auto result = ReadLg(in);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::Status::Code::kInvalidArgument);
}

TEST(GraphIoTest, RejectsEdgeToUnknownVertex) {
  std::istringstream in("v 0 0\ne 0 5\n");
  const auto result = ReadLg(in);
  ASSERT_FALSE(result.ok());
}

TEST(GraphIoTest, RejectsUnknownRecord) {
  std::istringstream in("x 1 2\n");
  const auto result = ReadLg(in);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("line 1"), std::string::npos);
}

TEST(GraphIoTest, RejectsMalformedVertex) {
  std::istringstream in("v 0\n");
  ASSERT_FALSE(ReadLg(in).ok());
}

TEST(GraphIoTest, RoundTripPreservesGraph) {
  const Graph original = testing::MakeFigure1Graph();
  std::ostringstream out;
  WriteLg(original, out);
  std::istringstream in(out.str());
  const auto reloaded = ReadLg(in);
  ASSERT_TRUE(reloaded.ok());
  const Graph& g = reloaded.value();
  ASSERT_EQ(g.num_nodes(), original.num_nodes());
  ASSERT_EQ(g.num_edges(), original.num_edges());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_EQ(g.label(u), original.label(u));
    const auto a = g.neighbors(u);
    const auto b = original.neighbors(u);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  }
}

TEST(GraphIoTest, FileRoundTrip) {
  const Graph original = testing::MakeFigure1Graph();
  const std::string path = ::testing::TempDir() + "/psi_io_test.lg";
  ASSERT_TRUE(SaveLgFile(original, path).ok());
  const auto reloaded = LoadLgFile(path);
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(reloaded.value().num_edges(), original.num_edges());
}

TEST(GraphIoTest, MissingFileIsIoError) {
  const auto result = LoadLgFile("/nonexistent/path/graph.lg");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::Status::Code::kIoError);
}

TEST(GraphIoTest, EmptyInputYieldsEmptyGraph) {
  std::istringstream in("");
  const auto result = ReadLg(in);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().num_nodes(), 0u);
}

TEST(QueryIoTest, ParseTwoQueries) {
  std::istringstream in(
      "t 1\n"
      "v 0 3\n"
      "v 1 5\n"
      "e 0 1 2\n"
      "p 0\n"
      "t 2\n"
      "v 0 1\n"
      "p 0\n");
  const auto result = ReadQueries(in);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const auto& queries = result.value();
  ASSERT_EQ(queries.size(), 2u);
  EXPECT_EQ(queries[0].num_nodes(), 2u);
  EXPECT_EQ(queries[0].label(0), 3u);
  EXPECT_EQ(queries[0].EdgeLabel(0, 1), 2u);
  EXPECT_EQ(queries[0].pivot(), 0u);
  EXPECT_EQ(queries[1].num_nodes(), 1u);
  EXPECT_TRUE(queries[1].has_pivot());
}

TEST(QueryIoTest, MissingPivotRejected) {
  std::istringstream in("t 1\nv 0 3\n");
  ASSERT_FALSE(ReadQueries(in).ok());
}

TEST(QueryIoTest, PivotOutOfRangeRejected) {
  std::istringstream in("t 1\nv 0 3\np 4\n");
  ASSERT_FALSE(ReadQueries(in).ok());
}

TEST(QueryIoTest, RecordsOutsideBlockRejected) {
  std::istringstream in("v 0 3\n");
  ASSERT_FALSE(ReadQueries(in).ok());
}

TEST(QueryIoTest, EmptyInputYieldsNoQueries) {
  std::istringstream in("");
  const auto result = ReadQueries(in);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().empty());
}

TEST(QueryIoTest, RoundTrip) {
  std::vector<QueryGraph> original;
  original.push_back(testing::MakeFigure1Query());
  original.push_back(testing::MakeFigure2Query());
  std::ostringstream out;
  WriteQueries(original, out);
  std::istringstream in(out.str());
  const auto reloaded = ReadQueries(in);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  ASSERT_EQ(reloaded.value().size(), original.size());
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(reloaded.value()[i].ToString(), original[i].ToString());
  }
}

TEST(QueryIoTest, FileRoundTrip) {
  std::vector<QueryGraph> original{testing::MakeFigure1Query()};
  const std::string path = ::testing::TempDir() + "/psi_queries_test.lg";
  ASSERT_TRUE(SaveQueryFile(original, path).ok());
  const auto reloaded = LoadQueryFile(path);
  ASSERT_TRUE(reloaded.ok());
  ASSERT_EQ(reloaded.value().size(), 1u);
  EXPECT_EQ(reloaded.value()[0].ToString(), original[0].ToString());
}

}  // namespace
}  // namespace psi::graph
