// Search-core upgrades (DESIGN.md §14): Luby restart policy, nogood
// recording, and work-stealing parallel search. Covers the policy math,
// the store's exactness/binding semantics, the stealing executor's
// exactly-once contract, and the enumerator's budget/restart/parallel
// paths against its own sequential ground truth.

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "match/nogood_store.h"
#include "match/parallel_search.h"
#include "match/plan.h"
#include "match/psi_evaluator.h"
#include "match/restart_policy.h"
#include "match/subgraph_enumerator.h"
#include "signature/builders.h"
#include "tests/test_fixtures.h"
#include "util/thread_pool.h"

namespace psi::match {
namespace {

// --- Luby sequence -------------------------------------------------------

TEST(RestartPolicyTest, LubyPrefixMatchesTheLiterature) {
  const uint64_t expected[] = {1, 1, 2, 1, 1, 2, 4, 1, 1, 2,
                               1, 1, 2, 4, 8, 1, 1, 2, 1, 1};
  for (size_t i = 0; i < std::size(expected); ++i) {
    EXPECT_EQ(LubyValue(i + 1), expected[i]) << "i=" << i + 1;
  }
  // Positions 2^k - 1 are the powers themselves.
  EXPECT_EQ(LubyValue(31), 16u);
  EXPECT_EQ(LubyValue(63), 32u);
}

TEST(RestartPolicyTest, BudgetForRunScalesAndTerminates) {
  RestartOptions options;
  options.enabled = true;
  options.unit_nodes = 100;
  options.max_restarts = 4;
  EXPECT_EQ(options.BudgetForRun(0), 100u);
  EXPECT_EQ(options.BudgetForRun(1), 100u);
  EXPECT_EQ(options.BudgetForRun(2), 200u);
  EXPECT_EQ(options.BudgetForRun(3), 100u);
  // The final run is budget-unlimited — the soundness guarantee.
  EXPECT_EQ(options.BudgetForRun(4), 0u);
  EXPECT_EQ(options.BudgetForRun(1000), 0u);
  RestartOptions disabled;
  EXPECT_EQ(disabled.BudgetForRun(0), 0u);
}

TEST(RestartPolicyTest, PerturbationIsDeterministicAndRunZeroIsIdentity) {
  RestartOptions options;
  options.enabled = true;
  // Run 0 perturbs nothing: the first budgeted run walks exactly the tree
  // the non-restarting search would.
  EXPECT_EQ(PerturbationSeed(options, 7, 0), 0u);
  const uint64_t a = PerturbationSeed(options, 7, 1);
  const uint64_t b = PerturbationSeed(options, 7, 1);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, 0u);
  EXPECT_NE(PerturbationSeed(options, 7, 1), PerturbationSeed(options, 7, 2));
  EXPECT_NE(PerturbationSeed(options, 7, 1), PerturbationSeed(options, 8, 1));
}

// --- Nogood store --------------------------------------------------------

TEST(NogoodStoreTest, RecordsAndLooksUpExactPrefixes) {
  NogoodStore store(/*salt=*/42);
  const graph::NodeId head[] = {3, 1, 4};
  EXPECT_FALSE(store.Contains(head, 5));
  EXPECT_TRUE(store.Record(head, 5));
  EXPECT_TRUE(store.Contains(head, 5));
  EXPECT_EQ(store.size(), 1u);
  // Exact match only: different last element, shorter head, permuted head.
  EXPECT_FALSE(store.Contains(head, 6));
  EXPECT_FALSE(store.Contains({head, 2}, 5));
  const graph::NodeId permuted[] = {1, 3, 4};
  EXPECT_FALSE(store.Contains(permuted, 5));
  // Duplicates are refused.
  EXPECT_FALSE(store.Record(head, 5));
  EXPECT_EQ(store.size(), 1u);
}

TEST(NogoodStoreTest, EnforcesLimits) {
  NogoodStore::Limits limits;
  limits.max_entries = 2;
  limits.max_prefix_length = 3;
  NogoodStore store(/*salt=*/0, limits);
  const graph::NodeId head[] = {1, 2, 3};
  // head(3) + last = prefix of 4 > max_prefix_length: refused.
  EXPECT_FALSE(store.Record(head, 4));
  EXPECT_TRUE(store.Record({head, 2}, 9));
  EXPECT_TRUE(store.Record({head, 1}, 9));
  EXPECT_TRUE(store.full());
  EXPECT_FALSE(store.Record({head, 1}, 8));
  EXPECT_EQ(store.size(), 2u);
}

TEST(NogoodStoreTest, BindingChangeDropsEntries) {
  NogoodStore store;
  const graph::NodeId head[] = {1, 2};
  store.EnsureBinding(100);
  EXPECT_TRUE(store.Record(head, 3));
  store.EnsureBinding(100);  // same binding: entries survive
  EXPECT_TRUE(store.Contains(head, 3));
  store.EnsureBinding(200);  // new (query, plan): everything is stale
  EXPECT_TRUE(store.empty());
  EXPECT_FALSE(store.Contains(head, 3));
}

TEST(NogoodStoreTest, ResetReSalts) {
  NogoodStore store(/*salt=*/1);
  const graph::NodeId head[] = {1, 2};
  EXPECT_TRUE(store.Record(head, 3));
  store.Reset(/*salt=*/2);
  EXPECT_TRUE(store.empty());
  EXPECT_EQ(store.salt(), 2u);
  EXPECT_FALSE(store.Contains(head, 3));
}

// --- Work-stealing executor ----------------------------------------------

TEST(WorkStealingTest, EveryItemRunsExactlyOnce) {
  for (const size_t workers : {1u, 2u, 3u, 8u, 64u}) {
    for (const size_t count : {0u, 1u, 5u, 97u}) {
      std::vector<std::atomic<int>> hits(count);
      RunWorkStealing(count, workers, nullptr, [&](size_t item, size_t) {
        hits[item].fetch_add(1, std::memory_order_relaxed);
      });
      for (size_t i = 0; i < count; ++i) {
        EXPECT_EQ(hits[i].load(), 1) << "workers=" << workers << " i=" << i;
      }
    }
  }
}

TEST(WorkStealingTest, RunsOnAProvidedPool) {
  util::ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(200);
  RunWorkStealing(hits.size(), 4, &pool, [&](size_t item, size_t) {
    hits[item].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(WorkStealingTest, ImbalancedWorkProvokesSteals) {
  // One worker owns a range of slow items; the others run dry and steal.
  // Steals are schedule-dependent, so only assert the exactly-once
  // contract plus a sane return value.
  std::atomic<uint64_t> done{0};
  const uint64_t steals =
      RunWorkStealing(64, 4, nullptr, [&](size_t item, size_t) {
        if (item < 16) {
          // Busy-spin to hold the first range's owner occupied.
          for (volatile int spin = 0; spin < 50000; ++spin) {
        }
        }
        done.fetch_add(1, std::memory_order_relaxed);
      });
  EXPECT_EQ(done.load(), 64u);
  EXPECT_LT(steals, 64u);
}

// --- Enumerator: budgets, restarts, parallel projection ------------------

class EnumeratorSearchCoreTest : public ::testing::Test {
 protected:
  // An extracted query is guaranteed at least one embedding (itself).
  EnumeratorSearchCoreTest()
      : g_(psi::testing::MakeRandomGraph(300, 1800, 3, 29)),
        q_(psi::testing::ExtractQuery(g_, 4, 17)) {}

  void SetUp() override {
    if (q_.num_nodes() != 4) GTEST_SKIP() << "extraction failed";
  }

  graph::Graph g_;
  graph::QueryGraph q_;
};

TEST_F(EnumeratorSearchCoreTest, NodeBudgetTruncates) {
  SubgraphEnumerator enumerator(g_);
  const Plan plan = MakeHeuristicPlan(q_, g_, q_.pivot());
  SubgraphEnumerator::Options unlimited;
  const auto full = enumerator.CountEmbeddings(q_, plan, unlimited);
  ASSERT_TRUE(full.complete);
  ASSERT_GT(full.embedding_count, 0u);

  SubgraphEnumerator::Options budgeted;
  budgeted.node_budget = 1;  // expands almost nothing
  const auto cut = enumerator.CountEmbeddings(q_, plan, budgeted);
  EXPECT_FALSE(cut.complete);
  EXPECT_LT(cut.embedding_count, full.embedding_count);
}

TEST_F(EnumeratorSearchCoreTest, RestartsStayExact) {
  SubgraphEnumerator enumerator(g_);
  const Plan plan = MakeHeuristicPlan(q_, g_, q_.pivot());
  SubgraphEnumerator::Options plain;
  const auto expected = enumerator.ProjectPivot(q_, plan, plain);
  ASSERT_TRUE(expected.complete);

  SubgraphEnumerator::Options restarting;
  restarting.restarts.enabled = true;
  restarting.restarts.unit_nodes = 2;  // tiny: forces many restarts
  restarting.restarts.max_restarts = 5;
  SearchStats stats;
  const auto got = enumerator.ProjectPivot(q_, plan, restarting, &stats);
  EXPECT_TRUE(got.complete);
  EXPECT_EQ(got.pivot_matches, expected.pivot_matches);
  EXPECT_EQ(got.embedding_count, expected.embedding_count);
  EXPECT_GT(stats.restarts, 0u);
}

TEST_F(EnumeratorSearchCoreTest, ParallelProjectionBitIdenticalAcrossThreads) {
  SubgraphEnumerator enumerator(g_);
  const Plan plan = MakeHeuristicPlan(q_, g_, q_.pivot());
  SubgraphEnumerator::Options options;
  const auto sequential = enumerator.ProjectPivot(q_, plan, options);
  ASSERT_TRUE(sequential.complete);

  for (const size_t threads : {2u, 3u, 8u}) {
    SearchStats stats;
    const auto parallel = enumerator.ProjectPivotParallel(
        q_, plan, options, threads, nullptr, &stats);
    EXPECT_TRUE(parallel.complete) << threads;
    EXPECT_EQ(parallel.pivot_matches, sequential.pivot_matches) << threads;
    EXPECT_EQ(parallel.embedding_count, sequential.embedding_count)
        << threads;
  }

  util::ThreadPool pool(4);
  const auto pooled =
      enumerator.ProjectPivotParallel(q_, plan, options, 4, &pool);
  EXPECT_TRUE(pooled.complete);
  EXPECT_EQ(pooled.pivot_matches, sequential.pivot_matches);
}

TEST_F(EnumeratorSearchCoreTest, ParallelRespectsMaxEmbeddings) {
  SubgraphEnumerator enumerator(g_);
  const Plan plan = MakeHeuristicPlan(q_, g_, q_.pivot());
  SubgraphEnumerator::Options unlimited;
  const auto full = enumerator.ProjectPivot(q_, plan, unlimited);
  ASSERT_GT(full.embedding_count, 2u);

  SubgraphEnumerator::Options capped;
  capped.max_embeddings = 2;
  const auto cut = enumerator.ProjectPivotParallel(q_, plan, capped, 4);
  EXPECT_FALSE(cut.complete);
  EXPECT_GE(cut.embedding_count, capped.max_embeddings);
  // A truncated projection is a subset of the full answer.
  for (const graph::NodeId v : cut.pivot_matches) {
    EXPECT_TRUE(std::binary_search(full.pivot_matches.begin(),
                                   full.pivot_matches.end(), v));
  }
}

// --- Evaluator: restart soundness under budgets and deadlines ------------

class EvaluatorRestartTest : public ::testing::Test {
 protected:
  EvaluatorRestartTest()
      : g_(psi::testing::MakeRandomGraph(300, 1800, 3, 29)),
        q_(psi::testing::ExtractQuery(g_, 5, 23)),
        gs_(signature::BuildMatrixSignatures(g_, 2, g_.num_labels())),
        qs_(signature::BuildMatrixSignatures(q_, 2, g_.num_labels())),
        plan_(q_.num_nodes() == 5 ? MakeHeuristicPlan(q_, g_, q_.pivot())
                                  : Plan()) {}

  void SetUp() override {
    if (q_.num_nodes() != 5) GTEST_SKIP() << "extraction failed";
  }

  graph::Graph g_;
  graph::QueryGraph q_;
  signature::SignatureMatrix gs_;
  signature::SignatureMatrix qs_;
  Plan plan_;
};

TEST_F(EvaluatorRestartTest, FinalUnbudgetedRunKeepsAnswersExact) {
  PsiEvaluator baseline(g_, gs_);
  baseline.BindQuery(q_, qs_, plan_);
  PsiEvaluator::Options plain;
  plain.mode = PsiMode::kPessimistic;

  PsiEvaluator restarting_eval(g_, gs_);
  restarting_eval.BindQuery(q_, qs_, plan_);
  NogoodStore nogoods(/*salt=*/7);
  PsiEvaluator::Options restarting = plain;
  restarting.restarts.enabled = true;
  restarting.restarts.unit_nodes = 1;  // every run exhausts immediately
  restarting.restarts.max_restarts = 3;
  restarting.nogoods = &nogoods;

  SearchStats stats;
  for (graph::NodeId u = 0; u < g_.num_nodes(); ++u) {
    const Outcome expected = baseline.EvaluateNode(u, plain);
    const Outcome got = restarting_eval.EvaluateNode(u, restarting, &stats);
    // kBudgetExhausted is internal to the restart loop and must never
    // escape: the final run is unlimited, so the answer is exact.
    ASSERT_NE(got, Outcome::kBudgetExhausted) << u;
    EXPECT_EQ(got, expected) << u;
  }
  EXPECT_GT(stats.restarts, 0u);
}

TEST_F(EvaluatorRestartTest, ExpiredDeadlineStillReportsTimeout) {
  PsiEvaluator evaluator(g_, gs_);
  evaluator.BindQuery(q_, qs_, plan_);
  NogoodStore nogoods;
  PsiEvaluator::Options options;
  options.mode = PsiMode::kPessimistic;
  options.restarts.enabled = true;
  options.restarts.unit_nodes = 1;
  options.nogoods = &nogoods;
  options.deadline = util::Deadline::After(-1.0);
  // Restart budgets must not mask the deadline: the run is censored, not
  // falsely completed.
  bool saw_timeout = false;
  for (graph::NodeId u = 0; u < g_.num_nodes() && !saw_timeout; ++u) {
    saw_timeout = evaluator.EvaluateNode(u, options) == Outcome::kTimeout;
  }
  EXPECT_TRUE(saw_timeout);
}

TEST_F(EvaluatorRestartTest, NogoodsRecordAndHitAcrossRuns) {
  PsiEvaluator evaluator(g_, gs_);
  evaluator.BindQuery(q_, qs_, plan_);
  NogoodStore nogoods;
  PsiEvaluator::Options options;
  options.mode = PsiMode::kPessimistic;
  options.restarts.enabled = true;
  options.restarts.unit_nodes = 4;
  options.restarts.max_restarts = 8;
  options.nogoods = &nogoods;
  SearchStats stats;
  for (graph::NodeId u = 0; u < g_.num_nodes(); ++u) {
    evaluator.EvaluateNode(u, options, &stats);
  }
  // On a graph this size the tiny budgets must fire at least one restart
  // boundary that records something.
  EXPECT_GT(stats.restarts, 0u);
  EXPECT_GT(stats.nogoods_recorded, 0u);
}

}  // namespace
}  // namespace psi::match
