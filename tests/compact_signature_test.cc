// Conformance/property suite for the 8-bit quantized signature layer
// (DESIGN.md §16.1). The load-bearing contract: the quantized prescreen may
// only OVER-admit — a candidate row that passes the exact float
// satisfaction test must never be rejected by the compact comparison — and
// the bulk filter re-checks survivors with the exact float kernel, so every
// kept set stays byte-identical to the float-only path. This suite attacks
// the contract with randomized magnitude sweeps (denormals, zero, epsilon
// neighborhoods, saturation), pins the dispatch (AVX2 when available)
// against the scalar reference bit-for-bit, and checks that shard-sliced
// compact rows equal a from-scratch re-quantization.

#include <algorithm>
#include <bit>
#include <cfloat>
#include <cstdint>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "shard/partitioner.h"
#include "signature/builders.h"
#include "signature/compact_signature.h"
#include "signature/kernels.h"
#include "signature/signature_matrix.h"
#include "signature/sparse_requirement.h"
#include "tests/test_fixtures.h"
#include "util/random.h"

namespace psi {
namespace {

using signature::CompactSignatureMatrix;
using signature::QuantizeWeight;
using signature::SignatureMatrix;
using signature::SparseRequirement;
using signature::ThresholdCode;
using signature::kSatisfactionEpsilon;

/// A float with the given bit pattern (positive finite patterns cover
/// zero, every denormal, and every normal magnitude).
float FromBits(uint32_t bits) { return std::bit_cast<float>(bits); }

/// The exact float admission test the kernels perform for one label:
/// candidate c is admitted against requirement r iff !(c + eps < r).
bool FloatAdmits(float c, float r) {
  return !(c + kSatisfactionEpsilon < r);
}

// The boundary magnitudes of the quantization grid plus the usual float
// suspects; every pairwise (candidate, required) combination is checked.
const float kEdgeValues[] = {
    0.0f,
    FromBits(1),                     // smallest denormal
    FromBits(0x007fffff),            // largest denormal
    FLT_MIN,
    FromBits(signature::kQuantLoBits - 1),  // just under 2^-24
    FromBits(signature::kQuantLoBits),      // 2^-24 exactly
    kSatisfactionEpsilon,
    1e-5f, 1e-4f, 0.5f, 1.0f, 2.0f, 1000.0f,
    FromBits(signature::kQuantHiBits - 1),  // just under 2^24
    FromBits(signature::kQuantHiBits),      // 2^24 exactly
    1e30f,
    FLT_MAX,
};

TEST(CompactQuantizerTest, AnchorsAndSaturation) {
  EXPECT_EQ(QuantizeWeight(0.0f), 0);
  EXPECT_EQ(QuantizeWeight(-1.0f), 0);
  EXPECT_EQ(QuantizeWeight(FromBits(1)), 1);  // smallest denormal
  EXPECT_EQ(QuantizeWeight(FromBits(signature::kQuantLoBits - 1)), 1);
  EXPECT_EQ(QuantizeWeight(FromBits(signature::kQuantHiBits)), 255);
  EXPECT_EQ(QuantizeWeight(FLT_MAX), 255);
  // Thresholds never exceed the code a satisfying weight would get.
  EXPECT_EQ(ThresholdCode(0.0f), 0);
  EXPECT_EQ(ThresholdCode(-3.0f), 0);
  EXPECT_EQ(ThresholdCode(kSatisfactionEpsilon), 0);
}

TEST(CompactQuantizerTest, MonotoneOverRandomMagnitudes) {
  const uint64_t seed = psi::testing::TestSeed(0xc0de01);
  PSI_LOG_TEST_SEED(seed);
  util::Rng rng(seed);
  std::vector<float> values(20000);
  for (float& v : values) {
    // Uniform over all finite nonnegative bit patterns: zero, denormals,
    // every binade up to FLT_MAX.
    v = FromBits(static_cast<uint32_t>(rng.NextBounded(0x7f800000ULL)));
  }
  std::sort(values.begin(), values.end());
  for (size_t i = 1; i < values.size(); ++i) {
    ASSERT_LE(QuantizeWeight(values[i - 1]), QuantizeWeight(values[i]))
        << values[i - 1] << " vs " << values[i];
  }
}

/// The tentpole property: float-admitted implies compact-admitted.
void ExpectNeverRejectsAdmitted(float candidate, float required) {
  if (FloatAdmits(candidate, required)) {
    ASSERT_GE(QuantizeWeight(candidate), ThresholdCode(required))
        << "candidate " << candidate << " (bits "
        << std::bit_cast<uint32_t>(candidate) << ") required " << required
        << " (bits " << std::bit_cast<uint32_t>(required) << ")";
  }
}

TEST(CompactQuantizerTest, NeverRejectsFloatAdmittedOnEdgeGrid) {
  for (const float c : kEdgeValues) {
    for (const float r : kEdgeValues) {
      ExpectNeverRejectsAdmitted(c, r);
    }
  }
  // Every value admits itself (float add rounds upward-monotone), so the
  // prescreen must pass a row against its own requirement.
  for (const float x : kEdgeValues) {
    ASSERT_TRUE(FloatAdmits(x, x));
    ExpectNeverRejectsAdmitted(x, x);
  }
}

TEST(CompactQuantizerTest, NeverRejectsFloatAdmittedRandomSweep) {
  const uint64_t seed = psi::testing::TestSeed(0xc0de02);
  PSI_LOG_TEST_SEED(seed);
  util::Rng rng(seed);
  for (int trial = 0; trial < 200000; ++trial) {
    const auto cbits = static_cast<uint32_t>(rng.NextBounded(0x7f800000ULL));
    uint32_t rbits;
    switch (rng.NextBounded(3)) {
      case 0:  // independent magnitude
        rbits = static_cast<uint32_t>(rng.NextBounded(0x7f800000ULL));
        break;
      case 1: {  // a few ulps away: the rounding-slop regime of the proof
        const auto delta = static_cast<int64_t>(rng.NextBounded(9)) - 4;
        const int64_t moved = static_cast<int64_t>(cbits) + delta;
        rbits = static_cast<uint32_t>(
            std::clamp<int64_t>(moved, 0, 0x7f7fffff));
        break;
      }
      default:  // same binade, different mantissa
        rbits = (cbits & 0xff800000u) |
                static_cast<uint32_t>(rng.NextBounded(0x00800000ULL));
        break;
    }
    ExpectNeverRejectsAdmitted(FromBits(cbits), FromBits(rbits));
  }
}

// Whole-row version of the contract on real signatures, including a star
// graph whose center row concentrates maximal degree into one label.
TEST(CompactQuantizerTest, RowPrescreenNeverRejectsSatisfyingRealRows) {
  const uint64_t seed = psi::testing::TestSeed(0xc0de03);
  PSI_LOG_TEST_SEED(seed);

  graph::GraphBuilder b;
  const graph::NodeId center = b.AddNode(0);
  for (int i = 0; i < 2000; ++i) {
    b.AddEdge(center, b.AddNode(1));
  }
  const graph::Graph star = std::move(b).Build();

  for (const auto method :
       {signature::Method::kExploration, signature::Method::kMatrix}) {
    const SignatureMatrix sigs = signature::BuildSignatures(
        star, method, 2, star.num_labels());
    SparseRequirement req;
    for (const graph::NodeId u : {center, graph::NodeId{1}}) {
      req.Assign(sigs.row(u));
      CompactSignatureMatrix compact = CompactSignatureMatrix::Build(sigs);
      // Every row that passes the exact float test must pass the prescreen.
      for (size_t v = 0; v < sigs.num_rows(); ++v) {
        if (req.Satisfies(sigs.row(v))) {
          EXPECT_TRUE(
              signature::internal::CompactRowMaySatisfy(compact.row(v), req))
              << "method " << static_cast<int>(method) << " row " << v;
        }
      }
    }
  }
}

// The bulk filter with a compact attachment must keep exactly the same
// candidates in exactly the same order as the float-only matrix — the
// admit-with-recheck guarantee FilterCandidates documents.
TEST(CompactFilterTest, FilterCandidatesByteIdenticalWithCompactAttached) {
  const uint64_t seed = psi::testing::TestSeed(0xc0de04);
  PSI_LOG_TEST_SEED(seed);
  const graph::Graph g = psi::testing::MakeRandomGraph(300, 1000, 4, seed);

  for (const auto method :
       {signature::Method::kExploration, signature::Method::kMatrix}) {
    SignatureMatrix with_compact = signature::BuildSignatures(
        g, method, 2, g.num_labels());
    const SignatureMatrix float_only = with_compact;  // copies drop compact
    with_compact.BuildCompact();
    ASSERT_NE(with_compact.compact(), nullptr);
    ASSERT_EQ(float_only.compact(), nullptr);

    std::vector<graph::NodeId> all_nodes(g.num_nodes());
    for (size_t i = 0; i < all_nodes.size(); ++i) {
      all_nodes[i] = static_cast<graph::NodeId>(i);
    }

    util::Rng rng(seed ^ static_cast<uint64_t>(method));
    SparseRequirement req;
    for (int trial = 0; trial < 40; ++trial) {
      // Requirement rows drawn from the data matrix itself: selective
      // (high-degree rows reject most candidates) and permissive alike.
      const auto pivot =
          static_cast<graph::NodeId>(rng.NextBounded(g.num_nodes()));
      req.Assign(float_only.row(pivot));

      std::vector<graph::NodeId> kept_float = all_nodes;
      std::vector<graph::NodeId> kept_compact = all_nodes;
      const size_t pruned_float =
          signature::FilterCandidates(float_only, req, kept_float);
      const size_t pruned_compact =
          signature::FilterCandidates(with_compact, req, kept_compact);
      ASSERT_EQ(kept_float, kept_compact) << "pivot row " << pivot;
      ASSERT_EQ(pruned_float, pruned_compact);
    }
  }
}

// Dispatch parity: whatever path CompactRowMaySatisfy selects at runtime
// (AVX2 on supporting CPUs, scalar otherwise) must return the same verdict
// as the always-scalar reference on every input — including row lengths
// around the 32-byte vector boundary where the masked tail kicks in.
TEST(CompactFilterTest, DispatchMatchesScalarReference) {
  const uint64_t seed = psi::testing::TestSeed(0xc0de05);
  PSI_LOG_TEST_SEED(seed);
  util::Rng rng(seed);
  // Log which path this run actually exercised (the CI matrix includes
  // AVX2 hosts; on others this test degenerates to scalar-vs-scalar).
  SCOPED_TRACE(::testing::Message()
               << "KernelsUseAvx2=" << signature::KernelsUseAvx2());

  for (const size_t dim : {1u, 5u, 25u, 31u, 32u, 33u, 63u, 64u, 65u, 100u}) {
    SparseRequirement req;
    std::vector<float> required(dim);
    CompactSignatureMatrix rows(/*num_rows=*/64, dim);
    for (int trial = 0; trial < 50; ++trial) {
      for (float& r : required) {
        // Mix of unconstrained (<= 0) and constrained labels across
        // magnitudes, denormals included.
        r = rng.NextBounded(4) == 0
                ? 0.0f
                : FromBits(static_cast<uint32_t>(
                      rng.NextBounded(0x7f800000ULL)));
      }
      req.Assign(required);

      for (size_t i = 0; i < rows.num_rows(); ++i) {
        uint8_t* row = rows.mutable_row(i);
        const auto need = req.dense_threshold_codes();
        switch (rng.NextBounded(4)) {
          case 0:  // random codes
            for (size_t l = 0; l < dim; ++l) {
              row[l] = static_cast<uint8_t>(rng.NextBounded(256));
            }
            break;
          case 1:  // exactly the thresholds: must pass
            std::memcpy(row, need.data(), dim);
            break;
          case 2: {  // thresholds with one label nudged below: the only
                     // failing lane may sit anywhere, including the masked
                     // tail block
            std::memcpy(row, need.data(), dim);
            const size_t l = rng.NextBounded(dim);
            if (row[l] > 0) row[l] = static_cast<uint8_t>(row[l] - 1);
            break;
          }
          default:  // thresholds plus slack: must pass
            for (size_t l = 0; l < dim; ++l) {
              row[l] = static_cast<uint8_t>(
                  std::min<uint32_t>(255, need[l] + rng.NextBounded(3)));
            }
            break;
        }
      }
      for (size_t i = 0; i < rows.num_rows(); ++i) {
        const auto row = rows.row(i);
        ASSERT_EQ(signature::internal::CompactRowMaySatisfy(row, req),
                  signature::internal::CompactRowMaySatisfyScalar(row, req))
            << "dim " << dim << " row " << i << " trial " << trial;
      }
    }
  }
}

// Shard slicing copies global compact rows byte-for-byte; re-quantizing the
// sliced float rows must reproduce them exactly (the partitioner's
// bit-identical-slicing contract extended to the compact companion).
TEST(CompactShardTest, SlicedCompactRowsEqualRequantization) {
  const uint64_t seed = psi::testing::TestSeed(0xc0de06);
  PSI_LOG_TEST_SEED(seed);
  const graph::Graph g = psi::testing::MakeRandomGraph(250, 800, 4, seed);
  SignatureMatrix gs = signature::BuildSignatures(
      g, signature::Method::kMatrix, 2, g.num_labels());
  gs.BuildCompact();

  for (const uint32_t k : {1u, 2u}) {
    shard::PartitionOptions options;
    options.num_shards = k;
    const shard::PartitionedGraph pg = shard::BuildPartitionedGraph(
        g, gs, shard::GraphPartitioner(options).Partition(g));
    for (const shard::ShardPart& part : pg.parts) {
      ASSERT_NE(part.sigs.compact(), nullptr) << "k=" << k;
      const CompactSignatureMatrix& sliced = *part.sigs.compact();
      ASSERT_EQ(sliced.num_rows(), part.sigs.num_rows());
      for (size_t i = 0; i < part.sigs.num_rows(); ++i) {
        const auto floats = part.sigs.row(i);
        const auto codes = sliced.row(i);
        for (size_t l = 0; l < floats.size(); ++l) {
          ASSERT_EQ(codes[l], QuantizeWeight(floats[l]))
              << "k=" << k << " shard " << part.layout.shard << " row " << i
              << " label " << l;
        }
      }
    }
  }
}

}  // namespace
}  // namespace psi
