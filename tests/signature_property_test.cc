#include <tuple>

#include <gtest/gtest.h>

#include "graph/algorithms.h"
#include "graph/query_extractor.h"
#include "match/engine.h"
#include "signature/builders.h"
#include "tests/test_fixtures.h"

namespace psi::signature {
namespace {

/// Parameter: (seed, query size, method).
using PropertyParam = std::tuple<uint64_t, size_t, Method>;

class SignatureSoundnessTest
    : public ::testing::TestWithParam<PropertyParam> {};

// Proposition 3.2 (both builders): if a data node u is a valid pivot
// binding, then NS_u satisfies NS_pivot. Equivalently: the satisfaction
// filter never prunes a truly valid node. Checked against brute-force
// enumeration ground truth on random graphs/queries.
TEST_P(SignatureSoundnessTest, ValidNodesAlwaysSatisfyPivotSignature) {
  const auto [base_seed, query_size, method] = GetParam();
  const uint64_t seed = psi::testing::TestSeed(base_seed, query_size);
  PSI_LOG_TEST_SEED(seed);
  const graph::Graph g = psi::testing::MakeRandomGraph(300, 900, 4, seed);
  graph::QueryExtractor extractor(g);
  util::Rng rng(seed * 31 + 1);
  const graph::QueryGraph q = extractor.Extract(query_size, rng);
  if (q.num_nodes() != query_size) GTEST_SKIP() << "extraction failed";

  const SignatureMatrix gs = BuildSignatures(g, method, 2, g.num_labels());
  const SignatureMatrix qs = BuildSignatures(q, method, 2, g.num_labels());

  match::BasicEngine engine(g);
  const auto projection =
      engine.ProjectPivot(q, match::MatchingEngine::Options());
  ASSERT_TRUE(projection.complete);
  ASSERT_FALSE(projection.pivot_matches.empty());  // induced => >= 1 match

  for (const graph::NodeId u : projection.pivot_matches) {
    EXPECT_TRUE(Satisfies(gs.row(u), qs.row(q.pivot())))
        << MethodName(method) << " node " << u << " query " << q.ToString();
  }
}

// The same soundness must hold for *every* query node, not only the pivot
// (the pessimist prunes at every recursion level).
TEST_P(SignatureSoundnessTest, EmbeddingImagesSatisfyPerNodeSignatures) {
  const auto [base_seed, query_size, method] = GetParam();
  const uint64_t seed = psi::testing::TestSeed(base_seed, query_size + 100);
  PSI_LOG_TEST_SEED(seed);
  const graph::Graph g = psi::testing::MakeRandomGraph(200, 700, 3, seed);
  graph::QueryExtractor extractor(g);
  util::Rng rng(seed * 53 + 7);
  const graph::QueryGraph q = extractor.Extract(query_size, rng);
  if (q.num_nodes() != query_size) GTEST_SKIP() << "extraction failed";

  const SignatureMatrix gs = BuildSignatures(g, method, 2, g.num_labels());
  const SignatureMatrix qs = BuildSignatures(q, method, 2, g.num_labels());

  match::BasicEngine engine(g);
  match::MatchingEngine::Options options;
  options.max_embeddings = 200;
  size_t checked = 0;
  engine.Enumerate(
      q,
      [&](std::span<const graph::NodeId> mapping) {
        for (graph::NodeId v = 0; v < q.num_nodes(); ++v) {
          EXPECT_TRUE(Satisfies(gs.row(mapping[v]), qs.row(v)));
          ++checked;
        }
        return true;
      },
      options);
  EXPECT_GT(checked, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    RandomGraphs, SignatureSoundnessTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 6, 7, 8),
                       ::testing::Values(3, 4, 5, 6),
                       ::testing::Values(Method::kExploration,
                                         Method::kMatrix)));

class DominationTest : public ::testing::TestWithParam<uint64_t> {};

// Matrix weights count depth-bounded walks, exploration weights count
// shortest-path-distance contributions once — so the matrix weight of every
// (node, label) dominates the exploration weight.
TEST_P(DominationTest, MatrixWeightsDominateExplorationWeights) {
  const uint64_t seed = psi::testing::TestSeed(GetParam());
  PSI_LOG_TEST_SEED(seed);
  const graph::Graph g = psi::testing::MakeRandomGraph(150, 500, 4, seed);
  const SignatureMatrix expl =
      BuildExplorationSignatures(g, 2, g.num_labels());
  const SignatureMatrix matr = BuildMatrixSignatures(g, 2, g.num_labels());
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    for (size_t l = 0; l < g.num_labels(); ++l) {
      EXPECT_GE(matr.at(u, l) + 1e-5f, expl.at(u, l))
          << "u=" << u << " l=" << l;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DominationTest,
                         ::testing::Values(11, 22, 33, 44, 55));

class DepthMonotonicityTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, Method>> {};

// Weights only grow with depth: deeper propagation adds non-negative terms.
TEST_P(DepthMonotonicityTest, DeeperSignaturesDominateShallower) {
  const auto [base_seed, method] = GetParam();
  const uint64_t seed = psi::testing::TestSeed(base_seed);
  PSI_LOG_TEST_SEED(seed);
  const graph::Graph g = psi::testing::MakeRandomGraph(100, 300, 3, seed);
  const SignatureMatrix d1 = BuildSignatures(g, method, 1, g.num_labels());
  const SignatureMatrix d3 = BuildSignatures(g, method, 3, g.num_labels());
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    for (size_t l = 0; l < g.num_labels(); ++l) {
      EXPECT_GE(d3.at(u, l) + 1e-5f, d1.at(u, l));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, DepthMonotonicityTest,
    ::testing::Combine(::testing::Values(101, 202, 303),
                       ::testing::Values(Method::kExploration,
                                         Method::kMatrix)));

class DecaySoundnessTest
    : public ::testing::TestWithParam<std::tuple<float, Method>> {};

// Proposition 3.2 holds for any per-hop decay in (0, 1], not only the
// paper's 1/2 — valid nodes must satisfy the pivot signature at every
// decay setting.
TEST_P(DecaySoundnessTest, ValidNodesSatisfyAtAnyDecay) {
  const auto [decay, method] = GetParam();
  const uint64_t seed = psi::testing::TestSeed(404);
  PSI_LOG_TEST_SEED(seed);
  const graph::Graph g = psi::testing::MakeRandomGraph(250, 800, 4, seed);
  graph::QueryExtractor extractor(g);
  util::Rng rng(seed + 1);
  const graph::QueryGraph q = extractor.Extract(4, rng);
  if (q.num_nodes() != 4u) GTEST_SKIP() << "extraction failed";

  const SignatureMatrix gs =
      BuildSignatures(g, method, 2, g.num_labels(), nullptr, decay);
  const SignatureMatrix qs =
      BuildSignatures(q, method, 2, g.num_labels(), decay);
  EXPECT_FLOAT_EQ(gs.decay(), decay);
  EXPECT_FLOAT_EQ(qs.decay(), decay);

  match::BasicEngine engine(g);
  const auto projection =
      engine.ProjectPivot(q, match::MatchingEngine::Options());
  ASSERT_TRUE(projection.complete);
  for (const graph::NodeId u : projection.pivot_matches) {
    EXPECT_TRUE(Satisfies(gs.row(u), qs.row(q.pivot())))
        << "decay=" << decay << " node " << u;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Decays, DecaySoundnessTest,
    ::testing::Combine(::testing::Values(0.25f, 0.5f, 0.75f, 1.0f),
                       ::testing::Values(Method::kExploration,
                                         Method::kMatrix)));

}  // namespace
}  // namespace psi::signature
