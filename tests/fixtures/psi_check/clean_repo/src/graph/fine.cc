#include "util/fault_sites.h"

namespace psi::graph {
int Fine() { return 1; }
}  // namespace psi::graph
