namespace psi::util::faults {
inline constexpr char kTestSiteAlpha[] = "test.site.alpha";
}  // namespace psi::util::faults
