#include "util/fault_sites.h"

namespace psi::util {
void TouchAlpha() { PSI_INJECT_FAULT(faults::kTestSiteAlpha); }
}  // namespace psi::util
