// Mentions test.site.alpha so the registered site counts as exercised.
TEST(Clean, Alpha) { use("test.site.alpha"); }
