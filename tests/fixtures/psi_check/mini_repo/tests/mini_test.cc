// Cross-reference targets for the psi_check fixture tree: mentions
// test.site.alpha (the exercised fault site) plus good_counter and
// missing_in_tostring (asserted metrics counters). Never compiled.
TEST(Mini, CountersAndSites) {
  use("test.site.alpha");
  assert_counter(snapshot.good_counter);
  assert_counter(snapshot.missing_in_tostring);
}
