#include <string>

namespace psi::service {

std::string MetricsSnapshot::ToString() const {
  std::string out;
  out += std::to_string(good_counter);
  out += std::to_string(missing_in_tests);
  return out;
}

}  // namespace psi::service
