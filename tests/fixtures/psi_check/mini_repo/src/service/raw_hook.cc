namespace psi::service {
void RawHook() { PSI_INJECT_FAULT("test.site.alpha"); }
const char* kShadow = "test.site.beta";
}  // namespace psi::service
