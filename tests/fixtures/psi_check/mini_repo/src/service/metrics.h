namespace psi::service {

struct MetricsSnapshot {
  uint64_t good_counter = 0;
  uint64_t missing_in_tostring = 0;
  uint64_t missing_in_tests = 0;

  std::string ToString() const;
};

class MetricsRegistry {
 private:
  std::atomic<uint64_t> good_counter_{0};
  std::atomic<uint64_t> orphan_counter_{0};
};

}  // namespace psi::service
