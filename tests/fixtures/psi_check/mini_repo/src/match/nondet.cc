#include <cstdlib>
#include <unordered_set>

namespace psi::match {
int HashOrderSum() {
  std::unordered_set<int> items;
  int sum = rand();
  for (const int v : items) sum += v;
  return sum;
}
}  // namespace psi::match
