namespace psi::util {
// psi-check: allow(determinism) justification missing the dash separator
int Placeholder() { return 0; }
}  // namespace psi::util
