// Fixture registry: alpha is documented, tested and hooked; beta is none
// of the three, so its declaration line collects all three fault-site
// findings when psi_check scans this tree.
namespace psi::util::faults {
inline constexpr char kTestSiteAlpha[] = "test.site.alpha";
inline constexpr char kTestSiteBeta[] = "test.site.beta";
}  // namespace psi::util::faults
