// A fully annotated lock-owning class: zero findings expected here.
namespace psi::util {
class Clean {
 public:
  int value() const;

 private:
  mutable Mutex mutex_;
  int value_ PSI_GUARDED_BY(mutex_) = 0;
};
}  // namespace psi::util
