#include "util/status.h"
#include "core/engine.h"

namespace psi::graph {}
