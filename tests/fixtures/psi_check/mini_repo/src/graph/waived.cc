#include <cstdlib>

namespace psi::graph {
int WaivedEntropy() {
  // psi-check: allow(determinism) -- fixture: exercising the waiver path
  return rand();
}
}  // namespace psi::graph
