namespace psi::core {
class LockHog {
 public:
  void Touch();

 private:
  util::Mutex mutex_;
  int counter_;
};
}  // namespace psi::core
