#include "graph/datasets.h"

#include <gtest/gtest.h>

namespace psi::graph {
namespace {

TEST(DatasetsTest, SpecsMatchPaperTable3) {
  const DatasetSpec& yeast = GetDatasetSpec(Dataset::kYeast);
  EXPECT_EQ(yeast.name, "Yeast");
  EXPECT_EQ(yeast.nodes, 3112u);
  EXPECT_EQ(yeast.edges, 12519u);
  EXPECT_EQ(yeast.labels, 71u);

  const DatasetSpec& weibo = GetDatasetSpec(Dataset::kWeibo);
  EXPECT_EQ(weibo.nodes, 1655678u);
  EXPECT_EQ(weibo.edges, 369438063u);
  EXPECT_EQ(weibo.labels, 55u);
}

TEST(DatasetsTest, AllDatasetsListsSix) {
  EXPECT_EQ(AllDatasets().size(), 6u);
}

TEST(DatasetsTest, FullScaleSmallDatasets) {
  const Graph yeast = MakeDataset(Dataset::kYeast, 1.0, 42);
  EXPECT_EQ(yeast.num_nodes(), 3112u);
  EXPECT_EQ(yeast.num_edges(), 12519u);
  EXPECT_LE(yeast.num_labels(), 71u);

  const Graph cora = MakeDataset(Dataset::kCora, 1.0, 42);
  EXPECT_EQ(cora.num_nodes(), 2708u);
  EXPECT_LE(cora.num_labels(), 7u);
}

TEST(DatasetsTest, HumanIsDenserThanYeast) {
  const Graph yeast = MakeDataset(Dataset::kYeast, 1.0, 1);
  const Graph human = MakeDataset(Dataset::kHuman, 1.0, 1);
  EXPECT_GT(human.average_degree(), 3.0 * yeast.average_degree());
}

TEST(DatasetsTest, ScalingShrinksCounts) {
  const Graph g = MakeDataset(Dataset::kYouTube, 0.002, 7);
  const DatasetSpec& spec = GetDatasetSpec(Dataset::kYouTube);
  EXPECT_NEAR(static_cast<double>(g.num_nodes()),
              0.002 * static_cast<double>(spec.nodes),
              0.002 * static_cast<double>(spec.nodes) * 0.05 + 32);
  EXPECT_GT(g.num_edges(), g.num_nodes());  // keeps density above 1
}

TEST(DatasetsTest, DeterministicInSeed) {
  const Graph a = MakeDataset(Dataset::kCora, 0.5, 99);
  const Graph b = MakeDataset(Dataset::kCora, 0.5, 99);
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (NodeId u = 0; u < a.num_nodes(); ++u) {
    ASSERT_EQ(a.label(u), b.label(u));
  }
}

TEST(DatasetsTest, DifferentSeedsDiffer) {
  const Graph a = MakeDataset(Dataset::kCora, 0.5, 1);
  const Graph b = MakeDataset(Dataset::kCora, 0.5, 2);
  bool any_diff = a.num_edges() != b.num_edges();
  for (NodeId u = 0; !any_diff && u < a.num_nodes(); ++u) {
    any_diff = a.label(u) != b.label(u);
  }
  EXPECT_TRUE(any_diff);
}

}  // namespace
}  // namespace psi::graph
