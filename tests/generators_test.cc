#include "graph/generators.h"

#include <gtest/gtest.h>

#include "graph/algorithms.h"
#include "tests/test_fixtures.h"

namespace psi::graph {
namespace {

// Generator tests seed their Rng through psi::testing::TestSeed: failures
// log the seed, and PSI_TEST_SEED=<n> replays the binary under it. The
// Deterministic test keeps a literal seed — it asserts same-seed equality,
// which holds for every seed.

LabelConfig ThreeLabels() {
  LabelConfig c;
  c.num_labels = 3;
  c.zipf_exponent = 0.8;
  return c;
}

TEST(ErdosRenyiTest, ExactCounts) {
  const uint64_t seed = psi::testing::TestSeed(1);
  PSI_LOG_TEST_SEED(seed);
  util::Rng rng(seed);
  const Graph g = ErdosRenyi(100, 250, ThreeLabels(), rng);
  EXPECT_EQ(g.num_nodes(), 100u);
  EXPECT_EQ(g.num_edges(), 250u);
  EXPECT_LE(g.num_labels(), 3u);
}

TEST(ErdosRenyiTest, Deterministic) {
  util::Rng rng1(7);
  util::Rng rng2(7);
  const Graph a = ErdosRenyi(50, 100, ThreeLabels(), rng1);
  const Graph b = ErdosRenyi(50, 100, ThreeLabels(), rng2);
  for (NodeId u = 0; u < 50; ++u) {
    EXPECT_EQ(a.label(u), b.label(u));
    const auto na = a.neighbors(u);
    const auto nb = b.neighbors(u);
    ASSERT_EQ(na.size(), nb.size());
    for (size_t i = 0; i < na.size(); ++i) EXPECT_EQ(na[i], nb[i]);
  }
}

TEST(ErdosRenyiTest, ZeroEdges) {
  const uint64_t seed = psi::testing::TestSeed(2);
  PSI_LOG_TEST_SEED(seed);
  util::Rng rng(seed);
  const Graph g = ErdosRenyi(10, 0, ThreeLabels(), rng);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(BarabasiAlbertTest, SizeAndAttachment) {
  const uint64_t seed = psi::testing::TestSeed(3);
  PSI_LOG_TEST_SEED(seed);
  util::Rng rng(seed);
  const Graph g = BarabasiAlbert(200, 3, ThreeLabels(), rng);
  EXPECT_EQ(g.num_nodes(), 200u);
  // Seed clique (4 nodes, 6 edges) + 196 nodes × 3 edges.
  EXPECT_EQ(g.num_edges(), 6u + 196u * 3u);
  // Preferential attachment: early nodes should be hubs.
  size_t early_degree = 0;
  size_t late_degree = 0;
  for (NodeId u = 0; u < 10; ++u) early_degree += g.degree(u);
  for (NodeId u = 190; u < 200; ++u) late_degree += g.degree(u);
  EXPECT_GT(early_degree, late_degree);
}

TEST(BarabasiAlbertTest, Connected) {
  const uint64_t seed = psi::testing::TestSeed(4);
  PSI_LOG_TEST_SEED(seed);
  util::Rng rng(seed);
  const Graph g = BarabasiAlbert(100, 2, ThreeLabels(), rng);
  size_t components = 0;
  ConnectedComponents(g, &components);
  EXPECT_EQ(components, 1u);
}

TEST(ChungLuTest, HeavyTail) {
  const uint64_t seed = psi::testing::TestSeed(5);
  PSI_LOG_TEST_SEED(seed);
  util::Rng rng(seed);
  const Graph g = ChungLuPowerLaw(2000, 6000, 2.2, ThreeLabels(), rng);
  EXPECT_EQ(g.num_nodes(), 2000u);
  EXPECT_GT(g.num_edges(), 5000u);  // duplicates may drop a few
  const DegreeStats stats = ComputeDegreeStats(g);
  // Power-law: the hub should greatly exceed the median.
  EXPECT_GT(static_cast<double>(stats.max), 10.0 * (stats.median + 1.0));
}

TEST(ChungLuTest, BoundedRetriesTerminate) {
  const uint64_t seed = psi::testing::TestSeed(6);
  PSI_LOG_TEST_SEED(seed);
  util::Rng rng(seed);
  // Absurdly dense request: must terminate with fewer edges, not loop.
  const Graph g = ChungLuPowerLaw(20, 5000, 2.0, ThreeLabels(), rng);
  EXPECT_LE(g.num_edges(), 190u);  // at most n(n-1)/2
}

TEST(RmatTest, SizeAndSkew) {
  const uint64_t seed = psi::testing::TestSeed(8);
  PSI_LOG_TEST_SEED(seed);
  util::Rng rng(seed);
  const Graph g = Rmat(10, 4000, 0.57, 0.19, 0.19, ThreeLabels(), rng);
  EXPECT_EQ(g.num_nodes(), 1024u);
  EXPECT_GT(g.num_edges(), 3000u);
  const DegreeStats stats = ComputeDegreeStats(g);
  EXPECT_GT(stats.max, 3 * static_cast<size_t>(stats.mean));
}

TEST(LabelAssignmentTest, ZipfSkewShowsInFrequencies) {
  const uint64_t seed = psi::testing::TestSeed(9);
  PSI_LOG_TEST_SEED(seed);
  util::Rng rng(seed);
  LabelConfig labels;
  labels.num_labels = 10;
  labels.zipf_exponent = 1.2;
  const Graph g = ErdosRenyi(5000, 10000, labels, rng);
  EXPECT_GT(g.label_frequency(0), g.label_frequency(9) * 3);
}

TEST(EdgeLabelTest, MultipleEdgeLabelsGenerated) {
  const uint64_t seed = psi::testing::TestSeed(10);
  PSI_LOG_TEST_SEED(seed);
  util::Rng rng(seed);
  LabelConfig labels = ThreeLabels();
  labels.num_edge_labels = 4;
  const Graph g = ErdosRenyi(100, 400, labels, rng);
  std::vector<bool> seen(4, false);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (const Label l : g.edge_labels(u)) seen[l] = true;
  }
  int distinct = 0;
  for (const bool s : seen) distinct += s ? 1 : 0;
  EXPECT_GE(distinct, 3);
}

}  // namespace
}  // namespace psi::graph
