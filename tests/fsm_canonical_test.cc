#include "fsm/canonical.h"

#include <gtest/gtest.h>

#include "tests/test_fixtures.h"

namespace psi::fsm {
namespace {

graph::QueryGraph Path3(graph::Label a, graph::Label b, graph::Label c) {
  graph::QueryGraph q;
  q.AddNode(a);
  q.AddNode(b);
  q.AddNode(c);
  q.AddEdge(0, 1);
  q.AddEdge(1, 2);
  return q;
}

TEST(CanonicalCodeTest, IsomorphicPathsShareCode) {
  // a-b-c path and its mirror c-b-a are isomorphic.
  EXPECT_EQ(CanonicalCode(Path3(0, 1, 2)), CanonicalCode(Path3(2, 1, 0)));
}

TEST(CanonicalCodeTest, NodeIdRenamingInvariant) {
  // Same triangle built with different insertion orders.
  graph::QueryGraph a;
  a.AddNode(0);
  a.AddNode(1);
  a.AddNode(2);
  a.AddEdge(0, 1);
  a.AddEdge(1, 2);
  a.AddEdge(0, 2);

  graph::QueryGraph b;
  b.AddNode(2);
  b.AddNode(0);
  b.AddNode(1);
  b.AddEdge(1, 2);
  b.AddEdge(0, 2);
  b.AddEdge(0, 1);

  EXPECT_EQ(CanonicalCode(a), CanonicalCode(b));
  EXPECT_TRUE(ArePatternsIsomorphic(a, b));
}

TEST(CanonicalCodeTest, DifferentLabelsDiffer) {
  EXPECT_NE(CanonicalCode(Path3(0, 1, 2)), CanonicalCode(Path3(0, 2, 1)));
}

TEST(CanonicalCodeTest, DifferentStructureDiffers) {
  // Path 0-1-2 vs star with same labels... a 3-node path IS a star; use 4
  // nodes: path vs star.
  graph::QueryGraph path;
  for (int i = 0; i < 4; ++i) path.AddNode(0);
  path.AddEdge(0, 1);
  path.AddEdge(1, 2);
  path.AddEdge(2, 3);

  graph::QueryGraph star;
  for (int i = 0; i < 4; ++i) star.AddNode(0);
  star.AddEdge(0, 1);
  star.AddEdge(0, 2);
  star.AddEdge(0, 3);

  EXPECT_NE(CanonicalCode(path), CanonicalCode(star));
  EXPECT_FALSE(ArePatternsIsomorphic(path, star));
}

TEST(CanonicalCodeTest, EdgeLabelsMatter) {
  graph::QueryGraph a;
  a.AddNode(0);
  a.AddNode(0);
  a.AddEdge(0, 1, 1);

  graph::QueryGraph b;
  b.AddNode(0);
  b.AddNode(0);
  b.AddEdge(0, 1, 2);

  EXPECT_NE(CanonicalCode(a), CanonicalCode(b));
}

TEST(CanonicalCodeTest, SizeMismatchShortCircuits) {
  graph::QueryGraph a;
  a.AddNode(0);
  graph::QueryGraph b;
  b.AddNode(0);
  b.AddNode(0);
  b.AddEdge(0, 1);
  EXPECT_FALSE(ArePatternsIsomorphic(a, b));
}

TEST(CanonicalCodeTest, EmptyPattern) {
  graph::QueryGraph q;
  EXPECT_EQ(CanonicalCode(q), "");
}

TEST(CanonicalCodeTest, RandomRelabelingsAgree) {
  // Take the Figure 2 query, rebuild it under random node permutations,
  // and verify all codes match.
  const graph::QueryGraph base = psi::testing::MakeFigure2Query();
  const std::string base_code = CanonicalCode(base);
  util::Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<graph::NodeId> perm(base.num_nodes());
    for (size_t i = 0; i < perm.size(); ++i) {
      perm[i] = static_cast<graph::NodeId>(i);
    }
    util::Shuffle(perm, rng);
    graph::QueryGraph renamed;
    std::vector<graph::NodeId> new_id(base.num_nodes());
    for (size_t i = 0; i < perm.size(); ++i) {
      new_id[perm[i]] = renamed.AddNode(base.label(perm[i]));
    }
    for (graph::NodeId v = 0; v < base.num_nodes(); ++v) {
      for (const auto& [nbr, elabel] : base.neighbors(v)) {
        if (v < nbr) renamed.AddEdge(new_id[v], new_id[nbr], elabel);
      }
    }
    EXPECT_EQ(CanonicalCode(renamed), base_code) << "trial " << trial;
  }
}

}  // namespace
}  // namespace psi::fsm
