#include "graph/equivalence.h"

#include <unordered_set>

#include <gtest/gtest.h>

#include "core/smart_psi.h"
#include "graph/graph_builder.h"
#include "graph/query_extractor.h"
#include "match/engine.h"
#include "tests/test_fixtures.h"

namespace psi::graph {
namespace {

TEST(EquivalenceTest, OpenTwinsDetected) {
  // A star: the three leaves share the center as their whole neighborhood.
  GraphBuilder b;
  const NodeId center = b.AddNode(0);
  const NodeId l1 = b.AddNode(1);
  const NodeId l2 = b.AddNode(1);
  const NodeId l3 = b.AddNode(1);
  b.AddEdge(center, l1);
  b.AddEdge(center, l2);
  b.AddEdge(center, l3);
  const Graph g = std::move(b).Build();
  const EquivalenceClasses classes = ComputeSyntacticEquivalence(g);
  EXPECT_TRUE(classes.Equivalent(l1, l2));
  EXPECT_TRUE(classes.Equivalent(l2, l3));
  EXPECT_FALSE(classes.Equivalent(center, l1));
  EXPECT_EQ(classes.num_classes(), 2u);
}

TEST(EquivalenceTest, DifferentLabelsNeverTwins) {
  GraphBuilder b;
  const NodeId center = b.AddNode(0);
  const NodeId l1 = b.AddNode(1);
  const NodeId l2 = b.AddNode(2);  // same neighborhood, different label
  b.AddEdge(center, l1);
  b.AddEdge(center, l2);
  const Graph g = std::move(b).Build();
  const EquivalenceClasses classes = ComputeSyntacticEquivalence(g);
  EXPECT_FALSE(classes.Equivalent(l1, l2));
}

TEST(EquivalenceTest, EdgeLabelsDistinguishOpenTwins) {
  GraphBuilder b;
  const NodeId center = b.AddNode(0);
  const NodeId l1 = b.AddNode(1);
  const NodeId l2 = b.AddNode(1);
  b.AddEdge(center, l1, 7);
  b.AddEdge(center, l2, 8);  // different edge label
  const Graph g = std::move(b).Build();
  const EquivalenceClasses classes = ComputeSyntacticEquivalence(g);
  EXPECT_FALSE(classes.Equivalent(l1, l2));
}

TEST(EquivalenceTest, ClosedTwinsDetected) {
  // Triangle of same-label nodes plus one attachment: the two triangle
  // nodes not carrying the attachment are adjacent closed twins.
  GraphBuilder b;
  const NodeId a = b.AddNode(0);
  const NodeId c = b.AddNode(0);
  const NodeId d = b.AddNode(0);
  const NodeId tail = b.AddNode(1);
  b.AddEdge(a, c);
  b.AddEdge(a, d);
  b.AddEdge(c, d);
  b.AddEdge(a, tail);
  const Graph g = std::move(b).Build();
  const EquivalenceClasses classes = ComputeSyntacticEquivalence(g);
  EXPECT_TRUE(classes.Equivalent(c, d));
  EXPECT_FALSE(classes.Equivalent(a, c));
}

TEST(EquivalenceTest, RepresentativeIsSmallestMember) {
  GraphBuilder b;
  const NodeId center = b.AddNode(0);
  const NodeId l1 = b.AddNode(1);
  const NodeId l2 = b.AddNode(1);
  b.AddEdge(center, l1);
  b.AddEdge(center, l2);
  const Graph g = std::move(b).Build();
  const EquivalenceClasses classes = ComputeSyntacticEquivalence(g);
  EXPECT_EQ(classes.representative[classes.class_of[l2]], l1);
}

TEST(EquivalenceTest, IsolatedNodesWithSameLabelAreTwins) {
  GraphBuilder b;
  b.AddNodes(3);
  b.SetNodeLabel(2, 1);
  const Graph g = std::move(b).Build();
  const EquivalenceClasses classes = ComputeSyntacticEquivalence(g);
  EXPECT_TRUE(classes.Equivalent(0, 1));
  EXPECT_FALSE(classes.Equivalent(0, 2));
}

// Twins must share PSI validity — verified against ground truth with the
// engine's exploit_equivalence knob on and off.
class EquivalenceExactnessTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EquivalenceExactnessTest, EngineWithEquivalenceMatchesGroundTruth) {
  // Power-law graphs have many degree-1 twins hanging off hubs.
  util::Rng gen_rng(GetParam());
  LabelConfig labels;
  labels.num_labels = 3;
  labels.zipf_exponent = 0.5;
  const Graph g = ChungLuPowerLaw(400, 900, 2.1, labels, gen_rng);

  const EquivalenceClasses classes = ComputeSyntacticEquivalence(g);
  ASSERT_LT(classes.num_classes(), g.num_nodes());  // twins must exist

  QueryExtractor extractor(g);
  util::Rng rng(GetParam() * 7 + 3);
  const QueryGraph q = extractor.Extract(4, rng);
  if (q.num_nodes() != 4) GTEST_SKIP();

  match::BasicEngine basic(g);
  const auto truth = basic.ProjectPivot(q, match::MatchingEngine::Options());
  ASSERT_TRUE(truth.complete);

  core::SmartPsiConfig config;
  config.exploit_equivalence = true;
  config.min_candidates_for_ml = 8;
  core::SmartPsiEngine engine(g, config);
  const auto result = engine.Evaluate(q);
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.valid_nodes, truth.pivot_matches) << q.ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, EquivalenceExactnessTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

TEST(EquivalenceTest, TwinsShareValidityOnRandomGraphs) {
  // Direct statement of the theorem the engine relies on: for every query,
  // the ground-truth valid set is a union of equivalence classes restricted
  // to the candidate set.
  util::Rng gen_rng(99);
  LabelConfig labels;
  labels.num_labels = 2;
  labels.zipf_exponent = 0.3;
  const Graph g = ChungLuPowerLaw(300, 700, 2.2, labels, gen_rng);
  const EquivalenceClasses classes = ComputeSyntacticEquivalence(g);

  QueryExtractor extractor(g);
  util::Rng rng(100);
  match::BasicEngine basic(g);
  for (int trial = 0; trial < 8; ++trial) {
    const QueryGraph q = extractor.Extract(3, rng);
    if (q.num_nodes() != 3) continue;
    const auto truth =
        basic.ProjectPivot(q, match::MatchingEngine::Options());
    ASSERT_TRUE(truth.complete);
    std::unordered_set<NodeId> valid(truth.pivot_matches.begin(),
                                     truth.pivot_matches.end());
    for (const NodeId u : truth.pivot_matches) {
      // Every candidate twin of a valid node must be valid too.
      for (NodeId v = 0; v < g.num_nodes(); ++v) {
        if (v == u || !classes.Equivalent(u, v)) continue;
        EXPECT_TRUE(valid.count(v) > 0)
            << "twin " << v << " of valid " << u << " not valid, query "
            << q.ToString();
      }
    }
  }
}

}  // namespace
}  // namespace psi::graph
