// Property tests for the deterministic label-aware partitioner
// (DESIGN.md §13): ownership is a partition of the vertex set, the
// balance cap holds on every random graph, layouts replicate boundary
// vertices exactly as documented (owned adjacency complete, ghost
// adjacency partial, no ghost-ghost edges), and per-shard signature rows
// are bit-identical slices of the global matrix.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "graph/graph.h"
#include "shard/partitioner.h"
#include "signature/builders.h"
#include "tests/test_fixtures.h"

namespace psi::shard {
namespace {

signature::SignatureMatrix GlobalSigs(const graph::Graph& g) {
  return signature::BuildSignatures(g, signature::Method::kMatrix, /*depth=*/2,
                                    g.num_labels());
}

PartitionedGraph Partitioned(const graph::Graph& g, uint32_t k) {
  PartitionOptions options;
  options.num_shards = k;
  const GraphPartitioner partitioner(options);
  return BuildPartitionedGraph(g, GlobalSigs(g), partitioner.Partition(g));
}

size_t HardCap(size_t n, uint32_t k, double balance_factor) {
  const size_t ceil_share = (n + k - 1) / k;
  const size_t soft_cap = static_cast<size_t>(
      balance_factor * static_cast<double>(n) / static_cast<double>(k));
  return std::max(ceil_share, soft_cap);
}

/// The (neighbor global id, edge label) multiset of one vertex, from any
/// graph through an id-translation function.
template <typename ToGlobal>
std::multiset<std::pair<graph::NodeId, graph::Label>> AdjacencyOf(
    const graph::Graph& g, graph::NodeId u, ToGlobal to_global) {
  std::multiset<std::pair<graph::NodeId, graph::Label>> adjacency;
  const auto neighbors = g.neighbors(u);
  const auto labels = g.edge_labels(u);
  for (size_t i = 0; i < neighbors.size(); ++i) {
    adjacency.emplace(to_global(neighbors[i]), labels[i]);
  }
  return adjacency;
}

// 100 random graphs (25 seeds × 4 shard counts): ownership is exactly a
// partition and no shard exceeds the hard balance cap.
TEST(GraphPartitionerTest, OwnershipPartitionsAndBalancesRandomGraphs) {
  for (uint64_t seed_index = 0; seed_index < 25; ++seed_index) {
    const uint64_t seed = psi::testing::TestSeed(1000 + seed_index, seed_index);
    PSI_LOG_TEST_SEED(seed);
    const graph::Graph g = psi::testing::MakeRandomGraph(
        120 + 40 * (seed_index % 5), 400 + 60 * (seed_index % 7), 4, seed);
    for (const uint32_t k : {1u, 2u, 3u, 4u}) {
      SCOPED_TRACE(::testing::Message() << "seed=" << seed << " k=" << k);
      PartitionOptions options;
      options.num_shards = k;
      const ShardAssignment assignment =
          GraphPartitioner(options).Partition(g);

      ASSERT_EQ(assignment.num_shards, k);
      ASSERT_EQ(assignment.owner.size(), g.num_nodes());
      ASSERT_EQ(assignment.owned_counts.size(), k);
      std::vector<size_t> recount(k, 0);
      for (const uint32_t owner : assignment.owner) {
        ASSERT_LT(owner, k);
        ++recount[owner];
      }
      size_t total = 0;
      for (uint32_t s = 0; s < k; ++s) {
        EXPECT_EQ(assignment.owned_counts[s], recount[s]);
        total += recount[s];
      }
      EXPECT_EQ(total, g.num_nodes()) << "every vertex owned exactly once";

      const size_t cap = HardCap(g.num_nodes(), k, options.balance_factor);
      for (uint32_t s = 0; s < k; ++s) {
        EXPECT_LE(assignment.owned_counts[s], cap);
      }
    }
  }
}

TEST(GraphPartitionerTest, DeterministicAcrossRuns) {
  for (const uint64_t base : {3u, 17u, 99u}) {
    const uint64_t seed = psi::testing::TestSeed(base);
    PSI_LOG_TEST_SEED(seed);
    const graph::Graph g = psi::testing::MakeRandomGraph(200, 700, 5, seed);
    PartitionOptions options;
    options.num_shards = 4;
    const ShardAssignment first = GraphPartitioner(options).Partition(g);
    const ShardAssignment second = GraphPartitioner(options).Partition(g);
    EXPECT_EQ(first.owner, second.owner);
    EXPECT_EQ(first.owned_counts, second.owned_counts);
  }
}

TEST(GraphPartitionerTest, SingleShardOwnsEverything) {
  const graph::Graph g = psi::testing::MakeFigure1Graph();
  const PartitionedGraph pg = Partitioned(g, 1);
  ASSERT_EQ(pg.parts.size(), 1u);
  EXPECT_EQ(pg.parts[0].layout.num_owned, g.num_nodes());
  EXPECT_EQ(pg.parts[0].layout.num_ghosts(), 0u);
  EXPECT_EQ(pg.parts[0].subgraph.num_edges(), g.num_edges());
}

// Layout invariants: owned locals first in ascending global order, ghosts
// after in ascending global order, global_to_local the exact inverse, and
// local_in_owner consistent with the owner map.
TEST(GraphPartitionerTest, LayoutsReplicateBoundariesExactly) {
  const uint64_t seed = psi::testing::TestSeed(7);
  PSI_LOG_TEST_SEED(seed);
  const graph::Graph g = psi::testing::MakeRandomGraph(180, 600, 4, seed);
  const PartitionedGraph pg = Partitioned(g, 3);
  ASSERT_EQ(pg.parts.size(), 3u);
  ASSERT_EQ(pg.local_in_owner.size(), g.num_nodes());
  for (const ShardPart& part : pg.parts) {
    const ShardLayout& layout = part.layout;
    ASSERT_EQ(layout.local_to_global.size(), part.subgraph.num_nodes());
    for (size_t local = 0; local < layout.local_to_global.size(); ++local) {
      const graph::NodeId global = layout.local_to_global[local];
      const bool owned = local < layout.num_owned;
      EXPECT_EQ(pg.assignment.owner[global] == layout.shard, owned);
      EXPECT_EQ(layout.LocalId(global), local);
      if (owned) {
        EXPECT_EQ(pg.local_in_owner[global], local);
      }
      if (local > 0 && local != layout.num_owned) {
        EXPECT_LT(layout.local_to_global[local - 1], global)
            << "owned and ghost ranges each ascend in global id";
      }
      // Labels survive the translation.
      EXPECT_EQ(part.subgraph.label(static_cast<graph::NodeId>(local)),
                g.label(global));
    }
    // Every ghost is adjacent to at least one owned vertex (that is why it
    // was replicated).
    for (size_t local = layout.num_owned;
         local < layout.local_to_global.size(); ++local) {
      bool touches_owned = false;
      for (const graph::NodeId n :
           part.subgraph.neighbors(static_cast<graph::NodeId>(local))) {
        touches_owned = touches_owned || n < layout.num_owned;
      }
      EXPECT_TRUE(touches_owned);
    }
  }
}

// Edge coverage: an owned vertex's shard adjacency is its complete global
// adjacency (the soundness precondition for owner-side verification); a
// ghost's adjacency is a subset containing only edges toward owned
// vertices (no ghost-ghost edges materialized).
TEST(GraphPartitionerTest, OwnedAdjacencyCompleteGhostAdjacencyPartial) {
  const uint64_t seed = psi::testing::TestSeed(13);
  PSI_LOG_TEST_SEED(seed);
  const graph::Graph g = psi::testing::MakeRandomGraph(150, 500, 3, seed);
  const PartitionedGraph pg = Partitioned(g, 4);
  for (const ShardPart& part : pg.parts) {
    const ShardLayout& layout = part.layout;
    auto to_global = [&](graph::NodeId local) {
      return layout.local_to_global[local];
    };
    for (size_t local = 0; local < layout.local_to_global.size(); ++local) {
      const graph::NodeId global = layout.local_to_global[local];
      const auto local_adjacency = AdjacencyOf(
          part.subgraph, static_cast<graph::NodeId>(local), to_global);
      const auto global_adjacency =
          AdjacencyOf(g, global, [](graph::NodeId v) { return v; });
      if (local < layout.num_owned) {
        EXPECT_EQ(local_adjacency, global_adjacency)
            << "owned vertex " << global << " lost adjacency";
      } else {
        EXPECT_TRUE(std::includes(global_adjacency.begin(),
                                  global_adjacency.end(),
                                  local_adjacency.begin(),
                                  local_adjacency.end()))
            << "ghost " << global << " grew adjacency";
        for (const auto& [neighbor, label] : local_adjacency) {
          EXPECT_EQ(pg.assignment.owner[neighbor], layout.shard)
              << "ghost-ghost edge materialized";
        }
      }
    }
  }
}

// Every global edge lands exactly once in each endpoint-owner's shard CSR
// (once total when both endpoints share an owner) — assignment modulo the
// documented boundary replication.
TEST(GraphPartitionerTest, EveryEdgeAssignedOncePerOwningShard) {
  const uint64_t seed = psi::testing::TestSeed(29);
  PSI_LOG_TEST_SEED(seed);
  const graph::Graph g = psi::testing::MakeRandomGraph(160, 550, 4, seed);
  const PartitionedGraph pg = Partitioned(g, 3);

  // Expected copies of undirected edge (u, v), u <= v.
  std::map<std::pair<graph::NodeId, graph::NodeId>, size_t> expected;
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    for (const graph::NodeId v : g.neighbors(u)) {
      if (v < u) continue;
      expected[{u, v}] +=
          pg.assignment.owner[u] == pg.assignment.owner[v] ? 1 : 2;
    }
  }
  std::map<std::pair<graph::NodeId, graph::NodeId>, size_t> materialized;
  size_t total_edges = 0;
  for (const ShardPart& part : pg.parts) {
    total_edges += part.subgraph.num_edges();
    for (graph::NodeId u = 0; u < part.subgraph.num_nodes(); ++u) {
      const graph::NodeId gu = part.layout.local_to_global[u];
      for (const graph::NodeId v : part.subgraph.neighbors(u)) {
        const graph::NodeId gv = part.layout.local_to_global[v];
        if (gv < gu) continue;
        ++materialized[{gu, gv}];
      }
    }
  }
  EXPECT_EQ(materialized, expected);
  EXPECT_EQ(pg.num_edges, g.num_edges());
  EXPECT_GE(total_edges, g.num_edges());
}

TEST(GraphPartitionerTest, SignatureRowsAreBitIdenticalSlices) {
  const uint64_t seed = psi::testing::TestSeed(31);
  PSI_LOG_TEST_SEED(seed);
  const graph::Graph g = psi::testing::MakeRandomGraph(140, 450, 4, seed);
  const signature::SignatureMatrix global = GlobalSigs(g);
  PartitionOptions options;
  options.num_shards = 4;
  const PartitionedGraph pg = BuildPartitionedGraph(
      g, global, GraphPartitioner(options).Partition(g));
  for (const ShardPart& part : pg.parts) {
    ASSERT_EQ(part.sigs.num_rows(), part.layout.local_to_global.size());
    for (size_t local = 0; local < part.sigs.num_rows(); ++local) {
      const auto shard_row = part.sigs.row(local);
      const auto global_row = global.row(part.layout.local_to_global[local]);
      ASSERT_EQ(shard_row.size(), global_row.size());
      for (size_t j = 0; j < shard_row.size(); ++j) {
        ASSERT_EQ(shard_row[j], global_row[j])
            << "shard " << part.layout.shard << " local " << local;
      }
    }
  }
}

TEST(GraphPartitionerTest, GlobalLabelCountsPreserved) {
  const uint64_t seed = psi::testing::TestSeed(37);
  PSI_LOG_TEST_SEED(seed);
  const graph::Graph g = psi::testing::MakeRandomGraph(130, 400, 5, seed);
  const PartitionedGraph pg = Partitioned(g, 2);
  ASSERT_EQ(pg.label_counts.size(), g.num_labels());
  for (graph::Label l = 0; l < g.num_labels(); ++l) {
    EXPECT_EQ(pg.label_counts[l], g.label_frequency(l));
  }
  EXPECT_EQ(pg.num_nodes, g.num_nodes());
  EXPECT_EQ(pg.num_labels, g.num_labels());
}

}  // namespace
}  // namespace psi::shard
