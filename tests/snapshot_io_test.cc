// Conformance suite for the .psnap binary snapshot format (DESIGN.md
// §16.2/§16.3): a save→load round trip must reproduce the graph, the float
// signatures, the compact codes, the row hashes — and the engine answers —
// exactly; and every malformed input (truncation at any byte, bit flips in
// the header or any payload, version skew, dimension overflows, CSR
// invariant violations) must come back as a clean error Status, never a
// crash, an over-read, or a silently wrong snapshot. The golden-fixture
// test pins the on-disk layout itself: a byte written by an older build
// must keep loading, and re-saving the loaded snapshot must reproduce the
// fixture byte-for-byte.

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/pure_drivers.h"
#include "match/engine.h"
#include "service/snapshot_io.h"
#include "signature/builders.h"
#include "signature/compact_signature.h"
#include "tests/test_fixtures.h"
#include "util/checksum.h"
#include "util/fault_injection.h"

namespace psi {
namespace {

using service::LoadSnapshotFile;
using service::SaveSnapshotFile;

struct Sample {
  graph::Graph graph;
  signature::SignatureMatrix sigs;
};

/// A small graph + fully-equipped matrix (compact codes attached, row
/// hashes memoized) — everything the writer persists.
Sample MakeSample(uint64_t seed, size_t nodes = 60, size_t edges = 150) {
  Sample s;
  s.graph = psi::testing::MakeRandomGraph(nodes, edges, 3, seed);
  s.sigs = signature::BuildSignatures(
      s.graph, signature::Method::kMatrix, 2, s.graph.num_labels());
  s.sigs.BuildCompact();
  for (size_t i = 0; i < s.sigs.num_rows(); ++i) s.sigs.RowHash(i);
  return s;
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << path;
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out) << path;
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

template <typename T>
T ReadScalar(const std::string& buf, size_t at) {
  T value;
  std::memcpy(&value, buf.data() + at, sizeof(T));
  return value;
}

template <typename T>
void PatchScalar(std::string* buf, size_t at, T value) {
  std::memcpy(buf->data() + at, &value, sizeof(T));
}

// Header field offsets (the layout contract of snapshot_io.h).
constexpr size_t kOffVersion = 4;
constexpr size_t kOffMethod = 8;
constexpr size_t kOffDecay = 16;
constexpr size_t kOffFlags = 20;
constexpr size_t kOffNumNodes = 24;
constexpr size_t kOffNumSections = 48;
constexpr size_t kOffHeaderChecksum = 56;

size_t TableBytes(const std::string& buf) {
  return static_cast<size_t>(ReadScalar<uint32_t>(buf, kOffNumSections)) *
         service::kPsnapSectionEntryBytes;
}

/// Recomputes the chained header/table checksum after a field patch, so a
/// test can present a *structurally valid* header with a hostile field and
/// reach the specific rejection it targets instead of the checksum catch-all.
void FixHeaderChecksum(std::string* buf) {
  uint64_t c = util::Fnv1a64Words(buf->data(), kOffHeaderChecksum);
  c = util::Fnv1a64Words(buf->data() + service::kPsnapHeaderBytes,
                         TableBytes(*buf), c);
  PatchScalar<uint64_t>(buf, kOffHeaderChecksum, c);
}

struct TableEntry {
  uint32_t id = 0;
  uint64_t offset = 0;
  uint64_t size = 0;
};

std::vector<TableEntry> ReadTable(const std::string& buf) {
  const auto n = ReadScalar<uint32_t>(buf, kOffNumSections);
  std::vector<TableEntry> entries(n);
  for (uint32_t i = 0; i < n; ++i) {
    const size_t at =
        service::kPsnapHeaderBytes + i * service::kPsnapSectionEntryBytes;
    entries[i].id = ReadScalar<uint32_t>(buf, at);
    entries[i].offset = ReadScalar<uint64_t>(buf, at + 8);
    entries[i].size = ReadScalar<uint64_t>(buf, at + 16);
  }
  return entries;
}

/// Recomputes section i's payload checksum and the header checksum — the
/// corruption-with-valid-checksums path that must still be caught by the
/// semantic validation layers (CSR invariants).
void FixSectionChecksum(std::string* buf, size_t table_index) {
  const size_t at = service::kPsnapHeaderBytes +
                    table_index * service::kPsnapSectionEntryBytes;
  const auto offset = ReadScalar<uint64_t>(*buf, at + 8);
  const auto size = ReadScalar<uint64_t>(*buf, at + 16);
  PatchScalar<uint64_t>(buf, at + 24,
                        util::Fnv1a64Words(buf->data() + offset, size));
  FixHeaderChecksum(buf);
}

void ExpectStatusContains(const util::Status& status, const char* needle) {
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find(needle), std::string::npos)
      << status.ToString();
}

class SnapshotIoTest : public ::testing::Test {
 protected:
  void SetUp() override { util::FaultInjector::Global().DisarmAll(); }
  void TearDown() override { util::FaultInjector::Global().DisarmAll(); }
};

TEST_F(SnapshotIoTest, RoundTripPreservesGraphSignaturesAndHashes) {
  const uint64_t seed = psi::testing::TestSeed(0x5a01);
  PSI_LOG_TEST_SEED(seed);
  const Sample s = MakeSample(seed);
  const std::string path = TempPath("roundtrip.psnap");
  ASSERT_TRUE(SaveSnapshotFile(s.graph, s.sigs, path).ok());

  const auto loaded = LoadSnapshotFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const graph::Graph& g = loaded.value().graph;
  // Views must be used through a const reference: the mutating accessors
  // of SignatureMatrix assert ownership.
  const signature::SignatureMatrix& sigs = loaded.value().sigs;

  ASSERT_EQ(g.num_nodes(), s.graph.num_nodes());
  ASSERT_EQ(g.num_edges(), s.graph.num_edges());
  ASSERT_EQ(g.num_labels(), s.graph.num_labels());
  for (size_t u = 0; u < g.num_nodes(); ++u) {
    const auto id = static_cast<graph::NodeId>(u);
    ASSERT_EQ(g.label(id), s.graph.label(id));
    const auto nb = g.neighbors(id);
    const auto expected_nb = s.graph.neighbors(id);
    ASSERT_TRUE(std::equal(nb.begin(), nb.end(), expected_nb.begin(),
                           expected_nb.end()))
        << "node " << u;
    const auto el = g.edge_labels(id);
    const auto expected_el = s.graph.edge_labels(id);
    ASSERT_TRUE(std::equal(el.begin(), el.end(), expected_el.begin(),
                           expected_el.end()))
        << "node " << u;
  }

  EXPECT_FALSE(sigs.owns_data());  // zero-copy out of the mapping
  ASSERT_EQ(sigs.num_rows(), s.sigs.num_rows());
  ASSERT_EQ(sigs.num_labels(), s.sigs.num_labels());
  EXPECT_EQ(sigs.method(), s.sigs.method());
  EXPECT_EQ(sigs.depth(), s.sigs.depth());
  EXPECT_EQ(sigs.decay(), s.sigs.decay());
  ASSERT_NE(sigs.compact(), nullptr);
  for (size_t i = 0; i < sigs.num_rows(); ++i) {
    const auto row = sigs.row(i);
    const auto expected_row = s.sigs.row(i);
    ASSERT_EQ(0, std::memcmp(row.data(), expected_row.data(),
                             row.size() * sizeof(float)))
        << "float row " << i;
    const auto codes = sigs.compact()->row(i);
    const auto expected_codes = s.sigs.compact()->row(i);
    ASSERT_EQ(0,
              std::memcmp(codes.data(), expected_codes.data(), codes.size()))
        << "compact row " << i;
    ASSERT_EQ(sigs.RowHash(i), s.sigs.RowHash(i)) << "row hash " << i;
  }

  // Strongest equality: re-saving the loaded snapshot reproduces the file
  // byte-for-byte (the writer is a pure function of the loaded state).
  const std::string resaved = TempPath("roundtrip_resave.psnap");
  ASSERT_TRUE(SaveSnapshotFile(g, sigs, resaved).ok());
  EXPECT_EQ(ReadFileBytes(path), ReadFileBytes(resaved));
}

TEST_F(SnapshotIoTest, AnswersFromMappedSnapshotMatchInMemoryBuild) {
  const uint64_t seed = psi::testing::TestSeed(0x5a02);
  PSI_LOG_TEST_SEED(seed);
  const Sample s = MakeSample(seed, /*nodes=*/120, /*edges=*/380);
  const std::string path = TempPath("answers.psnap");
  ASSERT_TRUE(SaveSnapshotFile(s.graph, s.sigs, path).ok());
  const auto loaded = LoadSnapshotFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const signature::SignatureMatrix& mapped_sigs = loaded.value().sigs;

  for (const size_t query_size : {3u, 4u}) {
    const graph::QueryGraph q =
        psi::testing::ExtractQuery(s.graph, query_size, seed * 31 + query_size);
    if (q.num_nodes() != query_size) continue;
    SCOPED_TRACE(::testing::Message() << "query_size=" << query_size);

    match::BasicEngine basic(s.graph);
    const auto truth = basic.ProjectPivot(q, match::MatchingEngine::Options());
    ASSERT_TRUE(truth.complete);

    for (const core::PureStrategy strategy :
         {core::PureStrategy::kOptimistic, core::PureStrategy::kPessimistic}) {
      core::PureDriverOptions pure;
      pure.strategy = strategy;
      const auto in_memory = core::EvaluatePure(s.graph, s.sigs, q, pure);
      const auto from_snapshot =
          core::EvaluatePure(loaded.value().graph, mapped_sigs, q, pure);
      ASSERT_TRUE(in_memory.complete);
      ASSERT_TRUE(from_snapshot.complete);
      EXPECT_EQ(in_memory.valid_nodes, truth.pivot_matches);
      EXPECT_EQ(from_snapshot.valid_nodes, truth.pivot_matches);
    }
  }
}

TEST_F(SnapshotIoTest, TruncationAtEveryByteFailsCleanly) {
  const uint64_t seed = psi::testing::TestSeed(0x5a03);
  PSI_LOG_TEST_SEED(seed);
  const Sample s = MakeSample(seed, /*nodes=*/40, /*edges=*/90);
  const std::string path = TempPath("trunc_full.psnap");
  ASSERT_TRUE(SaveSnapshotFile(s.graph, s.sigs, path).ok());
  const std::string full = ReadFileBytes(path);
  ASSERT_GT(full.size(), service::kPsnapHeaderBytes);

  // Every prefix that cuts into header, table, or any payload must be
  // rejected. A cut strictly inside the trailing zero pad leaves a
  // structurally complete file — such prefixes may load, and must load
  // the same data as the full file.
  const auto table = ReadTable(full);
  const uint64_t last_payload_end =
      table.back().offset + table.back().size;
  const std::string cut_path = TempPath("trunc_cut.psnap");
  for (size_t cut = 0; cut < full.size(); ++cut) {
    WriteFileBytes(cut_path, full.substr(0, cut));
    const auto result = LoadSnapshotFile(cut_path);
    if (cut < last_payload_end) {
      EXPECT_FALSE(result.ok()) << "accepted a " << cut << "-byte prefix";
    } else if (result.ok()) {
      EXPECT_EQ(result.value().graph.num_nodes(), s.graph.num_nodes());
    }
  }
}

TEST_F(SnapshotIoTest, HeaderAndTableBitFlipsAreAllRejected) {
  const uint64_t seed = psi::testing::TestSeed(0x5a04);
  PSI_LOG_TEST_SEED(seed);
  const Sample s = MakeSample(seed, /*nodes=*/30, /*edges=*/60);
  const std::string path = TempPath("hdrflip_full.psnap");
  ASSERT_TRUE(SaveSnapshotFile(s.graph, s.sigs, path).ok());
  const std::string full = ReadFileBytes(path);
  const size_t protected_bytes = service::kPsnapHeaderBytes + TableBytes(full);

  const std::string flip_path = TempPath("hdrflip_cut.psnap");
  for (size_t i = 0; i < protected_bytes; ++i) {
    for (const unsigned char mask : {0x01, 0x80, 0xff}) {
      std::string corrupted = full;
      corrupted[i] = static_cast<char>(corrupted[i] ^ mask);
      WriteFileBytes(flip_path, corrupted);
      // Every header/table byte is covered by the chained header checksum
      // (including the checksum field itself), so any flip must fail.
      EXPECT_FALSE(LoadSnapshotFile(flip_path).ok())
          << "byte " << i << " mask " << static_cast<int>(mask);
    }
  }
}

TEST_F(SnapshotIoTest, PayloadBitFlipsAreCaughtBySectionChecksums) {
  const uint64_t seed = psi::testing::TestSeed(0x5a05);
  PSI_LOG_TEST_SEED(seed);
  const Sample s = MakeSample(seed, /*nodes=*/30, /*edges=*/60);
  const std::string path = TempPath("payload_full.psnap");
  ASSERT_TRUE(SaveSnapshotFile(s.graph, s.sigs, path).ok());
  const std::string full = ReadFileBytes(path);

  const std::string flip_path = TempPath("payload_cut.psnap");
  for (const TableEntry& e : ReadTable(full)) {
    ASSERT_GT(e.size, 0u);
    for (const uint64_t at :
         {e.offset, e.offset + e.size / 2, e.offset + e.size - 1}) {
      for (const unsigned char mask : {0x01, 0x80, 0xff}) {
        std::string corrupted = full;
        corrupted[at] = static_cast<char>(corrupted[at] ^ mask);
        WriteFileBytes(flip_path, corrupted);
        const auto result = LoadSnapshotFile(flip_path);
        ASSERT_FALSE(result.ok())
            << "section " << e.id << " byte " << at;
        ExpectStatusContains(result.status(), "checksum mismatch");
      }
    }
  }
}

TEST_F(SnapshotIoTest, VersionSkewAndHostileHeaderFieldsRejectedSpecifically) {
  const uint64_t seed = psi::testing::TestSeed(0x5a06);
  PSI_LOG_TEST_SEED(seed);
  const Sample s = MakeSample(seed, /*nodes=*/30, /*edges=*/60);
  const std::string path = TempPath("fields_full.psnap");
  ASSERT_TRUE(SaveSnapshotFile(s.graph, s.sigs, path).ok());
  const std::string full = ReadFileBytes(path);
  const std::string hostile_path = TempPath("fields_cut.psnap");

  const auto expect_rejection = [&](const std::string& bytes,
                                    const char* needle) {
    WriteFileBytes(hostile_path, bytes);
    const auto result = LoadSnapshotFile(hostile_path);
    ExpectStatusContains(result.status(), needle);
  };

  {  // A future version must be refused, not misparsed.
    std::string bytes = full;
    PatchScalar<uint32_t>(&bytes, kOffVersion, service::kPsnapVersion + 1);
    FixHeaderChecksum(&bytes);
    expect_rejection(bytes, "unsupported version");
  }
  {  // Unknown flag bits mean sections this build cannot interpret.
    std::string bytes = full;
    PatchScalar<uint32_t>(&bytes, kOffFlags,
                          ReadScalar<uint32_t>(bytes, kOffFlags) | 0x80u);
    FixHeaderChecksum(&bytes);
    expect_rejection(bytes, "unknown flags");
  }
  {
    std::string bytes = full;
    PatchScalar<uint32_t>(&bytes, kOffMethod, 7);
    FixHeaderChecksum(&bytes);
    expect_rejection(bytes, "bad method");
  }
  {
    std::string bytes = full;
    PatchScalar<float>(&bytes, kOffDecay, 2.5f);
    FixHeaderChecksum(&bytes);
    expect_rejection(bytes, "decay out of range");
  }
  {
    std::string bytes = full;
    PatchScalar<uint32_t>(&bytes, kOffNumSections, 5);
    // Version 1 pins the section list; the count check fires before the
    // checksum is even computed, so no fixup is needed (or possible — the
    // claimed table size changed).
    expect_rejection(bytes, "wrong section count");
  }
  {  // A node count beyond the 32-bit id space must be stopped before any
     // size arithmetic or allocation.
    std::string bytes = full;
    PatchScalar<uint64_t>(&bytes, kOffNumNodes, uint64_t{1} << 33);
    FixHeaderChecksum(&bytes);
    expect_rejection(bytes, "32-bit node id space");
  }
  {  // Not a snapshot at all.
    std::string bytes = full;
    bytes[0] = 'X';
    expect_rejection(bytes, "not a PSNP");
  }
  {  // Shorter than the fixed header.
    expect_rejection(std::string("PSNP"), "shorter than the fixed header");
  }
}

// Corruption with *valid* checksums: the CSR invariants are the last line
// of defense, because the graph's contents are used as indices. The new
// cursor-based symmetry check must reject a one-sided arc and a one-sided
// edge-label change.
TEST_F(SnapshotIoTest, ChecksummedButInvalidCsrRejectedByInvariants) {
  const uint64_t seed = psi::testing::TestSeed(0x5a07);
  PSI_LOG_TEST_SEED(seed);
  const Sample s = MakeSample(seed, /*nodes=*/30, /*edges=*/60);
  const std::string path = TempPath("csr_full.psnap");
  ASSERT_TRUE(SaveSnapshotFile(s.graph, s.sigs, path).ok());
  const std::string full = ReadFileBytes(path);
  const auto table = ReadTable(full);
  const std::string bad_path = TempPath("csr_cut.psnap");

  {  // Flip one direction's edge label: adjacency stays symmetric and
     // ascending, the label pairing does not.
    std::string bytes = full;
    const TableEntry& edge_labels = table[2];
    ASSERT_EQ(edge_labels.id,
              static_cast<uint32_t>(service::SnapshotSection::kCsrEdgeLabels));
    PatchScalar<uint32_t>(
        &bytes, edge_labels.offset,
        ReadScalar<uint32_t>(bytes, edge_labels.offset) ^ 1u);
    FixSectionChecksum(&bytes, 2);
    WriteFileBytes(bad_path, bytes);
    const auto result = LoadSnapshotFile(bad_path);
    ExpectStatusContains(result.status(), "CSR adoption");
  }
  {  // Smash a neighbor id: depending on the value this trips the range,
     // ascending, or symmetry invariant — any CSR rejection is correct,
     // silence is not.
    std::string bytes = full;
    const TableEntry& neighbors = table[1];
    ASSERT_EQ(neighbors.id,
              static_cast<uint32_t>(service::SnapshotSection::kCsrNeighbors));
    PatchScalar<uint32_t>(&bytes, neighbors.offset, 0xfffffff0u);
    FixSectionChecksum(&bytes, 1);
    WriteFileBytes(bad_path, bytes);
    const auto result = LoadSnapshotFile(bad_path);
    ExpectStatusContains(result.status(), "CSR adoption");
  }
}

TEST_F(SnapshotIoTest, DescribeReportsHeaderWithoutTouchingPayloads) {
  const uint64_t seed = psi::testing::TestSeed(0x5a08);
  PSI_LOG_TEST_SEED(seed);
  const Sample s = MakeSample(seed);
  const std::string path = TempPath("describe.psnap");
  ASSERT_TRUE(SaveSnapshotFile(s.graph, s.sigs, path).ok());

  const auto info = service::DescribeSnapshotFile(path);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info.value().version, service::kPsnapVersion);
  EXPECT_EQ(info.value().method, s.sigs.method());
  EXPECT_EQ(info.value().depth, s.sigs.depth());
  EXPECT_TRUE(info.value().has_compact);
  EXPECT_EQ(info.value().num_nodes, s.graph.num_nodes());
  EXPECT_EQ(info.value().num_edges, s.graph.num_edges());
  EXPECT_EQ(info.value().num_labels, s.graph.num_labels());
  EXPECT_EQ(info.value().file_bytes, ReadFileBytes(path).size());

  // Describe validates the header checksum: a payload flip is invisible to
  // it, a table flip is not.
  std::string corrupted = ReadFileBytes(path);
  corrupted[service::kPsnapHeaderBytes + 8] ^= 0x01;  // first entry offset
  const std::string bad_path = TempPath("describe_bad.psnap");
  WriteFileBytes(bad_path, corrupted);
  EXPECT_FALSE(service::DescribeSnapshotFile(bad_path).ok());
}

TEST_F(SnapshotIoTest, SnapshotWithoutCompactSectionRoundTrips) {
  const uint64_t seed = psi::testing::TestSeed(0x5a09);
  PSI_LOG_TEST_SEED(seed);
  Sample s = MakeSample(seed);
  s.sigs.AttachCompact(nullptr);  // drop the compact companion
  const std::string path = TempPath("nocompact.psnap");
  ASSERT_TRUE(SaveSnapshotFile(s.graph, s.sigs, path).ok());

  const auto info = service::DescribeSnapshotFile(path);
  ASSERT_TRUE(info.ok());
  EXPECT_FALSE(info.value().has_compact);
  EXPECT_EQ(info.value().num_sections, 8u);

  const auto loaded = LoadSnapshotFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().sigs.compact(), nullptr);
  EXPECT_EQ(loaded.value().graph.num_nodes(), s.graph.num_nodes());
}

// The committed golden fixture pins the v1 byte layout: if the writer, the
// checksum definition, or any section's encoding drifts, this fails even
// though save/load round trips keep passing against each other. The
// fixture's floats are never compared against freshly built signatures
// (builds may differ in rounding); the loaded bytes themselves are the
// reference, and the answers check only needs Proposition 3.2 soundness.
TEST_F(SnapshotIoTest, GoldenFixtureLoadsAndResavesByteIdentically) {
  const std::string fixture =
      std::string(PSI_SNAPSHOT_FIXTURE_DIR) + "/golden.psnap";
  const auto loaded = LoadSnapshotFile(fixture);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const graph::Graph& g = loaded.value().graph;
  const signature::SignatureMatrix& sigs = loaded.value().sigs;

  const auto info = service::DescribeSnapshotFile(fixture);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value().version, 1u);
  EXPECT_EQ(info.value().num_nodes, 120u);
  EXPECT_EQ(info.value().num_labels, 4u);
  EXPECT_EQ(info.value().depth, 2u);
  EXPECT_EQ(info.value().method, signature::Method::kMatrix);
  EXPECT_TRUE(info.value().has_compact);
  ASSERT_NE(sigs.compact(), nullptr);

  const std::string resaved = TempPath("golden_resave.psnap");
  ASSERT_TRUE(SaveSnapshotFile(g, sigs, resaved).ok());
  EXPECT_EQ(ReadFileBytes(fixture), ReadFileBytes(resaved))
      << "the .psnap writer no longer reproduces the v1 golden layout";

  // The mapped snapshot serves correct answers.
  const graph::QueryGraph q = psi::testing::ExtractQuery(g, 3, 0x90d1);
  if (q.num_nodes() == 3) {
    match::BasicEngine basic(g);
    const auto truth = basic.ProjectPivot(q, match::MatchingEngine::Options());
    ASSERT_TRUE(truth.complete);
    core::PureDriverOptions pure;
    pure.strategy = core::PureStrategy::kPessimistic;
    const auto result = core::EvaluatePure(g, sigs, q, pure);
    ASSERT_TRUE(result.complete);
    EXPECT_EQ(result.valid_nodes, truth.pivot_matches);
  }
}

#if PSI_FAULT_INJECTION_ENABLED

// The registry-listed `snapshot.load` fault site (util/fault_sites.h): an
// injected post-validation failure must surface as a clean IoError and
// must not poison the next load of the same file.
TEST_F(SnapshotIoTest, SnapshotLoadFaultIsCleanAndTransient) {
  const uint64_t seed = psi::testing::TestSeed(0x5a0a);
  PSI_LOG_TEST_SEED(seed);
  const Sample s = MakeSample(seed);
  const std::string path = TempPath("fault.psnap");
  ASSERT_TRUE(SaveSnapshotFile(s.graph, s.sigs, path).ok());

  util::ScopedFaultSpec chaos("snapshot.load=nth:1");
  const auto faulted = LoadSnapshotFile(path);
  ASSERT_FALSE(faulted.ok());
  ExpectStatusContains(faulted.status(), "injected snapshot load failure");

  const auto retried = LoadSnapshotFile(path);  // nth:1 already fired
  ASSERT_TRUE(retried.ok()) << retried.status().ToString();
  EXPECT_EQ(retried.value().graph.num_nodes(), s.graph.num_nodes());
}

// The site under the full standard chaos schedule: loads either fail with
// the injected status or succeed with a complete, correct snapshot —
// never a partial result.
TEST_F(SnapshotIoTest, ChaosScheduleLoadsAreAllOrNothing) {
  const uint64_t seed = psi::testing::TestSeed(0x5a0b);
  PSI_LOG_TEST_SEED(seed);
  const Sample s = MakeSample(seed);
  const std::string path = TempPath("chaos.psnap");
  ASSERT_TRUE(SaveSnapshotFile(s.graph, s.sigs, path).ok());

  util::ScopedFaultSpec chaos(psi::testing::MakeChaosSchedule() +
                              ",snapshot.load=every:3");
  int failures = 0;
  int successes = 0;
  for (int i = 0; i < 9; ++i) {
    const auto result = LoadSnapshotFile(path);
    if (!result.ok()) {
      ++failures;
      ExpectStatusContains(result.status(), "injected snapshot load failure");
      continue;
    }
    ++successes;
    EXPECT_EQ(result.value().graph.num_nodes(), s.graph.num_nodes());
    EXPECT_EQ(result.value().sigs.num_rows(), s.sigs.num_rows());
    ASSERT_NE(result.value().sigs.compact(), nullptr);
  }
  EXPECT_EQ(failures, 3);  // every:3 over 9 loads
  EXPECT_EQ(successes, 6);
}

#endif  // PSI_FAULT_INJECTION_ENABLED

}  // namespace
}  // namespace psi
