// FSM over edge-labeled graphs: edge labels flow through edge-type
// discovery, canonicalization, support evaluation and extension.

#include <gtest/gtest.h>

#include "fsm/canonical.h"
#include "fsm/miner.h"
#include "graph/generators.h"
#include "tests/test_fixtures.h"

namespace psi::fsm {
namespace {

graph::Graph EdgeLabeledGraph(uint64_t seed) {
  util::Rng rng(seed);
  graph::LabelConfig labels;
  labels.num_labels = 2;
  labels.zipf_exponent = 0.3;
  labels.num_edge_labels = 3;
  return graph::ErdosRenyi(250, 800, labels, rng);
}

std::multiset<std::string> CodesOf(const FsmResult& result) {
  std::multiset<std::string> codes;
  for (const MinedPattern& m : result.frequent) {
    codes.insert(CanonicalCode(m.pattern));
  }
  return codes;
}

TEST(FsmEdgeLabelTest, MethodsAgreeOnEdgeLabeledGraphs) {
  const graph::Graph g = EdgeLabeledGraph(7);
  FsmConfig config;
  config.min_support = 25;
  config.max_edges = 3;
  config.method = SupportMethod::kEnumeration;
  const FsmResult by_enum = FsmMiner(g, config).Mine();
  config.method = SupportMethod::kPsi;
  const FsmResult by_psi = FsmMiner(g, config).Mine();
  EXPECT_TRUE(by_enum.complete);
  EXPECT_TRUE(by_psi.complete);
  EXPECT_EQ(CodesOf(by_enum), CodesOf(by_psi));
  EXPECT_FALSE(by_enum.frequent.empty());
}

TEST(FsmEdgeLabelTest, DistinctEdgeLabelsMinedAsDistinctPatterns) {
  // A graph where (0)-(0) pairs exist under two different edge labels with
  // different frequencies: mining must keep them apart.
  graph::GraphBuilder b;
  b.AddNodes(40);
  // 12 disjoint label-7 edges, 6 disjoint label-8 edges.
  for (graph::NodeId i = 0; i < 24; i += 2) b.AddEdge(i, i + 1, 7);
  for (graph::NodeId i = 24; i < 36; i += 2) b.AddEdge(i, i + 1, 8);
  const graph::Graph g = std::move(b).Build();

  // MNI of a symmetric single-edge pattern counts all endpoints (either
  // endpoint can bind either pattern node): label-7 has 24, label-8 has 12.
  FsmConfig config;
  config.min_support = 20;
  config.max_edges = 1;
  const FsmResult result = FsmMiner(g, config).Mine();
  ASSERT_EQ(result.frequent.size(), 1u);
  EXPECT_EQ(result.frequent[0].pattern.EdgeLabel(0, 1), 7u);
  EXPECT_GE(result.frequent[0].support, 20u);

  config.min_support = 12;
  const FsmResult both = FsmMiner(g, config).Mine();
  EXPECT_EQ(both.frequent.size(), 2u);
}

}  // namespace
}  // namespace psi::fsm
