// Sharded differential harness (DESIGN.md §13): the cross-shard evaluator
// and the sharded service must produce the exact pivot set the unsharded
// paths produce — embedding-for-embedding against the brute-force oracle —
// for K ∈ {1, 2, 4} shards and all three methods, on the shared fixtures.
// Each comparison runs bare and again under the standard chaos schedule
// plus the sharded fault sites armed; injected faults may change counters,
// never answers. Lives under the `differential.` ctest prefix so the CI
// chaos jobs (`ctest -R 'differential|io_fuzz|fault|snapshot'`) pick it up in every
// build configuration.

#include <cstddef>
#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "core/pure_drivers.h"
#include "match/engine.h"
#include "service/service.h"
#include "shard/cross_shard.h"
#include "shard/partitioner.h"
#include "shard/sharded_service.h"
#include "signature/builders.h"
#include "tests/test_fixtures.h"
#include "util/fault_injection.h"

namespace psi {
namespace {

using ShardedParam = std::tuple<uint64_t /*seed*/, uint32_t /*shards*/>;

class ShardedDifferentialTest
    : public ::testing::TestWithParam<ShardedParam> {
 protected:
  void SetUp() override { util::FaultInjector::Global().DisarmAll(); }
  void TearDown() override { util::FaultInjector::Global().DisarmAll(); }
};

/// Evaluates `q` through the cross-shard evaluator at shard count `k` for
/// every method and checks each answer against `oracle`.
void ExpectShardedMatchesOracle(const graph::Graph& g,
                                const graph::QueryGraph& q, uint32_t k,
                                const std::vector<graph::NodeId>& oracle,
                                const std::string& context) {
  SCOPED_TRACE(context);
  auto gs = signature::BuildSignatures(
      g, signature::Method::kMatrix, 2, g.num_labels());
  // Both signature flavors: float-only, and with the compact quantized
  // companion attached (the partitioner then slices compact rows per shard
  // and every shard-local kernel sweep runs the prescreen — DESIGN.md
  // §16.1). Answers must be identical either way.
  for (const bool compact : {false, true}) {
    SCOPED_TRACE(::testing::Message() << "compact=" << compact);
    if (compact) gs.BuildCompact();
    shard::PartitionOptions options;
    options.num_shards = k;
    const shard::PartitionedGraph pg = shard::BuildPartitionedGraph(
        g, gs, shard::GraphPartitioner(options).Partition(g));
    shard::CrossShardEvaluator evaluator(shard::ShardedView::Of(pg));
    for (const service::Method method :
         {service::Method::kOptimistic, service::Method::kPessimistic,
          service::Method::kSmart}) {
      shard::CrossShardEvaluator::Options eval;
      eval.method = method;
      const auto result = evaluator.Evaluate(q, eval);
      ASSERT_TRUE(result.complete);
      EXPECT_EQ(result.valid_nodes, oracle)
          << "method " << static_cast<int>(method) << " k=" << k;
    }
  }

  // The unsharded pure drivers agree with the oracle on the same inputs —
  // anchoring the sharded comparison to the existing differential chain.
  for (const core::PureStrategy strategy :
       {core::PureStrategy::kOptimistic, core::PureStrategy::kPessimistic}) {
    core::PureDriverOptions pure;
    pure.strategy = strategy;
    const core::PureDriverResult result = core::EvaluatePure(g, gs, q, pure);
    ASSERT_TRUE(result.complete);
    EXPECT_EQ(result.valid_nodes, oracle);
  }
}

TEST_P(ShardedDifferentialTest, ShardedEqualsUnshardedWithAndWithoutFaults) {
  const auto [base_seed, shards] = GetParam();
  const uint64_t seed = psi::testing::TestSeed(base_seed, shards);
  PSI_LOG_TEST_SEED(seed);

  const graph::Graph g = psi::testing::MakeRandomGraph(200, 640, 3, seed);
  for (const size_t query_size : {3u, 4u, 5u}) {
    const graph::QueryGraph q =
        psi::testing::ExtractQuery(g, query_size, seed * 7919 + query_size);
    if (q.num_nodes() != query_size) continue;
    SCOPED_TRACE(::testing::Message() << "query_size=" << query_size);

    match::BasicEngine basic(g);
    const auto truth = basic.ProjectPivot(q, match::MatchingEngine::Options());
    ASSERT_TRUE(truth.complete);

    ExpectShardedMatchesOracle(g, q, shards, truth.pivot_matches, "bare");
    {
      util::ScopedFaultSpec chaos(psi::testing::MakeChaosSchedule() +
                                  ",service.admission.shed=every:9," +
                                  "catalog.shard_publish=every:101");
      ExpectShardedMatchesOracle(g, q, shards, truth.pivot_matches, "chaos");
    }
  }
}

// End-to-end flavor: the full sharded service (router, fan-out, catalog,
// per-shard metrics) against the full unsharded service, same fixtures.
TEST_P(ShardedDifferentialTest, ServiceAnswersMatchEndToEnd) {
  const auto [base_seed, shards] = GetParam();
  const uint64_t seed = psi::testing::TestSeed(base_seed, shards * 131);
  PSI_LOG_TEST_SEED(seed);

  const graph::Graph g = psi::testing::MakeRandomGraph(180, 560, 4, seed);
  const graph::QueryGraph q = psi::testing::ExtractQuery(g, 4, seed * 13 + 1);
  if (q.num_nodes() != 4) GTEST_SKIP() << "extraction failed";

  service::ServiceOptions flat_options;
  flat_options.num_workers = 2;
  service::PsiService flat(g, flat_options);

  shard::ShardedServiceOptions sharded_options;
  sharded_options.num_workers = 2;
  sharded_options.build.partition.num_shards = shards;
  shard::ShardedPsiService sharded(g, sharded_options);

  for (const service::Method method :
       {service::Method::kSmart, service::Method::kOptimistic,
        service::Method::kPessimistic}) {
    service::QueryRequest request;
    request.query = q;
    request.method = method;
    const service::QueryResponse expected = flat.Execute(request);
    const service::QueryResponse actual = sharded.Execute(request);
    ASSERT_EQ(expected.status, service::RequestStatus::kOk);
    ASSERT_EQ(actual.status, service::RequestStatus::kOk);
    EXPECT_EQ(actual.valid_nodes, expected.valid_nodes)
        << "method " << static_cast<int>(method);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ShardCounts, ShardedDifferentialTest,
    ::testing::Combine(::testing::Values(19, 47, 61),
                       ::testing::Values(1u, 2u, 4u)));

}  // namespace
}  // namespace psi
