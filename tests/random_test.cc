#include "util/random.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "tests/test_fixtures.h"

namespace psi::util {
namespace {

// Statistical tests derive their seed through psi::testing::TestSeed, so a
// failure logs the seed that produced it and PSI_TEST_SEED=<n> replays the
// binary under that seed. The determinism tests keep literal seeds — they
// assert a property of *every* seed, so the value is irrelevant.

TEST(SplitMix64Test, DeterministicStream) {
  SplitMix64 a(123);
  SplitMix64 b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(SplitMix64Test, DifferentSeedsDiffer) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a(), b());
}

TEST(RngTest, DeterministicStream) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, BoundedStaysInRange) {
  const uint64_t seed = psi::testing::TestSeed(7);
  PSI_LOG_TEST_SEED(seed);
  Rng rng(seed);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, BoundedOneAlwaysZero) {
  const uint64_t seed = psi::testing::TestSeed(7, 1);
  PSI_LOG_TEST_SEED(seed);
  Rng rng(seed);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.NextBounded(1), 0u);
}

TEST(RngTest, BoundedCoversAllValues) {
  const uint64_t seed = psi::testing::TestSeed(9);
  PSI_LOG_TEST_SEED(seed);
  Rng rng(seed);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBounded(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NextIntInclusiveRange) {
  const uint64_t seed = psi::testing::TestSeed(11);
  PSI_LOG_TEST_SEED(seed);
  Rng rng(seed);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const int64_t x = rng.NextInt(-3, 3);
    EXPECT_GE(x, -3);
    EXPECT_LE(x, 3);
    saw_lo |= x == -3;
    saw_hi |= x == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  const uint64_t seed = psi::testing::TestSeed(13);
  PSI_LOG_TEST_SEED(seed);
  Rng rng(seed);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(RngTest, NextBoolProbability) {
  const uint64_t seed = psi::testing::TestSeed(17);
  PSI_LOG_TEST_SEED(seed);
  Rng rng(seed);
  int heads = 0;
  for (int i = 0; i < 20000; ++i) heads += rng.NextBool(0.25) ? 1 : 0;
  EXPECT_NEAR(heads / 20000.0, 0.25, 0.02);
  EXPECT_FALSE(rng.NextBool(0.0));
  EXPECT_TRUE(rng.NextBool(1.0));
}

TEST(RngTest, GaussianMoments) {
  const uint64_t seed = psi::testing::TestSeed(19);
  PSI_LOG_TEST_SEED(seed);
  Rng rng(seed);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.NextGaussian();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RngTest, ForkProducesIndependentStream) {
  const uint64_t seed = psi::testing::TestSeed(23);
  PSI_LOG_TEST_SEED(seed);
  Rng parent(seed);
  Rng child = parent.Fork();
  // Not a rigorous independence test — just that they differ.
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.Next() == child.Next()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(ZipfSamplerTest, UniformWhenExponentZero) {
  const uint64_t seed = psi::testing::TestSeed(29);
  PSI_LOG_TEST_SEED(seed);
  Rng rng(seed);
  ZipfSampler zipf(4, 0.0);
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 40000; ++i) ++counts[zipf.Sample(rng)];
  for (const int c : counts) EXPECT_NEAR(c / 40000.0, 0.25, 0.02);
}

TEST(ZipfSamplerTest, SkewPrefersSmallIndices) {
  const uint64_t seed = psi::testing::TestSeed(31);
  PSI_LOG_TEST_SEED(seed);
  Rng rng(seed);
  ZipfSampler zipf(10, 1.2);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 50000; ++i) ++counts[zipf.Sample(rng)];
  EXPECT_GT(counts[0], counts[4]);
  EXPECT_GT(counts[0], counts[9] * 3);
}

TEST(ZipfSamplerTest, SingleElement) {
  const uint64_t seed = psi::testing::TestSeed(37);
  PSI_LOG_TEST_SEED(seed);
  Rng rng(seed);
  ZipfSampler zipf(1, 1.0);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(zipf.Sample(rng), 0u);
}

TEST(ShuffleTest, IsPermutation) {
  const uint64_t seed = psi::testing::TestSeed(41);
  PSI_LOG_TEST_SEED(seed);
  Rng rng(seed);
  std::vector<int> items{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = items;
  Shuffle(items, rng);
  std::sort(items.begin(), items.end());
  EXPECT_EQ(items, original);
}

TEST(ShuffleTest, ActuallyShuffles) {
  const uint64_t seed = psi::testing::TestSeed(43);
  PSI_LOG_TEST_SEED(seed);
  Rng rng(seed);
  std::vector<int> items(50);
  for (int i = 0; i < 50; ++i) items[i] = i;
  const std::vector<int> original = items;
  Shuffle(items, rng);
  EXPECT_NE(items, original);
}

TEST(SampleWithoutReplacementTest, ExactSizeAndDistinct) {
  const uint64_t seed = psi::testing::TestSeed(47);
  PSI_LOG_TEST_SEED(seed);
  Rng rng(seed);
  const auto sample = SampleWithoutReplacement(100, 30, rng);
  EXPECT_EQ(sample.size(), 30u);
  std::set<size_t> distinct(sample.begin(), sample.end());
  EXPECT_EQ(distinct.size(), 30u);
  for (const size_t s : sample) EXPECT_LT(s, 100u);
}

TEST(SampleWithoutReplacementTest, KAtLeastNReturnsAll) {
  const uint64_t seed = psi::testing::TestSeed(53);
  PSI_LOG_TEST_SEED(seed);
  Rng rng(seed);
  const auto sample = SampleWithoutReplacement(10, 10, rng);
  EXPECT_EQ(sample.size(), 10u);
  const auto bigger = SampleWithoutReplacement(10, 100, rng);
  EXPECT_EQ(bigger.size(), 10u);
}

TEST(SampleWithoutReplacementTest, UniformCoverage) {
  const uint64_t seed = psi::testing::TestSeed(59);
  PSI_LOG_TEST_SEED(seed);
  Rng rng(seed);
  std::vector<int> counts(20, 0);
  for (int trial = 0; trial < 4000; ++trial) {
    for (const size_t s : SampleWithoutReplacement(20, 5, rng)) ++counts[s];
  }
  // Each element is expected 4000 * 5/20 = 1000 times.
  for (const int c : counts) EXPECT_NEAR(c, 1000, 150);
}

}  // namespace
}  // namespace psi::util
