// Fuzz-style robustness suite for every parser in the repository (DESIGN.md
// §11): malformed, truncated and oversized inputs must come back as error
// Statuses — never a crash, a hang, an unbounded allocation, or a silently
// wrong in-memory object. The CI chaos job runs this binary under
// AddressSanitizer, which turns any parser over-read into a hard failure.

#include <cstdint>
#include <cstring>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "graph/graph_io.h"
#include "service/workload.h"
#include "signature/builders.h"
#include "signature/io.h"
#include "tests/test_fixtures.h"
#include "util/fault_injection.h"

namespace psi {
namespace {

// --- .lg graph files -------------------------------------------------------

constexpr char kValidLg[] =
    "# comment\n"
    "t 1\n"
    "v 0 1\n"
    "v 1 2\n"
    "v 2 1\n"
    "e 0 1\n"
    "e 1 2 3\n";

TEST(IoFuzzTest, ValidGraphParses) {
  std::istringstream in(kValidLg);
  const auto result = graph::ReadLg(in);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().num_nodes(), 3u);
  EXPECT_EQ(result.value().num_edges(), 2u);
}

TEST(IoFuzzTest, MalformedGraphInputsErrorCleanly) {
  const char* kBad[] = {
      "v 0\n",                        // vertex missing its label
      "v x y\n",                      // non-numeric fields
      "v 1 0\n",                      // ids must be dense from 0
      "v 0 1\nv 2 1\n",               // gap in the id sequence
      "v 99999999999999999999 1\n",   // id overflows uint64
      "e 0 1\n",                      // edge before any vertex
      "v 0 1\ne 0 5\n",               // endpoint out of range
      "v 0 1\ne 0\n",                 // edge missing an endpoint
      "z what is this\n",             // unknown record kind
  };
  for (const char* text : kBad) {
    std::istringstream in(text);
    const auto result = graph::ReadLg(in);
    EXPECT_FALSE(result.ok()) << "accepted: " << text;
  }
}

// Truncation at every byte offset: each prefix either parses (the cut fell
// on a record boundary of this edges-last format) or errors — never crashes,
// and never yields a graph larger than the full file's.
TEST(IoFuzzTest, GraphTruncationAtEveryByteIsHandled) {
  const std::string full(kValidLg);
  for (size_t cut = 0; cut < full.size(); ++cut) {
    std::istringstream in(full.substr(0, cut));
    const auto result = graph::ReadLg(in);
    if (result.ok()) {
      EXPECT_LE(result.value().num_nodes(), 3u) << "cut at " << cut;
      EXPECT_LE(result.value().num_edges(), 2u) << "cut at " << cut;
    }
  }
}

// --- Pivoted query files ---------------------------------------------------

constexpr char kValidQueries[] =
    "t 1\n"
    "v 0 1\n"
    "v 1 2\n"
    "e 0 1\n"
    "p 0\n"
    "t 2\n"
    "v 0 3\n"
    "p 0\n";

TEST(IoFuzzTest, ValidQueriesParse) {
  std::istringstream in(kValidQueries);
  const auto result = graph::ReadQueries(in);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result.value().size(), 2u);
  EXPECT_EQ(result.value()[0].pivot(), 0u);
}

TEST(IoFuzzTest, MalformedQueryInputsErrorCleanly) {
  const char* kBad[] = {
      "t 1\nv 0 1\n",                 // block ends without a pivot
      "t 1\nv 0 1\nt 2\nv 0 1\np 0\n",// first block never got its pivot
      "v 0 1\np 0\n",                 // records before any 't' header
      "t 1\nv 1 1\np 0\n",            // non-dense vertex id
      "t 1\nv 0 1\ne 0 7\np 0\n",     // edge endpoint out of range
      "t 1\nv 0 1\np 4\n",            // pivot out of range
      "t 1\nv 0 1\nq 0\n",            // unknown record kind
      "t 1\nv 999999 1\np 0\n",       // id far beyond kMaxNodes
  };
  for (const char* text : kBad) {
    std::istringstream in(text);
    const auto result = graph::ReadQueries(in);
    EXPECT_FALSE(result.ok()) << "accepted: " << text;
  }
}

TEST(IoFuzzTest, EmptyStreamsAreValidAndEmpty) {
  std::istringstream empty_graph("");
  const auto g = graph::ReadLg(empty_graph);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g.value().num_nodes(), 0u);

  std::istringstream empty_queries("");
  const auto qs = graph::ReadQueries(empty_queries);
  ASSERT_TRUE(qs.ok());
  EXPECT_TRUE(qs.value().empty());
}

// --- Binary signature files ------------------------------------------------

std::string ValidSignatureBytes() {
  const graph::Graph g = psi::testing::MakeFigure1Graph();
  const auto sigs = signature::BuildSignatures(
      g, signature::Method::kMatrix, 2, g.num_labels());
  std::ostringstream out(std::ios::binary);
  signature::WriteSignatures(sigs, out);
  return out.str();
}

template <typename T>
void AppendScalar(std::string* buf, T value) {
  buf->append(reinterpret_cast<const char*>(&value), sizeof(T));
}

/// Builds a syntactically well-formed PSIG header with the given dimensions
/// and no payload behind it.
std::string HeaderOnly(uint64_t num_rows, uint64_t num_labels) {
  std::string buf = "PSIG";
  AppendScalar<uint32_t>(&buf, 1);     // version
  AppendScalar<uint32_t>(&buf, 0);     // method
  AppendScalar<uint32_t>(&buf, 2);     // depth
  AppendScalar<float>(&buf, 0.5f);     // decay
  AppendScalar<uint64_t>(&buf, num_rows);
  AppendScalar<uint64_t>(&buf, num_labels);
  return buf;
}

TEST(IoFuzzTest, SignatureTruncationAtEveryByteErrors) {
  const std::string full = ValidSignatureBytes();
  ASSERT_GT(full.size(), 36u);
  {
    std::istringstream in(full, std::ios::binary);
    ASSERT_TRUE(signature::ReadSignatures(in).ok());
  }
  // Binary payloads have no record boundaries: every strict prefix must be
  // rejected outright.
  for (size_t cut = 0; cut < full.size(); ++cut) {
    std::istringstream in(full.substr(0, cut), std::ios::binary);
    const auto result = signature::ReadSignatures(in);
    EXPECT_FALSE(result.ok()) << "accepted prefix of " << cut << " bytes";
  }
}

// A hostile header claiming a petabyte payload must be rejected by the
// bounds check before the row allocation happens — an OOM here would be a
// crash, which is exactly what this suite exists to rule out.
TEST(IoFuzzTest, OversizedSignatureHeaderRejectedBeforeAllocation) {
  const std::string buf =
      HeaderOnly(/*num_rows=*/uint64_t{1} << 40, /*num_labels=*/8);
  std::istringstream in(buf, std::ios::binary);
  const auto result = signature::ReadSignatures(in);
  ASSERT_FALSE(result.ok());
}

TEST(IoFuzzTest, OverflowingSignatureDimensionsRejected) {
  // num_rows * num_labels * sizeof(float) wraps past 2^64.
  const std::string buf = HeaderOnly(
      /*num_rows=*/std::numeric_limits<uint64_t>::max() / 2, /*num_labels=*/8);
  std::istringstream in(buf, std::ios::binary);
  EXPECT_FALSE(signature::ReadSignatures(in).ok());
}

TEST(IoFuzzTest, SignatureDecayOutOfRangeRejected) {
  std::string buf = "PSIG";
  AppendScalar<uint32_t>(&buf, 1);
  AppendScalar<uint32_t>(&buf, 0);
  AppendScalar<uint32_t>(&buf, 2);
  AppendScalar<float>(&buf, 0.0f);  // decay must be in (0, 1]
  AppendScalar<uint64_t>(&buf, 0);
  AppendScalar<uint64_t>(&buf, 0);
  std::istringstream in(buf, std::ios::binary);
  EXPECT_FALSE(signature::ReadSignatures(in).ok());
}

// Single-byte corruption anywhere in the header: any outcome is fine except
// a crash or an absurd allocation. (Payload-byte flips just change float
// values — well-formed by construction — so the header is the whole attack
// surface.)
TEST(IoFuzzTest, SignatureHeaderByteFlipsNeverCrash) {
  const std::string full = ValidSignatureBytes();
  const size_t header_bytes = 36;  // magic + 3*u32 + f32 + 2*u64
  ASSERT_GE(full.size(), header_bytes);
  for (size_t i = 0; i < header_bytes; ++i) {
    for (const unsigned char mask : {0x01, 0x80, 0xff}) {
      std::string corrupted = full;
      corrupted[i] = static_cast<char>(corrupted[i] ^ mask);
      std::istringstream in(corrupted, std::ios::binary);
      const auto result = signature::ReadSignatures(in);
      if (result.ok()) {
        // A surviving parse must still describe at most the real payload.
        EXPECT_LE(result.value().num_rows() * result.value().num_labels() *
                      sizeof(float),
                  full.size());
      }
    }
  }
}

// --- Workload lines --------------------------------------------------------

TEST(IoFuzzTest, ValidWorkloadLineParses) {
  const auto result =
      service::ParseWorkloadLine("v=0,1,2 e=0-1,1-2,0-2 p=0 d=50 m=smart");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().query.num_nodes(), 3u);
  EXPECT_EQ(result.value().deadline_seconds, 0.05);
}

TEST(IoFuzzTest, MalformedWorkloadLinesErrorCleanly) {
  const char* kBad[] = {
      "complete garbage",            // not key=value
      "e=0-1 p=0",                   // no nodes
      "v= p=0",                      // empty label list piece
      "v=0,,1 p=0",                  // empty piece mid-list
      "v=a,b p=0",                   // non-numeric labels
      "v=0,1 e=0 p=0",               // edge without endpoints
      "v=0,1 e=0-1-2-3 p=0",         // too many edge fields
      "v=0,1 e=0-5 p=0",             // endpoint out of range
      "v=0,1 e=0-0 p=0",             // self loop
      "v=0,1 e=0-1",                 // missing pivot
      "v=0,1 e=0-1 p=9",             // pivot out of range
      "v=0,1 e=0-1 p=0 d=abc",       // bad deadline
      "v=0,1 e=0-1 p=0 d=-5",        // negative deadline
      "v=0,1 e=0-1 p=0 m=warp",      // unknown method
      "v=0,1 e=0-1 p=0 id=xyz",      // bad id
      "v=0,1 e=0-1 p=0 zz=1",        // unknown key
  };
  for (const char* line : kBad) {
    EXPECT_FALSE(service::ParseWorkloadLine(line).ok()) << "accepted: "
                                                        << line;
  }
}

TEST(IoFuzzTest, WorkloadStreamFailsOnFirstBadLineWithItsNumber) {
  std::istringstream in(
      "# header comment\n"
      "v=0 e= p=0\n"
      "\n"
      "v=0,1 e=0-1 p=borken\n");
  const auto result = service::ReadWorkload(in);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("4"), std::string::npos)
      << result.status().ToString();
}

#if PSI_FAULT_INJECTION_ENABLED

// --- Injected short reads --------------------------------------------------

class IoFaultTest : public ::testing::Test {
 protected:
  void SetUp() override { util::FaultInjector::Global().DisarmAll(); }
  void TearDown() override { util::FaultInjector::Global().DisarmAll(); }
};

TEST_F(IoFaultTest, InjectedShortReadsSurfaceAsErrorStatuses) {
  {
    util::ScopedFaultSpec chaos("io.graph.short_read=nth:2");
    std::istringstream in(kValidLg);
    const auto result = graph::ReadLg(in);
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.status().message().find("short read"), std::string::npos);
  }
  {
    util::ScopedFaultSpec chaos("io.query.short_read=nth:3");
    std::istringstream in(kValidQueries);
    EXPECT_FALSE(graph::ReadQueries(in).ok());
  }
  {
    util::ScopedFaultSpec chaos("io.signature.short_read=nth:2");
    std::istringstream in(ValidSignatureBytes(), std::ios::binary);
    const auto result = signature::ReadSignatures(in);
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.status().message().find("short read"), std::string::npos);
  }
  {
    util::ScopedFaultSpec chaos("io.workload.short_read=nth:1");
    std::istringstream in("v=0,1 e=0-1 p=0\n");
    EXPECT_FALSE(service::ReadWorkload(in).ok());
  }
}

// A short read injected on one call must not poison the next: the reader
// retries the identical stream and succeeds once the schedule is exhausted.
TEST_F(IoFaultTest, ShortReadIsTransientAcrossCalls) {
  util::ScopedFaultSpec chaos("io.graph.short_read=nth:1");
  {
    std::istringstream in(kValidLg);
    EXPECT_FALSE(graph::ReadLg(in).ok());
  }
  {
    std::istringstream in(kValidLg);  // nth:1 already fired; clean replay
    const auto result = graph::ReadLg(in);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.value().num_nodes(), 3u);
  }
}

#endif  // PSI_FAULT_INJECTION_ENABLED

}  // namespace
}  // namespace psi
