#include "signature/io.h"

#include <sstream>

#include <gtest/gtest.h>

#include "core/smart_psi.h"
#include "signature/builders.h"
#include "tests/test_fixtures.h"

namespace psi::signature {
namespace {

TEST(SignatureIoTest, RoundTripPreservesEverything) {
  const graph::Graph g = psi::testing::MakeRandomGraph(200, 600, 4, 301);
  const SignatureMatrix original = BuildMatrixSignatures(
      g, 3, g.num_labels(), nullptr, /*decay=*/0.25f);

  std::ostringstream out(std::ios::binary);
  WriteSignatures(original, out);
  std::istringstream in(out.str(), std::ios::binary);
  const auto reloaded = ReadSignatures(in);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  const SignatureMatrix& sigs = reloaded.value();

  EXPECT_EQ(sigs.num_rows(), original.num_rows());
  EXPECT_EQ(sigs.num_labels(), original.num_labels());
  EXPECT_EQ(sigs.method(), original.method());
  EXPECT_EQ(sigs.depth(), original.depth());
  EXPECT_FLOAT_EQ(sigs.decay(), original.decay());
  for (size_t r = 0; r < sigs.num_rows(); ++r) {
    for (size_t l = 0; l < sigs.num_labels(); ++l) {
      ASSERT_FLOAT_EQ(sigs.at(r, l), original.at(r, l));
    }
  }
}

TEST(SignatureIoTest, RejectsGarbage) {
  std::istringstream in("this is not a signature file", std::ios::binary);
  EXPECT_FALSE(ReadSignatures(in).ok());
}

TEST(SignatureIoTest, RejectsTruncatedPayload) {
  const graph::Graph g = psi::testing::MakeFigure1Graph();
  const SignatureMatrix original =
      BuildExplorationSignatures(g, 2, g.num_labels());
  std::ostringstream out(std::ios::binary);
  WriteSignatures(original, out);
  const std::string full = out.str();
  std::istringstream in(full.substr(0, full.size() - 8), std::ios::binary);
  EXPECT_FALSE(ReadSignatures(in).ok());
}

TEST(SignatureIoTest, FileRoundTrip) {
  const graph::Graph g = psi::testing::MakeFigure1Graph();
  const SignatureMatrix original =
      BuildMatrixSignatures(g, 2, g.num_labels());
  const std::string path = ::testing::TempDir() + "/psi_sigs_test.psig";
  ASSERT_TRUE(SaveSignatureFile(original, path).ok());
  const auto reloaded = LoadSignatureFile(path);
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(reloaded.value().num_rows(), original.num_rows());
}

TEST(SignatureIoTest, MissingFileIsIoError) {
  const auto result = LoadSignatureFile("/nonexistent/sigs.psig");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::Status::Code::kIoError);
}

TEST(SignatureIoTest, EngineAdoptsPrecomputedSignatures) {
  const graph::Graph g = psi::testing::MakeFigure1Graph();
  SignatureMatrix sigs =
      BuildExplorationSignatures(g, 3, g.num_labels(), nullptr, 0.5f);

  core::SmartPsiConfig config;
  config.signature_method = Method::kMatrix;  // deliberately inconsistent
  config.signature_depth = 1;
  core::SmartPsiEngine engine(g, std::move(sigs), config);

  // Metadata must follow the adopted matrix, not the config.
  EXPECT_EQ(engine.graph_signatures().method(), Method::kExploration);
  EXPECT_EQ(engine.graph_signatures().depth(), 3u);
  EXPECT_EQ(engine.config().signature_depth, 3u);

  const auto result = engine.Evaluate(psi::testing::MakeFigure1Query());
  EXPECT_EQ(result.valid_nodes, (std::vector<graph::NodeId>{0, 5}));
}

}  // namespace
}  // namespace psi::signature
